// Benchmarks regenerating the paper's evaluation (section VI): one
// benchmark per table and figure, each wrapping the corresponding driver
// in internal/experiments at a reduced default scale, plus
// micro-benchmarks of the pipeline stages. Key quantities are attached
// with b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints the paper-shaped numbers next to the host timings. cmd/msbench
// runs the same drivers with full tables and adjustable scale.
package parms_test

import (
	"testing"

	"parms"
	"parms/internal/experiments"
)

func benchCfg(b *testing.B) experiments.Config {
	b.Helper()
	return experiments.Config{Scale: 0.5}
}

// BenchmarkTableIMergeCost regenerates Table I: the cost of merging 2048
// blocks in one to four rounds. Each successive round must be more
// expensive than the one before it.
func BenchmarkTableIMergeCost(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableI(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(res.Rows[0].TotalMerge, "round1-merge-s")
		b.ReportMetric(last.TotalMerge, "full-merge-s")
		b.ReportMetric(last.FinalRoundTime, "final-round-s")
	}
}

// BenchmarkTableIIMergeStrategy regenerates Table II: five strategies
// for a full merge of 256 blocks; [4 8 8] should be the fastest and
// eight rounds of radix-2 the slowest.
func BenchmarkTableIIMergeStrategy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.TableII(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ComputeMerge, "best-488-s")
		b.ReportMetric(res.Rows[len(res.Rows)-1].ComputeMerge, "worst-2x8-s")
	}
}

// BenchmarkFig4Stability regenerates the Figure 4 stability study on the
// hydrogen-atom proxy across 1, 8 and 64 blocks.
func BenchmarkFig4Stability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig4(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(last.StableMaxima), "stable-maxima")
		b.ReportMetric(float64(last.RawNodes), "pre-merge-nodes")
		b.ReportMetric(boolMetric(last.MatchesSerial), "extrema-match")
	}
}

// BenchmarkFig5ComplexitySeries regenerates the Figure 5 series: complex
// size versus data complexity.
func BenchmarkFig5ComplexitySeries(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig5(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		first := res.Rows[0]
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(float64(nodesTotal(first.Nodes)), "nodes-lowfreq")
		b.ReportMetric(float64(nodesTotal(last.Nodes)), "nodes-highfreq")
	}
}

// BenchmarkFig6Sweep regenerates the Figure 6 parameter study: compute
// time, merge time and output size over procs × size × complexity.
func BenchmarkFig6Sweep(b *testing.B) {
	cfg := benchCfg(b)
	cfg.MaxProcs = 64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(len(res.Rows)), "points")
	}
}

// BenchmarkFig7MergeDepth regenerates the Figure 7 comparison of partial
// and full merging on the JET proxy.
func BenchmarkFig7MergeDepth(b *testing.B) {
	cfg := benchCfg(b)
	cfg.Scale = 0.3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].TotalNodes), "nodes-unmerged")
		b.ReportMetric(float64(res.Rows[2].TotalNodes), "nodes-full")
	}
}

// BenchmarkFig9JetScaling regenerates the Figure 9 strong-scaling study
// of the JET workload under a full merge.
func BenchmarkFig9JetScaling(b *testing.B) {
	cfg := benchCfg(b)
	cfg.MaxProcs = 512
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(res.Rows[0].Total, "base-total-s")
		b.ReportMetric(last.Total, "scaled-total-s")
		b.ReportMetric(100*last.Efficiency, "efficiency-pct")
	}
}

// BenchmarkFig10RTScaling regenerates the Figure 10 strong-scaling study
// of the Rayleigh-Taylor workload under a two-round partial merge.
func BenchmarkFig10RTScaling(b *testing.B) {
	cfg := benchCfg(b)
	cfg.MaxProcs = 1024
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig10(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last := res.Rows[len(res.Rows)-1]
		b.ReportMetric(100*last.Efficiency, "efficiency-pct")
		b.ReportMetric(100*last.CMEff, "cm-efficiency-pct")
	}
}

// BenchmarkPipelineEndToEnd measures one full parallel run of the public
// API on a 64³ sinusoid across 16 virtual ranks (host wall time; virtual
// stage times attached as metrics).
func BenchmarkPipelineEndToEnd(b *testing.B) {
	vol := parms.Sinusoid(65, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := parms.Compute(vol, parms.Options{Procs: 16, FullMerge: true, Persistence: 0.01})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Times.Compute, "virt-compute-s")
		b.ReportMetric(res.Times.Merge, "virt-merge-s")
	}
}

// BenchmarkSerialBaseline measures the serial whole-volume computation
// the parallel algorithm is compared against.
func BenchmarkSerialBaseline(b *testing.B) {
	vol := parms.Sinusoid(65, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ms := parms.ComputeSerial(vol, 0.01)
		if ms.NumAliveNodes() == 0 {
			b.Fatal("empty complex")
		}
	}
}

// BenchmarkExtraction measures the Figure 1 style interactive query
// against a precomputed complex.
func BenchmarkExtraction(b *testing.B) {
	ms := parms.ComputeSerial(parms.Sinusoid(65, 4), 0.01)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The 2-saddles between adjacent maxima of the product field sit
		// near value 0, so the threshold must admit them.
		sg := parms.Extract(ms, parms.FilterAnd(parms.ByEndpointIndices(2, 3), parms.ByMinValue(-0.5)))
		if sg.Arcs == 0 {
			b.Fatal("no arcs")
		}
	}
}

func nodesTotal(n [4]int) int { return n[0] + n[1] + n[2] + n[3] }

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}

// BenchmarkLoadBalance runs the blocks-per-process study on the skewed
// workload (the open question of section IV-A).
func BenchmarkLoadBalance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.LoadBalance(benchCfg(b))
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].ImbalanceRatio, "imbalance-1bpp")
		b.ReportMetric(res.Rows[len(res.Rows)-1].ImbalanceRatio, "imbalance-8bpp")
	}
}

// BenchmarkGlobalSimplify runs the future-work study: partial merge
// plus global simplification versus a full merge.
func BenchmarkGlobalSimplify(b *testing.B) {
	cfg := benchCfg(b)
	cfg.Scale = 0.3
	for i := 0; i < b.N; i++ {
		res, err := experiments.GlobalSimplify(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.Rows[0].Nodes), "partial-nodes")
		b.ReportMetric(float64(res.Rows[1].Nodes), "global-nodes")
	}
}

// BenchmarkMapping runs the torus rank-placement study.
func BenchmarkMapping(b *testing.B) {
	cfg := benchCfg(b)
	cfg.Scale = 0.3
	for i := 0; i < b.N; i++ {
		res, err := experiments.Mapping(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Rows[0].MergeTime, "identity-merge-s")
		b.ReportMetric(res.Rows[1].MergeTime, "shuffled-merge-s")
	}
}
