// Rayleigh-Taylor mixing analysis: the paper's largest workload
// (section VI-D2). When a heavy fluid sits on a light one, interface
// perturbations grow into rising bubbles and falling spikes; the
// 1-skeleton of the MS complex of the density field detects where
// isolated bits of one fluid penetrate the other. The example analyzes
// the fully merged complex, then repeats the run with the paper's
// cheaper partial-merge configuration and shows the trade-off Figure 7
// illustrates: fewer merge rounds leave unresolved block-boundary
// artifacts that inflate the output.
//
//	go run ./examples/mixing
package main

import (
	"fmt"
	"log"

	"parms"
)

func main() {
	const side = 96
	dims := parms.Dims{side, side, side}
	vol := parms.RayleighTaylor(dims, 20120502)
	lo, hi := vol.Range()
	fmt.Printf("Rayleigh-Taylor density: %v grid, range [%.3f, %.3f]\n", dims, lo, hi)

	const procs = 64
	full, err := parms.Compute(vol, parms.Options{
		Procs:       procs,
		FullMerge:   true,
		Persistence: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	ms := full.Merged()
	nodes, arcs := ms.AliveCounts()
	fmt.Printf("full merge: %d blocks -> 1; %v nodes, %d arcs; compute %.3fs, merge %.3fs (modeled)\n\n",
		full.Blocks, nodes, arcs, full.Times.Compute, full.Times.Merge)

	// Maxima of density in the lower half of the domain are heavy-fluid
	// spikes penetrating the light fluid; density minima in the upper
	// half are rising light bubbles.
	spikes, bubbles := 0, 0
	zsplit := side // refined-grid z of the midplane
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if !n.Alive {
			continue
		}
		rz := int(uint64(n.Cell) / uint64((2*side-1)*(2*side-1)))
		switch {
		case n.Index == 3 && n.Value > 0.25 && rz < zsplit:
			spikes++
		case n.Index == 0 && n.Value < -0.25 && rz > zsplit:
			bubbles++
		}
	}
	fmt.Printf("heavy spikes penetrating below the interface: %d\n", spikes)
	fmt.Printf("light bubbles rising above the interface:     %d\n\n", bubbles)

	// The paper runs this dataset with a *partial* merge (two rounds of
	// radix-8 over 32,768 blocks, leaving 512). The equivalent depth
	// here is one radix-8 round, leaving 8 output blocks: the merge
	// stage is far cheaper, but nodes on the remaining region
	// boundaries cannot be cancelled, so the output carries boundary
	// artifacts — the trade-off a scientist tunes with the merge flag.
	partial, err := parms.Compute(vol, parms.Options{
		Procs:       procs,
		Radices:     parms.PartialMergeRadices(procs, 1),
		Persistence: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partial merge: %d blocks -> %d; merge %.3fs vs %.3fs full\n",
		partial.Blocks, partial.OutputBlocks, partial.Times.Merge, full.Times.Merge)
	fmt.Printf("output size: partial %d bytes vs full %d bytes\n", partial.OutputBytes, full.OutputBytes)
	fmt.Printf("node count:  partial %d vs full %d (extra = unresolved boundary artifacts)\n",
		partial.TotalNodes(), full.TotalNodes())
}
