// Combustion analysis: the paper's JET workload (section VI-D1). In the
// turbulent CO/H₂ jet flame simulation, "dissipation elements" —
// structures correlated with flame extinction — are centered around
// minima of the mixture fraction. This example computes the MS complex
// of a jet mixture-fraction proxy in parallel with a full merge (the
// paper's Figure 9 configuration), then counts and ranks the important
// minima at several persistence levels.
//
//	go run ./examples/combustion
package main

import (
	"fmt"
	"log"
	"sort"

	"parms"
)

func main() {
	// The paper's grid is 768×896×512; the proxy keeps the aspect
	// ratio at workstation scale.
	dims := parms.Dims{96, 112, 64}
	vol := parms.Jet(dims, 20120501)
	lo, hi := vol.Range()
	fmt.Printf("jet mixture fraction: %v grid, range [%.4f, %.4f]\n", dims, lo, hi)

	// Full merge with radix-8 whenever possible, as the paper's
	// guidelines recommend.
	res, err := parms.Compute(vol, parms.Options{
		Procs:       32,
		FullMerge:   true,
		Persistence: 0.005,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster: %d ranks, merge radices per round: ", res.Procs)
	for _, r := range res.Rounds {
		fmt.Printf("%d ", r.Radix)
	}
	fmt.Printf("\ntimes: compute %.3fs, merge %.3fs (modeled)\n\n", res.Times.Compute, res.Times.Merge)

	ms := res.Merged()

	// Dissipation elements: minima of mixture fraction inside the jet.
	// Rank them by value (deep minima inside the jet core matter most).
	type minimum struct {
		value float32
		cell  uint64
	}
	var minima []minimum
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if n.Alive && n.Index == 0 {
			minima = append(minima, minimum{value: n.Value, cell: uint64(n.Cell)})
		}
	}
	sort.Slice(minima, func(i, j int) bool { return minima[i].value < minima[j].value })
	fmt.Printf("dissipation-element candidates: %d minima\n", len(minima))
	for i, m := range minima {
		if i == 8 {
			fmt.Printf("  ... %d more\n", len(minima)-8)
			break
		}
		fmt.Printf("  minimum %d: mixture fraction %.5f (cell %d)\n", i+1, m.value, m.cell)
	}

	// Persistence parameter study: how does the count of significant
	// minima vary with the simplification level? Simplification is
	// monotone, so the same complex is progressively simplified in
	// place — the interactive query a scientist runs without ever
	// touching the original volume again.
	fmt.Println("\nminima surviving at higher simplification levels:")
	for _, p := range []float64{0.01, 0.02, 0.05, 0.1} {
		parms.Simplify(ms, p, lo, hi)
		n, _ := ms.AliveCounts()
		fmt.Printf("  persistence %4.1f%% of range: %3d minima, %3d maxima\n", 100*p, n[0], n[3])
	}
}
