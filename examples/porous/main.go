// Porous-material filament extraction: the Figure 1 workload of the
// paper. The input is a signed distance field from the interface of a
// porous solid; the 2-saddle–maximum arcs of its MS complex trace the
// three-dimensional ridge lines — the candidate filament structure of
// the material. The example runs the parallel pipeline, then performs
// the interactive parameter study of Figure 1 entirely on the complex:
// filament statistics (length, components, cycles) across a sweep of
// threshold values.
//
//	go run ./examples/porous
package main

import (
	"fmt"
	"log"

	"parms"
)

func main() {
	const side = 64
	vol := parms.PorousSolid(side, 12)
	lo, hi := vol.Range()
	fmt.Printf("porous solid distance field: %d³, range [%.3f, %.3f]\n", side, lo, hi)

	res, err := parms.Compute(vol, parms.Options{
		Procs:       8,
		FullMerge:   true,
		Persistence: 0.02,
	})
	if err != nil {
		log.Fatal(err)
	}
	ms := res.Merged()
	nodes, arcs := ms.AliveCounts()
	fmt.Printf("MS complex: %v nodes, %d arcs (computed on %d ranks in %.3fs modeled)\n\n",
		nodes, arcs, res.Procs, res.Times.Total)

	// The filament network lives in the pore space (positive distance):
	// ridge lines connect 2-saddles to maxima of the distance field.
	fmt.Println("filament structure vs distance threshold (the Figure 1 parameter study):")
	fmt.Printf("%-12s %-10s %-12s %-10s %-14s\n",
		"threshold", "arcs", "components", "cycles", "length(cells)")
	for _, frac := range []float64{0.0, 0.1, 0.2, 0.3, 0.4} {
		cut := float32(float64(hi) * frac)
		sg := parms.Extract(ms, parms.FilterAnd(
			parms.ByEndpointIndices(2, 3),
			parms.ByMinValue(cut),
		))
		fmt.Printf("%-12.3f %-10d %-12d %-10d %-14d\n",
			cut, sg.Arcs, sg.Components, sg.Cycles, sg.TotalLength)
	}

	// The persistence curve shows how many features exist at every
	// simplification level — the basis for choosing the 2% threshold
	// above without recomputing anything.
	curve := parms.PersistenceCurve(ms)
	fmt.Printf("\npersistence curve: %d simplification levels, %d → %d nodes\n",
		len(curve), curve[0].Nodes, curve[len(curve)-1].Nodes)
}
