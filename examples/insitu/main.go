// In-situ analysis: the paper's future-work plan (section VII-B) was to
// embed the parallel MS complex computation inside the S3D combustion
// code and analyze each timestep as it is produced, without writing raw
// data to storage. This example simulates that coupling: a toy
// time-evolving "simulation" produces its domain partition block by
// block in memory, and every few steps the analysis runs directly on
// the resident blocks (no read stage), tracking how feature counts
// evolve over time.
//
//	go run ./examples/insitu
package main

import (
	"fmt"
	"log"
	"math"

	"parms"
)

// simulation is a toy time-dependent field: a pair of merging Gaussian
// blobs orbiting each other over a slowly decaying turbulent background.
// At early times the field has many small features; as the blobs merge
// the persistent structure simplifies — the kind of evolution an in-situ
// analysis is meant to track cheaply.
type simulation struct {
	n    int
	time float64
}

// sample evaluates the field at a vertex, at the simulation's current
// time. A real coupling would hand over the solver's state arrays; here
// the field is analytic so every block can be produced independently,
// exactly like a domain-partitioned solver.
func (s *simulation) sample(x, y, z int) float32 {
	nx := float64(x) / float64(s.n-1)
	ny := float64(y) / float64(s.n-1)
	nz := float64(z) / float64(s.n-1)
	// Two blobs orbiting and approaching each other.
	sep := 0.28 * (1 - s.time)
	angle := 2 * math.Pi * s.time
	cx1, cy1 := 0.5+sep*math.Cos(angle), 0.5+sep*math.Sin(angle)
	cx2, cy2 := 0.5-sep*math.Cos(angle), 0.5-sep*math.Sin(angle)
	blob := func(cx, cy float64) float64 {
		dx, dy, dz := nx-cx, ny-cy, nz-0.5
		return math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * 0.05))
	}
	// Decaying small-scale structure.
	turb := (1 - 0.8*s.time) * 0.25 *
		math.Sin(14*math.Pi*nx) * math.Sin(14*math.Pi*ny) * math.Sin(14*math.Pi*nz)
	return float32(blob(cx1, cy1) + blob(cx2, cy2) + turb)
}

// produceBlock fills one decomposition block, as the solver would for
// its local partition.
func (s *simulation) produceBlock(lo, hi [3]int) *parms.Volume {
	v := parms.NewVolume(parms.Dims{hi[0] - lo[0] + 1, hi[1] - lo[1] + 1, hi[2] - lo[2] + 1})
	for z := lo[2]; z <= hi[2]; z++ {
		for y := lo[1]; y <= hi[1]; y++ {
			for x := lo[0]; x <= hi[0]; x++ {
				v.Set(x-lo[0], y-lo[1], z-lo[2], s.sample(x, y, z))
			}
		}
	}
	return v
}

func main() {
	const n = 49
	sim := &simulation{n: n}
	dims := parms.Dims{n, n, n}

	fmt.Println("in-situ MS complex analysis of a time-evolving simulation")
	fmt.Printf("%-8s %-8s %-8s %-10s %-12s %-14s\n",
		"step", "time", "maxima", "features", "arcs", "analysis(s)")
	for step := 0; step <= 8; step += 2 {
		sim.time = float64(step) / 8
		res, err := parms.ComputeInSitu(dims, sim.produceBlock, -0.5, 2.2, parms.Options{
			Procs:       8,
			FullMerge:   true,
			Persistence: 0.02,
		})
		if err != nil {
			log.Fatal(err)
		}
		ms := res.Merged()
		nodes, arcs := ms.AliveCounts()
		// "Features": maxima strong enough to be blobs rather than
		// turbulence.
		strong := parms.CountNodes(ms, 3, 0.6)
		fmt.Printf("%-8d %-8.2f %-8d %-10d %-12d %-14.3f\n",
			step, sim.time, nodes[3], strong, arcs, res.Times.Total)
	}
	fmt.Println("\nno raw volume was written at any step: the complex (a few")
	fmt.Println("kilobytes) is the only artifact, as in the paper's in-situ plan.")
}
