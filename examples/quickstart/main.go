// Quickstart: compute the Morse-Smale complex of a small synthetic
// field in parallel, fully merge it, and inspect the result.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parms"
)

func main() {
	// A 64³ product-of-sinusoids field with 4 features per side: the
	// paper's synthetic study dataset (Figure 5).
	vol := parms.Sinusoid(65, 4)

	// Run the two-stage parallel algorithm on a 16-rank virtual
	// cluster: one block per rank, boundary-restricted gradients,
	// per-block simplification at 1% persistence, then a full
	// radix-8-first merge down to one complex.
	res, err := parms.Compute(vol, parms.Options{
		Procs:       16,
		FullMerge:   true,
		Persistence: 0.01,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== parallel run ==")
	fmt.Println(res.Describe())
	fmt.Printf("stage times: read %.3fs, compute %.3fs, merge %.3fs, write %.3fs (modeled Blue Gene/P seconds)\n",
		res.Times.Read, res.Times.Compute, res.Times.Merge, res.Times.Write)

	ms := res.Merged()
	nodes, arcs := ms.AliveCounts()
	fmt.Printf("\n== the Morse-Smale complex ==\n")
	fmt.Printf("minima: %d, 1-saddles: %d, 2-saddles: %d, maxima: %d, arcs: %d\n",
		nodes[0], nodes[1], nodes[2], nodes[3], arcs)
	fmt.Printf("Euler characteristic: %d (a solid box has 1)\n", ms.EulerCharacteristic())

	// Compare against the serial baseline. Counts agree up to the
	// variability the paper discusses in section V-A: on plateaus of
	// the sinusoid the complexes may resolve a few low-persistence
	// saddle pairs differently, while stable extrema always match.
	serial := parms.ComputeSerial(vol, 0.01)
	sNodes, _ := serial.AliveCounts()
	fmt.Printf("\nserial baseline node counts: %v — parallel: %v\n", sNodes, nodes)

	// Interactive-style query: how many maxima survive above a value
	// threshold, without touching the original volume again?
	for _, cut := range []float32{0, 0.5, 0.9} {
		fmt.Printf("maxima with value ≥ %.1f: %d\n", cut, parms.CountNodes(ms, 3, cut))
	}
}
