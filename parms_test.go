package parms

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"parms/internal/obs"
)

func TestPublicComputeMatchesSerial(t *testing.T) {
	vol := Sinusoid(17, 2)
	serial := ComputeSerial(vol, 0.15)
	wantNodes, _ := serial.AliveCounts()

	res, err := Compute(vol, Options{Procs: 8, FullMerge: true, Persistence: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputBlocks != 1 {
		t.Fatalf("output blocks %d", res.OutputBlocks)
	}
	if res.Nodes != wantNodes {
		t.Fatalf("parallel nodes %v, serial %v", res.Nodes, wantNodes)
	}
	ms := res.Merged()
	if ms == nil {
		t.Fatal("no merged complex")
	}
	if ms.EulerCharacteristic() != 1 {
		t.Fatalf("Euler characteristic %d", ms.EulerCharacteristic())
	}
	if res.TotalNodes() != ms.NumAliveNodes() {
		t.Fatalf("TotalNodes %d != complex %d", res.TotalNodes(), ms.NumAliveNodes())
	}
	if res.Describe() == "" {
		t.Fatal("empty description")
	}
}

func TestPublicPartialMerge(t *testing.T) {
	vol := Sinusoid(17, 2)
	res, err := Compute(vol, Options{
		Procs:       8,
		Radices:     PartialMergeRadices(8, 1)[:1],
		Persistence: 0.1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputBlocks != 1 {
		// Partial(8, 1) is [8]: a full merge for 8 blocks.
		t.Fatalf("output blocks %d", res.OutputBlocks)
	}
}

func TestPublicExtraction(t *testing.T) {
	vol := Sinusoid(17, 2)
	ms := ComputeSerial(vol, 0.1)
	sg := Extract(ms, FilterAnd(ByEndpointIndices(2, 3), ByMinValue(0)))
	if sg.Arcs == 0 {
		t.Fatal("no ridge arcs extracted")
	}
	if CountNodes(ms, 3, -2) == 0 {
		t.Fatal("no maxima")
	}
	if len(PersistenceCurve(ms)) < 2 {
		t.Fatal("degenerate persistence curve")
	}
	if ArcLengths(ms).Count == 0 {
		t.Fatal("no arc lengths")
	}
}

func TestFullMergeRadicesGuideline(t *testing.T) {
	got := FullMergeRadices(2048)
	want := []int{4, 8, 8, 8}
	if len(got) != len(want) {
		t.Fatalf("radices %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("radices %v, want %v", got, want)
		}
	}
}

func TestEfficiencyExported(t *testing.T) {
	if e := Efficiency(970, 32, 29, 8192); e < 0.12 || e > 0.14 {
		t.Fatalf("efficiency %v", e)
	}
}

func TestComputeInSituMatchesCompute(t *testing.T) {
	vol := Sinusoid(17, 2)
	lo, hi := vol.Range()

	direct, err := Compute(vol, Options{Procs: 4, FullMerge: true, Persistence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	insitu, err := ComputeInSitu(vol.Dims, func(blkLo, blkHi [3]int) *Volume {
		return vol.SubVolume(blkLo, blkHi)
	}, lo, hi, Options{Procs: 4, FullMerge: true, Persistence: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if direct.Nodes != insitu.Nodes || direct.Arcs != insitu.Arcs {
		t.Fatalf("in-situ %v/%d, direct %v/%d", insitu.Nodes, insitu.Arcs, direct.Nodes, direct.Arcs)
	}
	if insitu.Times.Read > direct.Times.Read {
		t.Errorf("in-situ read stage (%v) not cheaper than file read (%v)",
			insitu.Times.Read, direct.Times.Read)
	}
}

func TestSimplifyPublicMonotone(t *testing.T) {
	vol := Sinusoid(17, 2)
	lo, hi := vol.Range()
	ms := ComputeSerial(vol, 0.05)
	n1 := ms.NumAliveNodes()
	Simplify(ms, 0.3, lo, hi)
	n2 := ms.NumAliveNodes()
	if n2 > n1 {
		t.Fatalf("simplification grew the complex: %d -> %d", n1, n2)
	}
	if n2 == n1 {
		t.Fatalf("raising the threshold to 30%% cancelled nothing (%d nodes)", n1)
	}
}

func TestMultiResolutionPublic(t *testing.T) {
	vol := Sinusoid(17, 2)
	ms := ComputeSerial(vol, 0.3)
	max := ms.MaxResolution()
	if max == 0 {
		t.Fatal("no hierarchy recorded")
	}
	coarse := ms.NumAliveNodes()
	ms.SetResolution(0)
	fine := ms.NumAliveNodes()
	if fine != coarse+2*max {
		t.Fatalf("finest level has %d nodes, want %d", fine, coarse+2*max)
	}
	ms.SetResolution(max)
	if ms.NumAliveNodes() != coarse {
		t.Fatal("navigation did not return to the coarse level")
	}
	if len(Diagram(ms, vol.Dims)) != max {
		t.Fatalf("diagram has %d pairs, want %d", len(Diagram(ms, vol.Dims)), max)
	}
}

func TestChaosPublicFaultInjection(t *testing.T) {
	vol := Sinusoid(17, 2)
	clean, err := Compute(vol, Options{Procs: 8, FullMerge: true, Persistence: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	plan := NewFaultPlan(1).
		CrashRank(2, "compute").
		CorruptMessage(3, 0, 1).
		FailWrite("volume.raw.msc", 1)
	res, err := Compute(vol, Options{
		Procs: 8, FullMerge: true, Persistence: 0.15,
		Faults: plan, RecvGrace: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if !rep.Faulty() {
		t.Fatal("fault report empty under injection")
	}
	if rep.RankCrashes != 1 || rep.Corruptions != 1 || rep.IORetries < 1 {
		t.Errorf("report %v; want 1 crash, 1 corruption, >=1 I/O retry", &rep)
	}
	if len(rep.RecoveredBlocks) != len(rep.LostBlocks) || len(rep.LostBlocks) == 0 {
		t.Errorf("lost %v recovered %v", rep.LostBlocks, rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("faulty nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	if res.Merged() == nil {
		t.Fatal("no merged complex after recovery")
	}
}

func TestPublicTraceKnob(t *testing.T) {
	vol := Sinusoid(17, 2)
	plain, err := Compute(vol, Options{Procs: 8, FullMerge: true, Persistence: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil || plain.Metrics != nil {
		t.Fatal("untraced run carries Trace/Metrics")
	}

	res, err := Compute(vol, Options{Procs: 8, FullMerge: true, Persistence: 0.15, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Metrics == nil {
		t.Fatal("traced run missing Trace or Metrics")
	}
	if res.Nodes != plain.Nodes {
		t.Errorf("tracing changed the result: %v vs %v", res.Nodes, plain.Nodes)
	}
	stats := res.Trace.StageStats(StageSpanNames...)
	if len(stats) != len(StageSpanNames) {
		t.Fatalf("%d stage stats, want %d", len(stats), len(StageSpanNames))
	}
	var buf strings.Builder
	if err := res.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Error("trace JSON missing traceEvents")
	}
	buf.Reset()
	if err := res.Metrics.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "mpsim_bytes_sent_total") {
		t.Error("metrics dump missing mpsim_bytes_sent_total")
	}
	buf.Reset()
	WriteStageStats(&buf, stats)
	if !strings.Contains(buf.String(), "compute") {
		t.Error("stage table missing compute row")
	}
}

func TestPublicEventLog(t *testing.T) {
	vol := Sinusoid(17, 2)
	var buf bytes.Buffer
	plan := NewFaultPlan(1).CrashRank(2, "compute")
	res, err := Compute(vol, Options{
		Procs: 8, FullMerge: true, Persistence: 0.15,
		Faults: plan, Log: obs.NewJSONLogger(&buf),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Setting Log implies tracing, and the crash must surface both as a
	// trace instant and as a structured log line carrying a virtual
	// timestamp for joining against the spans.
	if res.Trace == nil {
		t.Fatal("Options.Log did not imply tracing")
	}
	out := buf.String()
	if !strings.Contains(out, `"msg":"fault.crash"`) {
		t.Errorf("log missing fault.crash event:\n%s", out)
	}
	if !strings.Contains(out, `"vt":`) {
		t.Errorf("log lines carry no virtual timestamps:\n%s", out)
	}
	if !strings.Contains(out, `"msg":"recover.rebuild"`) {
		t.Errorf("log missing recovery decision:\n%s", out)
	}
	if strings.Contains(out, `"time":`) {
		t.Errorf("log lines carry wall-clock timestamps (nondeterministic):\n%s", out)
	}
}
