// Command mkdata generates the synthetic and proxy datasets used by the
// experiments as raw little-endian volume files (x-fastest order), the
// input format of cmd/msc.
//
// Usage:
//
//	mkdata -kind sinusoid -n 128 -features 8 -o sin128.raw
//	mkdata -kind jet -dims 192x224x128 -seed 1 -o jet.raw
//	mkdata -kind rt -n 144 -o rt.raw
//	mkdata -kind hydrogen -n 128 -o hydrogen.raw
//	mkdata -kind porous -n 128 -o porous.raw
//	mkdata -kind random -n 64 -seed 7 -o noise.raw
package main

import (
	"flag"
	"fmt"
	"os"

	"parms/internal/grid"
	"parms/internal/synth"
)

func main() {
	kind := flag.String("kind", "sinusoid", "sinusoid, jet, rt, hydrogen, porous, ramp, random")
	n := flag.Int("n", 64, "cubic grid points per side")
	dimsFlag := flag.String("dims", "", "explicit dims XxYxZ (overrides -n)")
	features := flag.Float64("features", 4, "sinusoid features per side")
	seed := flag.Int64("seed", 1, "random seed for jet, rt, porous, random")
	out := flag.String("o", "", "output file (required)")
	flag.Parse()

	if *out == "" {
		fmt.Fprintln(os.Stderr, "mkdata: -o is required")
		os.Exit(2)
	}
	dims := grid.Dims{*n, *n, *n}
	if *dimsFlag != "" {
		if _, err := fmt.Sscanf(*dimsFlag, "%dx%dx%d", &dims[0], &dims[1], &dims[2]); err != nil {
			fmt.Fprintf(os.Stderr, "mkdata: bad -dims %q: %v\n", *dimsFlag, err)
			os.Exit(2)
		}
	}

	var vol *grid.Volume
	switch *kind {
	case "sinusoid":
		vol = synth.SinusoidDims(dims, *features)
	case "jet":
		vol = synth.Jet(dims, *seed)
	case "rt":
		vol = synth.RayleighTaylor(dims, *seed)
	case "hydrogen":
		vol = synth.Hydrogen(dims[0])
	case "porous":
		vol = synth.PorousSolid(dims[0], *seed)
	case "ramp":
		vol = synth.Ramp(dims)
	case "random":
		vol = synth.Random(dims, *seed)
	default:
		fmt.Fprintf(os.Stderr, "mkdata: unknown kind %q\n", *kind)
		os.Exit(2)
	}

	if err := os.WriteFile(*out, vol.Bytes(), 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "mkdata: %v\n", err)
		os.Exit(1)
	}
	lo, hi := vol.Range()
	fmt.Printf("wrote %s: %v %s, range [%g, %g], %d bytes\n",
		*out, vol.Dims, vol.DType, lo, hi, int64(vol.DType.Size())*vol.Dims.Verts())
}
