// Command msc runs the full parallel pipeline on a raw volume file: it
// decomposes the domain, computes per-block discrete gradients and MS
// complexes on a virtual cluster, simplifies, merges, and writes the MS
// complex block file (payloads + footer index).
//
// Usage:
//
//	msc -in jet.raw -dims 192x224x128 -dtype f32 \
//	    -procs 64 -persistence 0.01 -merge full -out jet.msc
//
// The -merge flag takes "none", "full", a round count like "2" (that
// many radix-8 rounds), or an explicit schedule like "4,8,8".
//
// Observability: -trace out.json writes a Chrome/Perfetto trace of the
// run (one track per rank, virtual-time spans for every stage, fault
// events as instants) and prints a per-stage summary table; -metrics
// out.prom writes a Prometheus-style text dump of the run's counters,
// gauges and histograms; -events out.jsonl streams structured run
// events (log/slog JSON, virtual-time stamped); -flows flows.json dumps
// the per-message causal flow records (sampled with -flow-sample);
// -listen :9151 serves live introspection over HTTP (/healthz,
// /metrics, /trace, /flows, /timeline, /insight, /debug/pprof) for the
// duration of the run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/obs"
	"parms/internal/obs/analyze"
	"parms/internal/pipeline"
)

func main() {
	in := flag.String("in", "", "input raw volume file (required)")
	dimsFlag := flag.String("dims", "", "volume dims XxYxZ (required)")
	dtypeFlag := flag.String("dtype", "f32", "sample type: u8, f32, f64")
	procs := flag.Int("procs", 8, "virtual cluster ranks")
	blocks := flag.Int("blocks", 0, "decomposition blocks (default: one per rank)")
	mergeFlag := flag.String("merge", "full", `merge: "none", "full", round count, or "4,8,8"`)
	persistence := flag.Float64("persistence", 0.01, "simplification threshold as a fraction of the data range")
	out := flag.String("out", "", "output file (default <in>.msc)")
	parallel := flag.Int("parallel", 0, "host goroutine bound (0 = unbounded)")
	workers := flag.Int("workers", 0, "intra-rank kernel workers: 1 = sequential, N = N workers (parallel cost model), 0 = auto (cores/ranks, sequential cost model)")
	measured := flag.Bool("measured", false, "report real wall-clock compute times instead of modeled Blue Gene/P times")
	traceOut := flag.String("trace", "", "write a Chrome/Perfetto trace-event JSON file of the run")
	flowsOut := flag.String("flows", "", "write the per-message causal flow records as JSON")
	flowSample := flag.Int("flow-sample", 0, "flow sampling stride: 0/1 record every message, n>1 keep every n-th per emitter, <0 count only")
	metricsOut := flag.String("metrics", "", "write a Prometheus-style text dump of the run's metrics")
	eventsOut := flag.String("events", "", "write structured run events (slog JSON lines, virtual-time stamped)")
	listen := flag.String("listen", "", `serve live introspection over HTTP during the run (e.g. ":9151" or ":0")`)
	ckpt := flag.Int("ckpt", 0, "checkpoint merge state every N rounds (0 = off); recovery restores from the newest valid checkpoint before recomputing")
	ckptDir := flag.String("ckptdir", "ckpt", "checkpoint directory on the simulated filesystem")
	ckptGC := flag.Bool("ckpt-gc", false, "reclaim checkpoints superseded by newer rounds as soon as they are safely on disk")
	migrate := flag.Bool("migrate", false, "migrate a crashed rank's blocks to healthy ranks via the block ownership table")
	speculate := flag.Bool("speculate", false, "race a local recompute against late merge payloads instead of waiting out stragglers")
	avoidFlag := flag.String("avoid", "", "comma-separated ranks the initial block rotation should skip (e.g. \"3,17\")")
	autoAvoid := flag.String("auto-avoid", "", "msinsight report JSON (file or /insight dump) whose recommendation.avoid_ranks seeds -avoid")
	flag.Parse()

	if *in == "" || *dimsFlag == "" {
		fmt.Fprintln(os.Stderr, "msc: -in and -dims are required")
		os.Exit(2)
	}
	var dims grid.Dims
	if _, err := fmt.Sscanf(*dimsFlag, "%dx%dx%d", &dims[0], &dims[1], &dims[2]); err != nil {
		fatalf("bad -dims %q: %v", *dimsFlag, err)
	}
	dtype, err := grid.ParseDType(*dtypeFlag)
	if err != nil {
		fatalf("%v", err)
	}
	nblocks := *blocks
	if nblocks == 0 {
		nblocks = *procs
	}
	radices, err := parseMerge(*mergeFlag, nblocks)
	if err != nil {
		fatalf("%v", err)
	}
	outFile := *out
	if outFile == "" {
		outFile = *in + ".msc"
	}
	avoid, err := parseAvoid(*avoidFlag, *autoAvoid, *procs)
	if err != nil {
		fatalf("%v", err)
	}

	var ob *obs.Observer
	if *traceOut != "" || *flowsOut != "" || *metricsOut != "" || *eventsOut != "" || *listen != "" {
		ob = obs.New(*procs)
		if *flowSample != 0 {
			ob.FlowRecorder().SetSample(*flowSample)
		}
	}
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fatalf("%v", err)
		}
		defer f.Close()
		ob.Log = obs.NewJSONLogger(f)
	}
	if *listen != "" {
		srv, err := obs.Serve(*listen, ob, analyze.Handler(ob, analyze.Config{Blocks: nblocks, Radices: radices}))
		if err != nil {
			fatalf("%v", err)
		}
		fmt.Printf("listening  http://%s (/healthz /metrics /trace /flows /timeline /insight /debug/pprof)\n", srv.Addr())
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "msc: introspection server: %v\n", err)
			}
		}()
	}
	cluster, err := mpsim.New(mpsim.Config{Procs: *procs, MaxParallel: *parallel, Obs: ob})
	if err != nil {
		fatalf("%v", err)
	}
	if err := cluster.FS().Import(*in, "input.raw"); err != nil {
		fatalf("%v", err)
	}
	raw, err := cluster.FS().Get("input.raw")
	if err != nil {
		fatalf("%v", err)
	}
	want := int64(dtype.Size()) * dims.Verts()
	if int64(len(raw)) != want {
		fatalf("%s is %d bytes; %v %s needs %d", *in, len(raw), dims, dtype, want)
	}
	samples, err := grid.DecodeSamples(raw, dtype)
	if err != nil {
		fatalf("%v", err)
	}
	lo, hi := rangeOf(samples)

	res, err := pipeline.Run(cluster, pipeline.Params{
		File:            "input.raw",
		Dims:            dims,
		DType:           dtype,
		Blocks:          nblocks,
		Radices:         radices,
		Persistence:     float32(*persistence * float64(hi-lo)),
		OutFile:         "output.msc",
		Measured:        *measured,
		Workers:         *workers,
		CheckpointEvery: *ckpt,
		CheckpointDir:   *ckptDir,
		CheckpointGC:    *ckptGC,
		Migrate:         *migrate,
		Speculate:       *speculate,
		AvoidRanks:      avoid,
	})
	if err != nil {
		fatalf("%v", err)
	}
	if err := cluster.FS().Export("output.msc", outFile); err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("input      %s (%v %s, range [%g, %g])\n", *in, dims, dtype, lo, hi)
	fmt.Printf("cluster    %d ranks, %d blocks, %s\n", *procs, nblocks, cluster.Network())
	if *workers != 0 {
		fmt.Printf("workers    %d kernel workers per rank\n", *workers)
	}
	if len(avoid) > 0 {
		fmt.Printf("avoid      ranks %v start the run owning no blocks\n", avoid)
	}
	if res.FaultReport.Faulty() {
		fmt.Printf("faults     %s\n", res.FaultReport.String())
	}
	fmt.Printf("merge      radices %v -> %d output block(s)\n", radices, res.OutputBlocks)
	fmt.Printf("complex    nodes %v (min, 1-saddle, 2-saddle, max), %d arcs\n", res.Nodes, res.Arcs)
	fmt.Printf("output     %s (%d bytes)\n", outFile, res.OutputBytes)
	mode := "modeled"
	if *measured {
		mode = "measured"
	}
	fmt.Printf("times      read %.3fs  compute %.3fs  merge %.3fs  write %.3fs  total %.3fs (%s)\n",
		res.Times.Read, res.Times.Compute, res.Times.Merge, res.Times.Write, res.Times.Total, mode)
	for i, round := range res.Rounds {
		fmt.Printf("  round %d  radix %d  %.3fs  %d blocks remain\n",
			i+1, round.Radix, round.Seconds, round.Blocks)
	}

	if *traceOut != "" {
		writeFile(*traceOut, func(f *os.File) error { return res.Trace.WriteChromeTrace(f) })
		fmt.Printf("trace      %s (load in ui.perfetto.dev or chrome://tracing)\n", *traceOut)
		fmt.Println()
		obs.WriteStageStats(os.Stdout, res.Trace.StageStats(pipeline.StageSpanNames...))
	}
	if *flowsOut != "" {
		writeFile(*flowsOut, func(f *os.File) error { return res.Trace.Flows().WriteFlowsJSON(f) })
		fmt.Printf("flows      %s (%d message(s) started)\n", *flowsOut, res.Trace.Flows().Started())
	}
	if *metricsOut != "" {
		writeFile(*metricsOut, func(f *os.File) error { return res.Metrics.WritePrometheus(f) })
		fmt.Printf("metrics    %s\n", *metricsOut)
	}
}

func writeFile(path string, write func(*os.File) error) {
	f, err := os.Create(path)
	if err != nil {
		fatalf("%v", err)
	}
	if err := write(f); err != nil {
		f.Close()
		fatalf("writing %s: %v", path, err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
}

func parseMerge(s string, nblocks int) ([]int, error) {
	switch s {
	case "none", "":
		return nil, nil
	case "full":
		return merge.Full(nblocks).Radices, nil
	}
	if rounds, err := strconv.Atoi(s); err == nil {
		return merge.Partial(nblocks, rounds).Radices, nil
	}
	var radices []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("msc: bad -merge %q", s)
		}
		radices = append(radices, r)
	}
	return radices, (merge.Schedule{Radices: radices}).Validate(nblocks)
}

// parseAvoid combines the explicit -avoid list with the avoid_ranks of
// an msinsight report named by -auto-avoid (a file holding the JSON the
// msinsight CLI or the /insight endpoint emits), closing the advisory
// loop: yesterday's straggler report seeds today's block rotation.
func parseAvoid(avoidList, reportPath string, procs int) ([]int, error) {
	var avoid []int
	if avoidList != "" {
		for _, part := range strings.Split(avoidList, ",") {
			rank, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("msc: bad -avoid %q", avoidList)
			}
			avoid = append(avoid, rank)
		}
	}
	if reportPath != "" {
		data, err := os.ReadFile(reportPath)
		if err != nil {
			return nil, fmt.Errorf("msc: -auto-avoid: %w", err)
		}
		var rep struct {
			Recommendation struct {
				AvoidRanks []int `json:"avoid_ranks"`
			} `json:"recommendation"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			return nil, fmt.Errorf("msc: -auto-avoid %s: %w", reportPath, err)
		}
		avoid = append(avoid, rep.Recommendation.AvoidRanks...)
	}
	for _, rank := range avoid {
		if rank < 0 || rank >= procs {
			return nil, fmt.Errorf("msc: avoid rank %d out of range [0, %d)", rank, procs)
		}
	}
	return avoid, nil
}

func rangeOf(samples []float32) (lo, hi float32) {
	if len(samples) == 0 {
		return 0, 0
	}
	lo, hi = samples[0], samples[0]
	for _, s := range samples {
		if s < lo {
			lo = s
		}
		if s > hi {
			hi = s
		}
	}
	return
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msc: "+format+"\n", args...)
	os.Exit(1)
}
