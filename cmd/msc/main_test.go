package main

import "testing"

func TestParseMerge(t *testing.T) {
	cases := []struct {
		in      string
		nblocks int
		want    []int
		wantErr bool
	}{
		{"none", 64, nil, false},
		{"", 64, nil, false},
		{"full", 64, []int{8, 8}, false},
		{"full", 2048, []int{4, 8, 8, 8}, false},
		{"1", 64, []int{8}, false},
		{"2", 64, []int{8, 8}, false},
		{"4,8,8", 256, []int{4, 8, 8}, false},
		{"2,2", 4, []int{2, 2}, false},
		{"3", 64, []int{8, 8}, false}, // "3" parses as a round count, clamped to the full merge
		{"4,9", 64, nil, true},        // radix 9 invalid
		{"8,8,8", 64, nil, true},      // over-reduction
		{"x,y", 64, nil, true},
	}
	for _, c := range cases {
		got, err := parseMerge(c.in, c.nblocks)
		if c.wantErr {
			if err == nil {
				t.Errorf("parseMerge(%q, %d): expected error", c.in, c.nblocks)
			}
			continue
		}
		if err != nil {
			t.Errorf("parseMerge(%q, %d): %v", c.in, c.nblocks, err)
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("parseMerge(%q, %d) = %v, want %v", c.in, c.nblocks, got, c.want)
			continue
		}
		for i := range c.want {
			if got[i] != c.want[i] {
				t.Errorf("parseMerge(%q, %d) = %v, want %v", c.in, c.nblocks, got, c.want)
				break
			}
		}
	}
}

func TestRangeOf(t *testing.T) {
	lo, hi := rangeOf([]float32{3, -1, 4, 1, 5})
	if lo != -1 || hi != 5 {
		t.Fatalf("range [%v, %v]", lo, hi)
	}
	lo, hi = rangeOf(nil)
	if lo != 0 || hi != 0 {
		t.Fatalf("empty range [%v, %v]", lo, hi)
	}
}
