// Command msquery inspects an MS complex block file produced by cmd/msc
// and runs the interactive-style analysis queries of the paper's Figure
// 1 against it: structure statistics, feature extraction above a value
// threshold, and the persistence curve.
//
// Usage:
//
//	msquery -in jet.msc                     # index + per-block stats
//	msquery -in jet.msc -threshold 0.8      # extract ridge features
//	msquery -in jet.msc -curve              # persistence curve
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"parms/internal/analysis"
	"parms/internal/export"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/pario"
)

func main() {
	in := flag.String("in", "", "input .msc file (required)")
	threshold := flag.Float64("threshold", math.NaN(), "extract 2-saddle–maximum features above this value")
	curve := flag.Bool("curve", false, "print the persistence curve of each block")
	globalSimplify := flag.Float64("globalsimplify", math.NaN(),
		"glue all blocks and simplify globally at this absolute persistence (the paper's future work)")
	jsonOut := flag.String("json", "", "export blocks as JSON to this file (requires -dims)")
	objOut := flag.String("obj", "", "export the 1-skeleton as Wavefront OBJ to this file (requires -dims)")
	dimsFlag := flag.String("dims", "", "original volume dims XxYxZ, needed by -json/-obj")
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "msquery: -in is required")
		os.Exit(2)
	}
	fs := mpsim.NewFS()
	if err := fs.Import(*in, "in.msc"); err != nil {
		fatalf("%v", err)
	}
	idx, err := pario.ReadIndex(fs, "in.msc")
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s: %d complex block(s)\n", *in, len(idx))

	var loaded []*mscomplex.Complex
	for _, entry := range idx {
		ms, err := pario.LoadComplex(fs, "in.msc", entry)
		if err != nil {
			fatalf("block %d: %v", entry.BlockID, err)
		}
		describe(entry, ms)
		if !math.IsNaN(*threshold) {
			extract(ms, float32(*threshold))
		}
		if *curve {
			printCurve(ms)
		}
		loaded = append(loaded, ms)
	}

	if !math.IsNaN(*globalSimplify) {
		before := 0
		for _, ms := range loaded {
			before += ms.NumAliveNodes()
		}
		global := analysis.MergeAll(loaded, float32(*globalSimplify))
		nodes, arcs := global.AliveCounts()
		fmt.Printf("\nglobal simplification at persistence %g:\n", *globalSimplify)
		fmt.Printf("  %d nodes across %d blocks -> %d nodes, %d arcs, %d bytes\n",
			before, len(idx), global.NumAliveNodes(), arcs, global.SerializedSize())
		fmt.Printf("  nodes by index: %v\n", nodes)
		loaded = []*mscomplex.Complex{global}
	}

	if *jsonOut != "" || *objOut != "" {
		if *dimsFlag == "" {
			fatalf("-json/-obj need -dims of the original volume")
		}
		var dims grid.Dims
		if _, err := fmt.Sscanf(*dimsFlag, "%dx%dx%d", &dims[0], &dims[1], &dims[2]); err != nil {
			fatalf("bad -dims %q: %v", *dimsFlag, err)
		}
		if *jsonOut != "" {
			f, err := os.Create(*jsonOut)
			if err != nil {
				fatalf("%v", err)
			}
			for _, ms := range loaded {
				if err := export.WriteJSON(f, ms, dims, export.JSONOptions{Geometry: true, Hierarchy: true}); err != nil {
					fatalf("json export: %v", err)
				}
			}
			f.Close()
			fmt.Printf("\nwrote JSON export to %s\n", *jsonOut)
		}
		if *objOut != "" {
			f, err := os.Create(*objOut)
			if err != nil {
				fatalf("%v", err)
			}
			for _, ms := range loaded {
				if err := export.WriteOBJ(f, ms, dims); err != nil {
					fatalf("obj export: %v", err)
				}
			}
			f.Close()
			fmt.Printf("wrote OBJ export to %s\n", *objOut)
		}
	}
}

func describe(entry pario.IndexEntry, ms *mscomplex.Complex) {
	nodes, arcs := ms.AliveCounts()
	fmt.Printf("\nblock %d: offset %d, %d bytes, region of %d input block(s)\n",
		entry.BlockID, entry.Offset, entry.Size, len(entry.Region))
	fmt.Printf("  nodes: %d minima, %d 1-saddles, %d 2-saddles, %d maxima (Euler %d)\n",
		nodes[0], nodes[1], nodes[2], nodes[3], ms.EulerCharacteristic())
	lengths := analysis.ArcLengths(ms)
	fmt.Printf("  arcs:  %d, geometry length min %d / mean %.1f / max %d cells\n",
		arcs, lengths.Min, lengths.Mean, lengths.Max)
}

func extract(ms *mscomplex.Complex, cut float32) {
	sg := analysis.Extract(ms, analysis.And(
		analysis.ByEndpointIndices(2, 3), analysis.ByMinValue(cut)))
	fmt.Printf("  features ≥ %g: %d arcs over %d nodes, %d component(s), %d cycle(s), total length %d cells\n",
		cut, sg.Arcs, sg.Nodes, sg.Components, sg.Cycles, sg.TotalLength)
	fmt.Printf("  maxima ≥ %g: %d\n", cut, analysis.CountNodes(ms, 3, cut))
}

func printCurve(ms *mscomplex.Complex) {
	curve := analysis.PersistenceCurve(ms)
	fmt.Printf("  persistence curve (%d points):\n", len(curve))
	step := len(curve)/16 + 1
	for i := 0; i < len(curve); i += step {
		fmt.Printf("    threshold %-12g -> %d nodes\n", curve[i].Threshold, curve[i].Nodes)
	}
	last := curve[len(curve)-1]
	fmt.Printf("    threshold %-12g -> %d nodes (final)\n", last.Threshold, last.Nodes)
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msquery: "+format+"\n", args...)
	os.Exit(1)
}
