// Command tracecheck validates a Chrome trace-event JSON file as
// emitted by msc -trace or Tracer.WriteChromeTrace: the file must be
// well-formed JSON with a traceEvents array, every event needs a known
// phase and a non-negative timestamp, durations must be non-negative,
// complete ("X") event timestamps must be monotonically non-decreasing
// within each (pid, tid) track, and flow events must pair up — every
// start ("s") needs exactly one matching finish ("f") with a
// non-decreasing timestamp, and no finish may lack a start. It prints a
// per-track summary and exits nonzero on any violation, so CI can gate
// on it.
//
// Usage:
//
//	tracecheck [-flows] trace.json
//
// With -flows the file must additionally contain at least one flow
// pair, catching traces accidentally exported without the message
// records.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Cat  string   `json:"cat"`
	Id   string   `json:"id"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type trackKey struct{ pid, tid int }

type trackInfo struct {
	spans, instants int
	lastTs          float64
	minTs, maxEnd   float64
}

// flowInfo tracks one flow id's pairing state across the file.
type flowInfo struct {
	starts, finishes int
	startTs          float64
	firstEvent       int // index of the first event with this id, for messages
}

func main() {
	requireFlows := flag.Bool("flows", false, "require at least one flow start/finish pair")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: tracecheck [-flows] trace.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	path := flag.Arg(0)
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: not valid JSON: %v", path, err)
	}
	if tf.TraceEvents == nil {
		fail("%s: no traceEvents array", path)
	}

	tracks := make(map[trackKey]*trackInfo)
	flows := make(map[string]*flowInfo)
	violations := 0
	complain := func(i int, ev traceEvent, format string, args ...interface{}) {
		violations++
		fmt.Fprintf(os.Stderr, "tracecheck: event %d (%s %q pid=%d tid=%d): %s\n",
			i, ev.Ph, ev.Name, ev.Pid, ev.Tid, fmt.Sprintf(format, args...))
	}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M": // metadata carries no timestamp
			continue
		case "X", "i", "s", "f":
		default:
			complain(i, ev, "unknown phase %q", ev.Ph)
			continue
		}
		if ev.Ts == nil {
			complain(i, ev, "missing ts")
			continue
		}
		if *ev.Ts < 0 {
			complain(i, ev, "negative ts %g", *ev.Ts)
		}
		key := trackKey{ev.Pid, ev.Tid}
		tr := tracks[key]
		if tr == nil {
			tr = &trackInfo{lastTs: -1, minTs: *ev.Ts}
			tracks[key] = tr
		}
		if *ev.Ts < tr.minTs {
			tr.minTs = *ev.Ts
		}
		end := *ev.Ts
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				complain(i, ev, "complete event missing dur")
				continue
			}
			if *ev.Dur < 0 {
				complain(i, ev, "negative dur %g", *ev.Dur)
			}
			if *ev.Ts < tr.lastTs {
				complain(i, ev, "ts %g goes backwards (previous span started at %g)", *ev.Ts, tr.lastTs)
			}
			tr.lastTs = *ev.Ts
			tr.spans++
			end += *ev.Dur
		case "i":
			tr.instants++
		case "s":
			if ev.Id == "" {
				complain(i, ev, "flow start missing id")
				continue
			}
			fl := flows[ev.Id]
			if fl == nil {
				fl = &flowInfo{firstEvent: i}
				flows[ev.Id] = fl
			}
			fl.starts++
			fl.startTs = *ev.Ts
			if fl.starts > 1 {
				complain(i, ev, "duplicate flow start id %s", ev.Id)
			}
		case "f":
			if ev.Id == "" {
				complain(i, ev, "flow finish missing id")
				continue
			}
			fl := flows[ev.Id]
			if fl == nil || fl.starts == 0 {
				complain(i, ev, "flow finish id %s has no start", ev.Id)
				continue
			}
			fl.finishes++
			if fl.finishes > 1 {
				complain(i, ev, "duplicate flow finish id %s", ev.Id)
			}
			if *ev.Ts < fl.startTs {
				complain(i, ev, "flow finish ts %g precedes start ts %g", *ev.Ts, fl.startTs)
			}
		}
		if end > tr.maxEnd {
			tr.maxEnd = end
		}
	}
	// Every start must have found its finish.
	pairs := 0
	orphanIDs := make([]string, 0)
	for id, fl := range flows {
		if fl.starts > 0 && fl.finishes == 1 {
			pairs++
		}
		if fl.finishes == 0 {
			orphanIDs = append(orphanIDs, id)
		}
	}
	sort.Strings(orphanIDs)
	for _, id := range orphanIDs {
		violations++
		fmt.Fprintf(os.Stderr, "tracecheck: event %d: flow start id %s never finishes\n",
			flows[id].firstEvent, id)
	}

	keys := make([]trackKey, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	fmt.Printf("%s: %d events, %d tracks, %d flow pair(s)\n", path, len(tf.TraceEvents), len(tracks), pairs)
	for _, k := range keys {
		tr := tracks[k]
		fmt.Printf("  pid %d tid %d: %d spans, %d instants, [%.3f, %.3f] us\n",
			k.pid, k.tid, tr.spans, tr.instants, tr.minTs, tr.maxEnd)
	}
	if *requireFlows && pairs == 0 {
		fail("-flows: no flow pairs in %s", path)
	}
	if violations > 0 {
		fail("%d violation(s)", violations)
	}
	fmt.Println("ok")
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
