// Command tracecheck validates a Chrome trace-event JSON file as
// emitted by msc -trace or Tracer.WriteChromeTrace: the file must be
// well-formed JSON with a traceEvents array, every event needs a known
// phase and a non-negative timestamp, durations must be non-negative,
// and complete ("X") event timestamps must be monotonically
// non-decreasing within each (pid, tid) track. It prints a per-track
// summary and exits nonzero on any violation, so CI can gate on it.
//
// Usage:
//
//	tracecheck trace.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

type traceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

type traceEvent struct {
	Name string   `json:"name"`
	Ph   string   `json:"ph"`
	Pid  int      `json:"pid"`
	Tid  int      `json:"tid"`
	Ts   *float64 `json:"ts"`
	Dur  *float64 `json:"dur"`
}

type trackKey struct{ pid, tid int }

type trackInfo struct {
	spans, instants int
	lastTs          float64
	minTs, maxEnd   float64
}

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck trace.json")
		os.Exit(2)
	}
	data, err := os.ReadFile(os.Args[1])
	if err != nil {
		fail("%v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(data, &tf); err != nil {
		fail("%s: not valid JSON: %v", os.Args[1], err)
	}
	if tf.TraceEvents == nil {
		fail("%s: no traceEvents array", os.Args[1])
	}

	tracks := make(map[trackKey]*trackInfo)
	violations := 0
	complain := func(i int, ev traceEvent, format string, args ...interface{}) {
		violations++
		fmt.Fprintf(os.Stderr, "tracecheck: event %d (%s %q pid=%d tid=%d): %s\n",
			i, ev.Ph, ev.Name, ev.Pid, ev.Tid, fmt.Sprintf(format, args...))
	}
	for i, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M": // metadata carries no timestamp
			continue
		case "X", "i":
		default:
			complain(i, ev, "unknown phase %q", ev.Ph)
			continue
		}
		if ev.Ts == nil {
			complain(i, ev, "missing ts")
			continue
		}
		if *ev.Ts < 0 {
			complain(i, ev, "negative ts %g", *ev.Ts)
		}
		key := trackKey{ev.Pid, ev.Tid}
		tr := tracks[key]
		if tr == nil {
			tr = &trackInfo{lastTs: -1, minTs: *ev.Ts}
			tracks[key] = tr
		}
		if *ev.Ts < tr.minTs {
			tr.minTs = *ev.Ts
		}
		end := *ev.Ts
		switch ev.Ph {
		case "X":
			if ev.Dur == nil {
				complain(i, ev, "complete event missing dur")
				continue
			}
			if *ev.Dur < 0 {
				complain(i, ev, "negative dur %g", *ev.Dur)
			}
			if *ev.Ts < tr.lastTs {
				complain(i, ev, "ts %g goes backwards (previous span started at %g)", *ev.Ts, tr.lastTs)
			}
			tr.lastTs = *ev.Ts
			tr.spans++
			end += *ev.Dur
		case "i":
			tr.instants++
		}
		if end > tr.maxEnd {
			tr.maxEnd = end
		}
	}

	keys := make([]trackKey, 0, len(tracks))
	for k := range tracks {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pid != keys[j].pid {
			return keys[i].pid < keys[j].pid
		}
		return keys[i].tid < keys[j].tid
	})
	fmt.Printf("%s: %d events, %d tracks\n", os.Args[1], len(tf.TraceEvents), len(tracks))
	for _, k := range keys {
		tr := tracks[k]
		fmt.Printf("  pid %d tid %d: %d spans, %d instants, [%.3f, %.3f] us\n",
			k.pid, k.tid, tr.spans, tr.instants, tr.minTs, tr.maxEnd)
	}
	if violations > 0 {
		fail("%d violation(s)", violations)
	}
	fmt.Println("ok")
}

func fail(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "tracecheck: "+format+"\n", args...)
	os.Exit(1)
}
