// Command msinsight analyzes a run's exported observability artifacts:
// the Chrome-trace JSON written by msc -trace (or scraped from a live
// run's /trace endpoint) and, optionally, the Prometheus metrics dump
// from msc -metrics. It reports the critical path through the merge
// reduction tree, per-stage straggler flags with imbalance scores,
// per-round merge attribution (serialize / glue / simplify / wait
// time, payload growth), fault counts, and a deterministic tuning
// recommendation (merge radix schedule, block count, ranks to remap
// around).
//
// Usage:
//
//	msinsight -trace trace.json [-metrics metrics.prom] [-json]
//	msinsight -trace trace.json -flows [-buckets 64]
//
// Block count and merge radices are normally inferred from the trace;
// -blocks and -radices override the inference for traces recorded
// without merge rounds. Output is a human-readable report by default;
// -json switches to the machine-readable form, which is byte-identical
// across runs of the same trace. -flows switches to the message-flow
// view instead: the full rank×rank communication matrix rebuilt from
// the trace's flow events, and the bucketed virtual-time timeline
// (-buckets sets its resolution).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parms/internal/obs"
	"parms/internal/obs/analyze"
)

func main() {
	traceIn := flag.String("trace", "", "Chrome-trace JSON file of the run (required; from msc -trace or /trace)")
	metricsIn := flag.String("metrics", "", "Prometheus metrics dump of the run (optional; from msc -metrics or /metrics)")
	blocks := flag.Int("blocks", 0, "override the decomposition block count (0 = infer from the trace)")
	radicesFlag := flag.String("radices", "", `override the merge radix schedule, e.g. "4,8" (default: infer from the trace)`)
	madk := flag.Float64("madk", 0, "straggler threshold multiplier on the MAD (0 = default 4)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report instead of the text rendering")
	flowsMode := flag.Bool("flows", false, "print the message-flow view (comm matrix + virtual-time timeline) instead of the report")
	buckets := flag.Int("buckets", 0, "timeline bucket count for -flows (0 = default 64)")
	flag.Parse()

	if *traceIn == "" {
		fmt.Fprintln(os.Stderr, "msinsight: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	radices, err := parseRadices(*radicesFlag)
	if err != nil {
		fatalf("%v", err)
	}

	f, err := os.Open(*traceIn)
	if err != nil {
		fatalf("%v", err)
	}
	in, err := analyze.ParseChromeTrace(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	if *metricsIn != "" {
		mf, err := os.Open(*metricsIn)
		if err != nil {
			fatalf("%v", err)
		}
		metrics, err := analyze.ParsePrometheus(mf)
		mf.Close()
		if err != nil {
			fatalf("%v", err)
		}
		in.Metrics = metrics
	}

	rep := analyze.Analyze(in, analyze.Config{Blocks: *blocks, Radices: radices, MADK: *madk})
	if *flowsMode {
		printFlows(in, rep, *buckets)
		return
	}
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	rep.Print(os.Stdout)
}

// printFlows renders the flow-level view of a parsed trace: the full
// comm matrix (every directed link, not just the report's top slice)
// and the bucketed timeline, both rebuilt from the trace's flow events.
func printFlows(in *analyze.Input, rep *analyze.Report, buckets int) {
	if len(in.Flows) == 0 {
		fmt.Println("no flow events in trace (recorded without flows, or flow-sampled away)")
		return
	}
	done := 0
	for _, f := range in.Flows {
		if f.Done {
			done++
		}
	}
	fmt.Printf("flows: %d recorded, %d consumed\n", len(in.Flows), done)
	if len(rep.CommMatrix) > 0 {
		fmt.Printf("\n%-12s %9s %12s %10s\n", "link", "msgs", "bytes", "recv_wait")
		for _, l := range rep.CommMatrix {
			fmt.Printf("%4d → %-5d %9d %12d %9.4fs\n", l.Src, l.Dst, l.Messages, l.Bytes, l.WaitSeconds)
		}
	}
	tl := obs.BuildTimeline(in.Spans, in.Flows, buckets)
	if len(tl) == 0 {
		return
	}
	fmt.Printf("\n%-22s %6s %12s %6s %12s %12s %7s %10s\n",
		"bucket", "sent", "sent_bytes", "recv", "recv_bytes", "in_flight", "active", "wait")
	for _, b := range tl {
		fmt.Printf("[%8.4fs, %8.4fs) %6d %12d %6d %12d %12d %7d %9.4fs\n",
			b.Start, b.End, b.MsgsSent, b.BytesSent, b.MsgsRecv, b.BytesRecv,
			b.BytesInFlight, b.ActiveSpans, b.WaitSeconds)
	}
}

func parseRadices(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var radices []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 2 {
			return nil, fmt.Errorf("msinsight: bad -radices %q", s)
		}
		radices = append(radices, r)
	}
	return radices, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msinsight: "+format+"\n", args...)
	os.Exit(1)
}
