// Command msinsight analyzes a run's exported observability artifacts:
// the Chrome-trace JSON written by msc -trace (or scraped from a live
// run's /trace endpoint) and, optionally, the Prometheus metrics dump
// from msc -metrics. It reports the critical path through the merge
// reduction tree, per-stage straggler flags with imbalance scores,
// per-round merge attribution (serialize / glue / simplify / wait
// time, payload growth), fault counts, and a deterministic tuning
// recommendation (merge radix schedule, block count, ranks to remap
// around).
//
// Usage:
//
//	msinsight -trace trace.json [-metrics metrics.prom] [-json]
//
// Block count and merge radices are normally inferred from the trace;
// -blocks and -radices override the inference for traces recorded
// without merge rounds. Output is a human-readable report by default;
// -json switches to the machine-readable form, which is byte-identical
// across runs of the same trace.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parms/internal/obs/analyze"
)

func main() {
	traceIn := flag.String("trace", "", "Chrome-trace JSON file of the run (required; from msc -trace or /trace)")
	metricsIn := flag.String("metrics", "", "Prometheus metrics dump of the run (optional; from msc -metrics or /metrics)")
	blocks := flag.Int("blocks", 0, "override the decomposition block count (0 = infer from the trace)")
	radicesFlag := flag.String("radices", "", `override the merge radix schedule, e.g. "4,8" (default: infer from the trace)`)
	madk := flag.Float64("madk", 0, "straggler threshold multiplier on the MAD (0 = default 4)")
	jsonOut := flag.Bool("json", false, "emit the machine-readable JSON report instead of the text rendering")
	flag.Parse()

	if *traceIn == "" {
		fmt.Fprintln(os.Stderr, "msinsight: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	radices, err := parseRadices(*radicesFlag)
	if err != nil {
		fatalf("%v", err)
	}

	f, err := os.Open(*traceIn)
	if err != nil {
		fatalf("%v", err)
	}
	in, err := analyze.ParseChromeTrace(f)
	f.Close()
	if err != nil {
		fatalf("%v", err)
	}
	if *metricsIn != "" {
		mf, err := os.Open(*metricsIn)
		if err != nil {
			fatalf("%v", err)
		}
		metrics, err := analyze.ParsePrometheus(mf)
		mf.Close()
		if err != nil {
			fatalf("%v", err)
		}
		in.Metrics = metrics
	}

	rep := analyze.Analyze(in, analyze.Config{Blocks: *blocks, Radices: radices, MADK: *madk})
	if *jsonOut {
		if err := rep.WriteJSON(os.Stdout); err != nil {
			fatalf("%v", err)
		}
		return
	}
	rep.Print(os.Stdout)
}

func parseRadices(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var radices []int
	for _, part := range strings.Split(s, ",") {
		r, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || r < 2 {
			return nil, fmt.Errorf("msinsight: bad -radices %q", s)
		}
		radices = append(radices, r)
	}
	return radices, nil
}

func fatalf(format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, "msinsight: "+format+"\n", args...)
	os.Exit(1)
}
