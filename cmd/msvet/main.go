// Command msvet is the repo's invariant multichecker: the static
// analyzers that make the determinism and collective-ordering bug
// classes unrepresentable (DESIGN §11, §16), including the
// interprocedural SPMD collective-sequence matcher. It loads every
// non-test package of the module from source — no go command, no
// network — runs the suite in dependency-parallel waves with a
// content-hash cache, and exits non-zero when any finding (or a
// malformed or stale //msvet:allow annotation) survives.
//
// Usage:
//
//	msvet [flags] [packages]
//
// Package arguments are import paths or the ./... pattern; with none,
// the whole module is checked.
//
// Exit codes: 0 clean, 1 findings, 2 loader or internal error.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"parms/internal/msvet"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list analyzers and exit")
	runNames := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	sarifOut := flag.String("sarif", "", "write findings as SARIF 2.1.0 to this file ('-' for stdout)")
	github := flag.Bool("github", false, "emit GitHub Actions ::error annotations alongside findings")
	nocache := flag.Bool("nocache", false, "disable the content-hash cache")
	cacheDir := flag.String("cachedir", "", "cache directory (default <module>/.msvet-cache)")
	stats := flag.Bool("stats", false, "print cache and timing statistics to stderr")
	workers := flag.Int("workers", 0, "parallel analysis workers (0 = one per CPU)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: msvet [flags] [packages]\n\nFlags:\n")
		flag.PrintDefaults()
		fmt.Fprintf(os.Stderr, "\nAnalyzers:\n")
		for _, a := range msvet.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range msvet.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := msvet.Analyzers()
	full := true
	if *runNames != "" {
		full = false
		analyzers = nil
		for _, name := range strings.Split(*runNames, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			found := false
			for _, a := range msvet.Analyzers() {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "msvet: unknown analyzer %q\n", name)
				return 2
			}
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		return fatal(err)
	}
	modRoot, modPath, err := msvet.ModuleRoot(wd)
	if err != nil {
		return fatal(err)
	}
	loader := msvet.NewLoader(modRoot, modPath)

	var paths []string
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				return fatal(err)
			}
			paths = append(paths, all...)
		case strings.HasPrefix(arg, "./"):
			rel := strings.TrimPrefix(arg, "./")
			if rel == "" || rel == "." {
				paths = append(paths, modPath)
			} else {
				paths = append(paths, modPath+"/"+rel)
			}
		default:
			paths = append(paths, arg)
		}
	}

	// Allow hygiene (justification present, annotation still live) is
	// only decidable when the full suite runs: a subset run cannot tell
	// a stale annotation from one whose analyzer was not selected.
	runner := &msvet.Runner{
		Loader:      loader,
		Analyzers:   analyzers,
		CheckAllows: full,
		Workers:     *workers,
	}
	if !*nocache {
		dir := *cacheDir
		if dir == "" {
			dir = msvet.DefaultCacheDir(modRoot)
		}
		cache, err := msvet.NewCache(dir, loader, analyzers, full)
		if err != nil {
			return fatal(err)
		}
		runner.Cache = cache
	}

	start := time.Now()
	findings, runStats, err := runner.Run(paths)
	if err != nil {
		return fatal(err)
	}
	elapsed := time.Since(start)

	for _, f := range findings {
		fmt.Printf("%s\n", f)
		if *github {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=msvet %s::%s\n",
				f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
		}
	}

	if *sarifOut != "" {
		out := os.Stdout
		if *sarifOut != "-" {
			fh, err := os.Create(*sarifOut)
			if err != nil {
				return fatal(err)
			}
			defer fh.Close()
			out = fh
		}
		if err := msvet.WriteSARIF(out, findings, modRoot); err != nil {
			return fatal(err)
		}
	}

	if *stats {
		fmt.Fprintf(os.Stderr, "msvet: %d packages, %d cache hits, %d analyzed, %.2fs\n",
			runStats.Packages, runStats.CacheHits, len(runStats.Analyzed), elapsed.Seconds())
	}

	if len(findings) > 0 {
		return 1
	}
	return 0
}

func fatal(err error) int {
	fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
	return 2
}
