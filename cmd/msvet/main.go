// Command msvet is the repo's invariant multichecker: five static
// analyzers that make the determinism and collective-ordering bug
// classes unrepresentable (DESIGN §11). It loads every non-test package
// of the module from source — no go command, no network — runs the
// suite, and exits non-zero when any finding (or a malformed or stale
// //msvet:allow annotation) survives.
//
// Usage:
//
//	msvet [-run wallclock,maporder,...] [-list] [packages]
//
// Package arguments are import paths or the ./... pattern; with none,
// the whole module is checked.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"parms/internal/msvet"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	run := flag.String("run", "", "comma-separated analyzer names to run (default: all)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: msvet [-run names] [-list] [packages]\n\nAnalyzers:\n")
		for _, a := range msvet.Analyzers() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
	}
	flag.Parse()

	if *list {
		for _, a := range msvet.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := msvet.Analyzers()
	full := true
	if *run != "" {
		full = false
		analyzers = nil
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			found := false
			for _, a := range msvet.Analyzers() {
				if a.Name == name {
					analyzers = append(analyzers, a)
					found = true
				}
			}
			if !found {
				fmt.Fprintf(os.Stderr, "msvet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	modRoot, modPath, err := msvet.ModuleRoot(wd)
	if err != nil {
		fatal(err)
	}
	loader := msvet.NewLoader(modRoot, modPath)

	var paths []string
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"./..."}
	}
	for _, arg := range args {
		switch {
		case arg == "./..." || arg == "...":
			all, err := loader.ModulePackages()
			if err != nil {
				fatal(err)
			}
			paths = append(paths, all...)
		case strings.HasPrefix(arg, "./"):
			rel := strings.TrimPrefix(arg, "./")
			if rel == "" || rel == "." {
				paths = append(paths, modPath)
			} else {
				paths = append(paths, modPath+"/"+rel)
			}
		default:
			paths = append(paths, arg)
		}
	}

	failed := false
	for _, path := range paths {
		pkg, err := loader.Load(path)
		if err != nil {
			fatal(err)
		}
		// Allow hygiene (justification present, annotation still live)
		// is only decidable when the full suite runs: a subset run
		// cannot tell a stale annotation from one whose analyzer was
		// simply not selected.
		findings, err := msvet.RunPackage(pkg, analyzers, full)
		if err != nil {
			fatal(err)
		}
		for _, f := range findings {
			fmt.Printf("%s\n", f)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "msvet: %v\n", err)
	os.Exit(2)
}
