// Command msbench regenerates the tables and figures of the paper's
// evaluation section on the virtual cluster. Each experiment prints the
// same rows or series the paper reports; compare shapes (who wins, by
// what factor, where crossovers fall) rather than absolute seconds.
//
// Usage:
//
//	msbench -exp table1|table2|fig4|fig5|fig6|fig7|fig9|fig10|all [flags]
//
// Beyond the paper's evaluation, extension studies are available:
// "balance" (multiple blocks per process on a skewed workload),
// "speedup" (real measured shared-memory scaling on this host),
// "globalsimplify" (the future-work global persistence simplification),
// "mapping" (torus rank-placement sensitivity of the merge stage),
// "bench" (a traced strong-scaling sweep that also writes a
// BENCH_<timestamp>.json snapshot with per-stage times, imbalance
// ratios, and communication volumes for trend tracking), and
// "recovery" (a recovery-cost drill crashing one rank per merge round,
// comparing checkpoint-restore against recompute-from-source).
//
// Flags:
//
//	-scale F     multiply dataset extents (default 1.0; the paper's
//	             sizes need roughly 8 and hours of runtime)
//	-maxprocs N  cap the largest rank count of scaling sweeps
//	-parallel N  bound host goroutine concurrency (default NumCPU)
//	-json FILE   where "bench" writes its JSON snapshot
//	             (default BENCH_<timestamp>.json)
//	-listen ADDR serve live introspection over HTTP for the duration
//	             of the run (/healthz, /metrics, /trace, /insight,
//	             /debug/pprof); traced experiments ("bench") publish
//	             the in-flight sweep point's observer
//	-q           quiet progress output
package main

import (
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"

	"parms/internal/experiments"
	"parms/internal/obs"
	"parms/internal/obs/analyze"
)

func main() {
	exp := flag.String("exp", "all", "experiment: table1, table2, fig4, fig5, fig6, fig7, fig9, fig10, balance, speedup, globalsimplify, mapping, bench, recovery, all")
	scale := flag.Float64("scale", 1.0, "dataset extent multiplier")
	maxProcs := flag.Int("maxprocs", 0, "cap on rank counts in scaling sweeps (0 = experiment default)")
	parallel := flag.Int("parallel", 0, "host goroutine concurrency bound (0 = NumCPU)")
	jsonOut := flag.String("json", "", `where "bench" writes its JSON snapshot (default BENCH_<timestamp>.json)`)
	listen := flag.String("listen", "", `serve live introspection over HTTP during the run (e.g. ":9151" or ":0")`)
	quiet := flag.Bool("q", false, "suppress progress output")
	flag.Parse()

	cfg := experiments.Config{
		Scale:       *scale,
		MaxProcs:    *maxProcs,
		MaxParallel: *parallel,
		Verbose:     !*quiet,
		Progress:    os.Stderr,
	}
	if *listen != "" {
		// Traced experiments publish each run's observer here; the
		// server reads whichever one the sweep currently holds.
		var current atomic.Pointer[obs.Observer]
		cfg.Observe = func(procs int) *obs.Observer {
			ob := obs.New(procs)
			current.Store(ob)
			return ob
		}
		insight := http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
			// Blocks and radices are inferred from the trace itself, so
			// the handler needs no per-sweep-point configuration.
			analyze.Handler(current.Load(), analyze.Config{}).ServeHTTP(w, req)
		})
		srv, err := obs.ServeFunc(*listen, current.Load, insight)
		if err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("listening  http://%s (/healthz /metrics /trace /insight /debug/pprof)\n", srv.Addr())
		defer func() {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "msbench: introspection server: %v\n", err)
			}
		}()
	}

	runners := map[string]func() error{
		"table1": func() error { return show(experiments.TableI(cfg)) },
		"table2": func() error { return show(experiments.TableII(cfg)) },
		"fig4":   func() error { return show(experiments.Fig4(cfg)) },
		"fig5":   func() error { return show(experiments.Fig5(cfg)) },
		"fig6":   func() error { return show(experiments.Fig6(cfg)) },
		"fig7":   func() error { return show(experiments.Fig7(cfg)) },
		"fig9":   func() error { return show(experiments.Fig9(cfg)) },
		"fig10":  func() error { return show(experiments.Fig10(cfg)) },
		// Studies beyond the paper's evaluation.
		"balance":        func() error { return show(experiments.LoadBalance(cfg)) },
		"speedup":        func() error { return show(experiments.Speedup(cfg)) },
		"globalsimplify": func() error { return show(experiments.GlobalSimplify(cfg)) },
		"mapping":        func() error { return show(experiments.Mapping(cfg)) },
		"bench":          func() error { return runBench(cfg, *jsonOut) },
		"recovery":       func() error { return show(experiments.Recovery(cfg)) },
	}
	order := []string{"table1", "table2", "fig4", "fig5", "fig6", "fig7", "fig9", "fig10",
		"balance", "speedup", "globalsimplify", "mapping", "bench", "recovery"}

	var selected []string
	if *exp == "all" {
		selected = order
	} else {
		for _, name := range strings.Split(*exp, ",") {
			name = strings.TrimSpace(name)
			if _, ok := runners[name]; !ok {
				fmt.Fprintf(os.Stderr, "msbench: unknown experiment %q (have %s)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			selected = append(selected, name)
		}
	}
	for _, name := range selected {
		start := time.Now()
		if err := runners[name](); err != nil {
			fmt.Fprintf(os.Stderr, "msbench: %s: %v\n", name, err)
			os.Exit(1)
		}
		fmt.Printf("[%s finished in %.1fs wall time]\n\n", name, time.Since(start).Seconds())
	}
}

// runBench runs the traced scaling sweep and writes its JSON snapshot.
func runBench(cfg experiments.Config, path string) error {
	res, err := experiments.Bench(cfg)
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	if path == "" {
		path = "BENCH_" + time.Now().UTC().Format("20060102T150405Z") + ".json"
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := res.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", path)
	return nil
}

// printable is any experiment result that renders itself as a table.
type printable interface{ Print(w io.Writer) }

func show(res printable, err error) error {
	if err != nil {
		return err
	}
	res.Print(os.Stdout)
	fmt.Println()
	return nil
}
