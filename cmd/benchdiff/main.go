// Command benchdiff gates a fresh bench sweep against a committed
// baseline snapshot. It first prints a human-readable delta table
// (per-stage modeled times, communication volume, peak merge payload;
// baseline → fresh with the relative change), then applies the gate:
// the virtual cluster is deterministic, so communication volume, peak
// payload and output complex sizes must match the baseline byte for
// byte; modeled per-stage times may only regress within a tolerance
// (improvements always pass).
//
// Usage:
//
//	msbench -exp bench -q -json fresh.json
//	benchdiff -fresh fresh.json [-baseline BENCH_x.json] [-tol 0.05]
//	benchdiff -fresh fresh.json -wall [-wall-tol 0.10]
//
// With -wall, the strict gate is replaced by the wall-clock gate: only
// compute_seconds is judged (per sweep run and per kernel-probe worker
// point), failing on regressions past -wall-tol; improvements and
// changes to every other quantity are report-only. This is the CI band
// for performance PRs, which legitimately change deterministic
// counters.
//
// When -baseline is omitted, the lexically newest BENCH_*.json in the
// current directory (excluding the fresh file) is used — the
// timestamped names sort chronologically. Exits 1 when the gate fails,
// 2 on usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"parms/internal/experiments"
)

func main() {
	fresh := flag.String("fresh", "", "fresh bench snapshot to gate (required)")
	baseline := flag.String("baseline", "", "baseline snapshot (default: newest BENCH_*.json here)")
	tol := flag.Float64("tol", 0.05, "allowed fractional regression in modeled stage times")
	wall := flag.Bool("wall", false, "wall-clock gate: judge only compute_seconds regressions")
	wallTol := flag.Float64("wall-tol", 0.10, "allowed fractional compute_seconds regression with -wall")
	flag.Parse()

	if *fresh == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -fresh is required")
		flag.Usage()
		os.Exit(2)
	}
	if *baseline == "" {
		found, err := newestBaseline(*fresh)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		*baseline = found
	}

	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: baseline: %v\n", err)
		os.Exit(2)
	}
	got, err := load(*fresh)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: fresh: %v\n", err)
		os.Exit(2)
	}

	fmt.Printf("bench delta: %s vs baseline %s\n", *fresh, *baseline)
	experiments.WriteBenchDelta(os.Stdout, base, got)
	fmt.Println()

	var violations []string
	if *wall {
		violations = experiments.CompareBenchWall(base, got, *wallTol)
	} else {
		violations = experiments.CompareBench(base, got, *tol)
	}
	if len(violations) > 0 {
		fmt.Printf("benchdiff: FAIL — %s vs baseline %s (%d violations)\n",
			*fresh, *baseline, len(violations))
		for _, v := range violations {
			fmt.Printf("  %s\n", v)
		}
		os.Exit(1)
	}
	if *wall {
		fmt.Printf("benchdiff: OK — %s within wall band of baseline %s (%d runs, compute_seconds tolerance %.0f%%)\n",
			*fresh, *baseline, len(base.Runs), 100**wallTol)
		return
	}
	fmt.Printf("benchdiff: OK — %s matches baseline %s (%d runs, stage-time tolerance %.0f%%)\n",
		*fresh, *baseline, len(base.Runs), 100**tol)
}

// newestBaseline picks the lexically newest BENCH_*.json in the current
// directory, skipping the fresh snapshot itself.
func newestBaseline(fresh string) (string, error) {
	matches, err := filepath.Glob("BENCH_*.json")
	if err != nil {
		return "", err
	}
	freshAbs, _ := filepath.Abs(fresh)
	var candidates []string
	for _, m := range matches {
		abs, _ := filepath.Abs(m)
		if abs == freshAbs {
			continue
		}
		candidates = append(candidates, m)
	}
	if len(candidates) == 0 {
		return "", fmt.Errorf("no baseline BENCH_*.json found (pass -baseline)")
	}
	sort.Strings(candidates)
	return candidates[len(candidates)-1], nil
}

func load(path string) (*experiments.BenchResult, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return experiments.DecodeBenchJSON(f)
}
