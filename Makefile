GO ?= go

.PHONY: all build test race race-short chaos chaos-nightly fuzz vet msvet msvet-bench lint trace insight flows bench benchgate benchgate-wall kernels microbench clean

all: lint build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The PR-budget race pass CI runs on every pull request: the full test
# surface under the race detector, with -short trimming the large-rank
# sweeps and the whole-module type-check the full `make race` keeps.
race-short:
	$(GO) test -race -short ./...

# The chaos suite: every fault-injection and recovery test (rank
# crashes, dropped/corrupted/duplicated payloads, flaky storage,
# checkpoint restores) under the race detector. No injected fault may
# hang; each test carries a hard real-time guard. -short keeps PR runs
# quick by shrinking the large-rank sweeps; nightly runs them in full.
chaos:
	$(GO) test -race -short -run Chaos ./...

# The full chaos suite at nightly scale: large-rank sweeps included,
# cache bypassed so every fault schedule actually replays.
chaos-nightly:
	$(GO) test -race -count=1 -run Chaos ./...

# Brief coverage-guided fuzz of the merge frame decoder and the
# checkpoint decoder on top of the seeded corpus that `make test`
# already replays.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzChaosUnframe -fuzztime 30s ./internal/merge/
	$(GO) test -run '^$$' -fuzz FuzzChaosDecodeCheckpoint -fuzztime 30s ./internal/pario/

# Standard vet plus the repo's own invariant multichecker (cmd/msvet,
# DESIGN §11, §16): the per-package analyzers plus the interprocedural
# SPMD collective-sequence matcher. msvet exits 1 on any finding or on
# a malformed/stale //msvet:allow annotation, 2 on loader errors. The
# content-hash cache under .msvet-cache/ makes warm reruns replay
# unchanged packages; -stats prints the hit rate and elapsed seconds.
vet:
	$(GO) vet ./...
	$(GO) run ./cmd/msvet -stats ./...

msvet:
	$(GO) run ./cmd/msvet -stats ./...

# The analysis-engine self-benchmark: warm cached passes of the full
# suite over the whole module (the cache is primed outside the timer).
msvet-bench:
	$(GO) test ./internal/msvet/ -run '^$$' -bench BenchmarkRunRepo -benchtime 3x

# The lint umbrella mirrors exactly what the CI lint job enforces:
# formatting, go vet, and the msvet invariant suite.
lint:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:" >&2; echo "$$unformatted" >&2; exit 1; \
	fi
	$(GO) vet ./...
	$(GO) run ./cmd/msvet ./...

# One small traced pipeline run: generate a sinusoid volume, run msc
# with tracing and metrics on 16 ranks, then validate the trace JSON
# (well-formed, monotonic timestamps per track, every flow start paired
# with exactly one finish). Artifacts: trace.json, metrics.prom,
# flows.json.
trace:
	$(GO) run ./cmd/mkdata -kind sinusoid -n 33 -features 4 -o /tmp/parms-trace.raw
	$(GO) run ./cmd/msc -in /tmp/parms-trace.raw -dims 33x33x33 -procs 16 -merge full \
		-trace trace.json -metrics metrics.prom -flows flows.json -out /tmp/parms-trace.msc
	$(GO) run ./cmd/tracecheck -flows trace.json

# Trace analytics over the canned traced run: critical path, straggler
# flags, per-round merge attribution, and the tuning recommendation —
# printed as the human table and written as the machine-readable
# insight.json artifact (byte-identical across same-trace runs).
insight: trace
	$(GO) run ./cmd/msinsight -trace trace.json -metrics metrics.prom
	$(GO) run ./cmd/msinsight -trace trace.json -metrics metrics.prom -json > insight.json

# The message-flow view of the canned traced run: the rank×rank
# communication matrix and the bucketed virtual-time timeline, rebuilt
# from the trace's flow events (plus the raw flows.json dump the trace
# target already wrote).
flows: trace
	$(GO) run ./cmd/msinsight -trace trace.json -flows

# Traced strong-scaling sweep; writes a BENCH_<timestamp>.json snapshot
# with per-stage times, imbalance ratios, and communication volumes.
bench:
	$(GO) run ./cmd/msbench -exp bench

# Regression gate: rerun the bench sweep and compare it against the
# newest committed BENCH_*.json baseline. Deterministic quantities
# (communication volume, peak payload, complex sizes) must match
# exactly; modeled stage times may regress at most 5%. Refresh the
# committed baseline in the same PR when a drift is deliberate.
benchgate:
	$(GO) run ./cmd/msbench -exp bench -q -json BENCH_nightly.json
	$(GO) run ./cmd/benchdiff -fresh BENCH_nightly.json

# The wall-clock gate CI runs on every pull request: rerun the bench
# sweep and judge only compute_seconds (per sweep run and per
# kernel-probe worker point) against the newest committed baseline,
# failing on regressions past 10%. Improvements and changes to
# deterministic counters are report-only here — performance PRs
# legitimately move those and refresh the baseline; this band just
# stops compute from getting slower.
benchgate-wall:
	$(GO) run ./cmd/msbench -exp bench -q -json BENCH_wall.json
	$(GO) run ./cmd/benchdiff -fresh BENCH_wall.json -wall -wall-tol 0.10

# The intra-rank kernel surface in one target: worker-pool unit tests,
# the cross-width byte-equivalence and sweep-determinism suite, and the
# pooled gradient/tracer microbenchmarks.
kernels:
	$(GO) test ./internal/kernel/ ./internal/serial/
	$(GO) test -run '^$$' -bench 'Pooled' -benchtime 3x ./internal/gradient/ ./internal/mscomplex/

# The paper-evaluation drivers as Go microbenchmarks.
microbench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
