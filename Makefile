GO ?= go

.PHONY: all build test race chaos fuzz vet bench clean

all: vet build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# The chaos suite: every fault-injection and recovery test (rank
# crashes, dropped/corrupted/duplicated payloads, flaky storage) under
# the race detector. No injected fault may hang; each test carries a
# hard real-time guard.
chaos:
	$(GO) test -race -run Chaos ./...

# Brief coverage-guided fuzz of the frame decoder on top of the seeded
# corpus that `make test` already replays.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzChaosUnframe -fuzztime 30s ./internal/merge/

vet:
	$(GO) vet ./...

bench:
	$(GO) test -run '^$$' -bench . -benchtime 1x .

clean:
	$(GO) clean ./...
