package pario

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/synth"
)

func TestVolumeBlockRead(t *testing.T) {
	fs := mpsim.NewFS()
	dims := grid.Dims{12, 10, 8}
	for _, dt := range []grid.DType{grid.U8, grid.F32, grid.F64} {
		vol := grid.NewVolume(dims)
		vol.DType = dt
		for i := range vol.Data {
			vol.Data[i] = float32(i % 250)
		}
		WriteVolume(fs, "vol", vol)
		dec, err := grid.Decompose(dims, 4)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range dec.Blocks {
			got, err := ReadBlockVolume(fs, "vol", dims, dt, b)
			if err != nil {
				t.Fatal(err)
			}
			want := vol.SubVolume(b.Lo, b.Hi)
			if got.Dims != want.Dims {
				t.Fatalf("%v block %d dims %v want %v", dt, b.ID, got.Dims, want.Dims)
			}
			for i := range want.Data {
				if got.Data[i] != want.Data[i] {
					t.Fatalf("%v block %d sample %d: %v want %v", dt, b.ID, i, got.Data[i], want.Data[i])
				}
			}
			if BlockBytes(dt, b) != int64(dt.Size())*b.Verts() {
				t.Fatal("BlockBytes wrong")
			}
		}
	}
}

func makeComplex(t *testing.T) *mscomplex.Complex {
	t.Helper()
	vol := synth.Sinusoid(13, 2)
	block := grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{12, 12, 12}}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	return mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
}

func TestOutputFileRoundTrip(t *testing.T) {
	fs := mpsim.NewFS()
	ms := makeComplex(t)
	payload := ms.Serialize()

	crc := mpsim.Checksum(payload)
	entries := []IndexEntry{
		{BlockID: 0, Offset: 0, Size: int64(len(payload)), CRC: crc, Region: []int32{0}},
		{BlockID: 4, Offset: int64(len(payload)), Size: int64(len(payload)), CRC: crc, Region: []int32{4, 5}},
	}
	var file []byte
	file = append(file, payload...)
	file = append(file, payload...)
	file = append(file, EncodeFooter(entries)...)
	fs.Put("out.msc", file)

	idx, err := ReadIndex(fs, "out.msc")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("%d index entries", len(idx))
	}
	if idx[1].BlockID != 4 || len(idx[1].Region) != 2 || idx[1].Region[1] != 5 {
		t.Fatalf("entry 1: %+v", idx[1])
	}
	if idx[0].CRC != crc || idx[1].CRC != crc {
		t.Fatalf("payload CRCs not round-tripped: %#x %#x want %#x", idx[0].CRC, idx[1].CRC, crc)
	}
	all, err := LoadAll(fs, "out.msc")
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, wantArcs := ms.AliveCounts()
	for i, back := range all {
		gotNodes, gotArcs := back.AliveCounts()
		if gotNodes != wantNodes || gotArcs != wantArcs {
			t.Fatalf("complex %d: %v/%d want %v/%d", i, gotNodes, gotArcs, wantNodes, wantArcs)
		}
	}
}

func TestReadIndexRejectsCorrupt(t *testing.T) {
	fs := mpsim.NewFS()
	fs.Put("tiny", []byte{1, 2, 3})
	if _, err := ReadIndex(fs, "tiny"); err == nil {
		t.Fatal("accepted tiny file")
	}
	fs.Put("badmagic", make([]byte, 64))
	if _, err := ReadIndex(fs, "badmagic"); err == nil {
		t.Fatal("accepted bad magic")
	}
	if _, err := ReadIndex(fs, "missing"); err == nil {
		t.Fatal("accepted missing file")
	}
	// Valid magic but absurd footer length.
	bad := make([]byte, 32)
	tail := EncodeFooter(nil)
	// Corrupt the length field (first byte of the 20-byte trailer).
	tail[len(tail)-20] = 0xff
	bad = append(bad, tail...)
	fs.Put("badlen", bad)
	if _, err := ReadIndex(fs, "badlen"); err == nil {
		t.Fatal("accepted bad footer length")
	}
}

func TestChecksumsRejectCorruption(t *testing.T) {
	fs := mpsim.NewFS()
	ms := makeComplex(t)
	payload := ms.Serialize()
	entries := []IndexEntry{
		{BlockID: 0, Offset: 0, Size: int64(len(payload)), CRC: mpsim.Checksum(payload), Region: []int32{0}},
	}
	file := append(append([]byte(nil), payload...), EncodeFooter(entries)...)

	// A flipped bit inside the footer body fails the trailer checksum.
	corrupted := append([]byte(nil), file...)
	corrupted[len(payload)+2] ^= 0x01
	fs.Put("badfooter", corrupted)
	if _, err := ReadIndex(fs, "badfooter"); err == nil {
		t.Fatal("accepted corrupted footer")
	}

	// A flipped bit inside the payload fails the per-entry checksum.
	corrupted = append([]byte(nil), file...)
	corrupted[len(payload)/2] ^= 0x80
	fs.Put("badpayload", corrupted)
	idx, err := ReadIndex(fs, "badpayload")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadComplex(fs, "badpayload", idx[0]); err == nil {
		t.Fatal("accepted corrupted payload")
	}

	// CRC 0 means "not recorded": verification is skipped and the
	// corruption surfaces (or not) in deserialization only.
	idx[0].CRC = 0
	fs.Put("intact", file)
	if _, err := LoadComplex(fs, "intact", idx[0]); err != nil {
		t.Fatalf("unrecorded CRC rejected intact payload: %v", err)
	}
}
