// Package pario implements the pipeline's parallel I/O: raw volume
// files read block-by-block with MPI-IO-style subarray views, and the
// output file format for merged MS complex blocks — a binary
// concatenation of block payloads followed by a footer that indexes the
// complexes contained in the file, as documented in the paper (section
// IV-G).
package pario

import (
	"encoding/binary"
	"fmt"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
)

// WriteVolume stores a volume into the cluster filesystem as raw
// little-endian samples in x-fastest order.
func WriteVolume(fs *mpsim.FS, name string, v *grid.Volume) {
	fs.Put(name, v.Bytes())
}

// ReadBlockVolume extracts one block's closed vertex box from a raw
// volume file. It reads row by row (the subarray view), converting
// samples to float32. The caller accounts the I/O time separately via
// Rank.IOAccount, because several ranks read collectively.
func ReadBlockVolume(fs *mpsim.FS, name string, dims grid.Dims, dt grid.DType, b grid.Block) (*grid.Volume, error) {
	vol, _, err := ReadBlockVolumeStats(fs, name, dims, dt, b)
	return vol, err
}

// readRetryLimit bounds how often one row read is retried after a
// transient (flaky-storage) error before giving up.
const readRetryLimit = 5

// ReadBlockVolumeStats is ReadBlockVolume reporting how many row reads
// had to be retried after transient filesystem errors. Permanent errors
// (and transient ones persisting past the retry limit) surface as
// errors.
func ReadBlockVolumeStats(fs *mpsim.FS, name string, dims grid.Dims, dt grid.DType, b grid.Block) (*grid.Volume, int, error) {
	bd := b.Dims()
	out := grid.NewVolume(bd)
	ss := int64(dt.Size())
	rowBytes := int(ss) * bd[0]
	retries := 0
	for z := 0; z < bd[2]; z++ {
		for y := 0; y < bd[1]; y++ {
			off := ss * (int64(b.Lo[0]) +
				int64(b.Lo[1]+y)*int64(dims[0]) +
				int64(b.Lo[2]+z)*int64(dims[0])*int64(dims[1]))
			raw, err := readAtRetry(fs, name, off, rowBytes, &retries)
			if err != nil {
				return nil, retries, fmt.Errorf("pario: block %d row (%d,%d): %w", b.ID, y, z, err)
			}
			row, err := grid.DecodeSamples(raw, dt)
			if err != nil {
				return nil, retries, err
			}
			copy(out.Data[out.VertIndex(0, y, z):], row)
		}
	}
	return out, retries, nil
}

func readAtRetry(fs *mpsim.FS, name string, off int64, n int, retries *int) ([]byte, error) {
	for attempt := 0; ; attempt++ {
		raw, err := fs.ReadAt(name, off, n)
		if err == nil || !fault.IsTransient(err) || attempt == readRetryLimit {
			return raw, err
		}
		*retries++
	}
}

// BlockBytes returns the number of bytes a block's subarray read moves.
func BlockBytes(dt grid.DType, b grid.Block) int64 {
	return int64(dt.Size()) * b.Verts()
}

// Output file format (version 2, checksummed):
//
//	payload of block A | payload of block B | ... | footer | trailer
//
// footer:
//
//	u32 entry count, then per entry:
//	  u32 block id, u64 offset, u64 size, u32 payload crc32c,
//	  u32 region length, u32 region ids
//
// trailer (20 bytes):
//
//	footerLen u64 | footer crc32c u32 | magic u64
//
// The per-entry CRC covers the block payload; the trailer CRC covers
// the footer bytes. A reader can therefore detect any corruption of
// either the index or the payloads before deserializing.
const outputMagic = 0x324d5346435350 // "PCSFM2"

// trailerLen is the fixed byte length of the output file trailer.
const trailerLen = 20

// IndexEntry locates one MS complex block inside an output file. CRC is
// the CRC-32C of the payload bytes; zero means "not recorded" (payload
// verification is skipped).
type IndexEntry struct {
	BlockID int32
	Offset  int64
	Size    int64
	CRC     uint32
	Region  []int32
}

// EncodeFooter serializes the footer (including trailer) for the given
// index entries.
func EncodeFooter(entries []IndexEntry) []byte {
	var buf []byte
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(entries)))
	for _, e := range entries {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(e.BlockID))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Offset))
		buf = binary.LittleEndian.AppendUint64(buf, uint64(e.Size))
		buf = binary.LittleEndian.AppendUint32(buf, e.CRC)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(e.Region)))
		for _, b := range e.Region {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(b))
		}
	}
	footerLen := uint64(len(buf))
	footerCRC := mpsim.Checksum(buf)
	buf = binary.LittleEndian.AppendUint64(buf, footerLen)
	buf = binary.LittleEndian.AppendUint32(buf, footerCRC)
	buf = binary.LittleEndian.AppendUint64(buf, outputMagic)
	return buf
}

// ReadIndex parses and verifies the footer of an output file.
func ReadIndex(fs *mpsim.FS, name string) ([]IndexEntry, error) {
	size, err := fs.Size(name)
	if err != nil {
		return nil, err
	}
	if size < trailerLen {
		return nil, fmt.Errorf("pario: %q too small for a footer", name)
	}
	tail, err := fs.ReadAt(name, size-trailerLen, trailerLen)
	if err != nil {
		return nil, err
	}
	footerLen := int64(binary.LittleEndian.Uint64(tail[0:8]))
	footerCRC := binary.LittleEndian.Uint32(tail[8:12])
	if magic := binary.LittleEndian.Uint64(tail[12:20]); magic != outputMagic {
		return nil, fmt.Errorf("pario: bad magic %#x in %q", magic, name)
	}
	if footerLen < 4 || footerLen > size-trailerLen {
		return nil, fmt.Errorf("pario: bad footer length %d in %q", footerLen, name)
	}
	raw, err := fs.ReadAt(name, size-trailerLen-footerLen, int(footerLen))
	if err != nil {
		return nil, err
	}
	if got := mpsim.Checksum(raw); got != footerCRC {
		return nil, fmt.Errorf("pario: footer checksum mismatch in %q: %#x != %#x", name, got, footerCRC)
	}
	off := 0
	u32 := func() uint32 {
		v := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		return v
	}
	u64 := func() uint64 {
		v := binary.LittleEndian.Uint64(raw[off:])
		off += 8
		return v
	}
	count := int(u32())
	entries := make([]IndexEntry, 0, count)
	for i := 0; i < count; i++ {
		e := IndexEntry{BlockID: int32(u32())}
		e.Offset = int64(u64())
		e.Size = int64(u64())
		e.CRC = u32()
		nRegion := int(u32())
		e.Region = make([]int32, nRegion)
		for j := range e.Region {
			e.Region[j] = int32(u32())
		}
		entries = append(entries, e)
	}
	return entries, nil
}

// LoadComplex reads, checksum-verifies and deserializes one indexed
// complex block.
func LoadComplex(fs *mpsim.FS, name string, e IndexEntry) (*mscomplex.Complex, error) {
	payload, err := fs.ReadAt(name, e.Offset, int(e.Size))
	if err != nil {
		return nil, err
	}
	if e.CRC != 0 {
		if got := mpsim.Checksum(payload); got != e.CRC {
			return nil, fmt.Errorf("pario: payload checksum mismatch for block %d: %#x != %#x", e.BlockID, got, e.CRC)
		}
	}
	return mscomplex.Deserialize(payload)
}

// LoadAll reads every complex block in an output file.
func LoadAll(fs *mpsim.FS, name string) ([]*mscomplex.Complex, error) {
	idx, err := ReadIndex(fs, name)
	if err != nil {
		return nil, err
	}
	out := make([]*mscomplex.Complex, len(idx))
	for i, e := range idx {
		if out[i], err = LoadComplex(fs, name, e); err != nil {
			return nil, fmt.Errorf("pario: block %d: %w", e.BlockID, err)
		}
	}
	return out, nil
}
