package pario

import (
	"bytes"
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/mscomplex"
	"parms/internal/synth"
)

func makeRegionComplex(tb testing.TB) *grid.Volume {
	tb.Helper()
	return synth.Sinusoid(13, 2)
}

func checkpointImage(tb testing.TB) []byte {
	tb.Helper()
	vol := makeRegionComplex(tb)
	block := grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{12, 12, 12}}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	ms := mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
	ms.Region = []int32{0}
	return EncodeCheckpoint(0, ms)
}

func TestCheckpointRoundTrip(t *testing.T) {
	vol := makeRegionComplex(t)
	block := grid.Block{ID: 7, Lo: [3]int{0, 0, 0}, Hi: [3]int{12, 12, 12}}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	ms := mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
	ms.Region = []int32{7}

	data := EncodeCheckpoint(7, ms)
	id, back, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if id != 7 {
		t.Errorf("block id = %d, want 7", id)
	}
	// The restored complex must be bit-faithful: recovery glues it in
	// place of the payload the lost member would have sent.
	if !bytes.Equal(back.Serialize(), ms.Serialize()) {
		t.Error("restored complex serializes differently from the original")
	}
	if len(back.Region) != 1 || back.Region[0] != 7 {
		t.Errorf("restored region %v, want [7]", back.Region)
	}
}

// TestCheckpointCorruptionRejected flips every byte of a checkpoint
// image and tries a spread of truncations: the CRC-verified decode must
// reject all of them — recovery must never glue damaged state.
func TestCheckpointCorruptionRejected(t *testing.T) {
	data := checkpointImage(t)
	for i := range data {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0x40
		if _, _, err := DecodeCheckpoint(bad); err == nil {
			t.Fatalf("byte flip at offset %d of %d accepted", i, len(data))
		}
	}
	for n := 0; n < len(data); n += 13 {
		if _, _, err := DecodeCheckpoint(data[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(data))
		}
	}
	if _, _, err := DecodeCheckpoint(data); err != nil {
		t.Fatalf("intact checkpoint rejected: %v", err)
	}
}

// FuzzChaosDecodeCheckpoint: DecodeCheckpoint must never panic on
// arbitrary bytes — a crafted footer whose CRC validates still may not
// drive reads out of bounds — and any single-byte flip of a valid
// checkpoint must be rejected.
func FuzzChaosDecodeCheckpoint(f *testing.F) {
	img := checkpointImage(f)
	f.Add(img, 0, byte(0x01))
	f.Add(img, len(img)/2, byte(0x80))
	f.Add(img, len(img)-1, byte(0xff))
	f.Add([]byte{}, 0, byte(0))
	f.Fuzz(func(t *testing.T, data []byte, pos int, mask byte) {
		_, orig, err := DecodeCheckpoint(data)
		if err != nil {
			return // not a valid checkpoint to begin with
		}
		if len(data) == 0 || mask == 0 {
			return
		}
		idx := int(uint(pos) % uint(len(data)))
		mutated := append([]byte(nil), data...)
		mutated[idx] ^= mask
		if _, back, err := DecodeCheckpoint(mutated); err == nil {
			t.Fatalf("corrupted checkpoint accepted (flip at %d, mask %#x, same bytes: %v)",
				idx, mask, bytes.Equal(back.Serialize(), orig.Serialize()))
		}
	})
}
