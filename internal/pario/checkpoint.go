package pario

import (
	"encoding/binary"
	"fmt"

	"parms/internal/mpsim"
	"parms/internal/mscomplex"
)

// Merge-round checkpoints reuse the PCSFM2 output framing with exactly
// one index entry: a group root persists its round-k merged complex as
//
//	payload | footer (1 entry) | trailer
//
// so the recovery path can validate a candidate with the same payload
// and footer CRCs the final output uses, and fall back to recompute on
// any mismatch. One file per (round, root block) keeps writes
// independent — no collective synchronization in the hot merge loop.

// CheckpointName returns the shared-filesystem path of the checkpoint
// a group root writes for its block after the given merge round.
func CheckpointName(dir string, round, block int) string {
	return fmt.Sprintf("%s/round%03d/block%06d.msc", dir, round, block)
}

// EncodeCheckpoint frames one merged complex as a single-entry PCSFM2
// file ready to be written at offset 0.
func EncodeCheckpoint(block int, ms *mscomplex.Complex) []byte {
	payload := ms.Serialize()
	entry := IndexEntry{
		BlockID: int32(block),
		Offset:  0,
		Size:    int64(len(payload)),
		CRC:     mpsim.Checksum(payload),
		Region:  ms.Region,
	}
	return append(payload, EncodeFooter([]IndexEntry{entry})...)
}

// DecodeCheckpoint parses, CRC-verifies and deserializes a checkpoint
// file image. It returns the block id recorded in the footer and the
// restored complex. Any framing damage — truncation, bad magic, CRC
// mismatch of footer or payload, out-of-range offsets — is an error,
// never a panic: the bytes come from storage a fault plan may have
// bit-flipped.
func DecodeCheckpoint(data []byte) (int, *mscomplex.Complex, error) {
	size := int64(len(data))
	if size < trailerLen {
		return 0, nil, fmt.Errorf("pario: checkpoint too small (%d bytes)", size)
	}
	tail := data[size-trailerLen:]
	footerLen := int64(binary.LittleEndian.Uint64(tail[0:8]))
	footerCRC := binary.LittleEndian.Uint32(tail[8:12])
	if magic := binary.LittleEndian.Uint64(tail[12:20]); magic != outputMagic {
		return 0, nil, fmt.Errorf("pario: bad checkpoint magic %#x", magic)
	}
	if footerLen < 4 || footerLen > size-trailerLen {
		return 0, nil, fmt.Errorf("pario: bad checkpoint footer length %d", footerLen)
	}
	raw := data[size-trailerLen-footerLen : size-trailerLen]
	if got := mpsim.Checksum(raw); got != footerCRC {
		return 0, nil, fmt.Errorf("pario: checkpoint footer checksum mismatch: %#x != %#x", got, footerCRC)
	}
	entries, err := decodeFooterEntries(raw)
	if err != nil {
		return 0, nil, err
	}
	if len(entries) != 1 {
		return 0, nil, fmt.Errorf("pario: checkpoint has %d index entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Offset != 0 || e.Size < 0 || e.Size > size-trailerLen-footerLen {
		return 0, nil, fmt.Errorf("pario: checkpoint payload [%d,%d) out of bounds", e.Offset, e.Offset+e.Size)
	}
	payload := data[e.Offset : e.Offset+e.Size]
	if e.CRC != 0 {
		if got := mpsim.Checksum(payload); got != e.CRC {
			return 0, nil, fmt.Errorf("pario: checkpoint payload checksum mismatch for block %d: %#x != %#x", e.BlockID, got, e.CRC)
		}
	}
	ms, err := mscomplex.Deserialize(payload)
	if err != nil {
		return 0, nil, err
	}
	return int(e.BlockID), ms, nil
}

// decodeFooterEntries parses CRC-verified footer bytes with explicit
// bounds checks, so a footer whose CRC happens to validate (e.g. a
// hand-crafted fuzz input) still cannot drive reads past the buffer.
func decodeFooterEntries(raw []byte) ([]IndexEntry, error) {
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(raw[off:])
		off += 4
		return v, true
	}
	u64 := func() (uint64, bool) {
		if off+8 > len(raw) {
			return 0, false
		}
		v := binary.LittleEndian.Uint64(raw[off:])
		off += 8
		return v, true
	}
	truncated := fmt.Errorf("pario: truncated footer")
	n, ok := u32()
	if !ok {
		return nil, truncated
	}
	count := int(n)
	// Each entry is at least 24 bytes; reject counts the buffer cannot
	// possibly hold before allocating.
	if count < 0 || count > len(raw)/24 {
		return nil, fmt.Errorf("pario: footer entry count %d exceeds footer size", count)
	}
	entries := make([]IndexEntry, 0, count)
	for i := 0; i < count; i++ {
		var e IndexEntry
		id, ok1 := u32()
		eo, ok2 := u64()
		es, ok3 := u64()
		crc, ok4 := u32()
		nr, ok5 := u32()
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
			return nil, truncated
		}
		e.BlockID = int32(id)
		e.Offset = int64(eo)
		e.Size = int64(es)
		e.CRC = crc
		nRegion := int(nr)
		if nRegion < 0 || nRegion > (len(raw)-off)/4 {
			return nil, fmt.Errorf("pario: footer region count %d exceeds footer size", nRegion)
		}
		e.Region = make([]int32, nRegion)
		for j := range e.Region {
			v, ok := u32()
			if !ok {
				return nil, truncated
			}
			e.Region[j] = int32(v)
		}
		entries = append(entries, e)
	}
	return entries, nil
}
