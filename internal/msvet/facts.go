package msvet

// facts.go is the package-level fact store of the interprocedural
// engine (DESIGN §16). Analyzing one package produces a PackageFacts
// summary — per-function rank-taint masks, per-function collective-
// sequence summaries, field-taint bits, and the Send/Recv tag table —
// that importing packages consume instead of re-reading the callee's
// source. The shape mirrors golang.org/x/tools/go/analysis Facts: facts
// are computed once per package in dependency order, are serializable
// (JSON, so the content-hash cache can replay them without
// type-checking), and are keyed by stable string object keys rather
// than *types.Object pointers, which do not survive a cache round trip.

import (
	"go/types"
	"sort"
	"strings"
	"sync"
)

// A TaintMask records where a value's rank-dependence can come from.
// Bit 0 is the rank-identity source itself (Rank.ID, the mpsim rank id
// field, or anything derived from them); bits 1..62 are the function's
// parameter slots (receiver first for methods), so a callee can report
// "my result is tainted iff argument i is" and the call site resolves
// the mask against the actual arguments.
type TaintMask uint64

// RankTaint is the rank-identity source bit.
const RankTaint TaintMask = 1

// maxParamSlots bounds the parameter slots a mask can express; flows
// through later parameters are dropped (never causing false positives,
// only missed findings in 63-parameter functions).
const maxParamSlots = 62

// ParamTaint returns the mask bit for parameter slot i, or 0 when the
// slot is out of the representable range.
func ParamTaint(slot int) TaintMask {
	if slot < 0 || slot >= maxParamSlots {
		return 0
	}
	return 1 << (uint(slot) + 1)
}

// HasRank reports whether the mask includes the rank-identity source.
func (m TaintMask) HasRank() bool { return m&RankTaint != 0 }

// ParamBits returns only the parameter-slot bits of the mask.
func (m TaintMask) ParamBits() TaintMask { return m &^ RankTaint }

// slots yields the parameter slot indices set in the mask.
func (m TaintMask) slots() []int {
	var out []int
	for i := 0; i < maxParamSlots; i++ {
		if m&ParamTaint(i) != 0 {
			out = append(out, i)
		}
	}
	return out
}

// Dependence classes for summary variants: how the path carrying a
// sequence was selected. This is the summary lattice's height-3 chain —
// none ⊑ param ⊑ rank. Two variants with different sequences are a
// finding only when joined at rank; param defers the verdict to call
// sites, which resolve it against argument taint.
const (
	depNone  uint8 = iota // unconditional, or selected by rank-uniform conditions
	depParam              // selected by a condition on a formal parameter
	depRank               // selected by a rank-derived condition
)

// A Variant is one possible ordered collective sequence through a
// function. Seq elements are mpsim collective method names, "loop{...}"
// digests for uniform-count loops, and "call:pkg.fn" markers for
// opaque callees that may perform collectives.
type Variant struct {
	Seq    []string  `json:"seq,omitempty"`
	Dep    uint8     `json:"dep,omitempty"`
	Params TaintMask `json:"params,omitempty"`
}

// A Summary is a function's collective-sequence fact: the set of
// distinct sequences reachable through it. Opaque is the lattice top —
// the function blew the enumeration caps (or recursion), so callers
// treat the whole call as one opaque element instead of inlining.
type Summary struct {
	Variants []Variant `json:"variants,omitempty"`
	May      bool      `json:"may,omitempty"`
	Opaque   bool      `json:"opaque,omitempty"`
}

// A TagUse is one Send/Recv-family call site with a statically
// resolvable tag key: "v:<n>" for constant tags, "c:<pkg>.<name>" for
// tags built from a named tag-base constant. Dynamic tags are never
// recorded. Allowed marks sites covered by a justified
// //msvet:allow sendrecv annotation, so the repo-wide Finish matching
// can honor suppressions without re-reading source.
type TagUse struct {
	Key     string `json:"key"`
	Expr    string `json:"expr"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Allowed bool   `json:"allowed,omitempty"`
}

// PackageFacts is everything one package exports to its importers.
// Function keys are "Name" for package-level functions and "(T).Name"
// for methods; field keys are "pkg.(T).field" (globally qualified,
// since any package can taint a field of an imported struct).
type PackageFacts struct {
	Path      string                 `json:"path"`
	Taint     map[string][]TaintMask `json:"taint,omitempty"`
	Fields    map[string]bool        `json:"fields,omitempty"`
	Summaries map[string]Summary     `json:"summaries,omitempty"`
	SendTags  []TagUse               `json:"send_tags,omitempty"`
	RecvTags  []TagUse               `json:"recv_tags,omitempty"`
}

func newPackageFacts(path string) *PackageFacts {
	return &PackageFacts{
		Path:      path,
		Taint:     map[string][]TaintMask{},
		Fields:    map[string]bool{},
		Summaries: map[string]Summary{},
	}
}

// funcKeyOf returns the fact key of a function within its package and
// the package path, or "" when the function has no stable key (no
// package, or a method on a non-named receiver).
func funcKeyOf(fn *types.Func) (pkgPath, key string) {
	if fn.Pkg() == nil {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", ""
	}
	if recv := sig.Recv(); recv != nil {
		named := namedOf(recv.Type())
		if named == nil {
			return "", ""
		}
		return fn.Pkg().Path(), "(" + named.Obj().Name() + ")." + fn.Name()
	}
	return fn.Pkg().Path(), fn.Name()
}

// namedOf unwraps pointers to the named type underneath, or nil.
func namedOf(t types.Type) *types.Named {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// fieldKeyOf returns the global fact key of a struct field reached
// through a selection on recv, or "" when the owner is anonymous.
func fieldKeyOf(recv types.Type, field *types.Var) string {
	named := namedOf(recv)
	if named == nil || named.Obj().Pkg() == nil {
		return ""
	}
	return named.Obj().Pkg().Path() + ".(" + named.Obj().Name() + ")." + field.Name()
}

// A FactStore holds the facts of every package touched by one analysis
// run — computed from source, or replayed from the cache — and computes
// missing ones on demand in import order. It is safe for concurrent use
// by the parallel runner: distinct packages compute under distinct
// entry locks, and the import DAG is acyclic so lock order is too.
type FactStore struct {
	modPath string
	load    func(path string) (*Package, error)
	mu      sync.Mutex
	entries map[string]*factEntry
}

type factEntry struct {
	mu    sync.Mutex
	done  bool
	facts *PackageFacts
	state *pkgAnalysis
	err   error
}

// NewFactStore creates a store for the module rooted at modPath; load
// resolves an import path to its type-checked package (the Loader).
func NewFactStore(modPath string, load func(path string) (*Package, error)) *FactStore {
	return &FactStore{modPath: modPath, load: load, entries: map[string]*factEntry{}}
}

// inModule reports whether path belongs to the analyzed module — the
// only packages that can carry facts (nothing outside the module can
// import mpsim).
func (s *FactStore) inModule(path string) bool {
	return path == s.modPath || strings.HasPrefix(path, s.modPath+"/")
}

func (s *FactStore) entry(path string) *factEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.entries[path]
	if e == nil {
		e = &factEntry{}
		s.entries[path] = e
	}
	return e
}

// AddCached installs facts replayed from the content-hash cache, so
// importers consume them without the package ever being type-checked.
func (s *FactStore) AddCached(path string, facts *PackageFacts) {
	e := s.entry(path)
	e.mu.Lock()
	defer e.mu.Unlock()
	if !e.done {
		e.facts, e.done = facts, true
	}
}

// Facts returns the facts of an import path, computing them (loading
// and analyzing the package, and transitively its module dependencies)
// on first use. Non-module paths yield empty facts.
func (s *FactStore) Facts(path string) (*PackageFacts, error) {
	if !s.inModule(path) {
		return newPackageFacts(path), nil
	}
	e := s.entry(path)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.facts, e.err
	}
	p, err := s.load(path)
	if err == nil {
		e.state, err = analyzePackage(p, s)
		if e.state != nil {
			e.facts = e.state.facts
		}
	}
	e.err, e.done = err, true
	return e.facts, e.err
}

// EnsureFor computes (or returns) the analysis state of an
// already-loaded package. Unlike Facts it never consults the cache-fed
// facts alone: analyzers need the in-memory state (taint environments,
// pending diagnostics), so a cached-facts-only entry is recomputed.
func (s *FactStore) EnsureFor(p *Package) (*pkgAnalysis, error) {
	e := s.entry(p.Pkg.Path())
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.state != nil || (e.done && e.err != nil) {
		return e.state, e.err
	}
	st, err := analyzePackage(p, s)
	if err != nil {
		e.err, e.done = err, true
		return nil, err
	}
	e.state, e.facts, e.err, e.done = st, st.facts, nil, true
	return st, nil
}

// FieldTainted reports whether any analyzed package marked the field
// key as rank-tainted.
func (s *FactStore) FieldTainted(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Iteration order is irrelevant: this is a pure existence scan (an
	// OR over booleans). Only completed entries are consulted; an
	// in-flight package cannot have published fields yet, and TryLock
	// keeps the lock order acyclic (an entry being computed holds its
	// own lock while calling into the store).
	for _, e := range s.entries {
		if e.mu.TryLock() {
			f := e.facts
			tainted := e.done && f != nil && f.Fields[key]
			e.mu.Unlock()
			if tainted {
				return true
			}
		}
	}
	return false
}

// Paths returns the import paths with completed facts, sorted.
func (s *FactStore) Paths() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for path, e := range s.entries {
		if e.done && e.facts != nil {
			out = append(out, path)
		}
	}
	sort.Strings(out)
	return out
}

// factsOf returns completed facts without computing, or nil.
func (s *FactStore) factsOf(path string) *PackageFacts {
	s.mu.Lock()
	e := s.entries[path]
	s.mu.Unlock()
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.facts
	}
	return nil
}

// taintFactFor resolves a callee's taint fact across package
// boundaries: the current package's in-progress facts for local
// callees, the store for imported ones. The bool reports whether a fact
// exists at all.
func (a *pkgAnalysis) taintFactFor(fn *types.Func) ([]TaintMask, bool) {
	pkgPath, key := funcKeyOf(fn)
	if key == "" {
		return nil, false
	}
	if pkgPath == a.p.Pkg.Path() {
		masks, ok := a.facts.Taint[key]
		return masks, ok
	}
	facts, err := a.store.Facts(pkgPath)
	if err != nil || facts == nil {
		return nil, false
	}
	masks, ok := facts.Taint[key]
	return masks, ok
}

// summaryFor resolves a callee's collective summary the same way.
func (a *pkgAnalysis) summaryFor(fn *types.Func) (Summary, bool) {
	pkgPath, key := funcKeyOf(fn)
	if key == "" {
		return Summary{}, false
	}
	if pkgPath == a.p.Pkg.Path() {
		if a.building[key] {
			// Recursive cycle: the callee's summary is opaque from
			// inside its own computation. May is resolved through the
			// call graph, which handles cycles itself.
			return Summary{Opaque: true, May: a.graph.reaches(key)}, true
		}
		if sum, ok := a.facts.Summaries[key]; ok {
			return sum, true
		}
		if fi, ok := a.funcIndex[key]; ok {
			a.buildSummary(fi)
			sum, ok := a.facts.Summaries[key]
			return sum, ok
		}
		return Summary{}, false
	}
	facts, err := a.store.Facts(pkgPath)
	if err != nil || facts == nil {
		return Summary{}, false
	}
	sum, ok := facts.Summaries[key]
	return sum, ok
}

func seqString(seq []string) string {
	if len(seq) == 0 {
		return "(no collectives)"
	}
	return "[" + strings.Join(seq, " ") + "]"
}
