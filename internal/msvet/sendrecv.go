package msvet

// sendrecv.go checks tag-constant consistency between paired Send/Recv
// sites. mpsim messages match on (peer, tag): a Send whose constant tag
// no Recv-family site anywhere in the repo ever asks for strands the
// message forever, and the receiving side blocks on a tag nobody sends
// — the point-to-point cousin of the collective-mismatch deadlock (the
// merge's tagMergeBase discipline exists precisely to keep these pen
// pals aligned).
//
// Only statically constant tags participate: a tag expression that
// constant-folds is recorded under the key "v:<value>" in the package
// facts, and after every package is analyzed the Finish hook matches
// the repo-wide send-key set against the recv-key set. Dynamic tags
// (computed per round, per block, or threaded through parameters, as
// the tree collectives and the merge protocol do) are skipped: both
// sides derive them from the same formula, which this analyzer cannot
// check and therefore does not guess about.

import (
	"bytes"
	"go/ast"
	"go/constant"
	"go/printer"
	"go/token"
	"sort"
)

// sendMethods / recvMethods are the Rank point-to-point families; the
// tag is argument index 1 in every one of them.
var sendMethods = map[string]bool{"Send": true, "TrySend": true}
var recvMethods = map[string]bool{
	"Recv": true, "TryRecv": true, "RecvTimeout": true, "PeekArrival": true,
}

// SendrecvAnalyzer reports constant Send tags with no matching Recv
// site and vice versa. Collection happens during fact computation (so
// the cache can replay it); the verdict is global, so it lives in the
// Finish hook, which runs once after every package's facts exist.
var SendrecvAnalyzer = &Analyzer{
	Name: "sendrecv",
	Doc: "matches constant Send tags against Recv/TryRecv/RecvTimeout/PeekArrival tags " +
		"repo-wide; a one-sided tag constant strands messages or blocks the receiver",
	Run:    runSendrecv,
	Finish: finishSendrecv,
}

// runSendrecv only services the allow lifecycle: a justified
// //msvet:allow sendrecv annotation on a recorded tag site counts as
// used (the site is excluded from Finish matching), so it is never
// reported stale while it still covers a live site.
func runSendrecv(pass *Pass) error {
	if pass.state == nil {
		return nil
	}
	for _, t := range pass.state.facts.SendTags {
		if t.Allowed {
			pass.MarkAllowed(t.File, t.Line)
		}
	}
	for _, t := range pass.state.facts.RecvTags {
		if t.Allowed {
			pass.MarkAllowed(t.File, t.Line)
		}
	}
	return nil
}

// collectTags records every statically-constant tag site of the package
// into its facts. Called from analyzePackage.
func (a *pkgAnalysis) collectTags() {
	for _, f := range a.p.Files {
		allowsByLine, _ := parseAllows(a.p.Fset, f)
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, ok := methodOn(a.p.Info, call, mpsimPath, "Rank")
			if !ok || (!sendMethods[name] && !recvMethods[name]) || len(call.Args) < 2 {
				return true
			}
			tagExpr := call.Args[1]
			key := tagKeyOf(a, tagExpr)
			if key == "" {
				return true
			}
			pos := a.p.Fset.Position(call.Pos())
			allowed := false
			if rec := allowsByLine["sendrecv"][pos.Line]; rec != nil && rec.justified {
				allowed = true
			}
			use := TagUse{
				Key:     key,
				Expr:    name + "(tag " + exprString(a.p.Fset, tagExpr) + ")",
				File:    pos.Filename,
				Line:    pos.Line,
				Col:     pos.Column,
				Allowed: allowed,
			}
			if sendMethods[name] {
				a.facts.SendTags = append(a.facts.SendTags, use)
			} else {
				a.facts.RecvTags = append(a.facts.RecvTags, use)
			}
			return true
		})
	}
}

// tagKeyOf returns the stable key of a tag expression, or "" when the
// tag is dynamic. Constant-folding means `tagReduce+1` on one side and
// the folded literal on the other still agree.
func tagKeyOf(a *pkgAnalysis, e ast.Expr) string {
	tv, ok := a.p.Info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return ""
	}
	return "v:" + tv.Value.ExactString()
}

func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}

// finishSendrecv runs once over the completed fact store and reports
// every non-allowed constant tag with no counterpart on the other side.
func finishSendrecv(store *FactStore) []Finding {
	sendKeys, recvKeys := map[string]bool{}, map[string]bool{}
	var sends, recvs []TagUse
	for _, path := range store.Paths() {
		facts := store.factsOf(path)
		if facts == nil {
			continue
		}
		for _, t := range facts.SendTags {
			sendKeys[t.Key] = true
			sends = append(sends, t)
		}
		for _, t := range facts.RecvTags {
			recvKeys[t.Key] = true
			recvs = append(recvs, t)
		}
	}
	var findings []Finding
	add := func(t TagUse, other string) {
		if t.Allowed {
			return
		}
		findings = append(findings, Finding{
			Pos:      token.Position{Filename: t.File, Line: t.Line, Column: t.Col},
			Analyzer: "sendrecv",
			Message: t.Expr + " has no " + other +
				" using the same tag constant anywhere in the module; mismatched tags strand the message and block the peer",
		})
	}
	for _, t := range sends {
		if !recvKeys[t.Key] {
			add(t, "Recv-family site")
		}
	}
	for _, t := range recvs {
		if !sendKeys[t.Key] {
			add(t, "Send site")
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings
}
