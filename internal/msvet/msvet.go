// Package msvet is a repo-specific static-analysis suite that enforces
// the determinism and collective-ordering invariants the reproduction's
// guarantees rest on: byte-identical same-seed traces, byte-exact
// checkpoint restores, and deterministic fault replay (DESIGN §10–§11).
//
// The suite is deliberately built on the standard library alone
// (go/ast, go/parser, go/types) rather than golang.org/x/tools/go/
// analysis: the build environment is hermetic with no module proxy, and
// a zero-dependency vet pass keeps it that way. The Analyzer/Pass/
// Diagnostic shapes mirror x/tools so the analyzers could be ported to
// a real multichecker mechanically if the dependency ever lands.
//
// Findings are suppressed site-by-site with a justified annotation:
//
//	//msvet:allow <analyzer>: <one-line justification>
//
// placed on the flagged line or on its own line directly above. An
// annotation with no justification, an unknown analyzer name, or one
// that no longer suppresses anything is itself a finding, so stale
// escape hatches cannot accumulate.
package msvet

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// An Analyzer describes one invariant checker. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name is the identifier used in findings and //msvet:allow
	// annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Applies reports whether the analyzer runs on the given import
	// path; nil means every package.
	Applies func(pkgPath string) bool
	// Run inspects one package and reports findings through pass.Report.
	Run func(pass *Pass) error
	// Finish, if set, runs once after every package has been analyzed
	// and returns repo-wide findings resolved over the fact store —
	// verdicts (like send/recv tag pairing) that no single package can
	// decide.
	Finish func(store *FactStore) []Finding
}

// A Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Report   func(Diagnostic)

	// state is the package's interprocedural analysis state (taint
	// environment, collective summaries, pending diagnostics), computed
	// once per package and shared by every analyzer's pass.
	state *pkgAnalysis
	// markAllowed marks the justified //msvet:allow annotation of this
	// analyzer covering (file, line) as used without reporting anything
	// — for findings that are suppressed at fact-collection time and
	// judged repo-wide in Finish.
	markAllowed func(file string, line int)
}

// MarkAllowed records that a justified allow annotation covering the
// line is live, so the stale-annotation check does not flag it.
func (p *Pass) MarkAllowed(file string, line int) {
	if p.markAllowed != nil {
		p.markAllowed(file, line)
	}
}

// A Diagnostic is one finding at a source position.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		WallclockAnalyzer,
		MaporderAnalyzer,
		CollectiveAnalyzer,
		DroppederrAnalyzer,
		RawframeAnalyzer,
		SpanbalanceAnalyzer,
		OwnerAnalyzer,
		KernelAnalyzer,
		SpmdAnalyzer,
		SendrecvAnalyzer,
	}
}

// byName resolves an analyzer name, for -run flags and allow parsing.
func byName(name string) *Analyzer {
	for _, a := range Analyzers() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// deterministicPkgs are the packages on the simulated path: everything
// they compute must depend only on inputs and seeds, never on the host
// (DESIGN §11). The wallclock analyzer runs here.
var deterministicPkgs = map[string]bool{
	"parms/internal/merge":     true,
	"parms/internal/serial":    true,
	"parms/internal/pario":     true,
	"parms/internal/mscomplex": true,
	"parms/internal/gradient":  true,
	"parms/internal/mpsim":     true,
	"parms/internal/obs":       true,
}

// framingPkgs are the only packages allowed to lay down raw on-disk
// bytes: everything else must go through their CRC framing.
var framingPkgs = map[string]bool{
	"parms/internal/pario":  true,
	"parms/internal/serial": true,
}

// allowMarker introduces a suppression annotation.
const allowMarker = "//msvet:allow "

// allowRec is one parsed //msvet:allow annotation.
type allowRec struct {
	pos       token.Pos // position of the annotation comment
	analyzer  string
	justified bool
	used      bool
}

// parseAllows extracts the allow annotations of a file, keyed by
// (analyzer, covered line). An annotation on line L covers findings on
// L and L+1, so it may sit inline or on its own line above the site.
func parseAllows(fset *token.FileSet, file *ast.File) (map[string]map[int]*allowRec, []*allowRec) {
	byLine := map[string]map[int]*allowRec{}
	var all []*allowRec
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, strings.TrimSpace(allowMarker)) {
				continue
			}
			body := strings.TrimPrefix(c.Text, strings.TrimSpace(allowMarker))
			// Fixtures append `// want ...` expectations to annotation
			// comments; they are markers for the test harness, not part
			// of the annotation.
			if i := strings.Index(body, "// want"); i >= 0 {
				body = body[:i]
			}
			body = strings.TrimSpace(body)
			name, just, found := strings.Cut(body, ":")
			rec := &allowRec{
				pos:       c.Pos(),
				analyzer:  strings.TrimSpace(name),
				justified: found && strings.TrimSpace(just) != "",
			}
			all = append(all, rec)
			line := fset.Position(c.Pos()).Line
			m := byLine[rec.analyzer]
			if m == nil {
				m = map[int]*allowRec{}
				byLine[rec.analyzer] = m
			}
			m[line] = rec
			m[line+1] = rec
		}
	}
	return byLine, all
}

// Finding is a finalized, allow-filtered diagnostic.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
}

// RunPackage runs the given analyzers over one loaded package and
// returns the findings that survive //msvet:allow filtering. When
// checkAllows is true (the full suite is running), malformed and unused
// annotations are reported as findings of the pseudo-analyzer
// "msvet:allow" — drift in the escape hatches fails the build just like
// a live violation. The store supplies (and receives) the package's
// interprocedural facts; it may be nil for analyzers that need none.
func RunPackage(p *Package, analyzers []*Analyzer, checkAllows bool, store *FactStore) ([]Finding, error) {
	type allowIndex struct {
		byLine map[string]map[int]*allowRec
		all    []*allowRec
	}
	allows := map[*ast.File]allowIndex{}
	fileByName := map[string]*ast.File{}
	for _, f := range p.Files {
		byLine, all := parseAllows(p.Fset, f)
		allows[f] = allowIndex{byLine, all}
		fileByName[p.Fset.Position(f.Pos()).Filename] = f
	}
	fileOf := func(pos token.Pos) *ast.File {
		for _, f := range p.Files {
			if f.FileStart <= pos && pos <= f.FileEnd {
				return f
			}
		}
		return nil
	}

	var state *pkgAnalysis
	if store != nil {
		var err error
		state, err = store.EnsureFor(p)
		if err != nil {
			return nil, fmt.Errorf("%s: facts: %w", p.Pkg.Path(), err)
		}
	}

	var findings []Finding
	for _, a := range analyzers {
		if a.Applies != nil && !a.Applies(p.Pkg.Path()) {
			continue
		}
		a := a
		pass := &Pass{
			Analyzer: a,
			Fset:     p.Fset,
			Files:    p.Files,
			Pkg:      p.Pkg,
			Info:     p.Info,
			state:    state,
			markAllowed: func(file string, line int) {
				if f := fileByName[file]; f != nil {
					if rec := allows[f].byLine[a.Name][line]; rec != nil && rec.justified {
						rec.used = true
					}
				}
			},
		}
		pass.Report = func(d Diagnostic) {
			position := p.Fset.Position(d.Pos)
			if f := fileOf(d.Pos); f != nil {
				if rec := allows[f].byLine[a.Name][position.Line]; rec != nil && rec.justified {
					rec.used = true
					return
				}
			}
			findings = append(findings, Finding{Pos: position, Analyzer: a.Name, Message: d.Message})
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", p.Pkg.Path(), a.Name, err)
		}
	}

	if checkAllows {
		for _, f := range p.Files {
			for _, rec := range allows[f].all {
				pos := p.Fset.Position(rec.pos)
				switch {
				case byName(rec.analyzer) == nil:
					findings = append(findings, Finding{Pos: pos, Analyzer: "msvet:allow",
						Message: fmt.Sprintf("annotation names unknown analyzer %q", rec.analyzer)})
				case !rec.justified:
					findings = append(findings, Finding{Pos: pos, Analyzer: "msvet:allow",
						Message: fmt.Sprintf("allow %s carries no justification (grammar: //msvet:allow %s: <why>)", rec.analyzer, rec.analyzer)})
				case !rec.used:
					findings = append(findings, Finding{Pos: pos, Analyzer: "msvet:allow",
						Message: fmt.Sprintf("allow %s suppresses nothing — stale annotation, remove it", rec.analyzer)})
				}
			}
		}
	}

	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return findings, nil
}
