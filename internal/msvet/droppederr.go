package msvet

import (
	"go/ast"
)

// faultCarrying maps the mpsim.Rank methods whose trailing result
// carries fault accounting to a short description of what discarding it
// loses. TrySend/TryRecv/Independent* return the error that feeds the
// fault report; RecvTimeout's trailing ok distinguishes a delivered
// payload from a timed-out one — ignoring it deserializes garbage.
var faultCarrying = map[string]string{
	"TrySend":          "the send error feeds fault-report accounting",
	"TryRecv":          "the receive error feeds fault-report accounting",
	"RecvTimeout":      "the ok result distinguishes delivery from timeout",
	"IndependentWrite": "the write error decides checkpoint validity",
	"IndependentRead":  "the read error decides checkpoint validity",
}

// DroppederrAnalyzer flags calls to the fault-tolerant mpsim primitives
// whose trailing error/ok result is discarded: as an expression
// statement, under go/defer, or assigned to the blank identifier.
var DroppederrAnalyzer = &Analyzer{
	Name: "droppederr",
	Doc: "flags discarded errors/ok results from TrySend/TryRecv/RecvTimeout/" +
		"IndependentWrite/IndependentRead; these carry the fault-report accounting",
	Run: runDroppederr,
}

func runDroppederr(pass *Pass) error {
	// faultCall resolves a call to one of the guarded methods.
	faultCall := func(e ast.Expr) (*ast.CallExpr, string, bool) {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil, "", false
		}
		name, ok := methodOn(pass.Info, call, mpsimPath, "Rank")
		if !ok {
			return nil, "", false
		}
		why, guarded := faultCarrying[name]
		if !guarded {
			return nil, "", false
		}
		return call, name + ": " + why, true
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, why, ok := faultCall(n.X); ok {
					pass.Reportf(call.Pos(), "result discarded: %s", why)
				}
			case *ast.GoStmt:
				if call, why, ok := faultCall(n.Call); ok {
					pass.Reportf(call.Pos(), "result discarded by go statement: %s", why)
				}
			case *ast.DeferStmt:
				if call, why, ok := faultCall(n.Call); ok {
					pass.Reportf(call.Pos(), "result discarded by defer: %s", why)
				}
			case *ast.AssignStmt:
				// Single multi-value call: the trailing result position
				// must not be the blank identifier.
				if len(n.Rhs) != 1 {
					for _, rhs := range n.Rhs {
						// 1:1 assignments: single-result methods only.
						if call, why, ok := faultCall(rhs); ok {
							// Position i corresponds 1:1; find it.
							for i, r := range n.Rhs {
								if r != rhs {
									continue
								}
								if id, isID := ast.Unparen(n.Lhs[i]).(*ast.Ident); isID && id.Name == "_" {
									pass.Reportf(call.Pos(), "result assigned to _: %s", why)
								}
							}
						}
					}
					return true
				}
				call, why, ok := faultCall(n.Rhs[0])
				if !ok {
					return true
				}
				last := n.Lhs[len(n.Lhs)-1]
				if id, isID := ast.Unparen(last).(*ast.Ident); isID && id.Name == "_" {
					pass.Reportf(call.Pos(), "trailing result assigned to _: %s", why)
				}
			}
			return true
		})
	}
	return nil
}
