package msvet

import (
	"go/ast"
)

// collectiveMethods are the mpsim.Rank operations every rank must enter
// in the same order: the blocking collectives plus collective IO. A
// call reached by only some ranks deadlocks the cluster or silently
// mismatches payloads — the MPI collective-matching rule the paper's
// merge inherits (Gyulassy et al. 2012 §4).
var collectiveMethods = map[string]bool{
	"Barrier": true, "Bcast": true,
	"ReduceFloat64": true, "ReduceInt64": true,
	"AllreduceFloat64": true, "AllreduceMaxTime": true,
	"Gather": true, "AllgatherInt64": true,
	"Scatter": true, "Alltoall": true,
	"CollectiveWrite": true, "CollectiveRead": true,
}

// CollectiveAnalyzer flags mpsim collective calls lexically inside a
// branch whose condition depends on the rank identity (Rank.ID or the
// rank id field). Root-only work is fine — but the collective itself
// must sit outside the branch, as writeOutput's footer round does:
// compute under `if r.ID() == 0`, then CollectiveWrite unconditionally.
var CollectiveAnalyzer = &Analyzer{
	Name: "collective",
	Doc: "flags mpsim collectives (Barrier, Gather, Alltoall, collective IO, ...) inside " +
		"rank-conditional branches, the classic mismatched-collective deadlock",
	Run: runCollective,
}

func runCollective(pass *Pass) error {
	funcDecls(pass.Files, func(body *ast.BlockStmt) {
		// Rank-dependence comes from the interprocedural taint engine
		// (taint.go): any value derived from Rank.ID through
		// assignments, helper returns, struct fields, or implicit
		// control flow — not just the lexical one-step idiom the first
		// version of this analyzer recognized.
		rankDep := func(e ast.Expr) bool {
			if e == nil {
				return false
			}
			if pass.state != nil {
				return pass.state.exprMask(e).HasRank()
			}
			return containsMatch(e, func(n ast.Node) bool {
				if call, ok := n.(*ast.CallExpr); ok {
					if name, ok := methodOn(pass.Info, call, mpsimPath, "Rank"); ok && name == "ID" {
						return true
					}
				}
				return false
			})
		}
		var walk func(n ast.Node, inRankBranch bool)
		walkBody := func(n ast.Node, flag bool) {
			if n != nil {
				walk(n, flag)
			}
		}
		walk = func(n ast.Node, inRankBranch bool) {
			switch n := n.(type) {
			case *ast.IfStmt:
				walkBody(n.Init, inRankBranch)
				cond := inRankBranch || rankDep(n.Cond)
				walkBody(n.Body, cond)
				walkBody(n.Else, cond)
				return
			case *ast.SwitchStmt:
				walkBody(n.Init, inRankBranch)
				cond := inRankBranch || rankDep(n.Tag)
				if !cond {
					for _, cc := range n.Body.List {
						for _, e := range cc.(*ast.CaseClause).List {
							if rankDep(e) {
								cond = true
							}
						}
					}
				}
				walkBody(n.Body, cond)
				return
			case *ast.CallExpr:
				if name, ok := methodOn(pass.Info, n, mpsimPath, "Rank"); ok && collectiveMethods[name] && inRankBranch {
					pass.Reportf(n.Pos(),
						"collective %s inside a rank-conditional branch: ranks taking the other path never enter it and the cluster deadlocks; hoist the collective out of the branch",
						name)
				}
			}
			// Generic descent preserving the current flag.
			children(n, func(c ast.Node) { walk(c, inRankBranch) })
		}
		walk(body, false)
	})
	return nil
}

// children invokes f once for each immediate-enough child of n, by
// reusing ast.Inspect and stopping below the first level. ast.Inspect
// has no native one-level iterator, so we track the root.
func children(n ast.Node, f func(ast.Node)) {
	first := true
	ast.Inspect(n, func(c ast.Node) bool {
		if c == nil {
			return false
		}
		if first {
			first = false
			return true
		}
		f(c)
		return false
	})
}
