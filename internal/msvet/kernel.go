package msvet

import (
	"go/ast"
	"go/types"
	"strings"
)

// kernelPkgs are the packages whose *Kernel functions are hot paths:
// the chunked parallel-for primitive itself, the SoA gradient kernels,
// and the pointer-jumping tracer sweeps. Only these run per-element
// loops over whole blocks every compute stage.
var kernelPkgs = map[string]bool{
	"parms/internal/kernel":    true,
	"parms/internal/gradient":  true,
	"parms/internal/mscomplex": true,
}

// KernelAnalyzer flags per-element heap allocation and closure creation
// inside the loops of functions named *Kernel. Those loops execute once
// per cell or per vertex of a block — millions of iterations per
// compute stage — and the worker-pool speedup the cost model assumes
// (vtime.ParallelComputeTime) only holds while the loop body is
// branch-predictable flat-array arithmetic. A make/new/append or a
// composite literal that escapes turns each iteration into an
// allocation; a func literal additionally forces its captures to the
// heap. Scratch belongs above the loop, sized once per chunk (see
// gradient.cellKeysKernel), where the msvet suite leaves it alone.
var KernelAnalyzer = &Analyzer{
	Name: "kernel",
	Doc: "flags per-element allocation (make/new/append, composite literals) and closure " +
		"creation inside loops of *Kernel functions; hot sweep loops must be allocation-free " +
		"with scratch hoisted to per-chunk scope",
	Applies: func(pkgPath string) bool { return kernelPkgs[pkgPath] },
	Run:     runKernel,
}

func runKernel(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !strings.HasSuffix(fd.Name.Name, "Kernel") {
				continue
			}
			checkKernelFunc(pass, fd)
		}
	}
	return nil
}

// checkKernelFunc scans one *Kernel function for loops, descending into
// func literals (the chunk bodies handed to kernel.Pool.Run) on the
// way: a loop inside the chunk closure is exactly the hot path. Each
// outermost loop is scanned once; nested loops are covered by that scan
// and not revisited, so a finding is reported exactly once.
func checkKernelFunc(pass *Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch loop := n.(type) {
		case *ast.ForStmt:
			flagLoopAllocs(pass, fd.Name.Name, loop.Body)
			return false
		case *ast.RangeStmt:
			flagLoopAllocs(pass, fd.Name.Name, loop.Body)
			return false
		}
		return true
	})
}

// flagLoopAllocs reports every allocation-shaped node inside one hot
// loop body, including bodies of loops nested within it.
func flagLoopAllocs(pass *Pass, fn string, body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			pass.Reportf(x.Pos(),
				"func literal inside a hot loop of %s forces captured variables to the heap every iteration; hoist the closure above the loop or inline its body",
				fn)
			return false
		case *ast.CompositeLit:
			pass.Reportf(x.Pos(),
				"composite literal inside a hot loop of %s allocates per element; hoist the value to per-chunk scratch above the loop",
				fn)
		case *ast.CallExpr:
			id, ok := x.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			b, ok := pass.Info.Uses[id].(*types.Builtin)
			if !ok {
				return true
			}
			switch b.Name() {
			case "make", "new", "append":
				pass.Reportf(x.Pos(),
					"%s inside a hot loop of %s allocates per element; hoist the buffer to per-chunk scratch above the loop",
					b.Name(), fn)
			}
		}
		return true
	})
}
