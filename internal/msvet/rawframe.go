package msvet

import (
	"go/ast"
	"strings"
)

// RawframeAnalyzer flags raw encoding/binary stream IO and manual
// length-prefix framing outside the framing packages (internal/pario,
// internal/serial). Every byte that reaches disk must pass through the
// PCSFM2 CRC framing, or corruption detection and checkpoint recovery
// (DESIGN §10) silently lose coverage. Two patterns are flagged:
//
//   - binary.Write / binary.Read: unframed stream encoding straight to
//     an io.Writer/Reader;
//   - binary.<order>.PutUintN / AppendUintN whose value argument takes
//     len(...) of something — a hand-rolled length prefix, the start of
//     an ad-hoc frame.
//
// In-memory number packing (PutUint64 of float bits, message field
// packing) is untouched: no len() in the value position.
var RawframeAnalyzer = &Analyzer{
	Name: "rawframe",
	Doc: "flags encoding/binary stream IO and manual length-prefix framing outside " +
		"internal/pario and internal/serial; on-disk bytes stay behind the CRC framing",
	Applies: func(pkgPath string) bool { return !framingPkgs[pkgPath] },
	Run:     runRawframe,
}

// binaryByteOrderWriters are the ByteOrder/AppendByteOrder methods that
// lay down bytes; a len() in their value argument marks a length prefix.
func isBinaryPutOrAppend(name string) bool {
	return (strings.HasPrefix(name, "PutUint") || strings.HasPrefix(name, "AppendUint")) ||
		name == "PutVarint" || name == "PutUvarint" ||
		name == "AppendVarint" || name == "AppendUvarint"
}

func runRawframe(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := pkgFunc(pass.Info, call); pkg == "encoding/binary" {
				switch name {
				case "Write", "Read":
					pass.Reportf(call.Pos(),
						"binary.%s streams unframed bytes in %s; encode through internal/pario's CRC framing instead",
						name, pass.Pkg.Path())
				case "PutVarint", "PutUvarint", "AppendVarint", "AppendUvarint":
					if valueArgsTakeLen(call, 1) {
						pass.Reportf(call.Pos(),
							"binary.%s of a len(...) builds a manual length prefix in %s; frame payloads through internal/pario",
							name, pass.Pkg.Path())
					}
				}
				return true
			}
			// Methods on binary.LittleEndian / binary.BigEndian /
			// the Append variants.
			sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			if name, ok := binaryOrderMethod(pass, sel); ok && isBinaryPutOrAppend(name) {
				if valueArgsTakeLen(call, 1) {
					pass.Reportf(call.Pos(),
						"%s of a len(...) builds a manual length prefix in %s; frame payloads through internal/pario's CRC framing",
						name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}

// binaryOrderMethod reports whether sel resolves to a method declared
// in encoding/binary (the ByteOrder implementations' Put/Append set).
func binaryOrderMethod(pass *Pass, sel *ast.SelectorExpr) (string, bool) {
	obj := pass.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "encoding/binary" {
		return "", false
	}
	return obj.Name(), true
}

// valueArgsTakeLen reports whether any argument from index from onward
// contains a call to the builtin len.
func valueArgsTakeLen(call *ast.CallExpr, from int) bool {
	for i := from; i < len(call.Args); i++ {
		if containsMatch(call.Args[i], func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			id, ok := ast.Unparen(c.Fun).(*ast.Ident)
			return ok && id.Name == "len"
		}) {
			return true
		}
	}
	return false
}
