package msvet

import (
	"go/ast"
)

// wallclockTimeFuncs are the package time entry points that read or
// wait on the host clock. Constructors of timers are included: any
// real-time timer on a simulated path breaks same-seed replay.
var wallclockTimeFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// wallclockRandOK are the math/rand (and v2) package-level functions
// that do NOT draw from the process-global, wall-seeded source; they
// construct explicitly seeded generators and stay legal.
var wallclockRandOK = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
}

// WallclockAnalyzer flags host-clock reads and unseeded global
// randomness inside the deterministic packages. Everything on the
// simulated path must derive from inputs, seeds, and virtual time
// (vtime), or same-seed runs stop being byte-identical. The one
// legitimate exception — the real-time grace bounding RecvTimeout's
// wait for messages that will never arrive — carries a justified
// //msvet:allow wallclock annotation.
var WallclockAnalyzer = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/Sleep/timers and unseeded math/rand in deterministic packages; " +
		"simulated paths must depend only on inputs, seeds, and virtual time",
	Applies: func(pkgPath string) bool { return deterministicPkgs[pkgPath] },
	Run:     runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkg, name := pkgFunc(pass.Info, call)
			switch pkg {
			case "time":
				if wallclockTimeFuncs[name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the host clock in deterministic package %s; use virtual time (vtime) or annotate the real-time escape hatch",
						name, pass.Pkg.Path())
				}
			case "math/rand", "math/rand/v2":
				if !wallclockRandOK[name] {
					pass.Reportf(call.Pos(),
						"rand.%s draws from the global wall-seeded source in deterministic package %s; use rand.New(rand.NewSource(seed))",
						name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
