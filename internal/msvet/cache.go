package msvet

// cache.go is the content-hash finding/fact cache that keeps the suite
// in the inner loop (DESIGN §16). A package's cache key is the sha256 of
// everything its verdict can depend on: a salt (Go version, analyzer
// names, allow-checking mode), its import path, the names and content
// hashes of its Go files, and — transitively — the keys of its module
// dependencies. An unchanged package therefore replays its findings and
// its exported facts from one small JSON file without being parsed or
// type-checked; editing one file invalidates exactly that package and
// its reverse dependencies, because only their keys change.
//
// Entries are written via temp-file + rename, so concurrent runs (two
// terminals, an editor save hook and CI) race benignly: both compute
// the same bytes for the same key, and rename is atomic.

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/build"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// DefaultCacheDir returns the cache location for a module root: inside
// the module, next to the sources it derives from, so CI can key it
// alongside the go module cache and `git clean -x` removes it.
func DefaultCacheDir(modRoot string) string {
	return filepath.Join(modRoot, ".msvet-cache")
}

// A Cache maps package import paths to cached analysis results.
type Cache struct {
	dir     string
	modRoot string
	modPath string
	salt    string
	ctx     build.Context

	mu   sync.Mutex
	keys map[string]string   // import path -> content key ("" = uncacheable)
	deps map[string][]string // import path -> module-internal imports
	err  map[string]error
}

// CacheEntry is one cached package verdict: the allow-filtered findings
// of the per-package analyzers, and the facts importers consume. Finish
// findings are deliberately absent — they are recomputed from the facts
// on every run, so global verdicts stay correct when *other* packages
// change.
type CacheEntry struct {
	Findings []Finding     `json:"findings,omitempty"`
	Facts    *PackageFacts `json:"facts"`
}

// NewCache opens (creating if needed) a cache directory for the module.
// The analyzer set and allow mode are salted into every key: runs with
// different selections never share entries.
func NewCache(dir string, l *Loader, analyzers []*Analyzer, checkAllows bool) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("msvet: cache: %w", err)
	}
	names := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	return &Cache{
		dir:     dir,
		modRoot: l.ModRoot(),
		modPath: l.ModPath(),
		salt:    fmt.Sprintf("msvet-v1|%s|%s|%v", runtime.Version(), strings.Join(names, ","), checkAllows),
		ctx:     buildCtxNoCgo(),
		keys:    map[string]string{},
		deps:    map[string][]string{},
		err:     map[string]error{},
	}, nil
}

func buildCtxNoCgo() build.Context {
	ctx := build.Default
	ctx.CgoEnabled = false
	return ctx
}

func (c *Cache) dirOf(path string) (string, bool) {
	if path == c.modPath {
		return c.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, c.modPath+"/"); ok {
		return filepath.Join(c.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// Deps returns the module-internal imports of a package, scanned from
// file headers only (no type-checking). Used both for key derivation
// and for the runner's dependency waves.
func (c *Cache) Deps(path string) ([]string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.depsLocked(path)
}

func (c *Cache) depsLocked(path string) ([]string, error) {
	if d, ok := c.deps[path]; ok {
		return d, c.err[path]
	}
	dir, ok := c.dirOf(path)
	if !ok {
		c.deps[path] = nil
		return nil, nil
	}
	bp, err := c.ctx.ImportDir(dir, 0)
	if err != nil {
		c.deps[path], c.err[path] = nil, err
		return nil, err
	}
	var deps []string
	for _, imp := range bp.Imports {
		if imp == c.modPath || strings.HasPrefix(imp, c.modPath+"/") {
			deps = append(deps, imp)
		}
	}
	sort.Strings(deps)
	c.deps[path] = deps
	return deps, nil
}

// Key returns the content key of a module package, deriving it (and its
// dependencies' keys) on first use.
func (c *Cache) Key(path string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.keyLocked(path, map[string]bool{})
}

func (c *Cache) keyLocked(path string, visiting map[string]bool) (string, error) {
	if k, ok := c.keys[path]; ok {
		return k, c.err[path]
	}
	if visiting[path] {
		return "", fmt.Errorf("msvet: cache: import cycle through %s", path)
	}
	visiting[path] = true
	defer delete(visiting, path)

	dir, ok := c.dirOf(path)
	if !ok {
		return "", fmt.Errorf("msvet: cache: %s is outside the module", path)
	}
	bp, err := c.ctx.ImportDir(dir, 0)
	if err != nil {
		c.keys[path], c.err[path] = "", err
		return "", err
	}
	h := sha256.New()
	fmt.Fprintf(h, "%s\x00%s\x00", c.salt, path)
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			c.keys[path], c.err[path] = "", err
			return "", err
		}
		sum := sha256.Sum256(data)
		fmt.Fprintf(h, "%s\x00%s\x00", name, hex.EncodeToString(sum[:]))
	}
	deps, err := c.depsLocked(path)
	if err != nil {
		c.keys[path], c.err[path] = "", err
		return "", err
	}
	for _, dep := range deps {
		dk, err := c.keyLocked(dep, visiting)
		if err != nil {
			c.keys[path], c.err[path] = "", err
			return "", err
		}
		fmt.Fprintf(h, "dep\x00%s\x00%s\x00", dep, dk)
	}
	key := hex.EncodeToString(h.Sum(nil))
	c.keys[path] = key
	return key, nil
}

func (c *Cache) entryFile(key string) string {
	return filepath.Join(c.dir, key+".json")
}

// Get returns the cached entry for a key, or false.
func (c *Cache) Get(key string) (*CacheEntry, bool) {
	data, err := os.ReadFile(c.entryFile(key))
	if err != nil {
		return nil, false
	}
	var e CacheEntry
	if err := json.Unmarshal(data, &e); err != nil || e.Facts == nil {
		// Corrupt or half-written legacy entry: treat as a miss; the
		// rewrite below repairs it.
		return nil, false
	}
	return &e, true
}

// Put stores an entry under a key, atomically.
func (c *Cache) Put(key string, e *CacheEntry) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return err
	}
	return os.Rename(name, c.entryFile(key))
}
