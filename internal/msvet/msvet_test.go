package msvet

import (
	"path/filepath"
	"strings"
	"testing"
)

// fixtureLoader returns a fresh loader rooted at the real module, so
// fixtures can import parms/internal/mpsim and friends.
func fixtureLoader(t *testing.T) *Loader {
	t.Helper()
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	return NewLoader(root, modPath)
}

// checkFixture runs one analyzer fixture and fails on any mismatch
// between findings and the fixture's want markers.
func checkFixture(t *testing.T, dir, asPath string, analyzers []*Analyzer, checkAllows bool) {
	t.Helper()
	problems, err := CheckFixture(fixtureLoader(t), filepath.Join("testdata", dir), asPath, analyzers, checkAllows)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range problems {
		t.Error(p)
	}
}

// The per-analyzer regression tests. Each fixture contains both
// violations (want markers) and the neighboring legal idiom, so a
// regression in either direction — missed finding or false positive —
// fails.

func TestWallclockFixture(t *testing.T) {
	// A deterministic package path so the analyzer applies.
	checkFixture(t, "wallclock", "parms/internal/merge", []*Analyzer{WallclockAnalyzer}, false)
}

func TestWallclockSkipsNondeterministicPackages(t *testing.T) {
	// The same fixture under a non-deterministic path must be silent:
	// experiments and synth may seed from anything they like.
	l := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "wallclock"), "parms/internal/experiments")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(p, []*Analyzer{WallclockAnalyzer}, false, NewFactStore(l.ModPath(), l.Load))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("wallclock ran outside deterministic packages: %v", findings)
	}
}

func TestMaporderFixture(t *testing.T) {
	checkFixture(t, "maporder", "parms/internal/mscomplex", []*Analyzer{MaporderAnalyzer}, false)
}

func TestCollectiveFixture(t *testing.T) {
	checkFixture(t, "collective", "parms/internal/pipeline", []*Analyzer{CollectiveAnalyzer}, false)
}

func TestDroppederrFixture(t *testing.T) {
	checkFixture(t, "droppederr", "parms/internal/pipeline", []*Analyzer{DroppederrAnalyzer}, false)
}

func TestRawframeFixture(t *testing.T) {
	checkFixture(t, "rawframe", "parms/internal/pipeline", []*Analyzer{RawframeAnalyzer}, false)
}

func TestSpanbalanceFixture(t *testing.T) {
	checkFixture(t, "spanbalance", "parms/internal/pipeline", []*Analyzer{SpanbalanceAnalyzer}, false)
}

func TestOwnerFixture(t *testing.T) {
	checkFixture(t, "owner", "parms/internal/pipeline", []*Analyzer{OwnerAnalyzer}, false)
}

func TestKernelFixture(t *testing.T) {
	checkFixture(t, "kernel", "parms/internal/gradient", []*Analyzer{KernelAnalyzer}, false)
}

func TestSpmdFixture(t *testing.T) {
	checkFixture(t, "spmd", "parms/internal/pipeline", []*Analyzer{SpmdAnalyzer}, false)
}

func TestSendrecvFixture(t *testing.T) {
	checkFixture(t, "sendrecv", "parms/internal/pipeline", []*Analyzer{SendrecvAnalyzer}, false)
}

func TestKernelSkipsColdPackages(t *testing.T) {
	// The same fixture outside the hot kernel packages must be silent:
	// a *Kernel-named helper elsewhere is not a hot sweep loop.
	l := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "kernel"), "parms/internal/merge")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(p, []*Analyzer{KernelAnalyzer}, false, NewFactStore(l.ModPath(), l.Load))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("kernel ran outside the kernel packages: %v", findings)
	}
}

func TestOwnerExemptInGridPackage(t *testing.T) {
	// The same fixture under the grid path must be silent: the block-
	// cyclic helpers' home package (and its tests) may call them freely.
	l := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "owner"), "parms/internal/grid")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(p, []*Analyzer{OwnerAnalyzer}, false, NewFactStore(l.ModPath(), l.Load))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("owner ran inside internal/grid: %v", findings)
	}
}

func TestRawframeExemptInFramingPackages(t *testing.T) {
	l := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "rawframe"), "parms/internal/pario")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(p, []*Analyzer{RawframeAnalyzer}, false, NewFactStore(l.ModPath(), l.Load))
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 0 {
		t.Fatalf("rawframe ran inside a framing package: %v", findings)
	}
}

// TestAllowGrammar checks the escape-hatch lifecycle: justified
// annotations suppress, unjustified/unknown/stale ones are findings.
func TestAllowGrammar(t *testing.T) {
	checkFixture(t, "allow", "parms/internal/merge", Analyzers(), true)
}

// TestCleanModule is the end-to-end multichecker test: the full suite
// over a known-clean mini-module must report nothing. If an analyzer
// breaks in the flag-everything direction this fails; if one breaks in
// the flag-nothing direction the per-analyzer fixture tests fail — so a
// broken analyzer can never pass silently.
func TestCleanModule(t *testing.T) {
	l := fixtureLoader(t)
	p, err := l.LoadDir(filepath.Join("testdata", "clean"), "parms/internal/merge")
	if err != nil {
		t.Fatal(err)
	}
	findings, err := RunPackage(p, Analyzers(), true, NewFactStore(l.ModPath(), l.Load))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("clean module flagged: %s", f)
	}
}

// TestRepoIsClean runs the full suite over every package of the module,
// exactly as `make vet` does: the repo must stay clean, and every
// annotation must stay justified and live. This is the regression test
// that catches a new violation (or annotation drift) at `go test` time,
// before CI.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("module enumeration found only %d packages: %v", len(paths), paths)
	}
	store := NewFactStore(l.ModPath(), l.Load)
	for _, path := range paths {
		p, err := l.Load(path)
		if err != nil {
			t.Fatal(err)
		}
		findings, err := RunPackage(p, Analyzers(), true, store)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range findings {
			t.Errorf("%s", f)
		}
	}
	for _, a := range Analyzers() {
		if a.Finish == nil {
			continue
		}
		for _, f := range a.Finish(store) {
			t.Errorf("%s", f)
		}
	}
}

// TestAnalyzerMetadata keeps names and docs wired: names are the allow
// grammar's vocabulary, so they must be stable and non-empty.
func TestAnalyzerMetadata(t *testing.T) {
	want := []string{"wallclock", "maporder", "collective", "droppederr", "rawframe", "spanbalance", "owner", "kernel", "spmd", "sendrecv"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("suite has %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d is %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %q missing doc or run", a.Name)
		}
		if byName(a.Name) != a {
			t.Errorf("byName(%q) does not resolve", a.Name)
		}
	}
	if byName("nope") != nil {
		t.Error("byName resolves an unknown analyzer")
	}
}

// TestModulePackagesSkipsTestdata guards the enumerator against walking
// fixtures or hidden directories into the analysis set.
func TestModulePackagesSkipsTestdata(t *testing.T) {
	root, modPath, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l := NewLoader(root, modPath)
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range paths {
		if strings.Contains(p, "testdata") {
			t.Errorf("enumeration includes fixture package %s", p)
		}
	}
}
