package msvet

import (
	"go/ast"
	"go/types"
)

// mpsimPath is the import path of the message-passing substrate whose
// call discipline the collective and droppederr analyzers enforce.
const mpsimPath = "parms/internal/mpsim"

// pkgFunc resolves a call to a package-level function and returns its
// package path and name ("", "" when the callee is anything else:
// a method, builtin, conversion, or local function).
func pkgFunc(info *types.Info, call *ast.CallExpr) (pkgPath, name string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// methodOn resolves a call to a method and reports its name when the
// receiver's named type is typeName declared in pkgPath (through any
// number of pointers).
func methodOn(info *types.Info, call *ast.CallExpr, pkgPath, typeName string) (name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", false
	}
	sig := fn.Type().(*types.Signature)
	recv := sig.Recv()
	if recv == nil {
		return "", false
	}
	t := recv.Type()
	for {
		ptr, isPtr := t.(*types.Pointer)
		if !isPtr {
			break
		}
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != typeName || obj.Pkg() == nil || obj.Pkg().Path() != pkgPath {
		return "", false
	}
	return fn.Name(), true
}

// typeIsNamed reports whether t (through pointers) is the named type
// pkgPath.typeName.
func typeIsNamed(t types.Type, pkgPath, typeName string) bool {
	for {
		ptr, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// containsCall reports whether the expression tree contains any node
// for which pred returns true.
func containsMatch(n ast.Node, pred func(ast.Node) bool) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		if pred(n) {
			found = true
			return false
		}
		return true
	})
	return found
}

// funcBodies yields every function body in the files: declarations and
// literals alike, each exactly once at its outermost declaration (the
// visitor descends into nested literals itself when it wants to).
func funcDecls(files []*ast.File, visit func(body *ast.BlockStmt)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				visit(fd.Body)
			}
		}
	}
}
