package msvet

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"
)

// Package is one parsed, type-checked package ready for analysis.
type Package struct {
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages of the parms module plus their
// standard-library dependencies entirely from source — no module proxy,
// no export data, no go command. Module-local import paths resolve
// under the module root; everything else resolves under GOROOT/src.
// Test files are never loaded: the invariants guard the simulated
// production paths, and the chaos tests legitimately use real time for
// hang guards.
//
// The loader is safe for concurrent use: the parallel runner loads
// distinct packages from worker goroutines, each under its own
// per-path entry lock. The shared FileSet is concurrency-safe by
// contract, and type-checking distinct packages concurrently is safe
// because imports recurse through Load, which serializes each package
// behind its entry — the import graph is acyclic, so so is the lock
// order.
type Loader struct {
	Fset    *token.FileSet
	ctx     build.Context
	modRoot string
	modPath string
	mu      sync.Mutex
	pkgs    map[string]*loadEntry
}

type loadEntry struct {
	mu   sync.Mutex
	done bool
	p    *Package
	err  error
}

// NewLoader creates a loader rooted at the module directory.
func NewLoader(modRoot, modPath string) *Loader {
	ctx := build.Default
	// Pure-Go variants only: type information is all we need, and the
	// cgo-free build of every stdlib dependency type-checks offline.
	ctx.CgoEnabled = false
	return &Loader{
		Fset:    token.NewFileSet(),
		ctx:     ctx,
		modRoot: modRoot,
		modPath: modPath,
		pkgs:    map[string]*loadEntry{},
	}
}

// ModPath returns the module path the loader is rooted at.
func (l *Loader) ModPath() string { return l.modPath }

// ModRoot returns the module root directory.
func (l *Loader) ModRoot() string { return l.modRoot }

func (l *Loader) entry(path string) *loadEntry {
	l.mu.Lock()
	defer l.mu.Unlock()
	e := l.pkgs[path]
	if e == nil {
		e = &loadEntry{}
		l.pkgs[path] = e
	}
	return e
}

// ModuleRoot walks up from dir to the directory holding go.mod and
// returns it with the module path parsed from the first module line.
func ModuleRoot(dir string) (root, modPath string, err error) {
	dir, err = filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return dir, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("msvet: %s/go.mod has no module line", dir)
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", "", fmt.Errorf("msvet: no go.mod found above %s", dir)
		}
		dir = parent
	}
}

// dirOf maps an import path to its source directory.
func (l *Loader) dirOf(path string) string {
	if path == l.modPath {
		return l.modRoot
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest))
	}
	dir := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	if _, err := os.Stat(dir); err != nil {
		// Standard-library packages (net, net/http) import vendored
		// golang.org/x copies that the go tool resolves through
		// GOROOT/src/vendor; mirror that fallback here.
		if v := filepath.Join(runtime.GOROOT(), "src", "vendor", filepath.FromSlash(path)); exists(v) {
			return v
		}
	}
	return dir
}

func exists(dir string) bool {
	_, err := os.Stat(dir)
	return err == nil
}

// Import implements types.Importer so type-checking recurses through
// the same cache the analysis driver fills.
func (l *Loader) Import(path string) (*types.Package, error) {
	p, err := l.Load(path)
	if err != nil {
		return nil, err
	}
	return p.Pkg, nil
}

// Load returns the type-checked package for an import path, parsing and
// checking it (and, transitively, its dependencies) on first use.
func (l *Loader) Load(path string) (*Package, error) {
	if path == "unsafe" {
		return &Package{Fset: l.Fset, Pkg: types.Unsafe}, nil
	}
	return l.LoadDir(l.dirOf(path), path)
}

// LoadDir type-checks the package in dir under the given import path
// and caches it there. Fixture tests use the explicit path to place a
// testdata directory at an arbitrary point of the package namespace;
// such shadow loads (dir is not the path's canonical directory) bypass
// the cache, so a fixture that imports the real package it shadows
// resolves the genuine article instead of deadlocking on its own entry
// lock, and later Load calls for that path still see the real package.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if canon, err := filepath.Abs(l.dirOf(path)); err == nil {
		if abs, err := filepath.Abs(dir); err == nil && abs != canon {
			return l.loadDir(dir, path)
		}
	}
	e := l.entry(path)
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.done {
		return e.p, e.err
	}
	e.p, e.err = l.loadDir(dir, path)
	e.done = true
	return e.p, e.err
}

func (l *Loader) loadDir(dir, path string) (*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("msvet: load %s: %w", path, err)
	}
	names := append([]string(nil), bp.GoFiles...)
	sort.Strings(names)
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: l}
	pkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("msvet: check %s: %w", path, err)
	}
	return &Package{Fset: l.Fset, Files: files, Pkg: pkg, Info: info}, nil
}

// ModulePackages enumerates the import paths of every non-test package
// in the module, in sorted order — the "./..." of the multichecker.
// testdata, hidden, and vendor-style directories are skipped, as the go
// tool skips them.
func (l *Loader) ModulePackages() ([]string, error) {
	var paths []string
	err := filepath.WalkDir(l.modRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.modRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		bp, err := l.ctx.ImportDir(p, 0)
		if err != nil {
			if _, ok := err.(*build.NoGoError); ok {
				return nil
			}
			return err
		}
		if len(bp.GoFiles) == 0 { // test-only directory
			return nil
		}
		rel, err := filepath.Rel(l.modRoot, p)
		if err != nil {
			return err
		}
		if rel == "." {
			paths = append(paths, l.modPath)
		} else {
			paths = append(paths, l.modPath+"/"+filepath.ToSlash(rel))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(paths)
	return paths, nil
}
