package msvet

// runner.go is the analysis driver: it schedules packages in dependency
// waves (a package runs only after every module dependency has facts),
// fans each wave out over the repo's own kernel.Pool, consults the
// content-hash cache before doing any real work, and finally runs the
// repo-wide Finish hooks over the completed fact store. This is the
// one entry point cmd/msvet, the repo-clean test, and the benchmark all
// share, so their findings are identical by construction.

import (
	"fmt"
	"sort"
	"sync"

	"parms/internal/kernel"
)

// A Runner executes the analyzer suite over a set of module packages.
type Runner struct {
	Loader      *Loader
	Analyzers   []*Analyzer
	CheckAllows bool
	// Cache, when non-nil, replays unchanged packages' findings and
	// facts without loading them.
	Cache *Cache
	// Workers bounds the per-wave parallelism; 0 means one worker per
	// logical CPU (kernel.AutoWorkers for a single "rank").
	Workers int
}

// RunStats reports what a run actually did, for -stats output and the
// cache-correctness tests.
type RunStats struct {
	Packages  int      // packages requested
	CacheHits int      // replayed from cache
	Analyzed  []string // paths that were loaded and analyzed, sorted
}

// Run analyzes the given module packages and returns the merged,
// position-sorted findings (per-package analyzers plus Finish hooks).
func (r *Runner) Run(paths []string) ([]Finding, *RunStats, error) {
	store := NewFactStore(r.Loader.ModPath(), r.Loader.Load)
	stats := &RunStats{Packages: len(paths)}

	waves, err := r.waves(paths)
	if err != nil {
		return nil, nil, err
	}

	workers := r.Workers
	if workers <= 0 {
		workers = kernel.AutoWorkers(1)
	}
	pool := kernel.New(workers)

	var mu sync.Mutex
	var findings []Finding
	var firstErr error
	for _, wave := range waves {
		wave := wave
		pool.Run(len(wave), 1, func(_, _, lo, hi int) {
			for i := lo; i < hi; i++ {
				path := wave[i]
				fs, analyzed, err := r.runOne(path, store)
				mu.Lock()
				if err != nil && firstErr == nil {
					firstErr = err
				}
				if !analyzed {
					stats.CacheHits++
				} else {
					stats.Analyzed = append(stats.Analyzed, path)
				}
				findings = append(findings, fs...)
				mu.Unlock()
			}
		})
		if firstErr != nil {
			return nil, nil, firstErr
		}
	}

	for _, a := range r.Analyzers {
		if a.Finish != nil {
			findings = append(findings, a.Finish(store)...)
		}
	}
	sortFindings(findings)
	sort.Strings(stats.Analyzed)
	return findings, stats, nil
}

// runOne analyzes (or replays) one package. analyzed reports whether
// real work happened.
func (r *Runner) runOne(path string, store *FactStore) (fs []Finding, analyzed bool, err error) {
	var key string
	if r.Cache != nil {
		key, err = r.Cache.Key(path)
		if err == nil && key != "" {
			if e, ok := r.Cache.Get(key); ok {
				store.AddCached(path, e.Facts)
				return e.Findings, false, nil
			}
		}
		// An unreadable key (fresh syntax error in a header) falls
		// through to the real load, which reports it properly.
		err = nil
	}
	p, err := r.Loader.Load(path)
	if err != nil {
		return nil, true, err
	}
	fs, err = RunPackage(p, r.Analyzers, r.CheckAllows, store)
	if err != nil {
		return nil, true, err
	}
	if r.Cache != nil && key != "" {
		if facts := store.factsOf(path); facts != nil {
			// Best effort: a failed write costs the next run a recompute.
			_ = r.Cache.Put(key, &CacheEntry{Findings: fs, Facts: facts})
		}
	}
	return fs, true, nil
}

// waves topologically layers the requested packages: wave k holds the
// packages whose module dependencies (within the requested set) all sit
// in earlier waves, so a wave's packages never wait on each other and
// can run fully parallel.
func (r *Runner) waves(paths []string) ([][]string, error) {
	deps, err := r.depGraph(paths)
	if err != nil {
		return nil, err
	}
	inSet := map[string]bool{}
	for _, p := range paths {
		inSet[p] = true
	}
	level := map[string]int{}
	var rank func(p string, visiting map[string]bool) (int, error)
	rank = func(p string, visiting map[string]bool) (int, error) {
		if l, ok := level[p]; ok {
			return l, nil
		}
		if visiting[p] {
			return 0, fmt.Errorf("msvet: import cycle through %s", p)
		}
		visiting[p] = true
		defer delete(visiting, p)
		l := 0
		for _, d := range deps[p] {
			if !inSet[d] {
				continue
			}
			dl, err := rank(d, visiting)
			if err != nil {
				return 0, err
			}
			if dl+1 > l {
				l = dl + 1
			}
		}
		level[p] = l
		return l, nil
	}
	maxLevel := 0
	for _, p := range paths {
		l, err := rank(p, map[string]bool{})
		if err != nil {
			return nil, err
		}
		if l > maxLevel {
			maxLevel = l
		}
	}
	waves := make([][]string, maxLevel+1)
	for _, p := range paths {
		waves[level[p]] = append(waves[level[p]], p)
	}
	for _, w := range waves {
		sort.Strings(w)
	}
	return waves, nil
}

// depGraph scans module-internal imports from file headers — through
// the cache's scanner when present (shared memoization), or a throwaway
// one otherwise.
func (r *Runner) depGraph(paths []string) (map[string][]string, error) {
	c := r.Cache
	if c == nil {
		// Header scanning needs no cache directory; a bare scanner with
		// the same memoization shape does the job.
		c = &Cache{
			modRoot: r.Loader.ModRoot(),
			modPath: r.Loader.ModPath(),
			ctx:     buildCtxNoCgo(),
			keys:    map[string]string{},
			deps:    map[string][]string{},
			err:     map[string]error{},
		}
	}
	graph := map[string][]string{}
	for _, p := range paths {
		deps, err := c.Deps(p)
		if err != nil {
			return nil, fmt.Errorf("msvet: scan %s: %w", p, err)
		}
		graph[p] = deps
	}
	return graph, nil
}

func sortFindings(findings []Finding) {
	sort.SliceStable(findings, func(i, j int) bool {
		a, b := findings[i].Pos, findings[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return findings[i].Analyzer < findings[j].Analyzer
	})
}
