package msvet

import (
	"go/ast"
	"go/types"
)

// MaporderAnalyzer flags range-over-map loops whose iteration order
// escapes: bodies that append to a slice declared outside the loop,
// write to an encoder/hash/writer, or send on a channel. Go randomizes
// map iteration per run, so any such loop makes serialized bytes,
// traces, or message streams differ between identical executions —
// exactly the nondeterminism the byte-identical trace and checkpoint
// guarantees forbid. The collect-then-sort idiom is recognized: a loop
// that only collects keys/values into a slice which is sorted later in
// the same function is clean.
var MaporderAnalyzer = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose order escapes into slices, encoders, hashes, or channels; " +
		"sort the keys first (cf. obs.sortedKeys, FS.Names)",
	Run: runMaporder,
}

// sortFuncs are the sort entry points that discharge a collect-then-
// sort loop: sort.X(target) / slices.SortX(target) after the loop.
func isSortCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, _ := pkgFunc(info, call)
	return pkg == "sort" || pkg == "slices"
}

// writerMethods are method names whose call inside a map-range body
// counts as streaming bytes out in iteration order.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Sum": true,
}

// fmtWriters are the fmt functions that stream to an io.Writer.
var fmtWriters = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

func runMaporder(pass *Pass) error {
	funcDecls(pass.Files, func(body *ast.BlockStmt) {
		ast.Inspect(body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			tv, ok := pass.Info.Types[rng.X]
			if !ok {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
				return true
			}
			checkMapRange(pass, body, rng)
			return true
		})
	})
	return nil
}

// checkMapRange inspects one map-range body for order-escaping sinks.
func checkMapRange(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "channel send inside map iteration publishes elements in randomized order; sort the keys first")
		case *ast.AssignStmt:
			// target = append(target, ...) with target declared outside
			// the loop and never sorted afterwards.
			if len(n.Lhs) != len(n.Rhs) {
				break
			}
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" ||
					(pass.Info.Uses[id] != nil && pass.Info.Uses[id].Pkg() != nil) {
					continue
				}
				target, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				if declaredWithin(pass.Info, target, rng.Body) {
					continue // loop-local accumulator, order cannot escape
				}
				if sortedAfter(pass, fnBody, rng, target) {
					continue // collect-then-sort idiom
				}
				pass.Reportf(call.Pos(),
					"append to %q inside map iteration records elements in randomized order; sort the keys first or sort %q before it escapes",
					target.Name, target.Name)
			}
		case *ast.CallExpr:
			if pkg, name := pkgFunc(pass.Info, n); pkg == "fmt" && fmtWriters[name] {
				pass.Reportf(n.Pos(), "fmt.%s inside map iteration streams output in randomized order; sort the keys first", name)
				return true
			}
			if name, recv, ok := methodCallOnWriterish(pass.Info, n); ok {
				pass.Reportf(n.Pos(),
					"%s.%s inside map iteration streams bytes in randomized order; sort the keys first", recv, name)
			}
		}
		return true
	})
}

// methodCallOnWriterish reports method calls that look like byte sinks:
// a writer-ish method name on a receiver implementing io.Writer or
// having a Sum/Encode shape (hash.Hash, encoders).
func methodCallOnWriterish(info *types.Info, call *ast.CallExpr) (name, recv string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := info.Uses[sel.Sel].(*types.Func)
	if !isFn {
		return "", "", false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || !writerMethods[fn.Name()] {
		return "", "", false
	}
	// Writer-ish receivers only: the receiver type (or its pointer)
	// must have a Write([]byte) (int, error) method, so ordinary
	// methods that happen to be called Sum or Encode don't trip it.
	t := sig.Recv().Type()
	if !hasWriteMethod(t) && fn.Name() != "Encode" {
		return "", "", false
	}
	var recvName string
	if tv, okT := info.Types[sel.X]; okT {
		recvName = tv.Type.String()
	}
	return fn.Name(), recvName, true
}

// hasWriteMethod reports whether t (or *t) has a method named Write
// taking a single []byte.
func hasWriteMethod(t types.Type) bool {
	if hasWriteMethodSet(types.NewMethodSet(t)) {
		return true
	}
	if _, isPtr := t.(*types.Pointer); !isPtr && !types.IsInterface(t) {
		return hasWriteMethodSet(types.NewMethodSet(types.NewPointer(t)))
	}
	return false
}

func hasWriteMethodSet(ms *types.MethodSet) bool {
	for i := 0; i < ms.Len(); i++ {
		fn := ms.At(i).Obj()
		if fn.Name() != "Write" {
			continue
		}
		sig, okSig := fn.Type().(*types.Signature)
		if !okSig || sig.Params().Len() != 1 {
			continue
		}
		if slice, okSl := sig.Params().At(0).Type().(*types.Slice); okSl {
			if basic, okB := slice.Elem().(*types.Basic); okB && basic.Kind() == types.Byte {
				return true
			}
		}
	}
	return false
}

// declaredWithin reports whether the identifier's declaration lies
// inside the given node's source range.
func declaredWithin(info *types.Info, id *ast.Ident, n ast.Node) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return n.Pos() <= obj.Pos() && obj.Pos() < n.End()
}

// sortedAfter reports whether target is passed to a sort/slices call
// positioned after the range loop inside the same function body.
func sortedAfter(pass *Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, target *ast.Ident) bool {
	found := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		if !isSortCall(pass.Info, call) || len(call.Args) == 0 {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok {
			return true
		}
		if obj := pass.Info.Uses[arg]; obj != nil && obj == objOf(pass.Info, target) {
			found = true
		}
		return !found
	})
	return found
}

func objOf(info *types.Info, id *ast.Ident) types.Object {
	if o := info.Uses[id]; o != nil {
		return o
	}
	return info.Defs[id]
}
