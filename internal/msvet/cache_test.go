package msvet

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

// runModule runs the full suite over the module rooted at root, with a
// fresh loader (so a warm run proves the cache, not the loader, did the
// work). cacheDir == "" disables the cache.
func runModule(t *testing.T, root, cacheDir string) ([]Finding, *RunStats) {
	t.Helper()
	l := NewLoader(root, "parms")
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Loader: l, Analyzers: Analyzers(), CheckAllows: true}
	if cacheDir != "" {
		c, err := NewCache(cacheDir, l, Analyzers(), true)
		if err != nil {
			t.Fatal(err)
		}
		r.Cache = c
	}
	findings, stats, err := r.Run(paths)
	if err != nil {
		t.Fatal(err)
	}
	return findings, stats
}

// moduleCopy clones the fixture module into a temp dir so cache writes
// and invalidation edits never touch the repo tree.
func moduleCopy(t *testing.T) string {
	t.Helper()
	dst := t.TempDir()
	src, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	err = filepath.WalkDir(src, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, p)
		if err != nil {
			return err
		}
		out := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(out, 0o755)
		}
		in, err := os.Open(p)
		if err != nil {
			return err
		}
		defer in.Close()
		w, err := os.Create(out)
		if err != nil {
			return err
		}
		if _, err := io.Copy(w, in); err != nil {
			w.Close()
			return err
		}
		return w.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// renderFindings flattens findings to their printed form, so equality
// checks compare exactly what users see.
func renderFindings(fs []Finding) []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = fmt.Sprint(f)
	}
	return out
}

// TestSeededDeadlockModule is the end-to-end check the issue demands:
// the self-contained fixture module seeds one collective mismatch that
// is only visible across two call frames and a package boundary
// (pipeline.Drive → compute.Stage → compute.ReduceAll), and a full
// Runner pass over the module must flag exactly that call site.
func TestSeededDeadlockModule(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("testdata", "module"))
	if err != nil {
		t.Fatal(err)
	}
	findings, stats := runModule(t, root, "")
	if stats.Packages != 3 {
		t.Fatalf("module has %d packages, want 3", stats.Packages)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want exactly the seeded mismatch: %v", len(findings), renderFindings(findings))
	}
	f := findings[0]
	if f.Analyzer != "spmd" {
		t.Errorf("finding analyzer = %q, want spmd", f.Analyzer)
	}
	if !strings.HasSuffix(filepath.ToSlash(f.Pos.Filename), "internal/pipeline/pipeline.go") {
		t.Errorf("finding at %s, want the pipeline call site", f.Pos.Filename)
	}
	if !strings.Contains(f.Message, "call to Stage selects between mismatched collective sequences") {
		t.Errorf("finding message %q does not name the cross-call divergence", f.Message)
	}
}

// TestCacheColdWarm checks the cache contract: a warm run replays every
// package without analysis and reproduces the cold run's findings
// byte for byte.
func TestCacheColdWarm(t *testing.T) {
	root := moduleCopy(t)
	cacheDir := filepath.Join(root, ".msvet-cache")

	cold, coldStats := runModule(t, root, cacheDir)
	if coldStats.CacheHits != 0 || len(coldStats.Analyzed) != 3 {
		t.Fatalf("cold run: %d hits, analyzed %v; want 0 hits, 3 analyzed", coldStats.CacheHits, coldStats.Analyzed)
	}

	warm, warmStats := runModule(t, root, cacheDir)
	if warmStats.CacheHits != 3 || len(warmStats.Analyzed) != 0 {
		t.Fatalf("warm run: %d hits, analyzed %v; want 3 hits, 0 analyzed", warmStats.CacheHits, warmStats.Analyzed)
	}
	if !reflect.DeepEqual(renderFindings(cold), renderFindings(warm)) {
		t.Fatalf("warm findings differ from cold:\ncold: %v\nwarm: %v", renderFindings(cold), renderFindings(warm))
	}
}

// TestCacheInvalidation edits one file and checks the blast radius:
// only the edited package and its reverse dependencies re-analyze, the
// rest replay, and a semantics-preserving edit leaves the findings
// identical.
func TestCacheInvalidation(t *testing.T) {
	root := moduleCopy(t)
	cacheDir := filepath.Join(root, ".msvet-cache")
	cold, _ := runModule(t, root, cacheDir)

	target := filepath.Join(root, "internal", "compute", "compute.go")
	fh, err := os.OpenFile(target, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fh.WriteString("\n// cache probe: content hash changes, semantics do not\n"); err != nil {
		t.Fatal(err)
	}
	if err := fh.Close(); err != nil {
		t.Fatal(err)
	}

	findings, stats := runModule(t, root, cacheDir)
	wantAnalyzed := []string{"parms/internal/compute", "parms/internal/pipeline"}
	if !reflect.DeepEqual(stats.Analyzed, wantAnalyzed) {
		t.Errorf("analyzed %v after editing compute, want %v (edited package plus reverse deps)", stats.Analyzed, wantAnalyzed)
	}
	if stats.CacheHits != 1 {
		t.Errorf("cache hits = %d after editing compute, want 1 (mpsim untouched)", stats.CacheHits)
	}
	if !reflect.DeepEqual(renderFindings(cold), renderFindings(findings)) {
		t.Errorf("comment-only edit changed findings:\nbefore: %v\nafter:  %v", renderFindings(cold), renderFindings(findings))
	}
}

// TestCacheConcurrent runs two full passes over one shared cache
// directory at once; under -race this is the write-contention check
// (temp-file + rename keeps entries atomic), and both runs must agree.
func TestCacheConcurrent(t *testing.T) {
	root := moduleCopy(t)
	cacheDir := filepath.Join(root, ".msvet-cache")

	var wg sync.WaitGroup
	results := make([][]string, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			findings, _ := runModule(t, root, cacheDir)
			results[i] = renderFindings(findings)
		}(i)
	}
	wg.Wait()
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatalf("concurrent runs disagree:\n%v\n%v", results[0], results[1])
	}
}

// TestColdWarmRepoSpeedup is the acceptance benchmark as a test: over
// the real module, a warm cached run must be at least twice as fast as
// the cold run that filled the cache, with identical findings.
func TestColdWarmRepoSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	root, _, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()

	start := time.Now()
	cold, coldStats := runModule(t, root, cacheDir)
	coldTime := time.Since(start)

	start = time.Now()
	warm, warmStats := runModule(t, root, cacheDir)
	warmTime := time.Since(start)

	t.Logf("cold %.2fs (%d analyzed), warm %.2fs (%d hits)",
		coldTime.Seconds(), len(coldStats.Analyzed), warmTime.Seconds(), warmStats.CacheHits)
	if warmStats.CacheHits != warmStats.Packages {
		t.Errorf("warm run analyzed %v; every package should replay", warmStats.Analyzed)
	}
	if !reflect.DeepEqual(renderFindings(cold), renderFindings(warm)) {
		t.Fatalf("warm findings differ from cold:\ncold: %v\nwarm: %v", renderFindings(cold), renderFindings(warm))
	}
	if 2*warmTime > coldTime {
		t.Errorf("warm run %.2fs is not ≥2× faster than cold %.2fs", warmTime.Seconds(), coldTime.Seconds())
	}
}

// BenchmarkRunRepo is the self-benchmark: one warm cached pass of the
// full suite over the whole module per iteration (the cache is primed
// once outside the timer).
func BenchmarkRunRepo(b *testing.B) {
	root, _, err := ModuleRoot(".")
	if err != nil {
		b.Fatal(err)
	}
	cacheDir := b.TempDir()
	run := func() error {
		l := NewLoader(root, "parms")
		paths, err := l.ModulePackages()
		if err != nil {
			return err
		}
		c, err := NewCache(cacheDir, l, Analyzers(), true)
		if err != nil {
			return err
		}
		r := &Runner{Loader: l, Analyzers: Analyzers(), CheckAllows: true, Cache: c}
		_, _, err = r.Run(paths)
		return err
	}
	if err := run(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := run(); err != nil {
			b.Fatal(err)
		}
	}
}
