package msvet

// callgraph.go builds the whole-repo call graph the interprocedural
// analyzers walk (DESIGN §16). Edges are static: package-level calls,
// concrete-receiver method calls, and locally referenced function
// identifiers. Dynamic dispatch (interface methods, func values) has no
// edge — an unknown callee is assumed collective-free, which is safe
// for every analyzer here because collectives live on the concrete
// *mpsim.Rank and the repo never hides one behind an interface.
//
// Within a package the graph is explicit (key → callee keys); across
// packages the callee's exported facts stand in for its subgraph, so
// the graph composes package by package exactly like the fact store.

import (
	"go/ast"
)

// callGraph is the intra-package slice of the repo call graph, plus the
// cross-package "may reach a collective" closure resolved through
// imported facts.
type callGraph struct {
	a *pkgAnalysis
	// edges maps a function key to its statically resolved callees:
	// local keys for same-package callees, "path\x00key" for imports.
	edges map[string][]edge
	// direct marks functions whose own body contains an mpsim
	// collective call.
	direct map[string]bool
	// reachMemo holds the package-wide may-reach closure, computed once
	// on first use (nil until then).
	reachMemo map[string]bool
}

type edge struct {
	pkgPath string // "" for same-package callees
	key     string
}

// buildCallGraph scans every function body once and records its static
// call edges and direct collective uses. Function-literal bodies count
// toward their enclosing declaration: a collective inside a closure is
// still entered by the rank running the function.
func buildCallGraph(a *pkgAnalysis) *callGraph {
	g := &callGraph{
		a:      a,
		edges:  map[string][]edge{},
		direct: map[string]bool{},
	}
	for _, fi := range a.funcs {
		ast.Inspect(fi.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := methodOn(a.p.Info, call, mpsimPath, "Rank"); ok && collectiveMethods[name] {
				g.direct[fi.key] = true
				return true
			}
			fn := staticCallee(a.p.Info, call)
			if fn == nil {
				return true
			}
			pkgPath, key := funcKeyOf(fn)
			if key == "" {
				return true
			}
			if pkgPath == a.p.Pkg.Path() {
				g.edges[fi.key] = append(g.edges[fi.key], edge{"", key})
			} else {
				g.edges[fi.key] = append(g.edges[fi.key], edge{pkgPath, key})
			}
			return true
		})
	}
	return g
}

// reaches reports whether a collective call is reachable from the
// function with the given local key — directly, through same-package
// callees (cycles included), or through imported functions whose facts
// say so.
func (g *callGraph) reaches(key string) bool {
	if g.reachMemo == nil {
		g.computeReach()
	}
	return g.reachMemo[key]
}

// computeReach resolves the package's whole may-reach set as one
// monotone fixpoint: seed with functions whose bodies contain a
// collective, propagate backwards along edges until stable. The
// fixpoint handles cycles for free and visits each edge at most
// once per pass, where a naive DFS re-explores shared subgraphs
// exponentially. Cross-package edges consult the callee's exported
// summary once each.
func (g *callGraph) computeReach() {
	memo := make(map[string]bool, len(g.edges))
	extern := map[edge]bool{}
	externMay := func(e edge) bool {
		if v, ok := extern[e]; ok {
			return v
		}
		v := false
		if facts, err := g.a.store.Facts(e.pkgPath); err == nil && facts != nil {
			if sum, ok := facts.Summaries[e.key]; ok && sum.May {
				v = true
			}
		}
		extern[e] = v
		return v
	}
	for k := range g.direct {
		memo[k] = true
	}
	for changed := true; changed; {
		changed = false
		for key, edges := range g.edges {
			if memo[key] {
				continue
			}
			for _, e := range edges {
				hit := false
				if e.pkgPath == "" {
					hit = memo[e.key]
				} else {
					hit = externMay(e)
				}
				if hit {
					memo[key] = true
					changed = true
					break
				}
			}
		}
	}
	g.reachMemo = memo
}
