package msvet

import (
	"go/ast"
)

// OwnerAnalyzer flags direct calls to grid.RankOfBlock or
// grid.AssignBlocks outside internal/grid. Those helpers hard-code the
// initial block-cyclic layout; once a run can migrate blocks off a
// crashed rank (DESIGN §13) the layout is dynamic, and any code that
// consults the static formula silently disagrees with the ownership
// table after the first migration — sends address the wrong rank,
// output writers drop migrated blocks, analyses misattribute waits.
// Everything outside internal/grid must go through grid.OwnerTable
// (Owner / Blocks), which starts block-cyclic and tracks migrations.
var OwnerAnalyzer = &Analyzer{
	Name: "owner",
	Doc: "flags direct grid.RankOfBlock/AssignBlocks calls outside internal/grid; " +
		"block ownership must be resolved through grid.OwnerTable so migration is honored",
	Applies: func(pkgPath string) bool { return pkgPath != "parms/internal/grid" },
	Run:     runOwner,
}

func runOwner(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if pkg, name := pkgFunc(pass.Info, call); pkg == "parms/internal/grid" {
				switch name {
				case "RankOfBlock", "AssignBlocks":
					pass.Reportf(call.Pos(),
						"grid.%s hard-codes the initial block-cyclic layout in %s; resolve ownership through grid.OwnerTable so migrations are honored",
						name, pass.Pkg.Path())
				}
			}
			return true
		})
	}
	return nil
}
