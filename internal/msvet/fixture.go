package msvet

import (
	"fmt"
	"regexp"
	"sort"
)

// wantRe matches fixture expectations: // want `regexp`. Multiple want
// markers on one line expect multiple findings there.
var wantRe = regexp.MustCompile("// want `([^`]*)`")

// CheckFixture is the analysistest-style regression harness: it runs
// the analyzers over the package in dir — type-checked under pkgPath,
// which places the fixture anywhere in the package namespace (a
// deterministic path for wallclock, a non-framing path for rawframe) —
// and compares findings against the fixture's `// want "re"` comments
// line by line. It returns one human-readable mismatch per problem:
// expected-but-missing, reported-but-unexpected, or pattern mismatch.
func CheckFixture(l *Loader, dir, pkgPath string, analyzers []*Analyzer, checkAllows bool) ([]string, error) {
	p, err := l.LoadDir(dir, pkgPath)
	if err != nil {
		return nil, err
	}
	store := NewFactStore(l.ModPath(), l.Load)
	findings, err := RunPackage(p, analyzers, checkAllows, store)
	if err != nil {
		return nil, err
	}
	// Repo-wide verdicts (sendrecv pairing) run over the fixture's
	// store, which holds the fixture package plus whatever module
	// packages it pulled in — matching the real driver's shape.
	for _, a := range analyzers {
		if a.Finish != nil {
			findings = append(findings, a.Finish(store)...)
		}
	}

	type want struct {
		re  *regexp.Regexp
		hit bool
	}
	wants := map[string][]*want{} // "file:line" -> expectations
	key := func(file string, line int) string { return fmt.Sprintf("%s:%d", file, line) }
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						return nil, fmt.Errorf("bad want pattern %q: %w", m[1], err)
					}
					pos := p.Fset.Position(c.Pos())
					wants[key(pos.Filename, pos.Line)] = append(wants[key(pos.Filename, pos.Line)], &want{re: re})
				}
			}
		}
	}

	var problems []string
	for _, f := range findings {
		ws := wants[key(f.Pos.Filename, f.Pos.Line)]
		matched := false
		for _, w := range ws {
			if !w.hit && w.re.MatchString(f.Analyzer+": "+f.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			problems = append(problems, fmt.Sprintf("unexpected finding at %s", f))
		}
	}
	locs := make([]string, 0, len(wants))
	for loc := range wants {
		locs = append(locs, loc)
	}
	sort.Strings(locs)
	for _, loc := range locs {
		for _, w := range wants[loc] {
			if !w.hit {
				problems = append(problems, fmt.Sprintf("%s: expected finding matching %q, got none", loc, w.re))
			}
		}
	}
	return problems, nil
}
