package msvet

// sarif.go serializes findings as a minimal SARIF 2.1.0 log, the format
// CI code-scanning upload actions consume, so msvet findings annotate
// pull requests inline instead of hiding in a job log. Only the fields
// the renderers read are emitted; file URIs are module-relative so the
// log is machine-independent.

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// WriteSARIF writes the findings as one SARIF run. modRoot relativizes
// file paths; rule metadata comes from the analyzer docs (the
// "msvet:allow" pseudo-analyzer gets a synthetic rule).
func WriteSARIF(w io.Writer, findings []Finding, modRoot string) error {
	rules := map[string]bool{}
	var ruleList []sarifRule
	addRule := func(name string) {
		if rules[name] {
			return
		}
		rules[name] = true
		doc := "msvet finding"
		if a := byName(name); a != nil {
			doc = a.Doc
		} else if name == "msvet:allow" {
			doc = "malformed, unknown, or stale //msvet:allow annotation"
		}
		ruleList = append(ruleList, sarifRule{ID: name, ShortDescription: sarifMessage{Text: doc}})
	}

	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		addRule(f.Analyzer)
		uri := f.Pos.Filename
		if rel, err := filepath.Rel(modRoot, uri); err == nil && !strings.HasPrefix(rel, "..") {
			uri = rel
		}
		results = append(results, sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: filepath.ToSlash(uri)},
					Region:           sarifRegion{StartLine: f.Pos.Line, StartColumn: f.Pos.Column},
				},
			}},
		})
	}

	log := sarifLog{
		Schema:  "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "msvet", Rules: ruleList}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
