package msvet

import (
	"os"
	"path/filepath"
	"testing"
)

// probe: break inside a rank-dependent switch (no collectives at all).
func TestProbeBreakInSwitch(t *testing.T) {
	root := moduleCopy(t)
	src := `package compute

import "parms/internal/mpsim"

func SwitchBreak(r *mpsim.Rank) {
	switch {
	case r.ID() == 0:
		break
	default:
	}
}
`
	if err := os.WriteFile(filepath.Join(root, "internal", "compute", "probe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	findings, _ := runModule(t, root, "")
	for _, f := range findings {
		if filepath.Base(f.Pos.Filename) == "probe.go" {
			t.Errorf("unexpected finding: %v", f)
		}
	}
}

// probe: sibling-package field taint vs the cache. Package a holds a
// struct field, package b (not imported by c) taints it with r.ID(),
// package c branches on the field between two collective orders.
func TestProbeSiblingFieldTaintCache(t *testing.T) {
	root := moduleCopy(t)
	mk := func(rel, src string) {
		p := filepath.Join(root, filepath.FromSlash(rel))
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	mk("internal/aa/aa.go", `package aa

type State struct{ Lead bool }
`)
	mk("internal/bb/bb.go", `package bb

import (
	"parms/internal/aa"
	"parms/internal/mpsim"
)

func Taint(r *mpsim.Rank, s *aa.State) {
	s.Lead = r.ID() == 0
}
`)
	mk("internal/cc/cc.go", `package cc

import (
	"parms/internal/aa"
	"parms/internal/mpsim"
)

func Diverge(r *mpsim.Rank, s *aa.State) {
	if s.Lead {
		r.Barrier()
	} else {
		r.AllreduceFloat64(1, "sum")
	}
}
`)
	cache := t.TempDir()
	cold, _ := runModule(t, root, cache)
	count := func(fs []Finding) int {
		n := 0
		for _, f := range fs {
			if filepath.Base(f.Pos.Filename) == "cc.go" {
				n++
			}
		}
		return n
	}
	t.Logf("cold cc findings: %d", count(cold))

	// Remove the taint in bb; cc's verdict should change with it.
	mk("internal/bb/bb.go", `package bb

import (
	"parms/internal/aa"
	"parms/internal/mpsim"
)

func Taint(r *mpsim.Rank, s *aa.State) {
	s.Lead = r.Size() > 1
}
`)
	warm, stats := runModule(t, root, cache)
	t.Logf("warm cc findings: %d (analyzed: %v)", count(warm), stats.Analyzed)
	nocache, _ := runModule(t, root, "")
	t.Logf("nocache cc findings: %d", count(nocache))
	if count(warm) != count(nocache) {
		t.Errorf("cache staleness: warm=%d findings in cc, uncached=%d", count(warm), count(nocache))
	}
}
