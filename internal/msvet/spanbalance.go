package msvet

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// obsPath is the import path of the observability package whose
// Begin/End span discipline the spanbalance analyzer enforces.
const obsPath = "parms/internal/obs"

// SpanbalanceAnalyzer flags unbalanced RankTracer.Begin / OpenSpan.End
// pairs. An OpenSpan that is never ended silently drops the span from
// the trace, which skews every downstream analysis (stage statistics,
// critical path, straggler attribution) without failing anything. The
// check is syntactic and per-function: the OpenSpan must be bound to a
// variable, that variable must have an End call in the same function,
// and no return may sit between the Begin and the first End — open
// spans that must cross an early return need restructuring (or a
// justified //msvet:allow spanbalance annotation).
var SpanbalanceAnalyzer = &Analyzer{
	Name: "spanbalance",
	Doc: "flags RankTracer.Begin whose OpenSpan is discarded, never ended in the " +
		"same function, or still open across an early return on some path",
	Run: runSpanbalance,
}

func runSpanbalance(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				spanScanScope(pass, fd.Body)
			}
		}
	}
	return nil
}

// spanOpen is one `v := tr.Begin(...)` site within a function scope.
type spanOpen struct {
	obj  types.Object
	name string // span name, when a string literal
	pos  token.Pos
}

// spanScanScope checks one function scope. Nested function literals are
// separate scopes, scanned recursively: their returns do not terminate
// the enclosing function, and a span must be closed in the scope that
// opened it.
func spanScanScope(pass *Pass, body *ast.BlockStmt) {
	var opens []spanOpen
	ends := map[types.Object][]token.Pos{}
	var returns []token.Pos

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			spanScanScope(pass, n.Body)
			return false
		case *ast.ReturnStmt:
			returns = append(returns, n.Pos())
		case *ast.ExprStmt:
			if call, ok := beginCall(pass.Info, n.X); ok {
				pass.Reportf(call.Pos(),
					"span %s opened but its OpenSpan is discarded — nothing can End it", spanName(call))
			}
		case *ast.AssignStmt:
			if len(n.Rhs) != 1 || len(n.Lhs) != 1 {
				break
			}
			call, ok := beginCall(pass.Info, n.Rhs[0])
			if !ok {
				break
			}
			id, isID := ast.Unparen(n.Lhs[0]).(*ast.Ident)
			if !isID {
				break
			}
			if id.Name == "_" {
				pass.Reportf(call.Pos(),
					"span %s opened but its OpenSpan is assigned to _ — nothing can End it", spanName(call))
				break
			}
			obj := pass.Info.Defs[id]
			if obj == nil {
				obj = pass.Info.Uses[id]
			}
			if obj != nil {
				opens = append(opens, spanOpen{obj: obj, name: spanName(call), pos: call.Pos()})
			}
		case *ast.CallExpr:
			if name, ok := methodOn(pass.Info, n, obsPath, "OpenSpan"); ok && name == "End" {
				if sel, isSel := ast.Unparen(n.Fun).(*ast.SelectorExpr); isSel {
					if id, isID := ast.Unparen(sel.X).(*ast.Ident); isID {
						if obj := pass.Info.Uses[id]; obj != nil {
							ends[obj] = append(ends[obj], n.Pos())
						}
					}
				}
			}
		}
		return true
	}
	ast.Inspect(body, walk)

	for _, open := range opens {
		endPositions := ends[open.obj]
		if len(endPositions) == 0 {
			pass.Reportf(open.pos, "span %s opened but never ended in this function", open.name)
			continue
		}
		first := endPositions[0]
		for _, p := range endPositions {
			if p < first {
				first = p
			}
		}
		for _, ret := range returns {
			if open.pos < ret && ret < first {
				pass.Reportf(open.pos,
					"span %s is still open across an early return on some path — End it before returning", open.name)
				break
			}
		}
	}
}

// beginCall resolves an expression to a RankTracer.Begin call.
func beginCall(info *types.Info, e ast.Expr) (*ast.CallExpr, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	name, ok := methodOn(info, call, obsPath, "RankTracer")
	if !ok || name != "Begin" {
		return nil, false
	}
	return call, true
}

// spanName renders the span's name argument for diagnostics: the
// literal when it is one, a placeholder otherwise.
func spanName(call *ast.CallExpr) string {
	if len(call.Args) > 0 {
		if lit, ok := call.Args[0].(*ast.BasicLit); ok && lit.Kind == token.STRING {
			if s, err := strconv.Unquote(lit.Value); err == nil {
				return strconv.Quote(s)
			}
		}
	}
	return "(dynamic name)"
}
