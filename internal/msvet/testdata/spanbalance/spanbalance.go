// Fixture for the spanbalance analyzer: RankTracer.Begin / OpenSpan.End
// pairing discipline.
package spanbalance

import (
	"parms/internal/obs"
	"parms/internal/vtime"
)

func badDiscarded(tr *obs.RankTracer, now vtime.Time) {
	tr.Begin("serialize", now) // want `spanbalance: span "serialize" opened but its OpenSpan is discarded`
}

func badBlank(tr *obs.RankTracer, now vtime.Time) {
	_ = tr.Begin("glue", now) // want `spanbalance: span "glue" opened but its OpenSpan is assigned to _`
}

func badNeverEnded(tr *obs.RankTracer, now vtime.Time) {
	sp := tr.Begin("simplify", now) // want `spanbalance: span "simplify" opened but never ended in this function`
	_ = sp
}

func badEarlyReturn(tr *obs.RankTracer, now vtime.Time, fail bool) bool {
	sp := tr.Begin("glue", now) // want `spanbalance: span "glue" is still open across an early return on some path`
	if fail {
		return false
	}
	sp.End(now)
	return true
}

func badDynamicNeverEnded(tr *obs.RankTracer, name string, now vtime.Time) {
	sp := tr.Begin(name, now) // want `spanbalance: span \(dynamic name\) opened but never ended`
	_ = sp
}

func goodBalanced(tr *obs.RankTracer, now vtime.Time) {
	sp := tr.Begin("serialize", now)
	sp.End(now, obs.I("bytes", 1))
}

func goodEndThenReturn(tr *obs.RankTracer, now vtime.Time, early bool) bool {
	sp := tr.Begin("glue", now)
	sp.End(now)
	if early {
		return false // legal: the span is already closed here
	}
	return true
}

func goodNestedScopes(tr *obs.RankTracer, now vtime.Time) {
	// The literal is its own scope: its balanced pair does not leak
	// into (or satisfy) the enclosing function's accounting.
	f := func() {
		sp := tr.Begin("inner", now)
		sp.End(now)
	}
	f()
}

func goodAllowed(tr *obs.RankTracer, now vtime.Time) {
	// A justified annotation suppresses the finding (the helper owns
	// the End call).
	//msvet:allow spanbalance: handed to a helper that ends it
	sp := tr.Begin("handoff", now)
	_ = sp
}
