// Fixture for the maporder analyzer: map iteration whose order escapes
// into slices, writers, hashes, or channels.
package maporder

import (
	"bytes"
	"fmt"
	"hash/crc32"
	"sort"
)

func badAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `maporder: append to "keys" inside map iteration`
	}
	return keys
}

func goodCollectThenSort(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k) // sorted below: legal
	}
	sort.Strings(keys)
	return keys
}

func goodSortSlice(m map[int]int) []int {
	var ks []int
	for k := range m {
		ks = append(ks, k) // sorted below via sort.Slice: legal
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
	return ks
}

func badWriter(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want `maporder: .*WriteString inside map iteration streams bytes`
	}
}

func badHash(m map[string][]byte) uint32 {
	h := crc32.NewIEEE()
	for _, v := range m {
		h.Write(v) // want `maporder: .*Write inside map iteration streams bytes`
	}
	return h.Sum32()
}

func badFprintf(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want `maporder: fmt\.Fprintf inside map iteration streams output`
	}
}

func badChannel(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `maporder: channel send inside map iteration`
	}
}

func goodAggregate(m map[string]int) int {
	// Order-independent reduction: no sink, no finding.
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

func goodLoopLocal(m map[string][]int) int {
	// Appending to a loop-local slice cannot leak iteration order.
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

func goodBuildMap(m map[string]int) map[int]string {
	// Writing another map is order-independent.
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
