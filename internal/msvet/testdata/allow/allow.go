// Fixture for the //msvet:allow annotation grammar: justified
// annotations suppress, unjustified or unknown ones are themselves
// findings, and stale annotations (suppressing nothing) are flagged so
// escape hatches cannot outlive the code they excused. Type-checked
// under a deterministic path so wallclock applies.
package allow

import "time"

func suppressedInline() {
	_ = time.Now() //msvet:allow wallclock: fixture needs a suppressed site
}

func suppressedAbove() {
	//msvet:allow wallclock: annotation on its own line covers the next one
	_ = time.Now()
}

func unjustified() {
	//msvet:allow wallclock // want `msvet:allow: allow wallclock carries no justification`
	_ = time.Now() // want `wallclock: time\.Now reads the host clock`
}

func unknownAnalyzer() {
	//msvet:allow clockwall: no such analyzer // want `msvet:allow: annotation names unknown analyzer "clockwall"`
	_ = time.Now() // want `wallclock: time\.Now reads the host clock`
}

//msvet:allow wallclock: nothing on the next line violates anything // want `msvet:allow: allow wallclock suppresses nothing`
func stale() {}
