// Fixture for the rawframe analyzer: raw encoding/binary stream IO and
// hand-rolled length-prefix framing outside the framing packages. The
// harness type-checks this under a non-framing path.
package rawframe

import (
	"bytes"
	"encoding/binary"
)

func badStreamWrite(buf *bytes.Buffer, v uint64) error {
	return binary.Write(buf, binary.LittleEndian, v) // want `rawframe: binary\.Write streams unframed bytes`
}

func badStreamRead(buf *bytes.Buffer, v *uint64) error {
	return binary.Read(buf, binary.LittleEndian, v) // want `rawframe: binary\.Read streams unframed bytes`
}

func badLengthPrefix(payload []byte) []byte {
	out := make([]byte, 4+len(payload))
	binary.LittleEndian.PutUint32(out, uint32(len(payload))) // want `rawframe: PutUint32 of a len\(\.\.\.\) builds a manual length prefix`
	copy(out[4:], payload)
	return out
}

func badAppendPrefix(dst, payload []byte) []byte {
	dst = binary.BigEndian.AppendUint64(dst, uint64(len(payload))) // want `rawframe: AppendUint64 of a len\(\.\.\.\) builds a manual length prefix`
	return append(dst, payload...)
}

func goodFieldPacking(x uint64) []byte {
	// Packing a number is not framing: no len() in the value position.
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, x)
	return buf
}

func goodDecode(b []byte) uint32 {
	// Reads don't lay down on-disk bytes.
	return binary.LittleEndian.Uint32(b)
}
