// Fixture for the wallclock analyzer. Type-checked under a
// deterministic package path (parms/internal/merge) by the test
// harness, so the analyzer applies.
package wallclock

import (
	"math/rand"
	"time"
)

func badTime() {
	_ = time.Now()                         // want `wallclock: time\.Now reads the host clock`
	time.Sleep(time.Second)                // want `wallclock: time\.Sleep reads the host clock`
	_ = time.Since(time.Time{})            // want `wallclock: time\.Since reads the host clock`
	_ = time.After(time.Second)            // want `wallclock: time\.After reads the host clock`
	time.AfterFunc(time.Second, func() {}) // want `wallclock: time\.AfterFunc reads the host clock`
	_ = time.NewTimer(time.Second)         // want `wallclock: time\.NewTimer reads the host clock`
}

func badRand() int {
	rand.Shuffle(3, func(i, j int) {}) // want `wallclock: rand\.Shuffle draws from the global wall-seeded source`
	return rand.Intn(7)                // want `wallclock: rand\.Intn draws from the global wall-seeded source`
}

func goodSeeded(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed)) // seeded: legal
	return rng.Float64()                  // method on *rand.Rand: legal
}

func goodConstants() time.Duration {
	// Duration arithmetic never reads the clock.
	return 2 * time.Second
}

func allowed() {
	//msvet:allow wallclock: fixture exercises the annotation path
	_ = time.Now()
}
