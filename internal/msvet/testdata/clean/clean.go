// A known-clean mini-module for the end-to-end multichecker test: it
// exercises the legal idiom next to every invariant — seeded
// randomness, collect-then-sort map iteration, hoisted collectives,
// handled fault-path errors, and frame-free number packing — and must
// produce zero findings under the full suite. A broken analyzer that
// starts flagging legal code fails this test loudly instead of
// silently passing the repo.
package clean

import (
	"encoding/binary"
	"math/rand"
	"sort"

	"parms/internal/mpsim"
	"parms/internal/vtime"
)

// SortedTotals drains a map deterministically: keys sorted before any
// order-sensitive consumption.
func SortedTotals(m map[string]int64) []int64 {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int64, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// Shuffle permutes deterministically under an explicit seed.
func Shuffle(xs []int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
}

// RootedGather is the disciplined collective pattern: every rank enters
// the collective; only the root branches afterwards on the result.
func RootedGather(r *mpsim.Rank, payload []byte) int {
	parts := r.Gather(0, payload)
	total := 0
	if r.ID() == 0 {
		for _, p := range parts {
			total += len(p)
		}
	}
	return total
}

// CheckedExchange handles every fault-carrying result.
func CheckedExchange(r *mpsim.Rank, data []byte) ([]byte, error) {
	if err := r.TrySend((r.ID()+1)%r.Size(), 9, data); err != nil {
		return nil, err
	}
	payload, _, ok := r.RecvTimeout(mpsim.AnySource, 9, vtime.Time(10))
	if !ok {
		return nil, nil
	}
	return payload, nil
}

// PackPair packs two numbers — no length prefix, no framing.
func PackPair(a, b uint64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[:8], a)
	binary.LittleEndian.PutUint64(buf[8:], b)
	return buf
}
