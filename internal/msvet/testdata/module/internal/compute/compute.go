// Package compute holds the helper frames the seeded pipeline calls
// through: each function is legal on its own — the collective-sequence
// divergence only becomes visible through their exported summaries at
// the rank-tainted call site in the pipeline package.
package compute

import "parms/internal/mpsim"

// ReduceAll is the innermost frame: an unconditional collective.
func ReduceAll(r *mpsim.Rank, x float64) float64 {
	return r.AllreduceFloat64(x, "max")
}

// Stage forwards its flag into the collective decision: its summary is
// parameter-conditional, so the verdict belongs to the caller.
func Stage(r *mpsim.Rank, lead bool, x float64) float64 {
	if lead {
		return ReduceAll(r, x)
	}
	return x
}
