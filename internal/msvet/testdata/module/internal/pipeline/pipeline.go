// Package pipeline seeds the cross-package SPMD mismatch the
// end-to-end test expects the spmd analyzer to flag: Drive derives a
// rank-tainted flag and hands it two call frames down (Stage, then
// ReduceAll) into a collective only some ranks will enter.
package pipeline

import (
	"parms/internal/compute"
	"parms/internal/mpsim"
)

// Drive runs one pipeline step; only rank 0 folds the result.
func Drive(r *mpsim.Rank, x float64) float64 {
	lead := r.ID() == 0
	return compute.Stage(r, lead, x)
}
