// Package mpsim is a miniature stand-in for the real message-passing
// substrate: the msvet analyzers key on the import path and the Rank
// method set, so this stub is exactly enough surface for an end-to-end
// run of the suite over a self-contained module.
package mpsim

// Rank is one simulated process of the cluster.
type Rank struct {
	id, size int
}

// ID returns this rank's identity — the root of all rank taint.
func (r *Rank) ID() int { return r.id }

// Size returns the cluster size, uniform across ranks.
func (r *Rank) Size() int { return r.size }

// Barrier blocks until every rank arrives.
func (r *Rank) Barrier() {}

// AllreduceFloat64 combines x across ranks; every rank gets the result.
func (r *Rank) AllreduceFloat64(x float64, op string) float64 { return x }

// Bcast distributes the root's payload to every rank.
func (r *Rank) Bcast(root int, data []byte) []byte { return data }

// Send posts a tagged message to dst.
func (r *Rank) Send(dst, tag int, data []byte) {}

// Recv blocks for a message with the given tag.
func (r *Rank) Recv(src, tag int) ([]byte, int) { return nil, src }
