module parms

go 1.22
