// Fixture for the sendrecv tag matcher: constant Send tags must have a
// Recv-family site somewhere in the module using the same constant, and
// vice versa. Matching is by folded constant value (tagWork+1 on one
// side pairs with the literal on the other); dynamic tags are skipped
// on both sides, and a justified allow suppresses a deliberate orphan.
package sendrecv

import "parms/internal/mpsim"

const (
	tagWork       = 7001
	tagResult     = 7002
	tagOrphanSend = 7003
	tagOrphanRecv = 7004
	tagHushed     = 7005
)

// Matched pair: clean on both sides.
func sendWork(r *mpsim.Rank, dst int, b []byte) {
	r.Send(dst, tagWork, b)
}

func recvWork(r *mpsim.Rank, src int) ([]byte, int) {
	return r.Recv(src, tagWork)
}

// Constant folding: tagWork+1 here pairs with the tagResult literal
// on the receive side.
func sendResult(r *mpsim.Rank, dst int, b []byte) error {
	return r.TrySend(dst, tagWork+1, b)
}

func recvResult(r *mpsim.Rank, src int) ([]byte, int, error) {
	return r.TryRecv(src, tagResult)
}

// One-sided constants: stranded message, blocked receiver.
func sendOrphan(r *mpsim.Rank, dst int, b []byte) {
	r.Send(dst, tagOrphanSend, b) // want `sendrecv: Send\(tag tagOrphanSend\) has no Recv-family site`
}

func recvOrphan(r *mpsim.Rank, src int) ([]byte, int) {
	return r.Recv(src, tagOrphanRecv) // want `sendrecv: Recv\(tag tagOrphanRecv\) has no Send site`
}

// Dynamic tags are out of scope: both sides derive them from the same
// formula (the merge's tagMergeBase discipline), which value matching
// cannot check and must not guess about.
func sendDynamic(r *mpsim.Rank, dst, tag int, b []byte) {
	r.Send(dst, tag, b)
}

func recvDynamic(r *mpsim.Rank, src, round int) ([]byte, int) {
	return r.Recv(src, tagWork+round)
}

// A deliberate orphan under a justified allow stays silent — and the
// annotation counts as used, so the allow hygiene pass never reports
// it stale.
func sendHushed(r *mpsim.Rank, dst int, b []byte) {
	r.Send(dst, tagHushed, b) //msvet:allow sendrecv: probe frame consumed by a peer outside the module
}
