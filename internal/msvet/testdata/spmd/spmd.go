// Fixture for the spmd collective-sequence matcher: rank-dependent
// control flow whose paths enter different collective sequences, in
// every shape the engine distinguishes — direct branch, early return,
// rank-bounded loop, struct-field taint, and divergence smuggled
// through helper calls — next to the legal idioms (root-compute then
// uniform collective, identical arms, error aborts, param-bounded
// loops) that must stay silent.
package spmd

import "parms/internal/mpsim"

// Direct mismatch: only rank 0 enters the Barrier.
func badDirect(r *mpsim.Rank) {
	if r.ID() == 0 { // want `spmd: rank-dependent control flow yields mismatched collective sequences`
		r.Barrier()
	}
}

// Legal: root-only compute, collective outside the branch.
func goodRooted(r *mpsim.Rank, data []byte) []byte {
	if r.ID() == 0 {
		data = append(data, 1)
	}
	return r.Bcast(0, data)
}

// Legal: both arms enter the same collective sequence.
func goodSameArms(r *mpsim.Rank, x float64) float64 {
	if r.ID() == 0 {
		return r.AllreduceFloat64(x, "max")
	}
	return r.AllreduceFloat64(x, "min")
}

// The two-frame chain: Drive derives a rank-tainted flag and hands it
// to stage, which hands it on to pick the collective path. The
// divergence is only visible through both summaries.
func reduceAll(r *mpsim.Rank, x float64) float64 {
	return r.AllreduceFloat64(x, "max")
}

func stage(r *mpsim.Rank, lead bool, x float64) float64 {
	if lead {
		return reduceAll(r, x)
	}
	return x
}

func Drive(r *mpsim.Rank, x float64) float64 {
	lead := r.ID() == 0
	return stage(r, lead, x) // want `spmd: call to stage selects between mismatched collective sequences`
}

// Legal use of the same helper: a rank-uniform flag selects the path,
// so every rank selects the same one.
func DriveUniform(r *mpsim.Rank, every bool, x float64) float64 {
	return stage(r, every, x)
}

// Early return: odd ranks skip the Barrier.
func badEarlyReturn(r *mpsim.Rank) {
	if r.ID()%2 == 1 { // want `spmd: rank-dependent control flow yields mismatched collective sequences`
		return
	}
	r.Barrier()
}

// Rank-dependent loop bound: ranks run different collective counts.
func badLoop(r *mpsim.Rank) {
	for i := 0; i < r.ID(); i++ { // want `spmd: collectives inside a loop whose iteration count is rank-dependent`
		r.Barrier()
	}
}

// Legal: the bound is a parameter — the caller is responsible for
// passing a uniform one, and Drive-style misuse is caught there.
func goodLoop(r *mpsim.Rank, rounds int) {
	for i := 0; i < rounds; i++ {
		r.Barrier()
	}
}

// Struct-field taint: the rank flag travels through a field.
type phase struct {
	leader bool
}

func badField(r *mpsim.Rank) {
	var p phase
	p.leader = r.ID() == 0
	if p.leader { // want `spmd: rank-dependent control flow yields mismatched collective sequences`
		r.Barrier()
	}
}

// Legal: the rank-guarded path aborts the whole run (error return);
// abort paths are excluded from sequence matching, as a crash takes
// the cluster down rather than deadlocking it.
func goodAbort(r *mpsim.Rank, err error) error {
	if r.ID() == 0 && err != nil {
		return err
	}
	r.Barrier()
	return nil
}
