// Fixture for the collective analyzer: mpsim collectives inside
// rank-conditional branches. Imports the real substrate so the
// analyzer's type resolution is exercised against the true Rank type.
package collective

import "parms/internal/mpsim"

func badDirect(r *mpsim.Rank) {
	if r.ID() == 0 {
		r.Barrier() // want `collective: collective Barrier inside a rank-conditional branch`
	}
}

func badElse(r *mpsim.Rank, data []byte) {
	if r.ID() != 0 {
		r.Send(0, 1, data) // point-to-point: legal anywhere
	} else {
		_ = r.Gather(0, data) // want `collective: collective Gather inside a rank-conditional branch`
	}
}

func badTainted(r *mpsim.Rank) {
	root := r.ID() == 0
	if root {
		r.Barrier() // want `collective: collective Barrier inside a rank-conditional branch`
	}
}

func badNested(r *mpsim.Rank, n int) {
	if n > 4 {
		if id := r.ID(); id < n/2 {
			for i := 0; i < n; i++ {
				_ = r.AllreduceFloat64(1.0, "sum") // want `collective: collective AllreduceFloat64 inside a rank-conditional branch`
			}
		}
	}
}

func badSwitch(r *mpsim.Rank) {
	switch r.ID() {
	case 0:
		r.Barrier() // want `collective: collective Barrier inside a rank-conditional branch`
	}
}

func badCollectiveIO(r *mpsim.Rank, data []byte) error {
	if r.ID() == 0 {
		return r.CollectiveWrite("out", 0, data) // want `collective: collective CollectiveWrite inside a rank-conditional branch`
	}
	return nil
}

func goodHoisted(r *mpsim.Rank, data []byte) error {
	// The writeOutput pattern: root-only computation in the branch,
	// the collective itself outside — every rank enters it.
	var payload []byte
	if r.ID() == 0 {
		payload = data
	}
	return r.CollectiveWrite("out", 0, payload)
}

func goodUnconditional(r *mpsim.Rank) {
	r.Barrier()
	_ = r.AllreduceMaxTime()
}

func goodSizeBranch(r *mpsim.Rank, n int) {
	// Branching on cluster size is uniform across ranks: legal.
	if r.Size() > n {
		r.Barrier()
	}
}

// The rank test hidden behind a helper: the condition is rank-tainted
// through the helper's summary, not any lexical ID call.
func isRoot(r *mpsim.Rank) bool {
	return r.ID() == 0
}

func badHelperWrapped(r *mpsim.Rank) {
	if isRoot(r) {
		r.Barrier() // want `collective: collective Barrier inside a rank-conditional branch`
	}
}

// Two frames deep: the flag is computed by one helper and laundered
// through a second before reaching the branch.
func lowHalf(r *mpsim.Rank) bool { return r.ID() < r.Size()/2 }

func launder(flag bool) bool { return flag }

func badTwoFrames(r *mpsim.Rank) {
	if launder(lowHalf(r)) {
		r.Barrier() // want `collective: collective Barrier inside a rank-conditional branch`
	}
}

// The same laundering helper fed a uniform flag stays legal: the
// callee's taint is parameter-conditional, not unconditional.
func goodLaundered(r *mpsim.Rank, every bool) {
	if launder(every) {
		r.Barrier()
	}
}
