// Fixture for the droppederr analyzer: discarded errors/ok results
// from the fault-tolerant mpsim primitives.
package droppederr

import (
	"parms/internal/mpsim"
	"parms/internal/vtime"
)

func badExprStmt(r *mpsim.Rank, data []byte) {
	r.TrySend(1, 7, data)            // want `droppederr: result discarded: TrySend`
	r.IndependentWrite("f", 0, data) // want `droppederr: result discarded: IndependentWrite`
}

func badBlank(r *mpsim.Rank, data []byte) {
	_ = r.TrySend(1, 7, data)                    // want `droppederr: trailing result assigned to _: TrySend`
	payload, src, _ := r.TryRecv(0, 7)           // want `droppederr: trailing result assigned to _: TryRecv`
	_, _, _ = r.RecvTimeout(0, 7, vtime.Time(1)) // want `droppederr: trailing result assigned to _: RecvTimeout`
	_, _ = r.IndependentRead("f", 0, 8)          // want `droppederr: trailing result assigned to _: IndependentRead`
	_, _ = payload, src
}

func badDefer(r *mpsim.Rank, data []byte) {
	defer r.TrySend(1, 7, data) // want `droppederr: result discarded by defer: TrySend`
}

func goodHandled(r *mpsim.Rank, data []byte) error {
	if err := r.TrySend(1, 7, data); err != nil {
		return err
	}
	payload, _, ok := r.RecvTimeout(0, 7, vtime.Time(1)) // middle result may be blank: the ok is what counts
	if !ok {
		return nil
	}
	_ = payload
	return r.IndependentWrite("f", 0, data)
}

func goodSendPanics(r *mpsim.Rank, data []byte) {
	// Send panics on misuse instead of returning an error: nothing to
	// discard, legal as a statement.
	r.Send(1, 7, data)
}
