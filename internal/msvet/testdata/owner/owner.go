// Fixture for the owner analyzer: direct block-cyclic ownership math
// outside internal/grid. Imports the real grid package so resolution is
// exercised against the true function objects. The harness type-checks
// this under a non-grid path.
package owner

import "parms/internal/grid"

func badRankOf(block, procs int) int {
	return grid.RankOfBlock(block, procs) // want `owner: grid\.RankOfBlock hard-codes the initial block-cyclic layout`
}

func badAssign(nblocks, procs, rank int) []int {
	return grid.AssignBlocks(nblocks, procs, rank) // want `owner: grid\.AssignBlocks hard-codes the initial block-cyclic layout`
}

func goodTable(nblocks, procs, block, rank int) ([]int, int) {
	// The ownership table is the sanctioned resolver: it starts
	// block-cyclic and follows migrations.
	tab := grid.NewOwnerTable(nblocks, procs)
	return tab.Blocks(rank), tab.Owner(block)
}

func goodOtherGridCalls(nblocks, procs int) int {
	// Unrelated grid helpers stay legal.
	tab := grid.NewOwnerTableAvoiding(nblocks, procs, nil)
	return tab.Version()
}
