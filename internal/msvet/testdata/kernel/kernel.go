// Fixture for the kernel analyzer: per-element allocation and closure
// creation inside hot loops of *Kernel-named functions, next to the
// sanctioned per-chunk-scratch idiom. The harness type-checks this
// under a kernel-package path.
package kernelfix

// sink defeats trivial dead-code elimination in the fixture.
var sink interface{}

func badMakeKernel(dst []int32, n int) {
	for i := 0; i < n; i++ {
		tmp := make([]int32, 4) // want `kernel: make inside a hot loop of badMakeKernel allocates per element`
		dst[i] = tmp[0]
	}
}

func badAppendKernel(dst [][]int32, n int) {
	for i := 0; i < n; i++ {
		dst[i] = append(dst[i], int32(i)) // want `kernel: append inside a hot loop of badAppendKernel allocates per element`
	}
}

func badNewKernel(n int) {
	for i := 0; i < n; i++ {
		sink = new(int64) // want `kernel: new inside a hot loop of badNewKernel allocates per element`
	}
}

func badClosureKernel(dst []int32, n int) {
	for i := 0; i < n; i++ {
		f := func() int32 { return int32(i) } // want `kernel: func literal inside a hot loop of badClosureKernel forces captured variables to the heap`
		dst[i] = f()
	}
}

type point struct{ x, y int32 }

func badCompositeKernel(dst []interface{}, vals []int32) {
	for i, v := range vals {
		dst[i] = point{x: v, y: v} // want `kernel: composite literal inside a hot loop of badCompositeKernel allocates per element`
	}
}

// badChunkBodyKernel mirrors the real shape: the chunk closure handed
// to a pool is legal, but a per-element allocation inside its loop is
// the exact bug class this analyzer exists for.
func badChunkBodyKernel(dst []int32, run func(func(lo, hi int))) {
	run(func(lo, hi int) {
		for i := lo; i < hi; i++ {
			buf := make([]int32, 1) // want `kernel: make inside a hot loop of badChunkBodyKernel allocates per element`
			dst[i] = buf[0]
		}
	})
}

// goodHoistedKernel is the sanctioned idiom: scratch sized once per
// chunk, above the loop, reused by every iteration.
func goodHoistedKernel(dst []int32, run func(func(lo, hi int))) {
	run(func(lo, hi int) {
		var buf [8]int32
		tmp := make([]int32, 16)
		for i := lo; i < hi; i++ {
			buf[0] = int32(i)
			tmp[0] = buf[0]
			dst[i] = tmp[0]
		}
	})
}

// goodOrdinaryLoop is outside the naming contract: ordinary functions
// may allocate in loops freely.
func goodOrdinaryLoop(n int) [][]int32 {
	var out [][]int32
	for i := 0; i < n; i++ {
		out = append(out, make([]int32, i))
	}
	return out
}
