package msvet

// taint.go is the interprocedural rank-taint engine (DESIGN §16). It
// replaces the collective analyzer's one-step `root := r.ID() == 0`
// special case with a dataflow over the whole call graph: any value
// derived — through assignments, struct fields, return values, or
// implicit control flow — from the rank identity (Rank.ID, the mpsim
// rank id field, or root-asymmetric collective results) is tainted, and
// the branches it guards are rank-conditional.
//
// OwnerTable lookups taint exactly when queried with rank-derived keys:
// the grid package's own facts record that Blocks(rank)'s result flows
// from its rank parameter (through the implicit flow of the ownership
// filter), so `owners.Blocks(r.ID())` taints while the rank-uniform
// `for rank := range procs { owners.Blocks(rank) }` maximum does not —
// both are real idioms in the pipeline.
//
// Results of the symmetric collectives (Allreduce*, Allgather*, Bcast,
// Alltoall) are taint *sinks*: every rank computes the identical value,
// so they launder rank-dependence away — which is precisely how the
// repo turns per-rank block counts into the uniform collective-write
// round count. Rooted collectives (Gather, Reduce*) stay tainted: only
// the root sees the data.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// uniformCollectives yield the same result on every rank, so their
// results are untainted no matter the arguments.
var uniformCollectives = map[string]bool{
	"AllreduceFloat64": true, "AllreduceMaxTime": true,
	"AllgatherInt64": true, "Bcast": true, "Alltoall": true,
	"Barrier": true, "Scatter": true,
}

// rootedCollectives deliver data only at the root; their results are
// rank-asymmetric by construction.
var rootedCollectives = map[string]bool{
	"Gather": true, "ReduceFloat64": true, "ReduceInt64": true,
}

// maxTaintRounds bounds the per-package fixpoint; masks only grow, and
// the lattice is finite, so this is a safety net, not a tuning knob.
const maxTaintRounds = 16

// funcInfo is one function (or method) declaration of the package.
type funcInfo struct {
	key  string
	decl *ast.FuncDecl
	fn   *types.Func
	sig  *types.Signature
}

// pkgAnalysis carries the taint and summary computation of one package:
// the mutable fixpoint state (locals, slots), the facts being exported,
// and the diagnostics the spmd analyzer will replay through its Pass.
type pkgAnalysis struct {
	p     *Package
	store *FactStore
	facts *PackageFacts
	graph *callGraph

	funcs     []funcInfo
	funcIndex map[string]funcInfo
	// locals maps every local object of the package (all functions;
	// objects are unique) to its taint mask.
	locals map[types.Object]TaintMask
	// slots maps parameter and receiver objects to their slot index.
	slots   map[types.Object]int
	changed bool

	// building guards summary recursion; diags collects the spmd
	// findings discovered while summaries are built; reported dedupes
	// them by position (a loop-body divergence is judged both inside
	// the loop fold and at function end).
	building map[string]bool
	diags    map[string][]Diagnostic
	reported map[token.Pos]bool
}

// analyzePackage computes the facts of one loaded package: the taint
// fixpoint first, then the collective-sequence summaries (spmd.go),
// which consume the final taint environment.
func analyzePackage(p *Package, store *FactStore) (*pkgAnalysis, error) {
	a := &pkgAnalysis{
		p:         p,
		store:     store,
		facts:     newPackageFacts(p.Pkg.Path()),
		funcIndex: map[string]funcInfo{},
		locals:    map[types.Object]TaintMask{},
		slots:     map[types.Object]int{},
		building:  map[string]bool{},
		diags:     map[string][]Diagnostic{},
	}
	a.collectFuncs()
	a.graph = buildCallGraph(a)
	for round := 0; round < maxTaintRounds; round++ {
		a.changed = false
		for _, fi := range a.funcs {
			a.taintFunc(fi)
		}
		if !a.changed {
			break
		}
	}
	a.buildSummaries()
	a.collectTags()
	return a, nil
}

// collectFuncs indexes every function declaration with a body and
// assigns parameter slots (receiver first).
func (a *pkgAnalysis) collectFuncs() {
	for _, f := range a.p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := a.p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			_, key := funcKeyOf(fn)
			if key == "" {
				continue
			}
			sig := fn.Type().(*types.Signature)
			fi := funcInfo{key: key, decl: fd, fn: fn, sig: sig}
			a.funcs = append(a.funcs, fi)
			a.funcIndex[key] = fi
			slot := 0
			if fd.Recv != nil {
				for _, field := range fd.Recv.List {
					for _, name := range field.Names {
						if obj := a.p.Info.Defs[name]; obj != nil {
							a.slots[obj] = slot
						}
					}
				}
				slot++
			}
			if fd.Type.Params != nil {
				for _, field := range fd.Type.Params.List {
					if len(field.Names) == 0 {
						slot++
						continue
					}
					for _, name := range field.Names {
						if obj := a.p.Info.Defs[name]; obj != nil {
							a.slots[obj] = slot
						}
						slot++
					}
				}
			}
		}
	}
}

func (a *pkgAnalysis) setLocal(obj types.Object, mask TaintMask) {
	if obj == nil || mask == 0 {
		return
	}
	if a.locals[obj]|mask != a.locals[obj] {
		a.locals[obj] |= mask
		a.changed = true
	}
}

func (a *pkgAnalysis) setField(key string) {
	if key == "" {
		return
	}
	if !a.facts.Fields[key] {
		a.facts.Fields[key] = true
		a.changed = true
	}
}

func (a *pkgAnalysis) setResult(fi funcInfo, i int, mask TaintMask) {
	masks := a.facts.Taint[fi.key]
	if masks == nil {
		masks = make([]TaintMask, fi.sig.Results().Len())
		a.facts.Taint[fi.key] = masks
	}
	if i < 0 || i >= len(masks) || mask == 0 {
		return
	}
	if masks[i]|mask != masks[i] {
		masks[i] |= mask
		a.changed = true
	}
}

// taintFunc runs one fixpoint round over a function body, propagating
// masks through assignments, implicit control flow, and returns.
func (a *pkgAnalysis) taintFunc(fi funcInfo) {
	// Seed the result-mask slice so callers see a fact (possibly all
	// zero) rather than "unknown" once the fixpoint converges.
	if _, ok := a.facts.Taint[fi.key]; !ok {
		a.facts.Taint[fi.key] = make([]TaintMask, fi.sig.Results().Len())
	}
	a.taintStmt(fi.decl.Body, fi, 0)
}

// namedResults returns the objects of named result parameters, in
// order, or nil when results are unnamed.
func namedResults(a *pkgAnalysis, fi funcInfo) []types.Object {
	if fi.decl.Type.Results == nil {
		return nil
	}
	var objs []types.Object
	for _, field := range fi.decl.Type.Results.List {
		if len(field.Names) == 0 {
			objs = append(objs, nil)
			continue
		}
		for _, name := range field.Names {
			objs = append(objs, a.p.Info.Defs[name])
		}
	}
	return objs
}

// taintStmt walks a statement under a control-taint mask: assignments
// and returns inside a branch join the mask of every condition guarding
// them, so `if r.ID() == 0 { lead = true }` taints lead even though the
// assigned value is a constant.
func (a *pkgAnalysis) taintStmt(s ast.Stmt, fi funcInfo, ctrl TaintMask) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		for _, st := range s.List {
			a.taintStmt(st, fi, ctrl)
		}
	case *ast.IfStmt:
		a.taintStmt(s.Init, fi, ctrl)
		c := ctrl | a.exprMask(s.Cond)
		a.taintStmt(s.Body, fi, c)
		a.taintStmt(s.Else, fi, c)
	case *ast.ForStmt:
		a.taintStmt(s.Init, fi, ctrl)
		c := ctrl
		if s.Cond != nil {
			c |= a.exprMask(s.Cond)
		}
		a.taintStmt(s.Post, fi, c)
		a.taintStmt(s.Body, fi, c)
	case *ast.RangeStmt:
		c := ctrl | a.exprMask(s.X)
		if s.Tok == token.DEFINE || s.Tok == token.ASSIGN {
			a.assignTo(s.Key, c, fi)
			a.assignTo(s.Value, c, fi)
		}
		a.taintStmt(s.Body, fi, c)
	case *ast.SwitchStmt:
		a.taintStmt(s.Init, fi, ctrl)
		c := ctrl
		if s.Tag != nil {
			c |= a.exprMask(s.Tag)
		}
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CaseClause)
			cl := c
			for _, e := range clause.List {
				cl |= a.exprMask(e)
			}
			for _, st := range clause.Body {
				a.taintStmt(st, fi, cl)
			}
		}
	case *ast.TypeSwitchStmt:
		a.taintStmt(s.Init, fi, ctrl)
		c := ctrl
		if asg, ok := s.Assign.(*ast.AssignStmt); ok && len(asg.Rhs) == 1 {
			c |= a.exprMask(asg.Rhs[0])
			for _, lhs := range asg.Lhs {
				a.assignTo(lhs, c, fi)
			}
		} else if es, ok := s.Assign.(*ast.ExprStmt); ok {
			c |= a.exprMask(es.X)
		}
		for _, cc := range s.Body.List {
			for _, st := range cc.(*ast.CaseClause).Body {
				a.taintStmt(st, fi, c)
			}
		}
	case *ast.SelectStmt:
		for _, cc := range s.Body.List {
			clause := cc.(*ast.CommClause)
			a.taintStmt(clause.Comm, fi, ctrl)
			for _, st := range clause.Body {
				a.taintStmt(st, fi, ctrl)
			}
		}
	case *ast.AssignStmt:
		a.taintAssign(s, fi, ctrl)
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					mask := ctrl
					if i < len(vs.Values) {
						mask |= a.exprMask(vs.Values[i])
					} else if len(vs.Values) == 1 {
						mask |= a.exprMask(vs.Values[0])
					}
					a.setLocal(a.p.Info.Defs[name], mask)
				}
			}
		}
	case *ast.ReturnStmt:
		if len(s.Results) == 0 {
			// Naked return: named results carry their current masks,
			// plus the control taint of reaching this return.
			for i, obj := range namedResults(a, fi) {
				mask := ctrl
				if obj != nil {
					mask |= a.locals[obj]
				}
				a.setResult(fi, i, mask)
			}
			return
		}
		if len(s.Results) == 1 && fi.sig.Results().Len() > 1 {
			// return f() forwarding a multi-value call.
			mask := ctrl | a.exprMask(s.Results[0])
			for i := 0; i < fi.sig.Results().Len(); i++ {
				a.setResult(fi, i, mask)
			}
			return
		}
		for i, res := range s.Results {
			a.setResult(fi, i, ctrl|a.exprMask(res))
		}
	case *ast.ExprStmt:
		a.taintFuncLits(s.X, fi, ctrl)
	case *ast.GoStmt:
		a.taintFuncLits(s.Call, fi, ctrl)
	case *ast.DeferStmt:
		a.taintFuncLits(s.Call, fi, ctrl)
	case *ast.LabeledStmt:
		a.taintStmt(s.Stmt, fi, ctrl)
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(s.X).(*ast.Ident); ok {
			a.setLocal(objOf(a.p.Info, id), ctrl)
		}
	case *ast.SendStmt:
		// Channel sends carry no rank-local state we track.
	}
}

// taintFuncLits walks function-literal bodies found inside an
// expression: closures capture enclosing locals through the shared
// object map, so their assignments participate in the same fixpoint.
func (a *pkgAnalysis) taintFuncLits(e ast.Expr, fi funcInfo, ctrl TaintMask) {
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			a.taintStmt(lit.Body, fi, ctrl)
			return false
		}
		return true
	})
}

func (a *pkgAnalysis) taintAssign(s *ast.AssignStmt, fi funcInfo, ctrl TaintMask) {
	for _, rhs := range s.Rhs {
		a.taintFuncLits(rhs, fi, ctrl)
	}
	if len(s.Lhs) == len(s.Rhs) {
		for i := range s.Lhs {
			a.assignTo(s.Lhs[i], ctrl|a.exprMask(s.Rhs[i]), fi)
		}
		return
	}
	// Multi-value form: x, y := f() — every lhs joins the call's mask.
	var mask TaintMask = ctrl
	for _, rhs := range s.Rhs {
		mask |= a.exprMask(rhs)
	}
	for _, lhs := range s.Lhs {
		a.assignTo(lhs, mask, fi)
	}
}

// assignTo joins mask into the assignment target: locals by object,
// struct fields by global field key, and container elements coarsely
// into the container object itself.
func (a *pkgAnalysis) assignTo(lhs ast.Expr, mask TaintMask, fi funcInfo) {
	if lhs == nil || mask == 0 {
		return
	}
	switch lhs := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		a.setLocal(objOf(a.p.Info, lhs), mask)
	case *ast.SelectorExpr:
		if sel, ok := a.p.Info.Selections[lhs]; ok && sel.Kind() == types.FieldVal {
			if field, ok := sel.Obj().(*types.Var); ok && mask.HasRank() {
				// Field taint is field-based and rank-only: param bits
				// are meaningless outside the assigning function. The
				// root local is deliberately NOT tainted — `opts.Report
				// = x` must not make the unrelated `opts.Migrate` read
				// rank-dependent. Reads of the same field anywhere pick
				// the taint up through the global field key.
				a.setField(fieldKeyOf(sel.Recv(), field))
			}
		}
	case *ast.IndexExpr:
		if root := rootIdent(lhs.X); root != nil {
			a.setLocal(objOf(a.p.Info, root), mask)
		}
	case *ast.StarExpr:
		if root := rootIdent(lhs.X); root != nil {
			a.setLocal(objOf(a.p.Info, root), mask)
		}
	}
}

// rootIdent finds the identifier at the base of a selector/index chain.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// exprMask computes the taint mask of an expression: the join of its
// sources (rank identity), parameter slots, tainted locals and fields,
// and callee result masks resolved against argument masks.
func (a *pkgAnalysis) exprMask(e ast.Expr) TaintMask {
	if e == nil {
		return 0
	}
	switch e := e.(type) {
	case *ast.Ident:
		obj := objOf(a.p.Info, e)
		if obj == nil {
			return 0
		}
		var mask TaintMask
		if slot, ok := a.slots[obj]; ok {
			mask |= ParamTaint(slot)
		}
		mask |= a.locals[obj]
		return mask
	case *ast.SelectorExpr:
		// Package-qualified identifier (pkg.Name)?
		if id, ok := ast.Unparen(e.X).(*ast.Ident); ok {
			if _, isPkg := a.p.Info.Uses[id].(*types.PkgName); isPkg {
				return 0
			}
		}
		mask := a.exprMask(e.X)
		if sel, ok := a.p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			if field, ok := sel.Obj().(*types.Var); ok {
				key := fieldKeyOf(sel.Recv(), field)
				if key != "" && (a.facts.Fields[key] || a.store.FieldTainted(key)) {
					mask |= RankTaint
				}
			}
		}
		// The mpsim rank id field is a source wherever it is readable.
		if e.Sel.Name == "id" {
			if tv, ok := a.p.Info.Types[e.X]; ok && typeIsNamed(tv.Type, mpsimPath, "Rank") {
				mask |= RankTaint
			}
		}
		return mask
	case *ast.CallExpr:
		return a.callMask(e)
	case *ast.BinaryExpr:
		return a.exprMask(e.X) | a.exprMask(e.Y)
	case *ast.UnaryExpr:
		return a.exprMask(e.X)
	case *ast.ParenExpr:
		return a.exprMask(e.X)
	case *ast.StarExpr:
		return a.exprMask(e.X)
	case *ast.IndexExpr:
		return a.exprMask(e.X) | a.exprMask(e.Index)
	case *ast.SliceExpr:
		return a.exprMask(e.X) | a.exprMask(e.Low) | a.exprMask(e.High) | a.exprMask(e.Max)
	case *ast.TypeAssertExpr:
		return a.exprMask(e.X)
	case *ast.CompositeLit:
		var mask TaintMask
		for _, elt := range e.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				mask |= a.exprMask(kv.Value)
			} else {
				mask |= a.exprMask(elt)
			}
		}
		return mask
	case *ast.KeyValueExpr:
		return a.exprMask(e.Value)
	case *ast.FuncLit:
		return 0
	default:
		return 0
	}
}

// callMask resolves the taint of a call's results.
func (a *pkgAnalysis) callMask(call *ast.CallExpr) TaintMask {
	// Conversions are transparent.
	if tv, ok := a.p.Info.Types[call.Fun]; ok && tv.IsType() {
		var mask TaintMask
		for _, arg := range call.Args {
			mask |= a.exprMask(arg)
		}
		return mask
	}
	// mpsim.Rank intrinsics: the identity source, and the collective
	// symmetry classes.
	if name, ok := methodOn(a.p.Info, call, mpsimPath, "Rank"); ok {
		switch {
		case name == "ID":
			return RankTaint
		case uniformCollectives[name]:
			return 0
		case rootedCollectives[name]:
			return RankTaint
		}
	}
	// Static callee with a fact: substitute argument masks into the
	// callee's result masks.
	if fn := staticCallee(a.p.Info, call); fn != nil {
		if masks, ok := a.taintFactFor(fn); ok {
			var out TaintMask
			slotArgs := callSlotArgs(a.p.Info, call)
			for _, m := range masks {
				out |= m & RankTaint
				for _, slot := range m.ParamBits().slots() {
					if slot < len(slotArgs) && slotArgs[slot] != nil {
						out |= a.exprMask(slotArgs[slot])
					}
				}
			}
			return out
		}
	}
	// Unknown callee (stdlib, builtin, func value, dynamic dispatch):
	// conservatively join the arguments and any method receiver —
	// len(tainted), fmt.Sprintf(tainted), sort over tainted data all
	// stay tainted.
	var mask TaintMask
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		mask |= a.exprMask(sel.X)
	}
	for _, arg := range call.Args {
		mask |= a.exprMask(arg)
	}
	return mask
}

// callSlotArgs lays the call's value arguments out by callee slot:
// receiver first for method calls, then positional arguments. Variadic
// overflow keeps its own positions; slots past the mask range are
// simply never consulted. Only a genuine method selection contributes
// a receiver slot — a package-qualified call (pkg.Fn) is a selector
// too, but its sel.X is the package name, not an argument.
func callSlotArgs(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isMethod := info.Selections[sel]; isMethod {
			out = append(out, sel.X)
		}
	}
	out = append(out, call.Args...)
	return out
}

// staticCallee resolves the *types.Func a call statically dispatches
// to: a package-level function, a method with a concrete receiver, or a
// locally referenced function identifier. Interface-method and
// func-value calls return nil.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := objOf(info, fun).(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			// Interface-method calls have no static body to resolve.
			if selInfo, ok := info.Selections[fun]; ok && selInfo.Kind() == types.MethodVal {
				if types.IsInterface(selInfo.Recv()) {
					return nil
				}
			}
			return fn
		}
	}
	return nil
}
