package msvet

// spmd.go is the interprocedural collective-sequence matcher (DESIGN
// §16): the analyzer that catches the mismatched-collective deadlock
// through arbitrarily deep helpers. For every function it computes the
// set of distinct ordered collective sequences reachable through it —
// helper calls inlined via their exported summaries, uniform-count
// loops folded to one digest element, error-return and panic paths
// excluded as cluster aborts — and flags the function when two paths
// NOT distinguished by a rank-uniform condition yield different
// sequences. A branch on a rank-uniform value may legitimately select
// different collectives (every rank takes the same arm); a branch on a
// rank-derived value may not, because different ranks then enter
// different collectives and the cluster deadlocks (Gyulassy et al. 2012
// §4, the MPI collective-matching rule).
//
// Paths selected by a formal parameter are exported unresolved
// (depParam) and settled at each call site against the argument's taint
// mask — that is what carries the verdict across call frames.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"hash/fnv"
	"sort"
	"strings"
)

// SpmdAnalyzer reports rank-divergent collective sequences. The heavy
// lifting happens during fact computation (analyzePackage); Run replays
// the pending diagnostics through the Pass so //msvet:allow filtering
// and fixture matching work like any other analyzer.
var SpmdAnalyzer = &Analyzer{
	Name: "spmd",
	Doc: "matches the ordered mpsim collective sequence across all control-flow paths " +
		"(helpers inlined through package facts) and flags rank-dependent divergence, " +
		"the deep mismatched-collective deadlock",
	Run: runSpmd,
}

func runSpmd(pass *Pass) error {
	if pass.state == nil {
		return fmt.Errorf("spmd: package facts were not computed")
	}
	for _, d := range pass.state.diags["spmd"] {
		pass.Report(d)
	}
	return nil
}

// Enumeration caps: beyond these a summary collapses to Opaque (the
// lattice top) — callers then treat the whole call as one opaque
// element, trading findings for zero false positives.
const (
	maxVariants = 24
	maxSeqLen   = 40
)

type termKind uint8

const (
	termNone     termKind = iota // path still running
	termReturn                   // normal return
	termBreak                    // exits the innermost loop
	termContinue                 // next iteration
	termAbort                    // error return or panic: cluster abort, not divergence
)

// pvar is the builder-internal variant: an exported Variant plus the
// termination kind and the position of the rank-dependent branch that
// selected it (where a mismatch is reported).
type pvar struct {
	seq    []string
	dep    uint8
	params TaintMask
	selPos token.Pos
	term   termKind
}

func (v pvar) key() string {
	return strings.Join(v.seq, "\x1f") + "\x00" + fmt.Sprint(v.term)
}

// summaryBuilder walks one function body accumulating path variants.
type summaryBuilder struct {
	a      *pkgAnalysis
	sig    *types.Signature
	opaque bool
}

// buildSummaries computes and exports the summary of every declared
// function, then checks each function literal as an independent
// uniform entry point (mpsim.Run callbacks are closures; a collective
// divergence inside one is just as fatal).
func (a *pkgAnalysis) buildSummaries() {
	for _, fi := range a.funcs {
		a.buildSummary(fi)
	}
	for _, f := range a.p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.FuncLit)
			if !ok {
				return true
			}
			sig, _ := a.p.Info.Types[lit].Type.(*types.Signature)
			b := &summaryBuilder{a: a, sig: sig}
			out := b.stmts(lit.Body.List, []pvar{{}})
			if !b.opaque {
				b.checkVariants(out)
			}
			return true
		})
	}
}

// buildSummary computes one function's summary on demand (summaryFor
// recurses into it for local callees) and records it in the facts.
func (a *pkgAnalysis) buildSummary(fi funcInfo) {
	if _, done := a.facts.Summaries[fi.key]; done || a.building[fi.key] {
		return
	}
	a.building[fi.key] = true
	defer delete(a.building, fi.key)

	b := &summaryBuilder{a: a, sig: fi.sig}
	out := b.stmts(fi.decl.Body.List, []pvar{{}})
	if !b.opaque {
		b.checkVariants(out)
	}
	a.facts.Summaries[fi.key] = b.export(out, fi)
}

// report appends an spmd diagnostic, once per position.
func (a *pkgAnalysis) report(pos token.Pos, format string, args ...any) {
	if a.reported == nil {
		a.reported = map[token.Pos]bool{}
	}
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.diags["spmd"] = append(a.diags["spmd"], Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// checkVariants is the mismatch judgment: among the non-abort variants,
// two distinct (sequence, termination) outcomes where at least one was
// selected by a rank-derived condition mean ranks diverge.
func (b *summaryBuilder) checkVariants(vs []pvar) {
	groups := map[string]pvar{}
	var rankVs []pvar
	for _, v := range vs {
		if v.term == termAbort {
			continue
		}
		n := v
		if n.term == termNone {
			n.term = termReturn // falling off the end is a return
		}
		if _, ok := groups[n.key()]; !ok {
			groups[n.key()] = n
		}
		if n.dep == depRank {
			rankVs = append(rankVs, n)
		}
	}
	if len(groups) < 2 || len(rankVs) == 0 {
		return
	}
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, rv := range rankVs {
		other := ""
		for _, k := range keys {
			if k != rv.key() {
				other = k
				break
			}
		}
		if other == "" {
			continue
		}
		b.a.report(rv.selPos,
			"rank-dependent control flow yields mismatched collective sequences: %s vs %s; every rank must enter the same collectives in the same order — hoist the collective out of the rank-conditional path or guard it with a rank-uniform condition",
			seqString(rv.seq), seqString(groups[other].seq))
	}
}

// export converts builder variants into the serializable summary.
func (b *summaryBuilder) export(vs []pvar, fi funcInfo) Summary {
	may := b.a.graph.reaches(fi.key)
	if b.opaque {
		return Summary{Opaque: true, May: may}
	}
	var out []Variant
	seen := map[string]int{}
	for _, v := range vs {
		if v.term == termAbort {
			continue
		}
		ev := Variant{Seq: v.seq, Dep: v.dep, Params: v.params}
		if ev.Dep == depRank {
			// Internal rank divergence was already reported (or the
			// sequences were equal); callers must not re-flag it.
			ev.Dep, ev.Params = depNone, 0
		}
		k := strings.Join(ev.Seq, "\x1f")
		if i, ok := seen[k]; ok {
			// Keep the weakest selection class for a duplicate
			// sequence: reachable unconditionally beats param-gated.
			if ev.Dep < out[i].Dep {
				out[i].Dep, out[i].Params = ev.Dep, ev.Params
			}
			continue
		}
		seen[k] = len(out)
		out = append(out, ev)
		if len(v.seq) > 0 {
			may = true
		}
	}
	return Summary{Variants: out, May: may}
}

// --- statement walk ---

func splitVars(vs []pvar) (alive, done []pvar) {
	for _, v := range vs {
		if v.term == termNone {
			alive = append(alive, v)
		} else {
			done = append(done, v)
		}
	}
	return alive, done
}

// stmts threads the alive variants through a statement list; terminated
// variants accumulate and pass through untouched.
func (b *summaryBuilder) stmts(list []ast.Stmt, in []pvar) []pvar {
	cur := in
	var done []pvar
	for _, s := range list {
		alive, d := splitVars(cur)
		done = append(done, d...)
		if len(alive) == 0 {
			cur = nil
			break
		}
		cur = b.stmt(s, alive)
		if b.opaque {
			return nil
		}
	}
	return append(done, cur...)
}

func (b *summaryBuilder) cap(vs []pvar) []pvar {
	if len(vs) > maxVariants {
		b.opaque = true
		return vs[:maxVariants]
	}
	for _, v := range vs {
		if len(v.seq) > maxSeqLen {
			b.opaque = true
			break
		}
	}
	return vs
}

func (b *summaryBuilder) dedupe(vs []pvar) []pvar {
	seen := map[string]int{}
	var out []pvar
	for _, v := range vs {
		if i, ok := seen[v.key()]; ok {
			if v.dep < out[i].dep {
				out[i] = v
			}
			continue
		}
		seen[v.key()] = len(out)
		out = append(out, v)
	}
	return out
}

// cross concatenates every suffix onto every alive prefix.
func (b *summaryBuilder) cross(prefixes, suffixes []pvar) []pvar {
	var out []pvar
	for _, p := range prefixes {
		for _, s := range suffixes {
			v := pvar{
				seq:    append(append([]string{}, p.seq...), s.seq...),
				dep:    maxDep(p.dep, s.dep),
				params: p.params | s.params,
				selPos: p.selPos,
				term:   s.term,
			}
			if s.selPos != token.NoPos {
				v.selPos = s.selPos
			}
			out = append(out, v)
		}
	}
	return b.cap(b.dedupe(out))
}

// condClass classifies a branch condition through the taint engine.
func (b *summaryBuilder) condClass(e ast.Expr) (cls uint8, params TaintMask) {
	if e == nil {
		return depNone, 0
	}
	m := b.a.exprMask(e)
	if m.HasRank() {
		return depRank, 0
	}
	if m.ParamBits() != 0 {
		return depParam, m.ParamBits()
	}
	return depNone, 0
}

// labelArms applies a branch's condition class to its deduped arm
// variants. A single distinct non-abort outcome needs no label — the
// selection cannot matter. Rank-selected arms that all run to the arm's
// end are judged immediately (the mismatch is local); arms with early
// returns defer to the function-end check via the labels.
func (b *summaryBuilder) labelArms(arms []pvar, cls uint8, params TaintMask, pos token.Pos) []pvar {
	arms = b.dedupe(arms)
	distinct := 0
	allAlive := true
	for _, v := range arms {
		if v.term == termAbort {
			continue
		}
		distinct++
		if v.term != termNone {
			allAlive = false
		}
	}
	if distinct <= 1 || cls == depNone {
		return arms
	}
	if cls == depRank && allAlive {
		var a0, a1 pvar
		found := 0
		for _, v := range arms {
			if v.term == termAbort {
				continue
			}
			if found == 0 {
				a0 = v
			} else if found == 1 {
				a1 = v
			}
			found++
		}
		b.a.report(pos,
			"rank-dependent control flow yields mismatched collective sequences: %s vs %s; every rank must enter the same collectives in the same order — hoist the collective out of the rank-conditional path or guard it with a rank-uniform condition",
			seqString(a0.seq), seqString(a1.seq))
		// Collapse to one arm so the divergence is reported once, not
		// re-reported through every downstream comparison.
		return arms[:1]
	}
	for i := range arms {
		if arms[i].term == termAbort {
			continue
		}
		if cls == depRank {
			arms[i].dep = depRank
			arms[i].selPos = pos
		} else if arms[i].dep < depRank {
			arms[i].dep = maxDep(arms[i].dep, depParam)
			arms[i].params |= params
		}
	}
	return arms
}

func (b *summaryBuilder) stmt(s ast.Stmt, cur []pvar) []pvar {
	if s == nil || b.opaque {
		return cur
	}
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)
	case *ast.ExprStmt:
		return b.exprCalls(s.X, cur)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			cur = b.exprCalls(e, cur)
		}
		for _, e := range s.Lhs {
			cur = b.exprCalls(e, cur)
		}
		return cur
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						cur = b.exprCalls(v, cur)
					}
				}
			}
		}
		return cur
	case *ast.IncDecStmt:
		return b.exprCalls(s.X, cur)
	case *ast.SendStmt:
		cur = b.exprCalls(s.Chan, cur)
		return b.exprCalls(s.Value, cur)
	case *ast.GoStmt:
		return b.exprCalls(s.Call, cur)
	case *ast.DeferStmt:
		// Approximation: deferred collectives are emitted at the defer
		// site. The relative order is off by the function tail, but it
		// is off identically on every path, so matching still holds.
		return b.exprCalls(s.Call, cur)
	case *ast.LabeledStmt:
		return b.stmt(s.Stmt, cur)
	case *ast.IfStmt:
		return b.ifStmt(s, cur)
	case *ast.ForStmt:
		return b.forStmt(s, cur)
	case *ast.RangeStmt:
		return b.rangeStmt(s, cur)
	case *ast.SwitchStmt:
		return b.switchStmt(s, cur)
	case *ast.TypeSwitchStmt:
		return b.typeSwitchStmt(s, cur)
	case *ast.SelectStmt:
		return b.selectStmt(s, cur)
	case *ast.ReturnStmt:
		return b.returnStmt(s, cur)
	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			return terminate(cur, termBreak)
		case token.CONTINUE:
			return terminate(cur, termContinue)
		case token.GOTO:
			// goto breaks the structured walk; give up on the function
			// rather than risk a wrong comparison.
			b.opaque = true
		}
		return cur
	default:
		return cur
	}
}

func terminate(vs []pvar, t termKind) []pvar {
	out := make([]pvar, len(vs))
	for i, v := range vs {
		v.term = t
		out[i] = v
	}
	return out
}

func (b *summaryBuilder) returnStmt(s *ast.ReturnStmt, cur []pvar) []pvar {
	for _, e := range s.Results {
		cur = b.exprCalls(e, cur)
	}
	t := termReturn
	if b.returnsError(s) {
		t = termAbort
	}
	return terminate(cur, t)
}

// returnsError reports whether the return statement carries a non-nil
// error in the function's final error result — in this codebase that is
// a cluster abort (mpsim joins rank errors and tears the run down), not
// a divergent path, so such paths are excluded from sequence matching.
func (b *summaryBuilder) returnsError(s *ast.ReturnStmt) bool {
	if b.sig == nil || b.sig.Results().Len() == 0 {
		return false
	}
	last := b.sig.Results().At(b.sig.Results().Len() - 1)
	named, ok := last.Type().(*types.Named)
	if !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return false
	}
	if len(s.Results) != b.sig.Results().Len() {
		return false // naked return: assume normal
	}
	le := ast.Unparen(s.Results[len(s.Results)-1])
	if id, ok := le.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	return true
}

func (b *summaryBuilder) ifStmt(s *ast.IfStmt, cur []pvar) []pvar {
	cur = b.stmt(s.Init, cur)
	cur = b.exprCalls(s.Cond, cur)
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	cls, params := b.condClass(s.Cond)
	thenV := b.stmts(s.Body.List, []pvar{{}})
	elseV := []pvar{{}}
	if s.Else != nil {
		elseV = b.stmt(s.Else, []pvar{{}})
	}
	if b.opaque {
		return nil
	}
	arms := b.labelArms(append(thenV, elseV...), cls, params, s.Pos())
	return append(done, b.cross(alive, arms)...)
}

func (b *summaryBuilder) switchStmt(s *ast.SwitchStmt, cur []pvar) []pvar {
	cur = b.stmt(s.Init, cur)
	if s.Tag != nil {
		cur = b.exprCalls(s.Tag, cur)
	}
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	var m TaintMask
	if s.Tag != nil {
		m = b.a.exprMask(s.Tag)
	}
	var arms []pvar
	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		for _, e := range clause.List {
			m |= b.a.exprMask(e)
		}
		arms = append(arms, b.stmts(clause.Body, []pvar{{}})...)
	}
	if !hasDefault {
		arms = append(arms, pvar{})
	}
	if b.opaque {
		return nil
	}
	cls, params := maskClass(m)
	arms = b.labelArms(arms, cls, params, s.Pos())
	return append(done, b.cross(alive, arms)...)
}

func (b *summaryBuilder) typeSwitchStmt(s *ast.TypeSwitchStmt, cur []pvar) []pvar {
	cur = b.stmt(s.Init, cur)
	var m TaintMask
	switch asg := s.Assign.(type) {
	case *ast.AssignStmt:
		if len(asg.Rhs) == 1 {
			m = b.a.exprMask(asg.Rhs[0])
		}
	case *ast.ExprStmt:
		m = b.a.exprMask(asg.X)
	}
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	var arms []pvar
	hasDefault := false
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CaseClause)
		if clause.List == nil {
			hasDefault = true
		}
		arms = append(arms, b.stmts(clause.Body, []pvar{{}})...)
	}
	if !hasDefault {
		arms = append(arms, pvar{})
	}
	if b.opaque {
		return nil
	}
	cls, params := maskClass(m)
	arms = b.labelArms(arms, cls, params, s.Pos())
	return append(done, b.cross(alive, arms)...)
}

// selectStmt treats comm-clause selection as rank-uniform: select in
// this codebase appears only in host-side plumbing, never between
// collectives, and labeling scheduler nondeterminism as rank-dependence
// would drown real findings. The droppederr and collective analyzers
// still see inside the arms.
func (b *summaryBuilder) selectStmt(s *ast.SelectStmt, cur []pvar) []pvar {
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	var arms []pvar
	for _, cc := range s.Body.List {
		clause := cc.(*ast.CommClause)
		start := []pvar{{}}
		if clause.Comm != nil {
			start = b.stmt(clause.Comm, start)
		}
		arms = append(arms, b.stmts(clause.Body, start)...)
	}
	if len(arms) == 0 {
		arms = []pvar{{}}
	}
	if b.opaque {
		return nil
	}
	arms = b.dedupe(arms)
	return append(done, b.cross(alive, arms)...)
}

func maskClass(m TaintMask) (uint8, TaintMask) {
	if m.HasRank() {
		return depRank, 0
	}
	if m.ParamBits() != 0 {
		return depParam, m.ParamBits()
	}
	return depNone, 0
}

// loopSuffixes folds a loop body's variants into the suffix set the
// loop contributes: one digest element per uniform-count loop carrying
// collectives, zero-or-one alternatives for param-dependent counts, and
// the body's function-exiting variants (return/abort from inside the
// loop) passed through for the function-end comparison.
func (b *summaryBuilder) loopSuffixes(bodyV []pvar, cls uint8, params TaintMask, pos token.Pos) []pvar {
	// Judge intra-body divergence now: the collapse below erases it.
	b.checkVariants(bodyV)

	may := false
	var exits []pvar
	for _, v := range bodyV {
		if len(v.seq) > 0 {
			may = true
		}
		if v.term == termReturn || v.term == termAbort {
			exits = append(exits, v)
		}
	}
	if !may {
		return append([]pvar{{}}, exits...)
	}
	switch cls {
	case depRank:
		b.a.report(pos,
			"collectives inside a loop whose iteration count is rank-dependent: ranks execute different numbers of collective rounds and the cluster deadlocks; derive the bound collectively (e.g. an allreduced maximum) as the collective-write rounds do")
		return append([]pvar{{seq: []string{b.loopElem(bodyV)}}}, exits...)
	case depParam:
		return append([]pvar{
			{dep: depParam, params: params},
			{seq: []string{b.loopElem(bodyV)}, dep: depParam, params: params},
		}, exits...)
	default:
		return append([]pvar{{seq: []string{b.loopElem(bodyV)}}}, exits...)
	}
}

// loopElem digests a loop body's sequence set into one stable element.
func (b *summaryBuilder) loopElem(bodyV []pvar) string {
	var keys []string
	seen := map[string]bool{}
	for _, v := range bodyV {
		if v.term == termAbort {
			continue
		}
		k := strings.Join(v.seq, " ")
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	body := strings.Join(keys, " | ")
	if len(body) > 80 {
		h := fnv.New32a()
		h.Write([]byte(body))
		body = fmt.Sprintf("#%08x", h.Sum32())
	}
	return "loop{" + body + "}"
}

func (b *summaryBuilder) forStmt(s *ast.ForStmt, cur []pvar) []pvar {
	cur = b.stmt(s.Init, cur)
	if s.Cond != nil {
		cur = b.exprCalls(s.Cond, cur)
	}
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	var m TaintMask
	if s.Cond != nil {
		m = b.a.exprMask(s.Cond)
	}
	body := s.Body.List
	if s.Post != nil {
		body = append(append([]ast.Stmt{}, body...), s.Post)
	}
	bodyV := b.stmts(body, []pvar{{}})
	if b.opaque {
		return nil
	}
	cls, params := maskClass(m)
	suffixes := b.loopSuffixes(normalizeLoopExits(bodyV), cls, params, s.Pos())
	return append(done, b.cross(alive, b.dedupe(suffixes))...)
}

func (b *summaryBuilder) rangeStmt(s *ast.RangeStmt, cur []pvar) []pvar {
	cur = b.exprCalls(s.X, cur)
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	m := b.a.exprMask(s.X)
	bodyV := b.stmts(s.Body.List, []pvar{{}})
	if b.opaque {
		return nil
	}
	cls, params := maskClass(m)
	suffixes := b.loopSuffixes(normalizeLoopExits(bodyV), cls, params, s.Pos())
	return append(done, b.cross(alive, b.dedupe(suffixes))...)
}

// normalizeLoopExits rewrites break/continue terminations into ordinary
// iteration endings: they end one pass through the body, which is all a
// body variant describes. Return/abort pass through untouched — they
// exit the whole function.
func normalizeLoopExits(vs []pvar) []pvar {
	out := make([]pvar, len(vs))
	for i, v := range vs {
		if v.term == termBreak || v.term == termContinue {
			v.term = termNone
		}
		out[i] = v
	}
	return out
}

// --- call extraction ---

// evalCalls visits every call expression under n in evaluation order
// (operands before the call), skipping function-literal bodies.
func evalCalls(n ast.Node, visit func(*ast.CallExpr)) {
	if n == nil {
		return
	}
	switch e := n.(type) {
	case *ast.FuncLit:
		return
	case *ast.CallExpr:
		evalCalls(e.Fun, visit)
		for _, arg := range e.Args {
			evalCalls(arg, visit)
		}
		visit(e)
	default:
		children(n, func(c ast.Node) { evalCalls(c, visit) })
	}
}

// exprCalls threads cur through every call inside the expression.
func (b *summaryBuilder) exprCalls(e ast.Expr, cur []pvar) []pvar {
	if e == nil || b.opaque {
		return cur
	}
	evalCalls(e, func(call *ast.CallExpr) {
		if !b.opaque {
			cur = b.applyCall(call, cur)
		}
	})
	return cur
}

// applyCall appends a call's collective contribution to the alive
// variants: intrinsic collectives as one element, module callees by
// inlining their summary (param-selected callee variants resolved
// against argument taint), opaque callees as one opaque element.
func (b *summaryBuilder) applyCall(call *ast.CallExpr, cur []pvar) []pvar {
	alive, done := splitVars(cur)
	if len(alive) == 0 {
		return done
	}
	// panic(): a cluster abort, like an error return.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
		if _, isBuiltin := objOf(b.a.p.Info, id).(*types.Builtin); isBuiltin {
			return append(done, terminate(alive, termAbort)...)
		}
	}
	if name, ok := methodOn(b.a.p.Info, call, mpsimPath, "Rank"); ok && collectiveMethods[name] {
		return append(done, b.cross(alive, []pvar{{seq: []string{name}}})...)
	}
	fn := staticCallee(b.a.p.Info, call)
	if fn == nil {
		return append(done, alive...)
	}
	sum, ok := b.a.summaryFor(fn)
	if !ok {
		return append(done, alive...)
	}
	pkgPath, key := funcKeyOf(fn)
	if sum.Opaque {
		if sum.May {
			return append(done, b.cross(alive, []pvar{{seq: []string{"call:" + pkgPath + "." + key}}})...)
		}
		return append(done, alive...)
	}
	if len(sum.Variants) == 0 {
		// Every path through the callee aborts the cluster.
		return append(done, terminate(alive, termAbort)...)
	}
	if !sum.May {
		return append(done, alive...)
	}
	suffixes := b.resolveCall(call, sum)
	return append(done, b.cross(alive, suffixes)...)
}

// resolveCall maps a callee's exported variants into caller-side
// suffixes, settling param-selected variants against the actual
// arguments' taint. A rank-tainted argument selecting between distinct
// callee sequences is the cross-frame mismatch; it is judged right here
// at the call site.
func (b *summaryBuilder) resolveCall(call *ast.CallExpr, sum Summary) []pvar {
	slotArgs := callSlotArgs(b.a.p.Info, call)
	suffixes := make([]pvar, 0, len(sum.Variants))
	rankSelected := false
	for _, v := range sum.Variants {
		sfx := pvar{seq: v.Seq}
		if v.Dep == depParam {
			var m TaintMask
			for _, slot := range v.Params.slots() {
				if slot < len(slotArgs) && slotArgs[slot] != nil {
					m |= b.a.exprMask(slotArgs[slot])
				}
			}
			if m.HasRank() {
				sfx.dep, sfx.selPos = depRank, call.Pos()
				rankSelected = true
			} else if m.ParamBits() != 0 {
				sfx.dep, sfx.params = depParam, m.ParamBits()
			}
		}
		suffixes = append(suffixes, sfx)
	}
	suffixes = b.dedupe(suffixes)
	if rankSelected && len(suffixes) > 1 {
		name := "helper"
		if fn := staticCallee(b.a.p.Info, call); fn != nil {
			name = fn.Name()
		}
		b.a.report(call.Pos(),
			"call to %s selects between mismatched collective sequences (%s vs %s) on a rank-tainted argument; the divergence crosses the call boundary — pass a rank-uniform value or restructure the helper",
			name, seqString(suffixes[0].seq), seqString(suffixes[1].seq))
		return suffixes[:1]
	}
	return suffixes
}

func maxDep(a, c uint8) uint8 {
	if a > c {
		return a
	}
	return c
}
