package kernel

import (
	"sync/atomic"
	"testing"
)

func TestNilPoolIsSequential(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool Workers() = %d, want 1", got)
	}
	sum := 0
	lastChunk := -1
	p.Run(10, 3, func(worker, chunk, lo, hi int) {
		if worker != 0 {
			t.Fatalf("nil pool ran on worker %d", worker)
		}
		if chunk != lastChunk+1 {
			t.Fatalf("chunks out of order: %d after %d", chunk, lastChunk)
		}
		lastChunk = chunk
		for i := lo; i < hi; i++ {
			sum += i
		}
	})
	if sum != 45 {
		t.Fatalf("sum = %d, want 45", sum)
	}
	if lastChunk != 3 {
		t.Fatalf("saw %d chunks, want 4", lastChunk+1)
	}
}

func TestChunkBoundariesIndependentOfWorkers(t *testing.T) {
	const n, grain = 100_003, 1024
	want := Chunks(n, grain)
	for _, w := range []int{1, 2, 3, 8, 64} {
		p := New(w)
		bounds := make([][2]int, want)
		var seen atomic.Int64
		p.Run(n, grain, func(worker, chunk, lo, hi int) {
			bounds[chunk] = [2]int{lo, hi}
			seen.Add(1)
		})
		if int(seen.Load()) != want {
			t.Fatalf("workers=%d: ran %d chunks, want %d", w, seen.Load(), want)
		}
		for c, b := range bounds {
			lo, hi := c*grain, (c+1)*grain
			if hi > n {
				hi = n
			}
			if b[0] != lo || b[1] != hi {
				t.Fatalf("workers=%d chunk %d = %v, want [%d,%d)", w, c, b, lo, hi)
			}
		}
	}
}

func TestDisjointWritesCoverRange(t *testing.T) {
	const n = 50_000
	for _, w := range []int{1, 4, 16} {
		out := make([]int32, n)
		New(w).Run(n, 777, func(worker, chunk, lo, hi int) {
			for i := lo; i < hi; i++ {
				out[i] = int32(i * 2)
			}
		})
		for i, v := range out {
			if v != int32(i*2) {
				t.Fatalf("workers=%d: out[%d] = %d", w, i, v)
			}
		}
	}
}

func TestPerChunkReductionDeterministic(t *testing.T) {
	const n, grain = 33_333, 500
	reduce := func(w int) int64 {
		partials := make([]int64, Chunks(n, grain))
		New(w).Run(n, grain, func(worker, chunk, lo, hi int) {
			var s int64
			for i := lo; i < hi; i++ {
				s += int64(i % 7)
			}
			partials[chunk] = s
		})
		var total int64
		for _, p := range partials {
			total += p
		}
		return total
	}
	want := reduce(1)
	for _, w := range []int{2, 5, 32} {
		if got := reduce(w); got != want {
			t.Fatalf("workers=%d total %d, want %d", w, got, want)
		}
	}
}

func TestAutoWorkers(t *testing.T) {
	if w := AutoWorkers(1); w < 1 {
		t.Fatalf("AutoWorkers(1) = %d", w)
	}
	if w := AutoWorkers(1 << 20); w != 1 {
		t.Fatalf("AutoWorkers(huge) = %d, want 1", w)
	}
	if w := AutoWorkers(0); w < 1 {
		t.Fatalf("AutoWorkers(0) = %d", w)
	}
}

func TestEmptyAndClampedWidths(t *testing.T) {
	ran := false
	New(-3).Run(0, 10, func(worker, chunk, lo, hi int) { ran = true })
	if ran {
		t.Fatal("Run executed body for n=0")
	}
	if got := New(0).Workers(); got != 1 {
		t.Fatalf("New(0).Workers() = %d, want 1", got)
	}
	if got := Chunks(0, 5); got != 0 {
		t.Fatalf("Chunks(0,5) = %d, want 0", got)
	}
	if got := Chunks(10, 0); got != 1 {
		t.Fatalf("Chunks(10,0) = %d, want 1 (default grain)", got)
	}
}
