// Package kernel provides the intra-rank worker pool used by the
// data-parallel compute kernels (gradient batch passes and the
// path-compression sweeps in the tracer).
//
// The design goal is determinism first, speed second: a parallel-for is
// split into fixed-grain chunks whose boundaries depend only on the
// problem size — never on the worker count — so any per-chunk partial
// results can be reduced in chunk-index order and the outcome is
// byte-identical whether the loop ran on one worker or sixteen. Workers
// write only to disjoint index ranges (or per-worker scratch), so the
// schedule cannot influence the result.
//
// A nil *Pool (or a one-worker pool) runs the same chunked loop inline
// on the calling goroutine, which is the reference sequential path.
package kernel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultGrain is the chunk size used when a kernel passes grain <= 0:
// large enough that chunk dispatch is noise, small enough to balance
// load across workers on realistic block sizes.
const DefaultGrain = 4096

// Pool is a fixed-width worker pool for chunked parallel-for loops.
// The zero value and the nil pool are both valid and mean "sequential".
type Pool struct {
	workers int
}

// New returns a pool of the given width. Widths below 1 clamp to 1
// (sequential); there is no upper clamp so tests can oversubscribe.
func New(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	return &Pool{workers: workers}
}

// AutoWorkers returns the default pool width for one simulated rank when
// ranks of them run concurrently in one process: an even share of the
// machine's cores, never below 1.
func AutoWorkers(ranks int) int {
	if ranks < 1 {
		ranks = 1
	}
	w := runtime.GOMAXPROCS(0) / ranks
	if w < 1 {
		w = 1
	}
	return w
}

// Workers returns the pool width (1 for a nil pool).
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// Chunks returns the number of fixed-grain chunks Run will split n
// elements into. It depends only on n and grain, never on the pool
// width.
func Chunks(n, grain int) int {
	if n <= 0 {
		return 0
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	return (n + grain - 1) / grain
}

// Run executes body over [0,n) split into fixed-grain chunks. body is
// invoked as body(worker, chunk, lo, hi) with 0 <= lo < hi <= n; chunk
// is the chunk index (lo/grain) so callers can accumulate per-chunk
// partials and reduce them in chunk order afterwards. Chunk boundaries
// are identical no matter how many workers execute them; only the
// assignment of chunks to workers varies. body must confine its writes
// to [lo,hi)-indexed slots or to per-worker scratch.
//
// On a nil or single-worker pool every chunk runs on the calling
// goroutine in ascending chunk order.
func (p *Pool) Run(n, grain int, body func(worker, chunk, lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain <= 0 {
		grain = DefaultGrain
	}
	nchunks := (n + grain - 1) / grain
	workers := p.Workers()
	if workers > nchunks {
		workers = nchunks
	}
	if workers == 1 {
		for c := 0; c < nchunks; c++ {
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			body(0, c, lo, hi)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(worker int) {
			defer wg.Done()
			for {
				c := int(next.Add(1)) - 1
				if c >= nchunks {
					return
				}
				lo := c * grain
				hi := lo + grain
				if hi > n {
					hi = n
				}
				body(worker, c, lo, hi)
			}
		}(w)
	}
	wg.Wait()
}
