package mscomplex

import (
	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
)

// TraceOptions bounds the V-path enumeration.
type TraceOptions struct {
	// MaxArcsPerPair caps the number of arc records created between one
	// pair of critical cells when many distinct V-paths connect them
	// (braided flow on plateaus); 0 means the default (2). Two records
	// always survive when more than one path exists, which preserves
	// cancellation validity exactly: arcs only ever disappear together
	// with an endpoint, so a pair's multiplicity never decreases while
	// both endpoints live, and "≥ 2" permanently blocks cancellation
	// regardless of the exact count.
	MaxArcsPerPair int
}

// TraceResult is the traced complex plus diagnostics.
type TraceResult struct {
	Complex *Complex
	// Truncated counts (saddle, saddle) pairs whose arc multiplicity
	// exceeded MaxArcsPerPair and was clamped.
	Truncated int
}

// FromField traces the MS complex 1-skeleton of one block from its
// discrete gradient field. All critical cells become nodes; descending
// V-paths are walked from each node, and an arc is added for every
// distinct V-path terminating at a critical cell, with a traversed cell
// list recorded as the arc's geometric embedding. Paths are guaranteed
// to terminate inside the block because boundary gradient arrows are
// restricted.
//
// Distinct V-paths between the same pair of critical cells are counted
// exactly (saturating) with a linear-time dynamic program over the
// descending reachability DAG, instead of enumerating every path — path
// enumeration is exponential in braided plateau regions. One
// representative geometry (the first-discovery path) is shared by the
// arc records of a multi-path pair.
//
// dec supplies block ownership for node boundary classification; nil
// means the single-block (serial) case.
func FromField(f *gradient.Field, dec *grid.Decomposition, opts TraceOptions) *TraceResult {
	c := f.C
	maxArcs := opts.MaxArcsPerPair
	if maxArcs <= 0 {
		maxArcs = 2
	}
	ms := New([]int32{int32(c.Block.ID)})
	res := &TraceResult{Complex: ms}

	criticals := f.CriticalCells()
	for _, ci := range criticals {
		idx := int(ci)
		var kb [8]cube.VertKey
		keys := c.VertKeys(idx, kb[:])
		owners := []int32{int32(c.Block.ID)}
		if dec != nil {
			gx, gy, gz := c.GlobalCoords(idx)
			ob := dec.OwnersOfRefined(c.Block.ID, gx, gy, gz)
			owners = owners[:0]
			for _, o := range ob {
				owners = append(owners, int32(o))
			}
		}
		ms.AddNode(Node{
			Cell:    c.GlobalAddr(idx),
			Index:   uint8(c.Dim(idx)),
			Value:   keys[0].Val,
			MaxVert: keys[0].ID,
			Owners:  owners,
		})
	}

	tr := &tracer{f: f, ms: ms, maxArcs: maxArcs}
	for _, ci := range criticals {
		if c.Dim(int(ci)) == 0 {
			continue
		}
		res.Truncated += tr.traceFrom(int(ci))
	}
	ms.Work.PathSteps += tr.steps
	return res
}

// pathCountCap saturates V-path multiplicity counts.
const pathCountCap = 1 << 20

type tracer struct {
	f       *gradient.Field
	ms      *Complex
	maxArcs int
	steps   int64

	// Per-start scratch, indexed by cell and validated by an epoch
	// counter so it is cleared in O(1) between starts.
	order   []int   // reverse-finish (reverse topological) order
	parent  []int32 // first-discovery predecessor tail (-1 = start)
	count   []int32 // number of V-paths start → tail, saturating
	seen    []int32 // epoch at which the cell was discovered
	visited []int32 // epoch at which the cell was DFS-expanded
	epoch   int32
}

func (t *tracer) reset() {
	n := t.f.C.NumCells()
	if len(t.parent) != n {
		t.parent = make([]int32, n)
		t.count = make([]int32, n)
		t.seen = make([]int32, n)
		t.visited = make([]int32, n)
	}
	t.epoch++
	t.order = t.order[:0]
}

func (t *tracer) discover(cell, parent int) {
	if t.seen[cell] != t.epoch {
		t.seen[cell] = t.epoch
		t.parent[cell] = int32(parent)
		t.count[cell] = 0
	}
}

// successor enumeration: from tail cell a (dimension d-1), the V-path
// continues through a's paired head (dimension d) into the head's other
// facets. Critical cells are terminals; cells paired downward are dead
// ends.
func (t *tracer) successors(a int, emit func(next int)) {
	c := t.f.C
	head, ok := t.f.PairedWith(a)
	if !ok || c.Dim(head) != c.Dim(a)+1 {
		return
	}
	var fb [6]int
	for _, next := range c.Facets(head, fb[:0]) {
		if next != a {
			emit(next)
		}
	}
}

// traceFrom computes, for critical cell start of dimension d, the exact
// (saturating) number of descending V-paths to every reachable critical
// (d-1)-cell, and adds the corresponding arcs. It returns the number of
// pairs whose arc records were clamped.
func (t *tracer) traceFrom(start int) int {
	c := t.f.C
	origin, ok := t.ms.NodeAt(c.GlobalAddr(start))
	if !ok {
		panic("mscomplex: tracing from a cell with no node")
	}

	t.reset()

	// Iterative DFS over tail cells to produce a reverse topological
	// order of the reachability DAG (V-fields are acyclic, so finish
	// order is well defined).
	type frame struct {
		cell     int
		next     [5]int
		nNext    int
		expanded bool
	}
	var stack []frame
	var fb [6]int
	roots := c.Facets(start, fb[:0])
	for _, r := range roots {
		t.discover(r, -1)
	}
	for _, r := range roots {
		if t.visited[r] == t.epoch {
			continue
		}
		stack = append(stack[:0], frame{cell: r})
		t.visited[r] = t.epoch
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if !f.expanded {
				f.expanded = true
				if !t.f.IsCritical(f.cell) {
					t.successors(f.cell, func(n int) {
						f.next[f.nNext] = n
						f.nNext++
					})
				}
			}
			if f.nNext == 0 {
				t.order = append(t.order, f.cell)
				stack = stack[:len(stack)-1]
				continue
			}
			f.nNext--
			n := f.next[f.nNext]
			t.discover(n, f.cell)
			if t.visited[n] != t.epoch {
				t.visited[n] = t.epoch
				stack = append(stack, frame{cell: n})
			}
		}
	}
	t.steps += int64(len(t.order))

	// Forward dynamic program in topological order (reverse of the
	// finish order): path counts from start. Duplicate roots cannot
	// occur (facets are distinct), so each root starts with exactly one
	// path: the direct step from start.
	for _, r := range roots {
		if t.count[r] < pathCountCap {
			t.count[r]++
		}
	}
	for i := len(t.order) - 1; i >= 0; i-- {
		cell := t.order[i]
		cnt := t.count[cell]
		if cnt == 0 || t.f.IsCritical(cell) {
			continue
		}
		t.successors(cell, func(n int) {
			nc := t.count[n] + cnt
			if nc > pathCountCap {
				nc = pathCountCap
			}
			t.count[n] = nc
		})
	}

	// Emit arcs for every reachable critical terminal.
	truncated := 0
	for _, cell := range t.order {
		if !t.f.IsCritical(cell) {
			continue
		}
		cnt := int(t.count[cell])
		if cnt == 0 {
			continue
		}
		lower, ok := t.ms.NodeAt(c.GlobalAddr(cell))
		if !ok {
			panic("mscomplex: critical terminal with no node")
		}
		geom := t.ms.AddLeafGeom(t.reconstruct(start, cell))
		records := cnt
		if records > t.maxArcs {
			records = t.maxArcs
			truncated++
		}
		for k := 0; k < records; k++ {
			t.ms.AddArc(origin, lower, geom)
		}
	}
	return truncated
}

// reconstruct builds the representative geometry for the first-discovery
// path start → terminal: alternating (head, tail) cells ending at the
// terminal, starting at the origin cell.
func (t *tracer) reconstruct(start, terminal int) []grid.Addr {
	c := t.f.C
	// Walk parents from terminal back to a root facet.
	var rev []int
	for cell := terminal; cell != -1; cell = int(t.parent[cell]) {
		rev = append(rev, cell)
	}
	cells := make([]grid.Addr, 0, 2*len(rev)+1)
	cells = append(cells, c.GlobalAddr(start))
	for i := len(rev) - 1; i >= 0; i-- {
		tail := rev[i]
		cells = append(cells, c.GlobalAddr(tail))
		if i > 0 {
			// The head through which the path continues from tail.
			head, ok := t.f.PairedWith(tail)
			if ok && c.Dim(head) == c.Dim(tail)+1 {
				cells = append(cells, c.GlobalAddr(head))
			}
		}
	}
	t.steps += int64(len(cells))
	return cells
}
