package mscomplex

import (
	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/kernel"
)

// TraceOptions bounds the V-path enumeration.
type TraceOptions struct {
	// MaxArcsPerPair caps the number of arc records created between one
	// pair of critical cells when many distinct V-paths connect them
	// (braided flow on plateaus); 0 means the default (2). Two records
	// always survive when more than one path exists, which preserves
	// cancellation validity exactly: arcs only ever disappear together
	// with an endpoint, so a pair's multiplicity never decreases while
	// both endpoints live, and "≥ 2" permanently blocks cancellation
	// regardless of the exact count.
	MaxArcsPerPair int
}

// KernelStats describes the path-compression kernel work of one trace:
// how many pointer-jumping sweeps ran over the vertex successor array
// before convergence, and how many pointer writes each sweep made (the
// final entry is always 0 — the sweep that proved convergence).
type KernelStats struct {
	// Workers is the pool width the sweeps and the per-start tracing ran
	// on (1 for the sequential path).
	Workers int
	// Sweeps is the number of synchronous jumping sweeps, including the
	// final zero-write sweep. It depends only on the longest V-path
	// chain in the block — never on the worker count.
	Sweeps int
	// SweepWrites is the per-sweep write histogram, reduced over chunks
	// in chunk-index order so it is byte-identical for every pool width.
	SweepWrites []int64
}

// TraceResult is the traced complex plus diagnostics.
type TraceResult struct {
	Complex *Complex
	// Truncated counts (saddle, saddle) pairs whose arc multiplicity
	// exceeded MaxArcsPerPair and was clamped.
	Truncated int
	// Kernel reports the pointer-jumping sweep statistics.
	Kernel KernelStats
}

// FromField traces the MS complex 1-skeleton of one block from its
// discrete gradient field. All critical cells become nodes; descending
// V-paths are walked from each node, and an arc is added for every
// distinct V-path terminating at a critical cell, with a traversed cell
// list recorded as the arc's geometric embedding. Paths are guaranteed
// to terminate inside the block because boundary gradient arrows are
// restricted.
//
// dec supplies block ownership for node boundary classification; nil
// means the single-block (serial) case.
func FromField(f *gradient.Field, dec *grid.Decomposition, opts TraceOptions) *TraceResult {
	return FromFieldPooled(f, dec, opts, nil)
}

// FromFieldPooled is FromField on an explicit intra-rank worker pool.
//
// The trace runs in three phases. First, iterated path-compression
// (pointer-jumping) sweeps over the flat vertex successor array resolve
// the terminal minimum of every vertex chain at once, converging when a
// sweep makes no writes. Second, every non-minimum critical cell is
// traced independently — saddle→minimum arcs read the precompressed
// terminals and walk their chain only for the recorded geometry, while
// the braided (1,2) and (2,3) layers keep the exact per-start DFS and
// path-counting dynamic program of the sequential tracer. Starts are
// distributed over the pool with per-worker scratch and per-start
// output slots. Third, the per-start results are committed to the
// complex sequentially in critical-cell order, so node ids, arc order,
// geometry ids and every serialized byte are identical for every pool
// width — a nil pool is the reference sequential path.
//
// Distinct V-paths between the same pair of critical cells are counted
// exactly (saturating) with a linear-time dynamic program over the
// descending reachability DAG, instead of enumerating every path — path
// enumeration is exponential in braided plateau regions. One
// representative geometry (the first-discovery path) is shared by the
// arc records of a multi-path pair.
func FromFieldPooled(f *gradient.Field, dec *grid.Decomposition, opts TraceOptions, pool *kernel.Pool) *TraceResult {
	c := f.C
	maxArcs := opts.MaxArcsPerPair
	if maxArcs <= 0 {
		maxArcs = 2
	}
	ms := New([]int32{int32(c.Block.ID)})
	res := &TraceResult{Complex: ms}

	criticals := f.CriticalCells()
	for _, ci := range criticals {
		idx := int(ci)
		var kb [8]cube.VertKey
		keys := c.VertKeys(idx, kb[:])
		owners := []int32{int32(c.Block.ID)}
		if dec != nil {
			gx, gy, gz := c.GlobalCoords(idx)
			ob := dec.OwnersOfRefined(c.Block.ID, gx, gy, gz)
			owners = owners[:0]
			for _, o := range ob {
				owners = append(owners, int32(o))
			}
		}
		ms.AddNode(Node{
			Cell:    c.GlobalAddr(idx),
			Index:   uint8(c.Dim(idx)),
			Value:   keys[0].Val,
			MaxVert: keys[0].ID,
			Owners:  owners,
		})
	}

	// Phase 1: pointer-jumping sweeps on the vertex layer.
	term0, stats := compressChains(f, pool)
	res.Kernel = stats
	for _, w := range stats.SweepWrites {
		ms.Work.SweepWrites += w
	}

	// Phase 2: trace every non-minimum critical cell, in parallel over
	// the pool. Workers write only their own outs slots and per-worker
	// tracer scratch; nothing touches ms until the commit phase.
	starts := make([]int32, 0, len(criticals))
	for _, ci := range criticals {
		if c.Dim(int(ci)) != 0 {
			starts = append(starts, ci)
		}
	}
	outs := make([]startOut, len(starts))
	tracers := make([]*tracer, pool.Workers())
	pool.Run(len(starts), 1, func(worker, _, lo, hi int) {
		tr := tracers[worker]
		if tr == nil {
			tr = &tracer{f: f, maxArcs: maxArcs, term0: term0}
			tracers[worker] = tr
		}
		for i := lo; i < hi; i++ {
			start := int(starts[i])
			if c.Dim(start) == 1 {
				outs[i] = tr.traceChain(start)
			} else {
				outs[i] = tr.traceFrom(start)
			}
		}
	})

	// Phase 3: sequential commit in critical-cell order.
	for i := range outs {
		start := int(starts[i])
		origin, ok := ms.NodeAt(c.GlobalAddr(start))
		if !ok {
			panic("mscomplex: tracing from a cell with no node")
		}
		for _, e := range outs[i].emits {
			lower, ok := ms.NodeAt(c.GlobalAddr(e.terminal))
			if !ok {
				panic("mscomplex: critical terminal with no node")
			}
			geom := ms.AddLeafGeom(e.geom)
			for k := 0; k < e.records; k++ {
				ms.AddArc(origin, lower, geom)
			}
		}
		res.Truncated += outs[i].truncated
		ms.Work.PathSteps += outs[i].steps
	}
	return res
}

// sweepGrain is the chunk size of the jumping sweeps; chunk boundaries
// (and therefore the per-chunk write reduction) depend only on the
// vertex count.
const sweepGrain = kernel.DefaultGrain

// compressChains runs synchronous pointer-jumping sweeps over the
// vertex successor array until a sweep makes no writes, and returns the
// fully compressed array: term[v] is the compact id of the critical
// vertex terminating v's descending chain (v itself when v is
// critical). Sweeps are double-buffered — each reads only the previous
// generation — so the result and the per-sweep write counts are
// independent of worker count and chunk schedule, and the sweep total
// is ⌈log₂(longest chain)⌉ + 1.
func compressChains(f *gradient.Field, pool *kernel.Pool) ([]int32, KernelStats) {
	succ := f.Succ0()
	nv := len(succ)
	stats := KernelStats{Workers: pool.Workers()}
	cur := make([]int32, nv)
	next := make([]int32, nv)
	initChainsKernel(succ, cur, pool)
	writes := make([]int64, kernel.Chunks(nv, sweepGrain))
	for {
		jumpSweepKernel(cur, next, writes, pool)
		var total int64
		for _, w := range writes {
			total += w
		}
		stats.Sweeps++
		stats.SweepWrites = append(stats.SweepWrites, total)
		cur, next = next, cur
		if total == 0 {
			break
		}
	}
	return cur, stats
}

// initChainsKernel seeds the jumping buffer: each vertex points at its
// successor, terminals point at themselves.
func initChainsKernel(succ, cur []int32, pool *kernel.Pool) {
	pool.Run(len(succ), sweepGrain, func(_, _, lo, hi int) {
		for v := lo; v < hi; v++ {
			s := succ[v]
			if s < 0 {
				s = int32(v)
			}
			cur[v] = s
		}
	})
}

// jumpSweepKernel performs one synchronous pointer-jumping sweep:
// next[v] = cur[cur[v]]. It records the number of changed pointers per
// chunk; the caller reduces them in chunk order.
func jumpSweepKernel(cur, next []int32, writes []int64, pool *kernel.Pool) {
	pool.Run(len(cur), sweepGrain, func(_, chunk, lo, hi int) {
		var w int64
		for v := lo; v < hi; v++ {
			t := cur[cur[v]]
			next[v] = t
			if t != cur[v] {
				w++
			}
		}
		writes[chunk] = w
	})
}

// pathCountCap saturates V-path multiplicity counts.
const pathCountCap = 1 << 20

// emitRec is one arc bundle produced by tracing a single start: the
// terminal critical cell, the representative geometry, and how many arc
// records to add.
type emitRec struct {
	terminal int
	geom     []grid.Addr
	records  int
}

// startOut is everything one traced start contributes to the complex,
// in emission order. It is committed sequentially after the parallel
// phase.
type startOut struct {
	emits     []emitRec
	truncated int
	steps     int64
}

// tracer holds per-worker scratch for the per-start tracing phase. It
// never touches the complex; it only fills startOut records.
type tracer struct {
	f       *gradient.Field
	maxArcs int
	term0   []int32 // compressed vertex terminals from the jumping sweeps

	// Per-start scratch, indexed by cell and validated by an epoch
	// counter so it is cleared in O(1) between starts.
	order   []int   // reverse-finish (reverse topological) order
	parent  []int32 // first-discovery predecessor tail (-1 = start)
	count   []int32 // number of V-paths start → tail, saturating
	seen    []int32 // epoch at which the cell was discovered
	visited []int32 // epoch at which the cell was DFS-expanded
	epoch   int32
}

func (t *tracer) reset() {
	n := t.f.C.NumCells()
	if len(t.parent) != n {
		t.parent = make([]int32, n)
		t.count = make([]int32, n)
		t.seen = make([]int32, n)
		t.visited = make([]int32, n)
	}
	t.epoch++
	t.order = t.order[:0]
}

func (t *tracer) discover(cell, parent int) {
	if t.seen[cell] != t.epoch {
		t.seen[cell] = t.epoch
		t.parent[cell] = int32(parent)
		t.count[cell] = 0
	}
}

// traceChain traces a 1-saddle using the precompressed vertex layer.
// The two descending chains leaving the saddle's endpoint vertices are
// functional (one successor per vertex), so their terminals come
// straight from term0; the chains are walked only to record geometry.
// The emitted records replicate the sequential DFS tracer exactly:
// distinct terminals emit one single-path arc each, in facet order; a
// shared terminal emits one geometry — the first-discovery path, which
// restarts at the second root if the first root's chain runs through it
// — carrying two arc records.
func (t *tracer) traceChain(start int) startOut {
	c := t.f.C
	var fb [6]int
	roots := c.Facets(start, fb[:0])
	r0, r1 := roots[0], roots[1]
	v0, v1 := t.f.VertexID(r0), t.f.VertexID(r1)
	var out startOut
	if t.term0[v0] != t.term0[v1] {
		// Disjoint chains: one arc per root, own geometry.
		geom0, end0 := t.walkChain(start, v0, -1)
		geom1, end1 := t.walkChain(start, v1, -1)
		out.emits = append(out.emits,
			emitRec{terminal: end0, geom: geom0, records: 1},
			emitRec{terminal: end1, geom: geom1, records: 1})
		out.steps += int64(len(geom0) + len(geom1))
		return out
	}
	// Both chains reach the same minimum: exactly two V-paths. The
	// representative geometry restarts at v1 if the walk from v0 passes
	// through it (the sequential tracer discovered roots first, so the
	// parent walk stopped there).
	g, term := t.walkChain(start, v0, v1)
	records := 2
	if records > t.maxArcs {
		records = t.maxArcs
		out.truncated++
	}
	out.emits = append(out.emits, emitRec{terminal: term, geom: g, records: records})
	out.steps += int64(len(g))
	return out
}

// walkChain walks the descending vertex chain from compact vertex v,
// building the representative geometry for a path that starts at the
// saddle cell start: [saddle, vertex, pairing edge, vertex, ..., final
// vertex]. If restart is a non-negative vertex id and the walk reaches
// it, the geometry restarts there. Returns the geometry and the
// terminal vertex's cell index.
func (t *tracer) walkChain(start, v, restart int) ([]grid.Addr, int) {
	c := t.f.C
	succ := t.f.Succ0()
	cells := make([]grid.Addr, 0, 8)
	cells = append(cells, c.GlobalAddr(start))
	for {
		if v == restart {
			cells = cells[:1]
		}
		cell := t.f.VertexCell(v)
		cells = append(cells, c.GlobalAddr(cell))
		if succ[v] < 0 {
			return cells, cell
		}
		cells = append(cells, c.GlobalAddr(int(t.f.HeadOf(cell))))
		v = int(succ[v])
	}
}

// traceFrom computes, for critical cell start of dimension d ≥ 2, the
// exact (saturating) number of descending V-paths to every reachable
// critical (d-1)-cell. These layers are braided DAGs (a tail can have
// several successors through its head's facets), so pointer jumping
// does not apply; the per-start DFS and dynamic program of the
// sequential tracer run unchanged, reading the flat successor array
// instead of per-cell closures.
func (t *tracer) traceFrom(start int) startOut {
	c := t.f.C
	t.reset()

	// Iterative DFS over tail cells to produce a reverse topological
	// order of the reachability DAG (V-fields are acyclic, so finish
	// order is well defined).
	type frame struct {
		cell     int
		next     [5]int
		nNext    int
		expanded bool
	}
	var stack []frame
	var fb [6]int
	roots := c.Facets(start, fb[:0])
	nRoots := len(roots)
	var rootBuf [6]int
	copy(rootBuf[:], roots)
	for _, r := range rootBuf[:nRoots] {
		t.discover(r, -1)
	}
	for _, r := range rootBuf[:nRoots] {
		if t.visited[r] == t.epoch {
			continue
		}
		stack = append(stack[:0], frame{cell: r})
		t.visited[r] = t.epoch
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if !f.expanded {
				f.expanded = true
				if !t.f.IsCritical(f.cell) {
					if head := t.f.HeadOf(f.cell); head >= 0 {
						for _, nx := range c.Facets(int(head), fb[:0]) {
							if nx != f.cell {
								f.next[f.nNext] = nx
								f.nNext++
							}
						}
					}
				}
			}
			if f.nNext == 0 {
				t.order = append(t.order, f.cell)
				stack = stack[:len(stack)-1]
				continue
			}
			f.nNext--
			n := f.next[f.nNext]
			t.discover(n, f.cell)
			if t.visited[n] != t.epoch {
				t.visited[n] = t.epoch
				stack = append(stack, frame{cell: n})
			}
		}
	}
	var out startOut
	out.steps += int64(len(t.order))

	// Forward dynamic program in topological order (reverse of the
	// finish order): path counts from start. Duplicate roots cannot
	// occur (facets are distinct), so each root starts with exactly one
	// path: the direct step from start.
	for _, r := range rootBuf[:nRoots] {
		if t.count[r] < pathCountCap {
			t.count[r]++
		}
	}
	for i := len(t.order) - 1; i >= 0; i-- {
		cell := t.order[i]
		cnt := t.count[cell]
		if cnt == 0 || t.f.IsCritical(cell) {
			continue
		}
		if head := t.f.HeadOf(cell); head >= 0 {
			for _, nx := range c.Facets(int(head), fb[:0]) {
				if nx == cell {
					continue
				}
				nc := t.count[nx] + cnt
				if nc > pathCountCap {
					nc = pathCountCap
				}
				t.count[nx] = nc
			}
		}
	}

	// Emit arcs for every reachable critical terminal, in finish order.
	for _, cell := range t.order {
		if !t.f.IsCritical(cell) {
			continue
		}
		cnt := int(t.count[cell])
		if cnt == 0 {
			continue
		}
		geom := t.reconstruct(start, cell, &out)
		records := cnt
		if records > t.maxArcs {
			records = t.maxArcs
			out.truncated++
		}
		out.emits = append(out.emits, emitRec{terminal: cell, geom: geom, records: records})
	}
	return out
}

// reconstruct builds the representative geometry for the first-discovery
// path start → terminal: alternating (head, tail) cells ending at the
// terminal, starting at the origin cell.
func (t *tracer) reconstruct(start, terminal int, out *startOut) []grid.Addr {
	c := t.f.C
	// Walk parents from terminal back to a root facet.
	var rev []int
	for cell := terminal; cell != -1; cell = int(t.parent[cell]) {
		rev = append(rev, cell)
	}
	cells := make([]grid.Addr, 0, 2*len(rev)+1)
	cells = append(cells, c.GlobalAddr(start))
	for i := len(rev) - 1; i >= 0; i-- {
		tail := rev[i]
		cells = append(cells, c.GlobalAddr(tail))
		if i > 0 {
			// The head through which the path continues from tail.
			if head := t.f.HeadOf(tail); head >= 0 {
				cells = append(cells, c.GlobalAddr(int(head)))
			}
		}
	}
	out.steps += int64(len(cells))
	return cells
}
