package mscomplex

import (
	"math"
	"sort"
)

func f32bits(v float32) uint32     { return math.Float32bits(v) }
func f32frombits(b uint32) float32 { return math.Float32frombits(b) }

// Glue enlarges the receiver by gluing other onto it (section IV-F3).
// The discrete gradients of the two regions are identical on their
// shared boundary, so every critical cell on that boundary is a node of
// both complexes; these shared nodes anchor the gluing:
//
//   - every node of other that is not already present (by cell address)
//     is added;
//   - every arc of other is added unless both of its endpoints lie on
//     the boundary shared with the receiver's region, in which case the
//     arc is guaranteed to exist in the receiver already;
//   - the receiver's region becomes the union of the two regions, which
//     reclassifies boundary status: nodes interior to the union become
//     candidates for cancellation in the next simplification.
func (c *Complex) Glue(other *Complex) {
	// A node of other is "shared" when its cell is also contained in a
	// block of the receiver's region.
	sharedWithRoot := func(n *Node) bool {
		for _, o := range n.Owners {
			if c.InRegion(o) {
				return true
			}
		}
		return false
	}

	remap := make([]NodeID, len(other.Nodes))
	for i := range other.Nodes {
		n := &other.Nodes[i]
		if !n.Alive {
			continue
		}
		if id, ok := c.byCell[n.Cell]; ok {
			remap[i] = id
		} else {
			remap[i] = c.AddNode(Node{
				Cell:    n.Cell,
				Index:   n.Index,
				Value:   n.Value,
				MaxVert: n.MaxVert,
				Owners:  append([]int32(nil), n.Owners...),
			})
		}
		c.Work.NodesGlued++
	}

	geomMemo := make(map[GeomID]GeomID)
	for i := range other.Arcs {
		a := &other.Arcs[i]
		if !a.Alive {
			continue
		}
		if sharedWithRoot(&other.Nodes[a.Upper]) && sharedWithRoot(&other.Nodes[a.Lower]) {
			continue // both endpoints on the shared boundary: already present
		}
		geom := c.importGeom(other, a.Geom, geomMemo)
		c.AddArc(remap[a.Upper], remap[a.Lower], geom)
	}

	// Union the regions.
	merged := append(append([]int32(nil), c.Region...), other.Region...)
	sort.Slice(merged, func(i, j int) bool { return merged[i] < merged[j] })
	out := merged[:0]
	var last int32 = -1
	for _, b := range merged {
		if b != last {
			out = append(out, b)
			last = b
		}
	}
	c.Region = out
	c.Hierarchy = append(c.Hierarchy, other.Hierarchy...)
	// Note: other.Work is NOT folded in — it tallies operations already
	// performed (and already charged to a clock) on the rank that
	// computed the incoming complex. Only the gluing operations
	// themselves (node insertions, arc additions) accrue here.
}

// importGeom deep-copies a geometry DAG from another complex,
// preserving sharing: a child referenced by several composites is
// imported once.
func (c *Complex) importGeom(other *Complex, g GeomID, memo map[GeomID]GeomID) GeomID {
	if id, ok := memo[g]; ok {
		return id
	}
	geom := &other.Geoms[g]
	var id GeomID
	if geom.Parts == nil {
		id = c.AddLeafGeom(geom.Cells)
	} else {
		parts := make([]GeomPart, len(geom.Parts))
		for i, p := range geom.Parts {
			parts[i] = GeomPart{ID: c.importGeom(other, p.ID, memo), Reversed: p.Reversed}
		}
		id = c.AddCompositeGeom(parts)
	}
	memo[g] = id
	return id
}

// Compact rebuilds the complex keeping only alive nodes and arcs and the
// geometry objects they reference (shared children once), releasing the
// memory of cancelled elements — the paper's cleanup step that drops all
// but the coarsest level of the hierarchy before communication. The
// hierarchy record is preserved.
func (c *Complex) Compact() *Complex {
	out := New(c.Region)
	out.Hierarchy = c.Hierarchy
	out.Work = c.Work
	remap := make([]NodeID, len(c.Nodes))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Alive {
			continue
		}
		remap[i] = out.AddNode(Node{
			Cell:    n.Cell,
			Index:   n.Index,
			Value:   n.Value,
			MaxVert: n.MaxVert,
			Owners:  n.Owners,
		})
	}
	geomMemo := make(map[GeomID]GeomID)
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if !a.Alive {
			continue
		}
		geom := out.importGeom(c, a.Geom, geomMemo)
		out.AddArc(remap[a.Upper], remap[a.Lower], geom)
	}
	return out
}
