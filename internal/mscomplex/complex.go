// Package mscomplex implements the 1-skeleton of the discrete
// Morse-Smale complex: nodes at critical cells, arcs along the V-paths
// connecting critical cells of consecutive index, and the geometric
// embedding of every arc. Nodes, arcs and geometry objects are
// constant-size records in flat arrays with lazy deletion, the layout
// the paper adopts from Gyulassy et al. (2010) because it makes
// persistence cancellation cheap.
//
// A Complex also knows the Region of the domain it covers (the set of
// decomposition block ids), which determines which of its nodes lie on a
// boundary shared with blocks outside the region — those nodes are the
// "handles" used for gluing and are protected from cancellation.
package mscomplex

import (
	"fmt"
	"sort"

	"parms/internal/grid"
	"parms/internal/vtime"
)

// NodeID indexes Complex.Nodes.
type NodeID int32

// ArcID indexes Complex.Arcs.
type ArcID int32

// GeomID indexes Complex.Geoms.
type GeomID int32

// Node is a critical cell of the discrete gradient field.
type Node struct {
	// Cell is the global address of the critical cell.
	Cell grid.Addr
	// Index is the Morse index: 0 minimum, 1 and 2 saddles, 3 maximum.
	Index uint8
	// Value is the function value of the cell (max over its vertices).
	Value float32
	// MaxVert is the global id of the cell's maximal vertex, the
	// deterministic tie-breaker.
	MaxVert int64
	// Owners lists the decomposition blocks whose closed boxes contain
	// the cell, sorted ascending. A node is on a shared boundary of a
	// region exactly when some owner lies outside the region.
	Owners []int32
	// Alive is false once the node has been cancelled.
	Alive bool

	arcs []ArcID
}

// Arc is a V-path between critical cells whose indices differ by one.
type Arc struct {
	// Upper is the endpoint of higher Morse index, Lower the endpoint
	// of lower index (Upper.Index == Lower.Index+1).
	Upper, Lower NodeID
	// Geom is the arc's geometric embedding.
	Geom GeomID
	// Alive is false once the arc has been removed by a cancellation.
	Alive bool
}

// GeomPart references a child geometry inside a composite, optionally
// traversed in reverse.
type GeomPart struct {
	ID       GeomID
	Reversed bool
}

// Geom is an arc's geometric embedding: either a leaf list of cell
// addresses along the traced V-path, or a composite referencing the
// geometries merged by a cancellation (the paper's scheme for
// inheriting geometry through simplification).
type Geom struct {
	Cells []grid.Addr
	Parts []GeomPart
}

// Cancellation records one applied persistence cancellation, in order;
// the list is the multi-resolution hierarchy of the complex.
type Cancellation struct {
	Persistence float32
	UpperCell   grid.Addr
	LowerCell   grid.Addr
	// UpperValue and LowerValue are the function values of the
	// cancelled pair, preserved so persistence diagrams can be
	// reconstructed after the nodes are gone.
	UpperValue  float32
	LowerValue  float32
	ArcsRemoved int
	ArcsCreated int
}

// Complex is the 1-skeleton of a Morse-Smale complex over a region of
// the domain.
type Complex struct {
	Nodes []Node
	Arcs  []Arc
	Geoms []Geom

	// Region lists the decomposition block ids this complex covers,
	// sorted ascending.
	Region []int32
	// Hierarchy records the cancellations applied, in order.
	Hierarchy []Cancellation
	// Work tallies construction and simplification operations for the
	// cost model.
	Work vtime.Work

	byCell  map[grid.Addr]NodeID
	geomLen []int64 // memoized GeomLen by geometry id; 0 = unknown

	// Multi-resolution state (hierarchy.go): per-cancellation undo
	// records and the number currently applied.
	undo    []undoRecord
	applied int
}

// New creates an empty complex covering the given region blocks.
func New(region []int32) *Complex {
	r := append([]int32(nil), region...)
	sort.Slice(r, func(i, j int) bool { return r[i] < r[j] })
	return &Complex{Region: r, byCell: make(map[grid.Addr]NodeID)}
}

// AddNode inserts a node and returns its id. Inserting a second node at
// an existing cell address panics: node identity is the cell address.
func (c *Complex) AddNode(n Node) NodeID {
	if _, dup := c.byCell[n.Cell]; dup {
		panic(fmt.Sprintf("mscomplex: duplicate node at cell %d", n.Cell))
	}
	n.Alive = true
	id := NodeID(len(c.Nodes))
	c.Nodes = append(c.Nodes, n)
	c.byCell[n.Cell] = id
	return id
}

// NodeAt returns the node id at a cell address.
func (c *Complex) NodeAt(cell grid.Addr) (NodeID, bool) {
	id, ok := c.byCell[cell]
	return id, ok
}

// AddArc inserts an arc between upper and lower with the given geometry
// and returns its id.
func (c *Complex) AddArc(upper, lower NodeID, geom GeomID) ArcID {
	if c.Nodes[upper].Index != c.Nodes[lower].Index+1 {
		panic(fmt.Sprintf("mscomplex: arc between index %d and %d nodes",
			c.Nodes[upper].Index, c.Nodes[lower].Index))
	}
	id := ArcID(len(c.Arcs))
	c.Arcs = append(c.Arcs, Arc{Upper: upper, Lower: lower, Geom: geom, Alive: true})
	c.Nodes[upper].arcs = append(c.Nodes[upper].arcs, id)
	c.Nodes[lower].arcs = append(c.Nodes[lower].arcs, id)
	c.Work.ArcsTouched++
	return id
}

// AddLeafGeom stores a leaf geometry and returns its id.
func (c *Complex) AddLeafGeom(cells []grid.Addr) GeomID {
	id := GeomID(len(c.Geoms))
	c.Geoms = append(c.Geoms, Geom{Cells: cells})
	return id
}

// AddCompositeGeom stores the geometry inherited by a cancellation as a
// reference list (the middle part reversed by its Reversed flag),
// exactly as the paper does: "a new geometry object is created that
// references the geometry objects that were merged in the cancellation".
// Shared sub-geometries are stored once; lengths and flattening resolve
// the references on demand.
func (c *Complex) AddCompositeGeom(parts []GeomPart) GeomID {
	id := GeomID(len(c.Geoms))
	c.Geoms = append(c.Geoms, Geom{Parts: parts})
	return id
}

// ArcsOf appends the ids of the alive arcs incident to n to buf and
// returns it, pruning dead references from the node's list as it goes.
func (c *Complex) ArcsOf(n NodeID, buf []ArcID) []ArcID {
	node := &c.Nodes[n]
	kept := node.arcs[:0]
	for _, a := range node.arcs {
		if c.Arcs[a].Alive {
			kept = append(kept, a)
			buf = append(buf, a)
		}
	}
	node.arcs = kept
	return buf
}

// Degree returns the number of alive arcs incident to n.
func (c *Complex) Degree(n NodeID) int {
	var buf []ArcID
	return len(c.ArcsOf(n, buf))
}

// OtherEnd returns the endpoint of arc a that is not n.
func (c *Complex) OtherEnd(a ArcID, n NodeID) NodeID {
	arc := c.Arcs[a]
	if arc.Upper == n {
		return arc.Lower
	}
	return arc.Upper
}

// Multiplicity returns the number of alive arcs connecting u and v.
func (c *Complex) Multiplicity(u, v NodeID) int {
	var buf [32]ArcID
	count := 0
	for _, a := range c.ArcsOf(u, buf[:0]) {
		if c.OtherEnd(a, u) == v {
			count++
		}
	}
	return count
}

// AliveCounts returns the number of alive nodes per Morse index and the
// number of alive arcs.
func (c *Complex) AliveCounts() (nodes [4]int, arcs int) {
	for i := range c.Nodes {
		if c.Nodes[i].Alive {
			nodes[c.Nodes[i].Index]++
		}
	}
	for i := range c.Arcs {
		if c.Arcs[i].Alive {
			arcs++
		}
	}
	return
}

// NumAliveNodes returns the total number of alive nodes.
func (c *Complex) NumAliveNodes() int {
	n, _ := c.AliveCounts()
	return n[0] + n[1] + n[2] + n[3]
}

// EulerCharacteristic returns the alternating sum of critical cell
// counts, which discrete Morse theory equates with the Euler
// characteristic of the domain (1 for a solid box).
func (c *Complex) EulerCharacteristic() int {
	n, _ := c.AliveCounts()
	return n[0] - n[1] + n[2] - n[3]
}

// InRegion reports whether block is part of the complex's region.
func (c *Complex) InRegion(block int32) bool {
	i := sort.Search(len(c.Region), func(i int) bool { return c.Region[i] >= block })
	return i < len(c.Region) && c.Region[i] == block
}

// IsBoundaryNode reports whether the node's cell lies on a boundary
// shared with a block outside the complex's region. Such nodes anchor
// future gluing and must not be cancelled.
func (c *Complex) IsBoundaryNode(n NodeID) bool {
	for _, o := range c.Nodes[n].Owners {
		if !c.InRegion(o) {
			return true
		}
	}
	return false
}

// GeomLen returns the number of cells in a geometry, resolving
// composites recursively. Results are memoized: composites share
// children heavily after cascaded cancellations, and naive recursion
// would revisit shared subtrees exponentially often.
func (c *Complex) GeomLen(g GeomID) int {
	if int(g) >= len(c.geomLen) {
		grown := make([]int64, len(c.Geoms))
		copy(grown, c.geomLen)
		c.geomLen = grown
	}
	if c.geomLen[g] > 0 {
		return int(c.geomLen[g])
	}
	geom := &c.Geoms[g]
	total := 0
	if geom.Parts == nil {
		total = len(geom.Cells)
	} else {
		for _, p := range geom.Parts {
			total += c.GeomLen(p.ID)
		}
	}
	c.geomLen[g] = int64(total)
	return total
}

// FlattenGeom resolves a geometry to its full cell list, in path order.
func (c *Complex) FlattenGeom(g GeomID) []grid.Addr {
	out := make([]grid.Addr, 0, c.GeomLen(g))
	return c.appendGeom(out, g, false)
}

func (c *Complex) appendGeom(out []grid.Addr, g GeomID, reversed bool) []grid.Addr {
	geom := &c.Geoms[g]
	if geom.Parts == nil {
		if !reversed {
			return append(out, geom.Cells...)
		}
		for i := len(geom.Cells) - 1; i >= 0; i-- {
			out = append(out, geom.Cells[i])
		}
		return out
	}
	parts := geom.Parts
	if reversed {
		for i := len(parts) - 1; i >= 0; i-- {
			out = c.appendGeom(out, parts[i].ID, !parts[i].Reversed)
		}
		return out
	}
	for _, p := range parts {
		out = c.appendGeom(out, p.ID, p.Reversed)
	}
	return out
}

// Validate checks structural invariants: arc endpoints alive and of
// consecutive index, node arc lists consistent with arcs, no duplicate
// node addresses.
func (c *Complex) Validate() error {
	seen := make(map[grid.Addr]bool)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Alive {
			continue
		}
		if seen[n.Cell] {
			return fmt.Errorf("duplicate alive node at cell %d", n.Cell)
		}
		seen[n.Cell] = true
		if n.Index > 3 {
			return fmt.Errorf("node %d has invalid index %d", i, n.Index)
		}
	}
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if !a.Alive {
			continue
		}
		u, l := &c.Nodes[a.Upper], &c.Nodes[a.Lower]
		if !u.Alive || !l.Alive {
			return fmt.Errorf("alive arc %d has dead endpoint", i)
		}
		if u.Index != l.Index+1 {
			return fmt.Errorf("arc %d connects index %d to %d", i, u.Index, l.Index)
		}
	}
	return nil
}

// Persistence returns the persistence of an arc: the absolute function
// value difference of its endpoints.
func (c *Complex) Persistence(a ArcID) float32 {
	arc := &c.Arcs[a]
	p := c.Nodes[arc.Upper].Value - c.Nodes[arc.Lower].Value
	if p < 0 {
		p = -p
	}
	return p
}
