package mscomplex

import (
	"testing"

	"parms/internal/grid"
	"parms/internal/synth"
)

// snapshot captures the alive content of a complex for comparison.
func snapshot(c *Complex) (nodes map[grid.Addr]uint8, arcs map[[2]grid.Addr]int) {
	nodes = make(map[grid.Addr]uint8)
	arcs = make(map[[2]grid.Addr]int)
	for i := range c.Nodes {
		if c.Nodes[i].Alive {
			nodes[c.Nodes[i].Cell] = c.Nodes[i].Index
		}
	}
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if a.Alive {
			arcs[[2]grid.Addr{c.Nodes[a.Upper].Cell, c.Nodes[a.Lower].Cell}]++
		}
	}
	return
}

func snapshotsEqual(t *testing.T, label string, c1, c2 *Complex) {
	t.Helper()
	n1, a1 := snapshot(c1)
	n2, a2 := snapshot(c2)
	if len(n1) != len(n2) || len(a1) != len(a2) {
		t.Fatalf("%s: %d/%d nodes, %d/%d arc classes", label, len(n1), len(n2), len(a1), len(a2))
	}
	for cell, idx := range n1 {
		if n2[cell] != idx {
			t.Fatalf("%s: node %d differs", label, cell)
		}
	}
	for pair, mult := range a1 {
		if a2[pair] != mult {
			t.Fatalf("%s: arc %v multiplicity %d vs %d", label, pair, mult, a2[pair])
		}
	}
}

func TestRefineRestoresOriginal(t *testing.T) {
	vol := synth.Random(grid.Dims{9, 9, 9}, 61)
	original := traceVolume(t, vol)
	working := traceVolume(t, vol)

	stats := working.Simplify(SimplifyOptions{Threshold: 0.3})
	if stats.Cancellations == 0 {
		t.Fatal("nothing cancelled")
	}
	if working.Resolution() != stats.Cancellations {
		t.Fatalf("resolution %d after %d cancellations", working.Resolution(), stats.Cancellations)
	}
	// Walk all the way back to the finest level.
	if got := working.SetResolution(0); got != 0 {
		t.Fatalf("SetResolution(0) reached %d", got)
	}
	snapshotsEqual(t, "fully refined", original, working)
	if err := working.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestReapplyRestoresSimplified(t *testing.T) {
	vol := synth.Random(grid.Dims{9, 9, 9}, 67)
	working := traceVolume(t, vol)
	working.Simplify(SimplifyOptions{Threshold: 0.3})

	reference := traceVolume(t, vol)
	reference.Simplify(SimplifyOptions{Threshold: 0.3})

	working.SetResolution(0)
	working.SetResolution(working.MaxResolution())
	snapshotsEqual(t, "re-applied", reference, working)
	if err := working.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestResolutionWalkIsConsistent(t *testing.T) {
	vol := synth.Random(grid.Dims{9, 9, 9}, 71)
	ms := traceVolume(t, vol)
	before := ms.NumAliveNodes()
	ms.Simplify(SimplifyOptions{Threshold: 0.25})
	max := ms.MaxResolution()
	// Each level has exactly two more nodes than the next.
	for level := max; level >= 0; level-- {
		ms.SetResolution(level)
		want := before - 2*level
		if got := ms.NumAliveNodes(); got != want {
			t.Fatalf("level %d: %d nodes, want %d", level, got, want)
		}
		if ms.EulerCharacteristic() != 1 {
			t.Fatalf("level %d: Euler %d", level, ms.EulerCharacteristic())
		}
	}
	// And back down again.
	ms.SetResolution(max)
	if ms.NumAliveNodes() != before-2*max {
		t.Fatal("round trip lost nodes")
	}
}

func TestRefineUnavailableAfterCompact(t *testing.T) {
	ms := traceVolume(t, synth.Random(grid.Dims{8, 8, 8}, 73))
	ms.Simplify(SimplifyOptions{Threshold: 0.3})
	compact := ms.Compact()
	if compact.Refine() {
		t.Fatal("Refine succeeded on a compacted complex")
	}
	if compact.MaxResolution() != 0 {
		t.Fatal("compacted complex claims refinable levels")
	}
	// The original can still refine.
	if !ms.Refine() {
		t.Fatal("original lost its hierarchy")
	}
}

func TestRefineThenSimplifyFurther(t *testing.T) {
	// Interleaving navigation and further simplification: refine to the
	// finest level, then simplify deeper than before; the result equals
	// a direct deep simplification.
	vol := synth.Random(grid.Dims{9, 9, 9}, 79)
	working := traceVolume(t, vol)
	working.Simplify(SimplifyOptions{Threshold: 0.1})
	working.SetResolution(0)
	// The undo history beyond the current level is invalidated by a new
	// Simplify; navigate first, then extend.
	working.Simplify(SimplifyOptions{Threshold: 0.4})

	direct := traceVolume(t, vol)
	direct.Simplify(SimplifyOptions{Threshold: 0.4})
	sn, sa := working.AliveCounts()
	dn, da := direct.AliveCounts()
	if sn != dn || sa != da {
		t.Fatalf("refine-then-deepen %v/%d, direct %v/%d", sn, sa, dn, da)
	}
}

func TestSimplifyInvalidatesRedo(t *testing.T) {
	ms := traceVolume(t, synth.Random(grid.Dims{9, 9, 9}, 83))
	ms.Simplify(SimplifyOptions{Threshold: 0.3})
	deep := ms.MaxResolution()
	ms.SetResolution(0)
	ms.Simplify(SimplifyOptions{Threshold: 0.05})
	// The old redo history must be gone; only the new cancellations
	// remain navigable.
	if ms.MaxResolution() > deep {
		t.Fatalf("stale redo records retained: max resolution %d", ms.MaxResolution())
	}
	if ms.Resolution() != ms.MaxResolution() {
		t.Fatalf("resolution %d != max %d after simplify", ms.Resolution(), ms.MaxResolution())
	}
	// Navigation through the fresh history still works and validates.
	ms.SetResolution(0)
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
}
