package mscomplex

import (
	"math/rand"
	"testing"

	"parms/internal/grid"
	"parms/internal/synth"
)

// TestSimplifyStagedEqualsDirect: persistence simplification is a
// monotone hierarchy — simplifying to t1 and then to t2 > t1 must land
// on exactly the complex that simplifying straight to t2 produces,
// because the cancellation sequence is ordered by persistence either
// way.
func TestSimplifyStagedEqualsDirect(t *testing.T) {
	vol := synth.Random(grid.Dims{9, 9, 9}, 17)

	staged := traceVolume(t, vol)
	staged.Simplify(SimplifyOptions{Threshold: 0.1})
	staged.Simplify(SimplifyOptions{Threshold: 0.3})

	direct := traceVolume(t, vol)
	direct.Simplify(SimplifyOptions{Threshold: 0.3})

	sn, sa := staged.AliveCounts()
	dn, da := direct.AliveCounts()
	if sn != dn || sa != da {
		t.Fatalf("staged %v/%d, direct %v/%d", sn, sa, dn, da)
	}
	for i := range direct.Nodes {
		n := &direct.Nodes[i]
		if !n.Alive {
			continue
		}
		id, ok := staged.NodeAt(n.Cell)
		if !ok || !staged.Nodes[id].Alive {
			t.Fatalf("direct node at cell %d missing in staged result", n.Cell)
		}
	}
	// The combined hierarchies record the same cancellations.
	if len(staged.Hierarchy) != len(direct.Hierarchy) {
		t.Fatalf("hierarchy lengths %d vs %d", len(staged.Hierarchy), len(direct.Hierarchy))
	}
	for i := range direct.Hierarchy {
		if staged.Hierarchy[i] != direct.Hierarchy[i] {
			t.Fatalf("hierarchy entry %d differs: %+v vs %+v",
				i, staged.Hierarchy[i], direct.Hierarchy[i])
		}
	}
}

// TestSimplifyIdempotent: re-running Simplify with the same threshold
// must do nothing.
func TestSimplifyIdempotent(t *testing.T) {
	ms := traceVolume(t, synth.Random(grid.Dims{9, 9, 9}, 23))
	ms.Simplify(SimplifyOptions{Threshold: 0.2})
	before, beforeArcs := ms.AliveCounts()
	stats := ms.Simplify(SimplifyOptions{Threshold: 0.2})
	if stats.Cancellations != 0 {
		t.Fatalf("second simplify cancelled %d pairs", stats.Cancellations)
	}
	after, afterArcs := ms.AliveCounts()
	if before != after || beforeArcs != afterArcs {
		t.Fatal("idempotence violated")
	}
}

// TestCancellationNeverTouchesBoundary: even at an effectively infinite
// threshold, every cancellation a block records must involve only
// interior cells — cells owned by that block alone. The recorded
// hierarchy lets us audit this exactly.
func TestCancellationNeverTouchesBoundary(t *testing.T) {
	vol := synth.Random(grid.Dims{12, 10, 8}, 31)
	dec, blocks := computeBlocks(t, vol, 4, 1e9)
	space := grid.NewAddrSpace(vol.Dims)
	audited := 0
	for bi, ms := range blocks {
		for _, h := range ms.Hierarchy {
			for _, cell := range []grid.Addr{h.UpperCell, h.LowerCell} {
				x, y, z := space.Decode(cell)
				if owners := dec.OwnersOfRefined(bi, x, y, z); len(owners) > 1 {
					t.Fatalf("block %d cancelled boundary cell %d (owned by %v)", bi, cell, owners)
				}
				audited++
			}
		}
	}
	if audited == 0 {
		t.Fatal("no cancellations recorded; the audit checked nothing")
	}
	// Structural sanity after heavy surgery: alive arcs never reference
	// dead nodes.
	for _, ms := range blocks {
		for i := range ms.Arcs {
			a := &ms.Arcs[i]
			if a.Alive && (!ms.Nodes[a.Upper].Alive || !ms.Nodes[a.Lower].Alive) {
				t.Fatal("alive arc with dead endpoint")
			}
		}
	}
}

// TestDeserializeFuzz: random truncations and corruptions of a valid
// payload must return errors, never panic or produce an invalid
// complex.
func TestDeserializeFuzz(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(13, 2))
	ms.Simplify(SimplifyOptions{Threshold: 0.1})
	payload := ms.Compact().Serialize()
	rng := rand.New(rand.NewSource(5))

	for trial := 0; trial < 200; trial++ {
		mutated := append([]byte(nil), payload...)
		switch trial % 3 {
		case 0: // truncate
			mutated = mutated[:rng.Intn(len(mutated))]
		case 1: // flip bytes
			for k := 0; k < 4; k++ {
				mutated[rng.Intn(len(mutated))] ^= byte(1 + rng.Intn(255))
			}
		case 2: // truncate and flip
			mutated = mutated[:1+rng.Intn(len(mutated)-1)]
			mutated[rng.Intn(len(mutated))] ^= 0xff
		}
		func() {
			defer func() {
				if p := recover(); p != nil {
					t.Fatalf("trial %d: Deserialize panicked: %v", trial, p)
				}
			}()
			back, err := Deserialize(mutated)
			if err == nil && back != nil {
				// A lucky mutation may still parse (e.g. flipped float
				// bits); the result must at least be structurally valid.
				if vErr := back.Validate(); vErr != nil {
					t.Fatalf("trial %d: corrupted payload parsed into invalid complex: %v", trial, vErr)
				}
			}
		}()
	}
}

// TestGlueCommutes: gluing A onto B and B onto A (then comparing alive
// content) must agree — the merged complex is independent of merge
// order.
func TestGlueCommutes(t *testing.T) {
	vol := synth.Random(grid.Dims{12, 10, 8}, 41)
	_, blocksAB := computeBlocks(t, vol, 2, 0.05)
	_, blocksBA := computeBlocks(t, vol, 2, 0.05)

	ab := blocksAB[0]
	ab.Glue(blocksAB[1])
	ba := blocksBA[1]
	ba.Glue(blocksBA[0])

	an, aa := ab.AliveCounts()
	bn, ba2 := ba.AliveCounts()
	if an != bn || aa != ba2 {
		t.Fatalf("glue order changed content: %v/%d vs %v/%d", an, aa, bn, ba2)
	}
	for i := range ab.Nodes {
		n := &ab.Nodes[i]
		if !n.Alive {
			continue
		}
		if _, ok := ba.NodeAt(n.Cell); !ok {
			t.Fatalf("node at cell %d present in A·B but not B·A", n.Cell)
		}
	}
}

// TestCompactPreservesContent: compaction must not change the alive
// complex, its serialization size, or its hierarchy.
func TestCompactPreservesContent(t *testing.T) {
	ms := traceVolume(t, synth.Random(grid.Dims{10, 9, 8}, 53))
	ms.Simplify(SimplifyOptions{Threshold: 0.2})
	compact := ms.Compact()
	wn, wa := ms.AliveCounts()
	gn, ga := compact.AliveCounts()
	if wn != gn || wa != ga {
		t.Fatalf("compaction changed counts: %v/%d -> %v/%d", wn, wa, gn, ga)
	}
	if len(compact.Hierarchy) != len(ms.Hierarchy) {
		t.Fatal("compaction lost hierarchy")
	}
	if err := compact.Validate(); err != nil {
		t.Fatal(err)
	}
	// Geometry is preserved per arc (same flattened total).
	var wantLen, gotLen int64
	for i := range ms.Arcs {
		if ms.Arcs[i].Alive {
			wantLen += int64(ms.GeomLen(ms.Arcs[i].Geom))
		}
	}
	for i := range compact.Arcs {
		if compact.Arcs[i].Alive {
			gotLen += int64(compact.GeomLen(compact.Arcs[i].Geom))
		}
	}
	if wantLen != gotLen {
		t.Fatalf("compaction changed total geometry: %d -> %d", wantLen, gotLen)
	}
}
