package mscomplex

import (
	"encoding/binary"
	"fmt"

	"parms/internal/grid"
)

// Serialization format (little-endian):
//
//	magic   u32 "MSC2"
//	region  u32 count, then u32 block ids
//	nodes   u32 count, then per node:
//	          cell u64, index u8, value f32(bits), maxVert i64,
//	          owners u16 count + u32 ids
//	geoms   u32 count, then per geometry object (children precede
//	        parents):
//	          kind u8 (0 = leaf, 1 = composite)
//	          leaf:      u32 cell count + u64 addresses
//	          composite: u16 part count + per part u32 id, u8 reversed
//	arcs    u32 count, then per arc:
//	          upper u32, lower u32 (node slots), geom u32 (geom slot)
//	hierarchy u32 count, then per cancellation:
//	          persistence f32, upper cell u64, lower cell u64,
//	          upper value f32, lower value f32,
//	          arcs removed u32, arcs created u32
//
// Only alive nodes, alive arcs and the geometry objects they reference
// are written. Geometry objects shared by several arcs (the references
// created by cancellations, section IV-E) are stored exactly once — the
// sharing is what keeps output sizes near the paper's, rather than the
// exponentially larger flattened walks. The cancellation hierarchy
// travels with the complex so the multi-resolution persistence curve
// survives merging and storage.
const serialMagic = 0x3243534d // "MSC2"

// Serialize encodes the alive part of the complex for communication or
// storage and returns the byte payload.
func (c *Complex) Serialize() []byte {
	nodeSlot := make([]int32, len(c.Nodes))
	for i := range nodeSlot {
		nodeSlot[i] = -1
	}
	var w writer
	w.u32(serialMagic)
	w.u32(uint32(len(c.Region)))
	for _, b := range c.Region {
		w.u32(uint32(b))
	}
	alive := 0
	for i := range c.Nodes {
		if c.Nodes[i].Alive {
			nodeSlot[i] = int32(alive)
			alive++
		}
	}
	w.u32(uint32(alive))
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Alive {
			continue
		}
		w.u64(uint64(n.Cell))
		w.u8(n.Index)
		w.f32(n.Value)
		w.u64(uint64(n.MaxVert))
		w.u16(uint16(len(n.Owners)))
		for _, o := range n.Owners {
			w.u32(uint32(o))
		}
	}

	// Geometry objects reachable from alive arcs, children before
	// parents so the reader can resolve references in one pass.
	geomSlot := make(map[GeomID]uint32)
	var geomOrder []GeomID
	var visit func(g GeomID)
	visit = func(g GeomID) {
		if _, ok := geomSlot[g]; ok {
			return
		}
		for _, p := range c.Geoms[g].Parts {
			visit(p.ID)
		}
		geomSlot[g] = uint32(len(geomOrder))
		geomOrder = append(geomOrder, g)
	}
	arcCount := 0
	for i := range c.Arcs {
		if c.Arcs[i].Alive {
			arcCount++
			visit(c.Arcs[i].Geom)
		}
	}
	w.u32(uint32(len(geomOrder)))
	for _, g := range geomOrder {
		geom := &c.Geoms[g]
		if geom.Parts == nil {
			w.u8(0)
			w.u32(uint32(len(geom.Cells)))
			for _, cell := range geom.Cells {
				w.u64(uint64(cell))
			}
		} else {
			w.u8(1)
			w.u16(uint16(len(geom.Parts)))
			for _, p := range geom.Parts {
				w.u32(geomSlot[p.ID])
				if p.Reversed {
					w.u8(1)
				} else {
					w.u8(0)
				}
			}
		}
	}

	w.u32(uint32(arcCount))
	for i := range c.Arcs {
		a := &c.Arcs[i]
		if !a.Alive {
			continue
		}
		w.u32(uint32(nodeSlot[a.Upper]))
		w.u32(uint32(nodeSlot[a.Lower]))
		w.u32(geomSlot[a.Geom])
	}

	w.u32(uint32(len(c.Hierarchy)))
	for _, h := range c.Hierarchy {
		w.f32(h.Persistence)
		w.u64(uint64(h.UpperCell))
		w.u64(uint64(h.LowerCell))
		w.f32(h.UpperValue)
		w.f32(h.LowerValue)
		w.u32(uint32(h.ArcsRemoved))
		w.u32(uint32(h.ArcsCreated))
	}
	c.Work.BytesCoded += int64(len(w.buf))
	return w.buf
}

// Deserialize decodes a serialized complex. Every count is validated
// against the remaining payload before anything is allocated, so a
// corrupted or truncated payload returns an error instead of attempting
// an enormous allocation.
func Deserialize(data []byte) (*Complex, error) {
	r := reader{buf: data}
	if r.u32() != serialMagic {
		return nil, fmt.Errorf("mscomplex: bad magic")
	}
	nRegion := int(r.u32())
	if !r.fits(nRegion, 4) {
		return nil, fmt.Errorf("mscomplex: region count %d exceeds payload", nRegion)
	}
	region := make([]int32, nRegion)
	for i := range region {
		region[i] = int32(r.u32())
	}
	c := New(region)
	nNodes := int(r.u32())
	if !r.fits(nNodes, 8+1+4+8+2) {
		return nil, fmt.Errorf("mscomplex: node count %d exceeds payload", nNodes)
	}
	ids := make([]NodeID, nNodes)
	for i := 0; i < nNodes; i++ {
		var n Node
		n.Cell = grid.Addr(r.u64())
		n.Index = r.u8()
		n.Value = r.f32()
		n.MaxVert = int64(r.u64())
		nOwners := int(r.u16())
		if !r.fits(nOwners, 4) {
			return nil, fmt.Errorf("mscomplex: owner count %d exceeds payload", nOwners)
		}
		n.Owners = make([]int32, nOwners)
		for j := range n.Owners {
			n.Owners[j] = int32(r.u32())
		}
		if r.err != nil {
			return nil, r.err
		}
		if n.Index > 3 {
			return nil, fmt.Errorf("mscomplex: node %d has index %d", i, n.Index)
		}
		if _, dup := c.NodeAt(n.Cell); dup {
			return nil, fmt.Errorf("mscomplex: duplicate node at cell %d", n.Cell)
		}
		ids[i] = c.AddNode(n)
	}

	nGeoms := int(r.u32())
	if !r.fits(nGeoms, 1) {
		return nil, fmt.Errorf("mscomplex: geometry count %d exceeds payload", nGeoms)
	}
	geomIDs := make([]GeomID, nGeoms)
	for i := 0; i < nGeoms; i++ {
		switch kind := r.u8(); kind {
		case 0:
			nCells := int(r.u32())
			if !r.fits(nCells, 8) {
				return nil, fmt.Errorf("mscomplex: geometry cell count %d exceeds payload", nCells)
			}
			cells := make([]grid.Addr, nCells)
			for j := range cells {
				cells[j] = grid.Addr(r.u64())
			}
			geomIDs[i] = c.AddLeafGeom(cells)
		case 1:
			nParts := int(r.u16())
			if !r.fits(nParts, 5) {
				return nil, fmt.Errorf("mscomplex: geometry part count %d exceeds payload", nParts)
			}
			parts := make([]GeomPart, nParts)
			for j := range parts {
				slot := int(r.u32())
				rev := r.u8() == 1
				if slot >= i {
					return nil, fmt.Errorf("mscomplex: geometry %d references later object %d", i, slot)
				}
				parts[j] = GeomPart{ID: geomIDs[slot], Reversed: rev}
			}
			geomIDs[i] = c.AddCompositeGeom(parts)
		default:
			return nil, fmt.Errorf("mscomplex: unknown geometry kind %d", kind)
		}
	}

	nArcs := int(r.u32())
	if !r.fits(nArcs, 12) {
		return nil, fmt.Errorf("mscomplex: arc count %d exceeds payload", nArcs)
	}
	for i := 0; i < nArcs; i++ {
		upper := int(r.u32())
		lower := int(r.u32())
		geomSlot := int(r.u32())
		if r.err != nil {
			return nil, r.err
		}
		if upper >= nNodes || lower >= nNodes {
			return nil, fmt.Errorf("mscomplex: arc %d references node out of range", i)
		}
		if geomSlot >= nGeoms {
			return nil, fmt.Errorf("mscomplex: arc %d references geometry out of range", i)
		}
		if c.Nodes[ids[upper]].Index != c.Nodes[ids[lower]].Index+1 {
			return nil, fmt.Errorf("mscomplex: arc %d connects index %d to %d",
				i, c.Nodes[ids[upper]].Index, c.Nodes[ids[lower]].Index)
		}
		c.AddArc(ids[upper], ids[lower], geomIDs[geomSlot])
	}

	nHier := int(r.u32())
	if !r.fits(nHier, 36) {
		return nil, fmt.Errorf("mscomplex: hierarchy count %d exceeds payload", nHier)
	}
	if r.err == nil {
		c.Hierarchy = make([]Cancellation, 0, nHier)
		for i := 0; i < nHier; i++ {
			c.Hierarchy = append(c.Hierarchy, Cancellation{
				Persistence: r.f32(),
				UpperCell:   grid.Addr(r.u64()),
				LowerCell:   grid.Addr(r.u64()),
				UpperValue:  r.f32(),
				LowerValue:  r.f32(),
				ArcsRemoved: int(r.u32()),
				ArcsCreated: int(r.u32()),
			})
		}
	}
	if r.err != nil {
		return nil, r.err
	}
	c.Work.BytesCoded += int64(len(data))
	return c, nil
}

// SerializedSize returns the exact number of bytes Serialize would emit,
// without building the payload.
func (c *Complex) SerializedSize() int64 {
	size := int64(4 + 4 + 4*len(c.Region) + 4)
	for i := range c.Nodes {
		n := &c.Nodes[i]
		if !n.Alive {
			continue
		}
		size += 8 + 1 + 4 + 8 + 2 + 4*int64(len(n.Owners))
	}
	size += 4 // geometry count
	seen := make(map[GeomID]bool)
	var visit func(g GeomID)
	visit = func(g GeomID) {
		if seen[g] {
			return
		}
		seen[g] = true
		geom := &c.Geoms[g]
		if geom.Parts == nil {
			size += 1 + 4 + 8*int64(len(geom.Cells))
			return
		}
		size += 1 + 2 + 5*int64(len(geom.Parts))
		for _, p := range geom.Parts {
			visit(p.ID)
		}
	}
	size += 4 // arc count
	for i := range c.Arcs {
		if !c.Arcs[i].Alive {
			continue
		}
		visit(c.Arcs[i].Geom)
		size += 4 + 4 + 4
	}
	size += 4 + 36*int64(len(c.Hierarchy))
	return size
}

type writer struct{ buf []byte }

func (w *writer) u8(v uint8)   { w.buf = append(w.buf, v) }
func (w *writer) u16(v uint16) { w.buf = binary.LittleEndian.AppendUint16(w.buf, v) }
func (w *writer) u32(v uint32) { w.buf = binary.LittleEndian.AppendUint32(w.buf, v) }
func (w *writer) u64(v uint64) { w.buf = binary.LittleEndian.AppendUint64(w.buf, v) }
func (w *writer) f32(v float32) {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, f32bits(v))
}

type reader struct {
	buf []byte
	off int
	err error
}

func (r *reader) take(n int) []byte {
	if r.err != nil || r.off+n > len(r.buf) {
		if r.err == nil {
			r.err = fmt.Errorf("mscomplex: truncated payload at offset %d", r.off)
		}
		return make([]byte, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// fits reports whether count elements of at least minSize bytes each
// could still be present in the remaining payload.
func (r *reader) fits(count, minSize int) bool {
	return r.err == nil && count >= 0 && count <= (len(r.buf)-r.off)/minSize
}

func (r *reader) u8() uint8   { return r.take(1)[0] }
func (r *reader) u16() uint16 { return binary.LittleEndian.Uint16(r.take(2)) }
func (r *reader) u32() uint32 { return binary.LittleEndian.Uint32(r.take(4)) }
func (r *reader) u64() uint64 { return binary.LittleEndian.Uint64(r.take(8)) }
func (r *reader) f32() float32 {
	return f32frombits(binary.LittleEndian.Uint32(r.take(4)))
}
