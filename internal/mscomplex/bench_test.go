package mscomplex

import (
	"fmt"
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/synth"
)

func benchField(b *testing.B, n int, features float64) *gradient.Field {
	b.Helper()
	vol := synth.Sinusoid(n, features)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{n - 1, n - 1, n - 1}}
	return gradient.Compute(cube.New(vol.Dims, block, vol), nil)
}

func BenchmarkTrace32(b *testing.B) {
	f := benchField(b, 33, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := FromField(f, nil, TraceOptions{})
		if res.Complex.NumAliveNodes() == 0 {
			b.Fatal("no nodes")
		}
	}
}

// BenchmarkTracePooled measures the pointer-jumping tracer under the
// intra-rank worker pool at several widths. The traced arcs are
// byte-identical across widths; this tracks sweep and dispatch cost.
func BenchmarkTracePooled(b *testing.B) {
	f := benchField(b, 33, 4)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var pool *kernel.Pool
			if w > 1 {
				pool = kernel.New(w)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := FromFieldPooled(f, nil, TraceOptions{}, pool)
				if res.Kernel.Sweeps == 0 {
					b.Fatal("no sweeps")
				}
			}
		})
	}
}

func BenchmarkSimplify32(b *testing.B) {
	f := benchField(b, 33, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		ms := FromField(f, nil, TraceOptions{}).Complex
		b.StartTimer()
		ms.Simplify(SimplifyOptions{Threshold: 0.02})
	}
}

func BenchmarkSerialize32(b *testing.B) {
	ms := FromField(benchField(b, 33, 4), nil, TraceOptions{}).Complex
	ms.Simplify(SimplifyOptions{Threshold: 0.02})
	compact := ms.Compact()
	b.ReportAllocs()
	b.ResetTimer()
	var bytes int64
	for i := 0; i < b.N; i++ {
		payload := compact.Serialize()
		bytes += int64(len(payload))
	}
	b.SetBytes(bytes / int64(b.N))
}

func BenchmarkDeserialize32(b *testing.B) {
	ms := FromField(benchField(b, 33, 4), nil, TraceOptions{}).Complex
	ms.Simplify(SimplifyOptions{Threshold: 0.02})
	payload := ms.Compact().Serialize()
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Deserialize(payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGlue8Blocks(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	dec, err := grid.Decompose(vol.Dims, 8)
	if err != nil {
		b.Fatal(err)
	}
	payloads := make([][]byte, dec.NumBlocks())
	for i, blk := range dec.Blocks {
		sub := vol.SubVolume(blk.Lo, blk.Hi)
		f := gradient.Compute(cube.New(vol.Dims, blk, sub), dec)
		ms := FromField(f, dec, TraceOptions{}).Complex
		ms.Simplify(SimplifyOptions{Threshold: 0.02})
		payloads[i] = ms.Compact().Serialize()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root, err := Deserialize(payloads[0])
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range payloads[1:] {
			other, err := Deserialize(p)
			if err != nil {
				b.Fatal(err)
			}
			root.Glue(other)
		}
		root.Simplify(SimplifyOptions{Threshold: 0.02})
	}
}
