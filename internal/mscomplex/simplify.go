package mscomplex

import (
	"container/heap"
)

// SimplifyOptions controls persistence-based simplification.
type SimplifyOptions struct {
	// Threshold is the maximum persistence of a cancellation. Pairs
	// with strictly greater persistence survive.
	Threshold float32
	// MaxFanout skips a cancellation when it would create more than
	// this many new arcs (a safeguard against quadratic blowup in
	// pathological data); 0 means the default (100000).
	MaxFanout int
}

// SimplifyStats reports what a Simplify call did.
type SimplifyStats struct {
	Cancellations int
	ArcsRemoved   int
	ArcsCreated   int
	SkippedFanout int
}

type candidate struct {
	pers      float32
	upperCell uint64
	lowerCell uint64
	arc       ArcID
}

type candidateHeap []candidate

func (h candidateHeap) Len() int { return len(h) }
func (h candidateHeap) Less(i, j int) bool {
	a, b := h[i], h[j]
	if a.pers != b.pers {
		return a.pers < b.pers
	}
	if a.upperCell != b.upperCell {
		return a.upperCell < b.upperCell
	}
	if a.lowerCell != b.lowerCell {
		return a.lowerCell < b.lowerCell
	}
	return a.arc < b.arc
}
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(candidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Simplify repeatedly cancels the lowest-persistence valid pair of
// critical nodes until no cancellable pair with persistence at or below
// the threshold remains. A pair is cancellable when its two nodes are
// connected by exactly one arc and neither node lies on a boundary
// shared with blocks outside the complex's region (section IV-E: arcs
// with boundary nodes are never considered).
func (c *Complex) Simplify(opts SimplifyOptions) SimplifyStats {
	maxFanout := opts.MaxFanout
	if maxFanout <= 0 {
		maxFanout = 100000
	}
	// A new simplification invalidates any redo history beyond the
	// current hierarchy position (like editing after an undo).
	c.undo = c.undo[:c.applied]
	var stats SimplifyStats

	boundary := make([]bool, len(c.Nodes))
	for i := range c.Nodes {
		if c.Nodes[i].Alive {
			boundary[i] = c.IsBoundaryNode(NodeID(i))
		}
	}

	h := &candidateHeap{}
	push := func(a ArcID) {
		arc := &c.Arcs[a]
		if !arc.Alive {
			return
		}
		if boundary[arc.Upper] || boundary[arc.Lower] {
			return
		}
		p := c.Persistence(a)
		if p > opts.Threshold {
			return
		}
		heap.Push(h, candidate{
			pers:      p,
			upperCell: uint64(c.Nodes[arc.Upper].Cell),
			lowerCell: uint64(c.Nodes[arc.Lower].Cell),
			arc:       a,
		})
	}
	for a := range c.Arcs {
		push(ArcID(a))
	}

	var arcBuf []ArcID
	for h.Len() > 0 {
		cand := heap.Pop(h).(candidate)
		arc := &c.Arcs[cand.arc]
		if !arc.Alive {
			continue
		}
		u, v := arc.Lower, arc.Upper
		if c.Multiplicity(u, v) != 1 {
			continue // connected by more than one arc: not cancellable
		}
		// Gather the surviving neighborhood before surgery.
		// ups: index d+1 neighbors of u other than v.
		// downs: index d neighbors of v other than u.
		var ups, downs []ArcID
		arcBuf = arcBuf[:0]
		for _, a := range c.ArcsOf(u, arcBuf) {
			if other := c.OtherEnd(a, u); other != v {
				if c.Arcs[a].Upper == u {
					continue // u is the upper end: neighbor has index d-1
				}
				ups = append(ups, a)
			}
		}
		arcBuf = arcBuf[:0]
		for _, a := range c.ArcsOf(v, arcBuf) {
			if other := c.OtherEnd(a, v); other != u {
				if c.Arcs[a].Lower == v {
					continue // v is the lower end: neighbor has index d+2
				}
				downs = append(downs, a)
			}
		}
		if len(ups)*len(downs) > maxFanout {
			stats.SkippedFanout++
			continue
		}

		// Remove the cancelled pair and every arc touching it,
		// recording what changes so the hierarchy can be navigated
		// back (hierarchy.go).
		rec := undoRecord{lower: u, upper: v}
		arcBuf = arcBuf[:0]
		for _, a := range c.ArcsOf(u, arcBuf) {
			c.Arcs[a].Alive = false
			rec.removedArcs = append(rec.removedArcs, a)
		}
		arcBuf = arcBuf[:0]
		for _, a := range c.ArcsOf(v, arcBuf) {
			c.Arcs[a].Alive = false
			rec.removedArcs = append(rec.removedArcs, a)
		}
		removed := len(rec.removedArcs)
		c.Nodes[u].Alive = false
		c.Nodes[v].Alive = false
		c.Work.ArcsTouched += int64(removed)

		// Reconnect: every upper neighbor q of u to every lower
		// neighbor p of v, with geometry q→u, u→v (reversed arc), v→p.
		// Parallel records between one (q, p) pair are clamped at two:
		// multiplicity never decreases while both endpoints live, so
		// "≥ 2" blocks cancellation identically however large it is.
		created := 0
		pairCount := make(map[[2]NodeID]int)
		countedQ := make(map[NodeID]bool)
		for _, qa := range ups {
			q := c.Arcs[qa].Upper
			if !countedQ[q] {
				countedQ[q] = true
				arcBuf = arcBuf[:0]
				for _, a := range c.ArcsOf(q, arcBuf) {
					if c.Arcs[a].Upper == q {
						pairCount[[2]NodeID{q, c.Arcs[a].Lower}]++
					}
				}
			}
			for _, pa := range downs {
				p := c.Arcs[pa].Lower
				key := [2]NodeID{q, p}
				if pairCount[key] >= 2 {
					continue
				}
				pairCount[key]++
				geom := c.AddCompositeGeom([]GeomPart{
					{ID: c.Arcs[qa].Geom},
					{ID: arc.Geom, Reversed: true},
					{ID: c.Arcs[pa].Geom},
				})
				na := c.AddArc(q, p, geom)
				rec.createdArcs = append(rec.createdArcs, na)
				created++
				push(na)
			}
		}

		c.undo = append(c.undo, rec)
		c.applied = len(c.undo)
		c.Hierarchy = append(c.Hierarchy, Cancellation{
			Persistence: cand.pers,
			UpperCell:   c.Nodes[v].Cell,
			LowerCell:   c.Nodes[u].Cell,
			UpperValue:  c.Nodes[v].Value,
			LowerValue:  c.Nodes[u].Value,
			ArcsRemoved: removed,
			ArcsCreated: created,
		})
		c.Work.Cancellations++
		stats.Cancellations++
		stats.ArcsRemoved += removed
		stats.ArcsCreated += created
	}
	return stats
}

// LowestCancellable returns the lowest persistence among currently
// cancellable pairs, and false if none exists. Tests use it to verify
// that Simplify left nothing below its threshold.
func (c *Complex) LowestCancellable() (float32, bool) {
	best := float32(0)
	found := false
	for a := range c.Arcs {
		arc := &c.Arcs[a]
		if !arc.Alive {
			continue
		}
		if c.IsBoundaryNode(arc.Upper) || c.IsBoundaryNode(arc.Lower) {
			continue
		}
		if c.Multiplicity(arc.Lower, arc.Upper) != 1 {
			continue
		}
		p := c.Persistence(ArcID(a))
		if !found || p < best {
			best, found = p, true
		}
	}
	return best, found
}
