package mscomplex

// Multi-resolution navigation. Repeated cancellation builds a hierarchy
// of MS complexes (section III-C); the paper's analysis pipeline
// (Figure 1) explores features "at multiple topological scales" by
// moving through that hierarchy interactively, without recomputing
// anything. Because cancellation only flips Alive flags (elements are
// physically removed by Compact, not Simplify), every cancellation is
// reversible: Refine undoes the most recent one, Reapply redoes it, and
// SetResolution walks to an arbitrary level.
//
// Compact drops the dead elements — the paper's memory cleanup that
// keeps "all but the coarsest levels" out of memory — after which the
// compacted complex starts a fresh hierarchy and cannot be refined past
// its own history.

// undoRecord stores what a cancellation changed, enough to replay it in
// either direction.
type undoRecord struct {
	lower, upper NodeID
	removedArcs  []ArcID
	createdArcs  []ArcID
}

// Resolution returns the number of cancellations currently applied
// (the complex's position in its hierarchy).
func (c *Complex) Resolution() int { return c.applied }

// MaxResolution returns the deepest level reached so far; levels in
// [Resolution, MaxResolution) can be re-applied without recomputation.
func (c *Complex) MaxResolution() int { return len(c.undo) }

// Refine undoes the most recently applied cancellation, restoring the
// cancelled node pair and its arcs and removing the arcs the
// cancellation created. It reports whether a level was undone (false at
// the finest available resolution, or on a complex whose fine levels
// were dropped by Compact or serialization).
func (c *Complex) Refine() bool {
	if c.applied == 0 || c.applied > len(c.undo) {
		return false
	}
	rec := &c.undo[c.applied-1]
	for _, a := range rec.createdArcs {
		c.Arcs[a].Alive = false
	}
	c.Nodes[rec.lower].Alive = true
	c.Nodes[rec.upper].Alive = true
	for _, a := range rec.removedArcs {
		c.reviveArc(a)
	}
	c.applied--
	c.Work.ArcsTouched += int64(len(rec.createdArcs) + len(rec.removedArcs))
	return true
}

// Reapply redoes the next recorded cancellation after a Refine. It
// reports whether a level was re-applied.
func (c *Complex) Reapply() bool {
	if c.applied >= len(c.undo) {
		return false
	}
	rec := &c.undo[c.applied]
	for _, a := range rec.removedArcs {
		c.Arcs[a].Alive = false
	}
	c.Nodes[rec.lower].Alive = false
	c.Nodes[rec.upper].Alive = false
	for _, a := range rec.createdArcs {
		c.reviveArc(a)
	}
	c.applied++
	c.Work.ArcsTouched += int64(len(rec.createdArcs) + len(rec.removedArcs))
	return true
}

// SetResolution navigates to the given hierarchy level: 0 is the finest
// available state, MaxResolution() the coarsest computed so far. It
// returns the level actually reached (clamped to what the history
// allows).
func (c *Complex) SetResolution(level int) int {
	if level < 0 {
		level = 0
	}
	if level > len(c.undo) {
		level = len(c.undo)
	}
	for c.applied > level && c.Refine() {
	}
	for c.applied < level && c.Reapply() {
	}
	return c.applied
}

// reviveArc marks an arc alive again and guarantees it is present in
// both endpoints' incidence lists (lazy pruning may have dropped it
// while it was dead).
func (c *Complex) reviveArc(a ArcID) {
	arc := &c.Arcs[a]
	arc.Alive = true
	c.ensureListed(arc.Upper, a)
	c.ensureListed(arc.Lower, a)
}

func (c *Complex) ensureListed(n NodeID, a ArcID) {
	node := &c.Nodes[n]
	for _, existing := range node.arcs {
		if existing == a {
			return
		}
	}
	node.arcs = append(node.arcs, a)
}
