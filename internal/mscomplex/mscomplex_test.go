package mscomplex

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/synth"
)

func fullBlock(dims grid.Dims) grid.Block {
	return grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{dims[0] - 1, dims[1] - 1, dims[2] - 1}}
}

func traceVolume(t *testing.T, vol *grid.Volume) *Complex {
	t.Helper()
	dims := vol.Dims
	c := cube.New(dims, fullBlock(dims), vol)
	f := gradient.Compute(c, nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid gradient: %v", err)
	}
	res := FromField(f, nil, TraceOptions{})
	if err := res.Complex.Validate(); err != nil {
		t.Fatalf("invalid complex: %v", err)
	}
	return res.Complex
}

func TestRampComplex(t *testing.T) {
	ms := traceVolume(t, synth.Ramp(grid.Dims{8, 8, 8}))
	nodes, arcs := ms.AliveCounts()
	if nodes != [4]int{1, 0, 0, 0} || arcs != 0 {
		t.Fatalf("ramp complex has nodes %v arcs %d, want a single minimum", nodes, arcs)
	}
}

func TestSinusoidComplexStructure(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(17, 2))
	if euler := ms.EulerCharacteristic(); euler != 1 {
		t.Fatalf("Euler characteristic %d, want 1", euler)
	}
	nodes, arcs := ms.AliveCounts()
	if arcs == 0 {
		t.Fatal("no arcs traced")
	}
	// Morse inequalities: c0 ≥ b0 = 1; weak form c1 ≥ c0 - 1 etc.
	if nodes[0] < 1 {
		t.Fatalf("no minima: %v", nodes)
	}
	if nodes[1] < nodes[0]-1 {
		t.Fatalf("Morse inequality c1 ≥ c0-1 violated: %v", nodes)
	}
	if nodes[2] < nodes[3]-1 {
		t.Fatalf("Morse inequality c2 ≥ c3-1 violated: %v", nodes)
	}
}

// TestExtremumArcCounts checks the structural property of the discrete
// 1-skeleton: every 1-saddle has exactly two descending V-paths (its two
// endpoint vertices each lead to exactly one minimum), so it carries
// exactly two saddle-minimum arcs; dually every maximum has exactly six
// quad facets but each either dies or reaches a 2-saddle.
func TestExtremumArcCounts(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(13, 2))
	var buf []ArcID
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if !n.Alive || n.Index != 1 {
			continue
		}
		down := 0
		buf = buf[:0]
		for _, a := range ms.ArcsOf(NodeID(i), buf) {
			if ms.Arcs[a].Upper == NodeID(i) {
				down++
			}
		}
		if down != 2 {
			t.Fatalf("1-saddle %d has %d descending arcs, want 2", i, down)
		}
	}
}

func TestArcGeometryEndpoints(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(13, 2))
	for i := range ms.Arcs {
		a := &ms.Arcs[i]
		if !a.Alive {
			continue
		}
		cells := ms.FlattenGeom(a.Geom)
		if len(cells) < 2 {
			t.Fatalf("arc %d geometry too short: %d", i, len(cells))
		}
		if cells[0] != ms.Nodes[a.Upper].Cell {
			t.Fatalf("arc %d geometry does not start at upper node", i)
		}
		if cells[len(cells)-1] != ms.Nodes[a.Lower].Cell {
			t.Fatalf("arc %d geometry does not end at lower node", i)
		}
	}
}

func TestSimplifyReducesAndPreservesEuler(t *testing.T) {
	ms := traceVolume(t, synth.Random(grid.Dims{10, 10, 10}, 5))
	before := ms.NumAliveNodes()
	eulerBefore := ms.EulerCharacteristic()
	stats := ms.Simplify(SimplifyOptions{Threshold: 0.25})
	if stats.Cancellations == 0 {
		t.Fatal("random field at threshold 0.25 should cancel something")
	}
	if err := ms.Validate(); err != nil {
		t.Fatalf("invalid after simplify: %v", err)
	}
	after := ms.NumAliveNodes()
	if after != before-2*stats.Cancellations {
		t.Fatalf("node count %d, want %d", after, before-2*stats.Cancellations)
	}
	if ms.EulerCharacteristic() != eulerBefore {
		t.Fatalf("Euler characteristic changed: %d -> %d", eulerBefore, ms.EulerCharacteristic())
	}
	if low, ok := ms.LowestCancellable(); ok && low <= 0.25 {
		t.Fatalf("cancellable pair with persistence %v remains below threshold", low)
	}
}

func TestSimplifyFullCollapsesToMinimum(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(13, 2))
	lo, hi := float32(-1), float32(1)
	ms.Simplify(SimplifyOptions{Threshold: (hi - lo) * 2})
	nodes, arcs := ms.AliveCounts()
	total := nodes[0] + nodes[1] + nodes[2] + nodes[3]
	// Full simplification of a function on a ball leaves one minimum.
	if total != 1 || nodes[0] != 1 || arcs != 0 {
		t.Fatalf("full simplification left nodes %v arcs %d", nodes, arcs)
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	ms := traceVolume(t, synth.Sinusoid(13, 2))
	ms.Simplify(SimplifyOptions{Threshold: 0.1})
	payload := ms.Serialize()
	if int64(len(payload)) != ms.SerializedSize() {
		t.Fatalf("SerializedSize %d != payload %d", ms.SerializedSize(), len(payload))
	}
	back, err := Deserialize(payload)
	if err != nil {
		t.Fatal(err)
	}
	wantNodes, wantArcs := ms.AliveCounts()
	gotNodes, gotArcs := back.AliveCounts()
	if wantNodes != gotNodes || wantArcs != gotArcs {
		t.Fatalf("round trip mismatch: %v/%d vs %v/%d", wantNodes, wantArcs, gotNodes, gotArcs)
	}
	for i := range ms.Nodes {
		if !ms.Nodes[i].Alive {
			continue
		}
		id, ok := back.NodeAt(ms.Nodes[i].Cell)
		if !ok {
			t.Fatalf("node at cell %d lost in round trip", ms.Nodes[i].Cell)
		}
		if back.Nodes[id].Index != ms.Nodes[i].Index || back.Nodes[id].Value != ms.Nodes[i].Value {
			t.Fatalf("node %d attributes changed in round trip", i)
		}
	}
}

// computeBlocks builds the per-block simplified complexes of a volume.
func computeBlocks(t *testing.T, vol *grid.Volume, nblocks int, threshold float32) (*grid.Decomposition, []*Complex) {
	t.Helper()
	dec, err := grid.Decompose(vol.Dims, nblocks)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]*Complex, dec.NumBlocks())
	for i, b := range dec.Blocks {
		sub := vol.SubVolume(b.Lo, b.Hi)
		f := gradient.Compute(cube.New(vol.Dims, b, sub), dec)
		res := FromField(f, dec, TraceOptions{})
		res.Complex.Simplify(SimplifyOptions{Threshold: threshold})
		out[i] = res.Complex.Compact()
	}
	return dec, out
}

func TestGlueFullMergeMatchesSerial(t *testing.T) {
	vol := synth.Sinusoid(17, 2)

	// Serial reference, simplified at the same threshold.
	serial := traceVolume(t, vol)
	const threshold = 0.3
	serial.Simplify(SimplifyOptions{Threshold: threshold})
	wantNodes, _ := serial.AliveCounts()

	for _, nblocks := range []int{2, 4, 8} {
		_, blocks := computeBlocks(t, vol, nblocks, threshold)
		root := blocks[0]
		for _, other := range blocks[1:] {
			root.Glue(other)
		}
		if err := root.Validate(); err != nil {
			t.Fatalf("%d blocks: invalid after glue: %v", nblocks, err)
		}
		if euler := root.EulerCharacteristic(); euler != 1 {
			t.Fatalf("%d blocks: Euler characteristic %d after glue, want 1", nblocks, euler)
		}
		root.Simplify(SimplifyOptions{Threshold: threshold})
		gotNodes, _ := root.AliveCounts()
		if gotNodes != wantNodes {
			t.Errorf("%d blocks: merged node counts %v, serial %v", nblocks, gotNodes, wantNodes)
		}
		// Stability (section V-A): extrema with non-singular Hessians
		// are preserved at the same cells; saddles may shift along the
		// sinusoid's flat zero-planes, but their values are preserved.
		for i := range serial.Nodes {
			n := &serial.Nodes[i]
			if !n.Alive {
				continue
			}
			if n.Index == 0 || n.Index == 3 {
				if _, ok := root.NodeAt(n.Cell); !ok {
					t.Errorf("%d blocks: serial extremum at cell %d (index %d) missing after merge",
						nblocks, n.Cell, n.Index)
				}
				continue
			}
			matched := false
			for j := range root.Nodes {
				m := &root.Nodes[j]
				if m.Alive && m.Index == n.Index && absf(m.Value-n.Value) < 1e-6 {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%d blocks: no merged saddle matches serial node (index %d, value %g)",
					nblocks, n.Index, n.Value)
			}
		}
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func TestGlueDeduplicatesBoundaryNodes(t *testing.T) {
	vol := synth.Random(grid.Dims{12, 10, 8}, 3)
	_, blocks := computeBlocks(t, vol, 2, 0)
	n0 := blocks[0].NumAliveNodes()
	n1 := blocks[1].NumAliveNodes()
	shared := 0
	for i := range blocks[1].Nodes {
		if _, ok := blocks[0].NodeAt(blocks[1].Nodes[i].Cell); ok {
			shared++
		}
	}
	if shared == 0 {
		t.Fatal("expected shared boundary nodes")
	}
	blocks[0].Glue(blocks[1])
	if got, want := blocks[0].NumAliveNodes(), n0+n1-shared; got != want {
		t.Fatalf("after glue %d nodes, want %d (n0=%d n1=%d shared=%d)", got, want, n0, n1, shared)
	}
}

func TestBoundaryNodesProtected(t *testing.T) {
	vol := synth.Random(grid.Dims{12, 10, 8}, 11)
	dec, blocks := computeBlocks(t, vol, 4, 1e9)
	_ = dec
	// Even at an effectively infinite threshold, per-block
	// simplification must keep every node on a shared boundary.
	for bi, ms := range blocks {
		found := false
		for i := range ms.Nodes {
			if ms.Nodes[i].Alive && ms.IsBoundaryNode(NodeID(i)) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("block %d lost all boundary nodes", bi)
		}
		for i := range ms.Nodes {
			if ms.Nodes[i].Alive && !ms.IsBoundaryNode(NodeID(i)) && ms.Nodes[i].Index == 0 {
				// Interior minima may legitimately survive (at least one
				// must, globally); nothing to assert per block.
				_ = i
			}
		}
	}
}
