// Package vtime provides virtual clocks and a calibrated cost model for
// simulating the execution time of a distributed-memory program on a
// modeled supercomputer.
//
// The paper this repository reproduces reports wall-clock times measured
// on the IBM Blue Gene/P "Intrepid". We cannot run on that machine, so
// instead every rank of the virtual cluster (package mpsim) carries a
// Clock that advances according to a LogGP-style cost model: compute
// stages advance the clock in proportion to the actual work the
// algorithm performed (cells visited, arcs traced, cancellations
// applied, bytes serialized), and communication advances it by
// latency + per-hop cost + bytes/bandwidth over a modeled 3D torus.
// The resulting times reproduce the *shape* of the paper's scaling
// results — which stage dominates at which scale, log-log slopes, and
// crossover points — while the ranks execute the real algorithm on real
// data.
package vtime

import (
	"fmt"
	"time"
)

// Time is a virtual timestamp, measured in seconds since the start of a
// cluster run. It is a float64 rather than time.Duration because the
// model composes many sub-nanosecond per-element costs.
type Time float64

// Seconds returns t as a plain float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) }

// Duration converts t to a time.Duration, saturating on overflow.
func (t Time) Duration() time.Duration {
	return time.Duration(float64(t) * float64(time.Second))
}

func (t Time) String() string {
	return fmt.Sprintf("%.6fs", float64(t))
}

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Clock is the virtual clock of a single rank. The zero value is a
// clock at virtual time zero, ready to use.
type Clock struct {
	now Time
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Advance moves the clock forward by d seconds. Negative advances are
// ignored: virtual time never runs backwards.
func (c *Clock) Advance(d Time) {
	if d > 0 {
		c.now += d
	}
}

// AdvanceTo moves the clock forward to at least t. Used when a message
// or barrier forces this rank to wait for an event on another rank.
func (c *Clock) AdvanceTo(t Time) {
	if t > c.now {
		c.now = t
	}
}

// Reset rewinds the clock to zero (start of a new run).
func (c *Clock) Reset() { c.now = 0 }

// Work tallies the operations a rank performed during a compute stage.
// The pipeline fills one Work per stage; Machine.ComputeTime converts it
// to virtual seconds.
type Work struct {
	// CellsVisited counts refined-grid cells touched during discrete
	// gradient assignment (each cell is examined a small constant
	// number of times).
	CellsVisited int64
	// PairTests counts candidate facet/cofacet pairing tests.
	PairTests int64
	// PathSteps counts V-path tracing steps (one step = one
	// (d-cell, d+1-cell) hop, including geometry recording).
	PathSteps int64
	// Cancellations counts persistence cancellations applied.
	Cancellations int64
	// ArcsTouched counts arcs created, deleted or rewired during
	// simplification and merging.
	ArcsTouched int64
	// NodesGlued counts node insertions/deduplications during merging.
	NodesGlued int64
	// BytesCoded counts bytes serialized or deserialized.
	BytesCoded int64
	// SortedItems counts n·log n contributions from sorting, with the
	// log factor already folded in by the caller.
	SortedItems int64
	// SweepWrites counts pointer writes made by the path-compression
	// (pointer-jumping) sweeps of the tracer. They are branch-free flat
	// array updates, far cheaper per element than a PathStep.
	SweepWrites int64
}

// Add accumulates o into w.
func (w *Work) Add(o Work) {
	w.CellsVisited += o.CellsVisited
	w.PairTests += o.PairTests
	w.PathSteps += o.PathSteps
	w.Cancellations += o.Cancellations
	w.ArcsTouched += o.ArcsTouched
	w.NodesGlued += o.NodesGlued
	w.BytesCoded += o.BytesCoded
	w.SortedItems += o.SortedItems
	w.SweepWrites += o.SweepWrites
}

// Machine is a cost-model profile of the target system. All rates are
// per single rank (the paper runs in smp mode: one process per node).
type Machine struct {
	// Name identifies the profile in reports.
	Name string

	// Compute cost constants, in seconds per operation.
	CellCost   float64 // per refined-grid cell visited
	PairCost   float64 // per pairing test
	StepCost   float64 // per V-path step
	CancelCost float64 // per cancellation
	ArcCost    float64 // per arc touched
	GlueCost   float64 // per node glued
	CodeCost   float64 // per byte (de)serialized
	SortCost   float64 // per sorted item (log factor pre-folded)
	SweepCost  float64 // per pointer-jumping sweep write

	// Network constants.
	MsgLatency   float64 // end-to-end software latency per message, seconds
	HopLatency   float64 // additional latency per torus hop, seconds
	LinkBW       float64 // per-link bandwidth, bytes/second
	RecvOverhead float64 // receiver-side software overhead per message

	// Parallel filesystem constants.
	IOLatency float64 // per collective-I/O-operation latency, seconds
	NodeIOBW  float64 // per-rank I/O bandwidth cap, bytes/second
	AggIOBW   float64 // aggregate filesystem bandwidth, bytes/second
}

// BlueGeneP returns a cost profile shaped after the IBM Blue Gene/P
// "Intrepid": slow single cores (850 MHz PPC450), a fast low-latency 3D
// torus, and a shared parallel filesystem whose aggregate bandwidth is
// the I/O bottleneck at scale. Constants are calibrated so the paper's
// workloads land in the reported orders of magnitude, not to match
// absolute numbers (see DESIGN.md §2).
func BlueGeneP() *Machine {
	return &Machine{
		Name:       "BlueGeneP",
		CellCost:   260e-9,
		PairCost:   65e-9,
		StepCost:   210e-9,
		CancelCost: 3.2e-6,
		ArcCost:    420e-9,
		GlueCost:   650e-9,
		CodeCost:   5.5e-9,
		SortCost:   95e-9,
		SweepCost:  9e-9,

		MsgLatency:   3.5e-6,
		HopLatency:   100e-9,
		LinkBW:       375e6, // 3.4 Gbit/s torus links, effective
		RecvOverhead: 1.5e-6,

		IOLatency: 2.5e-3,
		NodeIOBW:  60e6,
		AggIOBW:   8e9, // shared GPFS aggregate
	}
}

// LocalMeasured returns a profile whose compute constants are all zero;
// it is used together with measured-time accounting, where the pipeline
// advances clocks by real elapsed wall time instead of modeled work.
// Network and I/O constants are kept small but non-zero so that message
// ordering is still well defined.
func LocalMeasured() *Machine {
	return &Machine{
		Name:         "LocalMeasured",
		MsgLatency:   1e-6,
		HopLatency:   10e-9,
		LinkBW:       4e9,
		RecvOverhead: 0.5e-6,
		IOLatency:    1e-4,
		NodeIOBW:     1e9,
		AggIOBW:      4e9,
	}
}

// ComputeTime converts a work tally into modeled seconds on this machine.
func (m *Machine) ComputeTime(w Work) Time {
	s := float64(w.CellsVisited)*m.CellCost +
		float64(w.PairTests)*m.PairCost +
		float64(w.PathSteps)*m.StepCost +
		float64(w.Cancellations)*m.CancelCost +
		float64(w.ArcsTouched)*m.ArcCost +
		float64(w.NodesGlued)*m.GlueCost +
		float64(w.BytesCoded)*m.CodeCost +
		float64(w.SortedItems)*m.SortCost +
		float64(w.SweepWrites)*m.SweepCost
	return Time(s)
}

// SplitParallel splits a work tally into the portion executed by the
// data-parallel kernels — per-cell batch passes and V-path sweep steps,
// which scale with the intra-rank worker pool — and the portion that is
// inherently sequential on a rank (greedy pairing decisions, sorts,
// cancellations, merge bookkeeping, serialization).
func SplitParallel(w Work) (par, seq Work) {
	par = Work{CellsVisited: w.CellsVisited, PathSteps: w.PathSteps, SweepWrites: w.SweepWrites}
	seq = w
	seq.CellsVisited = 0
	seq.PathSteps = 0
	seq.SweepWrites = 0
	return par, seq
}

// ParallelComputeTime converts a work tally into modeled seconds when
// the data-parallel portion runs on a pool of workers inside the rank.
// The sequential portion is unaffected (Amdahl's law); workers <= 1
// reduces exactly to ComputeTime. The model deliberately assumes
// perfect intra-rank scaling of the kernel portion: the deterministic
// chunk schedule has no ordering stalls, and modeled time must not
// depend on the host machine.
func (m *Machine) ParallelComputeTime(w Work, workers int) Time {
	if workers <= 1 {
		return m.ComputeTime(w)
	}
	par, seq := SplitParallel(w)
	return m.ComputeTime(seq) + Time(float64(m.ComputeTime(par))/float64(workers))
}

// MessageTime returns the modeled transfer time for a message of the
// given size traversing hops torus links.
func (m *Machine) MessageTime(bytes int, hops int) Time {
	if bytes < 0 {
		bytes = 0
	}
	if hops < 1 {
		hops = 1
	}
	s := m.MsgLatency + float64(hops)*m.HopLatency
	if m.LinkBW > 0 {
		s += float64(bytes) / m.LinkBW
	}
	return Time(s)
}

// IOTime returns the modeled duration of a collective I/O operation in
// which this rank moves rankBytes and all ranks together move totalBytes.
// The per-rank link to the I/O system and the shared aggregate bandwidth
// are both modeled; the slower constraint dominates.
func (m *Machine) IOTime(rankBytes, totalBytes int64) Time {
	perRank := 0.0
	if m.NodeIOBW > 0 {
		perRank = float64(rankBytes) / m.NodeIOBW
	}
	agg := 0.0
	if m.AggIOBW > 0 {
		agg = float64(totalBytes) / m.AggIOBW
	}
	s := m.IOLatency + perRank
	if agg > s {
		s = agg
	}
	return Time(s)
}

// Efficiency computes strong-scaling efficiency exactly as the paper
// does: the factor decrease in time divided by the factor increase in
// process count, relative to a base measurement.
func Efficiency(baseTime Time, baseProcs int, t Time, procs int) float64 {
	if t <= 0 || procs <= 0 || baseProcs <= 0 {
		return 0
	}
	return (float64(baseTime) / float64(t)) / (float64(procs) / float64(baseProcs))
}
