package vtime

import (
	"testing"
	"testing/quick"
)

func TestClockMonotonic(t *testing.T) {
	var c Clock
	c.Advance(1.5)
	c.Advance(-3) // ignored
	if c.Now() != 1.5 {
		t.Fatalf("clock %v, want 1.5", c.Now())
	}
	c.AdvanceTo(1.0) // ignored, in the past
	if c.Now() != 1.5 {
		t.Fatalf("clock %v after stale AdvanceTo", c.Now())
	}
	c.AdvanceTo(2.0)
	if c.Now() != 2.0 {
		t.Fatalf("clock %v, want 2.0", c.Now())
	}
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("clock %v after reset", c.Now())
	}
}

func TestClockNeverRewinds(t *testing.T) {
	f := func(deltas []float64) bool {
		var c Clock
		prev := Time(0)
		for _, d := range deltas {
			c.Advance(Time(d))
			if c.Now() < prev {
				return false
			}
			prev = c.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWorkAdd(t *testing.T) {
	a := Work{CellsVisited: 1, PathSteps: 2, BytesCoded: 3}
	b := Work{CellsVisited: 10, Cancellations: 5, SortedItems: 7}
	a.Add(b)
	if a.CellsVisited != 11 || a.PathSteps != 2 || a.Cancellations != 5 ||
		a.BytesCoded != 3 || a.SortedItems != 7 {
		t.Fatalf("Add result %+v", a)
	}
}

func TestComputeTimeLinear(t *testing.T) {
	m := BlueGeneP()
	w := Work{CellsVisited: 1000}
	t1 := m.ComputeTime(w)
	w2 := Work{CellsVisited: 2000}
	t2 := m.ComputeTime(w2)
	if diff := float64(t2) - 2*float64(t1); diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("compute time not linear: %v vs 2×%v", t2, t1)
	}
	if t1 <= 0 {
		t.Fatal("non-positive compute time")
	}
}

func TestMessageTimeComponents(t *testing.T) {
	m := BlueGeneP()
	small := m.MessageTime(0, 1)
	if small <= 0 {
		t.Fatal("zero-byte message has no latency")
	}
	far := m.MessageTime(0, 20)
	if far <= small {
		t.Fatal("hop count does not increase latency")
	}
	big := m.MessageTime(1<<20, 1)
	if big <= small {
		t.Fatal("payload size does not increase transfer time")
	}
	// Bandwidth term dominates for large messages.
	if float64(big) < float64(1<<20)/m.LinkBW {
		t.Fatal("transfer faster than link bandwidth")
	}
}

func TestIOTimeAggregateCap(t *testing.T) {
	m := BlueGeneP()
	// One rank moving 1 MB among 4096 ranks each moving 1 MB: the
	// aggregate constraint must dominate the per-rank one.
	perRankOnly := m.IOTime(1<<20, 1<<20)
	shared := m.IOTime(1<<20, 4096<<20)
	if shared <= perRankOnly {
		t.Fatal("aggregate bandwidth constraint not applied")
	}
}

func TestEfficiency(t *testing.T) {
	// Perfect scaling: 4× procs, 4× faster.
	if e := Efficiency(100, 32, 25, 128); e < 0.999 || e > 1.001 {
		t.Fatalf("perfect scaling efficiency %v", e)
	}
	// The paper's JET numbers: 970 s at 32 procs, 29 s at 8192 procs →
	// 13% end-to-end efficiency.
	e := Efficiency(970, 32, 29, 8192)
	if e < 0.12 || e > 0.14 {
		t.Fatalf("JET-style efficiency %v, want ≈ 0.13", e)
	}
	if Efficiency(1, 1, 0, 8) != 0 {
		t.Fatal("zero time should yield zero efficiency")
	}
}

func TestMaxAndConversions(t *testing.T) {
	if Max(1, 2) != 2 || Max(3, 2) != 3 {
		t.Fatal("Max broken")
	}
	if Time(1.5).Seconds() != 1.5 {
		t.Fatal("Seconds broken")
	}
	if Time(2).Duration().Seconds() != 2 {
		t.Fatal("Duration broken")
	}
	if Time(1).String() != "1.000000s" {
		t.Fatalf("String %q", Time(1).String())
	}
}
