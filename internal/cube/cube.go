// Package cube indexes the cubical cell complex of one block of a
// structured grid. Cells live on the block's refined grid (2n-1 slots
// per dimension): slots with all-even coordinates are vertices (0-cells),
// one odd coordinate makes an edge (1-cell), two a quad (2-cell), three
// a voxel (3-cell). Facet/cofacet adjacency is ±1 along one axis.
//
// It also implements the total order on cells used by the discrete
// gradient construction — "improved simulation of simplicity": cells are
// compared by their vertex (value, global vertex id) pairs sorted in
// descending order, lexicographically. No two distinct cells of the same
// dimension compare equal, which removes flat-region ambiguity from the
// steepest-descent pairing.
package cube

import "parms/internal/grid"

// Complex is the cell complex of one block.
type Complex struct {
	Block  grid.Block
	Domain grid.Dims
	Space  grid.AddrSpace

	// NX, NY, NZ are the block's refined-grid extents.
	NX, NY, NZ int

	vol *grid.Volume // block-local samples, dims == Block.Dims()
}

// New builds the complex for a block whose local samples are vol (the
// block's sub-volume including shared layers; vol dims must equal
// Block.Dims()).
func New(domain grid.Dims, block grid.Block, vol *grid.Volume) *Complex {
	bd := block.Dims()
	if vol.Dims != bd {
		panic("cube: volume dims do not match block dims")
	}
	return &Complex{
		Block:  block,
		Domain: domain,
		Space:  grid.NewAddrSpace(domain),
		NX:     2*bd[0] - 1,
		NY:     2*bd[1] - 1,
		NZ:     2*bd[2] - 1,
		vol:    vol,
	}
}

// NumCells returns the number of cells in the block's complex.
func (c *Complex) NumCells() int { return c.NX * c.NY * c.NZ }

// Coords returns the local refined coordinates of a cell index.
func (c *Complex) Coords(idx int) (x, y, z int) {
	x = idx % c.NX
	y = (idx / c.NX) % c.NY
	z = idx / (c.NX * c.NY)
	return
}

// Index returns the cell index at local refined coordinates.
func (c *Complex) Index(x, y, z int) int { return x + y*c.NX + z*c.NX*c.NY }

// Dim returns the dimension of a cell (number of odd local coordinates;
// local and global parities agree because block offsets are even).
func (c *Complex) Dim(idx int) int {
	x, y, z := c.Coords(idx)
	return x&1 + y&1 + z&1
}

// GlobalAddr returns the cell's global address in the dataset's refined
// grid.
func (c *Complex) GlobalAddr(idx int) grid.Addr {
	x, y, z := c.Coords(idx)
	return c.Space.Encode(x+2*c.Block.Lo[0], y+2*c.Block.Lo[1], z+2*c.Block.Lo[2])
}

// LocalFromGlobal converts a global address to a local cell index,
// reporting whether the cell lies in this block.
func (c *Complex) LocalFromGlobal(a grid.Addr) (int, bool) {
	gx, gy, gz := c.Space.Decode(a)
	x := gx - 2*c.Block.Lo[0]
	y := gy - 2*c.Block.Lo[1]
	z := gz - 2*c.Block.Lo[2]
	if x < 0 || x >= c.NX || y < 0 || y >= c.NY || z < 0 || z >= c.NZ {
		return 0, false
	}
	return c.Index(x, y, z), true
}

// Facets appends the facets (codimension-1 faces) of a cell to buf and
// returns it. Facets always lie inside the block's closed box, because
// odd coordinates are strictly interior to the refined extent.
func (c *Complex) Facets(idx int, buf []int) []int {
	x, y, z := c.Coords(idx)
	if x&1 == 1 {
		buf = append(buf, idx-1, idx+1)
	}
	if y&1 == 1 {
		buf = append(buf, idx-c.NX, idx+c.NX)
	}
	if z&1 == 1 {
		buf = append(buf, idx-c.NX*c.NY, idx+c.NX*c.NY)
	}
	return buf
}

// Cofacets appends the cofacets (codimension-1 cofaces) of a cell that
// lie inside the block to buf and returns it.
func (c *Complex) Cofacets(idx int, buf []int) []int {
	x, y, z := c.Coords(idx)
	if x&1 == 0 {
		if x > 0 {
			buf = append(buf, idx-1)
		}
		if x < c.NX-1 {
			buf = append(buf, idx+1)
		}
	}
	if y&1 == 0 {
		if y > 0 {
			buf = append(buf, idx-c.NX)
		}
		if y < c.NY-1 {
			buf = append(buf, idx+c.NX)
		}
	}
	if z&1 == 0 {
		if z > 0 {
			buf = append(buf, idx-c.NX*c.NY)
		}
		if z < c.NZ-1 {
			buf = append(buf, idx+c.NX*c.NY)
		}
	}
	return buf
}

// VertKey is one vertex of a cell: its sample value and global vertex
// id. The id makes every vertex distinct, so sorting keys gives a strict
// total order.
type VertKey struct {
	Val float32
	ID  int64
}

// Less orders vertex keys by value, then id.
func (a VertKey) Less(b VertKey) bool {
	if a.Val != b.Val {
		return a.Val < b.Val
	}
	return a.ID < b.ID
}

// VertKeys fills buf with the cell's vertex keys sorted in descending
// order and returns the filled prefix. buf must have capacity ≥ 8.
func (c *Complex) VertKeys(idx int, buf []VertKey) []VertKey {
	x, y, z := c.Coords(idx)
	keys := buf[:0]
	x0, x1 := x/2, (x+1)/2
	y0, y1 := y/2, (y+1)/2
	z0, z1 := z/2, (z+1)/2
	bd := c.vol.Dims
	gnx := int64(c.Domain[0])
	gnxy := gnx * int64(c.Domain[1])
	for vz := z0; vz <= z1; vz++ {
		for vy := y0; vy <= y1; vy++ {
			for vx := x0; vx <= x1; vx++ {
				gid := int64(vx+c.Block.Lo[0]) +
					int64(vy+c.Block.Lo[1])*gnx +
					int64(vz+c.Block.Lo[2])*gnxy
				v := c.vol.Data[int64(vx)+int64(vy)*int64(bd[0])+int64(vz)*int64(bd[0])*int64(bd[1])]
				keys = append(keys, VertKey{Val: v, ID: gid})
			}
		}
	}
	// Insertion sort, descending; at most 8 elements.
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && keys[j].Less(k) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
	return keys
}

// Value returns the cell's function value: the maximum of its vertex
// samples, as the paper assigns values to higher-dimensional cells.
func (c *Complex) Value(idx int) float32 {
	var buf [8]VertKey
	return c.VertKeys(idx, buf[:])[0].Val
}

// MaxVertID returns the global id of the cell's maximal vertex under the
// (value, id) order — the deterministic representative used for
// tie-breaking between cells.
func (c *Complex) MaxVertID(idx int) int64 {
	var buf [8]VertKey
	return c.VertKeys(idx, buf[:])[0].ID
}

// Compare imposes the simulation-of-simplicity total order: it returns
// -1, 0 or +1 as cell a sorts before, equal to, or after cell b. Cells
// of equal dimension never compare equal unless a == b. Cells of
// different dimension are compared by their key sequences directly
// (shorter prefix that matches sorts first), which is only used for
// diagnostics; the gradient construction always compares within one
// dimension.
func (c *Complex) Compare(a, b int) int {
	if a == b {
		return 0
	}
	var bufA, bufB [8]VertKey
	ka := c.VertKeys(a, bufA[:])
	kb := c.VertKeys(b, bufB[:])
	n := len(ka)
	if len(kb) < n {
		n = len(kb)
	}
	for i := 0; i < n; i++ {
		if ka[i].Less(kb[i]) {
			return -1
		}
		if kb[i].Less(ka[i]) {
			return 1
		}
	}
	switch {
	case len(ka) < len(kb):
		return -1
	case len(ka) > len(kb):
		return 1
	}
	return 0
}

// OnBlockFace reports whether the cell touches the block's face in the
// given axis and side (side 0 = low face, 1 = high face).
func (c *Complex) OnBlockFace(idx, axis, side int) bool {
	x, y, z := c.Coords(idx)
	coord := [3]int{x, y, z}[axis]
	if side == 0 {
		return coord == 0
	}
	lim := [3]int{c.NX, c.NY, c.NZ}[axis]
	return coord == lim-1
}

// OnAnyFace reports whether the cell touches any face of the block.
func (c *Complex) OnAnyFace(idx int) bool {
	x, y, z := c.Coords(idx)
	return x == 0 || y == 0 || z == 0 || x == c.NX-1 || y == c.NY-1 || z == c.NZ-1
}

// GlobalCoords returns the cell's global refined coordinates.
func (c *Complex) GlobalCoords(idx int) (x, y, z int) {
	lx, ly, lz := c.Coords(idx)
	return lx + 2*c.Block.Lo[0], ly + 2*c.Block.Lo[1], lz + 2*c.Block.Lo[2]
}
