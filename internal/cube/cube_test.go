package cube

import (
	"testing"
	"testing/quick"

	"parms/internal/grid"
)

func testComplex(dims grid.Dims) *Complex {
	vol := grid.NewVolume(dims)
	for i := range vol.Data {
		// A deterministic, collision-free pseudo-random field.
		vol.Data[i] = float32((i*2654435761)%1000003) / 1000003
	}
	block := grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{dims[0] - 1, dims[1] - 1, dims[2] - 1}}
	return New(dims, block, vol)
}

func TestCellCounts(t *testing.T) {
	c := testComplex(grid.Dims{4, 5, 6})
	if c.NumCells() != 7*9*11 {
		t.Fatalf("cells %d", c.NumCells())
	}
	var counts [4]int
	for i := 0; i < c.NumCells(); i++ {
		counts[c.Dim(i)]++
	}
	// Cubical complex on a 4×5×6 vertex grid.
	wantVerts := 4 * 5 * 6
	wantVoxels := 3 * 4 * 5
	if counts[0] != wantVerts || counts[3] != wantVoxels {
		t.Fatalf("counts %v", counts)
	}
	// Euler characteristic of a solid box via cell counts.
	if chi := counts[0] - counts[1] + counts[2] - counts[3]; chi != 1 {
		t.Fatalf("cell Euler characteristic %d", chi)
	}
}

func TestFacetCofacetDuality(t *testing.T) {
	c := testComplex(grid.Dims{4, 4, 4})
	var fb, cb [6]int
	for idx := 0; idx < c.NumCells(); idx++ {
		for _, f := range c.Facets(idx, fb[:0]) {
			if c.Dim(f) != c.Dim(idx)-1 {
				t.Fatalf("facet of %d-cell has dim %d", c.Dim(idx), c.Dim(f))
			}
			found := false
			for _, back := range c.Cofacets(f, cb[:0]) {
				if back == idx {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("cell %d not among cofacets of its facet %d", idx, f)
			}
		}
		for _, co := range c.Cofacets(idx, cb[:0]) {
			if c.Dim(co) != c.Dim(idx)+1 {
				t.Fatalf("cofacet of %d-cell has dim %d", c.Dim(idx), c.Dim(co))
			}
		}
	}
}

func TestFacetCountsByDim(t *testing.T) {
	c := testComplex(grid.Dims{5, 5, 5})
	var fb [6]int
	for idx := 0; idx < c.NumCells(); idx++ {
		n := len(c.Facets(idx, fb[:0]))
		if n != 2*c.Dim(idx) {
			t.Fatalf("%d-cell has %d facets", c.Dim(idx), n)
		}
	}
}

func TestVertKeysSortedDistinct(t *testing.T) {
	c := testComplex(grid.Dims{4, 4, 4})
	var buf [8]VertKey
	for idx := 0; idx < c.NumCells(); idx++ {
		keys := c.VertKeys(idx, buf[:])
		if len(keys) != 1<<c.Dim(idx) {
			t.Fatalf("%d-cell has %d vertices", c.Dim(idx), len(keys))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i-1].Less(keys[i]) {
				t.Fatalf("keys of cell %d not descending", idx)
			}
			if keys[i-1] == keys[i] {
				t.Fatalf("duplicate vertex key in cell %d", idx)
			}
		}
	}
}

func TestCompareTotalOrder(t *testing.T) {
	c := testComplex(grid.Dims{4, 4, 4})
	f := func(a, b uint16) bool {
		ca := int(a) % c.NumCells()
		cb := int(b) % c.NumCells()
		// Antisymmetry and reflexivity, restricted to equal dimension
		// (the order the gradient construction uses).
		if c.Dim(ca) != c.Dim(cb) {
			return true
		}
		cmp := c.Compare(ca, cb)
		if ca == cb {
			return cmp == 0
		}
		return cmp != 0 && cmp == -c.Compare(cb, ca)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlobalLocalRoundTrip(t *testing.T) {
	dims := grid.Dims{12, 10, 8}
	block := grid.Block{ID: 3, Lo: [3]int{2, 1, 3}, Hi: [3]int{7, 6, 7}}
	vol := grid.NewVolume(block.Dims())
	c := New(dims, block, vol)
	for idx := 0; idx < c.NumCells(); idx++ {
		back, ok := c.LocalFromGlobal(c.GlobalAddr(idx))
		if !ok || back != idx {
			t.Fatalf("cell %d round trip gave %d, %v", idx, back, ok)
		}
	}
	// An address outside the block must be rejected.
	if _, ok := c.LocalFromGlobal(c.Space.Encode(0, 0, 0)); ok {
		t.Fatal("accepted cell outside block")
	}
}

func TestValueIsMaxOfVertices(t *testing.T) {
	c := testComplex(grid.Dims{4, 4, 4})
	var buf [8]VertKey
	for idx := 0; idx < c.NumCells(); idx++ {
		keys := c.VertKeys(idx, buf[:])
		max := keys[0].Val
		for _, k := range keys {
			if k.Val > max {
				t.Fatalf("VertKeys[0] not maximal for cell %d", idx)
			}
		}
		if c.Value(idx) != max {
			t.Fatalf("Value(%d) = %v, want %v", idx, c.Value(idx), max)
		}
	}
}

func TestOnBlockFace(t *testing.T) {
	c := testComplex(grid.Dims{4, 4, 4})
	if !c.OnBlockFace(c.Index(0, 3, 2), 0, 0) {
		t.Fatal("low-x cell not on low-x face")
	}
	if c.OnBlockFace(c.Index(1, 3, 2), 0, 0) {
		t.Fatal("interior-x cell reported on low-x face")
	}
	if !c.OnBlockFace(c.Index(c.NX-1, 0, 0), 0, 1) {
		t.Fatal("high-x cell not on high-x face")
	}
	if !c.OnAnyFace(c.Index(0, 1, 1)) || c.OnAnyFace(c.Index(1, 1, 1)) {
		t.Fatal("OnAnyFace misclassifies")
	}
}
