package export

import (
	"bytes"
	"encoding/json"
	"strconv"
	"strings"
	"testing"

	"parms/internal/serial"
	"parms/internal/synth"
)

func TestWriteJSON(t *testing.T) {
	vol := synth.Sinusoid(13, 2)
	ms := serial.Compute(vol, 0.1)
	var buf bytes.Buffer
	if err := WriteJSON(&buf, ms, vol.Dims, JSONOptions{Geometry: true, Hierarchy: true}); err != nil {
		t.Fatal(err)
	}
	var doc JSONComplex
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	wantNodes, wantArcs := ms.AliveCounts()
	if doc.Counts != wantNodes {
		t.Fatalf("counts %v, want %v", doc.Counts, wantNodes)
	}
	if len(doc.Arcs) != wantArcs {
		t.Fatalf("%d arcs, want %d", len(doc.Arcs), wantArcs)
	}
	if doc.Euler != 1 {
		t.Fatalf("euler %d", doc.Euler)
	}
	if len(doc.Hierarchy) == 0 {
		t.Fatal("hierarchy missing")
	}
	// Node ids are dense and arcs reference them.
	for i, n := range doc.Nodes {
		if n.ID != int32(i) {
			t.Fatalf("node ids not dense")
		}
		if n.Pos[0] < 0 || n.Pos[0] > 12 {
			t.Fatalf("node position %v outside grid", n.Pos)
		}
	}
	for _, a := range doc.Arcs {
		if int(a.Upper) >= len(doc.Nodes) || int(a.Lower) >= len(doc.Nodes) {
			t.Fatal("arc references unknown node")
		}
		if len(a.Path) < 2 {
			t.Fatal("arc geometry missing")
		}
		// The polyline must start and end at the endpoint nodes.
		if a.Path[0] != doc.Nodes[a.Upper].Pos {
			t.Fatal("arc path does not start at upper node")
		}
		if a.Path[len(a.Path)-1] != doc.Nodes[a.Lower].Pos {
			t.Fatal("arc path does not end at lower node")
		}
	}
}

func TestWriteJSONWithoutGeometry(t *testing.T) {
	vol := synth.Sinusoid(13, 2)
	ms := serial.Compute(vol, 0.1)
	var with, without bytes.Buffer
	if err := WriteJSON(&with, ms, vol.Dims, JSONOptions{Geometry: true}); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSON(&without, ms, vol.Dims, JSONOptions{}); err != nil {
		t.Fatal(err)
	}
	if without.Len() >= with.Len() {
		t.Fatal("geometry-free export not smaller")
	}
}

func TestWriteOBJ(t *testing.T) {
	vol := synth.Sinusoid(13, 2)
	ms := serial.Compute(vol, 0.1)
	var buf bytes.Buffer
	if err := WriteOBJ(&buf, ms, vol.Dims); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, group := range []string{"g min", "g saddle1", "g saddle2", "g max", "g arcs"} {
		if !strings.Contains(out, group) {
			t.Fatalf("missing group %q", group)
		}
	}
	vLines := strings.Count(out, "\nv ")
	lLines := strings.Count(out, "\nl ")
	_, wantArcs := ms.AliveCounts()
	if lLines != wantArcs {
		t.Fatalf("%d line elements, want %d arcs", lLines, wantArcs)
	}
	if vLines <= ms.NumAliveNodes() {
		t.Fatal("no geometry vertices emitted")
	}
	// Every line element references valid vertex indices.
	verts := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "v ") {
			verts++
		}
		if strings.HasPrefix(line, "l ") {
			for _, field := range strings.Fields(line)[1:] {
				idx, err := strconv.Atoi(field)
				if err != nil {
					t.Fatalf("bad line element %q", line)
				}
				if idx < 1 || idx > verts {
					t.Fatalf("line references vertex %d of %d (forward reference)", idx, verts)
				}
			}
		}
	}
}
