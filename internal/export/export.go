// Package export renders a computed MS complex into interchange
// formats: JSON for programmatic consumers and Wavefront OBJ for the
// kind of 1-skeleton visualization the paper's figures show (critical
// points as labeled vertices, arcs as polylines through their geometric
// embedding).
package export

import (
	"encoding/json"
	"fmt"
	"io"

	"parms/internal/grid"
	"parms/internal/mscomplex"
)

// JSONComplex is the JSON shape of an exported complex.
type JSONComplex struct {
	Region    []int32    `json:"region"`
	Nodes     []JSONNode `json:"nodes"`
	Arcs      []JSONArc  `json:"arcs"`
	Hierarchy []JSONPair `json:"hierarchy,omitempty"`
	Counts    [4]int     `json:"counts"`
	Euler     int        `json:"euler"`
}

// JSONNode is one critical point.
type JSONNode struct {
	ID    int32      `json:"id"`
	Cell  uint64     `json:"cell"`
	Pos   [3]float64 `json:"pos"` // in vertex units of the original grid
	Index uint8      `json:"index"`
	Value float32    `json:"value"`
	Bdry  bool       `json:"boundary,omitempty"`
}

// JSONArc is one arc with its polyline geometry.
type JSONArc struct {
	Upper int32        `json:"upper"`
	Lower int32        `json:"lower"`
	Path  [][3]float64 `json:"path,omitempty"`
}

// JSONPair is one cancellation of the hierarchy.
type JSONPair struct {
	Persistence float32 `json:"persistence"`
	UpperCell   uint64  `json:"upperCell"`
	LowerCell   uint64  `json:"lowerCell"`
}

// position converts a refined-grid address to original-grid vertex
// coordinates (cells sit at half-integer positions).
func position(space grid.AddrSpace, a grid.Addr) [3]float64 {
	x, y, z := space.Decode(a)
	return [3]float64{float64(x) / 2, float64(y) / 2, float64(z) / 2}
}

// JSONOptions controls the JSON export.
type JSONOptions struct {
	// Geometry includes arc polylines (can dominate the output size).
	Geometry bool
	// Hierarchy includes the cancellation record.
	Hierarchy bool
}

// WriteJSON exports the alive part of a complex as one JSON document.
// dims must be the original volume extent the complex was computed on.
func WriteJSON(w io.Writer, ms *mscomplex.Complex, dims grid.Dims, opts JSONOptions) error {
	space := grid.NewAddrSpace(dims)
	doc := JSONComplex{Region: ms.Region, Euler: ms.EulerCharacteristic()}
	counts, _ := ms.AliveCounts()
	doc.Counts = counts

	remap := make(map[mscomplex.NodeID]int32)
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if !n.Alive {
			continue
		}
		id := int32(len(doc.Nodes))
		remap[mscomplex.NodeID(i)] = id
		doc.Nodes = append(doc.Nodes, JSONNode{
			ID:    id,
			Cell:  uint64(n.Cell),
			Pos:   position(space, n.Cell),
			Index: n.Index,
			Value: n.Value,
			Bdry:  ms.IsBoundaryNode(mscomplex.NodeID(i)),
		})
	}
	for i := range ms.Arcs {
		a := &ms.Arcs[i]
		if !a.Alive {
			continue
		}
		ja := JSONArc{Upper: remap[a.Upper], Lower: remap[a.Lower]}
		if opts.Geometry {
			for _, cell := range ms.FlattenGeom(a.Geom) {
				ja.Path = append(ja.Path, position(space, cell))
			}
		}
		doc.Arcs = append(doc.Arcs, ja)
	}
	if opts.Hierarchy {
		for _, h := range ms.Hierarchy {
			doc.Hierarchy = append(doc.Hierarchy, JSONPair{
				Persistence: h.Persistence,
				UpperCell:   uint64(h.UpperCell),
				LowerCell:   uint64(h.LowerCell),
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteOBJ exports the 1-skeleton as a Wavefront OBJ: one vertex per
// critical point and per geometry sample, and line elements ("l")
// tracing each arc — loadable by standard 3D viewers to reproduce the
// paper's skeleton renderings. Critical points are grouped by Morse
// index (g min / g saddle1 / g saddle2 / g max / g arcs) so viewers can
// style them separately.
func WriteOBJ(w io.Writer, ms *mscomplex.Complex, dims grid.Dims) error {
	space := grid.NewAddrSpace(dims)
	bw := &errWriter{w: w}
	bw.printf("# parms MS complex 1-skeleton: %d nodes\n", ms.NumAliveNodes())

	// Emit critical point vertices, grouped by index.
	names := [4]string{"min", "saddle1", "saddle2", "max"}
	vertCount := 0
	for d := uint8(0); d < 4; d++ {
		bw.printf("g %s\n", names[d])
		for i := range ms.Nodes {
			n := &ms.Nodes[i]
			if !n.Alive || n.Index != d {
				continue
			}
			p := position(space, n.Cell)
			bw.printf("v %g %g %g\n", p[0], p[1], p[2])
			vertCount++
			bw.printf("p %d\n", vertCount)
		}
	}

	// Emit each arc as a polyline.
	bw.printf("g arcs\n")
	for i := range ms.Arcs {
		a := &ms.Arcs[i]
		if !a.Alive {
			continue
		}
		cells := ms.FlattenGeom(a.Geom)
		first := vertCount + 1
		for _, cell := range cells {
			p := position(space, cell)
			bw.printf("v %g %g %g\n", p[0], p[1], p[2])
			vertCount++
		}
		bw.printf("l")
		for v := first; v <= vertCount; v++ {
			bw.printf(" %d", v)
		}
		bw.printf("\n")
	}
	return bw.err
}

type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...interface{}) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
