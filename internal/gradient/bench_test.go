package gradient

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/synth"
)

// BenchmarkAblationGreedy and BenchmarkAblationLowerStars compare the
// paper's greedy steepest-descent construction against the
// ProcessLowerStars alternative on identical input — the
// gradient-algorithm ablation. Greedy needs a global sort but simple
// sweeps; lower stars does per-vertex queue work and finds fewer
// spurious critical cells.
func BenchmarkAblationGreedy(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := Compute(cube.New(vol.Dims, block, vol), nil)
		counts := f.CriticalCounts()
		b.ReportMetric(float64(counts[0]+counts[1]+counts[2]+counts[3]), "criticals")
	}
}

func BenchmarkAblationLowerStars(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := ComputeLowerStars(cube.New(vol.Dims, block, vol))
		counts := f.CriticalCounts()
		b.ReportMetric(float64(counts[0]+counts[1]+counts[2]+counts[3]), "criticals")
	}
}

// BenchmarkAblationBoundaryRestriction measures the cost the paper's
// shared-face pairing restriction adds to the gradient stage (stratum
// classification plus restricted candidate sets), by computing the same
// block with and without a decomposition.
func BenchmarkAblationBoundaryRestriction(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	dec, err := grid.Decompose(vol.Dims, 8)
	if err != nil {
		b.Fatal(err)
	}
	blk := dec.Blocks[0]
	sub := vol.SubVolume(blk.Lo, blk.Hi)
	b.Run("restricted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Compute(cube.New(vol.Dims, blk, sub), dec)
		}
	})
	b.Run("unrestricted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			Compute(cube.New(vol.Dims, blk, sub), nil)
		}
	})
}
