package gradient

import (
	"fmt"
	"testing"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/synth"
)

// BenchmarkAblationGreedy and BenchmarkAblationLowerStars compare the
// paper's greedy steepest-descent construction against the
// ProcessLowerStars alternative on identical input — the
// gradient-algorithm ablation. Greedy needs a global sort but simple
// sweeps; lower stars does per-vertex queue work and finds fewer
// spurious critical cells. Volume and complex construction are hoisted
// out of the timed loop so b.N iterations measure the algorithm alone.
func BenchmarkAblationGreedy(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}
	c := cube.New(vol.Dims, block, vol)
	b.ReportAllocs()
	b.ResetTimer()
	var counts [4]int
	for i := 0; i < b.N; i++ {
		f := Compute(c, nil)
		counts = f.CriticalCounts()
	}
	b.ReportMetric(float64(counts[0]+counts[1]+counts[2]+counts[3]), "criticals")
}

func BenchmarkAblationLowerStars(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}
	c := cube.New(vol.Dims, block, vol)
	b.ReportAllocs()
	b.ResetTimer()
	var counts [4]int
	for i := 0; i < b.N; i++ {
		f := ComputeLowerStars(c)
		counts = f.CriticalCounts()
	}
	b.ReportMetric(float64(counts[0]+counts[1]+counts[2]+counts[3]), "criticals")
}

// BenchmarkAblationBoundaryRestriction measures the cost the paper's
// shared-face pairing restriction adds to the gradient stage (stratum
// classification plus restricted candidate sets), by computing the same
// block with and without a decomposition.
func BenchmarkAblationBoundaryRestriction(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	dec, err := grid.Decompose(vol.Dims, 8)
	if err != nil {
		b.Fatal(err)
	}
	blk := dec.Blocks[0]
	sub := vol.SubVolume(blk.Lo, blk.Hi)
	c := cube.New(vol.Dims, blk, sub)
	b.Run("restricted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Compute(c, dec)
		}
	})
	b.Run("unrestricted", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Compute(c, nil)
		}
	})
}

// BenchmarkComputePooled measures the SoA gradient stage under the
// intra-rank worker pool at several widths. Output is byte-identical
// across widths (the golden equivalence tests pin that); this benchmark
// tracks the wall cost of the chunked dispatch itself.
func BenchmarkComputePooled(b *testing.B) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}
	c := cube.New(vol.Dims, block, vol)
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			var pool *kernel.Pool
			if w > 1 {
				pool = kernel.New(w)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ComputePooled(c, nil, pool)
			}
		})
	}
}
