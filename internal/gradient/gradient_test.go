package gradient

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/synth"
)

func fullBlock(dims grid.Dims) grid.Block {
	return grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{dims[0] - 1, dims[1] - 1, dims[2] - 1}}
}

func TestRampGradient(t *testing.T) {
	dims := grid.Dims{8, 8, 8}
	vol := synth.Ramp(dims)
	c := cube.New(dims, fullBlock(dims), vol)
	f := Compute(c, nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid gradient: %v", err)
	}
	counts := f.CriticalCounts()
	if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
		t.Fatalf("Euler characteristic %d, want 1 (counts %v)", euler, counts)
	}
	if counts[0] < 1 {
		t.Fatalf("no minimum found: %v", counts)
	}
	// A monotone ramp is collapsible: the greedy construction should
	// find exactly one critical cell, the global minimum.
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total != 1 {
		t.Errorf("ramp has %d critical cells %v, want exactly 1", total, counts)
	}
}

func TestSinusoidGradientEuler(t *testing.T) {
	dims := grid.Dims{17, 17, 17}
	vol := synth.Sinusoid(17, 2)
	c := cube.New(dims, fullBlock(dims), vol)
	f := Compute(c, nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid gradient: %v", err)
	}
	counts := f.CriticalCounts()
	if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
		t.Fatalf("Euler characteristic %d, want 1 (counts %v)", euler, counts)
	}
	if counts[3] == 0 {
		t.Fatalf("sinusoid with 2 features per side should have maxima, got %v", counts)
	}
}

func TestRandomGradientValidAndEuler(t *testing.T) {
	dims := grid.Dims{10, 10, 10}
	vol := synth.Random(dims, 42)
	c := cube.New(dims, fullBlock(dims), vol)
	f := Compute(c, nil)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid gradient: %v", err)
	}
	counts := f.CriticalCounts()
	if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
		t.Fatalf("Euler characteristic %d, want 1 (counts %v)", euler, counts)
	}
}

// TestSharedFaceConsistency verifies the paper's key property (section
// IV-C): the discrete gradients computed independently by two
// neighboring blocks are identical on their shared boundary.
func TestSharedFaceConsistency(t *testing.T) {
	dims := grid.Dims{16, 12, 10}
	vol := synth.Random(dims, 7)
	dec, err := grid.Decompose(dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NumBlocks() != 2 {
		t.Fatalf("expected 2 blocks, got %d", dec.NumBlocks())
	}
	fields := make([]*Field, 2)
	for i, b := range dec.Blocks {
		sub := vol.SubVolume(b.Lo, b.Hi)
		c := cube.New(dims, b, sub)
		fields[i] = Compute(c, dec)
		if err := fields[i].Validate(); err != nil {
			t.Fatalf("block %d invalid gradient: %v", i, err)
		}
	}
	// Walk every cell of block 0 that is also contained in block 1 and
	// compare the full state byte.
	c0, c1 := fields[0].C, fields[1].C
	n0 := c0.NumCells()
	checked := 0
	for idx := 0; idx < n0; idx++ {
		addr := c0.GlobalAddr(idx)
		idx1, ok := c1.LocalFromGlobal(addr)
		if !ok {
			continue
		}
		checked++
		if s0, s1 := fields[0].StateByte(idx), fields[1].StateByte(idx1); s0 != s1 {
			x, y, z := c0.GlobalCoords(idx)
			t.Fatalf("state mismatch at global cell (%d,%d,%d): block0=%#x block1=%#x", x, y, z, s0, s1)
		}
	}
	if checked == 0 {
		t.Fatal("no shared cells checked")
	}
	t.Logf("checked %d shared cells", checked)
}

// TestManyBlocksConsistency extends the consistency check to an 8-block
// decomposition with edges and corners shared by 4 and 8 blocks.
func TestManyBlocksConsistency(t *testing.T) {
	dims := grid.Dims{12, 12, 12}
	vol := synth.Random(dims, 99)
	dec, err := grid.Decompose(dims, 8)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([]*Field, dec.NumBlocks())
	for i, b := range dec.Blocks {
		sub := vol.SubVolume(b.Lo, b.Hi)
		fields[i] = Compute(cube.New(dims, b, sub), dec)
	}
	for i := range fields {
		for j := i + 1; j < len(fields); j++ {
			ci, cj := fields[i].C, fields[j].C
			for idx := 0; idx < ci.NumCells(); idx++ {
				addr := ci.GlobalAddr(idx)
				jdx, ok := cj.LocalFromGlobal(addr)
				if !ok {
					continue
				}
				if si, sj := fields[i].StateByte(idx), fields[j].StateByte(jdx); si != sj {
					x, y, z := ci.GlobalCoords(idx)
					t.Fatalf("blocks %d/%d disagree at (%d,%d,%d): %#x vs %#x", i, j, x, y, z, si, sj)
				}
			}
		}
	}
}

// TestBoundaryRestrictionIndependence: the gradient on a shared face
// must not depend on the data in the interior of either block. Change
// interior values of block 0 and verify the face states are unchanged.
func TestBoundaryRestrictionIndependence(t *testing.T) {
	dims := grid.Dims{12, 8, 8}
	dec, err := grid.Decompose(dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	b0 := dec.Blocks[0]

	volA := synth.Random(dims, 1)
	volB := synth.Random(dims, 2)
	// Make the two volumes agree exactly on the shared plane x == b0.Hi[0].
	plane := b0.Hi[0]
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			volB.Set(plane, y, z, volA.At(plane, y, z))
		}
	}
	fA := Compute(cube.New(dims, b0, volA.SubVolume(b0.Lo, b0.Hi)), dec)
	fB := Compute(cube.New(dims, b0, volB.SubVolume(b0.Lo, b0.Hi)), dec)
	cA := fA.C
	for idx := 0; idx < cA.NumCells(); idx++ {
		gx, _, _ := cA.GlobalCoords(idx)
		if gx != 2*plane {
			continue
		}
		if sA, sB := fA.StateByte(idx), fB.StateByte(idx); sA != sB {
			t.Fatalf("face state depends on interior data at cell %d: %#x vs %#x", idx, sA, sB)
		}
	}
}

func BenchmarkGradient32(b *testing.B) {
	dims := grid.Dims{32, 32, 32}
	vol := synth.Sinusoid(32, 4)
	block := fullBlock(dims)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cube.New(dims, block, vol)
		Compute(c, nil)
	}
}
