package gradient

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/synth"
)

func lowerStarsField(t *testing.T, vol *grid.Volume) *Field {
	t.Helper()
	c := cube.New(vol.Dims, fullBlock(vol.Dims), vol)
	f := ComputeLowerStars(c)
	if err := f.Validate(); err != nil {
		t.Fatalf("invalid lower-stars gradient: %v", err)
	}
	return f
}

func TestLowerStarsRamp(t *testing.T) {
	f := lowerStarsField(t, synth.Ramp(grid.Dims{8, 8, 8}))
	counts := f.CriticalCounts()
	if counts != [4]int{1, 0, 0, 0} {
		t.Fatalf("ramp criticals %v, want a single minimum", counts)
	}
}

func TestLowerStarsEuler(t *testing.T) {
	for _, vol := range []*grid.Volume{
		synth.Sinusoid(17, 2),
		synth.Random(grid.Dims{10, 10, 10}, 42),
		synth.Random(grid.Dims{9, 7, 6}, 3),
	} {
		f := lowerStarsField(t, vol)
		counts := f.CriticalCounts()
		if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
			t.Fatalf("Euler characteristic %d (counts %v)", euler, counts)
		}
	}
}

// TestLowerStarsVsGreedy compares the two constructions. Lower stars is
// the tighter algorithm: it produces one critical cell per topology
// change of the lower-star filtration, while the paper's greedy sweep
// may leave extra (cancellable, low-persistence) critical pairs on noisy
// data. So per index lower-stars counts never exceed the greedy counts,
// minima (strict local minima under the total order) agree exactly, and
// both satisfy Euler characteristic 1.
func TestLowerStarsVsGreedy(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		vol := synth.Random(grid.Dims{9, 9, 9}, seed)
		c1 := cube.New(vol.Dims, fullBlock(vol.Dims), vol)
		greedy := Compute(c1, nil)
		ls := lowerStarsField(t, vol)
		g, l := greedy.CriticalCounts(), ls.CriticalCounts()
		if l[0] != g[0] {
			t.Errorf("seed %d: minima differ: greedy %d, lower-stars %d", seed, g[0], l[0])
		}
		for d := 0; d < 4; d++ {
			if l[d] > g[d] {
				t.Errorf("seed %d: lower-stars has more index-%d criticals (%d) than greedy (%d)",
					seed, d, l[d], g[d])
			}
		}
		gEuler := g[0] - g[1] + g[2] - g[3]
		lEuler := l[0] - l[1] + l[2] - l[3]
		if gEuler != 1 || lEuler != 1 {
			t.Errorf("seed %d: Euler characteristics %d (greedy), %d (lower-stars)", seed, gEuler, lEuler)
		}
	}
}

// TestLowerStarsMinimaAreVertexMinima: with the lower-star construction,
// critical vertices are exactly the vertices smaller than all their
// lower-star neighbors, i.e. strict local minima under the total order.
func TestLowerStarsMinimaAreVertexMinima(t *testing.T) {
	vol := synth.Random(grid.Dims{8, 8, 8}, 9)
	f := lowerStarsField(t, vol)
	c := f.C
	var cb [6]int
	for idx := 0; idx < c.NumCells(); idx++ {
		if c.Dim(idx) != 0 {
			continue
		}
		isMin := true
		for _, e := range c.Cofacets(idx, cb[:0]) {
			var fb [6]int
			for _, other := range c.Facets(e, fb[:0]) {
				if other != idx && c.Compare(other, idx) < 0 {
					isMin = false
				}
			}
		}
		if isMin != f.IsCritical(idx) {
			t.Fatalf("vertex %d: local-min=%v critical=%v", idx, isMin, f.IsCritical(idx))
		}
	}
}
