// Package gradient computes the discrete gradient vector field of one
// block, following the greedy steepest-descent construction of Gyulassy
// et al. (2008) as described in section IV-C of the paper: cells are
// processed by increasing dimension and then increasing function value
// (under the simulation-of-simplicity total order); a d-cell is paired
// with the steepest of its unassigned cofacets for which it is the only
// unassigned facet, and is marked critical otherwise.
//
// To allow blocks to be glued during the merge stage, pairing is
// restricted on shared block boundaries: a cell lying on the boundary of
// two or more blocks may only pair with cells lying on the boundary of
// those same blocks. The pairing decisions inside such a boundary
// stratum then depend only on the stratum's own cells and values, so two
// neighboring blocks compute byte-identical gradients on their shared
// face.
//
// The result is stored in one byte per refined-grid cell, exactly as the
// paper's implementation does: three bits of pair direction, plus flags
// for assigned/critical state.
package gradient

import (
	"fmt"
	"math/bits"
	"sort"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/vtime"
)

// State byte layout.
const (
	dirMask     = 0x07 // bits 0-2: direction of the paired neighbor
	flagPaired  = 0x08 // bit 3: cell is half of a gradient vector
	flagCrit    = 0x10 // bit 4: cell is critical
	flagVisited = 0x20 // bit 5: scratch flag for traversals
)

// Field is the discrete gradient vector field of one block, stored in
// structure-of-arrays form: one state byte and one stratum id per
// refined-grid cell, plus the flat successor arrays the tracing kernels
// iterate (headOf for every tail cell, succ0 for the functional vertex
// layer).
type Field struct {
	C *cube.Complex

	state  []byte
	strata []int32

	// Successor arrays, built by successorsKernel after assignment.
	headOf        []int32 // tail cell -> paired head cofacet, -1 otherwise
	succ0         []int32 // vertex -> next vertex on its V-path chain, -1 at criticals
	nvx, nvy, nvz int     // vertex-grid extents

	// Work tallies the operations spent computing the field, for the
	// virtual-time cost model.
	Work vtime.Work
}

// Compute builds the discrete gradient field for the block underlying c.
// dec supplies the global decomposition for the boundary pairing
// restriction; passing nil disables the restriction (the serial,
// single-block behaviour).
func Compute(c *cube.Complex, dec *grid.Decomposition) *Field {
	return ComputePooled(c, dec, nil)
}

// ComputePooled is Compute with an explicit intra-rank worker pool for
// the batch kernels (key precomputation and successor-array builds).
// The greedy pairing sweep itself is order-dependent and stays
// sequential, so the resulting field is byte-identical for every pool
// width — a nil pool is the reference sequential path.
func ComputePooled(c *cube.Complex, dec *grid.Decomposition, pool *kernel.Pool) *Field {
	f := &Field{
		C:      c,
		state:  make([]byte, c.NumCells()),
		strata: make([]int32, c.NumCells()),
	}
	f.classifyStrata(dec)
	f.assign(pool)
	f.successorsKernel(pool)
	return f
}

// classifyStrata assigns each cell a stratum id. Interior cells (owned
// by this block alone) get stratum 0; cells on a shared boundary get an
// id interned from the sorted set of blocks whose closed boxes contain
// the cell.
func (f *Field) classifyStrata(dec *grid.Decomposition) {
	if dec == nil {
		return // everything stratum 0
	}
	c := f.C
	intern := map[string]int32{}
	n := c.NumCells()
	for idx := 0; idx < n; idx++ {
		if !c.OnAnyFace(idx) {
			continue
		}
		gx, gy, gz := c.GlobalCoords(idx)
		owners := dec.OwnersOfRefined(c.Block.ID, gx, gy, gz)
		if len(owners) <= 1 {
			continue // a face on the domain boundary: unrestricted
		}
		key := ownersKey(owners)
		id, ok := intern[key]
		if !ok {
			id = int32(len(intern) + 1)
			intern[key] = id
		}
		f.strata[idx] = id
	}
}

func ownersKey(owners []int) string {
	buf := make([]byte, 0, len(owners)*4)
	for _, o := range owners {
		buf = append(buf, byte(o), byte(o>>8), byte(o>>16), byte(o>>24))
	}
	return string(buf)
}

// assign runs the greedy pairing sweeps, one per dimension. The pool
// accelerates the sort-key batch kernel; the greedy loop itself is
// sequential because each pairing decision depends on earlier ones.
func (f *Field) assign(pool *kernel.Pool) {
	c := f.C
	n := c.NumCells()
	f.Work.CellsVisited += int64(n)

	// Bucket cell indices by dimension.
	byDim := [4][]int32{}
	counts := [4]int{}
	for idx := 0; idx < n; idx++ {
		counts[c.Dim(idx)]++
	}
	for d := 0; d < 4; d++ {
		byDim[d] = make([]int32, 0, counts[d])
	}
	for idx := 0; idx < n; idx++ {
		d := c.Dim(idx)
		byDim[d] = append(byDim[d], int32(idx))
	}

	var facetBuf, cofacetBuf [6]int
	for d := 0; d <= 2; d++ {
		cellsD := byDim[d]
		f.sortCells(cellsD, pool)
		for _, ci := range cellsD {
			idx := int(ci)
			if f.state[idx]&(flagPaired|flagCrit) != 0 {
				continue // already a head of a pair from the previous sweep
			}
			best := -1
			for _, co := range c.Cofacets(idx, cofacetBuf[:0]) {
				f.Work.PairTests++
				if f.state[co]&(flagPaired|flagCrit) != 0 {
					continue
				}
				if f.strata[co] != f.strata[idx] {
					continue // boundary restriction
				}
				// idx must be the only unassigned facet of co.
				sole := true
				for _, fc := range c.Facets(co, facetBuf[:0]) {
					if fc != idx && f.state[fc]&(flagPaired|flagCrit) == 0 {
						sole = false
						break
					}
				}
				if !sole {
					continue
				}
				// Steepest descent: the candidate with the smallest
				// simulation-of-simplicity order.
				if best < 0 || c.Compare(co, best) < 0 {
					best = co
				}
			}
			if best < 0 {
				f.state[idx] |= flagCrit
				continue
			}
			f.pair(idx, best)
		}
	}
	// Whatever remains unassigned can only be 3-cells; they are maxima.
	for _, ci := range byDim[3] {
		if f.state[ci]&(flagPaired|flagCrit) == 0 {
			f.state[ci] |= flagCrit
		}
	}
}

// sortCells orders same-dimension cells ascending in the SoS total
// order. A batch kernel precomputes one (max value, max vertex id) key
// per cell into flat arrays — no map, no per-comparison VertKeys — and
// a permutation sort indexes those arrays directly; the full
// lexicographic comparison breaks the rare remaining ties. The SoS
// order is total, so the sorted sequence is unique and independent of
// both the sort algorithm and the pool width.
func (f *Field) sortCells(cells []int32, pool *kernel.Pool) {
	c := f.C
	nc := len(cells)
	if nc == 0 {
		return
	}
	val := make([]float32, nc)
	id := make([]int64, nc)
	f.cellKeysKernel(cells, val, id, pool)
	perm := make([]int32, nc)
	for i := range perm {
		perm[i] = int32(i)
	}
	sort.Slice(perm, func(a, b int) bool {
		ia, ib := perm[a], perm[b]
		if val[ia] != val[ib] {
			return val[ia] < val[ib]
		}
		if id[ia] != id[ib] {
			return id[ia] < id[ib]
		}
		return c.Compare(int(cells[ia]), int(cells[ib])) < 0
	})
	sorted := make([]int32, nc)
	for i, p := range perm {
		sorted[i] = cells[p]
	}
	copy(cells, sorted)
	f.Work.SortedItems += int64(nc) * int64(bits.Len(uint(nc)))
}

// pair records the gradient vector tail→head between facet tail and
// cofacet head.
func (f *Field) pair(tail, head int) {
	f.state[tail] = flagPaired | dirOf(f.C, tail, head)
	f.state[head] = flagPaired | dirOf(f.C, head, tail)
}

// dirOf returns the 3-bit direction code from cell a to its facet or
// cofacet b: axis*2 + (1 if positive direction).
func dirOf(c *cube.Complex, a, b int) byte {
	diff := b - a
	switch diff {
	case -1:
		return 0
	case 1:
		return 1
	case -c.NX:
		return 2
	case c.NX:
		return 3
	case -c.NX * c.NY:
		return 4
	case c.NX * c.NY:
		return 5
	}
	panic(fmt.Sprintf("gradient: cells %d and %d are not incident", a, b))
}

// neighborByDir returns the cell adjacent to idx in the given direction.
func neighborByDir(c *cube.Complex, idx int, dir byte) int {
	switch dir {
	case 0:
		return idx - 1
	case 1:
		return idx + 1
	case 2:
		return idx - c.NX
	case 3:
		return idx + c.NX
	case 4:
		return idx - c.NX*c.NY
	default:
		return idx + c.NX*c.NY
	}
}

// IsCritical reports whether a cell is unpaired (a node of the complex).
func (f *Field) IsCritical(idx int) bool { return f.state[idx]&flagCrit != 0 }

// IsPaired reports whether a cell is half of a gradient vector.
func (f *Field) IsPaired(idx int) bool { return f.state[idx]&flagPaired != 0 }

// PairedWith returns the cell paired with idx, if any.
func (f *Field) PairedWith(idx int) (int, bool) {
	if !f.IsPaired(idx) {
		return 0, false
	}
	return neighborByDir(f.C, idx, f.state[idx]&dirMask), true
}

// IsHead reports whether idx is the head (higher-dimensional end) of its
// gradient vector.
func (f *Field) IsHead(idx int) bool {
	p, ok := f.PairedWith(idx)
	return ok && f.C.Dim(p) < f.C.Dim(idx)
}

// IsTail reports whether idx is the tail (lower-dimensional end) of its
// gradient vector.
func (f *Field) IsTail(idx int) bool {
	p, ok := f.PairedWith(idx)
	return ok && f.C.Dim(p) > f.C.Dim(idx)
}

// Stratum returns the boundary stratum id of a cell (0 for interior).
func (f *Field) Stratum(idx int) int32 { return f.strata[idx] }

// StateByte exposes the raw one-byte encoding of a cell's gradient
// state (used by tests that compare shared faces between blocks).
func (f *Field) StateByte(idx int) byte { return f.state[idx] &^ flagVisited }

// CriticalCells returns the indices of all critical cells, in index
// order.
func (f *Field) CriticalCells() []int32 {
	var out []int32
	for idx := range f.state {
		if f.state[idx]&flagCrit != 0 {
			out = append(out, int32(idx))
		}
	}
	return out
}

// CriticalCounts returns the number of critical cells of each index.
func (f *Field) CriticalCounts() [4]int {
	var counts [4]int
	for idx := range f.state {
		if f.state[idx]&flagCrit != 0 {
			counts[f.C.Dim(idx)]++
		}
	}
	return counts
}

// Validate checks structural invariants of the field: every paired cell
// points at a cell that points back, pairs span exactly one dimension,
// pairs respect strata, and no cell is both paired and critical. It
// also verifies acyclicity by walking every V-path and failing if any
// walk exceeds the cell count. It returns the first violation found.
func (f *Field) Validate() error {
	c := f.C
	n := c.NumCells()
	for idx := 0; idx < n; idx++ {
		s := f.state[idx]
		if s&flagPaired != 0 && s&flagCrit != 0 {
			return fmt.Errorf("cell %d both paired and critical", idx)
		}
		if s&flagPaired != 0 {
			p := neighborByDir(c, idx, s&dirMask)
			if p < 0 || p >= n {
				return fmt.Errorf("cell %d paired out of range", idx)
			}
			if !f.IsPaired(p) {
				return fmt.Errorf("cell %d paired with unpaired cell %d", idx, p)
			}
			if back := neighborByDir(c, p, f.state[p]&dirMask); back != idx {
				return fmt.Errorf("pairing of %d and %d not mutual", idx, p)
			}
			if dd := c.Dim(p) - c.Dim(idx); dd != 1 && dd != -1 {
				return fmt.Errorf("pair %d(%d-cell)–%d(%d-cell) does not span one dimension",
					idx, c.Dim(idx), p, c.Dim(p))
			}
			if f.strata[idx] != f.strata[p] {
				return fmt.Errorf("pair %d–%d crosses strata %d–%d", idx, p, f.strata[idx], f.strata[p])
			}
		}
	}
	// Acyclicity: follow the deterministic descending V-path from the
	// tail of every vector in the (0,1) layer and the single-successor
	// walks in higher layers via bounded traversal from criticals.
	limit := n + 1
	for idx := 0; idx < n; idx++ {
		if c.Dim(idx) != 0 || !f.IsTail(idx) {
			continue
		}
		steps := 0
		v := idx
		for {
			e, ok := f.PairedWith(v)
			if !ok || c.Dim(e) != 1 {
				break
			}
			// Move to the other endpoint of e.
			var fb [6]int
			fc := c.Facets(e, fb[:0])
			if fc[0] == v {
				v = fc[1]
			} else {
				v = fc[0]
			}
			if f.IsCritical(v) {
				break
			}
			steps++
			if steps > limit {
				return fmt.Errorf("cycle detected in (0,1) V-path from cell %d", idx)
			}
		}
	}
	return nil
}
