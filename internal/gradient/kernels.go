package gradient

import (
	"parms/internal/cube"
	"parms/internal/kernel"
)

// This file holds the data-parallel batch kernels of the gradient
// stage. Every kernel is a chunked parallel-for over flat arrays
// (kernel.Pool.Run): writes go only to slots indexed by the loop
// variable, chunk boundaries depend only on the problem size, and the
// per-element loop bodies allocate nothing — the msvet `kernel`
// analyzer enforces the latter for every function named *Kernel.

// cellKeysKernel fills val[i] and id[i] with the top simulation-of-
// simplicity key (max vertex value, max vertex id) of cells[i]. The
// arrays are parallel to cells and are consumed by sortCells, replacing
// the per-cell map lookups of the old sequential path.
func (f *Field) cellKeysKernel(cells []int32, val []float32, id []int64, pool *kernel.Pool) {
	c := f.C
	pool.Run(len(cells), kernel.DefaultGrain, func(_, _, lo, hi int) {
		var buf [8]cube.VertKey
		for i := lo; i < hi; i++ {
			keys := c.VertKeys(int(cells[i]), buf[:])
			val[i] = keys[0].Val
			id[i] = keys[0].ID
		}
	})
}

// successorsKernel fills the flat successor arrays from the assigned
// state bytes: headOf[idx] is the paired head cofacet when idx is the
// tail of its gradient vector (-1 otherwise), and succ0[v] is the next
// vertex along the descending V-path chain of vertex v (-1 when v is
// critical). The vertex layer is a functional graph — one successor per
// vertex — which is what makes pointer-jumping sweeps applicable there.
func (f *Field) successorsKernel(pool *kernel.Pool) {
	c := f.C
	n := c.NumCells()
	f.headOf = make([]int32, n)
	pool.Run(n, kernel.DefaultGrain, func(_, _, lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			f.headOf[idx] = -1
			s := f.state[idx]
			if s&flagPaired == 0 {
				continue
			}
			p := neighborByDir(c, idx, s&dirMask)
			if c.Dim(p) == c.Dim(idx)+1 {
				f.headOf[idx] = int32(p)
			}
		}
	})

	f.nvx = (c.NX + 1) / 2
	f.nvy = (c.NY + 1) / 2
	f.nvz = (c.NZ + 1) / 2
	nv := f.nvx * f.nvy * f.nvz
	f.succ0 = make([]int32, nv)
	pool.Run(nv, kernel.DefaultGrain, func(_, _, lo, hi int) {
		for v := lo; v < hi; v++ {
			cell := f.vertexCell(v)
			e := f.headOf[cell]
			if e < 0 {
				f.succ0[v] = -1
				continue
			}
			// The edge's other endpoint: edges have exactly two vertex
			// facets at cell ± step, so the one that is not cell sits at
			// the reflection 2e - cell.
			f.succ0[v] = int32(f.vertexID(int(2*e) - cell))
		}
	})
	f.Work.CellsVisited += int64(n)
}

// vertexID maps a vertex cell index (all-even refined coordinates) to
// its compact id in the vertex grid.
func (f *Field) vertexID(cellIdx int) int {
	c := f.C
	x := cellIdx % c.NX
	rest := cellIdx / c.NX
	y := rest % c.NY
	z := rest / c.NY
	return ((z/2)*f.nvy+y/2)*f.nvx + x/2
}

// vertexCell maps a compact vertex id back to its refined cell index.
func (f *Field) vertexCell(vid int) int {
	vx := vid % f.nvx
	rest := vid / f.nvx
	vy := rest % f.nvy
	vz := rest / f.nvy
	return ((2*vz)*f.C.NY+2*vy)*f.C.NX + 2*vx
}

// Succ0 exposes the vertex-layer successor array: one int32 per vertex
// of the block, the compact id of the next vertex along its descending
// V-path chain, or -1 at critical vertices. The tracer's pointer-
// jumping sweeps iterate this array.
func (f *Field) Succ0() []int32 { return f.succ0 }

// HeadOf returns the paired head cofacet of a tail cell, or -1 when the
// cell is not the tail of a gradient vector. It is the flat-array form
// of PairedWith + dimension check used by the tracing kernels.
func (f *Field) HeadOf(idx int) int32 { return f.headOf[idx] }

// VertexCount returns the number of vertices (0-cells) in the block.
func (f *Field) VertexCount() int { return len(f.succ0) }

// VertexID returns the compact vertex id of a vertex cell index.
func (f *Field) VertexID(cellIdx int) int { return f.vertexID(cellIdx) }

// VertexCell returns the refined cell index of a compact vertex id.
func (f *Field) VertexCell(vid int) int { return f.vertexCell(vid) }
