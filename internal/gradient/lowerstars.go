package gradient

import (
	"container/heap"

	"parms/internal/cube"
)

// ComputeLowerStars builds a discrete gradient field with the
// ProcessLowerStars algorithm of Robins, Wood and Sheppard (2011), the
// main alternative to the greedy steepest-descent construction the
// paper adopts (its related work discusses both families). Each vertex's
// lower star — the cells whose maximal vertex it is — is processed
// independently with a homotopy-expansion queue, which makes the
// algorithm embarrassingly parallel over vertices and guarantees one
// critical cell per topology change of the lower star.
//
// This implementation covers the whole block without the shared-face
// pairing restriction, so it serves as a serial reference and as the
// subject of the gradient-algorithm ablation benchmark, not as a drop-in
// stage-one replacement (the merge stage requires the restricted
// construction).
func ComputeLowerStars(c *cube.Complex) *Field {
	f := &Field{
		C:      c,
		state:  make([]byte, c.NumCells()),
		strata: make([]int32, c.NumCells()),
	}
	f.Work.CellsVisited += int64(c.NumCells())

	n := c.NumCells()
	for idx := 0; idx < n; idx++ {
		if c.Dim(idx) == 0 {
			f.processLowerStar(idx)
		}
	}
	return f
}

// lsHeap orders lower-star cells by the simulation-of-simplicity total
// order (ascending), comparing through the complex.
type lsHeap struct {
	c     *cube.Complex
	cells []int
}

func (h *lsHeap) Len() int           { return len(h.cells) }
func (h *lsHeap) Less(i, j int) bool { return h.c.Compare(h.cells[i], h.cells[j]) < 0 }
func (h *lsHeap) Swap(i, j int)      { h.cells[i], h.cells[j] = h.cells[j], h.cells[i] }
func (h *lsHeap) Push(x interface{}) { h.cells = append(h.cells, x.(int)) }
func (h *lsHeap) Pop() interface{} {
	old := h.cells
	x := old[len(old)-1]
	h.cells = old[:len(old)-1]
	return x
}

// processLowerStar runs the queue algorithm for one vertex.
func (f *Field) processLowerStar(v int) {
	c := f.C
	star := f.lowerStar(v)
	if len(star) == 1 {
		f.state[v] |= flagCrit // isolated lower star: a minimum
		return
	}
	inStar := make(map[int]bool, len(star))
	for _, cell := range star {
		inStar[cell] = true
	}
	// delta: the minimal edge of the lower star pairs with v.
	var delta = -1
	for _, cell := range star {
		if c.Dim(cell) != 1 {
			continue
		}
		if delta < 0 || c.Compare(cell, delta) < 0 {
			delta = cell
		}
	}
	f.pair(v, delta)
	f.Work.PairTests++

	done := map[int]bool{v: true, delta: true}

	unpairedFaces := func(cell int) (count, face int) {
		var fb [6]int
		for _, fc := range c.Facets(cell, fb[:0]) {
			f.Work.PairTests++
			if inStar[fc] && !done[fc] {
				count++
				face = fc
			}
		}
		return
	}

	pqOne := &lsHeap{c: c}
	pqZero := &lsHeap{c: c}
	inOne := map[int]bool{}
	inZero := map[int]bool{}

	pushByFaces := func(cell int) {
		if done[cell] || inOne[cell] || inZero[cell] {
			return
		}
		count, _ := unpairedFaces(cell)
		switch count {
		case 0:
			heap.Push(pqZero, cell)
			inZero[cell] = true
		case 1:
			heap.Push(pqOne, cell)
			inOne[cell] = true
		}
	}
	// Seed with the remaining edges (zero unpaired faces: their only
	// lower-star face is v, already paired) and delta's cofaces.
	for _, cell := range star {
		if done[cell] {
			continue
		}
		pushByFaces(cell)
	}

	for pqOne.Len() > 0 || pqZero.Len() > 0 {
		for pqOne.Len() > 0 {
			alpha := heap.Pop(pqOne).(int)
			inOne[alpha] = false
			if done[alpha] {
				continue
			}
			count, face := unpairedFaces(alpha)
			switch count {
			case 0:
				heap.Push(pqZero, alpha)
				inZero[alpha] = true
			case 1:
				f.pair(face, alpha)
				done[face], done[alpha] = true, true
				// Cells whose counts may have changed: cofaces of the
				// two newly paired cells within the star.
				var cb [6]int
				for _, co := range c.Cofacets(face, cb[:0]) {
					if inStar[co] {
						pushByFaces(co)
					}
				}
				for _, co := range c.Cofacets(alpha, cb[:0]) {
					if inStar[co] {
						pushByFaces(co)
					}
				}
			default:
				// Stale entry; it will come back when counts drop.
			}
		}
		// Pop the minimal fully-blocked cell and mark it critical.
		for pqZero.Len() > 0 {
			gamma := heap.Pop(pqZero).(int)
			inZero[gamma] = false
			if done[gamma] {
				continue
			}
			if count, _ := unpairedFaces(gamma); count != 0 {
				// Stale: became pairable again.
				pushByFaces(gamma)
				continue
			}
			f.state[gamma] |= flagCrit
			done[gamma] = true
			var cb [6]int
			for _, co := range c.Cofacets(gamma, cb[:0]) {
				if inStar[co] {
					pushByFaces(co)
				}
			}
			break
		}
	}
}

// lowerStar collects the cells of v's lower star: every cell incident to
// v whose maximal vertex (under the simulation-of-simplicity order) is
// v. The vertex itself is included.
func (f *Field) lowerStar(v int) []int {
	c := f.C
	vx, vy, vz := c.Coords(v)
	var kb [8]cube.VertKey
	vKey := c.VertKeys(v, kb[:])[0]

	star := []int{v}
	for dz := -1; dz <= 1; dz++ {
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				if dx == 0 && dy == 0 && dz == 0 {
					continue
				}
				x, y, z := vx+dx, vy+dy, vz+dz
				if x < 0 || y < 0 || z < 0 || x >= c.NX || y >= c.NY || z >= c.NZ {
					continue
				}
				cell := c.Index(x, y, z)
				var cb [8]cube.VertKey
				keys := c.VertKeys(cell, cb[:])
				if keys[0] == vKey {
					star = append(star, cell)
				}
			}
		}
	}
	return star
}
