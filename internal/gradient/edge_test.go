package gradient

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/grid"
	"parms/internal/synth"
)

// TestFlatField: a perfectly constant field is the worst case for
// simulation of simplicity — every comparison is decided by vertex ids
// alone. The gradient must still be valid with Euler characteristic 1,
// and ideally fully collapsible (a single critical cell).
func TestFlatField(t *testing.T) {
	dims := grid.Dims{6, 6, 6}
	vol := grid.NewVolume(dims)
	for i := range vol.Data {
		vol.Data[i] = 7
	}
	f := Compute(cube.New(dims, fullBlock(dims), vol), nil)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := f.CriticalCounts()
	if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
		t.Fatalf("Euler %d (counts %v)", euler, counts)
	}
	total := counts[0] + counts[1] + counts[2] + counts[3]
	if total > 3 {
		t.Errorf("flat field left %d critical cells %v; simulation of simplicity should collapse almost everything", total, counts)
	}
}

// TestThinDomain: a 2-voxel-thick slab exercises the degenerate
// cofacet-bound paths of the cell complex.
func TestThinDomain(t *testing.T) {
	for _, dims := range []grid.Dims{{16, 16, 2}, {2, 16, 16}, {16, 2, 16}, {2, 2, 16}} {
		vol := synth.Random(dims, 3)
		f := Compute(cube.New(dims, fullBlock(dims), vol), nil)
		if err := f.Validate(); err != nil {
			t.Fatalf("%v: %v", dims, err)
		}
		counts := f.CriticalCounts()
		if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
			t.Fatalf("%v: Euler %d (counts %v)", dims, euler, counts)
		}
	}
}

// TestAnisotropicConsistency: shared-face determinism must hold for
// non-cubic domains and decompositions that split different axes.
func TestAnisotropicConsistency(t *testing.T) {
	dims := grid.Dims{24, 8, 6}
	vol := synth.Random(dims, 77)
	dec, err := grid.Decompose(dims, 6)
	if err != nil {
		t.Fatal(err)
	}
	fields := make([]*Field, dec.NumBlocks())
	for i, b := range dec.Blocks {
		fields[i] = Compute(cube.New(dims, b, vol.SubVolume(b.Lo, b.Hi)), dec)
		if err := fields[i].Validate(); err != nil {
			t.Fatalf("block %d: %v", i, err)
		}
	}
	for i := range fields {
		for j := i + 1; j < len(fields); j++ {
			ci, cj := fields[i].C, fields[j].C
			for idx := 0; idx < ci.NumCells(); idx++ {
				jdx, ok := cj.LocalFromGlobal(ci.GlobalAddr(idx))
				if !ok {
					continue
				}
				if fields[i].StateByte(idx) != fields[j].StateByte(jdx) {
					t.Fatalf("blocks %d/%d disagree on a shared cell", i, j)
				}
			}
		}
	}
}

// TestByteData: the u8 sample path (hydrogen-style data) must survive
// the whole gradient stage, plateaus and all.
func TestByteData(t *testing.T) {
	vol := synth.Hydrogen(17)
	f := Compute(cube.New(vol.Dims, fullBlock(vol.Dims), vol), nil)
	if err := f.Validate(); err != nil {
		t.Fatal(err)
	}
	counts := f.CriticalCounts()
	if euler := counts[0] - counts[1] + counts[2] - counts[3]; euler != 1 {
		t.Fatalf("Euler %d (counts %v)", euler, counts)
	}
	if counts[3] == 0 {
		t.Fatal("hydrogen proxy should have maxima")
	}
}

// TestDeterminism: the same input must produce byte-identical gradients
// across repeated runs (no map-iteration or scheduling dependence).
func TestDeterminism(t *testing.T) {
	dims := grid.Dims{10, 10, 10}
	vol := synth.Random(dims, 13)
	dec, err := grid.Decompose(dims, 4)
	if err != nil {
		t.Fatal(err)
	}
	b := dec.Blocks[1]
	sub := vol.SubVolume(b.Lo, b.Hi)
	ref := Compute(cube.New(dims, b, sub), dec)
	for run := 0; run < 3; run++ {
		f := Compute(cube.New(dims, b, sub), dec)
		for idx := 0; idx < f.C.NumCells(); idx++ {
			if f.StateByte(idx) != ref.StateByte(idx) {
				t.Fatalf("run %d: cell %d differs", run, idx)
			}
		}
	}
}
