// Package analysis implements the post-hoc queries the paper's Figure 1
// pipeline runs against a computed MS complex: threshold-based feature
// extraction, arc filtering by type and value, connected components and
// cycle counts of extracted subgraphs, and persistence curves for
// parameter studies. All queries operate on the 1-skeleton graph alone,
// never on the original volume — the point of the MS-complex pipeline is
// that interactive exploration needs only this far smaller structure.
package analysis

import (
	"sort"

	"parms/internal/grid"
	"parms/internal/mscomplex"
)

// ArcFilter selects arcs of a complex.
type ArcFilter func(c *mscomplex.Complex, a mscomplex.ArcID) bool

// ByEndpointIndices selects arcs connecting nodes of the given Morse
// indices (lower, upper), e.g. (2, 3) for the 2-saddle–maximum
// "ridge-line" arcs that trace filament structures.
func ByEndpointIndices(lower, upper uint8) ArcFilter {
	return func(c *mscomplex.Complex, a mscomplex.ArcID) bool {
		arc := &c.Arcs[a]
		return c.Nodes[arc.Lower].Index == lower && c.Nodes[arc.Upper].Index == upper
	}
}

// ByMinValue selects arcs whose endpoints both have function value at
// least v (the interactive threshold slider of Figure 1).
func ByMinValue(v float32) ArcFilter {
	return func(c *mscomplex.Complex, a mscomplex.ArcID) bool {
		arc := &c.Arcs[a]
		return c.Nodes[arc.Lower].Value >= v && c.Nodes[arc.Upper].Value >= v
	}
}

// And combines filters conjunctively.
func And(filters ...ArcFilter) ArcFilter {
	return func(c *mscomplex.Complex, a mscomplex.ArcID) bool {
		for _, f := range filters {
			if !f(c, a) {
				return false
			}
		}
		return true
	}
}

// SelectArcs returns the alive arcs passing the filter.
func SelectArcs(c *mscomplex.Complex, filter ArcFilter) []mscomplex.ArcID {
	var out []mscomplex.ArcID
	for a := range c.Arcs {
		if !c.Arcs[a].Alive {
			continue
		}
		if filter == nil || filter(c, mscomplex.ArcID(a)) {
			out = append(out, mscomplex.ArcID(a))
		}
	}
	return out
}

// Subgraph summarizes an extracted feature subgraph.
type Subgraph struct {
	Nodes      int
	Arcs       int
	Components int
	// Cycles is the first Betti number of the subgraph:
	// arcs - nodes + components.
	Cycles int
	// TotalLength is the summed geometric length (in cells) of the
	// selected arcs.
	TotalLength int64
}

// Extract builds the subgraph summary of the arcs passing the filter —
// the statistics panel of Figure 1 (component count, cycle count,
// filament length).
func Extract(c *mscomplex.Complex, filter ArcFilter) Subgraph {
	arcs := SelectArcs(c, filter)
	parent := make(map[mscomplex.NodeID]mscomplex.NodeID)
	var find func(x mscomplex.NodeID) mscomplex.NodeID
	find = func(x mscomplex.NodeID) mscomplex.NodeID {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	touch := func(x mscomplex.NodeID) {
		if _, ok := parent[x]; !ok {
			parent[x] = x
		}
	}
	var total int64
	for _, a := range arcs {
		arc := &c.Arcs[a]
		touch(arc.Upper)
		touch(arc.Lower)
		ru, rl := find(arc.Upper), find(arc.Lower)
		if ru != rl {
			parent[ru] = rl
		}
		total += int64(c.GeomLen(arc.Geom))
	}
	components := 0
	for n := range parent {
		if find(n) == n {
			components++
		}
	}
	return Subgraph{
		Nodes:       len(parent),
		Arcs:        len(arcs),
		Components:  components,
		Cycles:      len(arcs) - len(parent) + components,
		TotalLength: total,
	}
}

// CountNodes returns the number of alive nodes with the given Morse
// index and value at least minValue — e.g. the paper's Figure 4 feature
// query "nodes with value greater than 14.5".
func CountNodes(c *mscomplex.Complex, index uint8, minValue float32) int {
	n := 0
	for i := range c.Nodes {
		node := &c.Nodes[i]
		if node.Alive && node.Index == index && node.Value >= minValue {
			n++
		}
	}
	return n
}

// PersistencePoint is one step of a persistence curve.
type PersistencePoint struct {
	Threshold float32
	Nodes     int
}

// PersistenceCurve returns the number of surviving nodes as a function
// of simplification threshold, reconstructed from the complex's
// cancellation hierarchy. The curve starts at the unsimplified node
// count (threshold 0) and loses two nodes per recorded cancellation.
// It is the multi-resolution summary scientists use to pick thresholds
// without recomputing anything.
func PersistenceCurve(c *mscomplex.Complex) []PersistencePoint {
	pers := make([]float32, 0, len(c.Hierarchy))
	for _, h := range c.Hierarchy {
		pers = append(pers, h.Persistence)
	}
	sort.Slice(pers, func(i, j int) bool { return pers[i] < pers[j] })
	alive := c.NumAliveNodes() + 2*len(pers)
	curve := []PersistencePoint{{Threshold: 0, Nodes: alive}}
	for _, p := range pers {
		alive -= 2
		curve = append(curve, PersistencePoint{Threshold: p, Nodes: alive})
	}
	return curve
}

// ArcLengthStats reports min, max and mean geometric arc length over
// alive arcs.
type ArcLengthStats struct {
	Count int
	Min   int
	Max   int
	Mean  float64
}

// ArcLengths computes geometric length statistics of the alive arcs,
// which the paper uses to argue the O(n^{1/3}) geometry storage cost.
func ArcLengths(c *mscomplex.Complex) ArcLengthStats {
	var s ArcLengthStats
	var total int64
	for a := range c.Arcs {
		if !c.Arcs[a].Alive {
			continue
		}
		l := c.GeomLen(c.Arcs[a].Geom)
		if s.Count == 0 || l < s.Min {
			s.Min = l
		}
		if l > s.Max {
			s.Max = l
		}
		total += int64(l)
		s.Count++
	}
	if s.Count > 0 {
		s.Mean = float64(total) / float64(s.Count)
	}
	return s
}

// MergeAll glues a set of complexes (e.g. the blocks of a partially
// merged output file) into one and applies global persistence
// simplification at the given threshold — the paper's future-work item
// (section VII-B): once every block is part of one region there are no
// protected boundary nodes left, so the output can be simplified all the
// way down and shrinks accordingly. The input complexes are consumed.
func MergeAll(blocks []*mscomplex.Complex, threshold float32) *mscomplex.Complex {
	if len(blocks) == 0 {
		return nil
	}
	root := blocks[0]
	for _, other := range blocks[1:] {
		root.Glue(other)
	}
	root.Simplify(mscomplex.SimplifyOptions{Threshold: threshold})
	return root.Compact()
}

// PersistencePair is one finite birth-death pair of the persistence
// diagram, reconstructed from the cancellation hierarchy: the cancelled
// pair's lower critical point is born at its value and the feature dies
// at the upper critical point's value.
type PersistencePair struct {
	Birth, Death float32
	// Dim is the Morse index of the lower (born) critical point.
	Dim uint8
}

// PersistenceDiagram extracts the finite birth-death pairs recorded by
// the complex's simplification history — the standard summary of
// topological data analysis, here obtained for free from the hierarchy
// the pipeline already maintains. Surviving features are essential
// ("infinite") and not listed; pairs appear in cancellation order,
// which is nondecreasing persistence.
func PersistenceDiagram(c *mscomplex.Complex, space grid.AddrSpace) []PersistencePair {
	pairs := make([]PersistencePair, 0, len(c.Hierarchy))
	for _, h := range c.Hierarchy {
		pairs = append(pairs, PersistencePair{
			Birth: h.LowerValue,
			Death: h.UpperValue,
			Dim:   uint8(space.Dim(h.LowerCell)),
		})
	}
	return pairs
}
