package analysis

import (
	"testing"

	"parms/internal/grid"
	"parms/internal/mscomplex"
	"parms/internal/serial"
	"parms/internal/synth"
)

func testComplex(t *testing.T) *mscomplex.Complex {
	t.Helper()
	return serial.Compute(synth.Sinusoid(17, 2), 0.1)
}

func TestSelectArcsFilters(t *testing.T) {
	ms := testComplex(t)
	all := SelectArcs(ms, nil)
	if len(all) == 0 {
		t.Fatal("no arcs")
	}
	ridge := SelectArcs(ms, ByEndpointIndices(2, 3))
	for _, a := range ridge {
		arc := &ms.Arcs[a]
		if ms.Nodes[arc.Lower].Index != 2 || ms.Nodes[arc.Upper].Index != 3 {
			t.Fatal("filter returned wrong arc type")
		}
	}
	if len(ridge) == 0 || len(ridge) >= len(all) {
		t.Fatalf("ridge arcs %d of %d", len(ridge), len(all))
	}
	high := SelectArcs(ms, And(ByEndpointIndices(2, 3), ByMinValue(0.5)))
	if len(high) > len(ridge) {
		t.Fatal("conjunction grew the selection")
	}
	for _, a := range high {
		if ms.Nodes[ms.Arcs[a].Lower].Value < 0.5 {
			t.Fatal("value filter leaked")
		}
	}
}

func TestExtractSubgraph(t *testing.T) {
	ms := testComplex(t)
	sg := Extract(ms, ByEndpointIndices(2, 3))
	if sg.Arcs == 0 || sg.Nodes == 0 {
		t.Fatalf("empty subgraph %+v", sg)
	}
	if sg.Components < 1 || sg.Components > sg.Nodes {
		t.Fatalf("bad component count %+v", sg)
	}
	if sg.Cycles != sg.Arcs-sg.Nodes+sg.Components {
		t.Fatalf("cycle identity violated %+v", sg)
	}
	if sg.Cycles < 0 {
		t.Fatalf("negative cycles %+v", sg)
	}
	if sg.TotalLength <= 0 {
		t.Fatalf("no geometry length %+v", sg)
	}
	// The empty filter: nothing selected.
	empty := Extract(ms, func(*mscomplex.Complex, mscomplex.ArcID) bool { return false })
	if empty.Arcs != 0 || empty.Nodes != 0 || empty.Components != 0 || empty.Cycles != 0 {
		t.Fatalf("empty extract %+v", empty)
	}
}

func TestCountNodes(t *testing.T) {
	ms := testComplex(t)
	allMaxima := CountNodes(ms, 3, -2)
	someMaxima := CountNodes(ms, 3, 0.9)
	if allMaxima == 0 {
		t.Fatal("no maxima")
	}
	if someMaxima > allMaxima {
		t.Fatal("threshold grew the count")
	}
}

func TestPersistenceCurve(t *testing.T) {
	ms := testComplex(t)
	curve := PersistenceCurve(ms)
	if len(curve) < 2 {
		t.Fatalf("degenerate curve (%d points): was anything cancelled?", len(curve))
	}
	if curve[0].Threshold != 0 {
		t.Fatal("curve does not start at threshold 0")
	}
	for i := 1; i < len(curve); i++ {
		if curve[i].Threshold < curve[i-1].Threshold {
			t.Fatal("thresholds not sorted")
		}
		if curve[i].Nodes != curve[i-1].Nodes-2 {
			t.Fatal("each cancellation must remove exactly two nodes")
		}
	}
	if last := curve[len(curve)-1]; last.Nodes != ms.NumAliveNodes() {
		t.Fatalf("curve ends at %d nodes, complex has %d", last.Nodes, ms.NumAliveNodes())
	}
}

func TestArcLengths(t *testing.T) {
	ms := testComplex(t)
	s := ArcLengths(ms)
	if s.Count == 0 || s.Min < 2 || s.Max < s.Min || s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
		t.Fatalf("bad stats %+v", s)
	}
}

func TestGeometryScalingWithDataSize(t *testing.T) {
	// The paper's section V-B: arc geometry length grows like one side
	// of the dataset (n^{1/3} for n samples).
	small := ArcLengths(serial.Compute(synth.Sinusoid(13, 2), 0.1))
	big := ArcLengths(serial.Compute(synth.Sinusoid(25, 2), 0.1))
	if big.Mean <= small.Mean {
		t.Fatalf("mean arc length did not grow with data side: %v vs %v", small.Mean, big.Mean)
	}
	_ = grid.Dims{}
}

func TestPersistenceDiagram(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	ms := serial.Compute(vol, 0.15)
	space := grid.NewAddrSpace(vol.Dims)
	diagram := PersistenceDiagram(ms, space)
	if len(diagram) != len(ms.Hierarchy) {
		t.Fatalf("%d pairs, %d cancellations", len(diagram), len(ms.Hierarchy))
	}
	if len(diagram) == 0 {
		t.Fatal("empty diagram")
	}
	for i, p := range diagram {
		if p.Death < p.Birth {
			// The cancelled pair's persistence is |upper - lower|; for
			// saddle-maximum pairs the "death" (upper) always exceeds
			// the lower value since cell values are max-of-vertices
			// along an ascending arc... except the discrete setting
			// allows upper < lower in rare plateau cases; persistence
			// must still match the recorded magnitude.
			if ms.Hierarchy[i].Persistence != p.Birth-p.Death {
				t.Fatalf("pair %d: persistence %g does not match |%g - %g|",
					i, ms.Hierarchy[i].Persistence, p.Birth, p.Death)
			}
			continue
		}
		if ms.Hierarchy[i].Persistence != p.Death-p.Birth {
			t.Fatalf("pair %d: persistence %g does not match |%g - %g|",
				i, ms.Hierarchy[i].Persistence, p.Birth, p.Death)
		}
		if p.Dim > 2 {
			t.Fatalf("pair %d: lower index %d cannot be cancelled upward", i, p.Dim)
		}
	}
	// Persistence is nondecreasing along the cancellation order only
	// within cascades; globally the recorded values must all be within
	// the threshold.
	for i, p := range diagram {
		d := p.Death - p.Birth
		if d < 0 {
			d = -d
		}
		if float64(d) > 0.15*2.01 {
			t.Fatalf("pair %d: persistence %g exceeds threshold window", i, d)
		}
	}
}
