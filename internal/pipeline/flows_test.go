package pipeline

import (
	"bytes"
	"testing"
	"time"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/obs"
	"parms/internal/obs/analyze"
	"parms/internal/pario"
	"parms/internal/synth"
)

// TestFlowTraceDeterminism: two identically configured runs must record
// byte-identical flow dumps — the flow streams are per-emitter and
// carry only virtual times, so host scheduling must not leak in.
func TestFlowTraceDeterminism(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	var dumps [2][]byte
	for i := range dumps {
		res := runTraced(t, 8, vol)
		var buf bytes.Buffer
		if err := res.Trace.Flows().WriteFlowsJSON(&buf); err != nil {
			t.Fatal(err)
		}
		dumps[i] = buf.Bytes()
	}
	if !bytes.Equal(dumps[0], dumps[1]) {
		t.Error("flow dump differs between identical runs")
	}

	res := runTraced(t, 8, vol)
	kinds := map[string]int{}
	for _, f := range res.Trace.Flows().Flows() {
		kinds[f.Kind]++
		if f.Done {
			if f.RecvVT < f.SendVT {
				t.Errorf("flow received before it was sent: %+v", f)
			}
			if f.ArriveVT < f.SendVT {
				t.Errorf("flow arrived before it was sent: %+v", f)
			}
		}
	}
	if kinds[obs.FlowP2P] == 0 || kinds[obs.FlowCollective] == 0 {
		t.Errorf("flow kinds %v, want both p2p payloads and collective traffic", kinds)
	}
}

// TestFlowsAttributeMigratedBlocks replays the migration drill with
// flows on: rank 4 crashes entering round 1 and its block migrates to a
// healthy rank, which restores it from checkpoint and sends the round-1
// payload in the dead rank's place. The flow records must show exactly
// that — one synthetic migrated-restore flow from the dead rank to the
// new owner, the payload send attributed to the new owner after the
// restore, and nothing point-to-point from the dead rank to the round-1
// root.
func TestFlowsAttributeMigratedBlocks(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	plan := fault.NewPlan(31).CrashRank(4, "merge:1")
	c, err := mpsim.New(mpsim.Config{
		Procs: 64, Faults: plan, RecvGrace: 500 * time.Millisecond, Obs: obs.New(64),
	})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), "vol", vol)
	res, err := Run(c, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{4, 4, 4}, Persistence: 0.1,
		CheckpointEvery: 1, Migrate: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.FaultReport.Migrations != 1 {
		t.Fatalf("Migrations = %d, want 1", res.FaultReport.Migrations)
	}

	flows := res.Trace.Flows().Flows()
	var restores []obs.Flow
	for _, f := range flows {
		if f.Kind == obs.FlowMigratedRestore {
			restores = append(restores, f)
		}
	}
	if len(restores) != 1 {
		t.Fatalf("recorded %d migrated-restore flows, want 1", len(restores))
	}
	mr := restores[0]
	if mr.Src != 4 {
		t.Errorf("restore flow Src = %d, want the dead rank 4", mr.Src)
	}
	newOwner := mr.Dst
	if newOwner == 4 || mr.Emitter != newOwner {
		t.Errorf("restore flow emitter %d dst %d: must be the (healthy) new owner", mr.Emitter, mr.Dst)
	}
	if mr.Bytes <= 0 || !mr.Done {
		t.Errorf("restore flow carries no payload: %+v", mr)
	}

	// Block 4 is a round-1 member of root block 0, so its payload goes
	// to rank 0 — from the new owner, after the restore, never from the
	// crashed rank.
	ownerSent := false
	for _, f := range flows {
		if f.Kind != obs.FlowP2P {
			continue
		}
		if f.Src == 4 && f.Dst == 0 {
			t.Errorf("dead rank sent a p2p payload to the round-1 root: %+v", f)
		}
		if f.Src == newOwner && f.Dst == 0 && f.SendVT >= mr.RecvVT {
			ownerSent = true
		}
	}
	if !ownerSent {
		t.Errorf("no p2p payload from new owner %d to root 0 after the restore", newOwner)
	}

	// The comm matrix carries the same attribution: the restore link and
	// the new owner's payload link both exist.
	rep := analyze.Analyze(analyze.FromObserver(c.Obs()), analyze.Config{})
	var restoreLink, payloadLink bool
	for _, l := range rep.CommMatrix {
		if l.Src == 4 && l.Dst == newOwner && l.Bytes > 0 {
			restoreLink = true
		}
		if l.Src == newOwner && l.Dst == 0 && l.Messages > 0 {
			payloadLink = true
		}
	}
	if !restoreLink || !payloadLink {
		t.Errorf("comm matrix missing migration links (restore %v, payload %v):\n%+v",
			restoreLink, payloadLink, rep.CommMatrix)
	}
}

// TestFlowRecorderNoVirtualTimeOverhead: flow instrumentation reads the
// virtual clocks but never advances them, so modeled times must be
// bit-identical whether flows are fully recorded, counted only, or the
// run is not observed at all — and sampling must keep the send counts
// exact while dropping the records.
func TestFlowRecorderNoVirtualTimeOverhead(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	run := func(observe bool, sample int) *Result {
		cfg := mpsim.Config{Procs: 8}
		if observe {
			cfg.Obs = obs.New(8)
			cfg.Obs.FlowRecorder().SetSample(sample)
		}
		c, err := mpsim.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		pario.WriteVolume(c.FS(), "vol", vol)
		res, err := Run(c, Params{
			File: "vol", Dims: vol.Dims, DType: grid.F32,
			Radices: []int{8}, Persistence: 0.2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(true, 0)
	counted := run(true, -1)
	bare := run(false, 0)
	if full.Times != counted.Times || full.Times != bare.Times {
		t.Errorf("flow recording changed virtual time:\nfull    %+v\ncounted %+v\nbare    %+v",
			full.Times, counted.Times, bare.Times)
	}
	if n := len(counted.Trace.Flows().Flows()); n != 0 {
		t.Errorf("count-only mode stored %d records", n)
	}
	if full.Trace.Flows().Started() != counted.Trace.Flows().Started() {
		t.Errorf("Started drifted under sampling: %d vs %d",
			full.Trace.Flows().Started(), counted.Trace.Flows().Started())
	}
	if full.Trace.Flows().Started() == 0 {
		t.Error("traced run sequenced no flows")
	}
}
