package pipeline

import (
	"bytes"
	"os"
	"strconv"
	"testing"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/synth"
)

// matrixParam reads a CI matrix dimension from the environment,
// falling back to def for local runs.
func matrixParam(t *testing.T, name string, def int) int {
	t.Helper()
	s := os.Getenv(name)
	if s == "" {
		return def
	}
	v, err := strconv.Atoi(s)
	if err != nil || v < 1 {
		t.Fatalf("bad %s=%q", name, s)
	}
	return v
}

// TestPipelineWorkers is the end-to-end arm of the worker-pool
// equivalence contract: the full pipeline — read, pooled compute,
// merge, write — must produce a byte-identical output file whether the
// kernels run sequentially or on a pool. The CI test matrix drives it
// across workers × procs via PARMS_TEST_WORKERS / PARMS_TEST_PROCS;
// locally it runs the {4 workers, 8 ranks} point.
func TestPipelineWorkers(t *testing.T) {
	workers := matrixParam(t, "PARMS_TEST_WORKERS", 4)
	procs := matrixParam(t, "PARMS_TEST_PROCS", 8)

	vol := synth.Sinusoid(33, 4)
	sched := merge.Full(procs)
	run := func(w int) ([]byte, *Result) {
		c, res := runPipeline(t, procs, Params{
			File: "vol", Dims: vol.Dims, DType: grid.F32,
			Radices: sched.Radices, Persistence: 0.1,
			Workers: w,
		}, vol)
		out, err := c.FS().Get("vol.msc")
		if err != nil {
			t.Fatalf("workers=%d: read output: %v", w, err)
		}
		return out, res
	}

	seqOut, seqRes := run(1)
	poolOut, poolRes := run(workers)

	if !bytes.Equal(seqOut, poolOut) {
		t.Errorf("procs=%d: output file differs between workers=1 (%d bytes) and workers=%d (%d bytes)",
			procs, len(seqOut), workers, len(poolOut))
	}
	if seqRes.Nodes != poolRes.Nodes {
		t.Errorf("procs=%d: nodes %v (workers=1) vs %v (workers=%d)",
			procs, seqRes.Nodes, poolRes.Nodes, workers)
	}
	if seqRes.Arcs != poolRes.Arcs {
		t.Errorf("procs=%d: arcs %d (workers=1) vs %d (workers=%d)",
			procs, seqRes.Arcs, poolRes.Arcs, workers)
	}
	if seqRes.BytesSent != poolRes.BytesSent {
		t.Errorf("procs=%d: bytes sent %d (workers=1) vs %d (workers=%d)",
			procs, seqRes.BytesSent, poolRes.BytesSent, workers)
	}
}
