package pipeline

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/pario"
	"parms/internal/synth"
)

// TestChaosMigrationDrill is the tentpole migration drill: a 64-rank
// radix-4 merge with per-round checkpoints and migration on. Rank 4
// crashes entering round 1; its surviving block 4 must migrate to the
// least-loaded healthy rank (rank 1, which starts round 1 owning
// nothing), be restored there from the dead rank's round-0 checkpoint —
// the files are keyed (round, block), not rank, so discovery is a plain
// probe — and be sent to the round-1 root on time. No root ever waits
// out a timeout and nothing is recomputed, and because the restored
// complex is the exact payload the crashed member would have sent, the
// output file is byte-identical to the fault-free run.
func TestChaosMigrationDrill(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{4, 4, 4}, Persistence: 0.1,
		CheckpointEvery: 1, Migrate: true,
	}
	fs, clean, err := runChaos(t, 64, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	if rep := clean.FaultReport; rep.Faulty() {
		t.Fatalf("fault-free migrating run reports faults: %v", rep)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(31).CrashRank(4, "merge:1")
	fs, res, err := runChaos(t, 64, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.RankCrashes != 1 {
		t.Errorf("RankCrashes = %d, want 1", rep.RankCrashes)
	}
	if rep.Migrations != 1 || blockList(rep.MigratedBlocks) != blockList([]int{4}) {
		t.Errorf("Migrations = %d migrated %v, want 1 and [4]", rep.Migrations, rep.MigratedBlocks)
	}
	// Migration means the root never waits: the new owner recovers and
	// sends in phase 1, so the drill's signature is zero timeouts and —
	// with a valid checkpoint — zero recomputes.
	if rep.Timeouts != 0 || rep.TimeoutWaitSeconds != 0 {
		t.Errorf("Timeouts = %d (wait %.3fs), want 0", rep.Timeouts, rep.TimeoutWaitSeconds)
	}
	if rep.Recomputes != 0 || rep.RecomputeCells != 0 {
		t.Errorf("Recomputes = %d (cells %d), want 0 with a valid checkpoint",
			rep.Recomputes, rep.RecomputeCells)
	}
	if rep.CheckpointRestores != 1 || rep.CheckpointFallbacks != 0 {
		t.Errorf("restores = %d fallbacks = %d, want 1 and 0",
			rep.CheckpointRestores, rep.CheckpointFallbacks)
	}
	if got := blockList(rep.RestoredBlocks); got != blockList([]int{4, 5, 6, 7}) {
		t.Errorf("restored %v, want [4 5 6 7]", rep.RestoredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	got, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cleanBytes) {
		t.Errorf("output differs from fault-free run (%d vs %d bytes)", len(got), len(cleanBytes))
	}
}

// TestChaosMigrationWithoutCheckpoints: the same crash with no
// checkpoints to restore from. The new owner must recompute the
// migrated block's subtree from source data before sending — still no
// timeout at the root, and because the rebuild replays the original
// glue order the output remains byte-identical.
func TestChaosMigrationWithoutCheckpoints(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{4, 4, 4}, Persistence: 0.1,
		Migrate: true,
	}
	fs, clean, err := runChaos(t, 64, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}

	plan := fault.NewPlan(32).CrashRank(4, "merge:1")
	fs, res, err := runChaos(t, 64, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.Migrations != 1 || blockList(rep.MigratedBlocks) != blockList([]int{4}) {
		t.Errorf("Migrations = %d migrated %v, want 1 and [4]", rep.Migrations, rep.MigratedBlocks)
	}
	if rep.Timeouts != 0 {
		t.Errorf("Timeouts = %d, want 0: the new owner sends before the root waits", rep.Timeouts)
	}
	if rep.Recomputes != 1 || rep.RecomputeCells <= 0 {
		t.Errorf("Recomputes = %d (cells %d), want 1 recompute of the migrated subtree",
			rep.Recomputes, rep.RecomputeCells)
	}
	if got := blockList(rep.RecoveredBlocks); got != blockList([]int{4, 5, 6, 7}) {
		t.Errorf("recovered %v, want [4 5 6 7]", rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	got, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cleanBytes) {
		t.Errorf("output differs from fault-free run (%d vs %d bytes)", len(got), len(cleanBytes))
	}
}

// TestChaosSpeculationBeatsTimeout: a merge payload delayed just past
// the receive deadline. With speculation off the root recomputes the
// subtree from scratch; with speculation on it races that recompute
// against the still-pending payload, the payload wins (it lands ~1ms
// after the deadline, the recompute costs ~10ms), the cancelled twin's
// work never reaches the recovery counters, and the run finishes
// earlier on the virtual clock than the plain timeout-then-recompute
// path — with a byte-identical output, since the glued payload is the
// real one.
func TestChaosSpeculationBeatsTimeout(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	base := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{8}, Persistence: 0.2,
		MergeTimeout: 0.001,
	}
	fs, clean, err := runChaos(t, 8, nil, 0, base, vol)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}

	delayed := func(spec bool) (*Result, []byte) {
		p := base
		p.Speculate = spec
		plan := fault.NewPlan(41).DelayMessage(3, 0, 1, 0.002)
		fs, res, err := runChaos(t, 8, plan, 2*time.Second, p, vol)
		if err != nil {
			t.Fatalf("spec=%v: %v", spec, err)
		}
		out, err := fs.FS().Get("vol.msc")
		if err != nil {
			t.Fatal(err)
		}
		return res, out
	}

	plain, _ := delayed(false)
	if rep := plain.FaultReport; rep.Timeouts != 1 || rep.Recomputes != 1 {
		t.Fatalf("plain run report %v; want 1 timeout, 1 recompute", rep)
	}

	spec, specBytes := delayed(true)
	rep := spec.FaultReport
	if rep.SpeculationPayloadWins != 1 || rep.SpeculationRecomputeWins != 0 {
		t.Errorf("speculation wins payload=%d recompute=%d, want 1 and 0",
			rep.SpeculationPayloadWins, rep.SpeculationRecomputeWins)
	}
	if rep.SpeculationCancelledSeconds <= 0 {
		t.Errorf("SpeculationCancelledSeconds = %v, want > 0 (the losing twin's work)",
			rep.SpeculationCancelledSeconds)
	}
	// The cancelled recompute must leave no trace in the recovery
	// counters: the scratch report is dropped with the loser.
	if rep.Recomputes != 0 || rep.RecomputeCells != 0 || len(rep.RecoveredBlocks) != 0 {
		t.Errorf("cancelled speculation polluted recovery counters: %v", rep)
	}
	if rep.Timeouts != 1 {
		t.Errorf("Timeouts = %d, want 1 (the deadline still fired)", rep.Timeouts)
	}
	if spec.Times.Merge >= plain.Times.Merge {
		t.Errorf("speculative merge %.6fs not faster than plain %.6fs",
			spec.Times.Merge, plain.Times.Merge)
	}
	if spec.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", spec.Nodes, clean.Nodes)
	}
	if !bytes.Equal(specBytes, cleanBytes) {
		t.Errorf("payload-win output differs from fault-free run (%d vs %d bytes)",
			len(specBytes), len(cleanBytes))
	}
}

// TestChaosSpeculationRecomputeWins: the payload is delayed far beyond
// any useful arrival, so the twin's recompute wins the race and is
// adopted — clock, IO retries, and recovery counters all fold into the
// parent, and the orphaned payload stays unconsumed in the mailbox
// without disturbing the result.
func TestChaosSpeculationRecomputeWins(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{8}, Persistence: 0.2,
		MergeTimeout: 0.001, Speculate: true,
	}
	_, clean, err := runChaos(t, 8, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(43).DelayMessage(3, 0, 1, 50.0)
	_, res, err := runChaos(t, 8, plan, 2*time.Second, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.SpeculationRecomputeWins != 1 || rep.SpeculationPayloadWins != 0 {
		t.Errorf("speculation wins recompute=%d payload=%d, want 1 and 0",
			rep.SpeculationRecomputeWins, rep.SpeculationPayloadWins)
	}
	// The adopted twin's recovery work is real and must be reported.
	if rep.Recomputes != 1 || rep.RecomputeCells <= 0 {
		t.Errorf("Recomputes = %d (cells %d), want the adopted twin's rebuild on the books",
			rep.Recomputes, rep.RecomputeCells)
	}
	if got := blockList(rep.RecoveredBlocks); got != blockList([]int{3}) {
		t.Errorf("recovered %v, want [3]", rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
}

// TestChaosCheckpointGCReclaims: with per-round checkpoints and GC on,
// every checkpoint superseded by a newer round's write is reclaimed as
// soon as that write is safely on disk. A radix-4 three-round merge
// writes 16 + 4 + 1 checkpoints; all but the final one are superseded,
// so the run ends with exactly one file in the checkpoint tree and 20
// reclaims on the books — and a crash mid-merge still restores, because
// a subtree's newest checkpoint is only reclaimed after the write that
// replaces it.
func TestChaosCheckpointGCReclaims(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{4, 4, 4}, Persistence: 0.1,
		CheckpointEvery: 1, CheckpointGC: true,
	}
	fs, clean, err := runChaos(t, 64, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := clean.FaultReport
	if rep.Faulty() {
		t.Fatalf("fault-free run reports faults: %v", rep)
	}
	if rep.CheckpointsGCed != 20 || rep.CheckpointGCBytes <= 0 {
		t.Errorf("CheckpointsGCed = %d (bytes %d), want 20 superseded files reclaimed",
			rep.CheckpointsGCed, rep.CheckpointGCBytes)
	}
	var ckpts []string
	for _, name := range fs.FS().Names() {
		if strings.HasPrefix(name, "ckpt/") {
			ckpts = append(ckpts, name)
		}
	}
	want := pario.CheckpointName("ckpt", 2, 0)
	if len(ckpts) != 1 || ckpts[0] != want {
		t.Errorf("checkpoint tree after GC: %v, want only %s", ckpts, want)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}

	// A crash entering the last round: block 16's round-1 checkpoint is
	// still on disk (its round-2 successor has not been written yet), so
	// recovery is a restore, and the output stays byte-identical.
	plan := fault.NewPlan(51).CrashRank(16, "merge:2")
	fs, res, err := runChaos(t, 64, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep = res.FaultReport
	if rep.CheckpointRestores != 1 || rep.CheckpointFallbacks != 0 {
		t.Errorf("restores = %d fallbacks = %d, want 1 and 0",
			rep.CheckpointRestores, rep.CheckpointFallbacks)
	}
	if rep.Recomputes != 0 {
		t.Errorf("Recomputes = %d, want 0", rep.Recomputes)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	got, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cleanBytes) {
		t.Errorf("output differs from fault-free run (%d vs %d bytes)", len(got), len(cleanBytes))
	}
}

// TestChaosMigrationRateSweep compares migration against in-place
// recovery as the fault rate rises: nfail ranks that each own one
// surviving round-1 block crash together entering round 1, and the same
// plan runs once with migration on and once off (both with per-round
// checkpoints). Migration's advantage is structural — the new owners
// recover and send in phase 1, so no root ever burns a receive
// deadline, while in-place recovery pays one full timeout per crashed
// member. The sweep logs both virtual merge times per rate and fails if
// migration ever stops beating in-place recovery under this model; the
// crossover, if the model grows one, is the signal the nightly run
// watches for. Short mode (-short, the per-PR CI run) shrinks the
// cluster from 512 to 64 ranks.
func TestChaosMigrationRateSweep(t *testing.T) {
	procs := 512
	radices := []int{8, 8, 8}
	rates := []int{1, 2, 4, 8, 16}
	if testing.Short() {
		procs, radices, rates = 64, []int{8, 8}, []int{1, 2, 4}
	}
	vol := synth.Sinusoid(17, 2)
	base := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: procs, Radices: radices, Persistence: 0.2,
		CheckpointEvery: 1,
	}
	_, clean, err := runChaos(t, procs, nil, 0, base, vol)
	if err != nil {
		t.Fatal(err)
	}

	// Crash only ranks whose surviving round-1 block is a non-root group
	// member: a crashed root restores its own block without anyone
	// waiting, so it would not register a timeout in the in-place run.
	stride, span := radices[0], radices[0]*radices[1]
	for _, nfail := range rates {
		t.Run(fmt.Sprintf("nfail=%d", nfail), func(t *testing.T) {
			crashPlan := func(seed int64) *fault.Plan {
				plan := fault.NewPlan(seed)
				picked := 0
				for b := stride; picked < nfail; b += stride {
					if b%span == 0 {
						continue
					}
					plan.CrashRank(b, "merge:1")
					picked++
				}
				return plan
			}
			run := func(migrate bool, seed int64) *Result {
				p := base
				p.Migrate = migrate
				_, res, err := runChaos(t, procs, crashPlan(seed), 2*time.Second, p, vol)
				if err != nil {
					t.Fatalf("migrate=%v: %v", migrate, err)
				}
				if res.Nodes != clean.Nodes {
					t.Errorf("migrate=%v: nodes %v, fault-free %v", migrate, res.Nodes, clean.Nodes)
				}
				return res
			}
			mig := run(true, int64(60+nfail))
			inPlace := run(false, int64(80+nfail))

			if rep := mig.FaultReport; rep.Migrations != nfail || rep.Timeouts != 0 {
				t.Errorf("migration run: %d migrations, %d timeouts; want %d and 0",
					rep.Migrations, rep.Timeouts, nfail)
			}
			if rep := inPlace.FaultReport; rep.Timeouts != nfail {
				t.Errorf("in-place run: %d timeouts, want %d", rep.Timeouts, nfail)
			}
			t.Logf("nfail=%d: merge migrate=%.4fs in-place=%.4fs (saved %.4fs)",
				nfail, mig.Times.Merge, inPlace.Times.Merge,
				inPlace.Times.Merge-mig.Times.Merge)
			if mig.Times.Merge >= inPlace.Times.Merge {
				t.Errorf("migration (%.4fs) stopped beating in-place recovery (%.4fs) at %d faults",
					mig.Times.Merge, inPlace.Times.Merge, nfail)
			}
		})
	}
}
