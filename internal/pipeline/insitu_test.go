package pipeline

import (
	"testing"

	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/synth"
)

// TestInSituMatchesFileRead: supplying blocks through the in-situ source
// must produce exactly the complex that reading the same volume from
// storage produces, with a free read stage.
func TestInSituMatchesFileRead(t *testing.T) {
	vol := synth.Sinusoid(17, 2)

	_, fromFile := runPipeline(t, 4, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{4}, Persistence: 0.2,
	}, vol)

	c, err := mpsim.New(mpsim.Config{Procs: 4})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(c, Params{
		Dims:        vol.Dims,
		Radices:     []int{4},
		Persistence: 0.2,
		Source: func(b grid.Block) (*grid.Volume, error) {
			return vol.SubVolume(b.Lo, b.Hi), nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != fromFile.Nodes || res.Arcs != fromFile.Arcs {
		t.Fatalf("in-situ %v/%d, file %v/%d", res.Nodes, res.Arcs, fromFile.Nodes, fromFile.Arcs)
	}
	if res.OutputBlocks != fromFile.OutputBlocks {
		t.Fatalf("output blocks differ: %d vs %d", res.OutputBlocks, fromFile.OutputBlocks)
	}
	// In situ there is nothing to read: the read stage is (near) free.
	if res.Times.Read > fromFile.Times.Read {
		t.Errorf("in-situ read stage (%v) not cheaper than file read (%v)",
			res.Times.Read, fromFile.Times.Read)
	}
}

// TestInSituRejectsWrongDims: a source returning a mis-sized block is an
// error, not a corruption.
func TestInSituRejectsWrongDims(t *testing.T) {
	c, err := mpsim.New(mpsim.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(c, Params{
		Dims: grid.Dims{16, 16, 16},
		Source: func(b grid.Block) (*grid.Volume, error) {
			return grid.NewVolume(grid.Dims{3, 3, 3}), nil
		},
	})
	if err == nil {
		t.Fatal("mis-sized in-situ block accepted")
	}
}
