// Package pipeline drives the paper's Algorithm 1 end to end on a
// virtual cluster: decompose the domain, read data blocks collectively,
// compute the discrete gradient and local MS complex per block, simplify
// it, run the configured merge rounds, and write the surviving complex
// blocks with a footer index. It reports the same stage decomposition
// the paper's figures use: read, compute, merge, write.
package pipeline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"parms/internal/cube"
	"parms/internal/fault"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/vtime"
)

// Params configures one pipeline run.
type Params struct {
	// File is the raw volume's name in the cluster filesystem.
	File string
	// Dims and DType describe the raw volume.
	Dims  grid.Dims
	DType grid.DType
	// Blocks is the number of decomposition blocks; 0 means one block
	// per process.
	Blocks int
	// Radices is the merge schedule (one entry per round, each 2, 4 or
	// 8); empty means no merging.
	Radices []int
	// Persistence is the absolute simplification threshold applied per
	// block and after every merge round.
	Persistence float32
	// OutFile names the output file; empty means "<File>.msc".
	OutFile string
	// KeepComplexes retains the final complexes in the Result.
	KeepComplexes bool
	// Measured switches compute-stage timing from the modeled cost
	// model to real wall-clock time (for shared-memory speedup runs).
	Measured bool
	// Workers is the intra-rank worker pool width for the compute-stage
	// kernels (batch gradient passes, pointer-jumping sweeps, per-start
	// tracing). 1 runs them sequentially; N > 1 runs them on N workers
	// and models compute time with the parallel cost model; 0 (auto)
	// sizes the pool to an even share of the host's cores but keeps the
	// sequential cost model, so modeled times never depend on the host.
	// Output is byte-identical for every width.
	Workers int
	// Trace bounds V-path enumeration.
	Trace mscomplex.TraceOptions
	// MergeTimeout is the virtual-time budget (seconds) a merge-group
	// root waits for each member payload before excluding the member
	// and recovering its blocks deterministically. 0 selects a default
	// of defaultMergeTimeout seconds when the cluster carries a fault
	// plan, and plain blocking receives otherwise (the fault-free fast
	// path).
	MergeTimeout float64
	// CheckpointEvery, when >= 1, makes merge-group roots persist their
	// merged complex to the simulated filesystem after every
	// CheckpointEvery-th round (PCSFM2-framed, CRC-verified), and makes
	// fault recovery restore lost subtrees from the newest valid
	// checkpoint instead of recomputing them from source data. 0
	// disables checkpointing (the default).
	CheckpointEvery int
	// CheckpointDir is the checkpoint directory on the simulated
	// filesystem; empty selects "ckpt".
	CheckpointDir string
	// CheckpointGC reclaims superseded checkpoint rounds: once a root's
	// newer state is safely on disk, the older checkpoints it covers
	// are deleted (see merge.Checkpoint.GC).
	CheckpointGC bool
	// Migrate moves a crashed rank's blocks onto healthy ranks through
	// the run's ownership table instead of recovering them in place on
	// the restarted rank (see merge.Options.Migrate). Off by default.
	Migrate bool
	// Speculate races a local recompute against a still-pending late
	// payload whenever a merge receive times out, committing whichever
	// finishes earlier on the virtual clock (see
	// merge.Options.Speculate). Off by default.
	Speculate bool
	// AvoidRanks seeds the ownership table's initial rotation away from
	// the listed ranks — typically a previous run's
	// analyze Recommendation.AvoidRanks — so known stragglers start the
	// run owning no blocks. They still participate in all collectives.
	AvoidRanks []int
	// Source, when non-nil, supplies each block's samples directly
	// instead of reading File from storage — the in-situ mode of the
	// paper's future work (section VII-B), where the simulation that
	// produced the data hands its resident domain partition to the
	// analysis. The read stage then costs nothing. File and DType are
	// ignored; Dims still describes the global domain.
	Source func(b grid.Block) (*grid.Volume, error)
}

// StageTimes is the virtual duration of each pipeline stage, the
// decomposition plotted in the paper's Figures 9 and 10.
type StageTimes struct {
	Read    float64
	Compute float64
	Merge   float64
	Write   float64
	Total   float64
}

// Result summarizes one run. Stage times are in modeled seconds (max
// over ranks, measured at collective stage boundaries, exactly as an
// MPI_Wtime-after-barrier trace would report them).
type Result struct {
	Procs  int
	Blocks int
	Times  StageTimes
	// Rounds holds the per-round merge statistics.
	Rounds []merge.RoundStats
	// OutputBlocks is the number of complex blocks written.
	OutputBlocks int
	// OutputBytes is the size of the output file.
	OutputBytes int64
	// Nodes and Arcs total the alive elements across output blocks.
	Nodes [4]int
	Arcs  int
	// RawNodes totals alive nodes across blocks after per-block
	// simplification but before any merging — the size the output
	// would have had without stage two.
	RawNodes int
	// BytesSent totals point-to-point payload bytes across ranks.
	BytesSent int64
	// ComputeMean is the mean per-rank duration of the compute stage;
	// Times.Compute is the max. Their ratio measures load imbalance
	// under the block-cyclic assignment (section IV-A).
	ComputeMean float64
	// Truncated counts critical cells whose V-path enumeration hit the
	// trace cap (0 in all shipped experiments).
	Truncated int
	// Complexes holds the final complexes by block id when
	// Params.KeepComplexes is set.
	Complexes map[int]*mscomplex.Complex
	// FaultReport aggregates the fault events observed across all
	// ranks: crashes survived, receive timeouts, corrupted payloads
	// rejected, blocks lost and recovered (restored from checkpoint vs
	// recomputed, with bytes read vs cells recomputed), and I/O
	// retries. It is zero-valued in a fault-free run.
	FaultReport fault.Report
	// Trace is the per-rank span trace of the run and Metrics the
	// metrics registry, echoed from the cluster's obs.Observer. Both
	// are nil when the cluster carries no observer.
	Trace   *obs.Tracer
	Metrics *obs.Registry
}

// StageSpanNames are the span names that tile each rank's virtual
// timeline in a traced run, in timeline order: every stage span is
// followed by the sync span of the collective boundary that closes it.
// The "boundary" attribute of each sync span carries the allreduced
// stage-boundary timestamp the StageTimes decomposition is computed
// from, so Times.X == boundary(sync:X) - boundary(previous sync).
var StageSpanNames = []string{
	"sync:init", "read", "sync:read", "compute", "sync:compute",
	"merge", "sync:merge", "write", "sync:write",
}

// defaultMergeTimeout is the per-member receive budget (virtual
// seconds) used when a fault plan is active but Params.MergeTimeout is
// unset. Payload transfer and serialization cost milliseconds at the
// modeled scales, so one second distinguishes "lost" from "slow" with a
// wide margin.
const defaultMergeTimeout = 1.0

// kernelWorkers resolves Params.Workers for one rank into the real
// pool width and the width the cost model charges. Explicit widths use
// the same value for both. 0 (auto) sizes the pool to an even share of
// the host's cores across the simulated ranks — real wall clock
// benefits when cores are available — but models virtual time at width
// 1, so modeled results never depend on the machine the simulation
// happens to run on.
func kernelWorkers(workers, procs int) (poolW, modeledW int) {
	if workers > 0 {
		return workers, workers
	}
	return kernel.AutoWorkers(procs), 1
}

// Run executes the pipeline on the cluster and returns the combined
// result. It must be called from a single goroutine; it runs the rank
// program on every virtual rank internally.
func Run(c *mpsim.Cluster, p Params) (*Result, error) {
	procs := c.Procs()
	nblocks := p.Blocks
	if nblocks == 0 {
		nblocks = procs
	}
	if p.OutFile == "" {
		p.OutFile = p.File + ".msc"
	}
	dec, err := grid.Decompose(p.Dims, nblocks)
	if err != nil {
		return nil, err
	}
	sched := merge.Schedule{Radices: p.Radices}
	if err := sched.Validate(nblocks); err != nil {
		return nil, err
	}

	res := &Result{Procs: procs, Blocks: nblocks}
	if p.KeepComplexes {
		res.Complexes = make(map[int]*mscomplex.Complex)
	}
	c.FS().Create(p.OutFile)
	var mu sync.Mutex

	_, err = c.Run(func(r *mpsim.Rank) error {
		return rankProgram(r, c, p, dec, sched, res, &mu)
	})
	if err != nil {
		return nil, err
	}
	if o := c.Obs(); o != nil {
		res.Trace = o.Trace
		res.Metrics = o.Metrics
	}
	return res, nil
}

func rankProgram(r *mpsim.Rank, c *mpsim.Cluster, p Params, dec *grid.Decomposition,
	sched merge.Schedule, res *Result, mu *sync.Mutex) error {

	nblocks := dec.NumBlocks()
	// Every rank builds an identical replica of the ownership table;
	// Execute applies only deterministic, collectively-agreed updates,
	// so the replicas never diverge.
	owners := grid.NewOwnerTableAvoiding(nblocks, r.Size(), p.AvoidRanks)
	myBlocks := owners.Blocks(r.ID())
	maxPerRank := 0
	for rank := 0; rank < r.Size(); rank++ {
		if n := len(owners.Blocks(rank)); n > maxPerRank {
			maxPerRank = n
		}
	}

	report := &fault.Report{}
	// Fault tolerance engages when the cluster carries a fault plan or
	// the caller asked for bounded merge receives explicitly.
	ft := c.Faults() != nil || p.MergeTimeout > 0
	timeout := p.MergeTimeout
	if timeout == 0 && c.Faults() != nil {
		timeout = defaultMergeTimeout
	}

	// Each stage becomes one span per rank ending at the rank's local
	// clock when it enters the boundary collective, then the collective
	// itself becomes a sync span — so the spans tile each rank's
	// virtual timeline exactly, and the max stage-span end across ranks
	// IS the allreduced boundary that StageTimes is computed from (the
	// boundary is also stamped on the sync span for direct readback).
	tr := r.Tracer()
	stageStart := r.Clock()
	boundary := func(stage string, attrs ...obs.Attr) float64 {
		end := r.Clock()
		t := r.AllreduceMaxTime()
		if tr.Enabled() {
			name := "init"
			if stage != "" {
				tr.Span(stage, stageStart, end, attrs...)
				name = stage
			}
			tr.Span("sync:"+name, end, r.Clock(), obs.F("boundary", t))
		}
		stageStart = r.Clock()
		return t
	}

	t0 := boundary("")

	// --- Read data blocks (section IV-B), or receive them in situ ---
	vols := make(map[int]*grid.Volume, len(myBlocks))
	if p.Source != nil {
		for _, bid := range myBlocks {
			b := dec.Blocks[bid]
			vol, err := p.Source(b)
			if err != nil {
				return err
			}
			if vol.Dims != b.Dims() {
				return fmt.Errorf("pipeline: in-situ source returned %v for block %d, want %v",
					vol.Dims, bid, b.Dims())
			}
			vols[bid] = vol
		}
	} else {
		for i := 0; i < maxPerRank; i++ {
			var bytes int64
			bid := -1
			ioStart := r.Clock()
			if i < len(myBlocks) {
				bid = myBlocks[i]
				b := dec.Blocks[bid]
				vol, retries, err := pario.ReadBlockVolumeStats(c.FS(), p.File, p.Dims, p.DType, b)
				report.IORetries += retries
				if retries > 0 {
					tr.Instant("fault:io_retry", r.Clock(),
						obs.I("block", int64(bid)), obs.I("retries", int64(retries)))
				}
				if err != nil {
					return err
				}
				vols[b.ID] = vol
				bytes = pario.BlockBytes(p.DType, b)
			}
			r.IOAccount(bytes)
			if tr.Enabled() && bid >= 0 {
				tr.Span("read:block", ioStart, r.Clock(),
					obs.I("id", int64(bid)), obs.I("bytes", bytes))
			}
		}
	}
	if r.Checkpoint("read") {
		// Crash-restart during the read stage: every volume this rank
		// read is gone. The compute stage below skips the missing
		// blocks; the merge stage recovers them deterministically.
		for bid := range vols {
			delete(vols, bid)
		}
		report.RankCrashes++
	}
	t1 := boundary("read", obs.I("blocks", int64(len(vols))))

	// --- Compute gradient, MS complex, and simplify per block
	// (sections IV-C to IV-E) ---
	complexes := make(map[int]*mscomplex.Complex, len(myBlocks))
	truncated := 0
	var workTotal vtime.Work
	var sweepsTotal int64
	poolW, modeledW := kernelWorkers(p.Workers, r.Size())
	var pool *kernel.Pool
	if poolW > 1 {
		pool = kernel.New(poolW)
	}
	computeStart := float64(r.Clock())
	for _, bid := range myBlocks {
		vol, ok := vols[bid]
		if !ok {
			// Lost to a crash at the read checkpoint; the merge stage
			// recomputes it on demand.
			continue
		}
		b := dec.Blocks[bid]
		start := time.Now()
		blockStart := r.Clock()
		cc := cube.New(p.Dims, b, vol)
		field := gradient.ComputePooled(cc, dec, pool)
		traced := mscomplex.FromFieldPooled(field, dec, p.Trace, pool)
		truncated += traced.Truncated
		sweepsTotal += int64(traced.Kernel.Sweeps)
		ms := traced.Complex
		ms.Simplify(mscomplex.SimplifyOptions{Threshold: p.Persistence})
		compacted := ms.Compact() // carries ms.Work plus its own ops
		complexes[bid] = compacted
		delete(vols, bid)
		w := field.Work
		w.Add(compacted.Work)
		workTotal.Add(w)
		if p.Measured {
			r.Elapse(time.Since(start).Seconds())
		} else {
			r.ComputeParallel(w, modeledW)
		}
		if tr.Enabled() {
			// One nested span per pointer-jumping sweep, placed at the
			// start of the block's compute window with modeled
			// durations, so the trace shows the convergence cascade.
			sweepAt := blockStart
			for si, sw := range traced.Kernel.SweepWrites {
				dur := vtime.Time(float64(sw) * r.Machine().SweepCost / float64(modeledW))
				tr.Span("kernel:sweep", sweepAt, sweepAt+dur,
					obs.I("id", int64(bid)), obs.I("sweep", int64(si)),
					obs.I("writes", sw))
				sweepAt += dur
			}
			n, a := compacted.AliveCounts()
			tr.Span("block", blockStart, r.Clock(),
				obs.I("id", int64(bid)),
				obs.I("nodes", int64(n[0]+n[1]+n[2]+n[3])), obs.I("arcs", int64(a)),
				obs.I("path_steps", w.PathSteps), obs.I("cells", w.CellsVisited),
				obs.I("sweeps", int64(traced.Kernel.Sweeps)),
				obs.I("workers", int64(poolW)))
		}
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("compute_cells_total").Add(workTotal.CellsVisited)
		reg.Counter("compute_path_steps_total").Add(workTotal.PathSteps)
		reg.Counter("compute_cancellations_total").Add(workTotal.Cancellations)
		reg.Counter("compute_sweeps_total").Add(sweepsTotal)
		reg.Counter("compute_sweep_writes_total").Add(workTotal.SweepWrites)
		reg.Histogram("compute_block_path_steps").Observe(workTotal.PathSteps)
	}
	if r.Checkpoint("compute") {
		// Crash-restart during the compute stage: the per-block
		// complexes are gone; merge recovery rebuilds them.
		for bid := range complexes {
			delete(complexes, bid)
		}
		report.RankCrashes++
	}
	computeLocal := float64(r.Clock()) - computeStart
	computeMean := r.AllreduceFloat64(computeLocal, "sum") / float64(r.Size())
	t2 := boundary("compute", obs.I("blocks", int64(len(complexes))))
	rawLocal := 0
	for _, ms := range complexes {
		rawLocal += ms.NumAliveNodes()
	}
	rawNodes := int(r.AllreduceFloat64(float64(rawLocal), "sum"))

	// --- Merge rounds (section IV-F) ---
	mopts := merge.Options{
		Threshold: p.Persistence, Report: report, Owners: owners,
		Migrate: p.Migrate, Speculate: p.Speculate,
	}
	if p.CheckpointEvery > 0 {
		mopts.Checkpoint = &merge.Checkpoint{
			Dir: p.CheckpointDir, Every: p.CheckpointEvery, GC: p.CheckpointGC,
		}
	}
	if ft {
		mopts.Timeout = vtime.Time(timeout)
		mopts.Recompute = recomputeBlock(c, p, dec)
	}
	rounds, err := merge.Execute(r, sched, nblocks, complexes, mopts)
	if err != nil {
		return err
	}
	t3 := boundary("merge", obs.I("rounds", int64(len(rounds))))

	// --- Write MS complex blocks (section IV-G) ---
	if r.Checkpoint("write") {
		// Crash-restart entering the write stage: surviving complexes
		// are rebuilt one by one inside writeOutput.
		for bid := range complexes {
			delete(complexes, bid)
		}
		report.RankCrashes++
	}
	outBytes, entries, err := writeOutput(r, c, p.OutFile, nblocks, sched, owners, complexes, mopts)
	if err != nil {
		return err
	}
	t4 := boundary("write", obs.I("bytes", outBytes))

	truncTotal := int(r.AllreduceFloat64(float64(truncated), "sum"))
	var nodeTotals [4]int
	arcTotal := 0
	var localNodes [4]int
	localArcs := 0
	for _, ms := range complexes {
		n, a := ms.AliveCounts()
		for i := range n {
			localNodes[i] += n[i]
		}
		localArcs += a
	}
	for i := 0; i < 4; i++ {
		nodeTotals[i] = int(r.AllreduceFloat64(float64(localNodes[i]), "sum"))
	}
	arcTotal = int(r.AllreduceFloat64(float64(localArcs), "sum"))
	bytesSent := int64(r.AllreduceFloat64(float64(r.BytesSent()), "sum"))

	// Combine the per-rank fault reports: counters by allreduce, block
	// lists gathered at rank 0 and normalized there.
	report.IORetries += int(r.IORetries())
	agg := fault.Report{
		RankCrashes:                 int(r.AllreduceFloat64(float64(report.RankCrashes), "sum")),
		Timeouts:                    int(r.AllreduceFloat64(float64(report.Timeouts), "sum")),
		Corruptions:                 int(r.AllreduceFloat64(float64(report.Corruptions), "sum")),
		Recomputes:                  int(r.AllreduceFloat64(float64(report.Recomputes), "sum")),
		RecomputeCells:              int64(r.AllreduceFloat64(float64(report.RecomputeCells), "sum")),
		CheckpointRestores:          int(r.AllreduceFloat64(float64(report.CheckpointRestores), "sum")),
		CheckpointBytesRead:         int64(r.AllreduceFloat64(float64(report.CheckpointBytesRead), "sum")),
		CheckpointFallbacks:         int(r.AllreduceFloat64(float64(report.CheckpointFallbacks), "sum")),
		IORetries:                   int(r.AllreduceFloat64(float64(report.IORetries), "sum")),
		TimeoutWaitSeconds:          r.AllreduceFloat64(report.TimeoutWaitSeconds, "sum"),
		Migrations:                  int(r.AllreduceFloat64(float64(report.Migrations), "sum")),
		SpeculationPayloadWins:      int(r.AllreduceFloat64(float64(report.SpeculationPayloadWins), "sum")),
		SpeculationRecomputeWins:    int(r.AllreduceFloat64(float64(report.SpeculationRecomputeWins), "sum")),
		SpeculationCancelledSeconds: r.AllreduceFloat64(report.SpeculationCancelledSeconds, "sum"),
		CheckpointsGCed:             int(r.AllreduceFloat64(float64(report.CheckpointsGCed), "sum")),
		CheckpointGCBytes:           int64(r.AllreduceFloat64(float64(report.CheckpointGCBytes), "sum")),
	}
	var listMsg []byte
	for _, list := range [][]int{report.LostBlocks, report.RecoveredBlocks, report.RestoredBlocks, report.MigratedBlocks} {
		listMsg = appendU64(listMsg, uint64(len(list)))
		for _, b := range list {
			listMsg = appendU64(listMsg, uint64(b))
		}
	}
	for _, msg := range r.Gather(0, listMsg) {
		o := 0
		for _, dst := range []*[]int{&agg.LostBlocks, &agg.RecoveredBlocks, &agg.RestoredBlocks, &agg.MigratedBlocks} {
			n := int(u64At(msg, o))
			o += 8
			for j := 0; j < n; j++ {
				*dst = append(*dst, int(u64At(msg, o)))
				o += 8
			}
		}
	}
	agg.Normalize()

	if r.ID() == 0 {
		mu.Lock()
		res.Times = StageTimes{
			Read:    t1 - t0,
			Compute: t2 - t1,
			Merge:   t3 - t2,
			Write:   t4 - t3,
			Total:   t4 - t0,
		}
		res.Rounds = rounds
		res.OutputBlocks = len(entries)
		res.OutputBytes = outBytes
		res.Nodes = nodeTotals
		res.Arcs = arcTotal
		res.RawNodes = rawNodes
		res.ComputeMean = computeMean
		res.BytesSent = bytesSent
		res.Truncated = truncTotal
		res.FaultReport = agg
		mu.Unlock()
	}
	if res.Complexes != nil {
		mu.Lock()
		for bid, ms := range complexes {
			res.Complexes[bid] = ms
		}
		mu.Unlock()
	}
	return nil
}

// recomputeBlock returns the merge recovery callback: rebuild one
// block's simplified, compacted complex from source data. The compute
// stage is deterministic, so the result is identical to the complex the
// block originally produced. The re-read and recompute costs are
// charged to the rank the callback is invoked with — the real rank on
// the ordinary recovery path, a quiet speculative twin (with a scratch
// report) during a speculation race.
func recomputeBlock(c *mpsim.Cluster, p Params, dec *grid.Decomposition) func(rk *mpsim.Rank, rep *fault.Report, bid int) (*mscomplex.Complex, error) {

	return func(rk *mpsim.Rank, rep *fault.Report, bid int) (*mscomplex.Complex, error) {
		b := dec.Blocks[bid]
		var vol *grid.Volume
		if p.Source != nil {
			v, err := p.Source(b)
			if err != nil {
				return nil, err
			}
			vol = v
		} else {
			v, retries, err := pario.ReadBlockVolumeStats(c.FS(), p.File, p.Dims, p.DType, b)
			if rep != nil {
				rep.IORetries += retries
			}
			if retries > 0 {
				rk.Tracer().Instant("fault:io_retry", rk.Clock(),
					obs.I("block", int64(bid)), obs.I("retries", int64(retries)))
			}
			if err != nil {
				return nil, err
			}
			// An independent (non-collective) re-read: this rank alone
			// pays the transfer time.
			nbytes := pario.BlockBytes(p.DType, b)
			rk.Elapse(float64(rk.Machine().IOTime(nbytes, nbytes)))
			vol = v
		}
		cc := cube.New(p.Dims, b, vol)
		field := gradient.Compute(cc, dec)
		ms := mscomplex.FromField(field, dec, p.Trace).Complex
		ms.Simplify(mscomplex.SimplifyOptions{Threshold: p.Persistence})
		compacted := ms.Compact()
		w := field.Work
		w.Add(compacted.Work)
		rk.Compute(w)
		// The gradient cells live in field.Work, not the complex's
		// ledger — record them here so the recompute budget is visible.
		if rep != nil {
			rep.RecomputeCells += field.Work.CellsVisited
		}
		return compacted, nil
	}
}

// writeOutput performs the collective write of surviving blocks plus the
// footer, and returns the file size and index (index only on rank 0).
// Each surviving block is written by its current owner per the
// ownership table — the rank holding its merged complex even after
// migrations. A surviving block missing from complexes (lost to a crash
// at the write checkpoint) is recovered through mopts — newest valid
// merge checkpoint first, recompute fallback — before serialization.
func writeOutput(r *mpsim.Rank, c *mpsim.Cluster, name string, nblocks int,
	sched merge.Schedule, owners *grid.OwnerTable, complexes map[int]*mscomplex.Complex, mopts merge.Options) (int64, []pario.IndexEntry, error) {

	survivors := sched.Survivors(nblocks)
	maxPerRank := 0
	perRank := make([][]int, r.Size())
	for _, b := range survivors {
		perRank[owners.Owner(b)] = append(perRank[owners.Owner(b)], b)
	}
	for _, list := range perRank {
		if len(list) > maxPerRank {
			maxPerRank = len(list)
		}
	}
	mine := perRank[r.ID()]
	sort.Ints(mine)

	// Serialize my blocks and gather (block, size, region) records at
	// rank 0 to compute offsets and the footer index.
	payloads := make(map[int][]byte, len(mine))
	var sizeMsg []byte
	for _, bid := range mine {
		ms, ok := complexes[bid]
		if !ok {
			if mopts.Recompute == nil && mopts.Checkpoint == nil {
				return 0, nil, fmt.Errorf("pipeline: rank %d missing surviving block %d", r.ID(), bid)
			}
			recovered, err := merge.Recover(r, sched, nblocks, bid, len(sched.Radices), mopts)
			if err != nil {
				return 0, nil, fmt.Errorf("pipeline: recover surviving block %d: %w", bid, err)
			}
			ms = recovered
			complexes[bid] = ms
		}
		payload := ms.Serialize()
		payloads[bid] = payload
		sizeMsg = appendU64(sizeMsg, uint64(bid))
		sizeMsg = appendU64(sizeMsg, uint64(len(payload)))
		sizeMsg = appendU64(sizeMsg, uint64(mpsim.Checksum(payload)))
		sizeMsg = appendU64(sizeMsg, uint64(len(ms.Region)))
		for _, rb := range ms.Region {
			sizeMsg = appendU64(sizeMsg, uint64(rb))
		}
	}
	gathered := r.Gather(0, sizeMsg)

	// Rank 0 assigns offsets in survivor order and broadcasts.
	var offerMsg []byte
	var entries []pario.IndexEntry
	if r.ID() == 0 {
		sizes := make(map[int]int64, len(survivors))
		crcs := make(map[int]uint32, len(survivors))
		regions := make(map[int][]int32, len(survivors))
		for _, msg := range gathered {
			for o := 0; o+32 <= len(msg); {
				bid := int(u64At(msg, o))
				sizes[bid] = int64(u64At(msg, o+8))
				crcs[bid] = uint32(u64At(msg, o+16))
				nRegion := int(u64At(msg, o+24))
				o += 32
				reg := make([]int32, nRegion)
				for j := 0; j < nRegion; j++ {
					reg[j] = int32(u64At(msg, o))
					o += 8
				}
				regions[bid] = reg
			}
		}
		off := int64(0)
		for _, bid := range survivors {
			sz, ok := sizes[bid]
			if !ok {
				return 0, nil, fmt.Errorf("pipeline: no size reported for block %d", bid)
			}
			entries = append(entries, pario.IndexEntry{
				BlockID: int32(bid), Offset: off, Size: sz, CRC: crcs[bid], Region: regions[bid],
			})
			offerMsg = appendU64(offerMsg, uint64(bid))
			offerMsg = appendU64(offerMsg, uint64(off))
			off += sz
		}
	}
	offerMsg = r.Bcast(0, offerMsg)
	offsets := make(map[int]int64)
	for o := 0; o+16 <= len(offerMsg); o += 16 {
		offsets[int(u64At(offerMsg, o))] = int64(u64At(offerMsg, o+8))
	}

	// Collective write rounds: every rank participates in every round,
	// contributing a block payload if it has one left, or a null write.
	tr := r.Tracer()
	for i := 0; i < maxPerRank; i++ {
		var data []byte
		var off int64
		bid := int64(-1)
		if i < len(mine) {
			data = payloads[mine[i]]
			off = offsets[mine[i]]
			bid = int64(mine[i])
		}
		wStart := r.Clock()
		if err := r.CollectiveWrite(name, off, data); err != nil {
			return 0, nil, err
		}
		if tr.Enabled() && bid >= 0 {
			tr.Span("write:block", wStart, r.Clock(),
				obs.I("id", bid), obs.I("bytes", int64(len(data))))
		}
	}

	// Rank 0 appends the footer in one more collective round.
	var footer []byte
	var footerOff int64
	if r.ID() == 0 {
		for i := range entries {
			footerOff = entries[i].Offset + entries[i].Size
		}
		footer = pario.EncodeFooter(entries)
	}
	if err := r.CollectiveWrite(name, footerOff, footer); err != nil {
		return 0, nil, err
	}
	size, err := c.FS().Size(name)
	if err != nil {
		return 0, nil, err
	}
	return size, entries, nil
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func u64At(b []byte, off int) uint64 {
	v := uint64(0)
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[off+i])
	}
	return v
}
