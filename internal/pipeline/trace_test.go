package pipeline

import (
	"bytes"
	"encoding/json"
	"testing"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/synth"
	"parms/internal/vtime"
)

// runTraced executes a fault-free full-merge pipeline with tracing on.
func runTraced(t *testing.T, procs int, vol *grid.Volume) *Result {
	t.Helper()
	c, err := mpsim.New(mpsim.Config{Procs: procs, Obs: obs.New(procs)})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), "vol", vol)
	res, err := Run(c, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: merge.Full(procs).Radices, Persistence: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace == nil || res.Metrics == nil {
		t.Fatal("traced run returned nil Trace or Metrics")
	}
	return res
}

// stageSpans returns rank id's top-level stage spans in emission order.
func stageSpans(t *testing.T, tr *obs.Tracer, id int) []obs.Span {
	t.Helper()
	want := make(map[string]bool, len(StageSpanNames))
	for _, n := range StageSpanNames {
		want[n] = true
	}
	var out []obs.Span
	for _, s := range tr.Spans(id) {
		if want[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// TestTraceSpansTileTimeline is the golden tiling property: on every
// rank the stage spans (each stage followed by its boundary sync span)
// partition [0, end of sync:write] with no gaps and no overlaps, the
// allreduced boundary stamped on each sync span equals the max stage
// span end across ranks, and Result.Times is exactly the difference of
// consecutive boundaries.
func TestTraceSpansTileTimeline(t *testing.T) {
	const procs = 8
	res := runTraced(t, procs, synth.Sinusoid(17, 2))
	tr := res.Trace
	if tr.Procs() != procs {
		t.Fatalf("trace has %d ranks, want %d", tr.Procs(), procs)
	}

	// Max end per span name across ranks, and the boundary attr of each
	// sync span (identical on every rank by construction).
	maxEnd := make(map[string]vtime.Time)
	boundaries := make(map[string]float64)
	for id := 0; id < procs; id++ {
		spans := stageSpans(t, tr, id)
		if len(spans) != len(StageSpanNames) {
			t.Fatalf("rank %d: %d stage spans, want %d", id, len(spans), len(StageSpanNames))
		}
		for i, s := range spans {
			if s.Name != StageSpanNames[i] {
				t.Fatalf("rank %d span %d: %q, want %q", id, i, s.Name, StageSpanNames[i])
			}
			if i == 0 {
				if s.Start != 0 {
					t.Errorf("rank %d: first span starts at %v, want 0", id, s.Start)
				}
			} else if s.Start != spans[i-1].End {
				t.Errorf("rank %d: %q starts at %v but %q ended at %v (gap or overlap)",
					id, s.Name, s.Start, spans[i-1].Name, spans[i-1].End)
			}
			if s.End < s.Start {
				t.Errorf("rank %d: %q ends before it starts", id, s.Name)
			}
			if s.End > maxEnd[s.Name] {
				maxEnd[s.Name] = s.End
			}
			if b, ok := s.Attr("boundary"); ok {
				if prev, seen := boundaries[s.Name]; seen && prev != b.Float() {
					t.Errorf("%q boundary differs across ranks: %v vs %v", s.Name, prev, b.Float())
				}
				boundaries[s.Name] = b.Float()
			}
		}
	}

	// The allreduced boundary is the max clock at entry to the sync
	// collective, i.e. the max end of the stage span it closes.
	for _, stage := range []string{"read", "compute", "merge", "write"} {
		if got, want := boundaries["sync:"+stage], float64(maxEnd[stage]); got != want {
			t.Errorf("boundary(sync:%s) = %v, want max %s span end %v", stage, got, stage, want)
		}
	}

	// Result.Times is exactly the boundary differences — what an
	// MPI_Wtime-after-barrier trace would report.
	t0 := boundaries["sync:init"]
	wantTimes := StageTimes{
		Read:    boundaries["sync:read"] - t0,
		Compute: boundaries["sync:compute"] - boundaries["sync:read"],
		Merge:   boundaries["sync:merge"] - boundaries["sync:compute"],
		Write:   boundaries["sync:write"] - boundaries["sync:merge"],
		Total:   boundaries["sync:write"] - t0,
	}
	if res.Times != wantTimes {
		t.Errorf("Result.Times = %+v, want boundary differences %+v", res.Times, wantTimes)
	}

	// Sub-spans (read:block, block, serialize, glue, ...) must stay
	// within the run and never precede time zero.
	for id := 0; id < procs; id++ {
		for _, s := range tr.Spans(id) {
			if s.Start < 0 || s.End > maxEnd["sync:write"] {
				t.Errorf("rank %d: span %q [%v, %v] outside run [0, %v]",
					id, s.Name, s.Start, s.End, maxEnd["sync:write"])
			}
		}
	}
}

// TestTraceDeterminism: two identically configured fault-free runs must
// serialize to byte-identical trace JSON and metrics dumps.
func TestTraceDeterminism(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	var traces, proms [2][]byte
	for i := range traces {
		res := runTraced(t, 8, vol)
		var tb, pb bytes.Buffer
		if err := res.Trace.WriteChromeTrace(&tb); err != nil {
			t.Fatal(err)
		}
		if err := res.Metrics.WritePrometheus(&pb); err != nil {
			t.Fatal(err)
		}
		traces[i] = tb.Bytes()
		proms[i] = pb.Bytes()
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Error("trace JSON differs between identical runs")
	}
	if !bytes.Equal(proms[0], proms[1]) {
		t.Error("metrics dump differs between identical runs")
	}
}

// TestTrace64Ranks checks the exported Chrome trace of a 64-rank run:
// one track per rank, timestamps monotonic within each track, and the
// per-stage maxima recoverable from the JSON matching Result.Times.
func TestTrace64Ranks(t *testing.T) {
	if testing.Short() {
		t.Skip("64-rank run in -short mode")
	}
	const procs = 64
	res := runTraced(t, procs, synth.Sinusoid(33, 4))
	var buf bytes.Buffer
	if err := res.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace JSON does not parse: %v", err)
	}
	tracks := make(map[int]float64) // last span ts per tid
	seen := make(map[int]bool)
	stageMax := make(map[string]float64) // span name -> max end, µs
	for _, ev := range tf.TraceEvents {
		seen[ev.Tid] = true
		if ev.Ph != "X" {
			continue
		}
		if last, ok := tracks[ev.Tid]; ok && ev.Ts < last {
			t.Fatalf("tid %d: ts %v goes backwards (last %v)", ev.Tid, ev.Ts, last)
		}
		tracks[ev.Tid] = ev.Ts
		if end := ev.Ts + ev.Dur; end > stageMax[ev.Name] {
			stageMax[ev.Name] = end
		}
	}
	if len(seen) != procs {
		t.Errorf("trace covers %d tracks, want %d", len(seen), procs)
	}
	// Each stage boundary is the max stage-span end across ranks (the
	// clocks all start at 0, so the init boundary is 0), and Result.Times
	// is boundary differences. Reproduce that from the exported JSON to
	// the trace's fixed-point µs resolution.
	want := map[string]float64{
		"read":    stageMax["read"] / 1e6,
		"compute": (stageMax["compute"] - stageMax["read"]) / 1e6,
		"merge":   (stageMax["merge"] - stageMax["compute"]) / 1e6,
		"write":   (stageMax["write"] - stageMax["merge"]) / 1e6,
	}
	got := map[string]float64{
		"read": res.Times.Read, "compute": res.Times.Compute,
		"merge": res.Times.Merge, "write": res.Times.Write,
	}
	for stage, w := range want {
		if !within(got[stage], w, 1e-8) {
			t.Errorf("Times.%s = %v, trace says %v", stage, got[stage], w)
		}
	}
	if !within(res.Times.Total, stageMax["write"]/1e6, 1e-8) {
		t.Errorf("Times.Total = %v, trace max write end %v s", res.Times.Total, stageMax["write"]/1e6)
	}
}

func within(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}
