package pipeline

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/synth"
)

// runChaos executes the pipeline under a fault plan with a hard
// real-time hang guard: no injected fault is ever allowed to hang the
// run, only to fail it or be survived.
func runChaos(t *testing.T, procs int, plan *fault.Plan, grace time.Duration,
	p Params, vol *grid.Volume) (*mpsim.Cluster, *Result, error) {
	t.Helper()
	c, err := mpsim.New(mpsim.Config{Procs: procs, Faults: plan, RecvGrace: grace})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), p.File, vol)
	type outcome struct {
		res *Result
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		res, err := Run(c, p)
		done <- outcome{res, err}
	}()
	select {
	case o := <-done:
		return c, o.res, o.err
	case <-time.After(120 * time.Second):
		t.Fatal("chaos run hung")
		return nil, nil, nil
	}
}

func blockList(blocks []int) string { return fmt.Sprint(blocks) }

// TestChaosSurvivesCrashDropAndCorruption is the headline fault drill:
// a 64-rank full-merge run of the sinusoid volume with a rank crash, a
// dropped merge payload and a corrupted merge payload injected. The run
// must complete, report every fault accurately, and produce exactly the
// fault-free result.
func TestChaosSurvivesCrashDropAndCorruption(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{8, 8}, Persistence: 0.1,
	}

	_, clean, err := runChaos(t, 64, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	if rep := clean.FaultReport; rep.Faulty() {
		t.Fatalf("fault-free run reports faults: %v", rep)
	}

	// Rank 5 crashes after the compute stage (its block 5 complex is
	// lost and never sent); rank 3's first merge payload to rank 0 is
	// dropped; rank 6's is corrupted in flight. All three blocks belong
	// to the round-0 group rooted at block 0, owned by rank 0.
	plan := fault.NewPlan(42).
		CrashRank(5, "compute").
		DropMessage(3, 0, 1).
		CorruptMessage(6, 0, 1)
	fs, res, err := runChaos(t, 64, plan, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}

	rep := res.FaultReport
	if rep.RankCrashes != 1 {
		t.Errorf("RankCrashes = %d, want 1", rep.RankCrashes)
	}
	// The crashed rank's silence and the dropped payload each cost the
	// root one receive timeout; the corrupted payload arrives on time
	// but fails the checksum.
	if rep.Timeouts != 2 {
		t.Errorf("Timeouts = %d, want 2", rep.Timeouts)
	}
	if rep.Corruptions != 1 {
		t.Errorf("Corruptions = %d, want 1", rep.Corruptions)
	}
	if rep.Recomputes != 3 {
		t.Errorf("Recomputes = %d, want 3", rep.Recomputes)
	}
	want := blockList([]int{3, 5, 6})
	if blockList(rep.LostBlocks) != want || blockList(rep.RecoveredBlocks) != want {
		t.Errorf("lost %v recovered %v, want %s both", rep.LostBlocks, rep.RecoveredBlocks, want)
	}
	if len(plan.Injected()) != 3 {
		t.Errorf("injection log: %v", plan.Injected())
	}

	// Graceful degradation must be invisible in the output: identical
	// surviving critical-point counts and a loadable, checksummed
	// output file. (Arc multiplicities may differ: recovery glues the
	// rebuilt subtree after the on-time members, and cancellation order
	// affects which geometric arcs merge — the persistent critical
	// points are order-invariant.)
	if res.Nodes != clean.Nodes {
		t.Errorf("faulty run nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	if res.OutputBlocks != 1 {
		t.Errorf("OutputBlocks = %d, want 1", res.OutputBlocks)
	}
	all, err := pario.LoadAll(fs.FS(), "vol.msc")
	if err != nil {
		t.Fatalf("load faulty run's output: %v", err)
	}
	n, _ := all[0].AliveCounts()
	if n != clean.Nodes {
		t.Errorf("output file nodes %v, fault-free %v", n, clean.Nodes)
	}
}

// TestChaosFaultEventsAppearInTrace re-runs the headline drill with
// tracing on and checks that every injected fault shows up as an
// instant event on the track of the rank that observed it, inside the
// stage span where it happened: the crash on the crashed rank's
// compute span, the timeouts (dropped payload + crashed rank's
// silence) and the checksum rejection on the merge-group root's merge
// span, each carrying the block/src/round attributes.
func TestChaosFaultEventsAppearInTrace(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{8, 8}, Persistence: 0.1,
	}
	plan := fault.NewPlan(42).
		CrashRank(5, "compute").
		DropMessage(3, 0, 1).
		CorruptMessage(6, 0, 1)
	c, err := mpsim.New(mpsim.Config{Procs: 64, Faults: plan, Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), "vol", vol)
	res, err := Run(c, params)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace

	// span returns rank id's unique stage span with the given name.
	span := func(id int, name string) obs.Span {
		t.Helper()
		for _, s := range tr.Spans(id) {
			if s.Name == name {
				return s
			}
		}
		t.Fatalf("rank %d has no %q span", id, name)
		return obs.Span{}
	}
	contains := func(s obs.Span, i obs.Instant) bool {
		return s.Start <= i.Ts && i.Ts <= s.End
	}

	// The crash: one instant on rank 5, inside its compute span.
	var crashes []obs.Instant
	for _, in := range tr.Instants(5) {
		if in.Name == "fault:crash" {
			crashes = append(crashes, in)
		}
	}
	if len(crashes) != 1 {
		t.Fatalf("rank 5 has %d fault:crash instants, want 1", len(crashes))
	}
	if a, ok := crashes[0].Attr("stage"); !ok || a.Str() != "compute" {
		t.Errorf("crash instant stage attr = %v", crashes[0].Attrs)
	}
	if s := span(5, "compute"); !contains(s, crashes[0]) {
		t.Errorf("crash at %v outside rank 5 compute span [%v, %v]", crashes[0].Ts, s.Start, s.End)
	}

	// The timeouts and the corruption: on the round-0 root (rank 0),
	// inside its merge span, naming the lost blocks and their senders.
	mergeSpan := span(0, "merge")
	timeoutBlocks := map[int64]bool{}
	corruptBlocks := map[int64]bool{}
	for _, in := range tr.Instants(0) {
		switch in.Name {
		case "fault:timeout", "fault:corrupt":
		default:
			continue
		}
		if !contains(mergeSpan, in) {
			t.Errorf("%s at %v outside rank 0 merge span [%v, %v]", in.Name, in.Ts, mergeSpan.Start, mergeSpan.End)
		}
		block, _ := in.Attr("block")
		src, _ := in.Attr("src")
		round, _ := in.Attr("round")
		if src.Int() != block.Int() || round.Int() != 0 {
			t.Errorf("%s attrs block=%d src=%d round=%d", in.Name, block.Int(), src.Int(), round.Int())
		}
		if in.Name == "fault:timeout" {
			timeoutBlocks[block.Int()] = true
		} else {
			corruptBlocks[block.Int()] = true
		}
	}
	if !timeoutBlocks[3] || !timeoutBlocks[5] || len(timeoutBlocks) != 2 {
		t.Errorf("timeout instants for blocks %v, want {3, 5}", timeoutBlocks)
	}
	if !corruptBlocks[6] || len(corruptBlocks) != 1 {
		t.Errorf("corrupt instants for blocks %v, want {6}", corruptBlocks)
	}

	// No other rank saw a fault event.
	for id := 0; id < 64; id++ {
		for _, in := range tr.Instants(id) {
			if (in.Name == "fault:crash" && id != 5) ||
				((in.Name == "fault:timeout" || in.Name == "fault:corrupt") && id != 0) {
				t.Errorf("unexpected %s on rank %d", in.Name, id)
			}
		}
	}

	// The registry agrees with the fault report.
	if got := res.Metrics.CounterValue("mpsim_rank_crashes_total"); got != 1 {
		t.Errorf("mpsim_rank_crashes_total = %d, want 1", got)
	}
	if got := res.Metrics.CounterValue("mpsim_recv_timeouts_total"); got != int64(res.FaultReport.Timeouts) {
		t.Errorf("mpsim_recv_timeouts_total = %d, report says %d", got, res.FaultReport.Timeouts)
	}
}

// TestChaosSingleDropAlwaysRecovers is the drop-tolerance property: for
// any single dropped point-to-point message, the run either completes
// with the fault-free result or fails with an error — it never hangs
// (runChaos enforces the bound) and never silently degrades.
func TestChaosSingleDropAlwaysRecovers(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{8}, Persistence: 0.2,
	}
	_, clean, err := runChaos(t, 8, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	for src := 1; src < 8; src++ {
		plan := fault.NewPlan(int64(src)).DropMessage(src, 0, 1)
		_, res, err := runChaos(t, 8, plan, 500*time.Millisecond, params, vol)
		if err != nil {
			t.Errorf("drop %d->0: run failed: %v", src, err)
			continue
		}
		if res.Nodes != clean.Nodes {
			t.Errorf("drop %d->0: nodes %v, want %v", src, res.Nodes, clean.Nodes)
		}
		rep := res.FaultReport
		if rep.Timeouts != 1 || blockList(rep.LostBlocks) != blockList([]int{src}) {
			t.Errorf("drop %d->0: report %v", src, rep)
		}
	}
}

// TestChaosCrashAtMergeRound: a rank that carries a round-0 merge
// result crashes entering round 1, taking its whole merged subtree with
// it. The root must recover both underlying blocks.
func TestChaosCrashAtMergeRound(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{2, 2}, Persistence: 0.2,
	}
	_, clean, err := runChaos(t, 4, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 owns block 2, the root of round 0's {2,3} group.
	plan := fault.NewPlan(7).CrashRank(2, "merge:1")
	_, res, err := runChaos(t, 4, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.RankCrashes != 1 || rep.Timeouts != 1 || rep.Recomputes != 1 {
		t.Errorf("report %v; want 1 crash, 1 timeout, 1 recompute", rep)
	}
	if got := blockList(rep.RecoveredBlocks); got != blockList([]int{2, 3}) {
		t.Errorf("recovered %v, want [2 3]", rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
}

// TestChaosCrashAtWrite: the rank holding the fully merged complex
// crashes entering the write stage; the write path must rebuild the
// entire merge deterministically and still emit a bit-valid file.
func TestChaosCrashAtWrite(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{2, 2}, Persistence: 0.2,
	}
	_, clean, err := runChaos(t, 4, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(9).CrashRank(0, "write")
	fs, res, err := runChaos(t, 4, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.RankCrashes != 1 || rep.Recomputes != 1 {
		t.Errorf("report %v; want 1 crash, 1 recompute", rep)
	}
	if got := blockList(rep.RecoveredBlocks); got != blockList([]int{0, 1, 2, 3}) {
		t.Errorf("recovered %v, want [0 1 2 3]", rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	all, err := pario.LoadAll(fs.FS(), "vol.msc")
	if err != nil {
		t.Fatalf("load output: %v", err)
	}
	n, _ := all[0].AliveCounts()
	if n != clean.Nodes {
		t.Errorf("output nodes %v, want %v", n, clean.Nodes)
	}
}

// TestChaosFlakyStorage: transient filesystem failures are retried and
// reported; permanent ones fail the run cleanly instead of hanging.
func TestChaosFlakyStorage(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{4}, Persistence: 0.2,
	}
	plan := fault.NewPlan(11).FailRead("vol", 2).FailWrite("vol.msc", 2)
	_, res, err := runChaos(t, 4, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatalf("transient storage faults not survived: %v", err)
	}
	if res.FaultReport.IORetries < 4 {
		t.Errorf("IORetries = %d, want >= 4", res.FaultReport.IORetries)
	}

	perm := fault.NewPlan(12).FailWrite("vol.msc", -1)
	_, _, err = runChaos(t, 4, perm, 500*time.Millisecond, params, vol)
	if err == nil {
		t.Fatal("permanent write failure did not surface")
	}
}

// TestChaosDuplicatedPayloadHarmless: a duplicated merge payload leaves
// an orphan message in a round-unique tag slot; the result is
// unaffected.
func TestChaosDuplicatedPayloadHarmless(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{8}, Persistence: 0.2,
	}
	_, clean, err := runChaos(t, 8, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(13).DuplicateMessage(2, 0, 1)
	_, res, err := runChaos(t, 8, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
	if res.FaultReport.Recomputes != 0 {
		t.Errorf("duplicate forced %d recomputes", res.FaultReport.Recomputes)
	}
}

// TestChaosCheckpointRestoreByRound is the tentpole recovery matrix: a
// 64-rank radix-4 merge with a rank crash injected at the start of each
// round, run with checkpointing on and off. With checkpoints every
// round, any crash after round 0 must be served entirely by a
// checkpoint read — zero recomputes — and, because the restored complex
// is the exact payload the crashed member would have sent, the output
// file must be byte-identical to the fault-free run. A round-0 crash
// has no checkpoint to restore from and must fall back to recompute;
// with checkpoints off every crash recomputes.
func TestChaosCheckpointRestoreByRound(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	base := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{4, 4, 4}, Persistence: 0.1,
		CheckpointEvery: 1,
	}
	fs, clean, err := runChaos(t, 64, nil, 0, base, vol)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}

	// stride(r) = 1, 4, 16: the block that is a non-root member of the
	// round-r group rooted at block 0, owned by the same-numbered rank.
	stride := []int{1, 4, 16}
	for _, ckpt := range []int{1, 0} {
		for round := 0; round < 3; round++ {
			name := fmt.Sprintf("ckpt=%d/round=%d", ckpt, round)
			t.Run(name, func(t *testing.T) {
				p := base
				p.CheckpointEvery = ckpt
				crash := stride[round]
				plan := fault.NewPlan(int64(100+round)).
					CrashRank(crash, fmt.Sprintf("merge:%d", round))
				fs, res, err := runChaos(t, 64, plan, 500*time.Millisecond, p, vol)
				if err != nil {
					t.Fatal(err)
				}
				rep := res.FaultReport
				if rep.RankCrashes != 1 {
					t.Errorf("RankCrashes = %d, want 1", rep.RankCrashes)
				}
				if res.Nodes != clean.Nodes {
					t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
				}
				switch {
				case ckpt == 1 && round > 0:
					// Late-round crash with checkpoints: recovery is a
					// read, never a recompute, and the output is
					// byte-identical to the fault-free file.
					if rep.Recomputes != 0 || rep.RecomputeCells != 0 {
						t.Errorf("recomputes = %d (cells %d), want 0 with a valid checkpoint",
							rep.Recomputes, rep.RecomputeCells)
					}
					if rep.CheckpointRestores != 1 || rep.CheckpointFallbacks != 0 {
						t.Errorf("restores = %d fallbacks = %d, want 1 and 0",
							rep.CheckpointRestores, rep.CheckpointFallbacks)
					}
					if rep.CheckpointBytesRead <= 0 {
						t.Errorf("CheckpointBytesRead = %d, want > 0", rep.CheckpointBytesRead)
					}
					// The checkpoint covers the crashed member's subtree:
					// the stride(round) blocks earlier rounds folded in.
					var want []int
					for b := crash; b < crash+stride[round]; b++ {
						want = append(want, b)
					}
					if blockList(rep.RestoredBlocks) != blockList(want) {
						t.Errorf("restored %v, want %v", rep.RestoredBlocks, want)
					}
					got, err := fs.FS().Get("vol.msc")
					if err != nil {
						t.Fatal(err)
					}
					if !bytes.Equal(got, cleanBytes) {
						t.Errorf("output differs from fault-free run (%d vs %d bytes)",
							len(got), len(cleanBytes))
					}
				case ckpt == 1 && round == 0:
					// Nothing checkpointed before round 0: the probe must
					// fall back to recompute, not fail the run.
					if rep.CheckpointRestores != 0 || rep.CheckpointFallbacks < 1 {
						t.Errorf("restores = %d fallbacks = %d, want 0 and >= 1",
							rep.CheckpointRestores, rep.CheckpointFallbacks)
					}
					if rep.Recomputes < 1 {
						t.Errorf("Recomputes = %d, want >= 1", rep.Recomputes)
					}
				default: // checkpoints off
					if rep.CheckpointRestores != 0 || rep.CheckpointFallbacks != 0 {
						t.Errorf("restores = %d fallbacks = %d with checkpoints off",
							rep.CheckpointRestores, rep.CheckpointFallbacks)
					}
					if rep.Recomputes < 1 {
						t.Errorf("Recomputes = %d, want >= 1", rep.Recomputes)
					}
					if rep.RecomputeCells <= 0 {
						t.Errorf("RecomputeCells = %d, want > 0 when recomputing from source",
							rep.RecomputeCells)
					}
					if len(rep.RestoredBlocks) != 0 {
						t.Errorf("restored blocks %v with checkpoints off", rep.RestoredBlocks)
					}
				}
			})
		}
	}
}

// TestChaosCorruptCheckpointFallsBack bit-flips every read of the one
// checkpoint recovery needs: the CRC-verified decode must reject it and
// recovery must fall back to recompute, producing the correct complex
// rather than gluing damaged state.
func TestChaosCorruptCheckpointFallsBack(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{2, 2}, Persistence: 0.2,
		CheckpointEvery: 1,
	}
	_, clean, err := runChaos(t, 4, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	// Rank 2 merged {2,3} in round 0 and checkpointed the result; it
	// crashes entering round 1 and its checkpoint reads back corrupted.
	plan := fault.NewPlan(21).
		CrashRank(2, "merge:1").
		CorruptRead(pario.CheckpointName("ckpt", 0, 2), -1)
	_, res, err := runChaos(t, 4, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.CheckpointRestores != 0 || rep.CheckpointFallbacks != 1 {
		t.Errorf("restores = %d fallbacks = %d, want 0 and 1",
			rep.CheckpointRestores, rep.CheckpointFallbacks)
	}
	if rep.Recomputes != 1 {
		t.Errorf("Recomputes = %d, want 1", rep.Recomputes)
	}
	if got := blockList(rep.RecoveredBlocks); got != blockList([]int{2, 3}) {
		t.Errorf("recovered %v, want [2 3]", rep.RecoveredBlocks)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
}

// TestChaosCrashAtWriteRestoresFromCheckpoint: with checkpointing on,
// even losing the fully merged complex entering the write stage is
// recovered by reading the final round's checkpoint — no recompute —
// and the file written is byte-identical to the fault-free one.
func TestChaosCrashAtWriteRestoresFromCheckpoint(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{2, 2}, Persistence: 0.2,
		CheckpointEvery: 1,
	}
	fs, clean, err := runChaos(t, 4, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	cleanBytes, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(9).CrashRank(0, "write")
	fs, res, err := runChaos(t, 4, plan, 500*time.Millisecond, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.Recomputes != 0 || rep.CheckpointRestores != 1 {
		t.Errorf("report %v; want 0 recomputes, 1 restore", &rep)
	}
	if got := blockList(rep.RestoredBlocks); got != blockList([]int{0, 1, 2, 3}) {
		t.Errorf("restored %v, want [0 1 2 3]", rep.RestoredBlocks)
	}
	got, err := fs.FS().Get("vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, cleanBytes) {
		t.Errorf("output differs from fault-free run (%d vs %d bytes)", len(got), len(cleanBytes))
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
}

// TestChaosLargeRankCheckpointSweep is the scale drill from the
// ROADMAP: a 512-rank full merge under probabilistic message drops plus
// a deliberate last-round crash, with checkpoints on. Recovery must
// hold the result together at scale. Short mode (-short, the per-PR CI
// run) shrinks the cluster to 64 ranks; the nightly workflow runs the
// full width.
func TestChaosLargeRankCheckpointSweep(t *testing.T) {
	procs := 512
	radices := []int{8, 8, 8}
	if testing.Short() {
		procs, radices = 64, []int{8, 8}
	}
	vol := synth.Sinusoid(17, 2)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: procs, Radices: radices, Persistence: 0.2,
		CheckpointEvery: 1,
	}
	_, clean, err := runChaos(t, procs, nil, 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	lastRound := len(radices) - 1
	crash := 1
	for _, r := range radices[:lastRound] {
		crash *= r
	}
	plan := fault.NewPlan(77).
		DropProbability(0.002).
		CrashRank(crash, fmt.Sprintf("merge:%d", lastRound))
	_, res, err := runChaos(t, procs, plan, 2*time.Second, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.FaultReport
	if rep.RankCrashes != 1 {
		t.Errorf("RankCrashes = %d, want 1", rep.RankCrashes)
	}
	if rep.CheckpointRestores < 1 {
		t.Errorf("CheckpointRestores = %d, want >= 1", rep.CheckpointRestores)
	}
	if res.Nodes != clean.Nodes {
		t.Errorf("nodes %v, fault-free %v", res.Nodes, clean.Nodes)
	}
}
