package pipeline

import (
	"testing"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/pario"
	"parms/internal/synth"
)

func runPipeline(t *testing.T, procs int, p Params, vol *grid.Volume) (*mpsim.Cluster, *Result) {
	t.Helper()
	c, err := mpsim.New(mpsim.Config{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), p.File, vol)
	res, err := Run(c, p)
	if err != nil {
		t.Fatal(err)
	}
	return c, res
}

func TestEndToEndFullMerge(t *testing.T) {
	vol := synth.Sinusoid(17, 2)

	// Serial reference: one proc, one block, no merge.
	_, serial := runPipeline(t, 1, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Persistence: 0.3, KeepComplexes: true,
	}, vol)

	for _, procs := range []int{2, 4, 8} {
		sched := merge.Full(procs)
		c, res := runPipeline(t, procs, Params{
			File: "vol", Dims: vol.Dims, DType: grid.F32,
			Radices: sched.Radices, Persistence: 0.3, KeepComplexes: true,
		}, vol)
		if res.OutputBlocks != 1 {
			t.Fatalf("procs=%d: %d output blocks after full merge, want 1", procs, res.OutputBlocks)
		}
		if res.Nodes != serial.Nodes {
			t.Errorf("procs=%d: node counts %v, serial %v", procs, res.Nodes, serial.Nodes)
		}
		if res.Truncated != 0 {
			t.Errorf("procs=%d: %d truncated traces", procs, res.Truncated)
		}
		// The output file must round-trip through the block reader.
		all, err := pario.LoadAll(c.FS(), "vol.msc")
		if err != nil {
			t.Fatalf("procs=%d: load output: %v", procs, err)
		}
		if len(all) != 1 {
			t.Fatalf("procs=%d: %d complexes in output", procs, len(all))
		}
		n, _ := all[0].AliveCounts()
		if n != res.Nodes {
			t.Errorf("procs=%d: file node counts %v, result %v", procs, n, res.Nodes)
		}
		if got := all[0].EulerCharacteristic(); got != 1 {
			t.Errorf("procs=%d: Euler characteristic %d", procs, got)
		}
		if len(all[0].Region) != procs {
			t.Errorf("procs=%d: merged region covers %d blocks", procs, len(all[0].Region))
		}
	}
}

func TestEndToEndPartialMerge(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	c, res := runPipeline(t, 8, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{4}, Persistence: 0.2,
	}, vol)
	if res.OutputBlocks != 2 {
		t.Fatalf("8 blocks with one radix-4 round: %d output blocks, want 2", res.OutputBlocks)
	}
	idx, err := pario.ReadIndex(c.FS(), "vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	if len(idx) != 2 {
		t.Fatalf("index has %d entries, want 2", len(idx))
	}
	if idx[0].BlockID != 0 || idx[1].BlockID != 4 {
		t.Fatalf("surviving blocks %d, %d; want 0, 4", idx[0].BlockID, idx[1].BlockID)
	}
	for _, e := range idx {
		if len(e.Region) != 4 {
			t.Errorf("block %d region has %d blocks, want 4", e.BlockID, len(e.Region))
		}
	}
}

func TestEndToEndNoMerge(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	c, res := runPipeline(t, 4, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32, Persistence: 0.2,
	}, vol)
	if res.OutputBlocks != 4 {
		t.Fatalf("no merge: %d output blocks, want 4", res.OutputBlocks)
	}
	all, err := pario.LoadAll(c.FS(), "vol.msc")
	if err != nil {
		t.Fatal(err)
	}
	// Without merging, boundary artifacts remain: the unmerged complex
	// is strictly larger than the fully merged one.
	totalNodes := 0
	for _, ms := range all {
		n, _ := ms.AliveCounts()
		totalNodes += n[0] + n[1] + n[2] + n[3]
	}
	_, full := runPipeline(t, 4, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{4}, Persistence: 0.2,
	}, vol)
	fullNodes := full.Nodes[0] + full.Nodes[1] + full.Nodes[2] + full.Nodes[3]
	if totalNodes <= fullNodes {
		t.Errorf("unmerged output (%d nodes) not larger than merged (%d)", totalNodes, fullNodes)
	}
}

func TestMoreBlocksThanProcs(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	_, serial := runPipeline(t, 1, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32, Persistence: 0.3,
	}, vol)
	_, res := runPipeline(t, 3, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 8, Radices: []int{8}, Persistence: 0.3,
	}, vol)
	if res.OutputBlocks != 1 {
		t.Fatalf("full merge of 8 blocks on 3 procs: %d output blocks", res.OutputBlocks)
	}
	if res.Nodes != serial.Nodes {
		t.Errorf("block-cyclic run node counts %v, serial %v", res.Nodes, serial.Nodes)
	}
}

func TestStageTimesPositiveAndOrdered(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	_, res := runPipeline(t, 8, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Radices: []int{8}, Persistence: 0.1,
	}, vol)
	ts := res.Times
	if ts.Read <= 0 || ts.Compute <= 0 || ts.Merge <= 0 || ts.Write <= 0 {
		t.Fatalf("non-positive stage time: %+v", ts)
	}
	sum := ts.Read + ts.Compute + ts.Merge + ts.Write
	if diff := ts.Total - sum; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("total %v != sum of stages %v", ts.Total, sum)
	}
	if len(res.Rounds) != 1 || res.Rounds[0].Radix != 8 {
		t.Fatalf("unexpected round stats %+v", res.Rounds)
	}
	if res.Rounds[0].BytesSent <= 0 {
		t.Fatal("merge round reports no bytes sent")
	}
}

func TestComputeTimeWeakScaling(t *testing.T) {
	// The paper's Figure 6 observation: compute time depends only on
	// block size. The same volume on 8× the procs should compute
	// roughly 8× faster.
	vol := synth.Sinusoid(33, 4)
	_, r1 := runPipeline(t, 1, Params{File: "vol", Dims: vol.Dims, DType: grid.F32, Persistence: 0.1}, vol)
	_, r8 := runPipeline(t, 8, Params{File: "vol", Dims: vol.Dims, DType: grid.F32, Persistence: 0.1}, vol)
	speedup := r1.Times.Compute / r8.Times.Compute
	if speedup < 4 || speedup > 16 {
		t.Errorf("compute speedup on 8 procs = %.2f, want near 8", speedup)
	}
}

func TestMeasuredMode(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	c, err := mpsim.New(mpsim.Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), "vol", vol)
	res, err := Run(c, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Persistence: 0.1, Measured: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Times.Compute <= 0 {
		t.Fatalf("measured compute time %v", res.Times.Compute)
	}
	// Measured wall time for this tiny volume is far below one modeled
	// Blue Gene/P second.
	if res.Times.Compute > 5 {
		t.Fatalf("measured compute time %v implausibly large", res.Times.Compute)
	}
}

func TestComputeMeanAtMostMax(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	_, res := runPipeline(t, 8, Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32, Persistence: 0.1,
	}, vol)
	if res.ComputeMean <= 0 {
		t.Fatal("no mean compute time")
	}
	if res.ComputeMean > res.Times.Compute+1e-9 {
		t.Fatalf("mean %v exceeds max %v", res.ComputeMean, res.Times.Compute)
	}
}
