package pipeline

import (
	"fmt"
	"testing"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/synth"
)

// TestChaosPooledWorkers re-runs the headline fault drill with the
// intra-rank worker pool enabled: every rank's compute stage dispatches
// its kernels over 4 workers while a crash, a dropped payload and a
// corrupted payload are injected. The drill exercises the pool under
// the race detector (the race CI job runs this file with -race) and
// pins that recovery accounting and the final complex are identical to
// the sequential drill — faults and parallel kernels must compose.
func TestChaosPooledWorkers(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	params := Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{8, 8}, Persistence: 0.1,
		Workers: 4,
	}
	plan := func() *fault.Plan {
		return fault.NewPlan(42).
			CrashRank(5, "compute").
			DropMessage(3, 0, 1).
			CorruptMessage(6, 0, 1)
	}

	_, pooled, err := runChaos(t, 64, plan(), 0, params, vol)
	if err != nil {
		t.Fatal(err)
	}
	seqParams := params
	seqParams.Workers = 1
	_, seq, err := runChaos(t, 64, plan(), 0, seqParams, vol)
	if err != nil {
		t.Fatal(err)
	}

	if pooled.Nodes != seq.Nodes {
		t.Errorf("pooled drill nodes %v, sequential drill %v", pooled.Nodes, seq.Nodes)
	}
	if pooled.Arcs != seq.Arcs {
		t.Errorf("pooled drill arcs %d, sequential drill %d", pooled.Arcs, seq.Arcs)
	}
	pr, sr := pooled.FaultReport, seq.FaultReport
	if pr.RankCrashes != sr.RankCrashes || pr.Timeouts != sr.Timeouts ||
		pr.Corruptions != sr.Corruptions || pr.Recomputes != sr.Recomputes {
		t.Errorf("recovery accounting diverged: pooled %+v, sequential %+v", pr, sr)
	}
	if fmt.Sprint(pr.RecoveredBlocks) != fmt.Sprint(sr.RecoveredBlocks) {
		t.Errorf("recovered blocks diverged: pooled %v, sequential %v",
			pr.RecoveredBlocks, sr.RecoveredBlocks)
	}
}
