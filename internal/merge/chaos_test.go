package merge

import (
	"bytes"
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/synth"
)

// framedPayload builds the framed wire form of a real block complex,
// exactly what Execute's phase 1 puts on the network.
func framedPayload(tb testing.TB) []byte {
	tb.Helper()
	vol := synth.Sinusoid(13, 2)
	block := grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{12, 12, 12}}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	ms := mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
	return mpsim.Frame(ms.Serialize())
}

// TestChaosFramedPayloadCorruptionRejected flips every single byte of a
// framed merge payload and tries a spread of truncations: the decoder
// must reject 100% of them — a corrupted complex must never be glued.
func TestChaosFramedPayloadCorruptionRejected(t *testing.T) {
	frame := framedPayload(t)
	for i := range frame {
		bad := append([]byte(nil), frame...)
		bad[i] ^= 0x20
		if _, err := decodeMember(bad); err == nil {
			t.Fatalf("byte flip at offset %d of %d accepted", i, len(frame))
		}
	}
	for n := 0; n < len(frame); n += 11 {
		if _, err := decodeMember(frame[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", n, len(frame))
		}
	}
	for _, pad := range []int{1, 8, 4096} {
		padded := append(append([]byte(nil), frame...), make([]byte, pad)...)
		if _, err := decodeMember(padded); err == nil {
			t.Fatalf("frame padded by %d bytes accepted", pad)
		}
	}
	if _, err := decodeMember(frame); err != nil {
		t.Fatalf("intact frame rejected: %v", err)
	}
}

// FuzzChaosUnframe: for any input that unframes successfully, any
// single-byte flip of it must be rejected (CRC-32C detects all
// single-byte errors; the length field detects resizes).
func FuzzChaosUnframe(f *testing.F) {
	frame := framedPayload(f)
	f.Add(frame, 0, byte(0x01))
	f.Add(frame, 4, byte(0x80))
	f.Add(frame, len(frame)-1, byte(0xff))
	f.Add(mpsim.Frame(nil), 0, byte(0x10))
	f.Fuzz(func(t *testing.T, data []byte, pos int, mask byte) {
		orig, err := mpsim.Unframe(data)
		if err != nil {
			return // not a valid frame to begin with
		}
		if len(data) == 0 || mask == 0 {
			return
		}
		idx := int(uint(pos) % uint(len(data)))
		mutated := append([]byte(nil), data...)
		mutated[idx] ^= mask
		back, err := mpsim.Unframe(mutated)
		if err == nil && !bytes.Equal(mutated, data) {
			t.Fatalf("corrupted frame accepted (flip at %d, mask %#x, payload equal: %v)",
				idx, mask, bytes.Equal(back, orig))
		}
	})
}
