package merge

import (
	"parms/internal/fault"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/vtime"
)

// Checkpoint configures merge-round checkpointing. After every Every-th
// round, each group root persists its merged, simplified complex as a
// single-entry PCSFM2 file (payload + footer CRCs) on the shared
// filesystem. Recovery then probes for the newest valid checkpoint
// covering a lost subtree and restores it with a retrying, CRC-verified
// read, replaying any later rounds locally — turning late-round
// recovery from O(subtree recompute) into O(payload read). Writes are
// independent (no collective synchronization) and non-fatal: a failed
// or corrupted checkpoint only means recovery falls back to Rebuild.
type Checkpoint struct {
	// Dir is the checkpoint directory on the simulated filesystem;
	// empty selects "ckpt".
	Dir string
	// Every writes a checkpoint after each round r with (r+1)%Every ==
	// 0; values < 1 disable checkpointing entirely.
	Every int
	// GC reclaims superseded checkpoints: once a root's round-r state is
	// safely on disk, the older checkpoints of every block in its
	// subtree cover strictly less progress and are deleted. The trade:
	// if the new file is later found corrupted, Restore can no longer
	// probe an older round and recovery degrades to Rebuild — still
	// correct, just slower. GC runs only after a successful write.
	GC bool
}

func (c *Checkpoint) dir() string {
	if c.Dir == "" {
		return "ckpt"
	}
	return c.Dir
}

// writesAfter reports whether roots persist their state at the end of
// the given round. Nil-safe: a nil policy never writes.
func (c *Checkpoint) writesAfter(round int) bool {
	return c != nil && c.Every > 0 && (round+1)%c.Every == 0
}

// write persists one root's post-round complex, then lets the GC
// reclaim the checkpoints it supersedes. Failures are recorded in the
// trace but deliberately not fatal: the checkpoint is an optimization
// of the recovery path, not a correctness requirement.
func (c *Checkpoint) write(r *mpsim.Rank, sched Schedule, nblocks, round, block int, ms *mscomplex.Complex, rep *fault.Report) {
	start := r.Clock()
	data := pario.EncodeCheckpoint(block, ms)
	name := pario.CheckpointName(c.dir(), round, block)
	if err := r.IndependentWrite(name, 0, data); err != nil {
		r.Tracer().Instant("fault:ckpt_write_fail", r.Clock(),
			obs.I("block", int64(block)), obs.I("round", int64(round)))
		if lg := r.Logger(); lg != nil {
			lg.Warn("ckpt.write_fail", "rank", r.ID(), "block", block, "round", round,
				"err", err.Error(), "vt", float64(r.Clock()))
		}
		if reg := r.Metrics(); reg != nil {
			reg.Counter("merge_checkpoint_write_errors_total").Add(1)
		}
		return
	}
	r.Tracer().Span("ckpt:write", start, r.Clock(),
		obs.I("block", int64(block)), obs.I("round", int64(round)),
		obs.I("bytes", int64(len(data))))
	if lg := r.Logger(); lg != nil {
		lg.Info("ckpt.write", "rank", r.ID(), "block", block, "round", round,
			"bytes", len(data), "vt", float64(r.Clock()))
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("merge_checkpoint_writes_total").Add(1)
		reg.Counter("merge_checkpoint_bytes_written_total").Add(int64(len(data)))
	}
	c.gc(r, sched, nblocks, round, block, rep)
}

// gc deletes the checkpoints superseded by a freshly written round-r
// state of block: every earlier checkpointed round k, for every block
// of the subtree the new file covers (the multiples of stride(k+1) in
// [block, block+stride(round+1))). Deletion is a metadata operation —
// no clock charge — matching unlink on a parallel filesystem.
func (c *Checkpoint) gc(r *mpsim.Rank, sched Schedule, nblocks, round, block int, rep *fault.Report) {
	if !c.GC {
		return
	}
	end := block + sched.Stride(round+1)
	if end > nblocks {
		end = nblocks
	}
	var files int
	var bytes int64
	for k := round - 1; k >= 0; k-- {
		if !c.writesAfter(k) {
			continue
		}
		for cb := block; cb < end; cb += sched.Stride(k + 1) {
			if n, ok := r.RemoveFile(pario.CheckpointName(c.dir(), k, cb)); ok {
				files++
				bytes += n
			}
		}
	}
	if files == 0 {
		return
	}
	if rep != nil {
		rep.CheckpointsGCed += files
		rep.CheckpointGCBytes += bytes
	}
	r.Tracer().Instant("ckpt:gc", r.Clock(),
		obs.I("block", int64(block)), obs.I("round", int64(round)),
		obs.I("files", int64(files)), obs.I("bytes", bytes))
	if lg := r.Logger(); lg != nil {
		lg.Info("ckpt.gc", "rank", r.ID(), "block", block, "round", round,
			"files", files, "bytes", bytes, "vt", float64(r.Clock()))
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("merge_checkpoint_gc_files_total").Add(int64(files))
		reg.Counter("merge_checkpoint_gc_bytes_total").Add(bytes)
	}
}

// read loads and validates the checkpoint of block at round k. A
// missing file, read failure, framing/CRC damage, or a block-id
// mismatch all return nil — the caller probes older rounds or falls
// back to recompute. The decode cost is charged to the rank's clock.
func (c *Checkpoint) read(r *mpsim.Rank, k, block int) (*mscomplex.Complex, int64) {
	name := pario.CheckpointName(c.dir(), k, block)
	size, err := r.FileSize(name)
	if err != nil {
		return nil, 0
	}
	data, err := r.IndependentRead(name, 0, int(size))
	if err != nil {
		return nil, 0
	}
	id, ms, err := pario.DecodeCheckpoint(data)
	if err != nil || id != block {
		r.Tracer().Instant("fault:ckpt_corrupt", r.Clock(),
			obs.I("block", int64(block)), obs.I("round", int64(k)))
		if lg := r.Logger(); lg != nil {
			lg.Warn("ckpt.corrupt", "rank", r.ID(), "block", block, "round", k,
				"vt", float64(r.Clock()))
		}
		if reg := r.Metrics(); reg != nil {
			reg.Counter("merge_checkpoint_corrupt_total").Add(1)
		}
		return nil, 0
	}
	r.Compute(vtime.Work{BytesCoded: size})
	return ms, size
}

// Restore serves the complex block carries entering the given round
// from the newest valid checkpoint covering it: it probes rounds
// round-1 down to 0 for a checkpoint of block, and on a hit replays any
// later rounds locally (members recovered recursively, checkpoint
// first). ok is false when no checkpoint validates — including when no
// Checkpoint policy is configured — and the caller should Rebuild.
func Restore(r *mpsim.Rank, sched Schedule, nblocks, block, round int, opts Options) (*mscomplex.Complex, bool, error) {
	c := opts.Checkpoint
	if c == nil {
		return nil, false, nil
	}
	start := r.Clock()
	for k := round - 1; k >= 0; k-- {
		if !c.writesAfter(k) || block%sched.Stride(k+1) != 0 {
			continue
		}
		ms, n := c.read(r, k, block)
		if ms == nil {
			continue
		}
		// Replay rounds k+1..round-1 of block's subtree: glue each
		// group member in member order and re-simplify, exactly as the
		// original merge did, so the result matches the lost state.
		for rr := k + 1; rr < round; rr++ {
			for _, g := range sched.RoundGroups(nblocks, rr) {
				if g.Root != block {
					continue
				}
				for _, m := range g.Members {
					if m == g.Root {
						continue
					}
					other, err := Recover(r, sched, nblocks, m, rr, opts)
					if err != nil {
						return nil, false, err
					}
					workBefore := ms.Work
					ms.Glue(other)
					r.Compute(workDelta(ms.Work, workBefore))
				}
				workBefore := ms.Work
				ms.Simplify(mscomplex.SimplifyOptions{Threshold: opts.Threshold})
				next := ms.Compact()
				r.Compute(workDelta(next.Work, workBefore))
				ms = next
			}
		}
		if opts.Report != nil {
			opts.Report.CheckpointRestores++
			opts.Report.CheckpointBytesRead += n
			end := block + sched.Stride(k+1)
			if end > nblocks {
				end = nblocks
			}
			for b := block; b < end; b++ {
				opts.Report.LostBlocks = append(opts.Report.LostBlocks, b)
				opts.Report.RestoredBlocks = append(opts.Report.RestoredBlocks, b)
			}
		}
		r.Tracer().Span("ckpt:restore", start, r.Clock(),
			obs.I("block", int64(block)), obs.I("round", int64(round)),
			obs.I("from_round", int64(k)), obs.I("bytes", n))
		if lg := r.Logger(); lg != nil {
			lg.Info("ckpt.restore", "rank", r.ID(), "block", block, "round", round,
				"from_round", k, "bytes", n, "vt", float64(r.Clock()))
		}
		if reg := r.Metrics(); reg != nil {
			reg.Counter("merge_checkpoint_restores_total").Add(1)
			reg.Counter("merge_checkpoint_bytes_read_total").Add(n)
			reg.Gauge("merge_checkpoint_restore_seconds_total").Add(float64(r.Clock() - start))
		}
		return ms, true, nil
	}
	if opts.Report != nil {
		opts.Report.CheckpointFallbacks++
	}
	r.Tracer().Instant("fault:ckpt_fallback", r.Clock(),
		obs.I("block", int64(block)), obs.I("round", int64(round)))
	if lg := r.Logger(); lg != nil {
		lg.Info("ckpt.fallback", "rank", r.ID(), "block", block, "round", round,
			"vt", float64(r.Clock()))
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("merge_checkpoint_fallbacks_total").Add(1)
	}
	return nil, false, nil
}

// Recover returns the complex block carries entering the given round:
// restored from the newest valid checkpoint when one validates, rebuilt
// deterministically from source data otherwise.
func Recover(r *mpsim.Rank, sched Schedule, nblocks, block, round int, opts Options) (*mscomplex.Complex, error) {
	ms, ok, err := Restore(r, sched, nblocks, block, round, opts)
	if err != nil {
		return nil, err
	}
	if ok {
		return ms, nil
	}
	return Rebuild(r, sched, nblocks, block, round, opts)
}
