// Package merge implements the second stage of the paper's algorithm:
// merging per-block MS complexes down to a smaller number of output
// blocks through configurable rounds of radix-2, radix-4 or radix-8
// reductions (section IV-F). The schedule is inspired by the Radix-k
// image compositing algorithm: each round partitions the surviving
// blocks into groups of the round's radix; the lowest block of each
// group is the root, the other members send their serialized complexes
// to it, and the root glues them, reclassifies boundary nodes against
// the merged region, and re-runs persistence simplification.
package merge

import (
	"fmt"
)

// Schedule is the per-round radices of a merge.
type Schedule struct {
	Radices []int
}

// Full returns the paper's recommended schedule for a complete merge of
// nblocks (a power of two) down to one block: radix-8 rounds, with any
// remainder radix placed in the earliest round ("smaller radices are
// slightly better in early rounds rather than later"). For example 2048
// blocks merge in four rounds [4 8 8 8] and 8192 in five [2 8 8 8 8].
func Full(nblocks int) Schedule {
	if nblocks <= 1 {
		return Schedule{}
	}
	e := 0
	for 1<<e < nblocks {
		e++
	}
	rounds := (e + 2) / 3
	first := e - 3*(rounds-1)
	radices := make([]int, 0, rounds)
	radices = append(radices, 1<<first)
	for i := 1; i < rounds; i++ {
		radices = append(radices, 8)
	}
	return Schedule{Radices: radices}
}

// Partial returns a schedule of n rounds of radix-8 (or smaller when
// nblocks runs out), the paper's partial-merge configuration.
func Partial(nblocks, rounds int) Schedule {
	s := Full(nblocks)
	if rounds < len(s.Radices) {
		// Keep the *last* rounds radix-8: drop leading rounds.
		s.Radices = s.Radices[len(s.Radices)-rounds:]
	}
	return s
}

// Validate checks the schedule against a block count: radices must be
// 2, 4 or 8 (the paper's restriction) and the reduction must not exceed
// the number of blocks.
func (s Schedule) Validate(nblocks int) error {
	product := 1
	for _, r := range s.Radices {
		if r != 2 && r != 4 && r != 8 {
			return fmt.Errorf("merge: radix %d not in {2,4,8}", r)
		}
		product *= r
	}
	if product > nblocks {
		return fmt.Errorf("merge: schedule reduces by %d× but only %d blocks exist", product, nblocks)
	}
	return nil
}

// Reduction returns the total factor by which the schedule divides the
// block count.
func (s Schedule) Reduction() int {
	product := 1
	for _, r := range s.Radices {
		product *= r
	}
	return product
}

// Group is one communicating group of a merge round: Members send to
// Root (Root is also listed first in Members).
type Group struct {
	Root    int
	Members []int
}

// Stride returns the id spacing of surviving blocks before the given
// round (the product of earlier radices).
func (s Schedule) Stride(round int) int {
	stride := 1
	for i := 0; i < round; i++ {
		stride *= s.Radices[i]
	}
	return stride
}

// RoundGroups partitions the blocks surviving into round (0-based) into
// groups of that round's radix. Blocks surviving round r are those whose
// id is a multiple of the product of radices of rounds 0..r-1.
func (s Schedule) RoundGroups(nblocks, round int) []Group {
	stride := s.Stride(round)
	radix := s.Radices[round]
	var groups []Group
	for root := 0; root < nblocks; root += stride * radix {
		g := Group{Root: root}
		for j := 0; j < radix; j++ {
			m := root + j*stride
			if m < nblocks {
				g.Members = append(g.Members, m)
			}
		}
		groups = append(groups, g)
	}
	return groups
}

// Survivors returns the block ids that remain after all rounds.
func (s Schedule) Survivors(nblocks int) []int {
	stride := s.Stride(len(s.Radices))
	var out []int
	for b := 0; b < nblocks; b += stride {
		out = append(out, b)
	}
	return out
}
