package merge

import (
	"fmt"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/vtime"
)

// Tag base for merge-round messages; the round index is added so that
// successive rounds never cross-match.
const tagMergeBase = 1 << 20

// RoundStats reports one executed merge round, identical on all ranks.
type RoundStats struct {
	Radix int
	// Seconds is the virtual duration of the round (max over ranks).
	Seconds float64
	// BytesSent is the total payload communicated in the round.
	BytesSent float64
	// Blocks is the number of surviving blocks after the round.
	Blocks int
}

// Options configures Execute beyond the schedule itself.
type Options struct {
	// Threshold is the persistence simplification threshold re-applied
	// after every round.
	Threshold float32
	// Timeout is the virtual-time budget a group root waits for each
	// member payload. 0 selects plain blocking receives: any lost
	// message then blocks forever, so set a timeout whenever faults are
	// possible.
	Timeout vtime.Time
	// Recompute rebuilds one original block's simplified, compacted
	// complex from source data, charging the work to rk's clock and the
	// recovery counters to rep (either may differ from the Execute
	// rank/report: speculative recovery runs on a quiet twin with a
	// scratch report so a cancelled race leaves no trace). When set,
	// Execute degrades gracefully: a member that times out or arrives
	// corrupted is excluded from its group's glue, recorded, and
	// deterministically reconstructed — the compute stage is
	// deterministic, so the rebuilt subtree is identical to the lost
	// one. When nil, any missing block is a hard error (the
	// pre-fault-tolerance behavior).
	Recompute func(rk *mpsim.Rank, rep *fault.Report, block int) (*mscomplex.Complex, error)
	// Report, when non-nil, accumulates this rank's observed fault
	// events.
	Report *fault.Report
	// Checkpoint, when non-nil with Every >= 1, makes group roots
	// persist their post-round complexes to the shared filesystem and
	// makes recovery probe those checkpoints before falling back to
	// Recompute. Restoring the newest checkpoint reproduces the exact
	// payload the lost member would have sent, so the merged output
	// stays byte-identical to the fault-free run.
	Checkpoint *Checkpoint
	// Owners is the run's block ownership table; nil selects a plain
	// block-cyclic table, reproducing the paper's frozen assignment.
	// All ranks must hold identical replicas (Execute applies only
	// deterministic, collectively-agreed updates to it).
	Owners *grid.OwnerTable
	// Migrate moves a failed rank's surviving blocks onto healthy ranks
	// chosen by load. Each round starts with a fault-flag Allgather; on
	// a newly-observed failure every rank applies the same ownership
	// update, and the new owners recover the migrated blocks from the
	// dead rank's checkpoints (the files are keyed by (round, block),
	// not rank, so discovery is a plain Restore probe) or recompute
	// them. Off by default: the exchange costs one collective per
	// round, so fault-free modeled times are unchanged unless asked
	// for.
	Migrate bool
	// Speculate races a local Recover of a late member subtree against
	// its still-pending payload when a receive times out: whichever
	// completes earlier on the virtual clock wins and the loser is
	// cancelled. Requires Recompute; wins and cancelled work are
	// accounted in Report.
	Speculate bool
}

// Execute runs the merge rounds of the schedule over the per-block
// complexes owned by this rank, under the block-to-rank assignment of
// Options.Owners (block-cyclic by default). complexes maps block id →
// complex for this rank's blocks; it is mutated: non-root blocks are
// removed, root blocks are replaced by the merged, re-simplified
// complex. Every rank of the cluster must call Execute collectively. It
// returns per-round statistics (identical on every rank).
//
// Every payload travels in a length+CRC32C frame (mpsim.Frame); a root
// never glues bytes that fail the checksum. With Options.Recompute set,
// Execute survives rank crashes (at "merge:<round>" checkpoints),
// dropped, delayed and corrupted messages: affected blocks are excluded
// from the round, recomputed, and glued back in before the next round,
// so the surviving complex matches the fault-free run. With
// Options.Migrate, a crashed rank's blocks additionally change owner
// instead of being recovered in place on the restarted rank.
func Execute(r *mpsim.Rank, sched Schedule, nblocks int, complexes map[int]*mscomplex.Complex, opts Options) ([]RoundStats, error) {
	procs := r.Size()
	tr := r.Tracer()
	reg := r.Metrics()
	payloadHist := reg.Histogram("merge_payload_bytes")
	payloadPeak := reg.Gauge("merge_payload_peak_bytes")
	owners := opts.Owners
	if owners == nil {
		owners = grid.NewOwnerTable(nblocks, procs)
	}
	stats := make([]RoundStats, 0, len(sched.Radices))
	for round := range sched.Radices {
		startT := r.AllreduceMaxTime()
		roundStart := r.Clock()
		startBytes := float64(r.BytesSent())
		startSent, startRecv := r.BytesSent(), r.BytesRecv()
		if r.Checkpoint(fmt.Sprintf("merge:%d", round)) {
			// Crash-restart: every complex this rank held is gone. Roots
			// are rebuilt below; member payloads simply never get sent,
			// and their group roots recover them after timing out.
			for id := range complexes {
				delete(complexes, id)
			}
			if opts.Report != nil {
				opts.Report.RankCrashes++
			}
		}
		// Migration: exchange fault flags, then apply the same
		// deterministic ownership update on every replica of the table.
		// The Allgather also tells the restarted rank itself that its
		// blocks are gone, so it stops resending or re-recovering them.
		// migratedFrom maps block → the dead rank it was adopted from, for
		// blocks newly owned by this rank this round; restore flows name
		// the dead rank as their logical source.
		migratedFrom := map[int]int{}
		if opts.Migrate {
			var flag int64
			if r.Failed() {
				flag = 1
			}
			flags := r.AllgatherInt64(flag)
			var newlyFailed []int
			for rank, f := range flags {
				if f != 0 && owners.Healthy(rank) {
					newlyFailed = append(newlyFailed, rank)
				}
			}
			if len(newlyFailed) > 0 {
				var surviving []int
				for b := 0; b < nblocks; b += sched.Stride(round) {
					surviving = append(surviving, b)
				}
				migs, err := owners.MigrateFrom(newlyFailed, surviving)
				if err != nil {
					return nil, fmt.Errorf("merge: round %d: %w", round, err)
				}
				for _, mg := range migs {
					if mg.To != r.ID() {
						continue
					}
					migratedFrom[mg.Block] = mg.From
					if opts.Report != nil {
						opts.Report.Migrations++
						opts.Report.MigratedBlocks = append(opts.Report.MigratedBlocks, mg.Block)
					}
					tr.Instant("fault:migrate", r.Clock(),
						obs.I("block", int64(mg.Block)), obs.I("from", int64(mg.From)),
						obs.I("to", int64(mg.To)), obs.I("round", int64(round)))
					if lg := r.Logger(); lg != nil {
						lg.Info("fault.migrate", "block", mg.Block, "from", mg.From,
							"to", mg.To, "round", round, "vt", float64(r.Clock()))
					}
					if reg != nil {
						reg.Counter("merge_migrations_total").Add(1)
					}
				}
			}
		}
		groups := sched.RoundGroups(nblocks, round)

		// Phase 1: every non-root member owned by this rank sends its
		// serialized complex to the root's owner. Sends are eager, so
		// issuing all sends before any receive cannot deadlock.
		stride := sched.Stride(round)
		for _, g := range groups {
			rootRank := owners.Owner(g.Root)
			for _, m := range g.Members {
				if m == g.Root || owners.Owner(m) != r.ID() {
					continue
				}
				ms, ok := complexes[m]
				restoredFrom := -1
				var restoreStart vtime.Time
				if !ok {
					if from, wasMigrated := migratedFrom[m]; wasMigrated {
						// Just adopted from a crashed owner: recover it —
						// from the dead rank's checkpoints when they
						// validate, by deterministic recompute otherwise —
						// and take the send path like any healthy member.
						restoreStart = r.Clock()
						recovered, err := Recover(r, sched, nblocks, m, round, opts)
						if err != nil {
							return nil, fmt.Errorf("merge: recover migrated block %d: %w", m, err)
						}
						ms = recovered
						restoredFrom = from
					} else if opts.Recompute == nil {
						return nil, fmt.Errorf("merge: rank %d does not hold block %d", r.ID(), m)
					} else {
						// Lost to a crash: stay silent and let the root's
						// timeout path recover the subtree.
						continue
					}
				}
				ser := tr.Begin("serialize", r.Clock())
				payload := mpsim.Frame(ms.Serialize())
				w := vtime.Work{BytesCoded: int64(len(payload))}
				r.Compute(w)
				ser.End(r.Clock(),
					obs.I("block", int64(m)), obs.I("bytes", int64(len(payload))))
				payloadHist.Observe(int64(len(payload)))
				payloadPeak.SetMax(float64(len(payload)))
				if restoredFrom >= 0 {
					// The restore moved the dead owner's data onto this
					// rank outside Send/Recv; a synthetic flow attributes
					// it, sized as the payload the block now carries.
					r.NoteFlow(obs.FlowMigratedRestore, restoredFrom,
						tagMergeBase+round*16+(m-g.Root)/stride, len(payload), restoreStart)
				}
				// A same-rank transfer still goes through the mailbox
				// (no network hops in the model, only a local copy).
				r.Send(rootRank, tagMergeBase+round*16+(m-g.Root)/stride, payload)
				delete(complexes, m)
			}
		}

		// Phase 2: every root owned by this rank receives the group
		// members, glues them in member order, and re-simplifies.
		// Members that time out or fail the checksum are excluded here
		// and recovered below, before the next round.
		for _, g := range groups {
			if owners.Owner(g.Root) != r.ID() {
				continue
			}
			root, ok := complexes[g.Root]
			if !ok {
				if opts.Recompute == nil && opts.Checkpoint == nil {
					return nil, fmt.Errorf("merge: rank %d does not hold root block %d", r.ID(), g.Root)
				}
				restoreStart := r.Clock()
				recovered, err := Recover(r, sched, nblocks, g.Root, round, opts)
				if err != nil {
					return nil, fmt.Errorf("merge: recover root block %d: %w", g.Root, err)
				}
				root = recovered
				if from, wasMigrated := migratedFrom[g.Root]; wasMigrated {
					// Root adopted from a dead rank: no serialized payload
					// exists (it merges in place), so the flow carries the
					// attribution with zero bytes.
					r.NoteFlow(obs.FlowMigratedRestore, from,
						tagMergeBase+round*16, 0, restoreStart)
				}
			}
			var missing []int
			for _, m := range g.Members {
				if m == g.Root {
					continue
				}
				srcRank := owners.Owner(m)
				tag := tagMergeBase + round*16 + (m-g.Root)/stride
				var payload []byte
				lost := false
				if opts.Timeout > 0 {
					recvStart := r.Clock()
					var ok bool
					payload, _, ok = r.RecvTimeout(srcRank, tag, opts.Timeout)
					if !ok {
						if opts.Recompute == nil && opts.Checkpoint == nil {
							return nil, fmt.Errorf("merge: timeout waiting for block %d from rank %d", m, srcRank)
						}
						// The wait is real virtual time this root lost
						// blocked on the deadline; straggler attribution
						// needs it alongside the bare timeout count.
						waited := float64(r.Clock() - recvStart)
						if opts.Report != nil {
							opts.Report.Timeouts++
							opts.Report.TimeoutWaitSeconds += waited
						}
						tr.Instant("fault:timeout", r.Clock(), obs.I("block", int64(m)),
							obs.I("src", int64(srcRank)), obs.I("round", int64(round)),
							obs.F("wait_s", waited))
						if lg := r.Logger(); lg != nil {
							lg.Warn("fault.timeout", "rank", r.ID(), "block", m,
								"src", srcRank, "round", round, "wait_s", waited,
								"vt", float64(r.Clock()))
						}
						if reg != nil {
							reg.Gauge("merge_timeout_wait_seconds_total").Add(waited)
						}
						lost = true
					}
				} else {
					payload, _ = r.Recv(srcRank, tag)
				}
				var other *mscomplex.Complex
				if lost && opts.Speculate && opts.Recompute != nil {
					other, payload = speculate(r, sched, nblocks, m, srcRank, tag, round, opts)
				}
				if !lost {
					var err error
					other, err = decodeMember(payload)
					if err != nil {
						if opts.Recompute == nil && opts.Checkpoint == nil {
							return nil, fmt.Errorf("merge: block %d from rank %d: %w", m, srcRank, err)
						}
						if opts.Report != nil {
							opts.Report.Corruptions++
						}
						tr.Instant("fault:corrupt", r.Clock(), obs.I("block", int64(m)),
							obs.I("src", int64(srcRank)), obs.I("round", int64(round)))
						if lg := r.Logger(); lg != nil {
							lg.Warn("fault.corrupt", "rank", r.ID(), "block", m,
								"src", srcRank, "round", round, "vt", float64(r.Clock()))
						}
						other, payload = nil, nil
					}
				}
				if other == nil {
					// The newest valid checkpoint holds the exact complex
					// this member would have sent, so gluing it here, in
					// member order, keeps the merged output byte-identical
					// to the fault-free run. Only when no checkpoint
					// validates does the subtree drop to the post-simplify
					// Rebuild path below.
					restored, ok, err := Restore(r, sched, nblocks, m, round, opts)
					if err != nil {
						return nil, fmt.Errorf("merge: restore block %d: %w", m, err)
					}
					if !ok {
						missing = append(missing, m)
						continue
					}
					other = restored
				}
				glue := tr.Begin("glue", r.Clock())
				if len(payload) > 0 {
					r.Compute(vtime.Work{BytesCoded: int64(len(payload))})
				}
				workBefore := root.Work
				root.Glue(other)
				r.Compute(workDelta(root.Work, workBefore))
				glue.End(r.Clock(),
					obs.I("block", int64(m)), obs.I("bytes", int64(len(payload))))
			}
			simpStart := r.Clock()
			workBefore := root.Work
			root.Simplify(mscomplex.SimplifyOptions{Threshold: opts.Threshold})
			compacted := root.Compact() // carries root.Work plus its own ops
			r.Compute(workDelta(compacted.Work, workBefore))
			if tr.Enabled() {
				n, a := compacted.AliveCounts()
				tr.Span("simplify", simpStart, r.Clock(), obs.I("root", int64(g.Root)),
					obs.I("nodes", int64(n[0]+n[1]+n[2]+n[3])), obs.I("arcs", int64(a)))
			}

			// Recovery: rebuild each excluded member's subtree and glue
			// it in before the next round. Excluded subtrees stayed
			// outside compacted.Region, so their shared-boundary nodes
			// were protected from the simplification above, exactly as
			// in a fault-free merge order.
			for _, m := range missing {
				rebuilt, err := Rebuild(r, sched, nblocks, m, round, opts)
				if err != nil {
					return nil, fmt.Errorf("merge: rebuild block %d: %w", m, err)
				}
				workBefore := compacted.Work
				compacted.Glue(rebuilt)
				compacted.Simplify(mscomplex.SimplifyOptions{Threshold: opts.Threshold})
				next := compacted.Compact()
				r.Compute(workDelta(next.Work, workBefore))
				compacted = next
			}
			if opts.Checkpoint.writesAfter(round) {
				opts.Checkpoint.write(r, sched, nblocks, round, g.Root, compacted, opts.Report)
			}
			complexes[g.Root] = compacted
		}

		roundEnd := r.Clock()
		sentDelta, recvDelta := r.BytesSent()-startSent, r.BytesRecv()-startRecv
		endT := r.AllreduceMaxTime()
		bytes := r.AllreduceFloat64(float64(r.BytesSent())-startBytes, "sum")
		blocksLeft := (nblocks + sched.Stride(round+1) - 1) / sched.Stride(round+1)
		if tr.Enabled() {
			tr.Span(fmt.Sprintf("round:%d", round), roundStart, roundEnd,
				obs.I("radix", int64(sched.Radices[round])),
				obs.I("blocks_after", int64(blocksLeft)),
				obs.I("sent_bytes", sentDelta),
				obs.I("recv_bytes", recvDelta))
		}
		if reg != nil {
			k := fmt.Sprint(round)
			reg.Counter(obs.Label("merge_round_bytes_sent_total", "round", k)).Add(sentDelta)
			reg.Counter(obs.Label("merge_round_bytes_recv_total", "round", k)).Add(recvDelta)
		}
		stats = append(stats, RoundStats{
			Radix:     sched.Radices[round],
			Seconds:   endT - startT,
			BytesSent: bytes,
			Blocks:    blocksLeft,
		})
	}
	return stats, nil
}

// speculate races a local recovery of a late member subtree against its
// still-pending payload, after RecvTimeout already gave up on block
// coming from srcRank. It runs Recover on a quiet speculative twin of
// this rank, then compares completion times on the virtual clock: the
// payload (if pending at all) would complete at arrival + receive
// overhead, the recompute at Clock() + twin cost. The winner is
// committed — payload: a now-immediate Recv, recompute: Adopt of the
// twin's clock and the scratch report — and the loser cancelled:
// a losing recompute's scratch report is dropped so cancelled work
// never pollutes the recovery counters, a losing payload is left
// unconsumed in the mailbox (ignored for the rest of the run).
//
// Returns (nil, nil) when neither side can produce the subtree — the
// caller then falls through to the ordinary Restore/Rebuild path.
func speculate(r *mpsim.Rank, sched Schedule, nblocks, block, srcRank, tag, round int, opts Options) (*mscomplex.Complex, []byte) {
	tr := r.Tracer()
	reg := r.Metrics()
	specStart := r.Clock()
	arrival, pending := r.PeekArrival(srcRank, tag)
	twin := r.Speculative()
	specReport := &fault.Report{}
	specOpts := opts
	specOpts.Report = specReport
	recovered, recErr := Recover(twin, sched, nblocks, block, round, specOpts)
	cost := r.SpeculationCost(twin)
	recvDone := arrival + vtime.Time(r.Machine().RecvOverhead)
	if pending && (recErr != nil || recvDone <= specStart+cost) {
		// The late payload finishes first (or is the only option left):
		// it is already pending, so this Recv returns immediately,
		// advancing the clock to its arrival stamp.
		data, _ := r.Recv(srcRank, tag)
		other, err := decodeMember(data)
		if err == nil {
			if opts.Report != nil {
				opts.Report.SpeculationPayloadWins++
				opts.Report.SpeculationCancelledSeconds += float64(cost)
			}
			tr.Span("speculate", specStart, r.Clock(),
				obs.S("winner", "payload"), obs.I("block", int64(block)),
				obs.I("round", int64(round)), obs.F("cancelled_s", float64(cost)))
			if lg := r.Logger(); lg != nil {
				lg.Info("speculate.payload_win", "rank", r.ID(), "block", block,
					"round", round, "cancelled_s", float64(cost), "vt", float64(r.Clock()))
			}
			if reg != nil {
				reg.Counter("merge_speculation_payload_wins_total").Add(1)
				reg.Gauge("merge_speculation_cancelled_seconds_total").Add(float64(cost))
			}
			return other, data
		}
		// The straggler's payload is corrupt on top of late; fall back
		// to the recompute result if the twin produced one.
		if opts.Report != nil {
			opts.Report.Corruptions++
		}
		tr.Instant("fault:corrupt", r.Clock(), obs.I("block", int64(block)),
			obs.I("src", int64(srcRank)), obs.I("round", int64(round)))
	}
	if recErr != nil {
		return nil, nil
	}
	r.Adopt(twin)
	if opts.Report != nil {
		opts.Report.Merge(specReport)
		opts.Report.SpeculationRecomputeWins++
	}
	tr.Span("speculate", specStart, r.Clock(),
		obs.S("winner", "recompute"), obs.I("block", int64(block)),
		obs.I("round", int64(round)), obs.F("cost_s", float64(cost)))
	if lg := r.Logger(); lg != nil {
		lg.Info("speculate.recompute_win", "rank", r.ID(), "block", block,
			"round", round, "cost_s", float64(cost), "vt", float64(r.Clock()))
	}
	if reg != nil {
		reg.Counter("merge_speculation_recompute_wins_total").Add(1)
	}
	return recovered, nil
}

// decodeMember unframes and deserializes one merge payload, rejecting
// any corruption.
func decodeMember(payload []byte) (*mscomplex.Complex, error) {
	inner, err := mpsim.Unframe(payload)
	if err != nil {
		return nil, err
	}
	return mscomplex.Deserialize(inner)
}

// Rebuild deterministically reconstructs the merged complex that block
// carries entering the given round: the per-block complexes of its
// subtree (the stride-sized id range the earlier rounds folded into it)
// recomputed from source data via opts.Recompute, then the earlier
// rounds replayed locally in the same glue order and with the same
// per-round simplification as the original merge. Because both the
// compute stage and the merge are deterministic, the result is
// identical to the complex that was lost. The work performed is charged
// to r's virtual clock, so recovery cost is visible in the trace.
func Rebuild(r *mpsim.Rank, sched Schedule, nblocks, block, round int, opts Options) (*mscomplex.Complex, error) {
	if opts.Recompute == nil {
		return nil, fmt.Errorf("merge: no recompute callback")
	}
	rebuildStart := r.Clock()
	span := sched.Stride(round)
	end := block + span
	if end > nblocks {
		end = nblocks
	}
	local := make(map[int]*mscomplex.Complex, span)
	for b := block; b < end; b++ {
		ms, err := opts.Recompute(r, opts.Report, b)
		if err != nil {
			return nil, err
		}
		local[b] = ms
		// RecomputeCells is recorded inside the Recompute callback,
		// where the gradient pass that visits them runs.
		if opts.Report != nil {
			opts.Report.LostBlocks = append(opts.Report.LostBlocks, b)
			opts.Report.RecoveredBlocks = append(opts.Report.RecoveredBlocks, b)
		}
	}
	if opts.Report != nil {
		opts.Report.Recomputes++
	}
	for rr := 0; rr < round; rr++ {
		for _, g := range sched.RoundGroups(nblocks, rr) {
			if g.Root < block || g.Root >= end {
				continue
			}
			root := local[g.Root]
			for _, m := range g.Members {
				if m == g.Root {
					continue
				}
				workBefore := root.Work
				root.Glue(local[m])
				r.Compute(workDelta(root.Work, workBefore))
				delete(local, m)
			}
			workBefore := root.Work
			root.Simplify(mscomplex.SimplifyOptions{Threshold: opts.Threshold})
			compacted := root.Compact()
			r.Compute(workDelta(compacted.Work, workBefore))
			local[g.Root] = compacted
		}
	}
	// Recovery cost is first-class in the trace: one span on the
	// rebuilding rank, plus the recompute budget counters the
	// fault-aware-scheduling work (ROADMAP) will optimize against.
	r.Tracer().Span("rebuild", rebuildStart, r.Clock(),
		obs.I("block", int64(block)), obs.I("round", int64(round)),
		obs.I("subtree", int64(span)))
	if lg := r.Logger(); lg != nil {
		lg.Info("recover.rebuild", "rank", r.ID(), "block", block, "round", round,
			"subtree", span, "seconds", float64(r.Clock()-rebuildStart), "vt", float64(r.Clock()))
	}
	if reg := r.Metrics(); reg != nil {
		reg.Counter("merge_recomputes_total").Add(1)
		reg.Gauge("merge_recompute_seconds_total").Add(float64(r.Clock() - rebuildStart))
	}
	return local[block], nil
}

func workDelta(after, before vtime.Work) vtime.Work {
	return vtime.Work{
		CellsVisited:  after.CellsVisited - before.CellsVisited,
		PairTests:     after.PairTests - before.PairTests,
		PathSteps:     after.PathSteps - before.PathSteps,
		Cancellations: after.Cancellations - before.Cancellations,
		ArcsTouched:   after.ArcsTouched - before.ArcsTouched,
		NodesGlued:    after.NodesGlued - before.NodesGlued,
		BytesCoded:    after.BytesCoded - before.BytesCoded,
		SortedItems:   after.SortedItems - before.SortedItems,
	}
}
