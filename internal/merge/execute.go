package merge

import (
	"fmt"

	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/vtime"
)

// Tag base for merge-round messages; the round index is added so that
// successive rounds never cross-match.
const tagMergeBase = 1 << 20

// RoundStats reports one executed merge round, identical on all ranks.
type RoundStats struct {
	Radix int
	// Seconds is the virtual duration of the round (max over ranks).
	Seconds float64
	// BytesSent is the total payload communicated in the round.
	BytesSent float64
	// Blocks is the number of surviving blocks after the round.
	Blocks int
}

// Execute runs the merge rounds of the schedule over the per-block
// complexes owned by this rank, under block-cyclic block-to-rank
// assignment. complexes maps block id → complex for this rank's blocks;
// it is mutated: non-root blocks are removed, root blocks are replaced
// by the merged, re-simplified complex. Every rank of the cluster must
// call Execute collectively. It returns per-round statistics (identical
// on every rank).
func Execute(r *mpsim.Rank, sched Schedule, nblocks int, complexes map[int]*mscomplex.Complex, threshold float32) ([]RoundStats, error) {
	procs := r.Size()
	stats := make([]RoundStats, 0, len(sched.Radices))
	for round := range sched.Radices {
		startT := r.AllreduceMaxTime()
		startBytes := float64(r.BytesSent())
		groups := sched.RoundGroups(nblocks, round)

		// Phase 1: every non-root member owned by this rank sends its
		// serialized complex to the root's owner. Sends are eager, so
		// issuing all sends before any receive cannot deadlock.
		stride := sched.Stride(round)
		for _, g := range groups {
			rootRank := grid.RankOfBlock(g.Root, procs)
			for _, m := range g.Members {
				if m == g.Root || grid.RankOfBlock(m, procs) != r.ID() {
					continue
				}
				ms, ok := complexes[m]
				if !ok {
					return nil, fmt.Errorf("merge: rank %d does not hold block %d", r.ID(), m)
				}
				payload := ms.Serialize()
				w := vtime.Work{BytesCoded: int64(len(payload))}
				r.Compute(w)
				// A same-rank transfer still goes through the mailbox
				// (no network hops in the model, only a local copy).
				r.Send(rootRank, tagMergeBase+round*16+(m-g.Root)/stride, payload)
				delete(complexes, m)
			}
		}

		// Phase 2: every root owned by this rank receives the group
		// members, glues them in member order, and re-simplifies.
		for _, g := range groups {
			if grid.RankOfBlock(g.Root, procs) != r.ID() {
				continue
			}
			root, ok := complexes[g.Root]
			if !ok {
				return nil, fmt.Errorf("merge: rank %d does not hold root block %d", r.ID(), g.Root)
			}
			for _, m := range g.Members {
				if m == g.Root {
					continue
				}
				srcRank := grid.RankOfBlock(m, procs)
				payload, _ := r.Recv(srcRank, tagMergeBase+round*16+(m-g.Root)/stride)
				other, err := mscomplex.Deserialize(payload)
				if err != nil {
					return nil, fmt.Errorf("merge: block %d from rank %d: %w", m, srcRank, err)
				}
				r.Compute(vtime.Work{BytesCoded: int64(len(payload))})
				workBefore := root.Work
				root.Glue(other)
				r.Compute(workDelta(root.Work, workBefore))
			}
			workBefore := root.Work
			root.Simplify(mscomplex.SimplifyOptions{Threshold: threshold})
			compacted := root.Compact() // carries root.Work plus its own ops
			r.Compute(workDelta(compacted.Work, workBefore))
			complexes[g.Root] = compacted
		}

		endT := r.AllreduceMaxTime()
		bytes := r.AllreduceFloat64(float64(r.BytesSent())-startBytes, "sum")
		stats = append(stats, RoundStats{
			Radix:     sched.Radices[round],
			Seconds:   endT - startT,
			BytesSent: bytes,
			Blocks:    (nblocks + sched.Stride(round+1) - 1) / sched.Stride(round+1),
		})
	}
	return stats, nil
}

func workDelta(after, before vtime.Work) vtime.Work {
	return vtime.Work{
		CellsVisited:  after.CellsVisited - before.CellsVisited,
		PairTests:     after.PairTests - before.PairTests,
		PathSteps:     after.PathSteps - before.PathSteps,
		Cancellations: after.Cancellations - before.Cancellations,
		ArcsTouched:   after.ArcsTouched - before.ArcsTouched,
		NodesGlued:    after.NodesGlued - before.NodesGlued,
		BytesCoded:    after.BytesCoded - before.BytesCoded,
		SortedItems:   after.SortedItems - before.SortedItems,
	}
}
