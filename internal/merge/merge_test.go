package merge

import (
	"testing"
	"testing/quick"
)

func TestFullSchedules(t *testing.T) {
	cases := []struct {
		nblocks int
		want    []int
	}{
		{1, nil},
		{2, []int{2}},
		{4, []int{4}},
		{8, []int{8}},
		{16, []int{2, 8}},
		{64, []int{8, 8}},
		{256, []int{4, 8, 8}},
		{2048, []int{4, 8, 8, 8}},
		{8192, []int{2, 8, 8, 8, 8}},
		{32768, []int{8, 8, 8, 8, 8}},
	}
	for _, c := range cases {
		got := Full(c.nblocks)
		if len(got.Radices) != len(c.want) {
			t.Fatalf("Full(%d) = %v, want %v", c.nblocks, got.Radices, c.want)
		}
		for i := range c.want {
			if got.Radices[i] != c.want[i] {
				t.Fatalf("Full(%d) = %v, want %v", c.nblocks, got.Radices, c.want)
			}
		}
		if err := got.Validate(c.nblocks); err != nil {
			t.Fatalf("Full(%d) invalid: %v", c.nblocks, err)
		}
		if c.nblocks > 1 && got.Reduction() != c.nblocks {
			t.Fatalf("Full(%d) reduces by %d", c.nblocks, got.Reduction())
		}
	}
}

func TestPartial(t *testing.T) {
	s := Partial(32768, 2)
	if len(s.Radices) != 2 || s.Radices[0] != 8 || s.Radices[1] != 8 {
		t.Fatalf("Partial(32768, 2) = %v", s.Radices)
	}
	if got := len(s.Survivors(32768)); got != 512 {
		t.Fatalf("Partial(32768, 2) leaves %d blocks, want 512", got)
	}
	// Requesting more rounds than a full merge needs just gives the
	// full merge.
	s = Partial(8, 5)
	if len(s.Radices) != 1 || s.Radices[0] != 8 {
		t.Fatalf("Partial(8, 5) = %v", s.Radices)
	}
}

func TestValidateRejects(t *testing.T) {
	if err := (Schedule{Radices: []int{3}}).Validate(16); err == nil {
		t.Fatal("accepted radix 3")
	}
	if err := (Schedule{Radices: []int{8, 8}}).Validate(16); err == nil {
		t.Fatal("accepted over-reduction")
	}
	if err := (Schedule{Radices: []int{4, 4}}).Validate(16); err != nil {
		t.Fatal(err)
	}
}

// TestRoundGroupsPartition: every surviving block appears in exactly one
// group per round; roots survive into the next round.
func TestRoundGroupsPartition(t *testing.T) {
	f := func(e uint8, seed uint8) bool {
		exp := 1 + int(e)%11 // 2 .. 2048 blocks
		nblocks := 1 << exp
		s := Full(nblocks)
		surviving := make(map[int]bool)
		for b := 0; b < nblocks; b++ {
			surviving[b] = true
		}
		for round := range s.Radices {
			seen := make(map[int]bool)
			groups := s.RoundGroups(nblocks, round)
			next := make(map[int]bool)
			for _, g := range groups {
				if g.Members[0] != g.Root {
					return false
				}
				for _, m := range g.Members {
					if !surviving[m] || seen[m] {
						return false
					}
					seen[m] = true
				}
				next[g.Root] = true
			}
			if len(seen) != len(surviving) {
				return false
			}
			surviving = next
		}
		return len(surviving) == 1 && surviving[0]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSurvivorsMatchReduction(t *testing.T) {
	for _, nblocks := range []int{8, 64, 256, 2048} {
		s := Full(nblocks)
		for rounds := 0; rounds <= len(s.Radices); rounds++ {
			partial := Schedule{Radices: s.Radices[:rounds]}
			got := len(partial.Survivors(nblocks))
			want := nblocks / partial.Reduction()
			if got != want {
				t.Fatalf("nblocks=%d rounds=%d: %d survivors, want %d", nblocks, rounds, got, want)
			}
		}
	}
}

func TestRoundGroupsNonPowerOfTwo(t *testing.T) {
	// 10 blocks, one radix-4 round: groups {0..3}, {4..7}, {8, 9}.
	s := Schedule{Radices: []int{4}}
	groups := s.RoundGroups(10, 0)
	if len(groups) != 3 {
		t.Fatalf("%d groups", len(groups))
	}
	if len(groups[2].Members) != 2 || groups[2].Root != 8 {
		t.Fatalf("last group %+v", groups[2])
	}
}
