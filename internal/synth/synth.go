// Package synth generates the synthetic and proxy datasets used by the
// paper's evaluation: the sinusoidal size/complexity study fields, and
// deterministic stand-ins for the scientific datasets (JET combustion
// mixture fraction, Rayleigh-Taylor density, hydrogen atom probability
// density) that are not redistributable. Every generator is a pure
// function of its parameters, so all experiments are reproducible.
package synth

import (
	"math"
	"math/rand"

	"parms/internal/grid"
)

// Sinusoid generates the paper's synthetic study field (section VI-B): a
// 3D product of sinusoids on an n³ grid. features is the paper's
// "complexity": how many times the sine reaches ±1 along one side of the
// volume. The number of critical points grows cubically with features.
func Sinusoid(n int, features float64) *grid.Volume {
	return SinusoidDims(grid.Dims{n, n, n}, features)
}

// SinusoidDims generates the sinusoidal field on an arbitrary grid; the
// feature count applies per side proportionally to each dimension.
//
// Samples are taken at half-sample offsets (t = (x+1/2)/n), so the
// sine's zeros and extrema never coincide with lattice points: a
// grid-aligned sampling would make every zero-crossing plane of the
// product exactly 0 over 2f whole planes per axis, turning most of the
// domain into one gigantic plateau — a degenerate function unlike the
// generic fields the paper studies.
func SinusoidDims(dims grid.Dims, features float64) *grid.Volume {
	v := grid.NewVolume(dims)
	// sin(π·f·t) over t ∈ [0, 1] attains |1| exactly f times (at
	// t = (k+1/2)/f), matching the paper's definition of complexity.
	for z := 0; z < dims[2]; z++ {
		fz := math.Sin(math.Pi * features * (float64(z) + 0.5) / float64(dims[2]))
		for y := 0; y < dims[1]; y++ {
			fy := math.Sin(math.Pi * features * (float64(y) + 0.5) / float64(dims[1]))
			for x := 0; x < dims[0]; x++ {
				fx := math.Sin(math.Pi * features * (float64(x) + 0.5) / float64(dims[0]))
				v.Set(x, y, z, float32(fx*fy*fz))
			}
		}
	}
	return v
}

// Ramp generates a monotone field f = x + 2y + 4z with exactly one
// minimum and one maximum — the simplest possible topology, used by
// correctness tests.
func Ramp(dims grid.Dims) *grid.Volume {
	v := grid.NewVolume(dims)
	for z := 0; z < dims[2]; z++ {
		for y := 0; y < dims[1]; y++ {
			for x := 0; x < dims[0]; x++ {
				v.Set(x, y, z, float32(x)+2*float32(y)+4*float32(z))
			}
		}
	}
	return v
}

// Torus generates the signed distance field of a solid torus centred in
// an n³ grid (major radius 0.3 and minor radius 0.12 of the domain),
// modulated by a gentle angular ripple so the level sets carry a
// handful of saddles in deterministic positions. Unlike the sinusoid
// its critical points are sparse and its V-paths long and curved, which
// exercises the path-compression sweeps on deep chains rather than many
// shallow ones.
func Torus(n int) *grid.Volume {
	dims := grid.Dims{n, n, n}
	v := grid.NewVolume(dims)
	for z := 0; z < n; z++ {
		pz := (float64(z)+0.5)/float64(n) - 0.5
		for y := 0; y < n; y++ {
			py := (float64(y)+0.5)/float64(n) - 0.5
			for x := 0; x < n; x++ {
				px := (float64(x)+0.5)/float64(n) - 0.5
				// Distance from the torus ring in the z=0 plane.
				q := math.Hypot(px, py) - 0.3
				d := math.Hypot(q, pz) - 0.12
				ripple := 0.03 * math.Cos(5*math.Atan2(py, px))
				v.Set(x, y, z, float32(d+ripple))
			}
		}
	}
	return v
}

// Random generates uniform noise in [0, 1), seeded; the worst case for
// critical point counts.
func Random(dims grid.Dims, seed int64) *grid.Volume {
	v := grid.NewVolume(dims)
	rng := rand.New(rand.NewSource(seed))
	for i := range v.Data {
		v.Data[i] = rng.Float32()
	}
	return v
}

// Hydrogen generates a proxy for the paper's Figure 4 dataset: the
// spatial probability density of a hydrogen atom in a strong magnetic
// field. The field has three dominant maxima along the z axis and a
// toroidal ridge around it, embedded in a constant (zero) background —
// exactly the stability structure the paper discusses: three stable
// maxima connected in a line, a stable loop arc whose maximum location
// is unstable, and large flat regions with unstable critical points.
// Values are scaled to the byte range [0, 255] like the original
// byte-valued dataset.
func Hydrogen(n int) *grid.Volume {
	dims := grid.Dims{n, n, n}
	v := grid.NewVolume(dims)
	c := float64(n-1) / 2
	scale := float64(n-1) / 2
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				// Normalized coordinates in [-1, 1].
				nx := (float64(x) - c) / scale
				ny := (float64(y) - c) / scale
				nz := (float64(z) - c) / scale
				r2 := nx*nx + ny*ny
				// Three lobes along z.
				lobes := gauss(nx, ny, nz, 0, 0, 0, 0.18) +
					0.85*gauss(nx, ny, nz, 0, 0, 0.45, 0.15) +
					0.85*gauss(nx, ny, nz, 0, 0, -0.45, 0.15)
				// Toroidal ridge of radius 0.55 in the z = 0 plane.
				rd := math.Sqrt(r2) - 0.55
				tor := 0.55 * math.Exp(-(rd*rd+nz*nz*1.4)/(0.06))
				f := lobes + tor
				v.Set(x, y, z, float32(math.Round(255*clamp01(f))))
			}
		}
	}
	v.DType = grid.U8
	return v
}

// Jet generates a proxy for the JET mixture fraction dataset (section
// VI-D1): a temporally-evolving turbulent CO/H₂ jet flame. The field is
// a planar-jet mixture-fraction envelope perturbed by deterministic
// random-phase turbulent modes, producing the abundant small minima
// ("dissipation elements") inside the jet core that drive the paper's
// worst-case full-merge benchmark. Default paper-shaped dims keep the
// 768×896×512 aspect ratio at reduced scale.
func Jet(dims grid.Dims, seed int64) *grid.Volume {
	v := grid.NewVolume(dims)
	rng := rand.New(rand.NewSource(seed))
	const nModes = 48
	type mode struct {
		kx, ky, kz float64
		phase      float64
		amp        float64
	}
	modes := make([]mode, nModes)
	for i := range modes {
		// Wavenumbers 2..14 with a -5/3-like energy rolloff.
		k := 2 + 12*rng.Float64()
		theta := 2 * math.Pi * rng.Float64()
		phi := math.Acos(2*rng.Float64() - 1)
		modes[i] = mode{
			kx:    k * math.Sin(phi) * math.Cos(theta),
			ky:    k * math.Sin(phi) * math.Sin(theta),
			kz:    k * math.Cos(phi),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   math.Pow(k, -5.0/3.0),
		}
	}
	for z := 0; z < dims[2]; z++ {
		nz := float64(z) / float64(dims[2]-1)
		for y := 0; y < dims[1]; y++ {
			ny := float64(y)/float64(dims[1]-1) - 0.5
			// Jet core envelope: mixture fraction high in the center
			// plane, decaying outward.
			env := math.Exp(-(ny * ny) / (2 * 0.12 * 0.12))
			for x := 0; x < dims[0]; x++ {
				nx := float64(x) / float64(dims[0]-1)
				turb := 0.0
				for _, m := range modes {
					turb += m.amp * math.Sin(2*math.Pi*(m.kx*nx+m.ky*ny+m.kz*nz)+m.phase)
				}
				f := env * (1 + 0.45*turb)
				v.Set(x, y, z, float32(f))
			}
		}
	}
	return v
}

// RayleighTaylor generates a proxy for the Rayleigh-Taylor mixing
// density field (section VI-D2): heavy fluid above light fluid with a
// perturbed interface developing rising bubbles and falling spikes, plus
// multiscale noise confined to the mixing layer. The topology class
// matches the original: a slab of high feature density between two
// near-constant half-spaces.
func RayleighTaylor(dims grid.Dims, seed int64) *grid.Volume {
	v := grid.NewVolume(dims)
	rng := rand.New(rand.NewSource(seed))
	const nModes = 24
	type mode2 struct {
		kx, ky, phase, amp float64
	}
	iface := make([]mode2, nModes)
	for i := range iface {
		k := 3 + 10*rng.Float64()
		theta := 2 * math.Pi * rng.Float64()
		iface[i] = mode2{
			kx:    k * math.Cos(theta),
			ky:    k * math.Sin(theta),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   0.35 / k,
		}
	}
	const nNoise = 40
	type mode3 struct {
		kx, ky, kz, phase, amp float64
	}
	noise := make([]mode3, nNoise)
	for i := range noise {
		k := 6 + 22*rng.Float64()
		theta := 2 * math.Pi * rng.Float64()
		phi := math.Acos(2*rng.Float64() - 1)
		noise[i] = mode3{
			kx:    k * math.Sin(phi) * math.Cos(theta),
			ky:    k * math.Sin(phi) * math.Sin(theta),
			kz:    k * math.Cos(phi),
			phase: 2 * math.Pi * rng.Float64(),
			amp:   math.Pow(k, -1.2),
		}
	}
	for z := 0; z < dims[2]; z++ {
		nz := float64(z)/float64(dims[2]-1) - 0.5
		for y := 0; y < dims[1]; y++ {
			ny := float64(y) / float64(dims[1]-1)
			for x := 0; x < dims[0]; x++ {
				nx := float64(x) / float64(dims[0]-1)
				// Interface height perturbation at (x, y).
				eta := 0.0
				for _, m := range iface {
					eta += m.amp * math.Sin(2*math.Pi*(m.kx*nx+m.ky*ny)+m.phase)
				}
				eta *= 0.25
				// Density transition across the perturbed interface.
				d := (nz - eta) / 0.08
				rho := math.Tanh(d)
				// Mixing-layer noise, enveloped around the interface.
				envd := nz - eta
				env := math.Exp(-(envd * envd) / (2 * 0.15 * 0.15))
				tn := 0.0
				for _, m := range noise {
					tn += m.amp * math.Sin(2*math.Pi*(m.kx*nx+m.ky*ny+m.kz*nz)+m.phase)
				}
				v.Set(x, y, z, float32(rho+0.6*env*tn))
			}
		}
	}
	return v
}

// PorousSolid generates a signed-distance-like field of a porous
// material (the Figure 1 workload): a deterministic level-set of
// overlapping blobs whose complement forms filament structures traced by
// 2-saddle–maximum arcs of the MS complex.
func PorousSolid(n int, seed int64) *grid.Volume {
	dims := grid.Dims{n, n, n}
	v := grid.NewVolume(dims)
	rng := rand.New(rand.NewSource(seed))
	const nBlobs = 60
	type blob struct{ cx, cy, cz, r float64 }
	blobs := make([]blob, nBlobs)
	for i := range blobs {
		blobs[i] = blob{
			cx: rng.Float64(),
			cy: rng.Float64(),
			cz: rng.Float64(),
			r:  0.08 + 0.10*rng.Float64(),
		}
	}
	for z := 0; z < n; z++ {
		nz := float64(z) / float64(n-1)
		for y := 0; y < n; y++ {
			ny := float64(y) / float64(n-1)
			for x := 0; x < n; x++ {
				nx := float64(x) / float64(n-1)
				// Signed distance to the union of blobs (positive
				// outside the material: the pore space).
				d := math.Inf(1)
				for _, b := range blobs {
					dx, dy, dz := nx-b.cx, ny-b.cy, nz-b.cz
					dist := math.Sqrt(dx*dx+dy*dy+dz*dz) - b.r
					if dist < d {
						d = dist
					}
				}
				v.Set(x, y, z, float32(d))
			}
		}
	}
	return v
}

func gauss(x, y, z, cx, cy, cz, sigma float64) float64 {
	dx, dy, dz := x-cx, y-cy, z-cz
	return math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * sigma * sigma))
}

func clamp01(f float64) float64 {
	if f < 0 {
		return 0
	}
	if f > 1 {
		return 1
	}
	return f
}

// Clustered generates a deliberately load-imbalanced field: sinusoidal
// features confined to the octant nearest the origin, with a smooth ramp
// elsewhere. Blocks covering the feature octant cost far more to process
// than the rest — the workload for the load-balancing study the paper
// leaves as an open question (section IV-A).
func Clustered(n int, features float64) *grid.Volume {
	dims := grid.Dims{n, n, n}
	v := grid.NewVolume(dims)
	for z := 0; z < n; z++ {
		nz := float64(z) / float64(n-1)
		for y := 0; y < n; y++ {
			ny := float64(y) / float64(n-1)
			for x := 0; x < n; x++ {
				nx := float64(x) / float64(n-1)
				// Smooth indicator of the near-origin octant.
				w := sigmoid(12*(0.5-nx)) * sigmoid(12*(0.5-ny)) * sigmoid(12*(0.5-nz))
				osc := math.Sin(2*math.Pi*features*nx) *
					math.Sin(2*math.Pi*features*ny) *
					math.Sin(2*math.Pi*features*nz)
				ramp := 0.2 * (nx + ny + nz)
				v.Set(x, y, z, float32(w*osc+ramp))
			}
		}
	}
	return v
}

func sigmoid(t float64) float64 { return 1 / (1 + math.Exp(-t)) }
