package synth

import (
	"testing"

	"parms/internal/grid"
)

func TestSinusoidRangeAndSymmetry(t *testing.T) {
	v := Sinusoid(33, 4)
	lo, hi := v.Range()
	if lo < -1 || hi > 1 {
		t.Fatalf("range [%v, %v] outside [-1, 1]", lo, hi)
	}
	if hi < 0.9 || lo > -0.9 {
		t.Fatalf("range [%v, %v] does not reach near ±1", lo, hi)
	}
}

func TestSinusoidComplexityGrowsFeatures(t *testing.T) {
	// Count strict local maxima of the sampled field (interior
	// vertices above their 6 neighbors): must grow with the paper's
	// complexity parameter.
	count := func(v *grid.Volume) int {
		n := 0
		d := v.Dims
		for z := 1; z < d[2]-1; z++ {
			for y := 1; y < d[1]-1; y++ {
				for x := 1; x < d[0]-1; x++ {
					c := v.At(x, y, z)
					if c > v.At(x-1, y, z) && c > v.At(x+1, y, z) &&
						c > v.At(x, y-1, z) && c > v.At(x, y+1, z) &&
						c > v.At(x, y, z-1) && c > v.At(x, y, z+1) {
						n++
					}
				}
			}
		}
		return n
	}
	c2 := count(Sinusoid(49, 2))
	c4 := count(Sinusoid(49, 4))
	c8 := count(Sinusoid(49, 8))
	if !(c2 < c4 && c4 < c8) {
		t.Fatalf("maxima counts %d, %d, %d not increasing with complexity", c2, c4, c8)
	}
}

func TestRampMonotone(t *testing.T) {
	v := Ramp(grid.Dims{5, 5, 5})
	if v.At(0, 0, 0) >= v.At(4, 4, 4) {
		t.Fatal("ramp not increasing")
	}
	if v.At(1, 0, 0) <= v.At(0, 0, 0) {
		t.Fatal("ramp not increasing in x")
	}
}

func TestRandomDeterministic(t *testing.T) {
	a := Random(grid.Dims{8, 8, 8}, 42)
	b := Random(grid.Dims{8, 8, 8}, 42)
	c := Random(grid.Dims{8, 8, 8}, 43)
	same, diff := true, false
	for i := range a.Data {
		if a.Data[i] != b.Data[i] {
			same = false
		}
		if a.Data[i] != c.Data[i] {
			diff = true
		}
	}
	if !same {
		t.Fatal("same seed gave different fields")
	}
	if !diff {
		t.Fatal("different seeds gave identical fields")
	}
}

func TestHydrogenStructure(t *testing.T) {
	v := Hydrogen(33)
	if v.DType != grid.U8 {
		t.Fatal("hydrogen proxy should be byte-valued")
	}
	lo, hi := v.Range()
	if lo != 0 || hi < 200 {
		t.Fatalf("range [%v, %v]", lo, hi)
	}
	// The center lobe dominates; the exterior is flat zero.
	c := 16
	if v.At(c, c, c) < 200 {
		t.Fatalf("center value %v too small", v.At(c, c, c))
	}
	if v.At(0, 0, 0) != 0 || v.At(32, 32, 32) != 0 {
		t.Fatal("corners not in the flat background")
	}
	// The two satellite lobes along z are local maxima regions.
	zHi := c + int(0.45*float64(c))
	if v.At(c, c, zHi) < 100 {
		t.Fatalf("upper lobe value %v too small", v.At(c, c, zHi))
	}
}

func TestJetEnvelope(t *testing.T) {
	v := Jet(grid.Dims{24, 28, 16}, 1)
	// The jet core (mid-y) must carry much larger values than the far
	// field.
	dims := v.Dims
	core, far := 0.0, 0.0
	for x := 0; x < dims[0]; x++ {
		core += float64(v.At(x, dims[1]/2, dims[2]/2))
		far += float64(v.At(x, 0, dims[2]/2))
	}
	if core < 10*far {
		t.Fatalf("jet envelope weak: core %v far %v", core, far)
	}
}

func TestRayleighTaylorStratification(t *testing.T) {
	v := RayleighTaylor(grid.Dims{24, 24, 24}, 7)
	dims := v.Dims
	bottom, top := 0.0, 0.0
	for y := 0; y < dims[1]; y++ {
		for x := 0; x < dims[0]; x++ {
			bottom += float64(v.At(x, y, 1))
			top += float64(v.At(x, y, dims[2]-2))
		}
	}
	n := float64(dims[0] * dims[1])
	if bottom/n > -0.5 {
		t.Fatalf("bottom density %v not light", bottom/n)
	}
	if top/n < 0.5 {
		t.Fatalf("top density %v not heavy", top/n)
	}
}

func TestPorousSolidSigned(t *testing.T) {
	v := PorousSolid(24, 3)
	lo, hi := v.Range()
	if lo >= 0 {
		t.Fatalf("no interior (negative) region: lo=%v", lo)
	}
	if hi <= 0 {
		t.Fatalf("no exterior (positive) region: hi=%v", hi)
	}
}

func TestSinusoidDimsNonCubic(t *testing.T) {
	v := SinusoidDims(grid.Dims{12, 20, 8}, 2)
	if v.Dims != (grid.Dims{12, 20, 8}) {
		t.Fatalf("dims %v", v.Dims)
	}
}
