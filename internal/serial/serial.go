// Package serial provides the single-process reference computation the
// paper's stability discussion (section V-A) compares against, plus an
// independently-coded discrete gradient construction used as a testing
// oracle for the optimized implementation in package gradient.
package serial

import (
	"sort"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/mscomplex"
)

// Compute runs the whole pipeline serially on a full volume: one block,
// no boundary restriction, simplification at the given threshold. It is
// the baseline for the parallel-vs-serial stability experiments.
func Compute(vol *grid.Volume, threshold float32) *mscomplex.Complex {
	block := grid.Block{
		ID: 0,
		Lo: [3]int{0, 0, 0},
		Hi: [3]int{vol.Dims[0] - 1, vol.Dims[1] - 1, vol.Dims[2] - 1},
	}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	ms := mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
	if threshold > 0 {
		ms.Simplify(mscomplex.SimplifyOptions{Threshold: threshold})
	}
	return ms
}

// referenceCell is one cell of the oracle's explicit representation.
type referenceCell struct {
	x, y, z int
	dim     int
	// keys are the vertex (value, id) pairs, descending.
	keys []cube.VertKey
}

// ReferenceGradient is a deliberately straightforward, independently
// coded implementation of the published greedy gradient construction:
// explicit coordinate structs, maps and slices instead of packed arrays
// and bit tricks. It exists so tests can cross-check the optimized
// implementation cell by cell.
type ReferenceGradient struct {
	dims  grid.Dims
	rx    int
	ry    int
	rz    int
	pair  map[int]int // cell index -> paired cell index
	crit  map[int]bool
	cells []referenceCell
}

// NewReferenceGradient computes the oracle gradient of a full volume.
func NewReferenceGradient(vol *grid.Volume) *ReferenceGradient {
	r := vol.Dims.Refined()
	g := &ReferenceGradient{
		dims: vol.Dims,
		rx:   r[0], ry: r[1], rz: r[2],
		pair: make(map[int]int),
		crit: make(map[int]bool),
	}
	// Enumerate all cells with their vertex keys.
	g.cells = make([]referenceCell, 0, g.rx*g.ry*g.rz)
	for z := 0; z < g.rz; z++ {
		for y := 0; y < g.ry; y++ {
			for x := 0; x < g.rx; x++ {
				c := referenceCell{x: x, y: y, z: z, dim: x%2 + y%2 + z%2}
				for _, v := range g.cellVertices(x, y, z) {
					c.keys = append(c.keys, cube.VertKey{
						Val: vol.At(v[0], v[1], v[2]),
						ID: int64(v[0]) + int64(v[1])*int64(vol.Dims[0]) +
							int64(v[2])*int64(vol.Dims[0])*int64(vol.Dims[1]),
					})
				}
				sort.Slice(c.keys, func(i, j int) bool { return c.keys[j].Less(c.keys[i]) })
				g.cells = append(g.cells, c)
			}
		}
	}
	g.assign()
	return g
}

func (g *ReferenceGradient) index(x, y, z int) int { return x + y*g.rx + z*g.rx*g.ry }

// cellVertices lists the original-grid vertices of a refined cell.
func (g *ReferenceGradient) cellVertices(x, y, z int) [][3]int {
	var out [][3]int
	for _, vx := range cornerRange(x) {
		for _, vy := range cornerRange(y) {
			for _, vz := range cornerRange(z) {
				out = append(out, [3]int{vx, vy, vz})
			}
		}
	}
	return out
}

func cornerRange(c int) []int {
	if c%2 == 0 {
		return []int{c / 2}
	}
	return []int{(c - 1) / 2, (c + 1) / 2}
}

// less compares cells in the simulation-of-simplicity order.
func (g *ReferenceGradient) less(a, b int) bool {
	ka, kb := g.cells[a].keys, g.cells[b].keys
	n := len(ka)
	if len(kb) < n {
		n = len(kb)
	}
	for i := 0; i < n; i++ {
		if ka[i] != kb[i] {
			return ka[i].Less(kb[i])
		}
	}
	return len(ka) < len(kb)
}

func (g *ReferenceGradient) facets(i int) []int {
	c := g.cells[i]
	var out []int
	if c.x%2 == 1 {
		out = append(out, g.index(c.x-1, c.y, c.z), g.index(c.x+1, c.y, c.z))
	}
	if c.y%2 == 1 {
		out = append(out, g.index(c.x, c.y-1, c.z), g.index(c.x, c.y+1, c.z))
	}
	if c.z%2 == 1 {
		out = append(out, g.index(c.x, c.y, c.z-1), g.index(c.x, c.y, c.z+1))
	}
	return out
}

func (g *ReferenceGradient) cofacets(i int) []int {
	c := g.cells[i]
	var out []int
	if c.x%2 == 0 {
		if c.x > 0 {
			out = append(out, g.index(c.x-1, c.y, c.z))
		}
		if c.x < g.rx-1 {
			out = append(out, g.index(c.x+1, c.y, c.z))
		}
	}
	if c.y%2 == 0 {
		if c.y > 0 {
			out = append(out, g.index(c.x, c.y-1, c.z))
		}
		if c.y < g.ry-1 {
			out = append(out, g.index(c.x, c.y+1, c.z))
		}
	}
	if c.z%2 == 0 {
		if c.z > 0 {
			out = append(out, g.index(c.x, c.y, c.z-1))
		}
		if c.z < g.rz-1 {
			out = append(out, g.index(c.x, c.y, c.z+1))
		}
	}
	return out
}

func (g *ReferenceGradient) assigned(i int) bool {
	_, paired := g.pair[i]
	return paired || g.crit[i]
}

// assign runs the published algorithm exactly as described in section
// IV-C: cells sorted by increasing dimension then function value; in
// that order a d-cell pairs with the steepest unassigned cofacet for
// which it is the only unassigned facet, else it is critical.
func (g *ReferenceGradient) assign() {
	for d := 0; d <= 2; d++ {
		var order []int
		for i := range g.cells {
			if g.cells[i].dim == d {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool { return g.less(order[a], order[b]) })
		for _, i := range order {
			if g.assigned(i) {
				continue
			}
			best := -1
			for _, co := range g.cofacets(i) {
				if g.assigned(co) {
					continue
				}
				sole := true
				for _, fc := range g.facets(co) {
					if fc != i && !g.assigned(fc) {
						sole = false
						break
					}
				}
				if !sole {
					continue
				}
				if best < 0 || g.less(co, best) {
					best = co
				}
			}
			if best < 0 {
				g.crit[i] = true
			} else {
				g.pair[i] = best
				g.pair[best] = i
			}
		}
	}
	for i := range g.cells {
		if g.cells[i].dim == 3 && !g.assigned(i) {
			g.crit[i] = true
		}
	}
}

// CriticalCounts returns the number of critical cells per Morse index.
func (g *ReferenceGradient) CriticalCounts() [4]int {
	var counts [4]int
	for i := range g.crit {
		counts[g.cells[i].dim]++
	}
	return counts
}

// CriticalSet returns the set of critical cells as refined coordinates.
func (g *ReferenceGradient) CriticalSet() map[[3]int]bool {
	out := make(map[[3]int]bool, len(g.crit))
	for i := range g.crit {
		c := g.cells[i]
		out[[3]int{c.x, c.y, c.z}] = true
	}
	return out
}

// PairOf returns the paired cell of the given refined coordinate, if
// any.
func (g *ReferenceGradient) PairOf(x, y, z int) ([3]int, bool) {
	p, ok := g.pair[g.index(x, y, z)]
	if !ok {
		return [3]int{}, false
	}
	c := g.cells[p]
	return [3]int{c.x, c.y, c.z}, true
}
