package serial

import (
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/synth"
)

// TestOracleAgreesWithOptimized cross-checks the optimized gradient
// implementation against the independently coded reference, cell by
// cell: identical critical sets and identical pairings.
func TestOracleAgreesWithOptimized(t *testing.T) {
	cases := []*grid.Volume{
		synth.Random(grid.Dims{7, 6, 5}, 1),
		synth.Random(grid.Dims{6, 6, 6}, 2),
		synth.Sinusoid(9, 2),
		synth.Ramp(grid.Dims{5, 5, 5}),
	}
	for ci, vol := range cases {
		ref := NewReferenceGradient(vol)
		block := grid.Block{Lo: [3]int{0, 0, 0}, Hi: [3]int{vol.Dims[0] - 1, vol.Dims[1] - 1, vol.Dims[2] - 1}}
		c := cube.New(vol.Dims, block, vol)
		f := gradient.Compute(c, nil)

		refCrit := ref.CriticalSet()
		optCrit := make(map[[3]int]bool)
		for _, ci := range f.CriticalCells() {
			x, y, z := c.Coords(int(ci))
			optCrit[[3]int{x, y, z}] = true
		}
		if len(refCrit) != len(optCrit) {
			t.Fatalf("case %d: %d reference criticals, %d optimized", ci, len(refCrit), len(optCrit))
		}
		for cell := range refCrit {
			if !optCrit[cell] {
				t.Fatalf("case %d: reference critical %v missing in optimized", ci, cell)
			}
		}
		// Pairings must agree too.
		for idx := 0; idx < c.NumCells(); idx++ {
			x, y, z := c.Coords(idx)
			refPair, refOK := ref.PairOf(x, y, z)
			optPairIdx, optOK := f.PairedWith(idx)
			if refOK != optOK {
				t.Fatalf("case %d: cell (%d,%d,%d) paired=%v in reference, %v in optimized",
					ci, x, y, z, refOK, optOK)
			}
			if refOK {
				px, py, pz := c.Coords(optPairIdx)
				if refPair != [3]int{px, py, pz} {
					t.Fatalf("case %d: cell (%d,%d,%d) paired with %v in reference, (%d,%d,%d) in optimized",
						ci, x, y, z, refPair, px, py, pz)
				}
			}
		}
	}
}

func TestComputeSerialBaseline(t *testing.T) {
	vol := synth.Sinusoid(17, 2)
	ms := Compute(vol, 0.3)
	if err := ms.Validate(); err != nil {
		t.Fatal(err)
	}
	if ms.EulerCharacteristic() != 1 {
		t.Fatalf("Euler characteristic %d", ms.EulerCharacteristic())
	}
	nodes, _ := ms.AliveCounts()
	if nodes[3] == 0 {
		t.Fatalf("no maxima survive: %v", nodes)
	}
	// Unsimplified run keeps more nodes.
	raw := Compute(vol, 0)
	if raw.NumAliveNodes() < ms.NumAliveNodes() {
		t.Fatal("simplification increased node count")
	}
}
