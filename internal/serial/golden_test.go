package serial

import (
	"crypto/sha256"
	"encoding/hex"
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/mscomplex"
	"parms/internal/synth"
)

// The golden hashes pin the exact serialized bytes of the unsimplified
// MS complex (and the raw gradient state bytes) on the two fixture
// volumes. They were captured from the pre-kernel sequential tracer, so
// any drift in pairing decisions, arc multiplicities, geometry, or
// emission order — however the compute stage is parallelized — fails
// here first.

func goldenField(t *testing.T, vol *grid.Volume) (*gradient.Field, string, string) {
	t.Helper()
	block := grid.Block{
		ID: 0,
		Lo: [3]int{0, 0, 0},
		Hi: [3]int{vol.Dims[0] - 1, vol.Dims[1] - 1, vol.Dims[2] - 1},
	}
	f := gradient.Compute(cube.New(vol.Dims, block, vol), nil)
	state := make([]byte, f.C.NumCells())
	for i := range state {
		state[i] = f.StateByte(i)
	}
	gh := sha256.Sum256(state)
	ms := mscomplex.FromField(f, nil, mscomplex.TraceOptions{}).Complex
	mh := sha256.Sum256(ms.Serialize())
	return f, hex.EncodeToString(gh[:]), hex.EncodeToString(mh[:])
}

func TestGoldenSinusoid(t *testing.T) {
	_, gradHash, msHash := goldenField(t, synth.Sinusoid(33, 4))
	const wantGrad = "6847ccde79d7087b4352c911e1e1406460f4190731b2518b5d1f8507e265eb0a"
	const wantMS = "0f6a1d9e4a8c2a2146198610988487b9b1ac079ae4d5455b2c99fb9618266461"
	if gradHash != wantGrad {
		t.Errorf("sinusoid gradient state hash drifted:\n got %s\nwant %s", gradHash, wantGrad)
	}
	if msHash != wantMS {
		t.Errorf("sinusoid complex hash drifted:\n got %s\nwant %s", msHash, wantMS)
	}
}

func TestGoldenTorus(t *testing.T) {
	_, gradHash, msHash := goldenField(t, synth.Torus(33))
	const wantGrad = "0f2e71ba4caa9dec847d8eda7f9431daf61caa4749a4ab04afbc0dcb4a68ef14"
	const wantMS = "390f7b6433d4fb7a88aafbe8359d5fd07107d1886978b5d21599a72241c7a053"
	if gradHash != wantGrad {
		t.Errorf("torus gradient state hash drifted:\n got %s\nwant %s", gradHash, wantGrad)
	}
	if msHash != wantMS {
		t.Errorf("torus complex hash drifted:\n got %s\nwant %s", msHash, wantMS)
	}
}
