package serial

import (
	"crypto/sha256"
	"encoding/hex"
	"os"
	"strconv"
	"testing"

	"parms/internal/cube"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/mscomplex"
	"parms/internal/synth"
)

// These tests pin the worker-pool equivalence contract: the chunked
// kernels must produce byte-identical gradient state, traced arcs, and
// sweep statistics at every pool width. CI runs this file across a
// workers×procs matrix via PARMS_TEST_WORKERS / PARMS_TEST_PROCS;
// locally both default to the {1, 8} pair the ISSUE names.

// matrixWorkers returns the pool widths under test: the env override
// when CI pins one, otherwise sequential plus a wide pool.
func matrixWorkers(t *testing.T) []int {
	t.Helper()
	if s := os.Getenv("PARMS_TEST_WORKERS"); s != "" {
		w, err := strconv.Atoi(s)
		if err != nil || w < 1 {
			t.Fatalf("bad PARMS_TEST_WORKERS=%q", s)
		}
		return []int{1, w}
	}
	return []int{1, 8}
}

// pooledHashes computes the full single-block pipeline stage under one
// pool width and returns the gradient-state and serialized-complex
// hashes plus the sweep count.
func pooledHashes(t *testing.T, vol *grid.Volume, workers int) (string, string, int) {
	t.Helper()
	block := grid.Block{
		ID: 0,
		Lo: [3]int{0, 0, 0},
		Hi: [3]int{vol.Dims[0] - 1, vol.Dims[1] - 1, vol.Dims[2] - 1},
	}
	var pool *kernel.Pool
	if workers > 1 {
		pool = kernel.New(workers)
	}
	f := gradient.ComputePooled(cube.New(vol.Dims, block, vol), nil, pool)
	state := make([]byte, f.C.NumCells())
	for i := range state {
		state[i] = f.StateByte(i)
	}
	gh := sha256.Sum256(state)
	res := mscomplex.FromFieldPooled(f, nil, mscomplex.TraceOptions{}, pool)
	mh := sha256.Sum256(res.Complex.Serialize())
	return hex.EncodeToString(gh[:]), hex.EncodeToString(mh[:]), res.Kernel.Sweeps
}

func testWorkerEquivalence(t *testing.T, name string, vol *grid.Volume) {
	widths := matrixWorkers(t)
	baseGrad, baseMS, baseSweeps := pooledHashes(t, vol, widths[0])
	for _, w := range widths[1:] {
		grad, ms, sweeps := pooledHashes(t, vol, w)
		if grad != baseGrad {
			t.Errorf("%s: gradient state differs between workers=%d and workers=%d:\n %s\n %s",
				name, widths[0], w, baseGrad, grad)
		}
		if ms != baseMS {
			t.Errorf("%s: traced complex differs between workers=%d and workers=%d:\n %s\n %s",
				name, widths[0], w, baseMS, ms)
		}
		if sweeps != baseSweeps {
			t.Errorf("%s: sweep count differs between workers=%d (%d) and workers=%d (%d); convergence depth must be schedule-independent",
				name, widths[0], baseSweeps, w, sweeps)
		}
	}
}

func TestWorkerEquivalenceSinusoid(t *testing.T) {
	testWorkerEquivalence(t, "sinusoid", synth.Sinusoid(33, 4))
}

func TestWorkerEquivalenceTorus(t *testing.T) {
	testWorkerEquivalence(t, "torus", synth.Torus(33))
}

// TestSweepCountDeterministic pins that the pointer-jumping convergence
// depth is a pure function of the input field: identical across repeat
// runs and across every pool width, because sweeps are synchronous
// (double-buffered) and the write count reduces over chunks in index
// order.
func TestSweepCountDeterministic(t *testing.T) {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{ID: 0, Lo: [3]int{0, 0, 0}, Hi: [3]int{32, 32, 32}}

	run := func(workers int) mscomplex.KernelStats {
		var pool *kernel.Pool
		if workers > 1 {
			pool = kernel.New(workers)
		}
		f := gradient.ComputePooled(cube.New(vol.Dims, block, vol), nil, pool)
		return mscomplex.FromFieldPooled(f, nil, mscomplex.TraceOptions{}, pool).Kernel
	}

	base := run(1)
	if base.Sweeps < 2 {
		t.Fatalf("suspiciously shallow convergence: %d sweeps", base.Sweeps)
	}
	if n := len(base.SweepWrites); n != base.Sweeps {
		t.Fatalf("sweep histogram has %d entries for %d sweeps", n, base.Sweeps)
	}
	if last := base.SweepWrites[base.Sweeps-1]; last != 0 {
		t.Fatalf("final sweep wrote %d; convergence means a zero-write sweep", last)
	}
	for run2, workers := range map[string]int{"repeat": 1, "workers=4": 4, "workers=8": 8} {
		got := run(workers)
		if got.Sweeps != base.Sweeps {
			t.Errorf("%s: sweep count %d, want %d", run2, got.Sweeps, base.Sweeps)
		}
		for i, w := range got.SweepWrites {
			if w != base.SweepWrites[i] {
				t.Errorf("%s: sweep %d wrote %d, want %d", run2, i, w, base.SweepWrites[i])
			}
		}
	}
}
