package experiments

import (
	"fmt"
	"io"

	"parms/internal/analysis"
	"parms/internal/grid"
	"parms/internal/mscomplex"
	"parms/internal/serial"
	"parms/internal/synth"
)

// Fig4Row reports the complex computed with one blocking of the
// hydrogen-atom dataset.
type Fig4Row struct {
	Blocks int
	// RawNodes counts nodes before simplification artifacts are
	// removed (after per-block simplification but before any merge).
	RawNodes int
	// Nodes counts nodes of the fully merged, simplified complex.
	Nodes [4]int
	// StableMaxima counts maxima above the feature threshold — the
	// paper's three stable maxima in a line.
	StableMaxima int
	// RidgeCycles counts independent cycles in the high-value
	// 2-saddle–maximum subgraph — the paper's stable toroidal loop.
	RidgeCycles int
	// MatchesSerial reports whether every serial extremum above the
	// threshold is recovered: same Morse index and value, located
	// within one original-grid cell (the paper's Figure 4 caption: the
	// geometric embedding of features can shift by the width of a cell
	// due to discretization, e.g. when a peak vertex lies exactly on a
	// shared block corner).
	MatchesSerial bool
}

// Fig4Result is the regenerated stability study.
type Fig4Result struct {
	Threshold float32
	Rows      []Fig4Row
}

// Fig4 reproduces the stability experiment of Figure 4 and section V-A:
// the hydrogen-atom probability density computed with 1, 8 and 64
// blocks, simplified at 1% persistence. Expected outcome: block-boundary
// artifacts disappear after simplification; the three high-value maxima
// and the toroidal ridge loop are recovered identically for every
// blocking, while plateau critical points may shift.
func Fig4(cfg Config) (*Fig4Result, error) {
	n := cfg.dim(64)
	vol := synth.Hydrogen(n + 1)
	lo, hi := vol.Range()
	threshold := float32(0.01 * float64(hi-lo))
	// The paper selects features with "value greater than 14.5" on
	// byte data; our proxy's equivalent cut sits above the toroidal
	// ridge crest (whose maxima are the plateau-unstable ones) and
	// below the three lobes — the paper's "three stable maxima".
	featureCut := float32(0.65 * float64(hi))

	serialMS := serial.Compute(vol, threshold)
	serialMaxima := extremaAbove(serialMS, featureCut)
	space := grid.NewAddrSpace(vol.Dims)

	res := &Fig4Result{Threshold: threshold}
	for _, blocks := range []int{1, 8, 64} {
		cfg.logf("fig4: blocks=%d\n", blocks)
		radices := fullRadices(blocks)
		r, err := runKeep(cfg, vol, blocks, blocks, radices, 0.01)
		if err != nil {
			return nil, err
		}
		ms := lowestComplex(r)
		nodes, _ := ms.AliveCounts()
		ridge := analysis.Extract(ms, analysis.And(
			analysis.ByEndpointIndices(2, 3), analysis.ByMinValue(featureCut/2)))
		row := Fig4Row{
			Blocks:       blocks,
			RawNodes:     r.RawNodes,
			Nodes:        nodes,
			StableMaxima: analysis.CountNodes(ms, 3, featureCut),
			RidgeCycles:  ridge.Cycles,
		}
		row.MatchesSerial = true
		for cell, val := range serialMaxima {
			if !hasNearbyMax(ms, space, cell, val) {
				row.MatchesSerial = false
			}
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func extremaAbove(ms *mscomplex.Complex, cut float32) map[grid.Addr]float32 {
	out := make(map[grid.Addr]float32)
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if n.Alive && n.Index == 3 && n.Value >= cut {
			out[n.Cell] = n.Value
		}
	}
	return out
}

// hasNearbyMax reports whether ms contains an alive maximum of the same
// value within one original-grid cell (two refined cells) of the given
// location.
func hasNearbyMax(ms *mscomplex.Complex, space grid.AddrSpace, cell grid.Addr, val float32) bool {
	x, y, z := space.Decode(cell)
	for i := range ms.Nodes {
		n := &ms.Nodes[i]
		if !n.Alive || n.Index != 3 || n.Value != val {
			continue
		}
		nx, ny, nz := space.Decode(n.Cell)
		if absInt(nx-x) <= 2 && absInt(ny-y) <= 2 && absInt(nz-z) <= 2 {
			return true
		}
	}
	return false
}

func absInt(a int) int {
	if a < 0 {
		return -a
	}
	return a
}

// Print renders the stability table.
func (f *Fig4Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 4: stability of the MS complex under blocking (hydrogen atom, 1% persistence)")
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Blocks),
			fmt.Sprint(r.RawNodes),
			fmt.Sprintf("%v", r.Nodes),
			fmt.Sprint(r.StableMaxima),
			fmt.Sprint(r.RidgeCycles),
			fmt.Sprint(r.MatchesSerial),
		}
	}
	table(w, []string{"Blocks", "Pre-merge nodes", "Merged nodes (by index)", "Stable maxima", "Ridge cycles", "Extrema match serial"}, rows)
}

// Fig5Row reports the complex of one complexity level.
type Fig5Row struct {
	Complexity float64
	Nodes      [4]int
	Arcs       int
	OutputSize int64
}

// Fig5Result is the regenerated Figure 5 series.
type Fig5Result struct {
	PointsSide int
	Rows       []Fig5Row
}

// Fig5 reproduces the Figure 5 series: the sinusoidal dataset at
// increasing feature counts; the complex grows cubically with the
// complexity parameter while the data size stays fixed.
func Fig5(cfg Config) (*Fig5Result, error) {
	n := cfg.dim(64)
	res := &Fig5Result{PointsSide: n + 1}
	for _, comp := range []float64{2, 4, 8, 16} {
		if comp > float64(n)/4 {
			// Fewer than four samples per feature would alias the
			// sinusoid rather than add features.
			continue
		}
		cfg.logf("fig5: c=%g\n", comp)
		vol := synth.Sinusoid(n+1, comp)
		r, err := runKeep(cfg, vol, 8, 8, fullRadices(8), 0.01)
		if err != nil {
			return nil, err
		}
		ms := lowestComplex(r)
		nodes, arcs := ms.AliveCounts()
		res.Rows = append(res.Rows, Fig5Row{
			Complexity: comp,
			Nodes:      nodes,
			Arcs:       arcs,
			OutputSize: r.OutputBytes,
		})
	}
	return res, nil
}

// Print renders the complexity series.
func (f *Fig5Result) Print(w io.Writer) {
	fmt.Fprintf(w, "Figure 5: complex size vs data complexity (%d points/side)\n", f.PointsSide)
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		rows[i] = []string{
			fmt.Sprintf("%g", r.Complexity),
			fmt.Sprintf("%v", r.Nodes),
			fmt.Sprint(r.Arcs),
			fmt.Sprint(r.OutputSize),
		}
	}
	table(w, []string{"Features/side", "Nodes (by index)", "Arcs", "Output (bytes)"}, rows)
}

// Fig7Row compares one merge depth.
type Fig7Row struct {
	Label        string
	Radices      []int
	OutputBlocks int
	OutputSize   int64
	TotalNodes   int
	MergeTime    float64
}

// Fig7Result is the partial-vs-full merge comparison of Figure 7.
type Fig7Result struct {
	Rows []Fig7Row
}

// Fig7 reproduces the qualitative Figure 7 comparison quantitatively:
// the JET proxy merged partially (one radix-8 round) versus fully. The
// partial merge leaves unresolved boundary artifacts that inflate the
// node count and output size relative to the full merge.
func Fig7(cfg Config) (*Fig7Result, error) {
	dims := grid.Dims{cfg.dim(96), cfg.dim(112), cfg.dim(64)}
	vol := synth.Jet(dims, 20120501)
	const procs = 64
	res := &Fig7Result{}
	for _, c := range []struct {
		label   string
		radices []int
	}{
		{"no merge", nil},
		{"partial (radix-8 ×1)", []int{8}},
		{"full", fullRadices(procs)},
	} {
		cfg.logf("fig7: %s\n", c.label)
		r, err := runKeep(cfg, vol, procs, procs, c.radices, 0.01)
		if err != nil {
			return nil, err
		}
		total := r.Nodes[0] + r.Nodes[1] + r.Nodes[2] + r.Nodes[3]
		res.Rows = append(res.Rows, Fig7Row{
			Label:        c.label,
			Radices:      c.radices,
			OutputBlocks: r.OutputBlocks,
			OutputSize:   r.OutputBytes,
			TotalNodes:   total,
			MergeTime:    r.Times.Merge,
		})
	}
	return res, nil
}

// Print renders the merge-depth comparison.
func (f *Fig7Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 7: partial vs full merge (JET proxy, 64 blocks)")
	rows := make([][]string, len(f.Rows))
	for i, r := range f.Rows {
		rows[i] = []string{
			r.Label,
			radixString(r.Radices),
			fmt.Sprint(r.OutputBlocks),
			fmt.Sprint(r.TotalNodes),
			fmt.Sprint(r.OutputSize),
			fmt.Sprintf("%.3f", r.MergeTime),
		}
	}
	table(w, []string{"Merge", "Radices", "Blocks out", "Nodes", "Output (bytes)", "Merge (s)"}, rows)
}
