package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// The experiment drivers run at reduced scale in tests; the assertions
// check the paper's qualitative shapes, which must hold at any scale.

func tiny() Config { return Config{Scale: 0.26} } // 16-ish base dims

func TestTableIShape(t *testing.T) {
	if testing.Short() {
		t.Skip("table I runs 2048 virtual ranks")
	}
	res, err := TableI(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// Total merge time grows as rounds are added.
	for i := 1; i < len(res.Rows); i++ {
		if res.Rows[i].TotalMerge <= res.Rows[i-1].TotalMerge {
			t.Errorf("row %d: total merge %v not greater than previous %v",
				i, res.Rows[i].TotalMerge, res.Rows[i-1].TotalMerge)
		}
	}
	// The final full merge produces one block.
	if last := res.Rows[len(res.Rows)-1]; last.OutputBlocks != 1 {
		t.Errorf("full merge left %d blocks", last.OutputBlocks)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "Table I") {
		t.Error("Print output missing title")
	}
}

func TestTableIIShape(t *testing.T) {
	res, err := TableII(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	// In the paper all five strategies land within 3.5% of each other
	// (144.0 s to 149.2 s); the robust claims are the narrow spread and
	// that a three-round high-radix strategy is at least competitive
	// with the eight-round radix-2 chain. The exact ordering is inside
	// model noise (see EXPERIMENTS.md).
	min, max := res.Rows[0].ComputeMerge, res.Rows[0].ComputeMerge
	bestThreeRounds := res.Rows[0].ComputeMerge
	for _, r := range res.Rows {
		if r.ComputeMerge < min {
			min = r.ComputeMerge
		}
		if r.ComputeMerge > max {
			max = r.ComputeMerge
		}
		if r.Rounds == 3 && r.ComputeMerge < bestThreeRounds {
			bestThreeRounds = r.ComputeMerge
		}
	}
	// At full scale compute dominates and the spread is a few percent
	// (the paper: 3.5%); at the reduced test scale merge differences
	// show through more, so the bound is loose.
	if max > 1.6*min {
		t.Errorf("strategy spread too wide: %v .. %v", min, max)
	}
	radix2Chain := res.Rows[4].ComputeMerge
	if bestThreeRounds > radix2Chain {
		t.Errorf("no three-round strategy (best %v) beats the radix-2 chain (%v)", bestThreeRounds, radix2Chain)
	}
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(Config{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	serialRow := res.Rows[0]
	for _, r := range res.Rows {
		if !r.MatchesSerial {
			t.Errorf("blocks=%d: stable extrema differ from serial", r.Blocks)
		}
		if r.StableMaxima != serialRow.StableMaxima {
			t.Errorf("blocks=%d: %d stable maxima, serial found %d",
				r.Blocks, r.StableMaxima, serialRow.StableMaxima)
		}
		if r.RidgeCycles < 1 {
			t.Errorf("blocks=%d: toroidal ridge loop lost (%d cycles)", r.Blocks, r.RidgeCycles)
		}
	}
	// More blocks create more pre-merge boundary artifacts.
	if !(res.Rows[2].RawNodes > res.Rows[0].RawNodes) {
		t.Errorf("boundary artifacts missing: raw nodes %d (64 blocks) vs %d (1 block)",
			res.Rows[2].RawNodes, res.Rows[0].RawNodes)
	}
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(tiny())
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		if total(cur.Nodes) <= total(prev.Nodes) {
			t.Errorf("complexity %g: %d nodes not more than %d at %g",
				cur.Complexity, total(cur.Nodes), total(prev.Nodes), prev.Complexity)
		}
	}
}

func total(n [4]int) int { return n[0] + n[1] + n[2] + n[3] }

func TestFig6Shape(t *testing.T) {
	res, err := Fig6(Config{Scale: 0.5, MaxProcs: 32})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("no rows")
	}
	// Compute time decreases with process count for fixed size and
	// complexity (strong scaling of the embarrassingly parallel stage).
	byKey := map[[2]int][]Fig6Row{}
	for _, r := range res.Rows {
		k := [2]int{int(r.Complexity), r.PointsSide}
		byKey[k] = append(byKey[k], r)
	}
	for k, rows := range byKey {
		for i := 1; i < len(rows); i++ {
			if rows[i].Compute >= rows[i-1].Compute {
				t.Errorf("%v: compute time %v at %d procs not below %v at %d procs",
					k, rows[i].Compute, rows[i].Procs, rows[i-1].Compute, rows[i-1].Procs)
			}
		}
	}
}

func TestFig7Shape(t *testing.T) {
	res, err := Fig7(Config{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	none, partial, full := res.Rows[0], res.Rows[1], res.Rows[2]
	if !(none.TotalNodes > partial.TotalNodes && partial.TotalNodes > full.TotalNodes) {
		t.Errorf("node counts not decreasing with merge depth: %d, %d, %d",
			none.TotalNodes, partial.TotalNodes, full.TotalNodes)
	}
	if !(none.OutputBlocks > partial.OutputBlocks && partial.OutputBlocks > full.OutputBlocks) {
		t.Errorf("output blocks not decreasing: %d, %d, %d",
			none.OutputBlocks, partial.OutputBlocks, full.OutputBlocks)
	}
}

func TestFig9Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	res, err := Fig9(Config{Scale: 0.5, MaxProcs: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	// Compute dominates at small process counts.
	if first.Compute < first.Merge {
		t.Errorf("at %d procs compute (%v) should dominate merge (%v)",
			first.Procs, first.Compute, first.Merge)
	}
	// Strong scaling: total time drops, efficiency decays below 100%.
	if last.Total >= first.Total {
		t.Errorf("no speedup: %v at %d procs vs %v at %d", last.Total, last.Procs, first.Total, first.Procs)
	}
	if last.Efficiency >= 1.0 || last.Efficiency <= 0 {
		t.Errorf("implausible efficiency %v", last.Efficiency)
	}
	// Merge time grows (or at least does not vanish) with process count
	// under a full merge.
	if last.Merge < first.Merge/2 {
		t.Errorf("merge time should not shrink under full merge: %v -> %v", first.Merge, last.Merge)
	}
}

func TestFig10Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep")
	}
	res, err := Fig10(Config{Scale: 0.5, MaxProcs: 1024})
	if err != nil {
		t.Fatal(err)
	}
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.Total >= first.Total {
		t.Errorf("no speedup to %d procs", last.Procs)
	}
	// Both efficiencies are meaningful fractions. (The paper's ordering
	// — compute+merge 66% above end-to-end 35% — is a data-size effect:
	// its 4 GB output makes the write term dominate end-to-end time,
	// which only reproduces at -scale ≳ 4; see EXPERIMENTS.md.)
	if last.CMEff <= 0 || last.CMEff > 1.05 {
		t.Errorf("implausible compute+merge efficiency %v", last.CMEff)
	}
	if last.Efficiency <= 0 || last.Efficiency > 1.05 {
		t.Errorf("implausible end-to-end efficiency %v", last.Efficiency)
	}
}
