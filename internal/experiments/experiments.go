// Package experiments regenerates every table and figure of the paper's
// evaluation (section VI): the merge cost and strategy tables, the
// size/complexity parameter study, the stability study, and the JET and
// Rayleigh-Taylor strong scaling runs. Each driver returns typed rows
// and can render itself as an aligned text table; cmd/msbench runs them
// from the command line and the root bench suite wraps them in
// testing.B benchmarks.
//
// Dataset sizes default to workstation scale (the original runs used up
// to 5.7 GB of data on 32,768 Blue Gene/P nodes); every driver accepts a
// Scale that multiplies the default extents, and rank counts are NOT
// scaled down — the virtual cluster runs the paper's full process-count
// sweeps.
package experiments

import (
	"fmt"
	"io"
	"runtime"
	"strings"
	"text/tabwriter"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/pipeline"
)

// Config tunes experiment scale.
type Config struct {
	// Scale multiplies dataset extents (1.0 = workstation defaults;
	// the paper's sizes need roughly Scale 4-8 and hours of runtime).
	Scale float64
	// MaxProcs caps the largest rank count of scaling sweeps (0 = each
	// experiment's default).
	MaxProcs int
	// MaxParallel bounds host goroutine concurrency (0 = NumCPU).
	MaxParallel int
	// Verbose makes drivers print progress to Progress as they go.
	Verbose  bool
	Progress io.Writer
	// Observe, when non-nil, is called instead of obs.New whenever a
	// traced experiment builds an observer for a run, letting a driver
	// (msbench -listen) publish the in-flight run's observer to a live
	// introspection server. Untraced experiments never call it.
	Observe func(procs int) *obs.Observer
}

func (c Config) scale() float64 {
	if c.Scale <= 0 {
		return 1
	}
	return c.Scale
}

// observer builds the observer for one traced run, routing through
// Observe when a driver wants to watch runs live.
func (c Config) observer(procs int) *obs.Observer {
	if c.Observe != nil {
		return c.Observe(procs)
	}
	return obs.New(procs)
}

func (c Config) maxParallel() int {
	if c.MaxParallel > 0 {
		return c.MaxParallel
	}
	return runtime.NumCPU()
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Verbose && c.Progress != nil {
		fmt.Fprintf(c.Progress, format, args...)
	}
}

// dim scales a default extent, keeping it even (bisection-friendly) and
// at least 16.
func (c Config) dim(base int) int {
	d := int(float64(base) * c.scale())
	if d < 16 {
		d = 16
	}
	return d &^ 1
}

// run executes one pipeline configuration on a fresh virtual cluster.
func run(cfg Config, vol *grid.Volume, procs int, blocks int, radices []int, relPersistence float64) (*pipeline.Result, error) {
	cluster, err := mpsim.New(mpsim.Config{Procs: procs, MaxParallel: cfg.maxParallel()})
	if err != nil {
		return nil, err
	}
	pario.WriteVolume(cluster.FS(), "volume.raw", vol)
	lo, hi := vol.Range()
	return pipeline.Run(cluster, pipeline.Params{
		File:        "volume.raw",
		Dims:        vol.Dims,
		DType:       vol.DType,
		Blocks:      blocks,
		Radices:     radices,
		Persistence: float32(relPersistence * float64(hi-lo)),
	})
}

// table renders rows with aligned columns.
func table(w io.Writer, header []string, rows [][]string) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, strings.Join(header, "\t"))
	sep := make([]string, len(header))
	for i, h := range header {
		sep[i] = strings.Repeat("-", len(h))
	}
	fmt.Fprintln(tw, strings.Join(sep, "\t"))
	for _, r := range rows {
		fmt.Fprintln(tw, strings.Join(r, "\t"))
	}
	tw.Flush()
}

func radixString(radices []int) string {
	parts := make([]string, len(radices))
	for i, r := range radices {
		parts[i] = fmt.Sprint(r)
	}
	return strings.Join(parts, " ")
}

func pow2Sweep(lo, hi int) []int {
	var out []int
	for p := lo; p <= hi; p *= 2 {
		out = append(out, p)
	}
	return out
}

// runKeep is run with the final complexes retained in the result.
func runKeep(cfg Config, vol *grid.Volume, procs int, blocks int, radices []int, relPersistence float64) (*pipeline.Result, error) {
	cluster, err := mpsim.New(mpsim.Config{Procs: procs, MaxParallel: cfg.maxParallel()})
	if err != nil {
		return nil, err
	}
	pario.WriteVolume(cluster.FS(), "volume.raw", vol)
	lo, hi := vol.Range()
	return pipeline.Run(cluster, pipeline.Params{
		File:          "volume.raw",
		Dims:          vol.Dims,
		DType:         vol.DType,
		Blocks:        blocks,
		Radices:       radices,
		Persistence:   float32(relPersistence * float64(hi-lo)),
		KeepComplexes: true,
	})
}

// fullRadices is the paper-recommended full-merge schedule for nblocks.
func fullRadices(nblocks int) []int { return merge.Full(nblocks).Radices }

// lowestComplex returns the complex of the lowest surviving block id.
func lowestComplex(r *pipeline.Result) *mscomplex.Complex {
	best := -1
	for id := range r.Complexes {
		if best < 0 || id < best {
			best = id
		}
	}
	return r.Complexes[best]
}
