package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"time"

	"parms/internal/cube"
	"parms/internal/fault"
	"parms/internal/gradient"
	"parms/internal/grid"
	"parms/internal/kernel"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/obs"
	"parms/internal/pario"
	"parms/internal/pipeline"
	"parms/internal/synth"
	"parms/internal/vtime"
)

// BenchRun is one traced pipeline execution of the benchmark sweep:
// modeled stage times, per-stage load imbalance (max/mean across
// ranks, from the span trace), and the communication volume observed
// by the metrics registry.
type BenchRun struct {
	Procs  int    `json:"procs"`
	Blocks int    `json:"blocks"`
	Dims   [3]int `json:"dims"`

	ReadSeconds    float64 `json:"read_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
	MergeSeconds   float64 `json:"merge_seconds"`
	WriteSeconds   float64 `json:"write_seconds"`
	TotalSeconds   float64 `json:"total_seconds"`

	// Imbalance maps stage name to max/mean rank duration (1.0 =
	// perfectly balanced).
	Imbalance map[string]float64 `json:"imbalance"`

	PeakPayloadBytes int64   `json:"peak_payload_bytes"`
	BytesSent        int64   `json:"bytes_sent"`
	BytesRecv        int64   `json:"bytes_recv"`
	Nodes            [4]int  `json:"nodes"`
	Arcs             int     `json:"arcs"`
	WallSeconds      float64 `json:"wall_seconds"`
	// Workers is the intra-rank kernel pool width the run used; 0 in
	// snapshots taken before the worker pool existed (sequential).
	Workers int `json:"workers,omitempty"`
}

// benchKernelWorkers is the intra-rank pool width of the sweep runs:
// wide enough that the parallel cost model separates clearly from the
// sequential portion, narrow enough to stay realistic for the modeled
// quad-core-class node.
const benchKernelWorkers = 4

// KernelPoint is one workers setting of the compute-kernel probe.
type KernelPoint struct {
	Workers int `json:"workers"`
	// WallSeconds is measured on the host and is report-only (CI
	// machines vary); ComputeSeconds is the modeled parallel compute
	// time and is deterministic.
	WallSeconds    float64 `json:"wall_seconds"`
	ComputeSeconds float64 `json:"compute_seconds"`
}

// ComputeKernel is the data-parallel kernel probe attached to the bench
// snapshot: one block's gradient + trace run directly (no cluster) at
// several pool widths. Sweeps and SweepWrites fingerprint the pointer-
// jumping convergence — they depend only on the data, never on the
// host or the pool width — while PerWorker records how compute time
// scales with workers.
type ComputeKernel struct {
	Dims    [3]int `json:"dims"`
	Workers int    `json:"workers"` // width used by the sweep runs above
	// Sweeps counts pointer-jumping sweeps to convergence, including
	// the final zero-write sweep; SweepWrites is the per-sweep write
	// histogram (the convergence cascade).
	Sweeps      int           `json:"sweeps"`
	SweepWrites []int64       `json:"sweep_writes"`
	PerWorker   []KernelPoint `json:"per_worker"`
}

// FaultDrill is the deterministic recovery drill attached to the bench
// snapshot: one 64-rank merge with migration, speculation, and
// checkpoint GC all on, a rank crash and a straggler payload injected.
// Every counter below is modeled, not measured, so the benchdiff gate
// matches the counts exactly and the seconds within the stage-time
// tolerance; the drill catches silent drift in recovery paths the
// fault-free scaling sweep never exercises.
type FaultDrill struct {
	Procs                       int     `json:"procs"`
	Migrations                  int     `json:"migrations"`
	MigratedBlocks              []int   `json:"migrated_blocks"`
	Timeouts                    int     `json:"timeouts"`
	TimeoutWaitSeconds          float64 `json:"timeout_wait_seconds"`
	SpeculationPayloadWins      int     `json:"speculation_payload_wins"`
	SpeculationRecomputeWins    int     `json:"speculation_recompute_wins"`
	SpeculationCancelledSeconds float64 `json:"speculation_cancelled_seconds"`
	CheckpointsGCed             int     `json:"checkpoints_gced"`
	CheckpointGCBytes           int64   `json:"checkpoint_gc_bytes"`
	CheckpointRestores          int     `json:"checkpoint_restores"`
	Recomputes                  int     `json:"recomputes"`
	MergeSeconds                float64 `json:"merge_seconds"`
	Nodes                       [4]int  `json:"nodes"`
}

// TracerOverhead is the flow-recorder cost probe attached to the bench
// snapshot: the same 64-rank run executed twice, once recording every
// message flow and once with the recorder in count-only mode. Flow
// instrumentation reads the virtual clocks but never advances them, so
// the virtual-time overhead must be exactly zero; the allocation
// overhead of storing the records is measured and gated under 5%.
type TracerOverhead struct {
	Procs         int   `json:"procs"`
	FlowsStarted  int64 `json:"flows_started"`
	FlowsRecorded int   `json:"flows_recorded"`
	FlowBytes     int64 `json:"flow_bytes"`
	// TracedSeconds and CountOnlySeconds are the modeled totals of the
	// recording and count-only runs; their difference is the virtual
	// overhead (always 0 — committed so the gate proves it stays 0).
	TracedSeconds          float64 `json:"traced_seconds"`
	CountOnlySeconds       float64 `json:"count_only_seconds"`
	VirtualOverheadSeconds float64 `json:"virtual_overhead_seconds"`
	// AllocOverheadFrac is (traced - count-only) / count-only host
	// allocations — the only measured (non-deterministic) field.
	AllocOverheadFrac float64 `json:"alloc_overhead_frac"`
}

// BenchResult is the full sweep, JSON-serializable for trend tracking.
type BenchResult struct {
	Dataset   string     `json:"dataset"`
	Scale     float64    `json:"scale"`
	CreatedAt string     `json:"created_at"`
	Runs      []BenchRun `json:"runs"`
	// FaultDrill is absent in snapshots taken before the migration /
	// speculation work landed; the gate only compares it when the
	// baseline carries one. TracerOverhead likewise dates from the flow
	// tracing work.
	FaultDrill     *FaultDrill     `json:"fault_drill,omitempty"`
	TracerOverhead *TracerOverhead `json:"tracer_overhead,omitempty"`
	// ComputeKernel dates from the data-parallel kernel work; older
	// baselines without one skip its comparison.
	ComputeKernel *ComputeKernel `json:"compute_kernel,omitempty"`
}

// Bench runs a traced strong-scaling sweep (sinusoid dataset, full
// merge, 1% persistence) over procs = 8..64 doubling, capped by
// cfg.MaxProcs, with observability enabled so each run reports stage
// imbalance and peak merge payload alongside the modeled times.
func Bench(cfg Config) (*BenchResult, error) {
	n := cfg.dim(64)
	vol := synth.Sinusoid(n, 6)
	maxP := cfg.MaxProcs
	if maxP <= 0 {
		maxP = 64
	}
	out := &BenchResult{
		Dataset:   fmt.Sprintf("sinusoid n=%d", n),
		Scale:     cfg.scale(),
		CreatedAt: time.Now().UTC().Format(time.RFC3339),
	}
	lo, hi := vol.Range()
	for _, procs := range pow2Sweep(8, maxP) {
		cfg.logf("bench: procs=%d\n", procs)
		ob := cfg.observer(procs)
		cluster, err := mpsim.New(mpsim.Config{Procs: procs, MaxParallel: cfg.maxParallel(), Obs: ob})
		if err != nil {
			return nil, err
		}
		pario.WriteVolume(cluster.FS(), "volume.raw", vol)
		start := time.Now()
		res, err := pipeline.Run(cluster, pipeline.Params{
			File:        "volume.raw",
			Dims:        vol.Dims,
			DType:       vol.DType,
			Blocks:      procs,
			Radices:     fullRadices(procs),
			Persistence: float32(0.01 * float64(hi-lo)),
			OutFile:     "bench.msc",
			Workers:     benchKernelWorkers,
		})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start).Seconds()
		imb := make(map[string]float64)
		for _, st := range res.Trace.StageStats("read", "compute", "merge", "write") {
			imb[st.Name] = st.Imbalance
		}
		reg := res.Metrics
		out.Runs = append(out.Runs, BenchRun{
			Procs:            procs,
			Blocks:           res.Blocks,
			Dims:             [3]int(vol.Dims),
			ReadSeconds:      res.Times.Read,
			ComputeSeconds:   res.Times.Compute,
			MergeSeconds:     res.Times.Merge,
			WriteSeconds:     res.Times.Write,
			TotalSeconds:     res.Times.Total,
			Imbalance:        imb,
			PeakPayloadBytes: int64(reg.GaugeValue("merge_payload_peak_bytes")),
			BytesSent:        reg.CounterValue("mpsim_bytes_sent_total"),
			BytesRecv:        reg.CounterValue("mpsim_bytes_recv_total"),
			Nodes:            res.Nodes,
			Arcs:             res.Arcs,
			WallSeconds:      wall,
			Workers:          benchKernelWorkers,
		})
	}
	cfg.logf("bench: compute kernel probe\n")
	out.ComputeKernel = benchComputeKernel(cfg)
	cfg.logf("bench: fault drill\n")
	drill, err := benchFaultDrill(cfg)
	if err != nil {
		return nil, err
	}
	out.FaultDrill = drill
	cfg.logf("bench: tracer overhead\n")
	overhead, err := benchTracerOverhead(cfg)
	if err != nil {
		return nil, err
	}
	out.TracerOverhead = overhead
	return out, nil
}

// benchComputeKernel probes the data-parallel compute kernels directly:
// one block's gradient assignment and arc trace on the chaos-suite
// sinusoid, at pool widths 1..8 doubling. No cluster is involved, so
// the wall seconds isolate the kernels themselves; the modeled seconds
// come from the same parallel cost model the pipeline charges. The
// sweep statistics are taken from the width-1 run and must be identical
// at every width (the golden equivalence tests enforce this; the gate
// fingerprints them against the baseline).
func benchComputeKernel(cfg Config) *ComputeKernel {
	vol := synth.Sinusoid(33, 4)
	block := grid.Block{
		ID: 0,
		Lo: [3]int{0, 0, 0},
		Hi: [3]int{vol.Dims[0] - 1, vol.Dims[1] - 1, vol.Dims[2] - 1},
	}
	machine := vtime.BlueGeneP()
	ck := &ComputeKernel{Dims: [3]int(vol.Dims), Workers: benchKernelWorkers}
	for _, w := range []int{1, 2, 4, 8} {
		var pool *kernel.Pool
		if w > 1 {
			pool = kernel.New(w)
		}
		start := time.Now()
		f := gradient.ComputePooled(cube.New(vol.Dims, block, vol), nil, pool)
		tr := mscomplex.FromFieldPooled(f, nil, mscomplex.TraceOptions{}, pool)
		wall := time.Since(start).Seconds()
		work := f.Work
		work.Add(tr.Complex.Work)
		ck.PerWorker = append(ck.PerWorker, KernelPoint{
			Workers:        w,
			WallSeconds:    wall,
			ComputeSeconds: float64(machine.ParallelComputeTime(work, w)),
		})
		if w == 1 {
			ck.Sweeps = tr.Kernel.Sweeps
			ck.SweepWrites = tr.Kernel.SweepWrites
		}
	}
	return ck
}

// benchTracerOverhead runs the flow-recorder cost probe: one 64-rank
// full-merge run with every message flow recorded, and the identical
// run with the recorder in count-only mode (sequence counters advance,
// nothing is stored). Virtual times must agree bit-for-bit; the host
// allocation delta between the two runs is the price of keeping the
// records.
func benchTracerOverhead(cfg Config) (*TracerOverhead, error) {
	const procs = 64
	vol := synth.Sinusoid(33, 4)
	run := func(sample int) (*pipeline.Result, uint64, error) {
		ob := obs.New(procs)
		ob.FlowRecorder().SetSample(sample)
		cluster, err := mpsim.New(mpsim.Config{Procs: procs, MaxParallel: cfg.maxParallel(), Obs: ob})
		if err != nil {
			return nil, 0, err
		}
		pario.WriteVolume(cluster.FS(), "volume.raw", vol)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		res, err := pipeline.Run(cluster, pipeline.Params{
			File:        "volume.raw",
			Dims:        vol.Dims,
			DType:       vol.DType,
			Blocks:      procs,
			Radices:     []int{8, 8},
			Persistence: 0.1,
			OutFile:     "overhead.msc",
		})
		runtime.ReadMemStats(&m1)
		return res, m1.TotalAlloc - m0.TotalAlloc, err
	}
	traced, tracedAlloc, err := run(0)
	if err != nil {
		return nil, err
	}
	counted, countedAlloc, err := run(-1)
	if err != nil {
		return nil, err
	}
	flows := traced.Trace.Flows().Flows()
	var flowBytes int64
	for _, f := range flows {
		flowBytes += int64(f.Bytes)
	}
	frac := 0.0
	if countedAlloc > 0 {
		frac = (float64(tracedAlloc) - float64(countedAlloc)) / float64(countedAlloc)
	}
	return &TracerOverhead{
		Procs:                  procs,
		FlowsStarted:           traced.Trace.Flows().Started(),
		FlowsRecorded:          len(flows),
		FlowBytes:              flowBytes,
		TracedSeconds:          traced.Times.Total,
		CountOnlySeconds:       counted.Times.Total,
		VirtualOverheadSeconds: traced.Times.Total - counted.Times.Total,
		AllocOverheadFrac:      frac,
	}, nil
}

// benchFaultDrill runs the snapshot's recovery drill: a 64-rank
// radix-4 merge of the chaos-suite sinusoid with per-round checkpoints,
// GC, migration, and speculation all on. Rank 4 crashes entering round
// 1 (its block migrates and restores from the dead rank's checkpoint)
// and rank 3's round-0 payload is delayed just past the receive
// deadline (the speculation race resolves in the payload's favor). The
// injections and the virtual clock are deterministic, so every
// resulting counter is a stable fingerprint of the recovery machinery.
func benchFaultDrill(cfg Config) (*FaultDrill, error) {
	const procs = 64
	vol := synth.Sinusoid(33, 4)
	plan := fault.NewPlan(7).
		CrashRank(4, "merge:1").
		DelayMessage(3, 0, 1, 0.002)
	cluster, err := mpsim.New(mpsim.Config{Procs: procs, MaxParallel: cfg.maxParallel(), Faults: plan})
	if err != nil {
		return nil, err
	}
	pario.WriteVolume(cluster.FS(), "volume.raw", vol)
	res, err := pipeline.Run(cluster, pipeline.Params{
		File:            "volume.raw",
		Dims:            vol.Dims,
		DType:           vol.DType,
		Blocks:          procs,
		Radices:         []int{4, 4, 4},
		Persistence:     0.1,
		OutFile:         "drill.msc",
		CheckpointEvery: 1,
		CheckpointGC:    true,
		Migrate:         true,
		Speculate:       true,
		MergeTimeout:    0.001,
	})
	if err != nil {
		return nil, err
	}
	rep := res.FaultReport
	return &FaultDrill{
		Procs:                       procs,
		Migrations:                  rep.Migrations,
		MigratedBlocks:              rep.MigratedBlocks,
		Timeouts:                    rep.Timeouts,
		TimeoutWaitSeconds:          rep.TimeoutWaitSeconds,
		SpeculationPayloadWins:      rep.SpeculationPayloadWins,
		SpeculationRecomputeWins:    rep.SpeculationRecomputeWins,
		SpeculationCancelledSeconds: rep.SpeculationCancelledSeconds,
		CheckpointsGCed:             rep.CheckpointsGCed,
		CheckpointGCBytes:           rep.CheckpointGCBytes,
		CheckpointRestores:          rep.CheckpointRestores,
		Recomputes:                  rep.Recomputes,
		MergeSeconds:                res.Times.Merge,
		Nodes:                       res.Nodes,
	}, nil
}

// Print renders the sweep as an aligned table.
func (b *BenchResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Benchmark sweep: %s, full merge, 1%% persistence\n", b.Dataset)
	header := []string{"procs", "read s", "compute s", "merge s", "write s", "total s",
		"imb compute", "imb merge", "peak payload B", "sent B", "recv B", "wall s"}
	rows := make([][]string, 0, len(b.Runs))
	for _, r := range b.Runs {
		rows = append(rows, []string{
			fmt.Sprint(r.Procs),
			fmt.Sprintf("%.4f", r.ReadSeconds),
			fmt.Sprintf("%.4f", r.ComputeSeconds),
			fmt.Sprintf("%.4f", r.MergeSeconds),
			fmt.Sprintf("%.4f", r.WriteSeconds),
			fmt.Sprintf("%.4f", r.TotalSeconds),
			fmt.Sprintf("%.2f", r.Imbalance["compute"]),
			fmt.Sprintf("%.2f", r.Imbalance["merge"]),
			fmt.Sprint(r.PeakPayloadBytes),
			fmt.Sprint(r.BytesSent),
			fmt.Sprint(r.BytesRecv),
			fmt.Sprintf("%.1f", r.WallSeconds),
		})
	}
	table(w, header, rows)
	if ck := b.ComputeKernel; ck != nil {
		fmt.Fprintf(w, "Compute kernel probe: %d×%d×%d block, %d jumping sweeps, writes %v\n",
			ck.Dims[0], ck.Dims[1], ck.Dims[2], ck.Sweeps, ck.SweepWrites)
		for _, p := range ck.PerWorker {
			fmt.Fprintf(w, "  workers=%d  compute %.4fs (modeled)  wall %.3fs\n",
				p.Workers, p.ComputeSeconds, p.WallSeconds)
		}
	}
}

// WriteJSON writes the sweep as indented JSON.
func (b *BenchResult) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}
