package experiments

import (
	"bytes"
	"strings"
	"testing"

	"parms/internal/grid"
)

// Rendering tests with fabricated rows: every Print method must produce
// a titled, aligned table without touching the pipeline.

func render(t *testing.T, p interface{ Print(w *bytes.Buffer) }) string {
	t.Helper()
	var buf bytes.Buffer
	p.Print(&buf)
	return buf.String()
}

func TestPrintTableII(t *testing.T) {
	res := &TableIIResult{Blocks: 256, Rows: []TableIIRow{
		{Rounds: 3, Radices: []int{4, 8, 8}, ComputeMerge: 144.04},
		{Rounds: 8, Radices: []int{2, 2, 2, 2, 2, 2, 2, 2}, ComputeMerge: 149.17},
	}}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	for _, want := range []string{"Table II", "4 8 8", "144.040", "149.170"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestPrintFig6(t *testing.T) {
	res := &Fig6Result{Rows: []Fig6Row{
		{Complexity: 2, PointsSide: 65, Procs: 8, Compute: 1.5, Merge: 0.1, OutputSize: 1000},
		{Complexity: 2, PointsSide: 65, Procs: 16, Compute: 0.8, Merge: 0.12, OutputSize: 1100},
		{Complexity: 8, PointsSide: 65, Procs: 8, Compute: 1.5, Merge: 0.4, OutputSize: 9000},
	}}
	var buf bytes.Buffer
	res.Print(&buf)
	out := buf.String()
	if strings.Count(out, "[complexity") != 2 {
		t.Fatalf("expected two complexity panels in:\n%s", out)
	}
	if !strings.Contains(out, "Points/side") {
		t.Fatalf("missing header in:\n%s", out)
	}
}

func TestPrintScaling(t *testing.T) {
	res := &ScalingResult{
		Name: "demo",
		Dims: grid.Dims{96, 112, 64},
		Rows: []ScalingRow{
			{Procs: 32, Read: 0.1, Compute: 10, Merge: 0.5, Write: 0.2, Total: 10.8},
			{Procs: 64, Read: 0.1, Compute: 5, Merge: 0.7, Write: 0.2, Total: 6.0},
		},
	}
	res.fillEfficiency()
	if res.Rows[0].Efficiency != 1 {
		t.Fatalf("base efficiency %v", res.Rows[0].Efficiency)
	}
	if res.Rows[1].Efficiency <= 0.5 || res.Rows[1].Efficiency >= 1 {
		t.Fatalf("efficiency %v out of range", res.Rows[1].Efficiency)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if !strings.Contains(buf.String(), "C+M Eff") {
		t.Fatal("missing efficiency column")
	}
}

func TestPrintFig4Fig5Fig7(t *testing.T) {
	f4 := &Fig4Result{Rows: []Fig4Row{{Blocks: 8, RawNodes: 100, Nodes: [4]int{1, 4, 8, 4},
		StableMaxima: 3, RidgeCycles: 1, MatchesSerial: true}}}
	var buf bytes.Buffer
	f4.Print(&buf)
	if !strings.Contains(buf.String(), "Stable maxima") {
		t.Fatal("fig4 header missing")
	}

	f5 := &Fig5Result{PointsSide: 65, Rows: []Fig5Row{{Complexity: 4, Nodes: [4]int{32, 33, 34, 32}, Arcs: 500, OutputSize: 12345}}}
	buf.Reset()
	f5.Print(&buf)
	if !strings.Contains(buf.String(), "Features/side") {
		t.Fatal("fig5 header missing")
	}

	f7 := &Fig7Result{Rows: []Fig7Row{{Label: "full", Radices: []int{8, 8}, OutputBlocks: 1, OutputSize: 99, TotalNodes: 42, MergeTime: 0.5}}}
	buf.Reset()
	f7.Print(&buf)
	if !strings.Contains(buf.String(), "Blocks out") {
		t.Fatal("fig7 header missing")
	}
}

func TestPrintExtensions(t *testing.T) {
	b := &BalanceResult{Rows: []BalanceRow{{Procs: 16, BlocksPerProc: 1, ComputeMax: 2, ComputeMean: 1, ImbalanceRatio: 2}}}
	var buf bytes.Buffer
	b.Print(&buf)
	if !strings.Contains(buf.String(), "Max/mean") {
		t.Fatal("balance header missing")
	}

	s := &SpeedupResult{HostCPUs: 4, Rows: []SpeedupRow{{Procs: 1, WallSecs: 4, Speedup: 1, Efficiency: 1}}}
	buf.Reset()
	s.Print(&buf)
	if !strings.Contains(buf.String(), "Speedup") {
		t.Fatal("speedup header missing")
	}

	g := &GlobalSimplifyResult{Rows: []GlobalSimplifyRow{{Label: "partial", OutputBlocks: 8, Nodes: 1000, Bytes: 5000}}}
	buf.Reset()
	g.Print(&buf)
	if !strings.Contains(buf.String(), "Configuration") {
		t.Fatal("globalsimplify header missing")
	}

	m := &MappingResult{Procs: 512, Rows: []MappingRow{{Label: "identity", MergeTime: 0.1, TotalTime: 1}}}
	buf.Reset()
	m.Print(&buf)
	if !strings.Contains(buf.String(), "Placement") {
		t.Fatal("mapping header missing")
	}
}
