package experiments

import "testing"

func TestLoadBalanceShape(t *testing.T) {
	res, err := LoadBalance(Config{Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.ImbalanceRatio < 0.99 {
			t.Fatalf("impossible imbalance %v (max below mean)", r.ImbalanceRatio)
		}
	}
	// More blocks per process must substantially improve balance on the
	// clustered workload.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.ImbalanceRatio >= first.ImbalanceRatio {
		t.Errorf("imbalance did not improve: %v (1 bpp) -> %v (8 bpp)",
			first.ImbalanceRatio, last.ImbalanceRatio)
	}
}

func TestGlobalSimplifyShape(t *testing.T) {
	res, err := GlobalSimplify(Config{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	partial, global, full := res.Rows[0], res.Rows[1], res.Rows[2]
	if global.Nodes >= partial.Nodes {
		t.Errorf("global simplification did not reduce nodes: %d -> %d", partial.Nodes, global.Nodes)
	}
	if global.Nodes != full.Nodes {
		t.Errorf("global simplification (%d nodes) differs from full merge (%d)", global.Nodes, full.Nodes)
	}
	if global.Bytes >= partial.Bytes {
		t.Errorf("global simplification did not reduce bytes: %d -> %d", partial.Bytes, global.Bytes)
	}
}

func TestSpeedupMeasured(t *testing.T) {
	if testing.Short() {
		t.Skip("measured timing")
	}
	res, err := Speedup(Config{Scale: 0.3, MaxProcs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) < 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.WallSecs <= 0 {
			t.Fatalf("non-positive wall time at %d procs", r.Procs)
		}
	}
	// Real speedup is noisy on shared CI hosts; require only that more
	// ranks are not catastrophically slower.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if last.WallSecs > 1.5*first.WallSecs {
		t.Errorf("parallel run much slower than serial: %v vs %v", last.WallSecs, first.WallSecs)
	}
}

func TestMappingShape(t *testing.T) {
	res, err := Mapping(Config{Scale: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("%d rows", len(res.Rows))
	}
	identity, shuffled := res.Rows[0], res.Rows[1]
	// Destroying torus locality must not make merging cheaper; with 512
	// ranks the difference should be visible.
	if shuffled.MergeTime < identity.MergeTime {
		t.Errorf("shuffled placement merged faster (%v) than identity (%v)",
			shuffled.MergeTime, identity.MergeTime)
	}
}
