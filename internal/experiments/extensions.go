package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"

	"parms/internal/analysis"
	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/mpsim"
	"parms/internal/mscomplex"
	"parms/internal/pario"
	"parms/internal/pipeline"
	"parms/internal/synth"
	"parms/internal/vtime"
)

// This file contains studies beyond the paper's evaluation: the
// load-balancing question section IV-A raises but does not evaluate, a
// real (measured, not modeled) shared-memory speedup study, and the
// global persistence simplification the paper lists as future work
// (section VII-B).

// BalanceRow is one configuration of the load-balance study.
type BalanceRow struct {
	Procs          int
	BlocksPerProc  int
	ComputeMax     float64 // stage time = slowest rank
	ComputeMean    float64 // average rank
	ImbalanceRatio float64 // max / mean; 1.0 = perfectly balanced
}

// BalanceResult is the block-cyclic load-balancing study.
type BalanceResult struct {
	Rows []BalanceRow
}

// LoadBalance evaluates what the paper only hypothesizes (section
// IV-A): "depending on the distribution of nodes and arcs in the entire
// domain, multiple blocks per process may increase the chances that the
// computational load is better balanced". The workload is a deliberately
// skewed field whose features live in one octant, so with one block per
// process an eighth of the ranks do almost all the tracing work; with
// more, smaller blocks assigned round-robin, every rank receives a mix
// of cheap and expensive blocks and the max/mean compute ratio drops.
func LoadBalance(cfg Config) (*BalanceResult, error) {
	n := cfg.dim(64)
	vol := synth.Clustered(n+1, 8)
	const procs = 16
	res := &BalanceResult{}
	for _, bpp := range []int{1, 2, 4, 8} {
		cfg.logf("balance: blocks/proc=%d\n", bpp)
		r, err := run(cfg, vol, procs, procs*bpp, nil, 0.01)
		if err != nil {
			return nil, err
		}
		row := BalanceRow{
			Procs:         procs,
			BlocksPerProc: bpp,
			ComputeMax:    r.Times.Compute,
			ComputeMean:   r.ComputeMean,
		}
		if row.ComputeMean > 0 {
			row.ImbalanceRatio = row.ComputeMax / row.ComputeMean
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the load-balance study.
func (b *BalanceResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Load balance study (clustered features, block-cyclic assignment)")
	rows := make([][]string, len(b.Rows))
	for i, r := range b.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Procs),
			fmt.Sprint(r.BlocksPerProc),
			fmt.Sprintf("%.3f", r.ComputeMax),
			fmt.Sprintf("%.3f", r.ComputeMean),
			fmt.Sprintf("%.2f", r.ImbalanceRatio),
		}
	}
	table(w, []string{"Procs", "Blocks/proc", "Compute max (s)", "Compute mean (s)", "Max/mean"}, rows)
}

// SpeedupRow is one point of the measured (real wall-clock) speedup
// study.
type SpeedupRow struct {
	Procs      int
	WallSecs   float64
	Speedup    float64
	Efficiency float64
}

// SpeedupResult is the measured shared-memory scaling study.
type SpeedupResult struct {
	HostCPUs int
	Rows     []SpeedupRow
}

// Speedup measures real wall-clock strong scaling of the compute+merge
// stages on the host machine: ranks are goroutines executing the actual
// algorithm, with the virtual clocks switched to measured mode. Unlike
// the modeled studies, these numbers depend on the host; they
// demonstrate that the two-stage algorithm parallelizes in practice, not
// just in the model.
func Speedup(cfg Config) (*SpeedupResult, error) {
	n := cfg.dim(96)
	vol := synth.Sinusoid(n+1, 8)
	res := &SpeedupResult{HostCPUs: runtime.NumCPU()}
	maxProcs := cfg.MaxProcs
	if maxProcs == 0 {
		maxProcs = runtime.NumCPU()
	}
	for _, procs := range pow2Sweep(1, maxProcs) {
		cfg.logf("speedup: p=%d\n", procs)
		cluster, err := mpsim.New(mpsim.Config{
			Procs:   procs,
			Machine: vtime.LocalMeasured(),
		})
		if err != nil {
			return nil, err
		}
		pario.WriteVolume(cluster.FS(), "volume.raw", vol)
		lo, hi := vol.Range()
		r, err := pipeline.Run(cluster, pipeline.Params{
			File:        "volume.raw",
			Dims:        vol.Dims,
			DType:       vol.DType,
			Blocks:      procs,
			Radices:     merge.Full(procs).Radices,
			Persistence: float32(0.01 * float64(hi-lo)),
			Measured:    true,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, SpeedupRow{
			Procs:    procs,
			WallSecs: r.Times.Compute + r.Times.Merge,
		})
	}
	base := res.Rows[0]
	for i := range res.Rows {
		r := &res.Rows[i]
		if r.WallSecs > 0 {
			r.Speedup = base.WallSecs / r.WallSecs
			r.Efficiency = r.Speedup / (float64(r.Procs) / float64(base.Procs))
		}
	}
	return res, nil
}

// Print renders the measured speedup study.
func (s *SpeedupResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Measured compute+merge speedup on this host (%d CPUs)\n", s.HostCPUs)
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Procs),
			fmt.Sprintf("%.3f", r.WallSecs),
			fmt.Sprintf("%.2f×", r.Speedup),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency),
		}
	}
	table(w, []string{"Ranks", "Wall (s)", "Speedup", "Efficiency"}, rows)
}

// GlobalSimplifyRow compares output complexity before and after global
// simplification of a partially merged result.
type GlobalSimplifyRow struct {
	Label        string
	OutputBlocks int
	Nodes        int
	Bytes        int64
}

// GlobalSimplifyResult is the future-work study.
type GlobalSimplifyResult struct {
	Rows []GlobalSimplifyRow
}

// GlobalSimplify demonstrates the paper's future-work item (section
// VII-B): a partially merged output still carries protected boundary
// nodes; gluing the surviving blocks and simplifying globally reduces
// the complex to the fully-merged size without having re-run the
// pipeline — here performed as a post-processing pass over the output
// blocks.
func GlobalSimplify(cfg Config) (*GlobalSimplifyResult, error) {
	dims := grid.Dims{cfg.dim(96), cfg.dim(112), cfg.dim(64)}
	vol := synth.Jet(dims, 20120501)
	lo, hi := vol.Range()
	threshold := float32(0.01 * float64(hi-lo))
	const procs = 64

	cfg.logf("globalsimplify: partial run\n")
	partial, err := runKeep(cfg, vol, procs, procs, merge.Partial(procs, 1).Radices, 0.01)
	if err != nil {
		return nil, err
	}
	res := &GlobalSimplifyResult{}
	res.Rows = append(res.Rows, GlobalSimplifyRow{
		Label:        "partial merge (radix-8 ×1)",
		OutputBlocks: partial.OutputBlocks,
		Nodes:        partial.Nodes[0] + partial.Nodes[1] + partial.Nodes[2] + partial.Nodes[3],
		Bytes:        partial.OutputBytes,
	})

	// Glue all surviving blocks (in id order, deterministically) and
	// simplify globally.
	ids := make([]int, 0, len(partial.Complexes))
	for id := range partial.Complexes {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	glueList := make([]*mscomplex.Complex, 0, len(ids))
	for _, id := range ids {
		glueList = append(glueList, partial.Complexes[id])
	}
	global := analysis.MergeAll(glueList, threshold)
	gNodes, _ := global.AliveCounts()
	res.Rows = append(res.Rows, GlobalSimplifyRow{
		Label:        "+ global simplification",
		OutputBlocks: 1,
		Nodes:        gNodes[0] + gNodes[1] + gNodes[2] + gNodes[3],
		Bytes:        global.SerializedSize(),
	})

	cfg.logf("globalsimplify: full run\n")
	full, err := run(cfg, vol, procs, procs, merge.Full(procs).Radices, 0.01)
	if err != nil {
		return nil, err
	}
	res.Rows = append(res.Rows, GlobalSimplifyRow{
		Label:        "full merge (reference)",
		OutputBlocks: full.OutputBlocks,
		Nodes:        full.Nodes[0] + full.Nodes[1] + full.Nodes[2] + full.Nodes[3],
		Bytes:        full.OutputBytes,
	})
	return res, nil
}

// Print renders the global simplification study.
func (g *GlobalSimplifyResult) Print(w io.Writer) {
	fmt.Fprintln(w, "Global persistence simplification (the paper's future work, section VII-B)")
	rows := make([][]string, len(g.Rows))
	for i, r := range g.Rows {
		rows[i] = []string{r.Label, fmt.Sprint(r.OutputBlocks), fmt.Sprint(r.Nodes), fmt.Sprint(r.Bytes)}
	}
	table(w, []string{"Configuration", "Blocks", "Nodes", "Bytes"}, rows)
}

// MappingRow is one rank-placement configuration of the torus mapping
// study.
type MappingRow struct {
	Label     string
	MergeTime float64
	TotalTime float64
}

// MappingResult is the torus rank-placement study.
type MappingResult struct {
	Procs int
	Rows  []MappingRow
}

// Mapping quantifies how much the merge stage depends on where ranks
// sit in the torus — the partition-mapping question every Blue Gene
// deployment tuned by hand. Identity placement keeps radix groups of
// early merge rounds torus-local; a deterministic shuffle destroys that
// locality, and every message pays more hops.
func Mapping(cfg Config) (*MappingResult, error) {
	n := cfg.dim(64)
	vol := synth.Sinusoid(n+1, 8)
	const procs = 512
	res := &MappingResult{Procs: procs}
	radices := merge.Full(procs).Radices

	placements := []struct {
		label string
		build func() []int
	}{
		{"identity (row-major)", func() []int { return nil }},
		{"shuffled", func() []int {
			rng := rand.New(rand.NewSource(2012))
			p := rng.Perm(procs)
			return p
		}},
	}
	for _, pl := range placements {
		cfg.logf("mapping: %s\n", pl.label)
		cluster, err := mpsim.New(mpsim.Config{
			Procs:       procs,
			MaxParallel: cfg.maxParallel(),
			Placement:   pl.build(),
		})
		if err != nil {
			return nil, err
		}
		pario.WriteVolume(cluster.FS(), "volume.raw", vol)
		lo, hi := vol.Range()
		r, err := pipeline.Run(cluster, pipeline.Params{
			File: "volume.raw", Dims: vol.Dims, DType: vol.DType,
			Blocks: procs, Radices: radices,
			Persistence: float32(0.01 * float64(hi-lo)),
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, MappingRow{
			Label:     pl.label,
			MergeTime: r.Times.Merge,
			TotalTime: r.Times.Total,
		})
	}
	return res, nil
}

// Print renders the mapping study.
func (m *MappingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Torus rank-placement study (%d ranks, full merge)\n", m.Procs)
	rows := make([][]string, len(m.Rows))
	for i, r := range m.Rows {
		rows[i] = []string{r.Label, fmt.Sprintf("%.3f", r.MergeTime), fmt.Sprintf("%.3f", r.TotalTime)}
	}
	table(w, []string{"Placement", "Merge (s)", "Total (s)"}, rows)
}
