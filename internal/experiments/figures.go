package experiments

import (
	"fmt"
	"io"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/synth"
)

// Fig6Row is one point of the Figure 6 study: compute time, merge time
// and output size as a function of process count, data size and data
// complexity.
type Fig6Row struct {
	Complexity float64
	PointsSide int
	Procs      int
	Compute    float64
	Merge      float64
	OutputSize int64
}

// Fig6Result is the regenerated Figure 6 (all nine log-log panels).
type Fig6Result struct {
	Rows []Fig6Row
}

// Fig6 reproduces the data size and complexity study (section VI-B):
// sinusoidal fields swept over process count × points per side ×
// features per side, with two rounds of radix-8 merging, as in the
// paper. The expected shapes: compute time scales linearly with process
// count and data size and is independent of complexity; merge time is
// independent of data size and linear in complexity; output size grows
// slowly with process count and is dominated by arc geometry at low
// complexity and by nodes/arcs at high complexity.
func Fig6(cfg Config) (*Fig6Result, error) {
	maxProcs := cfg.MaxProcs
	if maxProcs == 0 {
		maxProcs = 256
	}
	complexities := []float64{2, 8, 32}
	sides := []int{cfg.dim(32), cfg.dim(64), cfg.dim(128)}
	res := &Fig6Result{}
	for _, comp := range complexities {
		for _, side := range sides {
			if float64(side) < 4*comp {
				// Under four samples per feature the sinusoid aliases
				// into noise instead of gaining features; the paper's
				// size/complexity combinations are always resolved.
				continue
			}
			vol := synth.Sinusoid(side+1, comp)
			for _, procs := range pow2Sweep(8, maxProcs) {
				cfg.logf("fig6: c=%g n=%d p=%d\n", comp, side, procs)
				radices := merge.Partial(procs, 2).Radices
				r, err := run(cfg, vol, procs, procs, radices, 0.01)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, Fig6Row{
					Complexity: comp,
					PointsSide: side + 1,
					Procs:      procs,
					Compute:    r.Times.Compute,
					Merge:      r.Times.Merge,
					OutputSize: r.OutputBytes,
				})
			}
		}
	}
	return res, nil
}

// Print renders the sweep as one table per complexity panel.
func (f *Fig6Result) Print(w io.Writer) {
	fmt.Fprintln(w, "Figure 6: compute time, merge time, output size vs procs × size × complexity")
	var rows [][]string
	last := -1.0
	for _, r := range f.Rows {
		if r.Complexity != last {
			if rows != nil {
				table(w, fig6Header, rows)
				rows = nil
			}
			fmt.Fprintf(w, "\n[complexity %g features/side]\n", r.Complexity)
			last = r.Complexity
		}
		rows = append(rows, []string{
			fmt.Sprint(r.PointsSide),
			fmt.Sprint(r.Procs),
			fmt.Sprintf("%.3f", r.Compute),
			fmt.Sprintf("%.3f", r.Merge),
			fmt.Sprint(r.OutputSize),
		})
	}
	if rows != nil {
		table(w, fig6Header, rows)
	}
}

var fig6Header = []string{"Points/side", "Procs", "Compute (s)", "Merge (s)", "Output (bytes)"}

// ScalingRow is one point of a strong-scaling study (Figures 9 and 10).
type ScalingRow struct {
	Procs      int
	Read       float64
	Compute    float64
	Merge      float64
	Write      float64
	Total      float64
	Efficiency float64 // end-to-end, relative to the smallest run
	CMEff      float64 // compute+merge efficiency
}

// ScalingResult is a regenerated strong-scaling figure.
type ScalingResult struct {
	Name string
	Dims grid.Dims
	Rows []ScalingRow
}

// Fig9 reproduces the JET mixture fraction strong-scaling study
// (section VI-D1): full merge with radix-8 whenever possible, process
// counts swept in powers of two. Shapes to reproduce: compute dominates
// at small process counts, merge at large ones; scaling efficiency
// decays as merging grows.
func Fig9(cfg Config) (*ScalingResult, error) {
	maxProcs := cfg.MaxProcs
	if maxProcs == 0 {
		maxProcs = 2048
	}
	// Default extents keep the paper's 768×896×512 aspect ratio at
	// workstation scale; Scale 8 restores the original size.
	dims := grid.Dims{cfg.dim(96), cfg.dim(112), cfg.dim(64)}
	vol := synth.Jet(dims, 20120501)
	res := &ScalingResult{Name: "JET mixture fraction (full merge)", Dims: dims}
	for _, procs := range pow2Sweep(32, maxProcs) {
		cfg.logf("fig9: p=%d\n", procs)
		radices := merge.Full(procs).Radices
		r, err := run(cfg, vol, procs, procs, radices, 0.01)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScalingRow{
			Procs: procs,
			Read:  r.Times.Read, Compute: r.Times.Compute,
			Merge: r.Times.Merge, Write: r.Times.Write, Total: r.Times.Total,
		})
	}
	res.fillEfficiency()
	return res, nil
}

// Fig10 reproduces the Rayleigh-Taylor strong-scaling study (section
// VI-D2): partial merge of two rounds of radix-8, process counts swept
// to the tens of thousands. The paper reports 66% compute+merge and 35%
// end-to-end efficiency at 32,768 processes.
func Fig10(cfg Config) (*ScalingResult, error) {
	maxProcs := cfg.MaxProcs
	if maxProcs == 0 {
		maxProcs = 4096
	}
	// The original grid is 1152³; Scale 12 restores it.
	n := cfg.dim(96)
	dims := grid.Dims{n, n, n}
	vol := synth.RayleighTaylor(dims, 20120502)
	res := &ScalingResult{Name: "Rayleigh-Taylor density (partial merge, 2×radix-8)", Dims: dims}
	for _, procs := range pow2Sweep(128, maxProcs) {
		cfg.logf("fig10: p=%d\n", procs)
		radices := merge.Partial(procs, 2).Radices
		r, err := run(cfg, vol, procs, procs, radices, 0.01)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, ScalingRow{
			Procs: procs,
			Read:  r.Times.Read, Compute: r.Times.Compute,
			Merge: r.Times.Merge, Write: r.Times.Write, Total: r.Times.Total,
		})
	}
	res.fillEfficiency()
	return res, nil
}

func (s *ScalingResult) fillEfficiency() {
	if len(s.Rows) == 0 {
		return
	}
	base := s.Rows[0]
	for i := range s.Rows {
		r := &s.Rows[i]
		factor := float64(r.Procs) / float64(base.Procs)
		if r.Total > 0 {
			r.Efficiency = (base.Total / r.Total) / factor
		}
		cm := r.Compute + r.Merge
		baseCM := base.Compute + base.Merge
		if cm > 0 {
			r.CMEff = (baseCM / cm) / factor
		}
	}
}

// Print renders the scaling study with per-stage columns, as in the
// paper's component-time plots.
func (s *ScalingResult) Print(w io.Writer) {
	fmt.Fprintf(w, "%s, %v grid\n", s.Name, s.Dims)
	rows := make([][]string, len(s.Rows))
	for i, r := range s.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Procs),
			fmt.Sprintf("%.3f", r.Read),
			fmt.Sprintf("%.3f", r.Compute),
			fmt.Sprintf("%.3f", r.Merge),
			fmt.Sprintf("%.3f", r.Write),
			fmt.Sprintf("%.3f", r.Total),
			fmt.Sprintf("%.0f%%", 100*r.Efficiency),
			fmt.Sprintf("%.0f%%", 100*r.CMEff),
		}
	}
	table(w, []string{"Procs", "Read", "Compute", "Merge", "Write", "Total", "Eff", "C+M Eff"}, rows)
}
