package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func gateBaseline() *BenchResult {
	return &BenchResult{
		Dataset: "test",
		Runs: []BenchRun{{
			Procs: 8, Blocks: 8,
			ReadSeconds: 1.0, ComputeSeconds: 2.0, MergeSeconds: 0.5,
			WriteSeconds: 0.25, TotalSeconds: 3.75,
			PeakPayloadBytes: 1000, BytesSent: 5000, BytesRecv: 5000,
			Nodes: [4]int{10, 20, 20, 10}, Arcs: 99,
		}},
	}
}

func TestCompareBenchPasses(t *testing.T) {
	base := gateBaseline()
	fresh := gateBaseline()
	// Faster is always fine; slower within tolerance is fine too.
	fresh.Runs[0].ComputeSeconds = 1.5
	fresh.Runs[0].MergeSeconds = 0.5 * 1.04
	if v := CompareBench(base, fresh, 0.05); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
	// Extra runs in the fresh sweep (a larger machine) are not a failure.
	fresh.Runs = append(fresh.Runs, BenchRun{Procs: 16})
	if v := CompareBench(base, fresh, 0.05); len(v) != 0 {
		t.Errorf("extra fresh run flagged: %v", v)
	}
}

func TestCompareBenchCatchesDrift(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*BenchRun)
		want   string
	}{
		{"bytes_sent", func(r *BenchRun) { r.BytesSent++ }, "bytes_sent drifted"},
		{"peak_payload", func(r *BenchRun) { r.PeakPayloadBytes-- }, "peak_payload_bytes drifted"},
		{"nodes", func(r *BenchRun) { r.Nodes[2]++ }, "nodes drifted"},
		{"arcs", func(r *BenchRun) { r.Arcs++ }, "arcs drifted"},
		{"merge_time", func(r *BenchRun) { r.MergeSeconds *= 1.06 }, "merge_seconds regressed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fresh := gateBaseline()
			tc.mutate(&fresh.Runs[0])
			v := CompareBench(gateBaseline(), fresh, 0.05)
			if len(v) != 1 || !strings.Contains(v[0], tc.want) {
				t.Errorf("violations = %v, want one containing %q", v, tc.want)
			}
		})
	}
	t.Run("missing_run", func(t *testing.T) {
		fresh := gateBaseline()
		fresh.Runs[0].Procs = 16
		v := CompareBench(gateBaseline(), fresh, 0.05)
		if len(v) != 1 || !strings.Contains(v[0], "missing from fresh sweep") {
			t.Errorf("violations = %v, want one missing-run violation", v)
		}
	})
}

func TestWriteBenchDelta(t *testing.T) {
	base := gateBaseline()
	fresh := gateBaseline()
	fresh.Runs[0].ComputeSeconds = 1.0 // -50%
	fresh.Runs[0].MergeSeconds = 0.6   // +20%
	fresh.Runs[0].BytesSent = 6000     // +20%

	var buf bytes.Buffer
	WriteBenchDelta(&buf, base, fresh)
	out := buf.String()
	for _, want := range []string{
		"procs", "metric", "baseline", "fresh", "delta",
		"compute", "2.0000s", "1.0000s", "-50.0%",
		"merge", "0.6000s", "+20.0%",
		"sent B", "6000", "+20.0%",
		"read", "=", // unchanged stage renders as "="
	} {
		if !strings.Contains(out, want) {
			t.Errorf("delta table missing %q:\n%s", want, out)
		}
	}

	// A baseline rank count absent from the fresh sweep is reported, not
	// silently dropped.
	fresh.Runs[0].Procs = 16
	buf.Reset()
	WriteBenchDelta(&buf, base, fresh)
	if !strings.Contains(buf.String(), "run missing from fresh sweep") {
		t.Errorf("missing run not reported:\n%s", buf.String())
	}
}

func TestDeltaPercent(t *testing.T) {
	cases := []struct {
		base, got float64
		want      string
	}{
		{1, 1, "="},
		{0, 0, "="},
		{0, 5, "new"},
		{2, 1, "-50.0%"},
		{2, 3, "+50.0%"},
	}
	for _, tc := range cases {
		if got := deltaPercent(tc.base, tc.got); got != tc.want {
			t.Errorf("deltaPercent(%g, %g) = %q, want %q", tc.base, tc.got, got, tc.want)
		}
	}
}

func TestDecodeBenchJSONRejectsEmpty(t *testing.T) {
	if _, err := DecodeBenchJSON(strings.NewReader(`{"runs":[]}`)); err == nil {
		t.Error("empty snapshot accepted")
	}
	if _, err := DecodeBenchJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed snapshot accepted")
	}
}
