package experiments

import (
	"fmt"
	"io"

	"parms/internal/synth"
)

// TableIRow is one row of Table I: the cost of merging 2048 blocks with
// an increasing number of rounds.
type TableIRow struct {
	Rounds         int
	Radices        []int
	TotalMerge     float64 // seconds, virtual
	FinalRoundTime float64 // seconds, virtual
	OutputBlocks   int
}

// TableIResult is the regenerated Table I.
type TableIResult struct {
	Blocks int
	Rows   []TableIRow
}

// TableI reproduces "Cost of Merging 2048 Blocks": one round of radix-4,
// then adding one radix-8 round at a time up to the full merge
// [4 8 8 8]. The paper's observation: each successive round is more
// expensive than the last, because complexes grow and gravitate toward
// fewer processes.
func TableI(cfg Config) (*TableIResult, error) {
	const blocks = 2048
	n := cfg.dim(96)
	vol := synth.Sinusoid(n+1, 8)
	res := &TableIResult{Blocks: blocks}
	schedules := [][]int{{4}, {4, 8}, {4, 8, 8}, {4, 8, 8, 8}}
	for _, radices := range schedules {
		cfg.logf("table1: %d rounds %v\n", len(radices), radices)
		r, err := run(cfg, vol, blocks, blocks, radices, 0.01)
		if err != nil {
			return nil, err
		}
		row := TableIRow{
			Rounds:       len(radices),
			Radices:      radices,
			TotalMerge:   r.Times.Merge,
			OutputBlocks: r.OutputBlocks,
		}
		if len(r.Rounds) > 0 {
			row.FinalRoundTime = r.Rounds[len(r.Rounds)-1].Seconds
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (t *TableIResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Table I: Cost of Merging %d Blocks\n", t.Blocks)
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Rounds),
			radixString(r.Radices),
			fmt.Sprintf("%.3f", r.TotalMerge),
			fmt.Sprintf("%.3f", r.FinalRoundTime),
		}
	}
	table(w, []string{"Rounds", "Radices", "Total Merge (s)", "Final Round (s)"}, rows)
}

// TableIIRow is one row of Table II: a full-merge strategy for 256
// blocks.
type TableIIRow struct {
	Rounds       int
	Radices      []int
	ComputeMerge float64 // compute + merge seconds, virtual
}

// TableIIResult is the regenerated Table II.
type TableIIResult struct {
	Blocks int
	Rows   []TableIIRow
}

// TableII reproduces "Merge Strategies for Full Merge of 256 Blocks".
// The paper's guideline: fewer rounds with higher radices win, and when
// a smaller radix is unavoidable it belongs in an early round.
func TableII(cfg Config) (*TableIIResult, error) {
	const blocks = 256
	n := cfg.dim(96)
	vol := synth.Sinusoid(n+1, 8)
	res := &TableIIResult{Blocks: blocks}
	strategies := [][]int{
		{4, 8, 8},
		{8, 8, 4},
		{4, 4, 2, 8},
		{4, 4, 4, 4},
		{2, 2, 2, 2, 2, 2, 2, 2},
	}
	for _, radices := range strategies {
		cfg.logf("table2: %v\n", radices)
		r, err := run(cfg, vol, blocks, blocks, radices, 0.01)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, TableIIRow{
			Rounds:       len(radices),
			Radices:      radices,
			ComputeMerge: r.Times.Compute + r.Times.Merge,
		})
	}
	return res, nil
}

// Print renders the table in the paper's layout.
func (t *TableIIResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Table II: Merge Strategies for Full Merge of %d Blocks\n", t.Blocks)
	rows := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		rows[i] = []string{
			fmt.Sprint(r.Rounds),
			radixString(r.Radices),
			fmt.Sprintf("%.3f", r.ComputeMerge),
		}
	}
	table(w, []string{"Rounds", "Radices", "Compute+Merge (s)"}, rows)
}
