package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// DecodeBenchJSON parses a bench sweep snapshot written by
// BenchResult.WriteJSON.
func DecodeBenchJSON(r io.Reader) (*BenchResult, error) {
	var b BenchResult
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: bad bench snapshot: %w", err)
	}
	if len(b.Runs) == 0 {
		return nil, fmt.Errorf("experiments: bench snapshot has no runs")
	}
	return &b, nil
}

// WriteBenchDelta renders a human-readable comparison of two bench
// snapshots: for every rank count present in the baseline, each
// per-stage modeled time, communication volume, and peak merge payload
// as baseline → fresh with the relative change. It reports, it does
// not judge — CompareBench is the gate.
func WriteBenchDelta(w io.Writer, baseline, fresh *BenchResult) {
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "procs\tmetric\tbaseline\tfresh\tdelta\t")
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			fmt.Fprintf(tw, "%d\t(all)\t-\t-\trun missing from fresh sweep\t\n", base.Procs)
			continue
		}
		rows := []struct {
			name      string
			base, got float64
			seconds   bool
		}{
			{"read", base.ReadSeconds, got.ReadSeconds, true},
			{"compute", base.ComputeSeconds, got.ComputeSeconds, true},
			{"merge", base.MergeSeconds, got.MergeSeconds, true},
			{"write", base.WriteSeconds, got.WriteSeconds, true},
			{"total", base.TotalSeconds, got.TotalSeconds, true},
			{"sent B", float64(base.BytesSent), float64(got.BytesSent), false},
			{"recv B", float64(base.BytesRecv), float64(got.BytesRecv), false},
			{"peak payload B", float64(base.PeakPayloadBytes), float64(got.PeakPayloadBytes), false},
		}
		for _, row := range rows {
			format := "%.0f"
			if row.seconds {
				format = "%.4fs"
			}
			fmt.Fprintf(tw, "%d\t%s\t"+format+"\t"+format+"\t%s\t\n",
				base.Procs, row.name, row.base, row.got, deltaPercent(row.base, row.got))
		}
	}
	tw.Flush()
}

// deltaPercent renders the relative change between two values: "=" for
// no change, "new" when something appears against a zero baseline.
func deltaPercent(base, got float64) string {
	switch {
	case base == got:
		return "="
	case base == 0:
		return "new"
	default:
		return fmt.Sprintf("%+.1f%%", 100*(got/base-1))
	}
}

// CompareBench gates a fresh bench sweep against a committed baseline,
// matching runs by rank count. Virtual time is deterministic, so
// communication volume, peak payload and output complex sizes must
// match the baseline exactly — any drift is a behavior change, not
// noise. Modeled per-stage times fail only when they regress by more
// than tol (a fraction; improvements always pass). The result is one
// human-readable violation per failure, empty when the gate passes.
func CompareBench(baseline, fresh *BenchResult, tol float64) []string {
	var violations []string
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("procs=%d: run missing from fresh sweep", base.Procs))
			continue
		}
		exact := []struct {
			name      string
			base, got int64
		}{
			{"blocks", int64(base.Blocks), int64(got.Blocks)},
			{"bytes_sent", base.BytesSent, got.BytesSent},
			{"bytes_recv", base.BytesRecv, got.BytesRecv},
			{"peak_payload_bytes", base.PeakPayloadBytes, got.PeakPayloadBytes},
			{"arcs", int64(base.Arcs), int64(got.Arcs)},
		}
		for _, e := range exact {
			if e.base != e.got {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s drifted %d -> %d (deterministic quantity, exact match required)",
					base.Procs, e.name, e.base, e.got))
			}
		}
		if base.Nodes != got.Nodes {
			violations = append(violations, fmt.Sprintf(
				"procs=%d: nodes drifted %v -> %v (deterministic quantity, exact match required)",
				base.Procs, base.Nodes, got.Nodes))
		}
		stages := []struct {
			name      string
			base, got float64
		}{
			{"read_seconds", base.ReadSeconds, got.ReadSeconds},
			{"compute_seconds", base.ComputeSeconds, got.ComputeSeconds},
			{"merge_seconds", base.MergeSeconds, got.MergeSeconds},
			{"write_seconds", base.WriteSeconds, got.WriteSeconds},
			{"total_seconds", base.TotalSeconds, got.TotalSeconds},
		}
		for _, s := range stages {
			if s.got > s.base*(1+tol) {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
					base.Procs, s.name, s.base, s.got,
					100*(s.got/s.base-1), 100*tol))
			}
		}
	}
	return violations
}
