package experiments

import (
	"encoding/json"
	"fmt"
	"io"
)

// DecodeBenchJSON parses a bench sweep snapshot written by
// BenchResult.WriteJSON.
func DecodeBenchJSON(r io.Reader) (*BenchResult, error) {
	var b BenchResult
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: bad bench snapshot: %w", err)
	}
	if len(b.Runs) == 0 {
		return nil, fmt.Errorf("experiments: bench snapshot has no runs")
	}
	return &b, nil
}

// CompareBench gates a fresh bench sweep against a committed baseline,
// matching runs by rank count. Virtual time is deterministic, so
// communication volume, peak payload and output complex sizes must
// match the baseline exactly — any drift is a behavior change, not
// noise. Modeled per-stage times fail only when they regress by more
// than tol (a fraction; improvements always pass). The result is one
// human-readable violation per failure, empty when the gate passes.
func CompareBench(baseline, fresh *BenchResult, tol float64) []string {
	var violations []string
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("procs=%d: run missing from fresh sweep", base.Procs))
			continue
		}
		exact := []struct {
			name      string
			base, got int64
		}{
			{"blocks", int64(base.Blocks), int64(got.Blocks)},
			{"bytes_sent", base.BytesSent, got.BytesSent},
			{"bytes_recv", base.BytesRecv, got.BytesRecv},
			{"peak_payload_bytes", base.PeakPayloadBytes, got.PeakPayloadBytes},
			{"arcs", int64(base.Arcs), int64(got.Arcs)},
		}
		for _, e := range exact {
			if e.base != e.got {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s drifted %d -> %d (deterministic quantity, exact match required)",
					base.Procs, e.name, e.base, e.got))
			}
		}
		if base.Nodes != got.Nodes {
			violations = append(violations, fmt.Sprintf(
				"procs=%d: nodes drifted %v -> %v (deterministic quantity, exact match required)",
				base.Procs, base.Nodes, got.Nodes))
		}
		stages := []struct {
			name      string
			base, got float64
		}{
			{"read_seconds", base.ReadSeconds, got.ReadSeconds},
			{"compute_seconds", base.ComputeSeconds, got.ComputeSeconds},
			{"merge_seconds", base.MergeSeconds, got.MergeSeconds},
			{"write_seconds", base.WriteSeconds, got.WriteSeconds},
			{"total_seconds", base.TotalSeconds, got.TotalSeconds},
		}
		for _, s := range stages {
			if s.got > s.base*(1+tol) {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
					base.Procs, s.name, s.base, s.got,
					100*(s.got/s.base-1), 100*tol))
			}
		}
	}
	return violations
}
