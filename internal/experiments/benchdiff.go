package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"text/tabwriter"
)

// DecodeBenchJSON parses a bench sweep snapshot written by
// BenchResult.WriteJSON.
func DecodeBenchJSON(r io.Reader) (*BenchResult, error) {
	var b BenchResult
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("experiments: bad bench snapshot: %w", err)
	}
	if len(b.Runs) == 0 {
		return nil, fmt.Errorf("experiments: bench snapshot has no runs")
	}
	return &b, nil
}

// WriteBenchDelta renders a human-readable comparison of two bench
// snapshots: for every rank count present in the baseline, each
// per-stage modeled time, communication volume, and peak merge payload
// as baseline → fresh with the relative change. It reports, it does
// not judge — CompareBench is the gate.
func WriteBenchDelta(w io.Writer, baseline, fresh *BenchResult) {
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintln(tw, "procs\tmetric\tbaseline\tfresh\tdelta\t")
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			fmt.Fprintf(tw, "%d\t(all)\t-\t-\trun missing from fresh sweep\t\n", base.Procs)
			continue
		}
		rows := []struct {
			name      string
			base, got float64
			seconds   bool
		}{
			{"read", base.ReadSeconds, got.ReadSeconds, true},
			{"compute", base.ComputeSeconds, got.ComputeSeconds, true},
			{"merge", base.MergeSeconds, got.MergeSeconds, true},
			{"write", base.WriteSeconds, got.WriteSeconds, true},
			{"total", base.TotalSeconds, got.TotalSeconds, true},
			{"sent B", float64(base.BytesSent), float64(got.BytesSent), false},
			{"recv B", float64(base.BytesRecv), float64(got.BytesRecv), false},
			{"peak payload B", float64(base.PeakPayloadBytes), float64(got.PeakPayloadBytes), false},
		}
		for _, row := range rows {
			format := "%.0f"
			if row.seconds {
				format = "%.4fs"
			}
			fmt.Fprintf(tw, "%d\t%s\t"+format+"\t"+format+"\t%s\t\n",
				base.Procs, row.name, row.base, row.got, deltaPercent(row.base, row.got))
		}
	}
	switch {
	case baseline.TracerOverhead == nil && fresh.TracerOverhead != nil:
		fmt.Fprintf(tw, "tracer\t(all)\t-\t-\tnew (no baseline tracer overhead)\t\n")
	case baseline.TracerOverhead != nil && fresh.TracerOverhead == nil:
		fmt.Fprintf(tw, "tracer\t(all)\t-\t-\ttracer overhead missing from fresh sweep\t\n")
	case baseline.TracerOverhead != nil:
		base, got := baseline.TracerOverhead, fresh.TracerOverhead
		rows := []struct {
			name      string
			base, got float64
			seconds   bool
		}{
			{"flows started", float64(base.FlowsStarted), float64(got.FlowsStarted), false},
			{"flows recorded", float64(base.FlowsRecorded), float64(got.FlowsRecorded), false},
			{"flow bytes", float64(base.FlowBytes), float64(got.FlowBytes), false},
			{"traced total", base.TracedSeconds, got.TracedSeconds, true},
			{"virtual overhead", base.VirtualOverheadSeconds, got.VirtualOverheadSeconds, true},
			{"alloc overhead", base.AllocOverheadFrac, got.AllocOverheadFrac, false},
		}
		for _, row := range rows {
			format := "%.4f"
			if row.seconds {
				format = "%.4fs"
			}
			fmt.Fprintf(tw, "tracer\t%s\t"+format+"\t"+format+"\t%s\t\n",
				row.name, row.base, row.got, deltaPercent(row.base, row.got))
		}
	}
	switch {
	case baseline.ComputeKernel == nil && fresh.ComputeKernel != nil:
		fmt.Fprintf(tw, "kernel\t(all)\t-\t-\tnew (no baseline compute kernel probe)\t\n")
	case baseline.ComputeKernel != nil && fresh.ComputeKernel == nil:
		fmt.Fprintf(tw, "kernel\t(all)\t-\t-\tcompute kernel probe missing from fresh sweep\t\n")
	case baseline.ComputeKernel != nil:
		base, got := baseline.ComputeKernel, fresh.ComputeKernel
		fmt.Fprintf(tw, "kernel\tsweeps\t%d\t%d\t%s\t\n",
			base.Sweeps, got.Sweeps, deltaPercent(float64(base.Sweeps), float64(got.Sweeps)))
		fmt.Fprintf(tw, "kernel\tsweep writes\t%d\t%d\t%s\t\n",
			sumInt64(base.SweepWrites), sumInt64(got.SweepWrites),
			deltaPercent(float64(sumInt64(base.SweepWrites)), float64(sumInt64(got.SweepWrites))))
		gotPW := make(map[int]KernelPoint, len(got.PerWorker))
		for _, p := range got.PerWorker {
			gotPW[p.Workers] = p
		}
		for _, bp := range base.PerWorker {
			gp, ok := gotPW[bp.Workers]
			if !ok {
				fmt.Fprintf(tw, "kernel\tworkers=%d\t%.4fs\t-\tpoint missing from fresh sweep\t\n",
					bp.Workers, bp.ComputeSeconds)
				continue
			}
			fmt.Fprintf(tw, "kernel\tworkers=%d compute\t%.4fs\t%.4fs\t%s\t\n",
				bp.Workers, bp.ComputeSeconds, gp.ComputeSeconds,
				deltaPercent(bp.ComputeSeconds, gp.ComputeSeconds))
			fmt.Fprintf(tw, "kernel\tworkers=%d wall\t%.3fs\t%.3fs\t%s\t\n",
				bp.Workers, bp.WallSeconds, gp.WallSeconds,
				deltaPercent(bp.WallSeconds, gp.WallSeconds))
		}
	}
	switch {
	case baseline.FaultDrill == nil && fresh.FaultDrill != nil:
		fmt.Fprintf(tw, "drill\t(all)\t-\t-\tnew (no baseline fault drill)\t\n")
	case baseline.FaultDrill != nil && fresh.FaultDrill == nil:
		fmt.Fprintf(tw, "drill\t(all)\t-\t-\tfault drill missing from fresh sweep\t\n")
	case baseline.FaultDrill != nil:
		base, got := baseline.FaultDrill, fresh.FaultDrill
		rows := []struct {
			name      string
			base, got float64
			seconds   bool
		}{
			{"migrations", float64(base.Migrations), float64(got.Migrations), false},
			{"timeouts", float64(base.Timeouts), float64(got.Timeouts), false},
			{"timeout wait", base.TimeoutWaitSeconds, got.TimeoutWaitSeconds, true},
			{"spec payload wins", float64(base.SpeculationPayloadWins), float64(got.SpeculationPayloadWins), false},
			{"spec recompute wins", float64(base.SpeculationRecomputeWins), float64(got.SpeculationRecomputeWins), false},
			{"spec cancelled", base.SpeculationCancelledSeconds, got.SpeculationCancelledSeconds, true},
			{"ckpts GCed", float64(base.CheckpointsGCed), float64(got.CheckpointsGCed), false},
			{"GC bytes", float64(base.CheckpointGCBytes), float64(got.CheckpointGCBytes), false},
			{"restores", float64(base.CheckpointRestores), float64(got.CheckpointRestores), false},
			{"recomputes", float64(base.Recomputes), float64(got.Recomputes), false},
			{"merge", base.MergeSeconds, got.MergeSeconds, true},
		}
		for _, row := range rows {
			format := "%.0f"
			if row.seconds {
				format = "%.4fs"
			}
			fmt.Fprintf(tw, "drill\t%s\t"+format+"\t"+format+"\t%s\t\n",
				row.name, row.base, row.got, deltaPercent(row.base, row.got))
		}
	}
	tw.Flush()
}

// deltaPercent renders the relative change between two values: "=" for
// no change, "new" when something appears against a zero baseline.
func deltaPercent(base, got float64) string {
	switch {
	case base == got:
		return "="
	case base == 0:
		return "new"
	default:
		return fmt.Sprintf("%+.1f%%", 100*(got/base-1))
	}
}

// CompareBench gates a fresh bench sweep against a committed baseline,
// matching runs by rank count. Virtual time is deterministic, so
// communication volume, peak payload and output complex sizes must
// match the baseline exactly — any drift is a behavior change, not
// noise. Modeled per-stage times fail only when they regress by more
// than tol (a fraction; improvements always pass). The result is one
// human-readable violation per failure, empty when the gate passes.
func CompareBench(baseline, fresh *BenchResult, tol float64) []string {
	var violations []string
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("procs=%d: run missing from fresh sweep", base.Procs))
			continue
		}
		exact := []struct {
			name      string
			base, got int64
		}{
			{"blocks", int64(base.Blocks), int64(got.Blocks)},
			{"bytes_sent", base.BytesSent, got.BytesSent},
			{"bytes_recv", base.BytesRecv, got.BytesRecv},
			{"peak_payload_bytes", base.PeakPayloadBytes, got.PeakPayloadBytes},
			{"arcs", int64(base.Arcs), int64(got.Arcs)},
		}
		for _, e := range exact {
			if e.base != e.got {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s drifted %d -> %d (deterministic quantity, exact match required)",
					base.Procs, e.name, e.base, e.got))
			}
		}
		if base.Nodes != got.Nodes {
			violations = append(violations, fmt.Sprintf(
				"procs=%d: nodes drifted %v -> %v (deterministic quantity, exact match required)",
				base.Procs, base.Nodes, got.Nodes))
		}
		stages := []struct {
			name      string
			base, got float64
		}{
			{"read_seconds", base.ReadSeconds, got.ReadSeconds},
			{"compute_seconds", base.ComputeSeconds, got.ComputeSeconds},
			{"merge_seconds", base.MergeSeconds, got.MergeSeconds},
			{"write_seconds", base.WriteSeconds, got.WriteSeconds},
			{"total_seconds", base.TotalSeconds, got.TotalSeconds},
		}
		for _, s := range stages {
			if s.got > s.base*(1+tol) {
				violations = append(violations, fmt.Sprintf(
					"procs=%d: %s regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
					base.Procs, s.name, s.base, s.got,
					100*(s.got/s.base-1), 100*tol))
			}
		}
	}
	violations = append(violations, compareFaultDrill(baseline.FaultDrill, fresh.FaultDrill, tol)...)
	violations = append(violations, compareTracerOverhead(baseline.TracerOverhead, fresh.TracerOverhead, tol)...)
	violations = append(violations, compareComputeKernel(baseline.ComputeKernel, fresh.ComputeKernel, tol)...)
	return violations
}

// CompareBenchWall is the wall-clock gate: it judges only the modeled
// compute_seconds of the sweep runs and of the intra-rank kernel probe,
// failing when a fresh value regresses past wallTol over the baseline.
// Improvements always pass and nothing is matched exactly — this gate
// answers "did the PR make compute slower", nothing else. Runs or probe
// points present in the baseline but absent from the fresh sweep still
// fail: a gate cannot pass by measuring less.
func CompareBenchWall(baseline, fresh *BenchResult, wallTol float64) []string {
	var violations []string
	index := make(map[int]BenchRun, len(fresh.Runs))
	for _, r := range fresh.Runs {
		index[r.Procs] = r
	}
	for _, base := range baseline.Runs {
		got, ok := index[base.Procs]
		if !ok {
			violations = append(violations,
				fmt.Sprintf("wall: procs=%d run missing from fresh sweep", base.Procs))
			continue
		}
		if got.ComputeSeconds > base.ComputeSeconds*(1+wallTol) {
			violations = append(violations, fmt.Sprintf(
				"wall: procs=%d compute_seconds regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
				base.Procs, base.ComputeSeconds, got.ComputeSeconds,
				100*(got.ComputeSeconds/base.ComputeSeconds-1), 100*wallTol))
		}
	}
	if baseline.ComputeKernel == nil {
		return violations
	}
	if fresh.ComputeKernel == nil {
		return append(violations, "wall: compute kernel probe missing from fresh sweep")
	}
	gotPW := make(map[int]KernelPoint, len(fresh.ComputeKernel.PerWorker))
	for _, p := range fresh.ComputeKernel.PerWorker {
		gotPW[p.Workers] = p
	}
	for _, bp := range baseline.ComputeKernel.PerWorker {
		gp, ok := gotPW[bp.Workers]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"wall: kernel workers=%d point missing from fresh sweep", bp.Workers))
			continue
		}
		if gp.ComputeSeconds > bp.ComputeSeconds*(1+wallTol) {
			violations = append(violations, fmt.Sprintf(
				"wall: kernel workers=%d compute_seconds regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
				bp.Workers, bp.ComputeSeconds, gp.ComputeSeconds,
				100*(gp.ComputeSeconds/bp.ComputeSeconds-1), 100*wallTol))
		}
	}
	return violations
}

// compareComputeKernel gates the intra-rank kernel probe. The sweep
// count and per-sweep write histogram are deterministic fingerprints of
// the pointer-jumping tracer and must match exactly; the modeled
// per-worker compute seconds carry the regression tolerance, and
// measured wall seconds are report-only (host noise). A fresh probe must
// also be internally consistent: modeled compute time cannot increase
// with more workers. Baselines that predate the probe are skipped.
func compareComputeKernel(base, got *ComputeKernel, tol float64) []string {
	var violations []string
	if got != nil {
		for i := 1; i < len(got.PerWorker); i++ {
			prev, cur := got.PerWorker[i-1], got.PerWorker[i]
			if cur.Workers > prev.Workers && cur.ComputeSeconds > prev.ComputeSeconds {
				violations = append(violations, fmt.Sprintf(
					"kernel: modeled compute_seconds rose from %.4f (workers=%d) to %.4f (workers=%d); kernel portion must scale",
					prev.ComputeSeconds, prev.Workers, cur.ComputeSeconds, cur.Workers))
			}
		}
	}
	if base == nil {
		return violations
	}
	if got == nil {
		return append(violations, "kernel: compute kernel probe missing from fresh sweep")
	}
	if base.Dims != got.Dims {
		violations = append(violations, fmt.Sprintf(
			"kernel: probe dims drifted %v -> %v (probes not comparable)", base.Dims, got.Dims))
		return violations
	}
	if base.Sweeps != got.Sweeps {
		violations = append(violations, fmt.Sprintf(
			"kernel: sweeps drifted %d -> %d (deterministic quantity, exact match required)",
			base.Sweeps, got.Sweeps))
	}
	if fmt.Sprint(base.SweepWrites) != fmt.Sprint(got.SweepWrites) {
		violations = append(violations, fmt.Sprintf(
			"kernel: sweep_writes drifted %v -> %v (deterministic quantity, exact match required)",
			base.SweepWrites, got.SweepWrites))
	}
	gotPW := make(map[int]KernelPoint, len(got.PerWorker))
	for _, p := range got.PerWorker {
		gotPW[p.Workers] = p
	}
	for _, bp := range base.PerWorker {
		gp, ok := gotPW[bp.Workers]
		if !ok {
			violations = append(violations, fmt.Sprintf(
				"kernel: workers=%d point missing from fresh sweep", bp.Workers))
			continue
		}
		if gp.ComputeSeconds > bp.ComputeSeconds*(1+tol) {
			violations = append(violations, fmt.Sprintf(
				"kernel: workers=%d compute_seconds regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
				bp.Workers, bp.ComputeSeconds, gp.ComputeSeconds,
				100*(gp.ComputeSeconds/bp.ComputeSeconds-1), 100*tol))
		}
	}
	return violations
}

// sumInt64 totals a per-sweep histogram for the delta table.
func sumInt64(xs []int64) int64 {
	var s int64
	for _, x := range xs {
		s += x
	}
	return s
}

// maxAllocOverheadFrac is the flow recorder's allocation budget: a
// fresh snapshot recording every message may cost at most this fraction
// of extra host allocations over the count-only run.
const maxAllocOverheadFrac = 0.05

// compareTracerOverhead gates the flow-recorder cost probe. The flow
// counts and payload bytes are deterministic and must match the
// baseline exactly; the traced total carries the stage-time regression
// tolerance. Independently of any baseline, a fresh probe must show
// zero virtual-time overhead (instrumentation never touches the clocks)
// and an allocation overhead under the 5% budget.
func compareTracerOverhead(base, got *TracerOverhead, tol float64) []string {
	var violations []string
	if got != nil {
		if got.VirtualOverheadSeconds != 0 {
			violations = append(violations, fmt.Sprintf(
				"tracer: virtual_overhead_seconds = %g, want exactly 0 (flow recording must not advance virtual clocks)",
				got.VirtualOverheadSeconds))
		}
		if got.AllocOverheadFrac >= maxAllocOverheadFrac {
			violations = append(violations, fmt.Sprintf(
				"tracer: alloc_overhead_frac = %.4f, budget %.2f",
				got.AllocOverheadFrac, maxAllocOverheadFrac))
		}
	}
	if base == nil {
		return violations
	}
	if got == nil {
		return append(violations, "tracer: overhead probe missing from fresh sweep")
	}
	exact := []struct {
		name      string
		base, got int64
	}{
		{"procs", int64(base.Procs), int64(got.Procs)},
		{"flows_started", base.FlowsStarted, got.FlowsStarted},
		{"flows_recorded", int64(base.FlowsRecorded), int64(got.FlowsRecorded)},
		{"flow_bytes", base.FlowBytes, got.FlowBytes},
	}
	for _, e := range exact {
		if e.base != e.got {
			violations = append(violations, fmt.Sprintf(
				"tracer: %s drifted %d -> %d (deterministic quantity, exact match required)",
				e.name, e.base, e.got))
		}
	}
	if got.TracedSeconds > base.TracedSeconds*(1+tol) {
		violations = append(violations, fmt.Sprintf(
			"tracer: traced_seconds regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
			base.TracedSeconds, got.TracedSeconds,
			100*(got.TracedSeconds/base.TracedSeconds-1), 100*tol))
	}
	return violations
}

// compareFaultDrill gates the snapshot's recovery drill. Counters are
// deterministic fingerprints of the recovery machinery (which path won,
// how many files were reclaimed) and must match exactly; the modeled
// seconds carry the same regression tolerance as stage times. Baselines
// that predate the drill are skipped — the gate tightens the first time
// a baseline carrying one is committed.
func compareFaultDrill(base, got *FaultDrill, tol float64) []string {
	if base == nil {
		return nil
	}
	if got == nil {
		return []string{"drill: fault drill missing from fresh sweep"}
	}
	var violations []string
	exact := []struct {
		name      string
		base, got int64
	}{
		{"procs", int64(base.Procs), int64(got.Procs)},
		{"migrations", int64(base.Migrations), int64(got.Migrations)},
		{"timeouts", int64(base.Timeouts), int64(got.Timeouts)},
		{"speculation_payload_wins", int64(base.SpeculationPayloadWins), int64(got.SpeculationPayloadWins)},
		{"speculation_recompute_wins", int64(base.SpeculationRecomputeWins), int64(got.SpeculationRecomputeWins)},
		{"checkpoints_gced", int64(base.CheckpointsGCed), int64(got.CheckpointsGCed)},
		{"checkpoint_gc_bytes", base.CheckpointGCBytes, got.CheckpointGCBytes},
		{"checkpoint_restores", int64(base.CheckpointRestores), int64(got.CheckpointRestores)},
		{"recomputes", int64(base.Recomputes), int64(got.Recomputes)},
	}
	for _, e := range exact {
		if e.base != e.got {
			violations = append(violations, fmt.Sprintf(
				"drill: %s drifted %d -> %d (deterministic quantity, exact match required)",
				e.name, e.base, e.got))
		}
	}
	if fmt.Sprint(base.MigratedBlocks) != fmt.Sprint(got.MigratedBlocks) {
		violations = append(violations, fmt.Sprintf(
			"drill: migrated_blocks drifted %v -> %v (deterministic quantity, exact match required)",
			base.MigratedBlocks, got.MigratedBlocks))
	}
	if base.Nodes != got.Nodes {
		violations = append(violations, fmt.Sprintf(
			"drill: nodes drifted %v -> %v (deterministic quantity, exact match required)",
			base.Nodes, got.Nodes))
	}
	seconds := []struct {
		name      string
		base, got float64
	}{
		{"timeout_wait_seconds", base.TimeoutWaitSeconds, got.TimeoutWaitSeconds},
		{"speculation_cancelled_seconds", base.SpeculationCancelledSeconds, got.SpeculationCancelledSeconds},
		{"merge_seconds", base.MergeSeconds, got.MergeSeconds},
	}
	for _, s := range seconds {
		if s.got > s.base*(1+tol) {
			violations = append(violations, fmt.Sprintf(
				"drill: %s regressed %.4f -> %.4f (+%.1f%%, tolerance %.0f%%)",
				s.name, s.base, s.got, 100*(s.got/s.base-1), 100*tol))
		}
	}
	return violations
}
