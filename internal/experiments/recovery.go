package experiments

import (
	"fmt"
	"io"

	"parms/internal/fault"
	"parms/internal/mpsim"
	"parms/internal/pario"
	"parms/internal/pipeline"
	"parms/internal/synth"
)

// RecoveryRow is one run of the recovery-cost drill: a rank crash at
// the start of merge round Round, recovered either by checkpoint
// restore or by recompute from source data.
type RecoveryRow struct {
	Round          int
	Mode           string // "clean", "checkpoint", "recompute"
	MergeSeconds   float64
	TotalSeconds   float64
	Recomputes     int
	RecomputeCells int64
	Restores       int
	BytesRead      int64
	Fallbacks      int
}

// RecoveryResult is the full drill, rendered as a table.
type RecoveryResult struct {
	Procs int
	Rows  []RecoveryRow
}

// Recovery measures what the checkpoint subsystem buys: a 64-rank
// radix-4 merge with a rank crash injected at the start of each round,
// run with checkpoints every round and with checkpoints off. Without
// checkpoints, recovery recomputes the lost subtree from source data —
// cost grows with the crash round. With checkpoints, any crash after
// round 0 is served by a CRC-verified read of the newest round
// checkpoint, so late-round recovery cost collapses to the payload
// read. The round-0 crash is the control: nothing is checkpointed yet,
// so both modes recompute.
func Recovery(cfg Config) (*RecoveryResult, error) {
	n := cfg.dim(33)
	vol := synth.Sinusoid(n, 4)
	const procs = 64
	radices := []int{4, 4, 4}
	out := &RecoveryResult{Procs: procs}

	run := func(plan *fault.Plan, every int) (*pipeline.Result, error) {
		cluster, err := mpsim.New(mpsim.Config{
			Procs: procs, MaxParallel: cfg.maxParallel(), Faults: plan,
		})
		if err != nil {
			return nil, err
		}
		pario.WriteVolume(cluster.FS(), "volume.raw", vol)
		lo, hi := vol.Range()
		return pipeline.Run(cluster, pipeline.Params{
			File:            "volume.raw",
			Dims:            vol.Dims,
			DType:           vol.DType,
			Blocks:          procs,
			Radices:         radices,
			Persistence:     float32(0.01 * float64(hi-lo)),
			OutFile:         "recovery.msc",
			CheckpointEvery: every,
		})
	}

	cfg.logf("recovery: clean baseline\n")
	clean, err := run(nil, 1)
	if err != nil {
		return nil, err
	}
	out.Rows = append(out.Rows, RecoveryRow{
		Round: -1, Mode: "clean",
		MergeSeconds: clean.Times.Merge, TotalSeconds: clean.Times.Total,
	})

	// The crashing rank owns the block that enters round r as a member
	// of the group rooted at block 0: block stride(r).
	stride := 1
	for round := 0; round < len(radices); round++ {
		for _, every := range []int{1, 0} {
			mode := "checkpoint"
			if every == 0 {
				mode = "recompute"
			}
			cfg.logf("recovery: crash at round %d, %s\n", round, mode)
			plan := fault.NewPlan(int64(40+round)).
				CrashRank(stride, fmt.Sprintf("merge:%d", round))
			res, err := run(plan, every)
			if err != nil {
				return nil, err
			}
			rep := res.FaultReport
			out.Rows = append(out.Rows, RecoveryRow{
				Round:          round,
				Mode:           mode,
				MergeSeconds:   res.Times.Merge,
				TotalSeconds:   res.Times.Total,
				Recomputes:     rep.Recomputes,
				RecomputeCells: rep.RecomputeCells,
				Restores:       rep.CheckpointRestores,
				BytesRead:      rep.CheckpointBytesRead,
				Fallbacks:      rep.CheckpointFallbacks,
			})
		}
		stride *= radices[round]
	}
	return out, nil
}

// Print renders the drill as an aligned table.
func (r *RecoveryResult) Print(w io.Writer) {
	fmt.Fprintf(w, "Recovery-cost drill: %d ranks, radix-4 merge, one rank crash per row\n", r.Procs)
	header := []string{"crash round", "recovery", "merge s", "total s",
		"recomputes", "cells", "restores", "ckpt bytes", "fallbacks"}
	rows := make([][]string, 0, len(r.Rows))
	for _, row := range r.Rows {
		round := "-"
		if row.Round >= 0 {
			round = fmt.Sprint(row.Round)
		}
		rows = append(rows, []string{
			round, row.Mode,
			fmt.Sprintf("%.4f", row.MergeSeconds),
			fmt.Sprintf("%.4f", row.TotalSeconds),
			fmt.Sprint(row.Recomputes),
			fmt.Sprint(row.RecomputeCells),
			fmt.Sprint(row.Restores),
			fmt.Sprint(row.BytesRead),
			fmt.Sprint(row.Fallbacks),
		})
	}
	table(w, header, rows)
}
