package obs_test

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"parms/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// TestServeEndpoints starts the introspection server on an ephemeral
// port, scrapes every endpoint while the observer carries state, and
// shuts it down cleanly — the PR-CI smoke test.
func TestServeEndpoints(t *testing.T) {
	o := obs.New(2)
	o.Rank(0).Span("compute", 0, 1.5, obs.I("id", 0))
	o.Rank(1).Instant("fault:crash", 0.5, obs.S("stage", "compute"))
	o.Metrics.Counter("mpsim_bytes_sent_total").Add(123)

	insight := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprint(w, `{"ok":true}`)
	})
	s, err := obs.Serve("127.0.0.1:0", o, insight)
	if err != nil {
		t.Fatal(err)
	}
	base := "http://" + s.Addr()

	if code, body := get(t, base+"/healthz"); code != 200 || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if code, body := get(t, base+"/metrics"); code != 200 || !strings.Contains(body, "mpsim_bytes_sent_total 123") {
		t.Errorf("/metrics = %d %q", code, body)
	}
	if code, body := get(t, base+"/trace"); code != 200 ||
		!strings.Contains(body, `"name":"compute"`) || !strings.Contains(body, `"name":"fault:crash"`) {
		t.Errorf("/trace = %d %q", code, body)
	}
	if code, body := get(t, base+"/insight"); code != 200 || body != `{"ok":true}` {
		t.Errorf("/insight = %d %q", code, body)
	}
	if code, body := get(t, base+"/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline = %d (empty=%v)", code, body == "")
	}

	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Error("server still reachable after Close")
	}
}

// TestServeNilInsight serves without an insight handler: /insight must
// 404 while everything else works, and a nil *Server must be safe to
// close.
func TestServeNilInsight(t *testing.T) {
	s, err := obs.Serve("127.0.0.1:0", obs.New(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if code, _ := get(t, "http://"+s.Addr()+"/insight"); code != http.StatusNotFound {
		t.Errorf("/insight without handler = %d, want 404", code)
	}
	var nilServer *obs.Server
	if nilServer.Addr() != "" || nilServer.Close() != nil {
		t.Error("nil *Server methods are not no-ops")
	}
}
