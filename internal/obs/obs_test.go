package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"

	"parms/internal/vtime"
)

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("msgs_total")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Add(1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
	g := reg.Gauge("peak_bytes")
	g.SetMax(10)
	g.SetMax(4)
	g.SetMax(17)
	if g.Value() != 17 {
		t.Fatalf("gauge max = %v, want 17", g.Value())
	}
	g2 := reg.Gauge("seconds_total")
	g2.Add(1.5)
	g2.Add(2.5)
	if g2.Value() != 4 {
		t.Fatalf("gauge add = %v, want 4", g2.Value())
	}
	h := reg.Histogram("payload_bytes")
	for _, v := range []int64{0, 1, 2, 3, 4, 1024, -5} {
		h.Observe(v)
	}
	if h.Count() != 7 || h.Sum() != 1034 {
		t.Fatalf("hist count=%d sum=%d", h.Count(), h.Sum())
	}
}

func TestLabel(t *testing.T) {
	if got := Label("merge_bytes_total", "round", "2"); got != `merge_bytes_total{round="2"}` {
		t.Fatalf("Label = %s", got)
	}
	if got := Label("plain"); got != "plain" {
		t.Fatalf("Label = %s", got)
	}
}

// fill records a small deterministic two-rank trace.
func fill(tr *Tracer) {
	r0 := tr.Rank(0)
	r0.Span("read", 0, 1.5, I("bytes", 4096))
	r0.Span("compute", 1.5, 3, I("block", 0))
	r0.Instant("fault:crash", 2, S("stage", "compute"))
	r1 := tr.Rank(1)
	r1.Span("read", 0, 1, I("bytes", 2048))
	r1.Span("compute", 1, 4, I("block", 1))
}

func TestChromeTraceWellFormedAndDeterministic(t *testing.T) {
	tr := NewTracer(2)
	fill(tr)
	var a, b bytes.Buffer
	if err := tr.WriteChromeTrace(&a); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteChromeTrace(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same tracer differ")
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	// 1 process_name + 2 thread_name + 4 spans + 1 instant.
	if len(doc.TraceEvents) != 8 {
		t.Fatalf("got %d events, want 8", len(doc.TraceEvents))
	}
	lastTs := map[float64]float64{}
	for _, ev := range doc.TraceEvents {
		ph := ev["ph"].(string)
		if ph == "M" {
			continue
		}
		tid := ev["tid"].(float64)
		ts := ev["ts"].(float64)
		if ts < lastTs[tid] {
			t.Fatalf("track %v not monotonic: %v after %v", tid, ts, lastTs[tid])
		}
		lastTs[tid] = ts
		if ph == "X" && ev["dur"].(float64) < 0 {
			t.Fatal("negative span duration")
		}
	}
}

func TestPrometheusDump(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msgs_total").Add(3)
	reg.Counter(Label("round_bytes_total", "round", "0")).Add(100)
	reg.Gauge("peak").SetMax(2.5)
	reg.Histogram("sizes").Observe(3)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE msgs_total counter",
		"msgs_total 3",
		`round_bytes_total{round="0"} 100`,
		"peak 2.5",
		"# TYPE sizes histogram",
		`sizes_bucket{le="4"} 1`,
		`sizes_bucket{le="+Inf"} 1`,
		"sizes_sum 3",
		"sizes_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump missing %q:\n%s", want, out)
		}
	}
	var again bytes.Buffer
	reg.WritePrometheus(&again)
	if out != again.String() {
		t.Fatal("two dumps of the same registry differ")
	}
}

func TestStageStats(t *testing.T) {
	tr := NewTracer(4)
	for id := 0; id < 4; id++ {
		end := 1.0 + float64(id) // durations 1, 2, 3, 4
		tr.Rank(id).Span("compute", 0, vtime.Time(end))
	}
	stats := tr.StageStats("compute", "absent")
	if len(stats) != 2 {
		t.Fatalf("got %d stats", len(stats))
	}
	c := stats[0]
	if c.Count != 4 || c.Max != 4 || c.Mean != 2.5 || c.MaxEnd != 4 {
		t.Fatalf("compute stat %+v", c)
	}
	if c.Imbalance != 4/2.5 {
		t.Fatalf("imbalance = %v", c.Imbalance)
	}
	if c.P50 != 2 || c.P95 != 4 {
		t.Fatalf("p50=%v p95=%v", c.P50, c.P95)
	}
	if stats[1].Count != 0 {
		t.Fatalf("absent stage has count %d", stats[1].Count)
	}
	var buf bytes.Buffer
	WriteStageStats(&buf, stats)
	if !strings.Contains(buf.String(), "compute") || !strings.Contains(buf.String(), "absent") {
		t.Fatalf("summary table:\n%s", buf.String())
	}
}

func TestStageStatsDiscoversNamesInStartOrder(t *testing.T) {
	tr := NewTracer(1)
	tr.Rank(0).Span("b", 1, 2)
	tr.Rank(0).Span("a", 0, 1)
	stats := tr.StageStats()
	if len(stats) != 2 || stats[0].Name != "a" || stats[1].Name != "b" {
		t.Fatalf("order: %+v", stats)
	}
}
