package obs

import (
	"bufio"
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"

	"parms/internal/vtime"
)

// Flow kinds. A flow's kind names the mechanism that moved the data:
// ordinary point-to-point traffic, collective-tag traffic (the modeled
// reliable tree network), a speculative recompute adopted in place of a
// late payload, or a migrated block restored from a dead owner's
// checkpoints.
const (
	FlowP2P              = "p2p"
	FlowCollective       = "collective"
	FlowSpeculativeAdopt = "speculative-adopt"
	FlowMigratedRestore  = "migrated-restore"
)

// Flow is one causal message record: who sent what to whom, when it was
// injected, when it arrived, and when the receiver actually consumed it
// — the message-granularity layer the per-rank span tracks cannot
// express (DESIGN §14). All timestamps are virtual.
type Flow struct {
	// Seq orders flows within one emitter's stream; (Emitter, Seq) is
	// the flow's identity.
	Seq     int64 `json:"seq"`
	Emitter int   `json:"emitter"`
	// Src and Dst are the logical endpoints. Src == Emitter for real
	// sends; synthetic flows (speculative-adopt, migrated-restore) are
	// emitted by the consuming rank with Src naming where the data
	// logically came from.
	Src   int    `json:"src"`
	Dst   int    `json:"dst"`
	Tag   int    `json:"tag"`
	Bytes int    `json:"bytes"`
	Kind  string `json:"kind"`
	// SendVT is the sender's clock at injection (after the send
	// overhead); ArriveVT the modeled arrival at the destination
	// mailbox, fault delays included.
	SendVT   vtime.Time `json:"send"`
	ArriveVT vtime.Time `json:"arrive"`
	// RecvStartVT is the receiver's clock when it began the matching
	// receive; RecvVT its clock when the receive completed (arrival +
	// receive overhead). Valid only when Done.
	RecvStartVT vtime.Time `json:"recv_start"`
	RecvVT      vtime.Time `json:"recv"`
	// Done marks a consumed message. A flow left open at end of run is
	// an orphan: a dropped duplicate delivery, or a speculation's late
	// payload that lost the race and stays in the mailbox forever.
	Done bool `json:"done"`
}

// WaitSeconds is the virtual time the receiver spent blocked on this
// message: the gap between starting the receive and the payload's
// arrival. Zero for messages that were already buffered (and for
// synthetic and incomplete flows).
func (f Flow) WaitSeconds() float64 {
	if !f.Done {
		return 0
	}
	w := float64(f.ArriveVT - f.RecvStartVT)
	if w < 0 {
		return 0
	}
	return w
}

// FlowID is the opaque handle Begin returns so the receive side can
// complete the record. The zero FlowID is inert: Complete on it is a
// no-op, which is how sampled-out and disabled flows cost nothing.
type FlowID struct {
	emitter int32
	index   int32 // stream position + 1; 0 = none
}

// flowStream is one emitter's flow list. Appends happen only from that
// rank's goroutine, so stream order is deterministic; the mutex exists
// for the receive-side completion writes and for mid-run snapshot
// readers (the live /flows endpoint).
type flowStream struct {
	mu    sync.Mutex
	seq   int64
	flows []Flow
}

// FlowRecorder captures per-message causal flow records for a cluster
// run, one stream per emitting rank. Determinism: every stream is
// appended only by its own rank's goroutine and Flows() concatenates
// streams in rank order, so same-seed runs produce byte-identical
// snapshots no matter how the host scheduled the goroutines. All
// methods are nil-safe no-ops, like the rest of the package.
type FlowRecorder struct {
	streams []flowStream
	sample  atomic.Int64
}

// NewFlowRecorder creates a recorder for procs emitting ranks.
func NewFlowRecorder(procs int) *FlowRecorder {
	if procs < 0 {
		procs = 0
	}
	return &FlowRecorder{streams: make([]flowStream, procs)}
}

// Procs returns the number of emitter streams, 0 on nil.
func (fr *FlowRecorder) Procs() int {
	if fr == nil {
		return 0
	}
	return len(fr.streams)
}

// SetSample sets the per-emitter sampling stride: n <= 1 records every
// flow (the default), n > 1 keeps one in n sends per emitter (sequence
// numbers still advance for every send, so counts derived from Started
// stay exact), and n < 0 records nothing while still counting. Set it
// before the run starts; synthetic Emit flows are always kept (they are
// rare and carry recovery semantics) unless n < 0.
func (fr *FlowRecorder) SetSample(n int) {
	if fr != nil {
		fr.sample.Store(int64(n))
	}
}

// Sample returns the current sampling stride (0 or 1 = record all).
func (fr *FlowRecorder) Sample() int {
	if fr == nil {
		return 0
	}
	return int(fr.sample.Load())
}

// Begin records the send side of a message flow and returns the handle
// the receive side completes. Must be called from the emitting rank's
// goroutine (stream order is the determinism contract).
func (fr *FlowRecorder) Begin(emitter, src, dst, tag, bytes int, kind string, send, arrive vtime.Time) FlowID {
	if fr == nil || emitter < 0 || emitter >= len(fr.streams) {
		return FlowID{}
	}
	st := &fr.streams[emitter]
	st.mu.Lock()
	defer st.mu.Unlock()
	seq := st.seq
	st.seq++
	n := fr.sample.Load()
	if n < 0 || (n > 1 && seq%n != 0) {
		return FlowID{}
	}
	st.flows = append(st.flows, Flow{
		Seq: seq, Emitter: emitter, Src: src, Dst: dst, Tag: tag,
		Bytes: bytes, Kind: kind, SendVT: send, ArriveVT: arrive,
	})
	return FlowID{emitter: int32(emitter), index: int32(len(st.flows))}
}

// Complete finishes a flow from the receive side: the receiver's clock
// entering the receive and after it. Values written here are pure
// virtual times, so which goroutine calls it does not affect the
// recorded bytes. Inert on the zero FlowID and on duplicates.
func (fr *FlowRecorder) Complete(id FlowID, recvStart, recv vtime.Time) {
	if fr == nil || id.index == 0 {
		return
	}
	e := int(id.emitter)
	if e < 0 || e >= len(fr.streams) {
		return
	}
	st := &fr.streams[e]
	st.mu.Lock()
	defer st.mu.Unlock()
	i := int(id.index) - 1
	if i >= len(st.flows) || st.flows[i].Done {
		return
	}
	f := &st.flows[i]
	f.RecvStartVT = recvStart
	f.RecvVT = recv
	if f.RecvVT < f.SendVT {
		f.RecvVT = f.SendVT
	}
	f.Done = true
}

// Emit records a synthetic, already-complete flow: data that reached
// its consumer outside Send/Recv (a speculative recompute adopted onto
// the rank, a migrated block restored from checkpoints). Must be called
// from the emitting rank's goroutine, like Begin.
func (fr *FlowRecorder) Emit(emitter, src, dst, tag, bytes int, kind string, send, recv vtime.Time) {
	if fr == nil || emitter < 0 || emitter >= len(fr.streams) || fr.sample.Load() < 0 {
		return
	}
	if recv < send {
		recv = send
	}
	st := &fr.streams[emitter]
	st.mu.Lock()
	st.flows = append(st.flows, Flow{
		Seq: st.seq, Emitter: emitter, Src: src, Dst: dst, Tag: tag,
		Bytes: bytes, Kind: kind, SendVT: send, ArriveVT: recv,
		RecvStartVT: recv, RecvVT: recv, Done: true,
	})
	st.seq++
	st.mu.Unlock()
}

// Flows snapshots every recorded flow, ordered by (emitter, seq). Safe
// to call mid-run: each stream is copied under its lock, so the result
// is a consistent prefix per emitter.
func (fr *FlowRecorder) Flows() []Flow {
	if fr == nil {
		return nil
	}
	var out []Flow
	for e := range fr.streams {
		st := &fr.streams[e]
		st.mu.Lock()
		out = append(out, st.flows...)
		st.mu.Unlock()
	}
	return out
}

// Started returns the total number of sends sequenced across all
// emitters — exact even under sampling, which skips recording but
// never skips the sequence counter.
func (fr *FlowRecorder) Started() int64 {
	if fr == nil {
		return 0
	}
	var n int64
	for e := range fr.streams {
		st := &fr.streams[e]
		st.mu.Lock()
		n += st.seq
		st.mu.Unlock()
	}
	return n
}

// WriteFlowsJSON dumps the recorded flows as one JSON document,
// byte-for-byte deterministic for a given recorder state: flows ascend
// by (emitter, seq), one per line.
func (fr *FlowRecorder) WriteFlowsJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"procs":`)
	bw.WriteString(strconv.Itoa(fr.Procs()))
	bw.WriteString(`,"sample":`)
	bw.WriteString(strconv.Itoa(fr.Sample()))
	bw.WriteString(`,"started":`)
	bw.WriteString(strconv.FormatInt(fr.Started(), 10))
	bw.WriteString(`,"flows":[`)
	for i, f := range fr.Flows() {
		if i > 0 {
			bw.WriteByte(',')
		}
		bw.WriteString("\n")
		b, err := json.Marshal(f)
		if err != nil {
			return err
		}
		bw.Write(b)
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}
