package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestFlowRecorderRoundTrip(t *testing.T) {
	fr := NewFlowRecorder(4)
	id := fr.Begin(0, 0, 1, 7, 128, FlowP2P, 1.0, 1.5)
	if id == (FlowID{}) {
		t.Fatal("Begin returned the zero id with sampling off")
	}
	fr.Complete(id, 1.25, 1.75)
	fr.Complete(id, 9.0, 9.0) // duplicate completion must not overwrite
	fr.Emit(2, 3, 2, 0, 0, FlowSpeculativeAdopt, 2.0, 2.5)

	flows := fr.Flows()
	if len(flows) != 2 {
		t.Fatalf("Flows() = %d records, want 2", len(flows))
	}
	f := flows[0]
	if !f.Done || f.Src != 0 || f.Dst != 1 || f.Tag != 7 || f.Bytes != 128 || f.Kind != FlowP2P {
		t.Errorf("flow header mismatch: %+v", f)
	}
	if f.SendVT != 1.0 || f.ArriveVT != 1.5 || f.RecvStartVT != 1.25 || f.RecvVT != 1.75 {
		t.Errorf("flow times mismatch: %+v", f)
	}
	if w := f.WaitSeconds(); w != 0.25 {
		t.Errorf("WaitSeconds = %g, want 0.25 (arrive - recv start)", w)
	}
	s := flows[1]
	if !s.Done || s.Kind != FlowSpeculativeAdopt || s.Src != 3 || s.Dst != 2 {
		t.Errorf("synthetic flow mismatch: %+v", s)
	}
	if s.WaitSeconds() != 0 {
		t.Errorf("synthetic flow has nonzero wait: %+v", s)
	}
	if fr.Started() != 2 {
		t.Errorf("Started = %d, want 2", fr.Started())
	}

	// A receive completing "before" the send clamps up, never backwards.
	id = fr.Begin(1, 1, 0, 0, 1, FlowP2P, 5.0, 5.0)
	fr.Complete(id, 4.0, 4.5)
	for _, f := range fr.Flows() {
		if f.Done && f.RecvVT < f.SendVT {
			t.Errorf("recv %v before send %v", f.RecvVT, f.SendVT)
		}
	}
}

func TestFlowRecorderSampling(t *testing.T) {
	fr := NewFlowRecorder(2)
	fr.SetSample(3)
	kept := 0
	for i := 0; i < 10; i++ {
		id := fr.Begin(0, 0, 1, 0, 8, FlowP2P, 0, 0)
		if id != (FlowID{}) {
			kept++
			fr.Complete(id, 0, 0)
		}
	}
	// Sequences 0, 3, 6, 9 pass a stride of 3.
	if kept != 4 || len(fr.Flows()) != 4 {
		t.Errorf("stride 3 kept %d recorded %d, want 4", kept, len(fr.Flows()))
	}
	if fr.Started() != 10 {
		t.Errorf("Started = %d under sampling, want 10 (counts stay exact)", fr.Started())
	}
	// Synthetic flows bypass the stride: they are rare and carry
	// recovery semantics.
	fr.Emit(1, 0, 1, 0, 0, FlowMigratedRestore, 1, 2)
	if len(fr.Flows()) != 5 {
		t.Errorf("Emit sampled away under stride %d", fr.Sample())
	}

	// Negative stride: count-only mode records nothing, Emit included.
	fr = NewFlowRecorder(2)
	fr.SetSample(-1)
	for i := 0; i < 5; i++ {
		fr.Begin(0, 0, 1, 0, 8, FlowP2P, 0, 0)
	}
	fr.Emit(1, 0, 1, 0, 0, FlowMigratedRestore, 1, 2)
	if len(fr.Flows()) != 0 {
		t.Errorf("count-only mode recorded %d flows", len(fr.Flows()))
	}
	if fr.Started() != 5 {
		t.Errorf("count-only Started = %d, want 5", fr.Started())
	}
}

func TestWriteFlowsJSONDeterministic(t *testing.T) {
	build := func() *FlowRecorder {
		fr := NewFlowRecorder(3)
		id := fr.Begin(0, 0, 2, 4, 64, FlowP2P, 0.5, 0.625)
		fr.Complete(id, 0.5, 0.75)
		fr.Begin(1, 1, 0, 9, 32, FlowCollective, 1.0, 1.25) // left orphan
		fr.Emit(2, 0, 2, 0, 16, FlowMigratedRestore, 2.0, 2.5)
		return fr
	}
	var a, b bytes.Buffer
	if err := build().WriteFlowsJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WriteFlowsJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("equal recorders produced different JSON")
	}
	var doc struct {
		Procs   int    `json:"procs"`
		Sample  int    `json:"sample"`
		Started int64  `json:"started"`
		Flows   []Flow `json:"flows"`
	}
	if err := json.Unmarshal(a.Bytes(), &doc); err != nil {
		t.Fatalf("WriteFlowsJSON emitted invalid JSON: %v\n%s", err, a.String())
	}
	if doc.Procs != 3 || doc.Started != 3 || len(doc.Flows) != 3 {
		t.Errorf("parsed procs=%d started=%d flows=%d, want 3/3/3",
			doc.Procs, doc.Started, len(doc.Flows))
	}
}

func TestBuildTimeline(t *testing.T) {
	spans := [][]Span{{{Name: "compute", Start: 0, End: 8}}}
	flows := []Flow{
		// Consumed: sent at 1.5, arrives 4.5, receiver blocked 2.5→4.5.
		{Seq: 0, Emitter: 0, Src: 0, Dst: 1, Bytes: 100, Kind: FlowP2P,
			SendVT: 1.5, ArriveVT: 4.5, RecvStartVT: 2.5, RecvVT: 4.75, Done: true},
		// Orphan: in flight from send to end of run.
		{Seq: 1, Emitter: 0, Src: 0, Dst: 1, Bytes: 40, Kind: FlowP2P,
			SendVT: 6.5, ArriveVT: 7.0},
	}
	tl := BuildTimeline(spans, flows, 8)
	if len(tl) != 8 {
		t.Fatalf("got %d buckets, want 8", len(tl))
	}
	if tl[0].Start != 0 || tl[7].End != 8 {
		t.Errorf("timeline range [%g, %g], want [0, 8]", tl[0].Start, tl[7].End)
	}
	for i, b := range tl {
		if b.ActiveSpans != 1 {
			t.Errorf("bucket %d ActiveSpans = %d, want 1 (span tiles the run)", i, b.ActiveSpans)
		}
	}
	if tl[1].MsgsSent != 1 || tl[1].BytesSent != 100 || tl[6].MsgsSent != 1 || tl[6].BytesSent != 40 {
		t.Errorf("send binning wrong: %+v", tl)
	}
	if tl[4].MsgsRecv != 1 || tl[4].BytesRecv != 100 {
		t.Errorf("recv binning wrong: bucket 4 = %+v", tl[4])
	}
	for i, want := range []int64{0, 0, 100, 100, 100, 0, 0, 40} {
		if tl[i].BytesInFlight != want {
			t.Errorf("bucket %d BytesInFlight = %d, want %d", i, tl[i].BytesInFlight, want)
		}
	}
	// Wait 2.5→4.5 overlaps buckets 2, 3, 4 as 0.5 + 1.0 + 0.5.
	for i, want := range []float64{0, 0, 0.5, 1.0, 0.5, 0, 0, 0} {
		if diff := tl[i].WaitSeconds - want; diff > 1e-12 || diff < -1e-12 {
			t.Errorf("bucket %d WaitSeconds = %g, want %g", i, tl[i].WaitSeconds, want)
		}
	}

	if BuildTimeline(nil, nil, 4) != nil {
		t.Error("empty inputs must yield a nil timeline")
	}
}
