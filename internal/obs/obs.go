// Package obs is the observability layer of the virtual cluster: a span
// tracer keyed to virtual time (package vtime) and a metrics registry,
// with exporters for the Chrome trace-event format (loadable in
// Perfetto), a Prometheus-style text dump, and a per-stage summary
// table.
//
// The paper's entire evaluation is a stage-time decomposition — read,
// compute, merge, write, max over ranks — but a single max per stage
// cannot say *why* a stage is slow: which rank straggled, which merge
// round dominated, how payloads grew per round, or where fault recovery
// spent its recompute budget. The tracer records one track per rank
// whose spans tile the rank's virtual timeline exactly, so a Perfetto
// view of a run reads like a trace of the same program executed on the
// modeled machine.
//
// Everything is nil-safe by design: a nil *Observer, *Tracer,
// *RankTracer, *Registry, *Counter, *Gauge or *Histogram accepts every
// call as a no-op, so the fault-free fast path with observability
// disabled pays one nil check per hook and allocates nothing.
package obs

import (
	"fmt"
	"io"
	"log/slog"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"parms/internal/vtime"
)

// Observer bundles the tracer and metrics registry attached to one
// cluster run. A nil Observer disables all instrumentation.
type Observer struct {
	Trace   *Tracer
	Metrics *Registry
	// Log, when non-nil, receives structured run events (fault instants,
	// checkpoint writes, recovery decisions) correlated to virtual time
	// through a "vt" attribute, so log lines can be joined against
	// spans. Use NewJSONLogger for a deterministic JSON stream.
	Log *slog.Logger
}

// New creates an Observer with both tracing and metrics enabled for a
// cluster of procs ranks.
func New(procs int) *Observer {
	return &Observer{Trace: NewTracer(procs), Metrics: NewRegistry()}
}

// Rank returns the per-rank tracer handle, nil when o or its tracer is
// nil (every method of a nil *RankTracer is a no-op).
func (o *Observer) Rank(id int) *RankTracer {
	if o == nil {
		return nil
	}
	return o.Trace.Rank(id)
}

// Registry returns the metrics registry, nil when o is nil.
func (o *Observer) Registry() *Registry {
	if o == nil {
		return nil
	}
	return o.Metrics
}

// Tracer returns the trace store, nil-safe like Registry.
func (o *Observer) Tracer() *Tracer {
	if o == nil {
		return nil
	}
	return o.Trace
}

// FlowRecorder returns the per-message causal flow recorder hanging
// off the tracer, nil when o (or its tracer) is nil. All methods of a
// nil *FlowRecorder are no-ops, so the substrate instruments sends and
// receives unconditionally.
func (o *Observer) FlowRecorder() *FlowRecorder {
	if o == nil {
		return nil
	}
	return o.Trace.Flows()
}

// Logger returns the structured event logger, nil when o is nil or no
// logger is attached. Callers must nil-check the result before logging
// (a nil *slog.Logger is not callable).
func (o *Observer) Logger() *slog.Logger {
	if o == nil {
		return nil
	}
	return o.Log
}

// NewJSONLogger returns a slog logger writing one JSON object per event
// to w, with the wall-clock time attribute dropped so same-seed runs
// produce byte-identical event streams. Events carry virtual time as an
// explicit "vt" attribute instead.
func NewJSONLogger(w io.Writer) *slog.Logger {
	return slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{
		ReplaceAttr: func(groups []string, a slog.Attr) slog.Attr {
			if len(groups) == 0 && a.Key == slog.TimeKey {
				return slog.Attr{}
			}
			return a
		},
	}))
}

// Attr is one typed span or instant attribute. Attributes are an
// ordered list, not a map, so exports are byte-for-byte deterministic.
type Attr struct {
	Key  string
	kind byte // 'i', 'f' or 's'
	i    int64
	f    float64
	s    string
}

// I makes an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, kind: 'i', i: v} }

// F makes a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, kind: 'f', f: v} }

// S makes a string attribute.
func S(key, v string) Attr { return Attr{Key: key, kind: 's', s: v} }

// Int returns the integer value of an I attribute (0 otherwise).
func (a Attr) Int() int64 { return a.i }

// Float returns the float value of an F attribute (0 otherwise).
func (a Attr) Float() float64 { return a.f }

// Str returns the string value of an S attribute ("" otherwise).
func (a Attr) Str() string { return a.s }

// Span is one named interval on a rank's virtual timeline.
type Span struct {
	Name       string
	Start, End vtime.Time
	Attrs      []Attr
}

// Duration returns the span length in virtual seconds.
func (s Span) Duration() float64 { return float64(s.End - s.Start) }

// Attr returns the named attribute and whether it is present.
func (s Span) Attr(key string) (Attr, bool) { return findAttr(s.Attrs, key) }

// Instant is one point event on a rank's virtual timeline (a fault, a
// retry, a recovery decision).
type Instant struct {
	Name  string
	Ts    vtime.Time
	Attrs []Attr
}

// Attr returns the named attribute and whether it is present.
func (i Instant) Attr(key string) (Attr, bool) { return findAttr(i.Attrs, key) }

func findAttr(attrs []Attr, key string) (Attr, bool) {
	for _, a := range attrs {
		if a.Key == key {
			return a, true
		}
	}
	return Attr{}, false
}

// RankTracer records the spans and instants of one rank. Only the
// rank's goroutine records (so record order stays deterministic), but
// the record path takes a short mutex so concurrent readers — the live
// introspection server's /trace and /insight endpoints — can snapshot a
// consistent prefix mid-run.
type RankTracer struct {
	id       int
	mu       sync.Mutex
	spans    []Span
	instants []Instant
}

// Span records a completed interval. Calls on a nil tracer are no-ops.
func (t *RankTracer) Span(name string, start, end vtime.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	if end < start {
		end = start
	}
	t.mu.Lock()
	t.spans = append(t.spans, Span{Name: name, Start: start, End: end, Attrs: attrs})
	t.mu.Unlock()
}

// Instant records a point event. Calls on a nil tracer are no-ops.
func (t *RankTracer) Instant(name string, ts vtime.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.instants = append(t.instants, Instant{Name: name, Ts: ts, Attrs: attrs})
	t.mu.Unlock()
}

// OpenSpan is a span opened with Begin and awaiting its End. The zero
// OpenSpan (and any OpenSpan from a nil tracer) ends as a no-op.
//
// Every Begin must be matched by exactly one End on every path through
// the function — a span left open corrupts the timeline-tiling
// invariant. The msvet spanbalance analyzer enforces this.
type OpenSpan struct {
	t     *RankTracer
	name  string
	start vtime.Time
}

// Begin opens a span at start; the returned handle records it when End
// is called. On a nil tracer the handle is inert.
func (t *RankTracer) Begin(name string, start vtime.Time) OpenSpan {
	if t == nil {
		return OpenSpan{}
	}
	return OpenSpan{t: t, name: name, start: start}
}

// End records the opened span, closing it at end.
func (s OpenSpan) End(end vtime.Time, attrs ...Attr) {
	s.t.Span(s.name, s.start, end, attrs...)
}

// Enabled reports whether this handle records anything, so callers can
// skip attribute computation entirely on the fast path.
func (t *RankTracer) Enabled() bool { return t != nil }

// Tracer holds one track per rank, plus the run's message-flow
// recorder (DESIGN §14) so every consumer of a Tracer — the Chrome
// exporter, the live server, the analyzers — sees spans and flows as
// one coherent snapshot.
type Tracer struct {
	ranks []*RankTracer
	flows *FlowRecorder
}

// NewTracer creates a tracer for procs ranks.
func NewTracer(procs int) *Tracer {
	t := &Tracer{ranks: make([]*RankTracer, procs), flows: NewFlowRecorder(procs)}
	for i := range t.ranks {
		t.ranks[i] = &RankTracer{id: i}
	}
	return t
}

// Flows returns the tracer's flow recorder, nil when t is nil (every
// method of a nil *FlowRecorder is a no-op).
func (t *Tracer) Flows() *FlowRecorder {
	if t == nil {
		return nil
	}
	return t.flows
}

// Procs returns the number of tracks. Zero on a nil tracer.
func (t *Tracer) Procs() int {
	if t == nil {
		return 0
	}
	return len(t.ranks)
}

// Rank returns the track handle for one rank, nil when t is nil.
func (t *Tracer) Rank(id int) *RankTracer {
	if t == nil || id < 0 || id >= len(t.ranks) {
		return nil
	}
	return t.ranks[id]
}

// Spans returns a copy of rank id's recorded spans in record order.
// Safe to call while the run is still recording: the copy is a
// consistent prefix of the rank's timeline.
func (t *Tracer) Spans(id int) []Span {
	if rt := t.Rank(id); rt != nil {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return append([]Span(nil), rt.spans...)
	}
	return nil
}

// Instants returns a copy of rank id's recorded instants in record
// order. Safe to call mid-run, like Spans.
func (t *Tracer) Instants(id int) []Instant {
	if rt := t.Rank(id); rt != nil {
		rt.mu.Lock()
		defer rt.mu.Unlock()
		return append([]Instant(nil), rt.instants...)
	}
	return nil
}

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter. No-op (and allocation-free) on nil.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Value returns the current count, 0 on nil.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float64 supporting set, add and running-max
// updates.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v. No-op on nil.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Add atomically adds d. No-op on nil.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v is larger. No-op on nil.
func (g *Gauge) SetMax(v float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value, 0 on nil.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// histBuckets is the number of power-of-two histogram buckets; bucket i
// counts observations v with v <= 1<<i, the last bucket is +Inf.
const histBuckets = 63

// Histogram is a fixed power-of-two-bucketed histogram of non-negative
// integer observations (payload sizes, path lengths, gather counts).
type Histogram struct {
	buckets [histBuckets + 1]atomic.Int64
	sum     atomic.Int64
	count   atomic.Int64
}

// Observe records one value. Negative values count as zero. No-op on
// nil.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	if v < 0 {
		v = 0
	}
	idx := 0
	if v > 1 {
		idx = bits.Len64(uint64(v))
		if v&(v-1) == 0 {
			idx--
		}
		if idx > histBuckets {
			idx = histBuckets
		}
	}
	h.buckets[idx].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations, 0 on nil.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations, 0 on nil.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Quantile estimates the q-quantile from the power-of-two buckets: it
// returns the smallest bucket boundary b (a power of two) such that at
// least ceil(q·count) observations are <= b — an upper bound within a
// factor of two of the true quantile. It returns 0 with no
// observations, and math.MaxInt64 when the quantile falls in the +Inf
// bucket. q is clamped to [0, 1]; nil-safe.
func (h *Histogram) Quantile(q float64) int64 {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	need := int64(math.Ceil(q * float64(total)))
	if need < 1 {
		need = 1
	}
	cum := int64(0)
	for i := 0; i < histBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= need {
			return 1 << i
		}
	}
	return math.MaxInt64
}

// Registry is a named collection of counters, gauges and histograms.
// Lookups lock; the returned instruments update atomically, so hot
// paths resolve their instruments once and hold the pointers.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns (creating if needed) the named counter; nil on a nil
// registry.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge; nil on a nil
// registry.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram; nil on a
// nil registry. Histogram names must not carry a {label} suffix (the
// Prometheus dump appends its own le labels).
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// CounterValue returns the named counter's value without creating it.
func (r *Registry) CounterValue(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	c := r.counters[name]
	r.mu.Unlock()
	return c.Value()
}

// GaugeValue returns the named gauge's value without creating it.
func (r *Registry) GaugeValue(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	g := r.gauges[name]
	r.mu.Unlock()
	return g.Value()
}

// Label formats a metric name with label pairs in the Prometheus style:
// Label("x_total", "round", "2") == `x_total{round="2"}`. Pairs are
// emitted in argument order, so equal arguments yield equal names.
func Label(name string, kv ...string) string {
	if len(kv) == 0 {
		return name
	}
	var b strings.Builder
	b.WriteString(name)
	b.WriteByte('{')
	for i := 0; i+1 < len(kv); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", kv[i], kv[i+1])
	}
	b.WriteByte('}')
	return b.String()
}

// sortedKeys returns the sorted keys of m.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
