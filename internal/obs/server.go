package obs

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"sync"
)

// Server is the live introspection endpoint of a run: a plain
// net/http server bound to a local listener, serving the observer's
// current state. The run itself advances on the virtual clock; the
// server answers on the host clock, reading consistent snapshots
// through the tracer's per-rank locks, so scraping a run in flight is
// safe and changes nothing about its virtual timeline.
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}

	mu  sync.Mutex
	err error
}

// Serve starts the introspection server on addr (e.g. ":9151" or
// ":0" for an ephemeral port). The handler surface is
//
//	/healthz            liveness probe ("ok")
//	/metrics            Prometheus text exposition of o.Metrics
//	/trace              Chrome-trace JSON snapshot of o.Trace
//	/flows              JSON snapshot of the message flow records
//	/timeline           virtual-time-bucketed activity timeline
//	                    (?buckets=N, default 64, capped at 4096)
//	/insight            the insight handler, when one is provided
//	                    (cmd wiring passes analyze.Handler; nil → 404)
//	/debug/pprof/...    net/http/pprof for real-host profiling
//
// The insight handler is injected as an opaque http.Handler so obs
// does not depend on the analyze package that consumes it.
func Serve(addr string, o *Observer, insight http.Handler) (*Server, error) {
	return ServeFunc(addr, func() *Observer { return o }, insight)
}

// ServeFunc is Serve with an indirection on the observer: current is
// called per request, so a driver that runs many clusters in sequence
// (msbench sweeps) can publish whichever observer belongs to the
// in-flight run. current returning nil is fine — /metrics and /trace
// then serve empty-but-valid documents.
func ServeFunc(addr string, current func() *Observer, insight http.Handler) (*Server, error) {
	if current == nil {
		current = func() *Observer { return nil }
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		current().Registry().WritePrometheus(w)
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		current().Tracer().WriteChromeTrace(w)
	})
	mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		current().Tracer().Flows().WriteFlowsJSON(w)
	})
	mux.HandleFunc("/timeline", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		buckets := 0
		if q := r.URL.Query().Get("buckets"); q != "" {
			if n, err := strconv.Atoi(q); err == nil {
				buckets = n
			}
		}
		current().Tracer().WriteTimelineJSON(w, buckets)
	})
	if insight != nil {
		mux.Handle("/insight", insight)
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	s := &Server{
		ln:   ln,
		srv:  &http.Server{Handler: mux},
		done: make(chan struct{}),
	}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.err = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the bound address, useful with ":0".
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the server down gracefully and waits for the serve
// goroutine to exit. Safe on a nil server.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(context.Background())
	<-s.done
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.err
	}
	return err
}
