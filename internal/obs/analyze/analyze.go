// Package analyze is the layer that reads the telemetry: it consumes a
// traced run (a live *obs.Observer or re-parsed trace/metrics exports)
// and computes the analyses the paper's per-stage max-over-ranks
// decomposition cannot express — the critical path through the radix
// reduction tree, per-stage straggler detection with an imbalance
// score, per-round merge attribution (serialize vs glue vs simplify,
// payload growth), and a deterministic tuning recommendation derived
// from the observed payload sizes and span times (DESIGN §12).
//
// Every function here is a pure function of its Input: analyzing the
// same trace twice — or the traces of two same-seed runs — produces
// byte-identical reports.
package analyze

import (
	"math"
	"sort"
	"strconv"
	"strings"

	"parms/internal/grid"
	"parms/internal/merge"
	"parms/internal/obs"
)

// Input is the telemetry snapshot an analysis consumes: one span/
// instant track per rank plus the flattened metrics series. Build one
// with FromObserver (live or post-run) or ParseChromeTrace +
// ParsePrometheus (from exported files).
type Input struct {
	Procs    int
	Spans    [][]obs.Span
	Instants [][]obs.Instant
	// Metrics maps a Prometheus series name (labels included, e.g.
	// `merge_round_bytes_sent_total{round="0"}`) to its value. Optional:
	// analyses that need it degrade gracefully when empty.
	Metrics map[string]float64
	// Flows holds the per-message causal records, ordered by
	// (emitter, seq). Optional: flow-level analyses (comm matrix, exact
	// critical path) are skipped when empty.
	Flows []obs.Flow
}

// FromObserver snapshots a live or completed run. Safe to call while
// ranks are still recording: each track is copied under its lock, so
// the snapshot is a consistent prefix of the run.
func FromObserver(o *obs.Observer) *Input {
	in := &Input{Metrics: map[string]float64{}}
	if o == nil {
		return in
	}
	tr := o.Trace
	in.Procs = tr.Procs()
	in.Spans = make([][]obs.Span, in.Procs)
	in.Instants = make([][]obs.Instant, in.Procs)
	for id := 0; id < in.Procs; id++ {
		in.Spans[id] = tr.Spans(id)
		in.Instants[id] = tr.Instants(id)
	}
	in.Flows = tr.Flows().Flows()
	var buf strings.Builder
	if err := o.Metrics.WritePrometheus(&buf); err == nil {
		if m, err := ParsePrometheus(strings.NewReader(buf.String())); err == nil {
			in.Metrics = m
		}
	}
	return in
}

// Config tunes an analysis. The zero value selects the documented
// defaults, so Analyze(in, Config{}) is the common call.
type Config struct {
	// Blocks overrides the decomposition block count; 0 infers it from
	// the block ids observed in the trace.
	Blocks int
	// Radices overrides the merge schedule; nil infers it from the
	// round span attributes.
	Radices []int
	// MADK is the straggler threshold multiplier on the median absolute
	// deviation (default 4): a rank is flagged when its stage duration
	// (or attributed wait) exceeds median + MADK·MAD plus a small
	// relative floor that suppresses noise when MAD is ~0.
	MADK float64
}

func (c Config) madK() float64 {
	if c.MADK <= 0 {
		return 4
	}
	return c.MADK
}

// StageSummary condenses one stage's per-rank durations.
type StageSummary struct {
	Name        string  `json:"name"`
	MaxSeconds  float64 `json:"max_seconds"`
	MeanSeconds float64 `json:"mean_seconds"`
	P95Seconds  float64 `json:"p95_seconds"`
	// Imbalance is max/mean across ranks (1.0 = perfectly balanced),
	// the paper's efficiency metric.
	Imbalance   float64 `json:"imbalance"`
	SlowestRank int     `json:"slowest_rank"`
}

// Straggler is one flagged rank.
type Straggler struct {
	Rank int `json:"rank"`
	// Stage is the stage the rank straggled in, or "merge-wait" when
	// the rank was flagged for the wait time it imposed on merge-group
	// roots (the signature of a slow sender, whose own spans stay
	// short).
	Stage string `json:"stage"`
	// Seconds is the rank's duration (or total attributed wait) and
	// MedianSeconds the across-rank median it is compared against.
	MedianSeconds float64 `json:"median_seconds"`
	Seconds       float64 `json:"seconds"`
}

// RoundReport attributes one merge round's time and traffic.
type RoundReport struct {
	Round       int `json:"round"`
	Radix       int `json:"radix"`
	BlocksAfter int `json:"blocks_after"`
	// Seconds is the round duration (max over ranks).
	Seconds float64 `json:"seconds"`
	// The per-phase sums across ranks inside the round window.
	SerializeSeconds float64 `json:"serialize_seconds"`
	GlueSeconds      float64 `json:"glue_seconds"`
	SimplifySeconds  float64 `json:"simplify_seconds"`
	// WaitSeconds is the idle time roots spent waiting for member
	// payloads (summed across ranks).
	WaitSeconds float64 `json:"wait_seconds"`
	// RecoverSeconds sums rebuild and checkpoint-restore spans.
	RecoverSeconds float64 `json:"recover_seconds"`
	SentBytes      int64   `json:"sent_bytes"`
	// Payload sizes observed by the round's serialize spans.
	MeanPayloadBytes int64 `json:"mean_payload_bytes"`
	MaxPayloadBytes  int64 `json:"max_payload_bytes"`
}

// PathStep is one link of the critical path, on one rank's timeline.
type PathStep struct {
	// Kind is read, compute, serialize, wait, glue, simplify,
	// checkpoint, recover — or msg for a message hop on the
	// flow-derived path.
	Kind  string `json:"kind"`
	Rank  int    `json:"rank"`
	Block int    `json:"block"`
	// Round is the merge round, -1 before merging.
	Round        int     `json:"round"`
	StartSeconds float64 `json:"start_seconds"`
	EndSeconds   float64 `json:"end_seconds"`
	// Src and Dst are set on msg steps: the hop's endpoints.
	Src int `json:"src,omitempty"`
	Dst int `json:"dst,omitempty"`
}

// Recommendation is the deterministic tuning advice derived from the
// trace (see Recommend).
type Recommendation struct {
	// Radices is the proposed merge radix schedule.
	Radices []int `json:"radices,omitempty"`
	// Blocks is the proposed decomposition block count (equal to the
	// observed count when no change is advised).
	Blocks int `json:"blocks"`
	// AvoidRanks lists straggler ranks the block-cyclic remapping
	// should shift load away from.
	AvoidRanks []int    `json:"avoid_ranks,omitempty"`
	Reasons    []string `json:"reasons"`
}

// Report is the full analysis of one run.
type Report struct {
	Procs        int     `json:"procs"`
	Blocks       int     `json:"blocks"`
	Radices      []int   `json:"radices,omitempty"`
	TotalSeconds float64 `json:"total_seconds"`
	BytesSent    int64   `json:"bytes_sent,omitempty"`

	Stages     []StageSummary `json:"stages,omitempty"`
	Stragglers []Straggler    `json:"stragglers,omitempty"`
	Rounds     []RoundReport  `json:"rounds,omitempty"`

	// CriticalPath chains the spans that bound the merge wall time,
	// leaf to final survivor; CriticalEndSeconds is when it completes.
	// With flow records present the path is the exact message-level
	// chain (CriticalPathSource "flows") and the old span-derived tree
	// walk survives as a cross-check lower bound; without them the tree
	// walk is the path (source "spans").
	CriticalPath       []PathStep `json:"critical_path,omitempty"`
	CriticalEndSeconds float64    `json:"critical_end_seconds"`
	CriticalPathSource string     `json:"critical_path_source,omitempty"`
	// SpanCriticalEndSeconds is the span-derived estimate when flows
	// provided the path; CriticalPathGapSeconds = flow end − span end,
	// ≥ 0 by construction (the flow path ends at the makespan).
	SpanCriticalEndSeconds float64 `json:"span_critical_end_seconds,omitempty"`
	CriticalPathGapSeconds float64 `json:"critical_path_gap_seconds"`

	// CommMatrix is the rank×rank traffic aggregation from the flow
	// records, ordered by (src, dst).
	CommMatrix []CommLink `json:"comm_matrix,omitempty"`

	// Faults counts fault instants by name (fault:timeout etc.).
	Faults map[string]int `json:"faults,omitempty"`

	Recommendation Recommendation `json:"recommendation"`
}

// stageNames are the stage spans summarized per rank, in timeline
// order (the sync spans are collective boundaries, not work).
var stageNames = []string{"read", "compute", "merge", "write"}

// Analyze computes the full report. It is a pure function of (in, cfg):
// equal inputs produce equal reports, byte for byte once serialized.
func Analyze(in *Input, cfg Config) *Report {
	a := newAnalysis(in, cfg)
	rep := &Report{
		Procs:        a.procs,
		Blocks:       a.nblocks,
		Radices:      a.radices,
		TotalSeconds: a.total,
		BytesSent:    int64(in.Metrics["mpsim_bytes_sent_total"]),
	}
	rep.Stages = a.stageSummaries()
	rep.Rounds = a.roundReports()
	rep.CommMatrix = a.commMatrix()
	rep.Stragglers = append(a.stragglers(rep.Stages), a.commStragglers()...)
	spanPath, spanEnd := a.criticalPath()
	flowPath, flowEnd := a.flowCriticalPath()
	if flowEnd > 0 {
		rep.CriticalPath, rep.CriticalEndSeconds = flowPath, flowEnd
		rep.CriticalPathSource = "flows"
		rep.SpanCriticalEndSeconds = spanEnd
		rep.CriticalPathGapSeconds = flowEnd - spanEnd
	} else {
		rep.CriticalPath, rep.CriticalEndSeconds = spanPath, spanEnd
		rep.CriticalPathSource = "spans"
	}
	rep.Faults = a.faultCounts()
	rep.Recommendation = recommend(rep)
	return rep
}

// analysis is the indexed view of one Input that the individual
// analyses query.
type analysis struct {
	in      *Input
	cfg     Config
	procs   int
	nblocks int
	radices []int
	sched   merge.Schedule
	total   float64
	// owners is the run's ownership table rebuilt from the trace: the
	// initial block-cyclic layout with every fault:migrate instant
	// replayed in timestamp order.
	owners *grid.OwnerTable

	// windows[rank][round] is the round:k span interval on that rank.
	windows [][]window
	// roundMeta[round] aggregates round span attributes.
	roundMeta []roundMeta
	// ends[rank] holds every span end on the rank, sorted, for
	// previous-event queries.
	ends [][]float64

	// Span indexes keyed by (round, block). Values carry the span and
	// the rank it was recorded on.
	serialize map[[2]int]located
	glue      map[[2]int]located
	simplify  map[[2]int]located
	ckptWrite map[[2]int]located
	recover   map[[2]int][]located
	timeouts  map[[2]int]locInstant
	compute   map[int]located // block id -> compute "block" span
	read      map[int]located // block id -> read:block span

	// medFirstIdle[round] is the round's "natural" receive wait: the
	// median, across the round's groups, of the idle before each
	// group's first glue (the root just became ready and the first
	// payload is still in flight — structural, not a straggler). An
	// idle counts as a genuine wait only when it clears 4× this peer
	// baseline or 5% of the makespan, whichever is smaller (see
	// isWait).
	medFirstIdle []float64
}

// isWait classifies a pre-glue idle in the given round: true when the
// root was genuinely stalled on a late payload rather than paying the
// round's natural pipeline wait. Peer-relative (4× the round's median
// positive idle) so symmetric transfer waits never flag, capped at 5%
// of the makespan so a lone heavily-delayed payload still registers
// when it has no peers to compare against.
func (a *analysis) isWait(round int, idle float64) bool {
	eps := 0.0
	if round >= 0 && round < len(a.medFirstIdle) {
		eps = 4 * a.medFirstIdle[round]
	}
	if limit := 0.05 * a.total; eps > limit {
		eps = limit
	}
	return idle > eps+1e-9
}

type window struct{ start, end float64 }

type roundMeta struct {
	radix       int
	blocksAfter int
	sentBytes   int64
	seconds     float64
}

type located struct {
	rank int
	span obs.Span
}

type locInstant struct {
	rank int
	inst obs.Instant
}

func attrInt(attrs []obs.Attr, key string) (int64, bool) {
	for _, at := range attrs {
		if at.Key == key {
			return at.Int(), true
		}
	}
	return 0, false
}

func newAnalysis(in *Input, cfg Config) *analysis {
	a := &analysis{
		in:        in,
		cfg:       cfg,
		procs:     in.Procs,
		serialize: map[[2]int]located{},
		glue:      map[[2]int]located{},
		simplify:  map[[2]int]located{},
		ckptWrite: map[[2]int]located{},
		recover:   map[[2]int][]located{},
		timeouts:  map[[2]int]locInstant{},
		compute:   map[int]located{},
		read:      map[int]located{},
	}

	// Pass 1: rounds, block ids, per-rank sorted ends, total makespan.
	maxRound := -1
	maxBlock := -1
	a.ends = make([][]float64, a.procs)
	roundAttrs := map[int]roundMeta{}
	for rank := 0; rank < a.procs; rank++ {
		for _, s := range in.Spans[rank] {
			a.ends[rank] = append(a.ends[rank], float64(s.End))
			if float64(s.End) > a.total {
				a.total = float64(s.End)
			}
			switch {
			case strings.HasPrefix(s.Name, "round:"):
				k, err := strconv.Atoi(s.Name[len("round:"):])
				if err != nil {
					continue
				}
				if k > maxRound {
					maxRound = k
				}
				m := roundAttrs[k]
				if v, ok := attrInt(s.Attrs, "radix"); ok {
					m.radix = int(v)
				}
				if v, ok := attrInt(s.Attrs, "blocks_after"); ok {
					m.blocksAfter = int(v)
				}
				if v, ok := attrInt(s.Attrs, "sent_bytes"); ok {
					m.sentBytes += v
				}
				if d := s.Duration(); d > m.seconds {
					m.seconds = d
				}
				roundAttrs[k] = m
			case s.Name == "block":
				if v, ok := attrInt(s.Attrs, "id"); ok {
					a.compute[int(v)] = located{rank, s}
					if int(v) > maxBlock {
						maxBlock = int(v)
					}
				}
			case s.Name == "read:block":
				if v, ok := attrInt(s.Attrs, "id"); ok {
					a.read[int(v)] = located{rank, s}
					if int(v) > maxBlock {
						maxBlock = int(v)
					}
				}
			case s.Name == "serialize" || s.Name == "glue":
				if v, ok := attrInt(s.Attrs, "block"); ok && int(v) > maxBlock {
					maxBlock = int(v)
				}
			}
		}
		sort.Float64s(a.ends[rank])
	}

	a.radices = cfg.Radices
	if a.radices == nil {
		for k := 0; k <= maxRound; k++ {
			a.radices = append(a.radices, roundAttrs[k].radix)
		}
	}
	a.sched = merge.Schedule{Radices: a.radices}
	a.roundMeta = make([]roundMeta, len(a.radices))
	for k := range a.roundMeta {
		a.roundMeta[k] = roundAttrs[k]
	}
	a.nblocks = cfg.Blocks
	if a.nblocks <= 0 {
		a.nblocks = maxBlock + 1
	}
	if a.nblocks <= 0 {
		a.nblocks = a.procs
	}

	// Rebuild the ownership table from the trace: each migration is one
	// fault:migrate instant on the adopting rank's track. Replaying them
	// in (time, block) order reproduces the table's final state; spans
	// from before a block migrated are attributed to the final owner,
	// an approximation that only matters for the (rare) migrated blocks.
	a.owners = grid.NewOwnerTable(a.nblocks, a.procs)
	type migEvent struct {
		at        float64
		block, to int
	}
	var migs []migEvent
	for rank := 0; rank < a.procs; rank++ {
		for _, inst := range in.Instants[rank] {
			if inst.Name != "fault:migrate" {
				continue
			}
			b, okB := attrInt(inst.Attrs, "block")
			to, okTo := attrInt(inst.Attrs, "to")
			if okB && okTo {
				migs = append(migs, migEvent{float64(inst.Ts), int(b), int(to)})
			}
		}
	}
	sort.Slice(migs, func(i, j int) bool {
		if migs[i].at != migs[j].at {
			return migs[i].at < migs[j].at
		}
		return migs[i].block < migs[j].block
	})
	for _, mg := range migs {
		if mg.block >= 0 && mg.block < a.nblocks && mg.to >= 0 && mg.to < a.procs {
			_ = a.owners.Migrate(mg.block, mg.to)
		}
	}

	// Pass 2: round windows per rank, then assign the merge sub-spans
	// to rounds by containment in the recording rank's window.
	a.windows = make([][]window, a.procs)
	for rank := 0; rank < a.procs; rank++ {
		a.windows[rank] = make([]window, len(a.radices))
		for _, s := range in.Spans[rank] {
			if !strings.HasPrefix(s.Name, "round:") {
				continue
			}
			if k, err := strconv.Atoi(s.Name[len("round:"):]); err == nil && k < len(a.windows[rank]) {
				a.windows[rank][k] = window{float64(s.Start), float64(s.End)}
			}
		}
	}
	for rank := 0; rank < a.procs; rank++ {
		for _, s := range in.Spans[rank] {
			k := a.roundOf(rank, s)
			if k < 0 {
				continue
			}
			switch s.Name {
			case "serialize":
				if v, ok := attrInt(s.Attrs, "block"); ok {
					a.serialize[[2]int{k, int(v)}] = located{rank, s}
				}
			case "glue":
				if v, ok := attrInt(s.Attrs, "block"); ok {
					a.glue[[2]int{k, int(v)}] = located{rank, s}
				}
			case "simplify":
				if v, ok := attrInt(s.Attrs, "root"); ok {
					a.simplify[[2]int{k, int(v)}] = located{rank, s}
				}
			case "ckpt:write":
				if v, ok := attrInt(s.Attrs, "block"); ok {
					a.ckptWrite[[2]int{k, int(v)}] = located{rank, s}
				}
			case "rebuild", "ckpt:restore":
				if v, ok := attrInt(s.Attrs, "block"); ok {
					key := [2]int{k, int(v)}
					a.recover[key] = append(a.recover[key], located{rank, s})
				}
			}
		}
		for _, inst := range in.Instants[rank] {
			if inst.Name != "fault:timeout" {
				continue
			}
			k, okK := attrInt(inst.Attrs, "round")
			b, okB := attrInt(inst.Attrs, "block")
			if okK && okB {
				a.timeouts[[2]int{int(k), int(b)}] = locInstant{rank, inst}
			}
		}
	}
	a.medFirstIdle = make([]float64, len(a.radices))
	for k := range a.radices {
		var firsts []float64
		for _, g := range a.sched.RoundGroups(a.nblocks, k) {
			bestStart, idle := math.Inf(1), -1.0
			for _, m := range g.Members {
				if m == g.Root {
					continue
				}
				if loc, ok := a.glue[[2]int{k, m}]; ok && float64(loc.span.Start) < bestStart {
					bestStart = float64(loc.span.Start)
					idle = bestStart - a.prevEnd(loc.rank, bestStart)
				}
			}
			if idle >= 0 {
				firsts = append(firsts, idle)
			}
		}
		a.medFirstIdle[k] = quantile(firsts, 0.5)
	}
	return a
}

// roundOf returns the merge round whose window on the recording rank
// contains the span, or -1.
func (a *analysis) roundOf(rank int, s obs.Span) int {
	for k, w := range a.windows[rank] {
		if w.end > w.start && float64(s.Start) >= w.start && float64(s.End) <= w.end {
			return k
		}
	}
	return -1
}

// prevEnd returns the latest span end on the rank at or before t — the
// moment the rank last finished doing something, so t - prevEnd is idle
// (waiting) time. Enclosing spans end after t and never match.
func (a *analysis) prevEnd(rank int, t float64) float64 {
	ends := a.ends[rank]
	i := sort.SearchFloat64s(ends, t)
	// ends[i-1] <= t < ends[i] modulo exact ties; walk back over ties.
	for i < len(ends) && ends[i] <= t {
		i++
	}
	if i == 0 {
		return t
	}
	return ends[i-1]
}

// ownerOf is the block-to-rank assignment of the run per the
// reconstructed ownership table: block-cyclic, with any observed
// migrations applied.
func (a *analysis) ownerOf(block int) int {
	if block < 0 || block >= a.owners.NumBlocks() {
		return block % a.procs
	}
	return a.owners.Owner(block)
}

// stageDurations returns each rank's total duration of the named spans.
func (a *analysis) stageDurations(name string) []float64 {
	durs := make([]float64, a.procs)
	for rank := 0; rank < a.procs; rank++ {
		for _, s := range a.in.Spans[rank] {
			if s.Name == name {
				durs[rank] += s.Duration()
			}
		}
	}
	return durs
}

func (a *analysis) stageSummaries() []StageSummary {
	var out []StageSummary
	for _, name := range stageNames {
		durs := a.stageDurations(name)
		sum, max, slowest := 0.0, 0.0, 0
		for rank, d := range durs {
			sum += d
			if d > max {
				max, slowest = d, rank
			}
		}
		if sum == 0 {
			continue
		}
		mean := sum / float64(len(durs))
		st := StageSummary{
			Name:        name,
			MaxSeconds:  max,
			MeanSeconds: mean,
			P95Seconds:  quantile(durs, 0.95),
			SlowestRank: slowest,
		}
		if mean > 0 {
			st.Imbalance = max / mean
		}
		out = append(out, st)
	}
	return out
}

// quantile is the nearest-rank quantile of a copy of xs.
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	i := int(math.Ceil(q*float64(len(s)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(s) {
		i = len(s) - 1
	}
	return s[i]
}

// medianMAD returns the median and median absolute deviation of xs.
func medianMAD(xs []float64) (med, mad float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	med = quantile(xs, 0.5)
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	return med, quantile(devs, 0.5)
}

// stragglers flags outlier ranks two ways: by stage duration, and by
// the wait time a rank's late merge payloads imposed on group roots
// (DESIGN §12). The wait attribution is what catches a slow *sender*,
// whose own spans stay short while everyone downstream stalls.
func (a *analysis) stragglers(stages []StageSummary) []Straggler {
	k := a.cfg.madK()
	var out []Straggler
	for _, st := range stages {
		durs := a.stageDurations(st.Name)
		med, mad := medianMAD(durs)
		// The relative floor suppresses flags when MAD ~ 0 (the virtual
		// model makes same-work ranks near-identical).
		thresh := med + k*mad + 0.05*med + 1e-9
		for rank, d := range durs {
			if d > thresh {
				out = append(out, Straggler{Rank: rank, Stage: st.Name, Seconds: d, MedianSeconds: med})
			}
		}
	}

	// Wait attribution: idle time before a glue span is the root
	// waiting on that member's payload; charge it to the member's
	// owner. A timed-out member never glues — charge the idle before
	// the fault:timeout instant to the source rank instead.
	waits := make([]float64, a.procs)
	for _, key := range sortedKeys2(a.glue) {
		loc := a.glue[key]
		idle := float64(loc.span.Start) - a.prevEnd(loc.rank, float64(loc.span.Start))
		if a.isWait(key[0], idle) {
			waits[a.ownerOf(key[1])] += idle
		}
	}
	for _, key := range sortedKeys2(a.timeouts) {
		// A timeout is always a genuine wait: the root sat out the full
		// timeout budget before giving up on the member.
		li := a.timeouts[key]
		idle := float64(li.inst.Ts) - a.prevEnd(li.rank, float64(li.inst.Ts))
		src, ok := attrInt(li.inst.Attrs, "src")
		if !ok {
			src = int64(a.ownerOf(key[1]))
		}
		if idle > 0 && int(src) < len(waits) {
			waits[src] += idle
		}
	}
	med, mad := medianMAD(waits)
	thresh := med + k*mad + 0.02*a.total + 1e-9
	for rank, w := range waits {
		if w > thresh {
			out = append(out, Straggler{Rank: rank, Stage: "merge-wait", Seconds: w, MedianSeconds: med})
		}
	}
	return out
}

func sortedKeys2[V any](m map[[2]int]V) [][2]int {
	keys := make([][2]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i][0] != keys[j][0] {
			return keys[i][0] < keys[j][0]
		}
		return keys[i][1] < keys[j][1]
	})
	return keys
}

func (a *analysis) roundReports() []RoundReport {
	var out []RoundReport
	for k := range a.radices {
		m := a.roundMeta[k]
		r := RoundReport{
			Round:       k,
			Radix:       a.radices[k],
			BlocksAfter: m.blocksAfter,
			SentBytes:   m.sentBytes,
			Seconds:     m.seconds,
		}
		var payloads []int64
		for _, key := range sortedKeys2(a.serialize) {
			if key[0] != k {
				continue
			}
			loc := a.serialize[key]
			r.SerializeSeconds += loc.span.Duration()
			if v, ok := attrInt(loc.span.Attrs, "bytes"); ok {
				payloads = append(payloads, v)
			}
		}
		for _, key := range sortedKeys2(a.glue) {
			if key[0] != k {
				continue
			}
			loc := a.glue[key]
			r.GlueSeconds += loc.span.Duration()
			if idle := float64(loc.span.Start) - a.prevEnd(loc.rank, float64(loc.span.Start)); a.isWait(k, idle) {
				r.WaitSeconds += idle
			}
		}
		for _, key := range sortedKeys2(a.simplify) {
			if key[0] == k {
				r.SimplifySeconds += a.simplify[key].span.Duration()
			}
		}
		for _, key := range sortedKeys2(a.recover) {
			if key[0] != k {
				continue
			}
			for _, loc := range a.recover[key] {
				r.RecoverSeconds += loc.span.Duration()
			}
		}
		if len(payloads) > 0 {
			var sum, max int64
			for _, p := range payloads {
				sum += p
				if p > max {
					max = p
				}
			}
			r.MeanPayloadBytes = sum / int64(len(payloads))
			r.MaxPayloadBytes = max
		}
		out = append(out, r)
	}
	return out
}

func (a *analysis) faultCounts() map[string]int {
	counts := map[string]int{}
	for rank := 0; rank < a.procs; rank++ {
		for _, inst := range a.in.Instants[rank] {
			if strings.HasPrefix(inst.Name, "fault:") {
				counts[inst.Name]++
			}
		}
	}
	if len(counts) == 0 {
		return nil
	}
	return counts
}
