package analyze

import (
	"net/http"

	"parms/internal/obs"
)

// Handler serves the live analysis of an observer as the /insight
// endpoint of the introspection server (obs.Serve takes it as an
// opaque http.Handler so obs does not depend on this package). Each
// request snapshots the tracer and re-runs Analyze, so mid-run scrapes
// see a consistent prefix of the run. `?format=text` switches to the
// human-readable rendering.
func Handler(o *obs.Observer, cfg Config) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		rep := Analyze(FromObserver(o), cfg)
		if req.URL.Query().Get("format") == "text" {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			rep.Print(w)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		if err := rep.WriteJSON(w); err != nil {
			// Too late for an HTTP error status; the connection is the
			// only place left to signal failure.
			return
		}
	})
}
