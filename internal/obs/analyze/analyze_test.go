package analyze_test

import (
	"bytes"
	"strings"
	"testing"

	"parms/internal/fault"
	"parms/internal/grid"
	"parms/internal/mpsim"
	"parms/internal/obs"
	"parms/internal/obs/analyze"
	"parms/internal/pario"
	"parms/internal/pipeline"
	"parms/internal/synth"
	"parms/internal/vtime"
)

// runTraced executes a 64-rank, 64-block, radix-[8 8] full-merge run of
// the sinusoid volume under an optional fault plan and returns its
// observer.
func runTraced(t *testing.T, plan *fault.Plan) *obs.Observer {
	t.Helper()
	vol := synth.Sinusoid(33, 4)
	c, err := mpsim.New(mpsim.Config{Procs: 64, Faults: plan, Obs: obs.New(64)})
	if err != nil {
		t.Fatal(err)
	}
	pario.WriteVolume(c.FS(), "vol", vol)
	if _, err := pipeline.Run(c, pipeline.Params{
		File: "vol", Dims: vol.Dims, DType: grid.F32,
		Blocks: 64, Radices: []int{8, 8}, Persistence: 0.1,
	}); err != nil {
		t.Fatal(err)
	}
	return c.Obs()
}

// slowNIC delays every message from rank 9 to rank 8 by 0.4 virtual
// seconds — well under the merge timeout, so payloads arrive late but
// are never excluded. Rank 9's own spans stay short; only the waits it
// imposes downstream reveal it.
func slowNIC() *fault.Plan {
	return fault.NewPlan(1).DelayMessage(9, 8, 0, 0.4)
}

func flaggedRanks(rep *analyze.Report) map[int]bool {
	out := map[int]bool{}
	for _, s := range rep.Stragglers {
		out[s.Rank] = true
	}
	return out
}

// TestStragglerDetectionNamesDelayedRank is the acceptance drill: on a
// 64-rank run with one injected slow sender, the analysis must name the
// straggler, report a critical path through the merge tree, and change
// its recommendation versus the fault-free run; and two same-seed runs
// must produce byte-identical JSON reports.
func TestStragglerDetectionNamesDelayedRank(t *testing.T) {
	clean := analyze.Analyze(analyze.FromObserver(runTraced(t, nil)), analyze.Config{})
	faulty := analyze.Analyze(analyze.FromObserver(runTraced(t, slowNIC())), analyze.Config{})

	if flaggedRanks(clean)[9] {
		t.Errorf("fault-free run flags rank 9: %+v", clean.Stragglers)
	}
	if !flaggedRanks(faulty)[9] {
		t.Errorf("faulty run does not flag rank 9: %+v", faulty.Stragglers)
	}

	// Structural checks on both reports.
	for name, rep := range map[string]*analyze.Report{"clean": clean, "faulty": faulty} {
		if rep.Procs != 64 || rep.Blocks != 64 {
			t.Errorf("%s: procs/blocks = %d/%d, want 64/64", name, rep.Procs, rep.Blocks)
		}
		if len(rep.Radices) != 2 || rep.Radices[0] != 8 || rep.Radices[1] != 8 {
			t.Errorf("%s: inferred radices %v, want [8 8]", name, rep.Radices)
		}
		if len(rep.Rounds) != 2 {
			t.Fatalf("%s: %d round reports, want 2", name, len(rep.Rounds))
		}
		if rep.Rounds[0].BlocksAfter != 8 || rep.Rounds[1].BlocksAfter != 1 {
			t.Errorf("%s: blocks_after %d,%d want 8,1",
				name, rep.Rounds[0].BlocksAfter, rep.Rounds[1].BlocksAfter)
		}
		if len(rep.CriticalPath) == 0 {
			t.Fatalf("%s: empty critical path", name)
		}
		last := rep.CriticalPath[len(rep.CriticalPath)-1]
		deepest := -1
		for _, st := range rep.CriticalPath {
			if st.Round > deepest {
				deepest = st.Round
			}
		}
		if deepest != 1 {
			t.Errorf("%s: critical path reaches round %d, want 1", name, deepest)
		}
		if last.EndSeconds != rep.CriticalEndSeconds {
			t.Errorf("%s: path end %.6f != critical end %.6f",
				name, last.EndSeconds, rep.CriticalEndSeconds)
		}
		// Flows were recorded, so the exact message-level walk is the
		// path and the span-derived tree estimate survives as a lower
		// bound: the gap must never be negative.
		if rep.CriticalPathSource != "flows" {
			t.Errorf("%s: critical path source %q, want flows", name, rep.CriticalPathSource)
		}
		if rep.CriticalPathGapSeconds < 0 {
			t.Errorf("%s: flow path ends %.6f before the span estimate %.6f",
				name, rep.CriticalEndSeconds, rep.SpanCriticalEndSeconds)
		}
		if len(rep.CommMatrix) == 0 {
			t.Errorf("%s: empty comm matrix", name)
		}
		rounds := map[int]bool{}
		for i, st := range rep.CriticalPath {
			rounds[st.Round] = true
			if st.EndSeconds < st.StartSeconds {
				t.Errorf("%s: step %d runs backwards: %+v", name, i, st)
			}
			if i > 0 && st.EndSeconds < rep.CriticalPath[i-1].EndSeconds {
				t.Errorf("%s: step %d ends before step %d", name, i, i-1)
			}
		}
		for _, want := range []int{-1, 0, 1} {
			if !rounds[want] {
				t.Errorf("%s: critical path skips round %d", name, want)
			}
		}
	}

	// The injected wait must appear on the faulty critical path: the
	// delayed payload makes the root wait, and that wait binds the tree.
	var sawWait bool
	for _, st := range faulty.CriticalPath {
		if st.Kind == "wait" {
			sawWait = true
		}
	}
	if !sawWait {
		t.Errorf("faulty critical path has no wait step: %+v", faulty.CriticalPath)
	}

	// Recommendations diverge: the faulty run proposes remapping away
	// from rank 9.
	if len(clean.Recommendation.AvoidRanks) != 0 {
		t.Errorf("fault-free recommendation avoids ranks %v", clean.Recommendation.AvoidRanks)
	}
	avoid := map[int]bool{}
	for _, r := range faulty.Recommendation.AvoidRanks {
		avoid[r] = true
	}
	if !avoid[9] {
		t.Errorf("faulty recommendation does not avoid rank 9: %+v", faulty.Recommendation)
	}

	// Byte-identical reports across same-seed runs.
	rerun := analyze.Analyze(analyze.FromObserver(runTraced(t, slowNIC())), analyze.Config{})
	var a, b bytes.Buffer
	if err := faulty.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := rerun.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("same-seed runs produced different JSON reports")
	}
}

// TestAnalyzeFromExportedFiles round-trips the observer through the
// Chrome-trace and Prometheus exporters and checks the file-based
// analysis agrees with the live one on everything but sub-microsecond
// timestamp precision — and is itself deterministic.
func TestAnalyzeFromExportedFiles(t *testing.T) {
	o := runTraced(t, slowNIC())
	live := analyze.Analyze(analyze.FromObserver(o), analyze.Config{})

	var trace, prom bytes.Buffer
	if err := o.Tracer().WriteChromeTrace(&trace); err != nil {
		t.Fatal(err)
	}
	if err := o.Registry().WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	parse := func() *analyze.Report {
		in, err := analyze.ParseChromeTrace(bytes.NewReader(trace.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		m, err := analyze.ParsePrometheus(bytes.NewReader(prom.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		in.Metrics = m
		return analyze.Analyze(in, analyze.Config{})
	}

	fromFile := parse()
	if fromFile.Procs != live.Procs || fromFile.Blocks != live.Blocks {
		t.Errorf("file analysis procs/blocks %d/%d, live %d/%d",
			fromFile.Procs, fromFile.Blocks, live.Procs, live.Blocks)
	}
	if got, want := flaggedRanks(fromFile), flaggedRanks(live); !got[9] || len(got) != len(want) {
		t.Errorf("file analysis stragglers %v, live %v", fromFile.Stragglers, live.Stragglers)
	}
	if fromFile.BytesSent != live.BytesSent || fromFile.BytesSent == 0 {
		t.Errorf("bytes_sent: file %d, live %d", fromFile.BytesSent, live.BytesSent)
	}

	var a, b bytes.Buffer
	if err := fromFile.WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := parse().WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("parsing the same files twice produced different reports")
	}
}

// TestCriticalPathSynthetic pins the walk's semantics on a hand-built
// two-block trace: block 1's payload arrives late, so the path must run
// leaf(1) → serialize → wait on rank 0 → glue → simplify.
func TestCriticalPathSynthetic(t *testing.T) {
	vt := func(s float64) vtime.Time { return vtime.Time(s) }
	in := &analyze.Input{
		Procs: 2,
		Spans: [][]obs.Span{
			{ // rank 0: owner of block 0, merge root.
				{Name: "read:block", Start: vt(0), End: vt(0.1), Attrs: []obs.Attr{obs.I("id", 0)}},
				{Name: "block", Start: vt(0.1), End: vt(0.3), Attrs: []obs.Attr{obs.I("id", 0)}},
				{Name: "round:0", Start: vt(0.3), End: vt(2.0), Attrs: []obs.Attr{obs.I("radix", 2), obs.I("blocks_after", 1), obs.I("sent_bytes", 0)}},
				{Name: "glue", Start: vt(1.5), End: vt(1.8), Attrs: []obs.Attr{obs.I("block", 1), obs.I("bytes", 100)}},
				{Name: "simplify", Start: vt(1.8), End: vt(2.0), Attrs: []obs.Attr{obs.I("root", 0)}},
			},
			{ // rank 1: owner of block 1, slow sender.
				{Name: "read:block", Start: vt(0), End: vt(0.1), Attrs: []obs.Attr{obs.I("id", 1)}},
				{Name: "block", Start: vt(0.1), End: vt(1.0), Attrs: []obs.Attr{obs.I("id", 1)}},
				{Name: "round:0", Start: vt(1.0), End: vt(1.5), Attrs: []obs.Attr{obs.I("radix", 2)}},
				{Name: "serialize", Start: vt(1.0), End: vt(1.4), Attrs: []obs.Attr{obs.I("block", 1), obs.I("bytes", 100)}},
			},
		},
		Instants: [][]obs.Instant{{}, {}},
		Metrics:  map[string]float64{},
	}
	rep := analyze.Analyze(in, analyze.Config{})

	var kinds []string
	for _, st := range rep.CriticalPath {
		kinds = append(kinds, st.Kind)
	}
	want := "read compute serialize wait glue simplify"
	if got := strings.Join(kinds, " "); got != want {
		t.Fatalf("critical path kinds = %q, want %q\npath: %+v", got, want, rep.CriticalPath)
	}
	// The wait is on the root's rank, charged while block 1 is in
	// flight; the path ends with the simplify at 2.0s.
	wait := rep.CriticalPath[3]
	if wait.Rank != 0 || wait.Block != 1 || wait.Round != 0 {
		t.Errorf("wait step = %+v", wait)
	}
	if rep.CriticalEndSeconds != 2.0 {
		t.Errorf("CriticalEndSeconds = %v, want 2.0", rep.CriticalEndSeconds)
	}
	// Wait attribution flags rank 1 even though its own spans are short.
	if !flaggedRanks(rep)[1] {
		t.Errorf("slow sender rank 1 not flagged: %+v", rep.Stragglers)
	}
}

// TestParsePrometheus covers the line parser against the exporter's
// actual output grammar.
func TestParsePrometheus(t *testing.T) {
	text := "# TYPE a counter\na 3\nb{round=\"0\"} 12\n# TYPE h histogram\nh_bucket{le=\"+Inf\"} 2\nh_sum 10\nh_count 2\n"
	m, err := analyze.ParsePrometheus(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"a": 3, `b{round="0"}`: 12, `h_bucket{le="+Inf"}`: 2, "h_sum": 10, "h_count": 2,
	}
	if len(m) != len(want) {
		t.Fatalf("parsed %v, want %v", m, want)
	}
	for k, v := range want {
		if m[k] != v {
			t.Errorf("m[%q] = %v, want %v", k, m[k], v)
		}
	}
	if _, err := analyze.ParsePrometheus(strings.NewReader("garbage\n")); err == nil {
		t.Error("malformed line did not error")
	}
}
