package analyze

import (
	"sort"
	"strings"

	"parms/internal/obs"
)

// Flow-level analyses (DESIGN §14): the per-message causal records give
// the analyses an exact view the span tracks can only approximate. The
// comm matrix aggregates traffic and imposed receive wait per directed
// rank pair, and flowCriticalPath walks the actual message chain that
// bound the makespan — no reduction-tree inference needed.

// CommLink is one directed rank pair's aggregate traffic: how many
// messages and bytes flowed src→dst, and how long dst sat blocked
// waiting for them (virtual seconds).
type CommLink struct {
	Src      int   `json:"src"`
	Dst      int   `json:"dst"`
	Messages int64 `json:"messages"`
	Bytes    int64 `json:"bytes"`
	// WaitSeconds is the receive wait this link imposed: time dst spent
	// blocked between starting a receive and the payload's arrival.
	WaitSeconds float64 `json:"wait_seconds"`
}

// commMatrix aggregates the completed flows into the rank×rank
// communication matrix, links ordered by (src, dst). Orphan flows
// (never consumed) are excluded: they imposed no wait and delivered no
// bytes.
func (a *analysis) commMatrix() []CommLink {
	if len(a.in.Flows) == 0 {
		return nil
	}
	agg := map[[2]int]*CommLink{}
	for _, f := range a.in.Flows {
		if !f.Done {
			continue
		}
		key := [2]int{f.Src, f.Dst}
		l := agg[key]
		if l == nil {
			l = &CommLink{Src: f.Src, Dst: f.Dst}
			agg[key] = l
		}
		l.Messages++
		l.Bytes += int64(f.Bytes)
		l.WaitSeconds += f.WaitSeconds()
	}
	out := make([]CommLink, 0, len(agg))
	for _, key := range sortedKeys2(agg) {
		out = append(out, *agg[key])
	}
	return out
}

// commStragglers flags ranks by the total receive wait their messages
// imposed across all links — the flow-exact version of the span-derived
// merge-wait attribution, and a direct feed into Recommend's
// AvoidRanks. Collective-tag flows are excluded: a barrier's tree waits
// encode the max semantics of the collective, not a slow sender.
func (a *analysis) commStragglers() []Straggler {
	if len(a.in.Flows) == 0 || a.procs == 0 {
		return nil
	}
	waits := make([]float64, a.procs)
	for _, f := range a.in.Flows {
		if !f.Done || f.Kind == obs.FlowCollective || f.Src < 0 || f.Src >= a.procs {
			continue
		}
		waits[f.Src] += f.WaitSeconds()
	}
	med, mad := medianMAD(waits)
	thresh := med + a.cfg.madK()*mad + 0.02*a.total + 1e-9
	var out []Straggler
	for rank, w := range waits {
		if w > thresh {
			out = append(out, Straggler{Rank: rank, Stage: "comm-wait", Seconds: w, MedianSeconds: med})
		}
	}
	return out
}

// tilingSpan reports whether a span contributes no critical-path step
// of its own: stage/round containers, which tile the whole timeline
// and would shadow the leaves, and kernel:* sub-steps, which nest
// inside a block compute span and would double-count it (and overlap
// their parent, breaking the path's end-time monotonicity).
func tilingSpan(name string) bool {
	switch name {
	case "read", "compute", "merge", "write":
		return true
	}
	return strings.HasPrefix(name, "sync:") || strings.HasPrefix(name, "round:") ||
		strings.HasPrefix(name, "kernel:")
}

// stepKind maps a leaf span name onto the PathStep kind vocabulary.
func stepKind(name string) string {
	switch name {
	case "read:block":
		return "read"
	case "block":
		return "compute"
	case "ckpt:write":
		return "checkpoint"
	case "ckpt:restore", "rebuild":
		return "recover"
	}
	return name
}

// blockOf extracts the block id a span is about, -1 when it has none.
func blockOf(s obs.Span) int {
	for _, key := range []string{"block", "id", "root"} {
		if v, ok := attrInt(s.Attrs, key); ok {
			return int(v)
		}
	}
	return -1
}

// flowCriticalPath walks the exact message-level critical path backward
// from the last unit of real work: at each rank it finds the latest
// inbound message the rank genuinely waited for (arrival after the
// receive began), emits the local work between that message and the
// current frontier, then hops to the sender at its injection time and
// repeats. Each hop contributes a wait step on the receiver and a msg
// step for the transfer, so the injected latency a span walk must infer
// from idle gaps is read off the records directly. Collective-tag flows
// are skipped: a barrier binds every rank by construction, and walking
// its tree would bury the data-dependency chain in synchronization
// ping-pong. The path ends at the latest leaf span end, which is ≥ the
// span-derived tree estimate by construction — the gap measures how
// much arrival inference under-attributes.
func (a *analysis) flowCriticalPath() ([]PathStep, float64) {
	if a.procs == 0 || len(a.in.Flows) == 0 || a.total <= 0 {
		return nil, 0
	}
	// Inbound data-bearing flows per destination, by completion time.
	// Only flows the receiver stalled on can bind the timeline: an
	// already-buffered payload means the receiver, not the message, was
	// the constraint. (Synthetic flows have zero wait and drop out too.)
	inbound := make([][]obs.Flow, a.procs)
	for _, f := range a.in.Flows {
		if !f.Done || f.Kind == obs.FlowCollective || f.Dst < 0 || f.Dst >= a.procs {
			continue
		}
		if float64(f.ArriveVT-f.RecvStartVT) <= 1e-12 {
			continue
		}
		inbound[f.Dst] = append(inbound[f.Dst], f)
	}
	for d := range inbound {
		fl := inbound[d]
		sort.SliceStable(fl, func(i, j int) bool { return fl[i].RecvVT < fl[j].RecvVT })
	}
	// Anchor at the latest leaf span end — the last real work of the
	// run (the tiling sync/round spans end later, at the final
	// collective, identically on every rank).
	rank, t := -1, 0.0
	for rk := 0; rk < a.procs; rk++ {
		for _, s := range a.in.Spans[rk] {
			if tilingSpan(s.Name) {
				continue
			}
			if end := float64(s.End); end > t {
				rank, t = rk, end
			}
		}
	}
	if rank < 0 || t <= 0 {
		return nil, 0
	}
	end := t
	var rev []PathStep // backward order; reversed before returning
	for hops := 0; hops < 100000; hops++ {
		fl := inbound[rank]
		i := sort.Search(len(fl), func(i int) bool { return float64(fl[i].RecvVT) > t })
		if i == 0 {
			// No binding message before the frontier: the path starts
			// with local work from the beginning of the run.
			rev = append(rev, a.segmentSteps(rank, 0, t)...)
			break
		}
		f := fl[i-1]
		rev = append(rev, a.segmentSteps(rank, float64(f.RecvVT), t)...)
		rev = append(rev, PathStep{
			Kind: "msg", Rank: f.Src, Src: f.Src, Dst: f.Dst,
			Block: -1, Round: -1,
			StartSeconds: float64(f.SendVT), EndSeconds: float64(f.RecvVT),
		})
		rev = append(rev, PathStep{
			Kind: "wait", Rank: f.Dst, Block: -1, Round: -1,
			StartSeconds: float64(f.RecvStartVT), EndSeconds: float64(f.ArriveVT),
		})
		if f.Src < 0 || f.Src >= a.procs || float64(f.SendVT) >= t {
			break
		}
		rank, t = f.Src, float64(f.SendVT)
	}
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, end
}

// segmentSteps returns the leaf work spans on rank that complete inside
// (lo, hi], in backward (latest-first) order to match the caller's
// walk.
func (a *analysis) segmentSteps(rank int, lo, hi float64) []PathStep {
	if rank < 0 || rank >= a.procs {
		return nil
	}
	var picked []obs.Span
	for _, s := range a.in.Spans[rank] {
		if tilingSpan(s.Name) {
			continue
		}
		if end := float64(s.End); end <= lo+1e-12 || end > hi+1e-12 {
			continue
		}
		picked = append(picked, s)
	}
	sort.SliceStable(picked, func(i, j int) bool {
		if picked[i].Start != picked[j].Start {
			return picked[i].Start > picked[j].Start
		}
		return picked[i].End > picked[j].End
	})
	steps := make([]PathStep, 0, len(picked))
	for _, s := range picked {
		steps = append(steps, PathStep{
			Kind: stepKind(s.Name), Rank: rank, Block: blockOf(s),
			Round:        a.roundOf(rank, s),
			StartSeconds: float64(s.Start), EndSeconds: float64(s.End),
		})
	}
	return steps
}
