package analyze

// Critical path extraction (DESIGN §12): the merge is a reduction tree
// whose leaves are per-block compute results and whose internal nodes
// are the per-round glue+simplify steps on group roots. The wall time
// of the merge stage is bounded by exactly one root-to-leaf chain — at
// each group, the participant whose contribution arrived last. The
// walk below recovers that chain from the trace alone: a group root's
// pre-glue idle time identifies a late member (the root sat waiting),
// while a glue that starts with no idle means the payload was already
// buffered and the member's own serialize end bounds its arrival.

// criticalPath returns the binding chain leaf→final survivor and the
// virtual time at which it completes.
func (a *analysis) criticalPath() ([]PathStep, float64) {
	if a.procs == 0 || a.nblocks <= 0 {
		return nil, 0
	}
	if len(a.radices) == 0 {
		// No merge: the critical path is the slowest leaf.
		steps, t := a.leafSteps(a.latestLeaf())
		return steps, t
	}
	// Walk every survivor's tree; the one finishing last bounds the
	// run (ties break to the lowest block id by iteration order).
	var bestSteps []PathStep
	bestT := -1.0
	for _, s := range a.sched.Survivors(a.nblocks) {
		steps, t := a.ready(s, len(a.radices))
		if t > bestT {
			bestSteps, bestT = steps, t
		}
	}
	if bestT < 0 {
		bestT = 0
	}
	return bestSteps, bestT
}

// latestLeaf is the block whose compute span ends last.
func (a *analysis) latestLeaf() int {
	best, bestT := 0, -1.0
	for b := 0; b < a.nblocks; b++ {
		if loc, ok := a.compute[b]; ok && float64(loc.span.End) > bestT {
			best, bestT = b, float64(loc.span.End)
		}
	}
	return best
}

// leafSteps is the pre-merge chain for one block: its read and compute
// spans on the owning rank.
func (a *analysis) leafSteps(block int) ([]PathStep, float64) {
	var steps []PathStep
	t := 0.0
	if loc, ok := a.read[block]; ok {
		steps = append(steps, PathStep{
			Kind: "read", Rank: loc.rank, Block: block, Round: -1,
			StartSeconds: float64(loc.span.Start), EndSeconds: float64(loc.span.End),
		})
		t = float64(loc.span.End)
	}
	if loc, ok := a.compute[block]; ok {
		steps = append(steps, PathStep{
			Kind: "compute", Rank: loc.rank, Block: block, Round: -1,
			StartSeconds: float64(loc.span.Start), EndSeconds: float64(loc.span.End),
		})
		t = float64(loc.span.End)
	}
	return steps, t
}

// ready returns the chain producing block's complex at entry to the
// given round, and the virtual time it becomes available.
func (a *analysis) ready(block, round int) ([]PathStep, float64) {
	if round == 0 {
		return a.leafSteps(block)
	}
	return a.groupSteps(block, round-1)
}

// groupSteps walks one reduction-tree node: the round-k group rooted at
// root. It picks the binding participant (latest arrival), recurses
// into its subtree, and appends the root-side processing steps.
func (a *analysis) groupSteps(root, k int) ([]PathStep, float64) {
	rootRank := a.ownerOf(root)
	members := a.groupMembers(root, k)

	// Candidate arrival times. The root's own complex "arrives" when
	// its subtree is ready; a member's arrival is the glue start when
	// the root visibly waited for it, else the member's serialize end
	// (a sender-side lower bound — the payload was buffered early).
	type candidate struct {
		block   int
		arrival float64
		waited  bool
	}
	rootSteps, rootReady := a.ready(root, k)
	best := candidate{block: root, arrival: rootReady}
	for _, m := range members {
		if m == root {
			continue
		}
		c := candidate{block: m}
		if g, ok := a.glue[[2]int{k, m}]; ok {
			idle := float64(g.span.Start) - a.prevEnd(g.rank, float64(g.span.Start))
			if a.isWait(k, idle) {
				c.arrival, c.waited = float64(g.span.Start), true
			} else if s, ok := a.serialize[[2]int{k, m}]; ok {
				c.arrival = float64(s.span.End)
			} else {
				c.arrival = float64(g.span.Start)
			}
		} else if li, ok := a.timeouts[[2]int{k, m}]; ok {
			// Timed out: the root waited until the instant fired.
			c.arrival, c.waited = float64(li.inst.Ts), true
		} else {
			continue
		}
		if c.arrival > best.arrival {
			best = c
		}
	}

	var steps []PathStep
	if best.block == root {
		steps = rootSteps
	} else {
		sub, _ := a.ready(best.block, k)
		steps = sub
		if s, ok := a.serialize[[2]int{k, best.block}]; ok {
			steps = append(steps, PathStep{
				Kind: "serialize", Rank: s.rank, Block: best.block, Round: k,
				StartSeconds: float64(s.span.Start), EndSeconds: float64(s.span.End),
			})
		}
		if best.waited {
			start := a.prevEnd(rootRank, best.arrival)
			steps = append(steps, PathStep{
				Kind: "wait", Rank: rootRank, Block: best.block, Round: k,
				StartSeconds: start, EndSeconds: best.arrival,
			})
		}
	}
	ready := best.arrival

	// Root-side processing: the glue work from the binding arrival to
	// the last glue in the group, then simplify, then any recovery and
	// checkpoint work that extends the round on this root.
	glueStart, glueEnd := -1.0, -1.0
	for _, m := range members {
		g, ok := a.glue[[2]int{k, m}]
		if !ok {
			continue
		}
		if glueStart < 0 || float64(g.span.Start) < glueStart {
			glueStart = float64(g.span.Start)
		}
		if float64(g.span.End) > glueEnd {
			glueEnd = float64(g.span.End)
		}
	}
	if g, ok := a.glue[[2]int{k, best.block}]; ok && best.block != root {
		glueStart = float64(g.span.Start)
	}
	if glueEnd > glueStart && glueStart >= 0 {
		steps = append(steps, PathStep{
			Kind: "glue", Rank: rootRank, Block: root, Round: k,
			StartSeconds: glueStart, EndSeconds: glueEnd,
		})
		ready = glueEnd
	}
	if s, ok := a.simplify[[2]int{k, root}]; ok {
		steps = append(steps, PathStep{
			Kind: "simplify", Rank: rootRank, Block: root, Round: k,
			StartSeconds: float64(s.span.Start), EndSeconds: float64(s.span.End),
		})
		ready = float64(s.span.End)
	}
	for _, m := range members {
		for _, loc := range a.recover[[2]int{k, m}] {
			if float64(loc.span.End) > ready {
				steps = append(steps, PathStep{
					Kind: "recover", Rank: loc.rank, Block: m, Round: k,
					StartSeconds: float64(loc.span.Start), EndSeconds: float64(loc.span.End),
				})
				ready = float64(loc.span.End)
			}
		}
	}
	if c, ok := a.ckptWrite[[2]int{k, root}]; ok && float64(c.span.End) > ready {
		steps = append(steps, PathStep{
			Kind: "checkpoint", Rank: rootRank, Block: root, Round: k,
			StartSeconds: float64(c.span.Start), EndSeconds: float64(c.span.End),
		})
		ready = float64(c.span.End)
	}
	return steps, ready
}

// groupMembers reproduces the round-k group rooted at root from the
// inferred schedule.
func (a *analysis) groupMembers(root, k int) []int {
	for _, g := range a.sched.RoundGroups(a.nblocks, k) {
		if g.Root == root {
			return g.Members
		}
	}
	return []int{root}
}
