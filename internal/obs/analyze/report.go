package analyze

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteJSON writes the report as indented JSON with a trailing newline.
// Output is byte-for-byte deterministic: struct field order is fixed
// and encoding/json sorts the Faults map keys.
func (r *Report) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Print renders the report for humans: stage table, per-round merge
// attribution, flagged stragglers, the critical path, and the tuning
// recommendation.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "run: %d ranks, %d blocks, radices %v, makespan %.4fs\n",
		r.Procs, r.Blocks, r.Radices, r.TotalSeconds)
	if r.BytesSent > 0 {
		fmt.Fprintf(w, "traffic: %d bytes sent\n", r.BytesSent)
	}

	if len(r.Stages) > 0 {
		fmt.Fprintf(w, "\n%-10s %10s %10s %10s %9s %8s\n",
			"stage", "mean", "p95", "max", "imbalance", "slowest")
		for _, st := range r.Stages {
			fmt.Fprintf(w, "%-10s %9.4fs %9.4fs %9.4fs %9.2f %8d\n",
				st.Name, st.MeanSeconds, st.P95Seconds, st.MaxSeconds, st.Imbalance, st.SlowestRank)
		}
	}

	if len(r.Rounds) > 0 {
		fmt.Fprintf(w, "\n%-6s %6s %7s %10s %10s %10s %10s %10s %12s %12s\n",
			"round", "radix", "blocks", "serialize", "glue", "simplify", "wait", "recover", "sent_bytes", "mean_payload")
		for _, rd := range r.Rounds {
			fmt.Fprintf(w, "%-6d %6d %7d %9.4fs %9.4fs %9.4fs %9.4fs %9.4fs %12d %12d\n",
				rd.Round, rd.Radix, rd.BlocksAfter, rd.SerializeSeconds, rd.GlueSeconds,
				rd.SimplifySeconds, rd.WaitSeconds, rd.RecoverSeconds, rd.SentBytes, rd.MeanPayloadBytes)
		}
	}

	if len(r.Stragglers) > 0 {
		fmt.Fprintf(w, "\nstragglers:\n")
		for _, s := range r.Stragglers {
			fmt.Fprintf(w, "  rank %-4d %-11s %.4fs (median %.4fs)\n",
				s.Rank, s.Stage, s.Seconds, s.MedianSeconds)
		}
	} else {
		fmt.Fprintf(w, "\nstragglers: none\n")
	}

	if len(r.Faults) > 0 {
		fmt.Fprintf(w, "\nfaults:\n")
		for _, name := range sortedStringKeys(r.Faults) {
			fmt.Fprintf(w, "  %-20s %d\n", name, r.Faults[name])
		}
	}

	if len(r.CommMatrix) > 0 {
		const topLinks = 16
		links := make([]CommLink, len(r.CommMatrix))
		copy(links, r.CommMatrix)
		sort.SliceStable(links, func(i, j int) bool {
			if links[i].Bytes != links[j].Bytes {
				return links[i].Bytes > links[j].Bytes
			}
			if links[i].Src != links[j].Src {
				return links[i].Src < links[j].Src
			}
			return links[i].Dst < links[j].Dst
		})
		shown := links
		if len(shown) > topLinks {
			shown = shown[:topLinks]
		}
		fmt.Fprintf(w, "\n%-12s %9s %12s %10s\n", "link", "msgs", "bytes", "recv_wait")
		for _, l := range shown {
			fmt.Fprintf(w, "%4d → %-5d %9d %12d %9.4fs\n",
				l.Src, l.Dst, l.Messages, l.Bytes, l.WaitSeconds)
		}
		if len(links) > topLinks {
			fmt.Fprintf(w, "  … %d more links (full matrix in JSON)\n", len(links)-topLinks)
		}
	}

	if len(r.CriticalPath) > 0 {
		fmt.Fprintf(w, "\ncritical path (ends %.4fs):\n", r.CriticalEndSeconds)
		if r.CriticalPathSource == "flows" {
			fmt.Fprintf(w, "  source: message flows; span-tree estimate %.4fs, gap %.4fs\n",
				r.SpanCriticalEndSeconds, r.CriticalPathGapSeconds)
		}
		for _, st := range r.CriticalPath {
			round := "-"
			if st.Round >= 0 {
				round = fmt.Sprintf("%d", st.Round)
			}
			fmt.Fprintf(w, "  %-10s rank %-4d block %-5d round %-3s %9.4fs → %9.4fs (%.4fs)\n",
				st.Kind, st.Rank, st.Block, round, st.StartSeconds, st.EndSeconds,
				st.EndSeconds-st.StartSeconds)
		}
	}

	fmt.Fprintf(w, "\nrecommendation: radices %v, blocks %d",
		r.Recommendation.Radices, r.Recommendation.Blocks)
	if len(r.Recommendation.AvoidRanks) > 0 {
		fmt.Fprintf(w, ", avoid ranks %v", r.Recommendation.AvoidRanks)
	}
	fmt.Fprintln(w)
	for _, reason := range r.Recommendation.Reasons {
		fmt.Fprintf(w, "  - %s\n", reason)
	}
}

func sortedStringKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
