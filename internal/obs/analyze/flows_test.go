package analyze_test

import (
	"bytes"
	"testing"

	"parms/internal/obs"
	"parms/internal/obs/analyze"
)

// TestParseChromeTraceFlowRoundTrip: the flow events WriteChromeTrace
// appends must come back from ParseChromeTrace as the same records the
// live recorder holds — identity and payload fields exact, virtual
// times to the trace's nanosecond fixed-point resolution. Only consumed
// flows are exported (orphans have no finish event to pair), so the
// comparison is against the recorder's Done subset.
func TestParseChromeTraceFlowRoundTrip(t *testing.T) {
	o := runTraced(t, nil)
	direct := analyze.FromObserver(o)
	var want []obs.Flow
	for _, f := range direct.Flows {
		if f.Done {
			want = append(want, f)
		}
	}
	if len(want) == 0 {
		t.Fatal("traced run recorded no consumed flows")
	}

	var buf bytes.Buffer
	if err := o.Trace.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := analyze.ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(parsed.Flows) != len(want) {
		t.Fatalf("parsed %d flows, recorder has %d consumed", len(parsed.Flows), len(want))
	}
	const tol = 2e-9 // trace timestamps are fixed-point nanoseconds
	kinds := map[string]int{}
	for i, g := range parsed.Flows {
		w := want[i]
		if !g.Done {
			t.Fatalf("flow %d parsed as unconsumed: %+v", i, g)
		}
		if g.Seq != w.Seq || g.Emitter != w.Emitter || g.Src != w.Src || g.Dst != w.Dst ||
			g.Tag != w.Tag || g.Bytes != w.Bytes || g.Kind != w.Kind {
			t.Fatalf("flow %d header mismatch:\n got %+v\nwant %+v", i, g, w)
		}
		for _, times := range [][2]float64{
			{float64(g.SendVT), float64(w.SendVT)},
			{float64(g.ArriveVT), float64(w.ArriveVT)},
			{float64(g.RecvStartVT), float64(w.RecvStartVT)},
			{float64(g.RecvVT), float64(w.RecvVT)},
		} {
			if d := times[0] - times[1]; d > tol || d < -tol {
				t.Fatalf("flow %d time drift %g:\n got %+v\nwant %+v", i, d, g, w)
			}
		}
		kinds[g.Kind]++
	}
	if kinds[obs.FlowP2P] == 0 || kinds[obs.FlowCollective] == 0 {
		t.Errorf("round-tripped kinds %v, want both p2p and collective traffic", kinds)
	}

	// Re-serializing the parsed input's flows through a second parse is a
	// fixpoint: the fixed-point quantization happened once, on export.
	parsed2, err := analyze.ParseChromeTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i := range parsed.Flows {
		if parsed.Flows[i] != parsed2.Flows[i] {
			t.Fatalf("parse not deterministic at flow %d", i)
		}
	}
}
