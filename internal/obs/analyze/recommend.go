package analyze

import (
	"fmt"
	"sort"
)

// payloadGrowthThreshold is the mean-payload ratio (last round / first
// round) above which the recommender reverses the paper's
// smaller-radices-early default: when glued complexes keep growing,
// late rounds amortize better with smaller fan-in.
const payloadGrowthThreshold = 1.25

// computeImbalanceThreshold is the max/mean compute imbalance above
// which the recommender proposes over-decomposition (4 blocks per
// rank, block-cyclic) to smooth load, per the paper §IV-A.
const computeImbalanceThreshold = 1.5

// recommend derives tuning advice from a finished report. It is a pure
// function of the report: same trace, same advice, byte for byte.
func recommend(rep *Report) Recommendation {
	rec := Recommendation{Blocks: rep.Blocks}

	// Radix schedule: keep the multiset of observed radices but pick
	// the order from the observed payload growth.
	if len(rep.Radices) > 0 {
		radices := append([]int(nil), rep.Radices...)
		sort.Ints(radices)
		growth := payloadGrowth(rep.Rounds)
		if len(radices) >= 2 && growth > payloadGrowthThreshold {
			// Reverse to descending: smaller radices last.
			for i, j := 0, len(radices)-1; i < j; i, j = i+1, j-1 {
				radices[i], radices[j] = radices[j], radices[i]
			}
			rec.Reasons = append(rec.Reasons, fmt.Sprintf(
				"mean merge payload grew %.2fx from first to last round; schedule smaller radices in later rounds to cut late-round fan-in", growth))
		} else if !equalInts(radices, rep.Radices) {
			rec.Reasons = append(rec.Reasons, "payload growth is modest; use the paper's default of smaller radices in earlier rounds")
		}
		rec.Radices = radices
	}

	// Block count: over-decompose when compute is imbalanced.
	for _, st := range rep.Stages {
		if st.Name == "compute" && st.Imbalance > computeImbalanceThreshold {
			rec.Blocks = 4 * rep.Procs
			rec.Reasons = append(rec.Reasons, fmt.Sprintf(
				"compute imbalance %.2f (max/mean); over-decompose to %d blocks (4 per rank, block-cyclic) to smooth load", st.Imbalance, rec.Blocks))
		}
	}

	// Remapping: shift block ownership away from flagged stragglers.
	seen := map[int]bool{}
	for _, s := range rep.Stragglers {
		if !seen[s.Rank] {
			seen[s.Rank] = true
			rec.AvoidRanks = append(rec.AvoidRanks, s.Rank)
		}
	}
	sort.Ints(rec.AvoidRanks)
	if len(rec.AvoidRanks) > 0 {
		rec.Reasons = append(rec.Reasons, fmt.Sprintf(
			"remap blocks away from straggler ranks %v (rotate the block-cyclic assignment so merge roots avoid them)", rec.AvoidRanks))
	}

	if len(rec.Reasons) == 0 {
		rec.Reasons = []string{"run is balanced; no change recommended"}
	}
	return rec
}

// payloadGrowth is the ratio of the last round's mean serialized
// payload to the first round's, or 0 when either is unobserved.
func payloadGrowth(rounds []RoundReport) float64 {
	first, last := int64(0), int64(0)
	for _, r := range rounds {
		if r.MeanPayloadBytes <= 0 {
			continue
		}
		if first == 0 {
			first = r.MeanPayloadBytes
		}
		last = r.MeanPayloadBytes
	}
	if first == 0 || last == 0 {
		return 0
	}
	return float64(last) / float64(first)
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
