package analyze

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"parms/internal/obs"
	"parms/internal/vtime"
)

// ParseChromeTrace reads a trace previously written by
// obs.Tracer.WriteChromeTrace back into an Input (Metrics left empty —
// pair with ParsePrometheus). Timestamps come back as virtual seconds
// with the file's nanosecond fixed-point resolution, and attributes are
// re-ordered by key so parsing is deterministic regardless of the
// recording order the map decode discarded.
func ParseChromeTrace(r io.Reader) (*Input, error) {
	var doc struct {
		TraceEvents []struct {
			Name string                     `json:"name"`
			Cat  string                     `json:"cat"`
			Ph   string                     `json:"ph"`
			Id   string                     `json:"id"`
			Tid  int                        `json:"tid"`
			Ts   json.Number                `json:"ts"`
			Dur  json.Number                `json:"dur"`
			Args map[string]json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("analyze: parse trace: %w", err)
	}
	in := &Input{Metrics: map[string]float64{}}
	for _, ev := range doc.TraceEvents {
		if ev.Tid+1 > in.Procs {
			in.Procs = ev.Tid + 1
		}
	}
	in.Spans = make([][]obs.Span, in.Procs)
	in.Instants = make([][]obs.Instant, in.Procs)
	var flows []obs.Flow
	flowIdx := map[string]int{} // flow event id → index in flows
	for _, ev := range doc.TraceEvents {
		switch ev.Ph {
		case "X":
			ts, err1 := ev.Ts.Float64()
			dur, err2 := ev.Dur.Float64()
			if err1 != nil || err2 != nil {
				return nil, fmt.Errorf("analyze: bad span timestamps in %q", ev.Name)
			}
			start := vtime.Time(ts / 1e6)
			in.Spans[ev.Tid] = append(in.Spans[ev.Tid], obs.Span{
				Name:  ev.Name,
				Start: start,
				End:   vtime.Time((ts + dur) / 1e6),
				Attrs: parseArgs(ev.Args),
			})
		case "i":
			ts, err := ev.Ts.Float64()
			if err != nil {
				return nil, fmt.Errorf("analyze: bad instant timestamp in %q", ev.Name)
			}
			in.Instants[ev.Tid] = append(in.Instants[ev.Tid], obs.Instant{
				Name:  ev.Name,
				Ts:    vtime.Time(ts / 1e6),
				Attrs: parseArgs(ev.Args),
			})
		case "s":
			// Flow start: the args carry the full record, with the
			// virtual times in the same fixed-point microseconds as ts
			// (see obs.Flow.startJSON) — parsed here directly, not via
			// the generic attr rebuild.
			if ev.Cat != "flow" {
				continue
			}
			ts, err := ev.Ts.Float64()
			if err != nil {
				return nil, fmt.Errorf("analyze: bad flow timestamp in %q", ev.Name)
			}
			f := obs.Flow{SendVT: vtime.Time(ts / 1e6)}
			if v, ok := argInt(ev.Args, "seq"); ok {
				f.Seq = v
			}
			if v, ok := argInt(ev.Args, "emitter"); ok {
				f.Emitter = int(v)
			}
			if v, ok := argInt(ev.Args, "src"); ok {
				f.Src = int(v)
			}
			if v, ok := argInt(ev.Args, "dst"); ok {
				f.Dst = int(v)
			}
			if v, ok := argInt(ev.Args, "tag"); ok {
				f.Tag = int(v)
			}
			if v, ok := argInt(ev.Args, "bytes"); ok {
				f.Bytes = int(v)
			}
			if v, ok := argString(ev.Args, "kind"); ok {
				f.Kind = v
			}
			if v, ok := argFloat(ev.Args, "arrive"); ok {
				f.ArriveVT = vtime.Time(v / 1e6)
			}
			if v, ok := argFloat(ev.Args, "recv_start"); ok {
				f.RecvStartVT = vtime.Time(v / 1e6)
			}
			flowIdx[ev.Id] = len(flows)
			flows = append(flows, f)
		case "f":
			i, ok := flowIdx[ev.Id]
			if !ok {
				continue
			}
			ts, err := ev.Ts.Float64()
			if err != nil {
				return nil, fmt.Errorf("analyze: bad flow timestamp in %q", ev.Name)
			}
			flows[i].RecvVT = vtime.Time(ts / 1e6)
			flows[i].Done = true
		}
	}
	sort.SliceStable(flows, func(i, j int) bool {
		if flows[i].Emitter != flows[j].Emitter {
			return flows[i].Emitter < flows[j].Emitter
		}
		return flows[i].Seq < flows[j].Seq
	})
	in.Flows = flows
	return in, nil
}

// argInt reads one integer arg; false when absent or non-integer.
func argInt(args map[string]json.RawMessage, key string) (int64, bool) {
	raw, ok := args[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseInt(strings.TrimSpace(string(raw)), 10, 64)
	return v, err == nil
}

// argFloat reads one numeric arg; false when absent or non-numeric.
func argFloat(args map[string]json.RawMessage, key string) (float64, bool) {
	raw, ok := args[key]
	if !ok {
		return 0, false
	}
	v, err := strconv.ParseFloat(strings.TrimSpace(string(raw)), 64)
	return v, err == nil
}

// argString reads one string arg; false when absent or not a string.
func argString(args map[string]json.RawMessage, key string) (string, bool) {
	raw, ok := args[key]
	if !ok {
		return "", false
	}
	var s string
	if json.Unmarshal(raw, &s) != nil {
		return "", false
	}
	return s, true
}

// parseArgs rebuilds span attributes from a decoded args object.
// Integers round-trip as I attrs, other numbers as F, strings as S;
// keys are sorted because the JSON object decode loses file order.
func parseArgs(args map[string]json.RawMessage) []obs.Attr {
	if len(args) == 0 {
		return nil
	}
	keys := make([]string, 0, len(args))
	for k := range args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	attrs := make([]obs.Attr, 0, len(keys))
	for _, k := range keys {
		raw := strings.TrimSpace(string(args[k]))
		switch {
		case strings.HasPrefix(raw, `"`):
			var s string
			if json.Unmarshal(args[k], &s) == nil {
				attrs = append(attrs, obs.S(k, s))
			}
		case !strings.ContainsAny(raw, ".eE"):
			if v, err := strconv.ParseInt(raw, 10, 64); err == nil {
				attrs = append(attrs, obs.I(k, v))
			}
		default:
			if v, err := strconv.ParseFloat(raw, 64); err == nil {
				attrs = append(attrs, obs.F(k, v))
			}
		}
	}
	return attrs
}

// ParsePrometheus reads a metrics dump previously written by
// obs.Registry.WritePrometheus into a flat series-name → value map
// (label suffixes kept verbatim, e.g.
// `merge_round_bytes_sent_total{round="0"}`).
func ParsePrometheus(r io.Reader) (map[string]float64, error) {
	out := map[string]float64{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			return nil, fmt.Errorf("analyze: bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("analyze: bad metrics value in %q", line)
		}
		out[line[:i]] = v
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("analyze: read metrics: %w", err)
	}
	return out, nil
}
