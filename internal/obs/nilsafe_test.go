package obs

import (
	"bytes"
	"io"
	"reflect"
	"testing"
)

func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("no samples", func(t *testing.T) {
		h := &Histogram{}
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Errorf("empty Quantile(%g) = %d, want 0", q, got)
			}
		}
		if (*Histogram)(nil).Quantile(0.5) != 0 {
			t.Error("nil Quantile != 0")
		}
	})
	t.Run("one sample", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(100)
		// A single observation lands in the [65,128] bucket; every
		// quantile reads the same boundary, including clamped-out-of-
		// range q.
		for _, q := range []float64{-1, 0, 0.5, 0.95, 1, 2} {
			if got := h.Quantile(q); got != 128 {
				t.Errorf("Quantile(%g) = %d, want 128", q, got)
			}
		}
	})
	t.Run("all equal", func(t *testing.T) {
		h := &Histogram{}
		for i := 0; i < 10; i++ {
			h.Observe(64) // a power of two is its own bucket boundary
		}
		for _, q := range []float64{0, 0.5, 0.95, 1} {
			if got := h.Quantile(q); got != 64 {
				t.Errorf("Quantile(%g) = %d, want 64", q, got)
			}
		}
	})
	t.Run("p95 under 20 samples", func(t *testing.T) {
		// With n < 20, ceil(0.95·n) = n: the p95 must include the
		// largest sample, not round it away.
		h := &Histogram{}
		for i := 0; i < 4; i++ {
			h.Observe(1)
		}
		h.Observe(1024)
		if got := h.Quantile(0.95); got != 1024 {
			t.Errorf("Quantile(0.95) = %d, want 1024", got)
		}
		if got := h.Quantile(0.5); got != 1 {
			t.Errorf("Quantile(0.5) = %d, want 1", got)
		}
	})
	t.Run("negative counts as zero", func(t *testing.T) {
		h := &Histogram{}
		h.Observe(-7)
		if got, want := h.Sum(), int64(0); got != want {
			t.Errorf("Sum = %d, want %d", got, want)
		}
		if got := h.Quantile(1); got != 1 {
			t.Errorf("Quantile(1) = %d, want 1 (the v<=1 bucket)", got)
		}
	})
}

// TestNilSafety calls every exported method of every observability type
// on a nil receiver. Observability is optional everywhere in the
// pipeline, so the entire API must be inert — never panic — when
// tracing is off and all handles are nil.
func TestNilSafety(t *testing.T) {
	targets := []struct {
		name string
		v    interface{}
	}{
		{"*Observer", (*Observer)(nil)},
		{"*Tracer", (*Tracer)(nil)},
		{"*RankTracer", (*RankTracer)(nil)},
		{"*Registry", (*Registry)(nil)},
		{"*FlowRecorder", (*FlowRecorder)(nil)},
		{"*Counter", (*Counter)(nil)},
		{"*Gauge", (*Gauge)(nil)},
		{"*Histogram", (*Histogram)(nil)},
	}
	writer := reflect.TypeOf((*io.Writer)(nil)).Elem()
	for _, target := range targets {
		rv := reflect.ValueOf(target.v)
		rt := rv.Type()
		if rt.NumMethod() == 0 {
			t.Errorf("%s has no exported methods — table out of date?", target.name)
		}
		for i := 0; i < rt.NumMethod(); i++ {
			m := rt.Method(i)
			t.Run(target.name+"."+m.Name, func(t *testing.T) {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("%s.%s panicked on nil receiver: %v", target.name, m.Name, r)
					}
				}()
				mt := m.Func.Type()
				args := []reflect.Value{rv}
				n := mt.NumIn()
				if mt.IsVariadic() {
					n-- // calling with no variadic args is the edge case we want
				}
				for j := 1; j < n; j++ {
					in := mt.In(j)
					if in == writer {
						args = append(args, reflect.ValueOf(&bytes.Buffer{}))
						continue
					}
					args = append(args, reflect.Zero(in))
				}
				m.Func.Call(args)
			})
		}
	}
	// The span handle a nil tracer hands out must be inert too.
	var tr *RankTracer
	tr.Begin("x", 0).End(1)
	OpenSpan{}.End(0)
}

// TestNilSafetyValues pins the values the nil API returns — not just
// that it survives: nil handles propagate nil, reads come back zero,
// and the writers emit empty-but-valid documents.
func TestNilSafetyValues(t *testing.T) {
	var o *Observer
	if o.Rank(3) != nil || o.Registry() != nil || o.Tracer() != nil || o.Logger() != nil {
		t.Error("nil Observer must hand out nil handles")
	}
	var rt *RankTracer
	if rt.Enabled() {
		t.Error("nil RankTracer reports enabled")
	}
	var tr *Tracer
	if tr.Procs() != 0 || tr.Rank(0) != nil || tr.Spans(0) != nil || tr.Instants(0) != nil {
		t.Error("nil Tracer leaks state")
	}
	if tr.Flows() != nil {
		t.Error("nil Tracer must hand out a nil flow recorder")
	}
	var fr *FlowRecorder
	if id := fr.Begin(0, 0, 1, 0, 8, FlowP2P, 0, 1); id != (FlowID{}) {
		t.Errorf("nil FlowRecorder Begin = %+v, want zero", id)
	}
	fr.Complete(FlowID{}, 0, 1)
	if fr.Flows() != nil || fr.Started() != 0 || fr.Procs() != 0 {
		t.Error("nil FlowRecorder leaks state")
	}
	if tl := tr.Timeline(8); tl != nil {
		t.Errorf("nil Tracer Timeline = %v, want nil", tl)
	}
	for _, st := range tr.StageStats("read", "merge") {
		if st != (StageStat{Name: st.Name}) {
			t.Errorf("nil Tracer StageStats entry not zero: %+v", st)
		}
	}
	var reg *Registry
	reg.Counter("c").Add(1)
	reg.Histogram("h").Observe(1)
	if reg.CounterValue("c") != 0 || reg.GaugeValue("g") != 0 {
		t.Error("nil Registry returned nonzero values")
	}
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("nil Registry wrote %q, want nothing", buf.String())
	}
	buf.Reset()
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte("traceEvents")) {
		t.Errorf("nil Tracer trace not valid: %q", buf.String())
	}
}
