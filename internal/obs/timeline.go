package obs

import (
	"encoding/json"
	"io"
)

// defaultTimelineBuckets is the bucket count /timeline and the CLIs use
// when none is requested: fine enough to show phase structure at every
// scale the bench sweep runs, coarse enough that a 512-rank dump stays
// a few KB.
const defaultTimelineBuckets = 64

// maxTimelineBuckets bounds client-requested resolution.
const maxTimelineBuckets = 4096

// TimelineBucket is one virtual-time slice of a run: the communication
// and activity that happened inside [Start, End).
type TimelineBucket struct {
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Sends binned by injection time, receives by completion time.
	MsgsSent  int64 `json:"msgs_sent"`
	BytesSent int64 `json:"bytes_sent"`
	MsgsRecv  int64 `json:"msgs_recv"`
	BytesRecv int64 `json:"bytes_recv"`
	// BytesInFlight is the payload volume sent but not yet consumed at
	// the bucket's start (orphaned flows count until end of run).
	BytesInFlight int64 `json:"bytes_in_flight"`
	// ActiveSpans counts spans covering the bucket's start across all
	// rank tracks.
	ActiveSpans int `json:"active_spans"`
	// WaitSeconds is the total receiver-blocked time overlapping the
	// bucket, summed over flows (and ranks).
	WaitSeconds float64 `json:"wait_seconds"`
}

// BuildTimeline aggregates span tracks and flow records into a bucketed
// virtual-time timeline. It is a pure function of its inputs — equal
// snapshots produce equal timelines — so it can run on a live snapshot
// (the /timeline endpoint) or on re-parsed trace files (msinsight)
// alike. buckets <= 0 selects the default resolution.
func BuildTimeline(spans [][]Span, flows []Flow, buckets int) []TimelineBucket {
	if buckets <= 0 {
		buckets = defaultTimelineBuckets
	}
	if buckets > maxTimelineBuckets {
		buckets = maxTimelineBuckets
	}
	makespan := 0.0
	for _, track := range spans {
		for _, s := range track {
			if end := float64(s.End); end > makespan {
				makespan = end
			}
		}
	}
	for _, f := range flows {
		if end := float64(f.RecvVT); f.Done && end > makespan {
			makespan = end
		}
		if end := float64(f.ArriveVT); end > makespan {
			makespan = end
		}
	}
	if makespan <= 0 {
		return nil
	}
	width := makespan / float64(buckets)
	out := make([]TimelineBucket, buckets)
	for i := range out {
		out[i].Start = float64(i) * width
		out[i].End = float64(i+1) * width
	}
	idx := func(t float64) int {
		i := int(t / width)
		if i < 0 {
			i = 0
		}
		if i >= buckets {
			i = buckets - 1
		}
		return i
	}
	for _, track := range spans {
		for _, s := range track {
			start, end := float64(s.Start), float64(s.End)
			for i := idx(start); i < buckets && out[i].Start < end; i++ {
				if out[i].Start >= start {
					out[i].ActiveSpans++
				}
			}
		}
	}
	for _, f := range flows {
		send := float64(f.SendVT)
		out[idx(send)].MsgsSent++
		out[idx(send)].BytesSent += int64(f.Bytes)
		recv := makespan // orphans stay in flight to end of run
		if f.Done {
			recv = float64(f.RecvVT)
			out[idx(recv)].MsgsRecv++
			out[idx(recv)].BytesRecv += int64(f.Bytes)
		}
		for i := idx(send) + 1; i < buckets && out[i].Start < recv; i++ {
			// In flight at a bucket boundary: sent strictly before it,
			// consumed at or after it.
			out[i].BytesInFlight += int64(f.Bytes)
		}
		if w := f.WaitSeconds(); w > 0 {
			wStart := float64(f.RecvStartVT)
			wEnd := wStart + w
			for i := idx(wStart); i < buckets && out[i].Start < wEnd; i++ {
				lo, hi := out[i].Start, out[i].End
				if lo < wStart {
					lo = wStart
				}
				if hi > wEnd {
					hi = wEnd
				}
				if hi > lo {
					out[i].WaitSeconds += hi - lo
				}
			}
		}
	}
	return out
}

// Timeline builds the bucketed timeline from a snapshot of this
// tracer's spans and flows. Safe mid-run; nil-safe (returns nil).
func (t *Tracer) Timeline(buckets int) []TimelineBucket {
	if t == nil {
		return nil
	}
	spans := make([][]Span, t.Procs())
	for id := range spans {
		spans[id] = t.Spans(id)
	}
	return BuildTimeline(spans, t.Flows().Flows(), buckets)
}

// WriteTimelineJSON writes the bucketed timeline as one deterministic
// JSON document, one bucket per line.
func (t *Tracer) WriteTimelineJSON(w io.Writer, buckets int) error {
	return WriteTimelineJSON(w, t.Timeline(buckets))
}

// WriteTimelineJSON renders a timeline (from any source — a live
// tracer or re-parsed exports) as JSON.
func WriteTimelineJSON(w io.Writer, tl []TimelineBucket) error {
	if _, err := io.WriteString(w, `{"buckets":[`); err != nil {
		return err
	}
	for i, b := range tl {
		if i > 0 {
			if _, err := io.WriteString(w, ","); err != nil {
				return err
			}
		}
		if _, err := io.WriteString(w, "\n"); err != nil {
			return err
		}
		enc, err := json.Marshal(b)
		if err != nil {
			return err
		}
		if _, err := w.Write(enc); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
