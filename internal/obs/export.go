package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"parms/internal/vtime"
)

// WriteChromeTrace emits the tracer's contents in the Chrome
// trace-event JSON format (the "JSON Array Format" with a traceEvents
// wrapper), loadable directly in Perfetto and chrome://tracing. Each
// rank becomes one track (pid 0, tid = rank) of complete ("X") span
// events and thread-scoped instant ("i") events; timestamps are virtual
// microseconds. Output is byte-for-byte deterministic for a given
// tracer state: tracks ascend by rank, events within a track ascend by
// timestamp (longer spans first on ties, so nested spans follow their
// parents), and attributes keep their recorded order.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	emit := func(line string) {
		if !first {
			bw.WriteString(",")
		}
		first = false
		bw.WriteString("\n")
		bw.WriteString(line)
	}
	emit(`{"name":"process_name","ph":"M","pid":0,"tid":0,"args":{"name":"parms virtual cluster"}}`)
	for id := 0; id < t.Procs(); id++ {
		emit(fmt.Sprintf(`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":"rank %d"}}`, id, id))
	}
	for id := 0; id < t.Procs(); id++ {
		for _, ev := range mergeTrack(t.Spans(id), t.Instants(id)) {
			emit(ev.json(id))
		}
	}
	// Flow events last, ascending by (emitter, seq): one "s" on the
	// source track at injection time and one binding "f" on the
	// destination track at consumption time, so Perfetto draws an arrow
	// per message. Only completed flows export — an orphan (dropped
	// duplicate, cancelled speculation payload) has no consumption
	// point to bind to, and tracecheck treats an unpaired "s" as a
	// defect.
	for _, f := range t.Flows().Flows() {
		if !f.Done {
			continue
		}
		emit(f.startJSON())
		emit(f.finishJSON())
	}
	bw.WriteString("\n]}\n")
	return bw.Flush()
}

// flowEventID is the Chrome-trace flow id: emitter in the high bits,
// sequence in the low, rendered as a decimal string so consumers never
// round it through a float.
func flowEventID(f Flow) string {
	return strconv.FormatInt(int64(f.Emitter)<<32|(f.Seq&0xffffffff), 10)
}

// startJSON renders the ph:"s" half of a flow pair. The args carry the
// full flow record (arrive/recv_start in the same fixed-point
// microseconds as ts), so ParseChromeTrace round-trips flows without a
// side channel.
func (f Flow) startJSON() string {
	var b strings.Builder
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote("flow:" + f.Kind))
	fmt.Fprintf(&b, `,"cat":"flow","ph":"s","id":"%s","pid":0,"tid":%d,"ts":%s`,
		flowEventID(f), f.Src, micros(f.SendVT))
	fmt.Fprintf(&b, `,"args":{"seq":%d,"emitter":%d,"src":%d,"dst":%d,"tag":%d,"bytes":%d,"kind":%s,"arrive":%s,"recv_start":%s}}`,
		f.Seq, f.Emitter, f.Src, f.Dst, f.Tag, f.Bytes,
		strconv.Quote(f.Kind), micros(f.ArriveVT), micros(f.RecvStartVT))
	return b.String()
}

// finishJSON renders the ph:"f" half; bp:"e" binds the arrow to the
// enclosing slice on the destination track.
func (f Flow) finishJSON() string {
	var b strings.Builder
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote("flow:" + f.Kind))
	fmt.Fprintf(&b, `,"cat":"flow","ph":"f","bp":"e","id":"%s","pid":0,"tid":%d,"ts":%s}`,
		flowEventID(f), f.Dst, micros(f.RecvVT))
	return b.String()
}

// trackEvent is one span or instant flattened for export.
type trackEvent struct {
	name  string
	ts    vtime.Time
	dur   vtime.Time // spans only
	span  bool
	attrs []Attr
}

func (e trackEvent) json(tid int) string {
	var b strings.Builder
	b.WriteString(`{"name":`)
	b.WriteString(strconv.Quote(e.name))
	if e.span {
		fmt.Fprintf(&b, `,"ph":"X","pid":0,"tid":%d,"ts":%s,"dur":%s`,
			tid, micros(e.ts), micros(e.dur))
	} else {
		fmt.Fprintf(&b, `,"ph":"i","s":"t","pid":0,"tid":%d,"ts":%s`, tid, micros(e.ts))
	}
	if len(e.attrs) > 0 {
		b.WriteString(`,"args":{`)
		for i, a := range e.attrs {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(a.Key))
			b.WriteByte(':')
			switch a.kind {
			case 'i':
				b.WriteString(strconv.FormatInt(a.i, 10))
			case 'f':
				b.WriteString(strconv.FormatFloat(a.f, 'g', -1, 64))
			default:
				b.WriteString(strconv.Quote(a.s))
			}
		}
		b.WriteByte('}')
	}
	b.WriteByte('}')
	return b.String()
}

// micros renders a virtual time as fixed-point microseconds with
// nanosecond resolution — fixed-point so event ordering survives the
// format and re-parsing never sees exponents.
func micros(t vtime.Time) string {
	return strconv.FormatFloat(float64(t)*1e6, 'f', 3, 64)
}

// mergeTrack interleaves one rank's spans and instants into a single
// timestamp-sorted event stream. Sorting is stable; span ties order by
// descending duration so enclosing spans precede the spans they contain.
func mergeTrack(spans []Span, instants []Instant) []trackEvent {
	evs := make([]trackEvent, 0, len(spans)+len(instants))
	for _, s := range spans {
		evs = append(evs, trackEvent{name: s.Name, ts: s.Start, dur: s.End - s.Start, span: true, attrs: s.Attrs})
	}
	for _, i := range instants {
		evs = append(evs, trackEvent{name: i.Name, ts: i.Ts, attrs: i.Attrs})
	}
	sort.SliceStable(evs, func(a, b int) bool {
		if evs[a].ts != evs[b].ts {
			return evs[a].ts < evs[b].ts
		}
		return evs[a].dur > evs[b].dur
	})
	return evs
}

// WritePrometheus dumps the registry in the Prometheus text exposition
// format, metrics sorted by name so equal registry states produce equal
// bytes. Counter and gauge names may carry {label} suffixes built with
// Label; histograms expand into _bucket/_sum/_count series with
// power-of-two le boundaries.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if r == nil {
		return bw.Flush()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	typed := make(map[string]bool)
	header := func(name, kind string) {
		base := name
		if i := strings.IndexByte(base, '{'); i >= 0 {
			base = base[:i]
		}
		if !typed[base] {
			typed[base] = true
			fmt.Fprintf(bw, "# TYPE %s %s\n", base, kind)
		}
	}
	for _, name := range sortedKeys(r.counters) {
		header(name, "counter")
		fmt.Fprintf(bw, "%s %d\n", name, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		header(name, "gauge")
		fmt.Fprintf(bw, "%s %s\n", name, strconv.FormatFloat(r.gauges[name].Value(), 'g', -1, 64))
	}
	for _, name := range sortedKeys(r.hists) {
		h := r.hists[name]
		header(name, "histogram")
		cum := int64(0)
		for i := 0; i <= histBuckets; i++ {
			n := h.buckets[i].Load()
			cum += n
			if n == 0 && i < histBuckets {
				continue
			}
			le := "+Inf"
			if i < histBuckets {
				le = strconv.FormatInt(int64(1)<<i, 10)
			}
			fmt.Fprintf(bw, "%s_bucket{le=%q} %d\n", name, le, cum)
		}
		fmt.Fprintf(bw, "%s_sum %d\n", name, h.Sum())
		fmt.Fprintf(bw, "%s_count %d\n", name, h.Count())
	}
	return bw.Flush()
}

// StageStat summarizes the per-rank durations of one span name: the
// paper's stage decomposition plus the distribution a single max hides.
// Imbalance is max/mean, the efficiency metric of section IV-A (1.0 =
// perfectly balanced).
type StageStat struct {
	Name      string
	Count     int
	Mean      float64
	P50       float64
	P95       float64
	Max       float64
	Total     float64
	MaxEnd    float64 // latest span end across ranks, = the stage boundary
	Imbalance float64
}

// StageStats aggregates span durations by name across all ranks. With
// explicit names, stats come back in that order (missing names have
// Count 0); with none, every recorded span name is reported, ordered by
// earliest span start.
func (t *Tracer) StageStats(names ...string) []StageStat {
	type agg struct {
		durs   []float64
		maxEnd float64
		first  vtime.Time
	}
	byName := make(map[string]*agg)
	order := []string{}
	for id := 0; id < t.Procs(); id++ {
		for _, s := range t.Spans(id) {
			a, ok := byName[s.Name]
			if !ok {
				a = &agg{first: s.Start}
				byName[s.Name] = a
				order = append(order, s.Name)
			}
			if s.Start < a.first {
				a.first = s.Start
			}
			a.durs = append(a.durs, s.Duration())
			if end := float64(s.End); end > a.maxEnd {
				a.maxEnd = end
			}
		}
	}
	if len(names) == 0 {
		sort.SliceStable(order, func(i, j int) bool {
			return byName[order[i]].first < byName[order[j]].first
		})
		names = order
	}
	stats := make([]StageStat, 0, len(names))
	for _, name := range names {
		st := StageStat{Name: name}
		if a, ok := byName[name]; ok {
			sort.Float64s(a.durs)
			st.Count = len(a.durs)
			st.MaxEnd = a.maxEnd
			for _, d := range a.durs {
				st.Total += d
			}
			st.Mean = st.Total / float64(st.Count)
			st.P50 = quantile(a.durs, 0.50)
			st.P95 = quantile(a.durs, 0.95)
			st.Max = a.durs[len(a.durs)-1]
			if st.Mean > 0 {
				st.Imbalance = st.Max / st.Mean
			}
		}
		stats = append(stats, st)
	}
	return stats
}

// quantile returns the q-quantile of sorted xs (nearest-rank method).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(xs)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// WriteStageStats renders stats as the per-stage summary table the CLIs
// print: durations across ranks with p50/p95/max and the imbalance
// ratio.
func WriteStageStats(w io.Writer, stats []StageStat) {
	fmt.Fprintf(w, "%-14s %6s %10s %10s %10s %10s %9s\n",
		"stage", "spans", "p50", "p95", "max", "mean", "imbalance")
	for _, st := range stats {
		if st.Count == 0 {
			fmt.Fprintf(w, "%-14s %6d %10s %10s %10s %10s %9s\n",
				st.Name, 0, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(w, "%-14s %6d %9.4fs %9.4fs %9.4fs %9.4fs %9.2f\n",
			st.Name, st.Count, st.P50, st.P95, st.Max, st.Mean, st.Imbalance)
	}
}
