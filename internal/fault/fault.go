// Package fault provides a deterministic, seeded fault-injection plan
// for the virtual cluster. The paper's system ran on up to 32,768 Blue
// Gene/P ranks, a scale where rank failures, lost messages and flaky
// storage are routine; this package lets a test or experiment declare
// exactly which of those faults occur — crash rank 5 during the compute
// stage, drop the first merge payload from rank 3 to rank 0, corrupt a
// message, fail the first two writes to the output file — and the
// substrate (internal/mpsim) injects them at the matching points.
//
// Injection lives in the substrate, not the algorithm: the merge and
// pipeline code only ever sees the *consequences* (a receive timeout, a
// checksum mismatch, an I/O error) and must recover through the same
// paths a production deployment would use.
//
// Determinism: all random choices draw from a single seeded generator
// guarded by the plan's mutex. Rules targeted at a concrete
// (source, destination, ordinal) triple are fully deterministic because
// one rank's sends to one peer are program-ordered; probabilistic rules
// are seeded but depend on goroutine scheduling order across ranks.
package fault

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
)

// MsgAction is the fate of one point-to-point message.
type MsgAction int

const (
	// Deliver passes the message through unharmed.
	Deliver MsgAction = iota
	// Drop discards the message; the sender is not told.
	Drop
	// Duplicate delivers the message twice.
	Duplicate
	// Delay delivers the message with extra virtual latency.
	Delay
	// Corrupt flips bytes in a copy of the payload before delivery.
	Corrupt
)

func (a MsgAction) String() string {
	switch a {
	case Drop:
		return "drop"
	case Duplicate:
		return "duplicate"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	default:
		return "deliver"
	}
}

// FSOp distinguishes filesystem fault targets.
type FSOp int

const (
	// FSRead faults ReadAt operations.
	FSRead FSOp = iota
	// FSWrite faults WriteAt operations.
	FSWrite
)

func (o FSOp) String() string {
	if o == FSWrite {
		return "write"
	}
	return "read"
}

// Any is the wildcard for rule fields matching ranks.
const Any = -1

// msgRule matches point-to-point messages. Src/Dst of Any match every
// rank; Nth (1-based) selects the nth matching message, 0 selects every
// match; Prob, when nonzero, fires with that probability per match.
type msgRule struct {
	src, dst   int
	nth        int
	prob       float64
	action     MsgAction
	extraDelay float64
	seen       int
}

// crashRule crashes a rank at the first checkpoint whose stage matches
// (empty stage = any) and whose virtual time is at least after.
type crashRule struct {
	rank  int
	stage string
	after float64
	fired bool
}

// fsRule fails filesystem operations. times is how many matching
// operations fail transiently; times < 0 means every match fails
// permanently. With corrupt set, the rule does not fail the operation:
// it bit-flips the bytes a read returns instead (times reads, or every
// read when times < 0).
type fsRule struct {
	op      FSOp
	name    string // "" = any file
	times   int
	count   int
	corrupt bool
}

// Plan is a seeded set of fault rules consulted by the mpsim substrate.
// Build one with NewPlan and the chainable rule methods, then hand it to
// mpsim.Config.Faults before the run. A nil *Plan is valid everywhere
// and injects nothing.
type Plan struct {
	mu      sync.Mutex
	rng     *rand.Rand
	msgs    []*msgRule
	crashes []*crashRule
	fs      []*fsRule
	penalty float64
	log     []string
}

// NewPlan creates an empty plan whose random choices (corruption
// positions, probabilistic rules) derive from seed.
func NewPlan(seed int64) *Plan {
	return &Plan{rng: rand.New(rand.NewSource(seed))}
}

// CrashRank crashes the rank at its first checkpoint of the named stage
// (empty = its next checkpoint of any stage). The rank loses all
// application state there and continues as a restarted process.
func (p *Plan) CrashRank(rank int, stage string) *Plan {
	return p.CrashRankAfter(rank, stage, 0)
}

// CrashRankAfter crashes the rank at its first matching checkpoint whose
// virtual time is at least after seconds.
func (p *Plan) CrashRankAfter(rank int, stage string, after float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.crashes = append(p.crashes, &crashRule{rank: rank, stage: stage, after: after})
	return p
}

// RestartPenalty sets the virtual seconds a crashed rank spends
// restarting before it re-enters the program.
func (p *Plan) RestartPenalty(seconds float64) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.penalty = seconds
	return p
}

// DropMessage drops the nth message from src to dst (Any wildcards
// match every rank; nth 0 drops every match).
func (p *Plan) DropMessage(src, dst, nth int) *Plan {
	return p.addMsgRule(&msgRule{src: src, dst: dst, nth: nth, action: Drop})
}

// DuplicateMessage delivers the nth message from src to dst twice.
func (p *Plan) DuplicateMessage(src, dst, nth int) *Plan {
	return p.addMsgRule(&msgRule{src: src, dst: dst, nth: nth, action: Duplicate})
}

// DelayMessage adds extra virtual seconds to the nth message from src
// to dst, enough to push it past a receiver's deadline if larger than
// the receive timeout.
func (p *Plan) DelayMessage(src, dst, nth int, seconds float64) *Plan {
	return p.addMsgRule(&msgRule{src: src, dst: dst, nth: nth, action: Delay, extraDelay: seconds})
}

// CorruptMessage flips random bytes in the nth message from src to dst.
func (p *Plan) CorruptMessage(src, dst, nth int) *Plan {
	return p.addMsgRule(&msgRule{src: src, dst: dst, nth: nth, action: Corrupt})
}

// DropProbability drops every message independently with probability
// prob. Seeded but schedule-dependent; prefer the targeted rules in
// deterministic tests.
func (p *Plan) DropProbability(prob float64) *Plan {
	return p.addMsgRule(&msgRule{src: Any, dst: Any, prob: prob, action: Drop})
}

func (p *Plan) addMsgRule(r *msgRule) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.msgs = append(p.msgs, r)
	return p
}

// FailRead makes the next times reads of the named file (empty = any)
// fail transiently; times < 0 makes every read fail permanently.
func (p *Plan) FailRead(name string, times int) *Plan {
	return p.addFSRule(&fsRule{op: FSRead, name: name, times: times})
}

// FailWrite is FailRead for writes.
func (p *Plan) FailWrite(name string, times int) *Plan {
	return p.addFSRule(&fsRule{op: FSWrite, name: name, times: times})
}

// CorruptRead makes the next times reads of the named file (empty =
// any) return bit-flipped copies of the stored bytes; times < 0
// corrupts every read. The file itself is never mutated, and the read
// does not fail — readers must detect the damage through checksums
// (the PCSFM2 payload and footer CRCs) and treat the data as invalid.
func (p *Plan) CorruptRead(name string, times int) *Plan {
	return p.addFSRule(&fsRule{op: FSRead, name: name, times: times, corrupt: true})
}

func (p *Plan) addFSRule(r *fsRule) *Plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fs = append(p.fs, r)
	return p
}

// Delivery is one copy of a message the plan lets through. ExtraDelay is
// added to the modeled arrival time.
type Delivery struct {
	Data       []byte
	ExtraDelay float64
}

// OnSend decides the fate of a message about to be enqueued and returns
// the deliveries to perform: none for a drop, one for normal, delayed or
// corrupted delivery, two for a duplicate. The payload is never mutated;
// a corrupted delivery carries a mutated copy. Safe on a nil plan.
func (p *Plan) OnSend(src, dst, tag int, data []byte) []Delivery {
	if p == nil {
		return []Delivery{{Data: data}}
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.msgs {
		if (r.src != Any && r.src != src) || (r.dst != Any && r.dst != dst) {
			continue
		}
		r.seen++
		if r.nth != 0 && r.seen != r.nth {
			continue
		}
		if r.prob > 0 && p.rng.Float64() >= r.prob {
			continue
		}
		p.logf("%s msg src=%d dst=%d tag=%d len=%d", r.action, src, dst, tag, len(data))
		switch r.action {
		case Drop:
			return nil
		case Duplicate:
			return []Delivery{{Data: data}, {Data: data}}
		case Delay:
			return []Delivery{{Data: data, ExtraDelay: r.extraDelay}}
		case Corrupt:
			return []Delivery{{Data: p.corrupt(data)}}
		}
	}
	return []Delivery{{Data: data}}
}

// corrupt returns a copy of data with one to four bytes flipped (or a
// single junk byte for an empty payload). Callers hold p.mu.
func (p *Plan) corrupt(data []byte) []byte {
	if len(data) == 0 {
		return []byte{0x5a}
	}
	out := append([]byte(nil), data...)
	flips := 1 + p.rng.Intn(4)
	for i := 0; i < flips; i++ {
		out[p.rng.Intn(len(out))] ^= byte(1 + p.rng.Intn(255))
	}
	return out
}

// OnCheckpoint reports whether the rank crashes at this checkpoint. Each
// crash rule fires at most once. Safe on a nil plan.
func (p *Plan) OnCheckpoint(rank int, stage string, now float64) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.crashes {
		if r.fired || r.rank != rank || now < r.after {
			continue
		}
		if r.stage != "" && r.stage != stage {
			continue
		}
		r.fired = true
		p.logf("crash rank=%d stage=%s t=%.6f", rank, stage, now)
		return true
	}
	return false
}

// Penalty returns the configured virtual restart duration.
func (p *Plan) Penalty() float64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.penalty
}

// OnFS reports the injected error, if any, for one filesystem operation.
// Safe on a nil plan.
func (p *Plan) OnFS(op FSOp, name string) error {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.fs {
		if r.corrupt || r.op != op || (r.name != "" && r.name != name) {
			continue
		}
		if r.times < 0 {
			p.logf("fs %s %q permanent failure", op, name)
			return &FSError{Op: op, Name: name}
		}
		if r.count < r.times {
			r.count++
			p.logf("fs %s %q transient failure %d/%d", op, name, r.count, r.times)
			return &FSError{Op: op, Name: name, Transient: true}
		}
	}
	return nil
}

// OnFSRead gives the plan a chance to corrupt the bytes a successful
// read returns. The input slice is owned by the caller (already a
// copy), so corruption may mutate it in place via the plan's seeded
// flipper. Safe on a nil plan.
func (p *Plan) OnFSRead(name string, data []byte) []byte {
	if p == nil {
		return data
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, r := range p.fs {
		if !r.corrupt || r.op != FSRead || (r.name != "" && r.name != name) {
			continue
		}
		if r.times >= 0 {
			if r.count >= r.times {
				continue
			}
			r.count++
		}
		p.logf("fs corrupt read %q len=%d", name, len(data))
		return p.corrupt(data)
	}
	return data
}

func (p *Plan) logf(format string, args ...any) {
	p.log = append(p.log, fmt.Sprintf(format, args...))
}

// Injected returns a copy of the injection log: one line per fault the
// plan actually fired, in firing order.
func (p *Plan) Injected() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.log...)
}

// FSError is an injected filesystem failure. Transient errors model
// flaky storage and should be retried; permanent ones should surface.
type FSError struct {
	Op        FSOp
	Name      string
	Transient bool
}

func (e *FSError) Error() string {
	kind := "permanent"
	if e.Transient {
		kind = "transient"
	}
	return fmt.Sprintf("fault: injected %s %s error on %q", kind, e.Op, e.Name)
}

// IsTransient reports whether err is (or wraps) a transient injected
// filesystem error, the signal for retry-with-backoff.
func IsTransient(err error) bool {
	var fe *FSError
	return errors.As(err, &fe) && fe.Transient
}

// Report tallies the faults a run observed and recovered from. Each rank
// accumulates its own Report; the pipeline aggregates them into the
// run-level Result.FaultReport.
type Report struct {
	// RankCrashes counts checkpoints at which a rank lost its state.
	RankCrashes int
	// Timeouts counts receives that hit their deadline.
	Timeouts int
	// Corruptions counts framed payloads rejected by checksum or
	// deserialization.
	Corruptions int
	// Recomputes counts deterministic block-subtree reconstructions.
	Recomputes int
	// RecomputeCells totals the cells visited re-deriving lost blocks
	// from source data — the compute-side recovery cost a checkpoint
	// read replaces.
	RecomputeCells int64
	// CheckpointRestores counts lost subtrees served from a valid
	// merge-round checkpoint instead of a recompute.
	CheckpointRestores int
	// CheckpointBytesRead totals the checkpoint file bytes read by
	// successful restores — the I/O-side recovery cost.
	CheckpointBytesRead int64
	// CheckpointFallbacks counts restore probes that found no valid
	// checkpoint (missing, corrupted, or crash before the first
	// checkpointed round) and fell back to recompute.
	CheckpointFallbacks int
	// IORetries counts filesystem operations retried after transient
	// errors.
	IORetries int
	// LostBlocks lists blocks whose in-memory complex was lost to a
	// crash, drop or corruption (sorted, deduplicated after
	// aggregation).
	LostBlocks []int
	// RecoveredBlocks lists blocks rebuilt by recompute (sorted,
	// deduplicated after aggregation).
	RecoveredBlocks []int
	// RestoredBlocks lists blocks whose state came back from a
	// merge-round checkpoint read (sorted, deduplicated after
	// aggregation).
	RestoredBlocks []int
	// TimeoutWaitSeconds totals the virtual time roots actually spent
	// blocked in receives that then hit their deadline — the wait the
	// timed-out merge rounds paid, which straggler attribution needs
	// alongside the bare Timeouts count.
	TimeoutWaitSeconds float64
	// Migrations counts blocks this rank took over from a failed owner
	// through the ownership table.
	Migrations int
	// MigratedBlocks lists the blocks that changed owner after a rank
	// failure (sorted, deduplicated after aggregation).
	MigratedBlocks []int
	// SpeculationPayloadWins counts speculative recoveries cancelled
	// because the late payload arrived cheaper than the local recompute
	// would have finished.
	SpeculationPayloadWins int
	// SpeculationRecomputeWins counts speculative recoveries that beat
	// the late (or lost) payload and were committed.
	SpeculationRecomputeWins int
	// SpeculationCancelledSeconds totals the modeled virtual time spent
	// on speculative recoveries that lost the race — pure overhead the
	// speculation policy risks to win latency.
	SpeculationCancelledSeconds float64
	// CheckpointsGCed counts superseded checkpoint files reclaimed by
	// the checkpoint garbage collector.
	CheckpointsGCed int
	// CheckpointGCBytes totals the bytes those reclaimed files held.
	CheckpointGCBytes int64
}

// Merge folds another report into r.
func (r *Report) Merge(o *Report) {
	r.RankCrashes += o.RankCrashes
	r.Timeouts += o.Timeouts
	r.Corruptions += o.Corruptions
	r.Recomputes += o.Recomputes
	r.RecomputeCells += o.RecomputeCells
	r.CheckpointRestores += o.CheckpointRestores
	r.CheckpointBytesRead += o.CheckpointBytesRead
	r.CheckpointFallbacks += o.CheckpointFallbacks
	r.IORetries += o.IORetries
	r.LostBlocks = append(r.LostBlocks, o.LostBlocks...)
	r.RecoveredBlocks = append(r.RecoveredBlocks, o.RecoveredBlocks...)
	r.RestoredBlocks = append(r.RestoredBlocks, o.RestoredBlocks...)
	r.TimeoutWaitSeconds += o.TimeoutWaitSeconds
	r.Migrations += o.Migrations
	r.MigratedBlocks = append(r.MigratedBlocks, o.MigratedBlocks...)
	r.SpeculationPayloadWins += o.SpeculationPayloadWins
	r.SpeculationRecomputeWins += o.SpeculationRecomputeWins
	r.SpeculationCancelledSeconds += o.SpeculationCancelledSeconds
	r.CheckpointsGCed += o.CheckpointsGCed
	r.CheckpointGCBytes += o.CheckpointGCBytes
}

// Normalize sorts and deduplicates the block lists.
func (r *Report) Normalize() {
	r.LostBlocks = sortDedup(r.LostBlocks)
	r.RecoveredBlocks = sortDedup(r.RecoveredBlocks)
	r.RestoredBlocks = sortDedup(r.RestoredBlocks)
	r.MigratedBlocks = sortDedup(r.MigratedBlocks)
}

// Faulty reports whether anything at all was observed.
func (r *Report) Faulty() bool {
	return r.RankCrashes != 0 || r.Timeouts != 0 || r.Corruptions != 0 ||
		r.Recomputes != 0 || r.CheckpointRestores != 0 ||
		r.CheckpointFallbacks != 0 || r.IORetries != 0 ||
		len(r.LostBlocks) != 0 || len(r.RecoveredBlocks) != 0 ||
		len(r.RestoredBlocks) != 0 ||
		r.Migrations != 0 || len(r.MigratedBlocks) != 0 ||
		r.SpeculationPayloadWins != 0 || r.SpeculationRecomputeWins != 0
}

func (r *Report) String() string {
	return fmt.Sprintf(
		"crashes=%d timeouts=%d (wait=%.3fs) corruptions=%d recomputes=%d (cells=%d) restores=%d (bytes=%d, fallbacks=%d) ioRetries=%d migrations=%d spec=%d/%d (cancelled=%.3fs) gc=%d (bytes=%d) lost=%v recovered=%v restored=%v migrated=%v",
		r.RankCrashes, r.Timeouts, r.TimeoutWaitSeconds, r.Corruptions,
		r.Recomputes, r.RecomputeCells,
		r.CheckpointRestores, r.CheckpointBytesRead, r.CheckpointFallbacks,
		r.IORetries, r.Migrations,
		r.SpeculationRecomputeWins, r.SpeculationPayloadWins, r.SpeculationCancelledSeconds,
		r.CheckpointsGCed, r.CheckpointGCBytes,
		r.LostBlocks, r.RecoveredBlocks, r.RestoredBlocks, r.MigratedBlocks)
}

func sortDedup(xs []int) []int {
	if len(xs) == 0 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}
