package fault

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestNilPlanIsInert(t *testing.T) {
	var p *Plan
	d := p.OnSend(0, 1, 7, []byte{1, 2, 3})
	if len(d) != 1 || !bytes.Equal(d[0].Data, []byte{1, 2, 3}) || d[0].ExtraDelay != 0 {
		t.Fatalf("nil plan altered delivery: %+v", d)
	}
	if p.OnCheckpoint(0, "compute", 0) {
		t.Fatal("nil plan crashed a rank")
	}
	if err := p.OnFS(FSWrite, "x"); err != nil {
		t.Fatal(err)
	}
	if p.Penalty() != 0 || p.Injected() != nil {
		t.Fatal("nil plan has state")
	}
}

func TestTargetedMessageRules(t *testing.T) {
	p := NewPlan(1).
		DropMessage(3, 0, 2).
		DuplicateMessage(1, 0, 1).
		DelayMessage(2, 0, 1, 5.0).
		CorruptMessage(4, 0, 1)

	// Unrelated traffic passes.
	if d := p.OnSend(5, 6, 0, []byte("ok")); len(d) != 1 || string(d[0].Data) != "ok" {
		t.Fatalf("unrelated message altered: %+v", d)
	}
	// First 3→0 message passes, second is dropped, third passes.
	if d := p.OnSend(3, 0, 0, []byte("a")); len(d) != 1 {
		t.Fatalf("first 3->0 message: %+v", d)
	}
	if d := p.OnSend(3, 0, 0, []byte("b")); len(d) != 0 {
		t.Fatalf("second 3->0 message not dropped: %+v", d)
	}
	if d := p.OnSend(3, 0, 0, []byte("c")); len(d) != 1 {
		t.Fatalf("third 3->0 message: %+v", d)
	}
	// Duplicate.
	if d := p.OnSend(1, 0, 0, []byte("dup")); len(d) != 2 {
		t.Fatalf("1->0 not duplicated: %+v", d)
	}
	// Delay.
	d := p.OnSend(2, 0, 0, []byte("slow"))
	if len(d) != 1 || d[0].ExtraDelay != 5.0 {
		t.Fatalf("2->0 not delayed: %+v", d)
	}
	// Corrupt: payload differs, original untouched.
	orig := []byte("payload-payload-payload")
	d = p.OnSend(4, 0, 0, orig)
	if len(d) != 1 || bytes.Equal(d[0].Data, orig) {
		t.Fatalf("4->0 not corrupted: %+v", d)
	}
	if string(orig) != "payload-payload-payload" {
		t.Fatal("corruption mutated the caller's buffer")
	}
	if len(p.Injected()) != 4 {
		t.Fatalf("injection log: %v", p.Injected())
	}
}

func TestCorruptAlwaysDiffers(t *testing.T) {
	p := NewPlan(42)
	payload := make([]byte, 64)
	for i := 0; i < 500; i++ {
		p.CorruptMessage(0, 1, 0) // every message
		d := p.OnSend(0, 1, 0, payload)
		if len(d) != 1 || bytes.Equal(d[0].Data, payload) {
			t.Fatalf("iteration %d: corruption produced identical payload", i)
		}
	}
	if d := NewPlan(7).CorruptMessage(0, 1, 1).OnSend(0, 1, 0, nil); len(d) != 1 || len(d[0].Data) == 0 {
		t.Fatalf("empty payload corruption: %+v", d)
	}
}

func TestCrashRules(t *testing.T) {
	p := NewPlan(1).CrashRank(2, "compute").CrashRankAfter(3, "", 10.0)
	if p.OnCheckpoint(2, "read", 0) {
		t.Fatal("crashed at wrong stage")
	}
	if !p.OnCheckpoint(2, "compute", 1.0) {
		t.Fatal("did not crash at compute")
	}
	if p.OnCheckpoint(2, "compute", 2.0) {
		t.Fatal("crash rule fired twice")
	}
	if p.OnCheckpoint(3, "merge:0", 5.0) {
		t.Fatal("crashed before its virtual time")
	}
	if !p.OnCheckpoint(3, "merge:1", 11.0) {
		t.Fatal("did not crash after its virtual time")
	}
	p.RestartPenalty(2.5)
	if p.Penalty() != 2.5 {
		t.Fatal("penalty not stored")
	}
}

func TestFSRules(t *testing.T) {
	p := NewPlan(1).FailWrite("out", 2).FailRead("", 1)
	// First two writes to "out" fail transiently, then succeed.
	for i := 0; i < 2; i++ {
		err := p.OnFS(FSWrite, "out")
		if !IsTransient(err) {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := p.OnFS(FSWrite, "out"); err != nil {
		t.Fatalf("third write: %v", err)
	}
	if err := p.OnFS(FSWrite, "other"); err != nil {
		t.Fatalf("unmatched file: %v", err)
	}
	// Any-file read rule fires once.
	if err := p.OnFS(FSRead, "whatever"); !IsTransient(err) {
		t.Fatal("read rule did not fire")
	}
	if err := p.OnFS(FSRead, "whatever"); err != nil {
		t.Fatalf("read rule fired twice: %v", err)
	}
	// Permanent failure.
	perm := NewPlan(1).FailRead("dead", -1)
	for i := 0; i < 3; i++ {
		err := perm.OnFS(FSRead, "dead")
		if err == nil || IsTransient(err) {
			t.Fatalf("permanent failure %d: %v", i, err)
		}
	}
	wrapped := fmt.Errorf("outer: %w", &FSError{Op: FSWrite, Name: "x", Transient: true})
	if !IsTransient(wrapped) {
		t.Fatal("IsTransient does not unwrap")
	}
	if IsTransient(errors.New("plain")) {
		t.Fatal("IsTransient matched a plain error")
	}
}

func TestReportMergeNormalize(t *testing.T) {
	a := &Report{RankCrashes: 1, Timeouts: 2, LostBlocks: []int{5, 3}, RecoveredBlocks: []int{3}}
	b := &Report{Corruptions: 1, Recomputes: 2, IORetries: 4, LostBlocks: []int{3, 9}, RecoveredBlocks: []int{9, 5}}
	a.Merge(b)
	a.Normalize()
	if a.RankCrashes != 1 || a.Timeouts != 2 || a.Corruptions != 1 || a.Recomputes != 2 || a.IORetries != 4 {
		t.Fatalf("counts: %s", a)
	}
	if fmt.Sprint(a.LostBlocks) != "[3 5 9]" || fmt.Sprint(a.RecoveredBlocks) != "[3 5 9]" {
		t.Fatalf("blocks: %s", a)
	}
	if !a.Faulty() {
		t.Fatal("non-empty report not Faulty")
	}
	if (&Report{}).Faulty() {
		t.Fatal("empty report Faulty")
	}
	if !strings.Contains(a.String(), "lost=[3 5 9]") {
		t.Fatalf("String: %s", a)
	}
}

func TestDropProbabilityIsSeeded(t *testing.T) {
	outcomes := func(seed int64) []bool {
		p := NewPlan(seed).DropProbability(0.5)
		var out []bool
		for i := 0; i < 64; i++ {
			out = append(out, len(p.OnSend(0, 1, 0, nil)) == 0)
		}
		return out
	}
	a, b := outcomes(11), outcomes(11)
	drops := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed, different outcomes")
		}
		if a[i] {
			drops++
		}
	}
	if drops == 0 || drops == 64 {
		t.Fatalf("degenerate drop count %d", drops)
	}
}

func TestCorruptReadRule(t *testing.T) {
	p := NewPlan(3).CorruptRead("ckpt/a", 2)
	stored := []byte("checkpoint payload bytes, checksummed by the reader")
	// Corrupt rules never fail the operation itself.
	if err := p.OnFS(FSRead, "ckpt/a"); err != nil {
		t.Fatalf("corrupt rule failed the read: %v", err)
	}
	// The first two reads come back damaged; the stored bytes are
	// untouched and later reads are clean.
	for i := 0; i < 2; i++ {
		got := p.OnFSRead("ckpt/a", append([]byte(nil), stored...))
		if bytes.Equal(got, stored) {
			t.Fatalf("read %d not corrupted", i)
		}
		if len(got) != len(stored) {
			t.Fatalf("read %d resized: %d != %d", i, len(got), len(stored))
		}
	}
	if got := p.OnFSRead("ckpt/a", append([]byte(nil), stored...)); !bytes.Equal(got, stored) {
		t.Fatal("rule still firing past its count")
	}
	// Other files are unaffected.
	q := NewPlan(3).CorruptRead("ckpt/a", -1)
	if got := q.OnFSRead("other", append([]byte(nil), stored...)); !bytes.Equal(got, stored) {
		t.Fatal("rule matched the wrong file")
	}
	// times < 0 corrupts every read.
	for i := 0; i < 4; i++ {
		if got := q.OnFSRead("ckpt/a", append([]byte(nil), stored...)); bytes.Equal(got, stored) {
			t.Fatalf("permanent corrupt rule missed read %d", i)
		}
	}
	// A nil plan passes data through untouched.
	var nilPlan *Plan
	if got := nilPlan.OnFSRead("x", stored); !bytes.Equal(got, stored) {
		t.Fatal("nil plan mutated data")
	}
}
