package torus

import (
	"testing"
	"testing/quick"
)

func TestNewCoversRequestedNodes(t *testing.T) {
	for _, n := range []int{1, 2, 3, 7, 8, 100, 1024, 32768, 40960} {
		net := New(n)
		if net.Nodes() < n {
			t.Fatalf("New(%d) has only %d nodes", n, net.Nodes())
		}
		if net.Nodes() > 2*n && n > 1 {
			t.Fatalf("New(%d) wastes too many nodes: %d", n, net.Nodes())
		}
	}
}

func TestCoordRankRoundTrip(t *testing.T) {
	net := New(512)
	for rank := 0; rank < net.Nodes(); rank++ {
		x, y, z := net.Coord(rank)
		if back := net.Rank(x, y, z); back != rank {
			t.Fatalf("rank %d -> (%d,%d,%d) -> %d", rank, x, y, z, back)
		}
	}
}

func TestHopsProperties(t *testing.T) {
	net := New(64) // 4×4×4
	f := func(a, b uint16) bool {
		ra := int(a) % net.Nodes()
		rb := int(b) % net.Nodes()
		h := net.Hops(ra, rb)
		// Symmetry, identity, diameter bound.
		if h != net.Hops(rb, ra) {
			return false
		}
		if ra == rb && h != 0 {
			return false
		}
		if ra != rb && h < 1 {
			return false
		}
		return h <= net.Diameter()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	net := New(27)
	f := func(a, b, c uint16) bool {
		ra, rb, rc := int(a)%net.Nodes(), int(b)%net.Nodes(), int(c)%net.Nodes()
		return net.Hops(ra, rc) <= net.Hops(ra, rb)+net.Hops(rb, rc)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWraparoundShortensPaths(t *testing.T) {
	net, err := NewDims(8, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if h := net.Hops(0, 7); h != 1 {
		t.Fatalf("ring distance 0..7 on size-8 ring = %d, want 1 (wraparound)", h)
	}
	if h := net.Hops(0, 4); h != 4 {
		t.Fatalf("ring distance 0..4 = %d, want 4", h)
	}
}

func TestRouteMatchesHops(t *testing.T) {
	net := New(64)
	f := func(a, b uint16) bool {
		ra := int(a) % net.Nodes()
		rb := int(b) % net.Nodes()
		path := net.Route(ra, rb)
		if len(path) != net.Hops(ra, rb) {
			return false
		}
		if len(path) > 0 && path[len(path)-1] != rb {
			return false
		}
		// Each step moves exactly one hop.
		prev := ra
		for _, node := range path {
			if net.Hops(prev, node) != 1 {
				return false
			}
			prev = node
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBisectionLinks(t *testing.T) {
	net, _ := NewDims(4, 4, 4)
	if got := net.BisectionLinks(); got != 32 {
		t.Fatalf("4×4×4 bisection links = %d, want 32", got)
	}
	single, _ := NewDims(1, 1, 1)
	if got := single.BisectionLinks(); got != 0 {
		t.Fatalf("1-node bisection links = %d, want 0", got)
	}
}

func TestNewDimsRejectsInvalid(t *testing.T) {
	if _, err := NewDims(0, 4, 4); err == nil {
		t.Fatal("accepted zero dimension")
	}
}
