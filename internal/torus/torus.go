// Package torus models the 3D torus interconnect of an IBM Blue Gene/P
// class machine: rank-to-coordinate mapping, dimension-ordered routing,
// and hop-count metrics used by the communication cost model.
package torus

import "fmt"

// Network is a 3D torus of X×Y×Z nodes. Ranks are laid out in row-major
// (XYZ) order, matching the default BG/P mapping.
type Network struct {
	X, Y, Z int
}

// New builds a torus with at least n nodes, choosing near-cubic
// dimensions. The returned network may have more nodes than n (ranks
// beyond n simply go unused), mirroring partition allocation on real
// machines.
func New(n int) *Network {
	if n < 1 {
		n = 1
	}
	// Grow dimensions one at a time, keeping them as equal as possible,
	// preferring powers of two as real torus partitions do.
	x, y, z := 1, 1, 1
	for x*y*z < n {
		switch {
		case x <= y && x <= z:
			x *= 2
		case y <= z:
			y *= 2
		default:
			z *= 2
		}
	}
	return &Network{X: x, Y: y, Z: z}
}

// NewDims builds a torus with explicit dimensions.
func NewDims(x, y, z int) (*Network, error) {
	if x < 1 || y < 1 || z < 1 {
		return nil, fmt.Errorf("torus: invalid dimensions %d×%d×%d", x, y, z)
	}
	return &Network{X: x, Y: y, Z: z}, nil
}

// Nodes returns the total number of nodes in the torus.
func (n *Network) Nodes() int { return n.X * n.Y * n.Z }

// Coord returns the torus coordinates of a rank. Ranks wrap modulo the
// node count, so oversubscribed virtual clusters still map sensibly.
func (n *Network) Coord(rank int) (x, y, z int) {
	if rank < 0 {
		rank = -rank
	}
	rank %= n.Nodes()
	x = rank % n.X
	y = (rank / n.X) % n.Y
	z = rank / (n.X * n.Y)
	return
}

// Rank returns the rank at torus coordinates (x, y, z), which wrap.
func (n *Network) Rank(x, y, z int) int {
	x = mod(x, n.X)
	y = mod(y, n.Y)
	z = mod(z, n.Z)
	return x + y*n.X + z*n.X*n.Y
}

// Hops returns the number of torus links a message from rank a to rank b
// traverses under dimension-ordered routing (the minimal hop count per
// dimension, using wraparound links when shorter). A message to self
// takes zero hops.
func (n *Network) Hops(a, b int) int {
	ax, ay, az := n.Coord(a)
	bx, by, bz := n.Coord(b)
	return ringDist(ax, bx, n.X) + ringDist(ay, by, n.Y) + ringDist(az, bz, n.Z)
}

// Route returns the sequence of node ranks visited by dimension-ordered
// routing from a to b, excluding a itself and including b. It routes
// fully in X, then Y, then Z, taking the shorter ring direction in each
// dimension.
func (n *Network) Route(a, b int) []int {
	ax, ay, az := n.Coord(a)
	bx, by, bz := n.Coord(b)
	var path []int
	x, y, z := ax, ay, az
	step := func(cur, dst, size int) int {
		if cur == dst {
			return cur
		}
		fwd := mod(dst-cur, size)
		bwd := mod(cur-dst, size)
		if fwd <= bwd {
			return mod(cur+1, size)
		}
		return mod(cur-1, size)
	}
	for x != bx {
		x = step(x, bx, n.X)
		path = append(path, n.Rank(x, y, z))
	}
	for y != by {
		y = step(y, by, n.Y)
		path = append(path, n.Rank(x, y, z))
	}
	for z != bz {
		z = step(z, bz, n.Z)
		path = append(path, n.Rank(x, y, z))
	}
	return path
}

// Diameter returns the maximum hop count between any two nodes.
func (n *Network) Diameter() int {
	return n.X/2 + n.Y/2 + n.Z/2
}

// BisectionLinks returns the number of links crossing the smallest
// bisecting plane of the torus; it bounds achievable all-to-all
// bandwidth and appears in reports for context.
func (n *Network) BisectionLinks() int {
	// Cutting the torus across its longest dimension severs two links
	// (wraparound) per node pair in the cut plane.
	longest := n.X
	area := n.Y * n.Z
	if n.Y > longest {
		longest = n.Y
		area = n.X * n.Z
	}
	if n.Z > longest {
		longest = n.Z
		area = n.X * n.Y
	}
	links := 2 * area
	if longest == 1 {
		links = 0
	}
	return links
}

func (n *Network) String() string {
	return fmt.Sprintf("torus %d×%d×%d (%d nodes)", n.X, n.Y, n.Z, n.Nodes())
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}

// ringDist is the minimal distance between positions a and b on a ring
// of the given size.
func ringDist(a, b, size int) int {
	d := mod(a-b, size)
	if size-d < d {
		d = size - d
	}
	return d
}
