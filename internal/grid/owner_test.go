package grid

import (
	"reflect"
	"testing"
)

func TestOwnerTableMatchesBlockCyclic(t *testing.T) {
	for _, tc := range []struct{ nblocks, procs int }{
		{1, 1}, {8, 4}, {64, 16}, {17, 5}, {3, 8},
	} {
		tab := NewOwnerTable(tc.nblocks, tc.procs)
		for b := 0; b < tc.nblocks; b++ {
			if got, want := tab.Owner(b), RankOfBlock(b, tc.procs); got != want {
				t.Fatalf("nblocks=%d procs=%d: Owner(%d)=%d, RankOfBlock=%d",
					tc.nblocks, tc.procs, b, got, want)
			}
		}
		for rank := 0; rank < tc.procs; rank++ {
			got := tab.Blocks(rank)
			want := AssignBlocks(tc.nblocks, tc.procs, rank)
			if len(got) == 0 && len(want) == 0 {
				continue
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("nblocks=%d procs=%d: Blocks(%d)=%v, AssignBlocks=%v",
					tc.nblocks, tc.procs, rank, got, want)
			}
		}
		if tab.Version() != 0 {
			t.Fatalf("fresh table has version %d", tab.Version())
		}
	}
}

func TestOwnerTableAvoiding(t *testing.T) {
	tab := NewOwnerTableAvoiding(8, 4, []int{1, 3})
	for b := 0; b < 8; b++ {
		if o := tab.Owner(b); o == 1 || o == 3 {
			t.Fatalf("block %d assigned to avoided rank %d", b, o)
		}
	}
	// Cyclic over the healthy pool {0, 2}.
	want := []int{0, 2, 0, 2, 0, 2, 0, 2}
	for b, w := range want {
		if tab.Owner(b) != w {
			t.Fatalf("Owner(%d)=%d, want %d", b, tab.Owner(b), w)
		}
	}
	if !tab.Avoided(1) || !tab.Avoided(3) || tab.Avoided(0) {
		t.Fatalf("Avoided flags wrong: %v %v %v", tab.Avoided(1), tab.Avoided(3), tab.Avoided(0))
	}
	if blocks := tab.Blocks(1); len(blocks) != 0 {
		t.Fatalf("avoided rank 1 owns %v", blocks)
	}
}

func TestOwnerTableAvoidingEveryone(t *testing.T) {
	// Avoiding all ranks must fall back to the plain cyclic layout.
	tab := NewOwnerTableAvoiding(6, 3, []int{0, 1, 2})
	for b := 0; b < 6; b++ {
		if got, want := tab.Owner(b), b%3; got != want {
			t.Fatalf("Owner(%d)=%d, want %d", b, got, want)
		}
	}
	if tab.Avoided(0) {
		t.Fatal("degenerate avoid list should be discarded")
	}
}

func TestOwnerTableAvoidingOutOfRange(t *testing.T) {
	tab := NewOwnerTableAvoiding(4, 2, []int{-1, 7})
	for b := 0; b < 4; b++ {
		if got, want := tab.Owner(b), b%2; got != want {
			t.Fatalf("Owner(%d)=%d, want %d", b, got, want)
		}
	}
}

func TestOwnerTableMigrate(t *testing.T) {
	tab := NewOwnerTable(8, 4)
	if err := tab.Migrate(5, 0); err != nil {
		t.Fatal(err)
	}
	if tab.Owner(5) != 0 {
		t.Fatalf("Owner(5)=%d after migrate", tab.Owner(5))
	}
	if tab.Version() != 1 {
		t.Fatalf("version=%d after one migration", tab.Version())
	}
	if err := tab.Migrate(99, 0); err == nil {
		t.Fatal("migrating unknown block should fail")
	}
	if err := tab.Migrate(0, 12); err == nil {
		t.Fatal("migrating to unknown rank should fail")
	}
	if tab.Version() != 1 {
		t.Fatalf("failed migrations must not bump version, got %d", tab.Version())
	}
}

func TestOwnerTableMigrateFrom(t *testing.T) {
	// 16 blocks over 4 ranks, surviving set = multiples of 4 after a
	// radix-4 round: blocks 0, 4, 8, 12 owned by ranks 0, 0, 0, 0.
	tab := NewOwnerTable(16, 4)
	surviving := []int{0, 4, 8, 12}
	migs, err := tab.MigrateFrom([]int{0}, surviving)
	if err != nil {
		t.Fatal(err)
	}
	if len(migs) != 4 {
		t.Fatalf("expected 4 migrations, got %v", migs)
	}
	// Load-based: all four orphans spread over the three healthy ranks,
	// ascending block order, ties to lowest rank id.
	want := []Migration{
		{Block: 0, From: 0, To: 1},
		{Block: 4, From: 0, To: 2},
		{Block: 8, From: 0, To: 3},
		{Block: 12, From: 0, To: 1},
	}
	if !reflect.DeepEqual(migs, want) {
		t.Fatalf("migrations = %v, want %v", migs, want)
	}
	if tab.Healthy(0) {
		t.Fatal("rank 0 should be marked failed")
	}
	if tab.Version() != 4 {
		t.Fatalf("version=%d, want 4", tab.Version())
	}
	// Replicas applying the same call reach the same state.
	other := NewOwnerTable(16, 4)
	otherMigs, err := other.MigrateFrom([]int{0}, []int{0, 4, 8, 12})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(migs, otherMigs) {
		t.Fatal("MigrateFrom is not deterministic across replicas")
	}
	for b := 0; b < 16; b++ {
		if tab.Owner(b) != other.Owner(b) {
			t.Fatalf("replica divergence at block %d", b)
		}
	}
}

func TestOwnerTableMigrateFromBalancesLoad(t *testing.T) {
	// Rank 1 dies holding blocks 1, 5, 9; survivors 0..11 all live.
	tab := NewOwnerTable(12, 4)
	surviving := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}
	migs, err := tab.MigrateFrom([]int{1}, surviving)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy ranks 0, 2, 3 each already own 3 surviving blocks; the
	// three orphans go one to each, lowest rank first.
	want := []Migration{
		{Block: 1, From: 1, To: 0},
		{Block: 5, From: 1, To: 2},
		{Block: 9, From: 1, To: 3},
	}
	if !reflect.DeepEqual(migs, want) {
		t.Fatalf("migrations = %v, want %v", migs, want)
	}
}

func TestOwnerTableMigrateFromSkipsAvoided(t *testing.T) {
	tab := NewOwnerTableAvoiding(8, 4, []int{3})
	// Pool {0,1,2}; rank 0 dies. Orphans must land on 1 or 2, not 3.
	migs, err := tab.MigrateFrom([]int{0}, []int{0, 1, 2, 3, 4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range migs {
		if m.To == 3 {
			t.Fatalf("orphan migrated to avoided rank: %v", m)
		}
	}
	// But when only the avoided rank survives, it is used.
	tab2 := NewOwnerTableAvoiding(4, 3, []int{2})
	migs2, err := tab2.MigrateFrom([]int{0, 1}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range migs2 {
		if m.To != 2 {
			t.Fatalf("expected fallback to avoided rank 2, got %v", m)
		}
	}
}

func TestOwnerTableMigrateFromAllFailed(t *testing.T) {
	tab := NewOwnerTable(4, 2)
	if _, err := tab.MigrateFrom([]int{0, 1}, []int{0, 1, 2, 3}); err == nil {
		t.Fatal("expected error when every rank failed")
	}
}

func TestOwnerTableClone(t *testing.T) {
	tab := NewOwnerTableAvoiding(8, 4, []int{2})
	if err := tab.Migrate(3, 0); err != nil {
		t.Fatal(err)
	}
	c := tab.Clone()
	if c.Version() != tab.Version() || c.Owner(3) != 0 || !c.Avoided(2) {
		t.Fatal("clone does not match source")
	}
	if err := c.Migrate(3, 1); err != nil {
		t.Fatal(err)
	}
	if tab.Owner(3) != 0 {
		t.Fatal("mutating clone affected source")
	}
	c.MarkFailed(1)
	if !tab.Healthy(1) {
		t.Fatal("MarkFailed on clone leaked into source")
	}
}
