package grid

import (
	"testing"
	"testing/quick"
)

func TestDTypeRoundTrip(t *testing.T) {
	for _, s := range []string{"u8", "f32", "f64"} {
		dt, err := ParseDType(s)
		if err != nil {
			t.Fatal(err)
		}
		if dt.String() != s {
			t.Fatalf("%s -> %s", s, dt.String())
		}
	}
	if _, err := ParseDType("i16"); err == nil {
		t.Fatal("accepted unknown dtype")
	}
	if U8.Size() != 1 || F32.Size() != 4 || F64.Size() != 8 {
		t.Fatal("wrong sample sizes")
	}
}

func TestVolumeBytesRoundTrip(t *testing.T) {
	for _, dt := range []DType{U8, F32, F64} {
		v := NewVolume(Dims{3, 4, 5})
		v.DType = dt
		for i := range v.Data {
			v.Data[i] = float32(i % 200)
		}
		raw := v.Bytes()
		if len(raw) != dt.Size()*3*4*5 {
			t.Fatalf("%v: raw length %d", dt, len(raw))
		}
		back, err := DecodeSamples(raw, dt)
		if err != nil {
			t.Fatal(err)
		}
		for i := range v.Data {
			if back[i] != v.Data[i] {
				t.Fatalf("%v: sample %d: %v != %v", dt, i, back[i], v.Data[i])
			}
		}
	}
}

func TestSubVolume(t *testing.T) {
	v := NewVolume(Dims{6, 5, 4})
	for z := 0; z < 4; z++ {
		for y := 0; y < 5; y++ {
			for x := 0; x < 6; x++ {
				v.Set(x, y, z, float32(100*x+10*y+z))
			}
		}
	}
	sub := v.SubVolume([3]int{1, 2, 1}, [3]int{4, 4, 3})
	if sub.Dims != (Dims{4, 3, 3}) {
		t.Fatalf("sub dims %v", sub.Dims)
	}
	for z := 0; z < 3; z++ {
		for y := 0; y < 3; y++ {
			for x := 0; x < 4; x++ {
				want := float32(100*(x+1) + 10*(y+2) + (z + 1))
				if got := sub.At(x, y, z); got != want {
					t.Fatalf("sub(%d,%d,%d) = %v want %v", x, y, z, got, want)
				}
			}
		}
	}
}

func TestVolumeRange(t *testing.T) {
	v := NewVolume(Dims{2, 2, 2})
	copy(v.Data, []float32{3, -1, 4, 1, 5, -9, 2, 6})
	lo, hi := v.Range()
	if lo != -9 || hi != 6 {
		t.Fatalf("range [%v, %v]", lo, hi)
	}
}

// TestDecomposeProperties: any decomposition covers every vertex, blocks
// overlap in exactly the shared layers, and block count is as requested.
func TestDecomposeProperties(t *testing.T) {
	f := func(dx, dy, dz uint8, nb uint8) bool {
		dims := Dims{4 + int(dx)%29, 4 + int(dy)%29, 4 + int(dz)%29}
		nblocks := 1 + int(nb)%16
		dec, err := Decompose(dims, nblocks)
		if err != nil {
			// Tiny domains can legitimately refuse very high block
			// counts; that is not a property violation.
			return true
		}
		if dec.NumBlocks() != nblocks {
			return false
		}
		// Every vertex covered at least once; interior vertices of one
		// block covered exactly once.
		covered := make([]int, dims.Verts())
		for _, b := range dec.Blocks {
			if b.Lo[0] < 0 || b.Hi[0] >= dims[0] || b.Lo[1] < 0 || b.Hi[1] >= dims[1] ||
				b.Lo[2] < 0 || b.Hi[2] >= dims[2] {
				return false
			}
			for ax := 0; ax < 3; ax++ {
				if b.Hi[ax] <= b.Lo[ax] {
					return false // degenerate block
				}
			}
			for z := b.Lo[2]; z <= b.Hi[2]; z++ {
				for y := b.Lo[1]; y <= b.Hi[1]; y++ {
					for x := b.Lo[0]; x <= b.Hi[0]; x++ {
						covered[int64(x)+int64(y)*int64(dims[0])+int64(z)*int64(dims[0])*int64(dims[1])]++
					}
				}
			}
		}
		for _, c := range covered {
			if c == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDecomposeSharedLayer(t *testing.T) {
	dims := Dims{16, 16, 16}
	dec, err := Decompose(dims, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := dec.Blocks[0], dec.Blocks[1]
	// The bisection splits x (longest tie → x) at 8: block 0 ends at
	// the plane block 1 starts at.
	if a.Hi[0] != b.Lo[0] {
		t.Fatalf("blocks do not share a layer: %v %v", a, b)
	}
	if a.Lo[0] != 0 || b.Hi[0] != 15 {
		t.Fatalf("blocks do not span the domain: %v %v", a, b)
	}
}

func TestDecomposePowersOfTwoBalanced(t *testing.T) {
	dims := Dims{64, 64, 64}
	for _, nb := range []int{2, 4, 8, 16, 32, 64} {
		dec, err := Decompose(dims, nb)
		if err != nil {
			t.Fatal(err)
		}
		minV, maxV := int64(1<<62), int64(0)
		for _, b := range dec.Blocks {
			v := b.Verts()
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		if float64(maxV) > 1.6*float64(minV) {
			t.Fatalf("nb=%d: unbalanced blocks %d..%d vertices", nb, minV, maxV)
		}
	}
}

func TestOwnersOfRefined(t *testing.T) {
	dims := Dims{8, 8, 8}
	dec, err := Decompose(dims, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The center vertex (shared corner) belongs to many blocks.
	b0 := dec.Blocks[0]
	cx, cy, cz := 2*b0.Hi[0], 2*b0.Hi[1], 2*b0.Hi[2]
	owners := dec.OwnersOfRefined(0, cx, cy, cz)
	if len(owners) != 8 {
		t.Fatalf("center corner owned by %d blocks, want 8", len(owners))
	}
	if !dec.SharedBoundary(0, cx, cy, cz) {
		t.Fatal("center corner not flagged as shared boundary")
	}
	// A strictly interior cell of block 0 has one owner.
	owners = dec.OwnersOfRefined(0, 1, 1, 1)
	if len(owners) != 1 || owners[0] != 0 {
		t.Fatalf("interior cell owners %v", owners)
	}
}

func TestAssignBlocksRoundRobin(t *testing.T) {
	got := AssignBlocks(10, 4, 1)
	want := []int{1, 5, 9}
	if len(got) != len(want) {
		t.Fatalf("assign %v want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("assign %v want %v", got, want)
		}
	}
	// Every block assigned to exactly one rank.
	seen := make(map[int]bool)
	for rank := 0; rank < 4; rank++ {
		for _, b := range AssignBlocks(10, 4, rank) {
			if seen[b] {
				t.Fatalf("block %d assigned twice", b)
			}
			seen[b] = true
			if RankOfBlock(b, 4) != rank {
				t.Fatalf("RankOfBlock(%d) inconsistent", b)
			}
		}
	}
	if len(seen) != 10 {
		t.Fatalf("only %d blocks assigned", len(seen))
	}
}

func TestAddrSpaceRoundTrip(t *testing.T) {
	space := NewAddrSpace(Dims{10, 12, 14})
	f := func(x, y, z uint8) bool {
		cx := int(x) % space.RX
		cy := int(y) % space.RY
		cz := int(z) % space.RZ
		gx, gy, gz := space.Decode(space.Encode(cx, cy, cz))
		return gx == cx && gy == cy && gz == cz
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAddrDim(t *testing.T) {
	space := NewAddrSpace(Dims{5, 5, 5})
	if d := space.Dim(space.Encode(0, 0, 0)); d != 0 {
		t.Fatalf("vertex dim %d", d)
	}
	if d := space.Dim(space.Encode(1, 0, 0)); d != 1 {
		t.Fatalf("edge dim %d", d)
	}
	if d := space.Dim(space.Encode(1, 1, 0)); d != 2 {
		t.Fatalf("quad dim %d", d)
	}
	if d := space.Dim(space.Encode(1, 1, 1)); d != 3 {
		t.Fatalf("voxel dim %d", d)
	}
}

func TestVertexID(t *testing.T) {
	space := NewAddrSpace(Dims{4, 4, 4})
	// Vertex (1, 2, 3) has id 1 + 2*4 + 3*16 = 57.
	if id := space.VertexID(space.Encode(2, 4, 6)); id != 57 {
		t.Fatalf("vertex id %d, want 57", id)
	}
}
