package grid

import (
	"fmt"
	"sort"
)

// OwnerTable is the run-scoped block-to-rank ownership map. The paper's
// assignment (§IV-A) is the pure function block % procs, frozen at
// startup; the table starts from exactly that block-cyclic layout but
// can change during a run: blocks migrate off crashed ranks onto
// healthy ones, and the initial rotation can be seeded to avoid ranks a
// previous run flagged as stragglers (analyze.Recommend().AvoidRanks).
//
// Every rank holds its own copy of the table and applies the same
// deterministic updates at the same collective points, so the copies
// never diverge — the table is replicated state, not shared state, just
// like the decomposition itself. Version counts applied migrations, so
// two table states can be compared cheaply.
type OwnerTable struct {
	nblocks int
	procs   int
	owner   []int // block id -> owning rank
	failed  []bool
	avoided []bool
	version int
}

// NewOwnerTable creates the paper's block-cyclic layout: block b is
// owned by rank b % procs, matching AssignBlocks/RankOfBlock exactly.
func NewOwnerTable(nblocks, procs int) *OwnerTable {
	return NewOwnerTableAvoiding(nblocks, procs, nil)
}

// NewOwnerTableAvoiding creates a block-cyclic layout rotated around
// the avoided ranks: blocks are dealt cyclically over the non-avoided
// ranks only, so a rank a previous run flagged as a straggler starts
// the run owning nothing. Avoided ranks still participate in every
// collective — they are healthy, just unloaded — and are used as
// migration targets only when no other healthy rank remains. An avoid
// list covering every rank is ignored (someone has to own the blocks).
func NewOwnerTableAvoiding(nblocks, procs int, avoid []int) *OwnerTable {
	t := &OwnerTable{
		nblocks: nblocks,
		procs:   procs,
		owner:   make([]int, nblocks),
		failed:  make([]bool, procs),
		avoided: make([]bool, procs),
	}
	for _, rank := range avoid {
		if rank >= 0 && rank < procs {
			t.avoided[rank] = true
		}
	}
	var pool []int
	for rank := 0; rank < procs; rank++ {
		if !t.avoided[rank] {
			pool = append(pool, rank)
		}
	}
	if len(pool) == 0 {
		// Avoiding everyone is avoiding no one.
		t.avoided = make([]bool, procs)
		for rank := 0; rank < procs; rank++ {
			pool = append(pool, rank)
		}
	}
	for b := 0; b < nblocks; b++ {
		t.owner[b] = pool[b%len(pool)]
	}
	return t
}

// NumBlocks returns the number of blocks the table covers.
func (t *OwnerTable) NumBlocks() int { return t.nblocks }

// Procs returns the rank count the table was built for.
func (t *OwnerTable) Procs() int { return t.procs }

// Version counts the migrations applied so far; two replicas of the
// table are in the same state exactly when their versions match.
func (t *OwnerTable) Version() int { return t.version }

// Owner returns the rank that currently owns a block.
func (t *OwnerTable) Owner(block int) int { return t.owner[block] }

// Blocks returns the sorted block ids a rank currently owns.
func (t *OwnerTable) Blocks(rank int) []int {
	var out []int
	for b, r := range t.owner {
		if r == rank {
			out = append(out, b)
		}
	}
	return out
}

// Healthy reports whether a rank has not been marked failed.
func (t *OwnerTable) Healthy(rank int) bool { return !t.failed[rank] }

// Avoided reports whether the initial layout was seeded to keep load
// off this rank.
func (t *OwnerTable) Avoided(rank int) bool { return t.avoided[rank] }

// MarkFailed records that a rank crashed. Its blocks stay put until
// MigrateFrom (or explicit Migrate calls) moves them; a failed rank is
// never chosen as a migration target again this run.
func (t *OwnerTable) MarkFailed(rank int) {
	if rank >= 0 && rank < t.procs {
		t.failed[rank] = true
	}
}

// Migrate reassigns one block to a new owner and bumps the version.
func (t *OwnerTable) Migrate(block, newRank int) error {
	if block < 0 || block >= t.nblocks {
		return fmt.Errorf("grid: migrate of unknown block %d (have %d)", block, t.nblocks)
	}
	if newRank < 0 || newRank >= t.procs {
		return fmt.Errorf("grid: migrate block %d to invalid rank %d (procs %d)", block, newRank, t.procs)
	}
	t.owner[block] = newRank
	t.version++
	return nil
}

// Migration records one applied ownership change.
type Migration struct {
	Block    int
	From, To int
}

// MigrateFrom marks the given ranks failed and moves every block they
// own out of the surviving set onto healthy ranks chosen by load: each
// block (in ascending id order) goes to the healthy, non-avoided rank
// owning the fewest surviving blocks, ties to the lowest rank id.
// Avoided ranks are drawn on only when no other healthy rank remains,
// and the run errors out when no healthy rank is left at all. The
// procedure is a pure function of (table state, failed, surviving), so
// replicas that apply it with equal arguments stay identical.
func (t *OwnerTable) MigrateFrom(failed []int, surviving []int) ([]Migration, error) {
	for _, rank := range failed {
		t.MarkFailed(rank)
	}
	var targets []int
	for rank := 0; rank < t.procs; rank++ {
		if !t.failed[rank] && !t.avoided[rank] {
			targets = append(targets, rank)
		}
	}
	if len(targets) == 0 {
		for rank := 0; rank < t.procs; rank++ {
			if !t.failed[rank] {
				targets = append(targets, rank)
			}
		}
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("grid: all %d ranks failed; no migration target", t.procs)
	}
	load := make(map[int]int, len(targets))
	orphans := make([]int, 0)
	for _, b := range surviving {
		if t.failed[t.owner[b]] {
			orphans = append(orphans, b)
		} else {
			load[t.owner[b]]++
		}
	}
	sort.Ints(orphans)
	var migs []Migration
	for _, b := range orphans {
		best := targets[0]
		for _, rank := range targets[1:] {
			if load[rank] < load[best] {
				best = rank
			}
		}
		migs = append(migs, Migration{Block: b, From: t.owner[b], To: best})
		t.owner[b] = best
		t.version++
		load[best]++
	}
	return migs, nil
}

// Clone returns an independent copy of the table.
func (t *OwnerTable) Clone() *OwnerTable {
	c := &OwnerTable{
		nblocks: t.nblocks,
		procs:   t.procs,
		owner:   append([]int(nil), t.owner...),
		failed:  append([]bool(nil), t.failed...),
		avoided: append([]bool(nil), t.avoided...),
		version: t.version,
	}
	return c
}
