package grid

// Addr is the global address of a cell: its linear index in the refined
// gradient grid of the entire dataset, exactly as in the paper
// (a = (i+Sx) + (j+Sy)·Xg + (k+Sz)·Xg·Yg, where Xg, Yg are refined-grid
// side lengths and S is the block's refined offset). The address encodes
// the geometric location of the cell in the volume, so two blocks agree
// on the identity of cells on their shared boundary.
type Addr uint64

// AddrSpace performs address arithmetic for one dataset's refined grid.
type AddrSpace struct {
	RX, RY, RZ int // refined grid extents (2n-1 per dimension)
}

// NewAddrSpace builds the address space of a domain.
func NewAddrSpace(dims Dims) AddrSpace {
	r := dims.Refined()
	return AddrSpace{RX: r[0], RY: r[1], RZ: r[2]}
}

// Encode converts a global refined coordinate to an address.
func (s AddrSpace) Encode(x, y, z int) Addr {
	return Addr(int64(x) + int64(y)*int64(s.RX) + int64(z)*int64(s.RX)*int64(s.RY))
}

// Decode converts an address back to global refined coordinates.
func (s AddrSpace) Decode(a Addr) (x, y, z int) {
	v := int64(a)
	x = int(v % int64(s.RX))
	v /= int64(s.RX)
	y = int(v % int64(s.RY))
	z = int(v / int64(s.RY))
	return
}

// Dim returns the dimension (0..3) of the cell at an address: the number
// of odd refined coordinates.
func (s AddrSpace) Dim(a Addr) int {
	x, y, z := s.Decode(a)
	return x&1 + y&1 + z&1
}

// Cells returns the total number of cells in the refined grid.
func (s AddrSpace) Cells() int64 {
	return int64(s.RX) * int64(s.RY) * int64(s.RZ)
}

// VertexID returns the global vertex index (in the original grid) of a
// vertex-cell address. It must only be called for 0-cells (all even
// coordinates).
func (s AddrSpace) VertexID(a Addr) int64 {
	x, y, z := s.Decode(a)
	nx := int64((s.RX + 1) / 2)
	ny := int64((s.RY + 1) / 2)
	return int64(x/2) + int64(y/2)*nx + int64(z/2)*nx*ny
}
