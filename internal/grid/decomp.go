package grid

import (
	"fmt"
	"sort"
)

// Block is one piece of the domain decomposition: the closed vertex box
// [Lo, Hi] (inclusive bounds, in global vertex coordinates). Neighboring
// blocks share exactly one layer of vertices: the high face of one block
// coincides with the low face of the next.
type Block struct {
	ID     int
	Lo, Hi [3]int
}

// Dims returns the block's vertex extent including the shared layers.
func (b Block) Dims() Dims {
	return Dims{b.Hi[0] - b.Lo[0] + 1, b.Hi[1] - b.Lo[1] + 1, b.Hi[2] - b.Lo[2] + 1}
}

// Verts returns the number of vertices the block reads.
func (b Block) Verts() int64 { return b.Dims().Verts() }

// RefinedLo returns the block's low corner in refined-grid coordinates.
func (b Block) RefinedLo() [3]int { return [3]int{2 * b.Lo[0], 2 * b.Lo[1], 2 * b.Lo[2]} }

// RefinedHi returns the block's high corner in refined-grid coordinates.
func (b Block) RefinedHi() [3]int { return [3]int{2 * b.Hi[0], 2 * b.Hi[1], 2 * b.Hi[2]} }

// ContainsRefined reports whether refined-grid coordinate (x, y, z) lies
// in the block's closed refined box — i.e. whether the corresponding
// cell of the cubical complex is computed by this block.
func (b Block) ContainsRefined(x, y, z int) bool {
	return x >= 2*b.Lo[0] && x <= 2*b.Hi[0] &&
		y >= 2*b.Lo[1] && y <= 2*b.Hi[1] &&
		z >= 2*b.Lo[2] && z <= 2*b.Hi[2]
}

func (b Block) String() string {
	return fmt.Sprintf("block %d [%d,%d]×[%d,%d]×[%d,%d]", b.ID,
		b.Lo[0], b.Hi[0], b.Lo[1], b.Hi[1], b.Lo[2], b.Hi[2])
}

// Decomposition is the full block layout of a domain, identical on every
// rank (it is computed deterministically from the dims and block count).
type Decomposition struct {
	Dims   Dims
	Blocks []Block

	// neighbors[i] lists the IDs of blocks whose closed boxes intersect
	// block i's closed box (including i itself), used for boundary
	// stratum classification.
	neighbors [][]int
}

// Decompose splits the domain into nblocks blocks with the paper's
// bisection algorithm: iteratively divide the longest remaining data
// dimension in half until the desired total number of blocks is
// attained. One layer of vertices is shared between the two halves of
// every split. nblocks need not be a power of two: an uneven split
// produces ⌈n/2⌉ and ⌊n/2⌋ blocks in the two halves.
func Decompose(dims Dims, nblocks int) (*Decomposition, error) {
	if dims[0] < 2 || dims[1] < 2 || dims[2] < 2 {
		return nil, fmt.Errorf("grid: domain %v too small to decompose", dims)
	}
	if nblocks < 1 {
		return nil, fmt.Errorf("grid: invalid block count %d", nblocks)
	}
	d := &Decomposition{Dims: dims}
	var rec func(lo, hi [3]int, n int) error
	rec = func(lo, hi [3]int, n int) error {
		if n == 1 {
			d.Blocks = append(d.Blocks, Block{ID: len(d.Blocks), Lo: lo, Hi: hi})
			return nil
		}
		// Longest dimension of this box, ties to x before y before z.
		axis := 0
		for a := 1; a < 3; a++ {
			if hi[a]-lo[a] > hi[axis]-lo[axis] {
				axis = a
			}
		}
		span := hi[axis] - lo[axis] // number of vertex intervals
		if span < 2 {
			return fmt.Errorf("grid: cannot split %d blocks from box of span %d along axis %d", n, span, axis)
		}
		mid := lo[axis] + span/2
		loHalfHi := hi
		loHalfHi[axis] = mid
		hiHalfLo := lo
		hiHalfLo[axis] = mid // shared vertex layer
		nLo := (n + 1) / 2
		if err := rec(lo, loHalfHi, nLo); err != nil {
			return err
		}
		return rec(hiHalfLo, hi, n-nLo)
	}
	if err := rec([3]int{0, 0, 0}, [3]int{dims[0] - 1, dims[1] - 1, dims[2] - 1}, nblocks); err != nil {
		return nil, err
	}
	d.buildNeighbors()
	return d, nil
}

func (d *Decomposition) buildNeighbors() {
	n := len(d.Blocks)
	d.neighbors = make([][]int, n)
	// Blocks are few (thousands at most per rank's view); an O(n²)
	// sweep is fine and runs once per decomposition.
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if boxesTouch(d.Blocks[i], d.Blocks[j]) {
				d.neighbors[i] = append(d.neighbors[i], j)
			}
		}
		sort.Ints(d.neighbors[i])
	}
}

func boxesTouch(a, b Block) bool {
	for ax := 0; ax < 3; ax++ {
		if a.Hi[ax] < b.Lo[ax] || b.Hi[ax] < a.Lo[ax] {
			return false
		}
	}
	return true
}

// NumBlocks returns the number of blocks.
func (d *Decomposition) NumBlocks() int { return len(d.Blocks) }

// Neighbors returns the IDs of blocks (including id itself) whose closed
// boxes intersect block id's closed box.
func (d *Decomposition) Neighbors(id int) []int { return d.neighbors[id] }

// OwnersOfRefined returns the sorted IDs of all blocks whose closed
// refined boxes contain the refined coordinate, searching only the
// neighborhood of the given home block (which must contain the
// coordinate). This is the "boundary of those same blocks" set from the
// paper's pairing restriction.
func (d *Decomposition) OwnersOfRefined(home int, x, y, z int) []int {
	var owners []int
	for _, nb := range d.neighbors[home] {
		if d.Blocks[nb].ContainsRefined(x, y, z) {
			owners = append(owners, nb)
		}
	}
	return owners
}

// SharedBoundary reports whether the refined coordinate lies on a
// boundary shared by two or more blocks.
func (d *Decomposition) SharedBoundary(home int, x, y, z int) bool {
	count := 0
	for _, nb := range d.neighbors[home] {
		if d.Blocks[nb].ContainsRefined(x, y, z) {
			count++
			if count > 1 {
				return true
			}
		}
	}
	return false
}

// AssignBlocks distributes block IDs to procs ranks in round-robin
// (block-cyclic) order and returns the list of block IDs owned by rank.
func AssignBlocks(nblocks, procs, rank int) []int {
	var out []int
	for b := rank; b < nblocks; b += procs {
		out = append(out, b)
	}
	return out
}

// RankOfBlock returns the rank that owns a block under block-cyclic
// assignment.
func RankOfBlock(block, procs int) int { return block % procs }
