// Package grid provides the structured-grid data model of the pipeline:
// scalar volumes sampled at vertices of a regular 3D grid, the bisection
// domain decomposition with a shared vertex layer between neighboring
// blocks, and global addressing of cells in the refined (gradient) grid.
package grid

import (
	"encoding/binary"
	"fmt"
	"math"
)

// DType identifies the on-disk sample type of a volume. The paper's
// implementation supports unsigned byte, single- and double-precision
// floating point.
type DType int

const (
	// U8 is one unsigned byte per sample.
	U8 DType = iota
	// F32 is a little-endian float32 per sample.
	F32
	// F64 is a little-endian float64 per sample.
	F64
)

// Size returns the number of bytes per sample.
func (d DType) Size() int {
	switch d {
	case U8:
		return 1
	case F64:
		return 8
	default:
		return 4
	}
}

func (d DType) String() string {
	switch d {
	case U8:
		return "u8"
	case F64:
		return "f64"
	default:
		return "f32"
	}
}

// ParseDType converts a string ("u8", "f32", "f64") to a DType.
func ParseDType(s string) (DType, error) {
	switch s {
	case "u8", "uint8", "byte":
		return U8, nil
	case "f32", "float32", "float":
		return F32, nil
	case "f64", "float64", "double":
		return F64, nil
	}
	return F32, fmt.Errorf("grid: unknown dtype %q", s)
}

// Dims is the vertex extent of a grid in x, y, z.
type Dims [3]int

// Verts returns the total number of vertices.
func (d Dims) Verts() int64 { return int64(d[0]) * int64(d[1]) * int64(d[2]) }

// Refined returns the extent of the refined (cell complex) grid, which
// has one slot per cell of the cubical complex: 2n-1 per dimension.
func (d Dims) Refined() Dims { return Dims{2*d[0] - 1, 2*d[1] - 1, 2*d[2] - 1} }

func (d Dims) String() string { return fmt.Sprintf("%d×%d×%d", d[0], d[1], d[2]) }

// Volume is a scalar field sampled at the vertices of a structured grid,
// held as float32 regardless of on-disk type (the paper's byte and
// double data are converted on read; see DESIGN.md).
type Volume struct {
	Dims  Dims
	DType DType
	Data  []float32
}

// NewVolume allocates a zero-filled volume.
func NewVolume(dims Dims) *Volume {
	return &Volume{Dims: dims, DType: F32, Data: make([]float32, dims.Verts())}
}

// VertIndex returns the linear index of vertex (x, y, z).
func (v *Volume) VertIndex(x, y, z int) int64 {
	return int64(x) + int64(y)*int64(v.Dims[0]) + int64(z)*int64(v.Dims[0])*int64(v.Dims[1])
}

// At returns the sample at vertex (x, y, z).
func (v *Volume) At(x, y, z int) float32 { return v.Data[v.VertIndex(x, y, z)] }

// Set stores a sample at vertex (x, y, z).
func (v *Volume) Set(x, y, z int, f float32) { v.Data[v.VertIndex(x, y, z)] = f }

// Range returns the minimum and maximum sample values.
func (v *Volume) Range() (lo, hi float32) {
	if len(v.Data) == 0 {
		return 0, 0
	}
	lo, hi = v.Data[0], v.Data[0]
	for _, f := range v.Data {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	return lo, hi
}

// Bytes serializes the volume samples in x-fastest order using the
// volume's DType, the raw format the parallel reader consumes.
func (v *Volume) Bytes() []byte {
	out := make([]byte, int64(v.DType.Size())*v.Dims.Verts())
	for i, f := range v.Data {
		putSample(out, i, v.DType, f)
	}
	return out
}

// SubVolume extracts the closed vertex box [lo, hi] as a standalone
// volume (the per-block data with its shared layer included).
func (v *Volume) SubVolume(lo, hi [3]int) *Volume {
	bd := Dims{hi[0] - lo[0] + 1, hi[1] - lo[1] + 1, hi[2] - lo[2] + 1}
	out := NewVolume(bd)
	for z := 0; z < bd[2]; z++ {
		for y := 0; y < bd[1]; y++ {
			src := v.VertIndex(lo[0], lo[1]+y, lo[2]+z)
			dst := out.VertIndex(0, y, z)
			copy(out.Data[dst:dst+int64(bd[0])], v.Data[src:src+int64(bd[0])])
		}
	}
	return out
}

// DecodeSamples converts raw little-endian samples of the given dtype to
// float32 values.
func DecodeSamples(raw []byte, dt DType) ([]float32, error) {
	sz := dt.Size()
	if len(raw)%sz != 0 {
		return nil, fmt.Errorf("grid: raw length %d not a multiple of sample size %d", len(raw), sz)
	}
	n := len(raw) / sz
	out := make([]float32, n)
	for i := 0; i < n; i++ {
		out[i] = getSample(raw, i, dt)
	}
	return out, nil
}

func putSample(buf []byte, i int, dt DType, f float32) {
	switch dt {
	case U8:
		buf[i] = uint8(f)
	case F64:
		binary.LittleEndian.PutUint64(buf[8*i:], math.Float64bits(float64(f)))
	default:
		binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(f))
	}
}

func getSample(buf []byte, i int, dt DType) float32 {
	switch dt {
	case U8:
		return float32(buf[i])
	case F64:
		return float32(math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:])))
	default:
		return math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
	}
}
