package mpsim

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// Message framing: every payload that must survive an unreliable path
// (merge complexes in flight, output blocks at rest) is wrapped in an
// 8-byte header of length and CRC32C checksum, so the receiver rejects
// truncation and bit corruption instead of deserializing garbage.
//
//	length u32 | crc32c(payload) u32 | payload
const frameHeader = 8

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Checksum returns the CRC32C of a byte slice (the checksum used by the
// frame header and the output-file footer).
func Checksum(b []byte) uint32 { return crc32.Checksum(b, crcTable) }

// Frame wraps a payload in a length+checksum header.
func Frame(payload []byte) []byte {
	out := make([]byte, frameHeader+len(payload))
	//msvet:allow rawframe: this IS the CRC frame writer the rule funnels everything into
	binary.LittleEndian.PutUint32(out[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(out[4:8], Checksum(payload))
	copy(out[frameHeader:], payload)
	return out
}

// Unframe validates a framed message and returns the payload. Any
// truncation, padding or bit flip — in the header or the payload —
// yields an error.
func Unframe(frame []byte) ([]byte, error) {
	if len(frame) < frameHeader {
		return nil, fmt.Errorf("mpsim: frame of %d bytes is shorter than its header", len(frame))
	}
	n := int(binary.LittleEndian.Uint32(frame[0:4]))
	if n != len(frame)-frameHeader {
		return nil, fmt.Errorf("mpsim: frame declares %d payload bytes, carries %d", n, len(frame)-frameHeader)
	}
	payload := frame[frameHeader:]
	want := binary.LittleEndian.Uint32(frame[4:8])
	if got := Checksum(payload); got != want {
		return nil, fmt.Errorf("mpsim: frame checksum %#x, want %#x", got, want)
	}
	return payload, nil
}
