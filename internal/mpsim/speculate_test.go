package mpsim

import (
	"testing"

	"parms/internal/fault"
	"parms/internal/vtime"
)

func TestFSRemove(t *testing.T) {
	fs := NewFS()
	fs.Put("a", []byte("hello"))
	n, ok := fs.Remove("a")
	if !ok || n != 5 {
		t.Fatalf("Remove(a) = (%d, %v), want (5, true)", n, ok)
	}
	if _, err := fs.Get("a"); err == nil {
		t.Fatal("file still readable after Remove")
	}
	if _, ok := fs.Remove("a"); ok {
		t.Fatal("second Remove reported the file present")
	}
}

func TestRankRemoveFileNoClockCharge(t *testing.T) {
	c, err := New(Config{Procs: 1})
	if err != nil {
		t.Fatal(err)
	}
	c.FS().Put("x", []byte{1, 2, 3})
	_, err = c.Run(func(r *Rank) error {
		before := r.Clock()
		n, ok := r.RemoveFile("x")
		if !ok || n != 3 {
			t.Errorf("RemoveFile = (%d, %v), want (3, true)", n, ok)
		}
		if r.Clock() != before {
			t.Errorf("RemoveFile charged the clock: %v -> %v", before, r.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeekArrival(t *testing.T) {
	c, err := New(Config{Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Run(func(r *Rank) error {
		const tag = 7
		if r.ID() == 0 {
			r.Send(1, tag, []byte("one"))
			r.Send(1, tag, []byte("two"))
			return nil
		}
		// Rank 1: wait until the eager sends are pending.
		for {
			if _, ok := r.PeekArrival(0, tag); ok {
				break
			}
		}
		arrival, ok := r.PeekArrival(0, tag)
		if !ok {
			t.Error("PeekArrival missed a pending message")
		}
		if _, ok := r.PeekArrival(0, tag+1); ok {
			t.Error("PeekArrival matched the wrong tag")
		}
		// Peek did not consume: both messages still receivable, and the
		// first one's arrival matches the peeked (earliest) stamp.
		before := r.Clock()
		data, _ := r.Recv(0, tag)
		if string(data) != "one" {
			t.Errorf("first recv = %q, want \"one\"", data)
		}
		if got := r.Clock() - vtime.Time(r.Machine().RecvOverhead); got != arrival && arrival < before {
			// Arrival stamps at or before our clock leave it unchanged
			// modulo overhead; later stamps advance to exactly arrival.
			t.Errorf("recv clock %v inconsistent with peeked arrival %v", got, arrival)
		}
		if data, _ := r.Recv(0, tag); string(data) != "two" {
			t.Errorf("second recv = %q, want \"two\"", data)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeekArrivalAfterRecvTimeout(t *testing.T) {
	// A delayed message fails RecvTimeout but stays pending; PeekArrival
	// then sees it with its late arrival stamp. A dropped message is
	// absent entirely.
	plan := fault.NewPlan(1)
	plan.DelayMessage(0, 1, 1, 50.0) // first 0->1 message late by 50s
	plan.DropMessage(2, 1, 1)        // first 2->1 message lost
	c, err := New(Config{Procs: 3, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	const tag = 3
	_, err = c.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(1, tag, []byte("late"))
		case 2:
			r.Send(1, tag, []byte("lost"))
		case 1:
			if _, _, ok := r.RecvTimeout(0, tag, 1.0); ok {
				t.Error("delayed message beat a 1s deadline")
			}
			arrival, pending := r.PeekArrival(0, tag)
			if !pending {
				t.Error("delayed message should be pending after timeout")
			}
			if arrival <= r.Clock() {
				t.Errorf("delayed arrival %v not past deadline %v", arrival, r.Clock())
			}
			if _, _, ok := r.RecvTimeout(2, tag, 1.0); ok {
				t.Error("dropped message was delivered")
			}
			if _, pending := r.PeekArrival(2, tag); pending {
				t.Error("dropped message should be absent")
			}
			// The late message is still deliverable: a blocking Recv
			// advances the clock to its stamp.
			data, _ := r.Recv(0, tag)
			if string(data) != "late" {
				t.Errorf("late recv = %q", data)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpeculativeTwin(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.CrashRank(0, "spec-stage")
	c, err := New(Config{Procs: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	c.FS().Put("f", make([]byte, 1000))
	_, err = c.Run(func(r *Rank) error {
		r.Elapse(2.0)
		twin := r.Speculative()
		if twin.Clock() != r.Clock() {
			t.Errorf("twin clock %v != parent %v", twin.Clock(), r.Clock())
		}
		if twin.ID() != r.ID() {
			t.Errorf("twin id %d != parent %d", twin.ID(), r.ID())
		}
		// Twin is quiet: no logger, no metrics, no fault-plan crashes.
		if twin.Logger() != nil || twin.Metrics() != nil {
			t.Error("quiet twin exposes observability")
		}
		if twin.Checkpoint("spec-stage") {
			t.Error("quiet twin crashed at a fault-plan checkpoint")
		}
		if twin.Failed() {
			t.Error("twin marked failed")
		}
		// Twin work charges only the twin.
		parentBefore := r.Clock()
		if _, err := twin.IndependentRead("f", 0, 1000); err != nil {
			t.Errorf("twin read: %v", err)
		}
		twin.Elapse(3.0)
		if r.Clock() != parentBefore {
			t.Error("twin work advanced the parent clock")
		}
		cost := r.SpeculationCost(twin)
		if cost <= 3.0 {
			t.Errorf("speculation cost %v, want > 3s (read + elapse)", cost)
		}
		// Adopt commits the twin's time onto the parent.
		r.Adopt(twin)
		if r.Clock() != twin.Clock() {
			t.Errorf("after Adopt parent %v != twin %v", r.Clock(), twin.Clock())
		}
		// The real rank still crashes at the plan's checkpoint.
		if !r.Checkpoint("spec-stage") {
			t.Error("real rank missed its planned crash")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAdoptFoldsIORetries(t *testing.T) {
	plan := fault.NewPlan(1)
	plan.FailRead("flaky", 2) // two transient failures
	c, err := New(Config{Procs: 1, Faults: plan})
	if err != nil {
		t.Fatal(err)
	}
	c.FS().Put("flaky", make([]byte, 10))
	_, err = c.Run(func(r *Rank) error {
		twin := r.Speculative()
		if _, err := twin.IndependentRead("flaky", 0, 10); err != nil {
			t.Errorf("twin read: %v", err)
		}
		if twin.IORetries() != 2 {
			t.Errorf("twin retries = %d, want 2", twin.IORetries())
		}
		if r.IORetries() != 0 {
			t.Errorf("parent retries = %d before Adopt", r.IORetries())
		}
		r.Adopt(twin)
		if r.IORetries() != 2 {
			t.Errorf("parent retries = %d after Adopt, want 2", r.IORetries())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
