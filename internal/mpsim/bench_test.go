package mpsim

import (
	"testing"

	"parms/internal/vtime"
)

func benchCluster(b *testing.B, procs int) *Cluster {
	b.Helper()
	c, err := New(Config{Procs: procs})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkPingPong measures host-side message round-trip cost through
// the mailbox substrate.
func BenchmarkPingPong(b *testing.B) {
	c := benchCluster(b, 2)
	payload := make([]byte, 1024)
	b.ResetTimer()
	_, err := c.Run(func(r *Rank) error {
		for i := 0; i < b.N; i++ {
			if r.ID() == 0 {
				r.Send(1, 1, payload)
				r.Recv(1, 2)
			} else {
				r.Recv(0, 1)
				r.Send(0, 2, payload)
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkBarrier64 measures a 64-rank barrier.
func BenchmarkBarrier64(b *testing.B) {
	c := benchCluster(b, 64)
	b.ResetTimer()
	_, err := c.Run(func(r *Rank) error {
		for i := 0; i < b.N; i++ {
			r.Barrier()
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce256 measures a 256-rank allreduce.
func BenchmarkAllreduce256(b *testing.B) {
	c := benchCluster(b, 256)
	b.ResetTimer()
	_, err := c.Run(func(r *Rank) error {
		for i := 0; i < b.N; i++ {
			r.AllreduceFloat64(float64(r.ID()), "sum")
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkComputeModel measures the pure cost-model arithmetic.
func BenchmarkComputeModel(b *testing.B) {
	m := vtime.BlueGeneP()
	w := vtime.Work{CellsVisited: 1000, PairTests: 4000, PathSteps: 200}
	for i := 0; i < b.N; i++ {
		if m.ComputeTime(w) <= 0 {
			b.Fatal("bad time")
		}
	}
}
