package mpsim

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestFSReadWriteAt(t *testing.T) {
	fs := NewFS()
	if err := fs.WriteAt("f", 4, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// The gap before offset 4 is zero-filled.
	got, err := fs.ReadAt("f", 0, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := []byte{0, 0, 0, 0, 1, 2, 3}
	if !bytes.Equal(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	// Out-of-bounds reads fail.
	if _, err := fs.ReadAt("f", 5, 10); err == nil {
		t.Fatal("accepted out-of-bounds read")
	}
	if _, err := fs.ReadAt("missing", 0, 1); err == nil {
		t.Fatal("accepted read of missing file")
	}
}

func TestFSOverwriteAndCreate(t *testing.T) {
	fs := NewFS()
	fs.Put("f", []byte("hello world"))
	if err := fs.WriteAt("f", 6, []byte("gophe")); err != nil {
		t.Fatal(err)
	}
	data, _ := fs.Get("f")
	if string(data) != "hello gophe" {
		t.Fatalf("got %q", data)
	}
	fs.Create("f")
	if size, _ := fs.Size("f"); size != 0 {
		t.Fatalf("size %d after truncate", size)
	}
}

func TestFSNames(t *testing.T) {
	fs := NewFS()
	fs.Put("b", nil)
	fs.Put("a", nil)
	fs.Put("c", nil)
	names := fs.Names()
	if len(names) != 3 || names[0] != "a" || names[2] != "c" {
		t.Fatalf("names %v", names)
	}
}

func TestFSImportExport(t *testing.T) {
	dir := t.TempDir()
	hostIn := filepath.Join(dir, "in.bin")
	hostOut := filepath.Join(dir, "out.bin")
	payload := []byte{9, 8, 7, 6, 5}
	if err := os.WriteFile(hostIn, payload, 0o644); err != nil {
		t.Fatal(err)
	}
	fs := NewFS()
	if err := fs.Import(hostIn, "vol"); err != nil {
		t.Fatal(err)
	}
	if err := fs.Export("vol", hostOut); err != nil {
		t.Fatal(err)
	}
	back, err := os.ReadFile(hostOut)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, payload) {
		t.Fatalf("round trip got %v", back)
	}
	if err := fs.Import(filepath.Join(dir, "nope"), "x"); err == nil {
		t.Fatal("imported missing host file")
	}
	if err := fs.Export("nope", hostOut); err == nil {
		t.Fatal("exported missing virtual file")
	}
}

func TestRecvAnySource(t *testing.T) {
	c := newCluster(t, 4)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			seen := map[int]bool{}
			for i := 0; i < 3; i++ {
				data, src := r.Recv(AnySource, 5)
				if len(data) != src {
					return fmt.Errorf("payload from %d has length %d", src, len(data))
				}
				if seen[src] {
					return fmt.Errorf("duplicate source %d", src)
				}
				seen[src] = true
			}
			return nil
		}
		r.Send(0, 5, make([]byte, r.ID()))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
