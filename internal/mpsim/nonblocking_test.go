package mpsim

import (
	"bytes"
	"fmt"
	"testing"
)

func TestIrecvWait(t *testing.T) {
	c := newCluster(t, 2)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 9)
			// The message may not have arrived yet; Wait must block
			// until it does.
			data, src := req.Wait()
			if string(data) != "payload" || src != 1 {
				return fmt.Errorf("got %q from %d", data, src)
			}
			// Waiting again returns the same payload without blocking.
			again, _ := req.Wait()
			if string(again) != "payload" {
				return fmt.Errorf("second wait got %q", again)
			}
			return nil
		}
		r.Send(0, 9, []byte("payload"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTestNonBlocking(t *testing.T) {
	c := newCluster(t, 2)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			req := r.Irecv(1, 3)
			// Eventually the message arrives; Test must not deadlock
			// and must eventually succeed.
			for !req.Test() {
			}
			data, _ := req.Wait()
			if string(data) != "x" {
				return fmt.Errorf("got %q", data)
			}
			return nil
		}
		r.Send(0, 3, []byte("x"))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitAnyDrainsAll(t *testing.T) {
	const senders = 5
	c := newCluster(t, senders+1)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == senders {
			reqs := make([]*Request, senders)
			for i := range reqs {
				reqs[i] = r.Irecv(i, 4)
			}
			seen := make([]bool, senders)
			for n := 0; n < senders; n++ {
				i := WaitAny(reqs)
				if i < 0 {
					return fmt.Errorf("WaitAny returned -1 with %d pending", senders-n)
				}
				data, src := reqs[i].Wait()
				if src != i || len(data) != i+1 {
					return fmt.Errorf("request %d: src %d len %d", i, src, len(data))
				}
				if seen[i] {
					return fmt.Errorf("request %d completed twice", i)
				}
				seen[i] = true
			}
			return nil
		}
		r.Send(senders, 4, bytes.Repeat([]byte{1}, r.ID()+1))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatter(t *testing.T) {
	c := newCluster(t, 5)
	_, err := c.Run(func(r *Rank) error {
		var chunks [][]byte
		if r.ID() == 2 {
			for i := 0; i < 5; i++ {
				chunks = append(chunks, []byte(fmt.Sprintf("chunk%d", i)))
			}
		}
		got := r.Scatter(2, chunks)
		want := fmt.Sprintf("chunk%d", r.ID())
		if string(got) != want {
			return fmt.Errorf("rank %d got %q want %q", r.ID(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAlltoall(t *testing.T) {
	c := newCluster(t, 4)
	_, err := c.Run(func(r *Rank) error {
		send := make([][]byte, 4)
		for dst := range send {
			send[dst] = []byte(fmt.Sprintf("%d->%d", r.ID(), dst))
		}
		got := r.Alltoall(send)
		for src, payload := range got {
			want := fmt.Sprintf("%d->%d", src, r.ID())
			if string(payload) != want {
				return fmt.Errorf("rank %d slot %d: %q want %q", r.ID(), src, payload, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceInt64(t *testing.T) {
	c := newCluster(t, 6)
	_, err := c.Run(func(r *Rank) error {
		sum := r.ReduceInt64(3, int64(r.ID()), "sum")
		if r.ID() == 3 && sum != 15 {
			return fmt.Errorf("sum %d", sum)
		}
		max := r.ReduceInt64(0, int64(r.ID()*10), "max")
		if r.ID() == 0 && max != 50 {
			return fmt.Errorf("max %d", max)
		}
		min := r.ReduceInt64(0, int64(r.ID()+7), "min")
		if r.ID() == 0 && min != 7 {
			return fmt.Errorf("min %d", min)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
