package mpsim

import (
	"encoding/binary"
	"math"
)

// Reserved tag space for collectives, far above any application tag.
const (
	tagBarrierUp = 1<<28 + iota
	tagBarrierDown
	tagBcast
	tagReduce
	tagGather
	tagAllgather
)

// Barrier blocks until every rank has entered it. Virtual clocks advance
// along a binomial reduce-broadcast tree rooted at rank 0, so after the
// barrier every clock reads at least the time the slowest rank arrived,
// plus the modeled synchronization cost.
func (r *Rank) Barrier() {
	r.reduceTree(tagBarrierUp, nil, nil)
	r.bcastTree(0, tagBarrierDown, nil)
}

// Bcast distributes root's data to every rank and returns it. Non-root
// callers pass nil (or anything; the argument is ignored on non-roots).
func (r *Rank) Bcast(root int, data []byte) []byte {
	return r.bcastTreeRooted(root, tagBcast, data)
}

// ReduceFloat64 combines one float64 per rank at the root using op
// ("sum", "max", "min"). Only the root's return value is meaningful.
func (r *Rank) ReduceFloat64(root int, x float64, op string) float64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, math.Float64bits(x))
	combine := func(a, b []byte) []byte {
		av := math.Float64frombits(binary.LittleEndian.Uint64(a))
		bv := math.Float64frombits(binary.LittleEndian.Uint64(b))
		var v float64
		switch op {
		case "max":
			v = math.Max(av, bv)
		case "min":
			v = math.Min(av, bv)
		default:
			v = av + bv
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, math.Float64bits(v))
		return out
	}
	res := r.reduceTree(tagReduce, buf, combine)
	if r.id != 0 {
		res = buf
	}
	// Rotate the result to the requested root if it is not rank 0.
	if root != 0 {
		if r.id == 0 {
			r.Send(root, tagReduce+1, res)
		}
		if r.id == root {
			res, _ = r.Recv(0, tagReduce+1)
		}
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(res))
}

// AllreduceFloat64 combines one float64 across all ranks and returns the
// result on every rank.
func (r *Rank) AllreduceFloat64(x float64, op string) float64 {
	v := r.ReduceFloat64(0, x, op)
	buf := make([]byte, 8)
	if r.id == 0 {
		binary.LittleEndian.PutUint64(buf, math.Float64bits(v))
	}
	out := r.bcastTreeRooted(0, tagBcast, buf)
	return math.Float64frombits(binary.LittleEndian.Uint64(out))
}

// AllreduceMaxTime synchronizes virtual clocks across ranks (an
// Allreduce on the clock itself) and returns the global maximum. It is
// how the pipeline timestamps stage boundaries the way a real trace
// would (MPI_Wtime after MPI_Barrier).
func (r *Rank) AllreduceMaxTime() float64 {
	return r.AllreduceFloat64(float64(r.Clock()), "max")
}

// Gather collects each rank's data at the root. The returned slice has
// Size() elements indexed by rank on the root and is nil elsewhere.
// Payloads may have different lengths (MPI_Gatherv). The root receives
// in rank order, not arrival order: each receive advances the clock by
// max(clock, arrival) plus a fixed overhead, so an arrival-ordered
// fold would make the root's virtual time depend on host scheduling.
func (r *Rank) Gather(root int, data []byte) [][]byte {
	if r.id == root {
		out := make([][]byte, r.Size())
		out[root] = data
		for src := 0; src < r.Size(); src++ {
			if src == root {
				continue
			}
			payload, _ := r.Recv(src, tagGather)
			out[src] = payload
		}
		return out
	}
	r.Send(root, tagGather, data)
	return nil
}

// AllgatherInt64 collects one int64 from every rank onto every rank.
func (r *Rank) AllgatherInt64(x int64) []int64 {
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(x))
	parts := r.Gather(0, buf)
	var packed []byte
	if r.id == 0 {
		packed = make([]byte, 8*r.Size())
		for i, p := range parts {
			copy(packed[8*i:], p)
		}
	}
	packed = r.bcastTreeRooted(0, tagAllgather, packed)
	out := make([]int64, r.Size())
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(packed[8*i:]))
	}
	return out
}

// reduceTree runs a binomial-tree reduction to rank 0. combine may be
// nil, in which case payloads are ignored (pure synchronization). The
// combined payload is returned on rank 0.
func (r *Rank) reduceTree(tag int, data []byte, combine func(a, b []byte) []byte) []byte {
	size := r.Size()
	acc := data
	for bit := 1; bit < size; bit <<= 1 {
		if r.id&bit != 0 {
			r.Send(r.id&^bit, tag, acc)
			return nil
		}
		peer := r.id | bit
		if peer < size {
			got, _ := r.Recv(peer, tag)
			if combine != nil {
				acc = combine(acc, got)
			}
		}
	}
	return acc
}

// bcastTree broadcasts rank 0's data down a binomial tree.
func (r *Rank) bcastTree(root int, tag int, data []byte) []byte {
	return r.bcastTreeRooted(root, tag, data)
}

// bcastTreeRooted broadcasts from an arbitrary root by relabeling ranks
// relative to the root. In the binomial tree, a node's parent is its
// relative id with the lowest set bit cleared, and its children are
// relative ids obtained by setting each bit below that lowest set bit.
func (r *Rank) bcastTreeRooted(root, tag int, data []byte) []byte {
	size := r.Size()
	rel := mod(r.id-root, size)
	limit := rel & (-rel) // lowest set bit of rel
	if rel != 0 {
		parent := mod((rel&^limit)+root, size)
		data, _ = r.Recv(parent, tag)
	} else {
		limit = 1
		for limit < size {
			limit <<= 1
		}
	}
	for bit := limit >> 1; bit >= 1; bit >>= 1 {
		childRel := rel | bit
		if childRel != rel && childRel < size {
			r.Send(mod(childRel+root, size), tag, data)
		}
	}
	return data
}

func mod(a, m int) int {
	a %= m
	if a < 0 {
		a += m
	}
	return a
}
