package mpsim

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"parms/internal/fault"
	"parms/internal/vtime"
)

func TestRecvInvalidSourcePanics(t *testing.T) {
	c, _ := New(Config{Procs: 2})
	_, err := c.Run(func(r *Rank) error {
		if r.ID() != 0 {
			return nil
		}
		defer func() {
			if recover() == nil {
				t.Error("Recv from out-of-range source did not panic")
			}
		}()
		r.Recv(7, 0) // rank 7 does not exist: must panic, not block forever
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := tryRecvBadSrc(c); err == nil {
		t.Fatal("TryRecv accepted invalid source")
	}
}

func tryRecvBadSrc(c *Cluster) (data []byte, from int, err error) {
	_, runErr := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			data, from, err = r.TryRecv(-7, 0)
		}
		return nil
	})
	if runErr != nil {
		err = runErr
	}
	return
}

func TestTrySendInvalidDestination(t *testing.T) {
	c, _ := New(Config{Procs: 2})
	_, err := c.Run(func(r *Rank) error {
		return r.TrySend(99, 0, nil)
	})
	if err == nil || !strings.Contains(err.Error(), "invalid rank 99") {
		t.Fatalf("TrySend error: %v", err)
	}
}

func TestRunJoinsAllRankErrors(t *testing.T) {
	c, _ := New(Config{Procs: 4})
	e1, e3 := errors.New("boom one"), errors.New("boom three")
	_, err := c.Run(func(r *Rank) error {
		switch r.ID() {
		case 1:
			return e1
		case 3:
			return e3
		}
		return nil
	})
	if !errors.Is(err, e1) || !errors.Is(err, e3) {
		t.Fatalf("joined error misses a rank: %v", err)
	}
	if !strings.Contains(err.Error(), "rank 1") || !strings.Contains(err.Error(), "rank 3") {
		t.Fatalf("joined error lacks rank context: %v", err)
	}
}

func TestRecvTimeoutDroppedMessage(t *testing.T) {
	plan := fault.NewPlan(1).DropMessage(1, 0, 1)
	c, _ := New(Config{Procs: 2, Faults: plan, RecvGrace: 100 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(func(r *Rank) error {
			if r.ID() == 1 {
				r.Send(0, 5, []byte("lost"))
				r.Send(0, 6, []byte("kept"))
				return nil
			}
			if _, _, ok := r.RecvTimeout(1, 5, 0.5); ok {
				t.Error("received a dropped message")
			}
			if r.Clock() < 0.5 {
				t.Errorf("timeout did not advance clock to deadline: %v", r.Clock())
			}
			data, _, ok := r.RecvTimeout(1, 6, 0.5)
			if !ok || string(data) != "kept" {
				t.Errorf("undropped message lost: %q ok=%v", data, ok)
			}
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("dropped message caused a hang")
	}
	if inj := plan.Injected(); len(inj) != 1 || !strings.Contains(inj[0], "drop") {
		t.Fatalf("injection log: %v", inj)
	}
}

func TestRecvTimeoutLateMessageIsDeterministic(t *testing.T) {
	// A message delayed beyond the virtual deadline is a timeout even
	// though it is physically present in the mailbox.
	plan := fault.NewPlan(1).DelayMessage(1, 0, 1, 10.0)
	c, _ := New(Config{Procs: 2, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 5, []byte("late"))
		}
		r.Barrier() // ensure the message is enqueued before the deadline check
		if r.ID() == 0 {
			if _, _, ok := r.RecvTimeout(1, 5, 0.25); ok {
				t.Error("accepted a message past its virtual deadline")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDuplicateAndDelayDelivery(t *testing.T) {
	plan := fault.NewPlan(1).DuplicateMessage(1, 0, 1)
	c, _ := New(Config{Procs: 2, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 5, []byte("twice"))
			return nil
		}
		a, _, ok1 := r.RecvTimeout(1, 5, 1.0)
		b, _, ok2 := r.RecvTimeout(1, 5, 1.0)
		if !ok1 || !ok2 || string(a) != "twice" || string(b) != "twice" {
			t.Errorf("duplicate delivery: %q/%v %q/%v", a, ok1, b, ok2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptedSendLeavesOriginalIntact(t *testing.T) {
	plan := fault.NewPlan(3).CorruptMessage(1, 0, 1)
	c, _ := New(Config{Procs: 2, Faults: plan})
	orig := []byte("the quick brown fox jumps over the lazy dog")
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 5, orig)
			return nil
		}
		got, _ := r.Recv(1, 5)
		if bytes.Equal(got, orig) {
			t.Error("payload not corrupted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if string(orig) != "the quick brown fox jumps over the lazy dog" {
		t.Fatal("sender's buffer mutated")
	}
}

func TestCollectivesExemptFromFaults(t *testing.T) {
	// Even a plan dropping every point-to-point message must not break
	// collectives, which model the reliable collective network.
	plan := fault.NewPlan(1).DropProbability(1.0)
	c, _ := New(Config{Procs: 8, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		if got := r.AllreduceFloat64(1, "sum"); got != 8 {
			t.Errorf("allreduce under total message loss: %v", got)
		}
		r.Barrier()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCheckpointCrash(t *testing.T) {
	plan := fault.NewPlan(1).CrashRank(1, "compute").RestartPenalty(3.0)
	c, _ := New(Config{Procs: 2, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		if r.Checkpoint("read") {
			t.Errorf("rank %d crashed at read", r.ID())
		}
		before := r.Clock()
		crashed := r.Checkpoint("compute")
		if r.ID() == 1 {
			if !crashed || !r.Failed() {
				t.Error("rank 1 did not crash at compute")
			}
			if r.Clock()-before < 3.0 {
				t.Errorf("restart penalty not charged: %v", r.Clock()-before)
			}
		} else if crashed || r.Failed() {
			t.Errorf("rank %d crashed unexpectedly", r.ID())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestFrameRoundTripAndCorruptionDetection(t *testing.T) {
	payloads := [][]byte{nil, {}, []byte("x"), bytes.Repeat([]byte("abc123"), 100)}
	for _, p := range payloads {
		f := Frame(p)
		back, err := Unframe(f)
		if err != nil {
			t.Fatalf("round trip len=%d: %v", len(p), err)
		}
		if !bytes.Equal(back, p) && len(p) > 0 {
			t.Fatalf("round trip altered payload")
		}
	}
	f := Frame([]byte("hello, world"))
	for i := range f {
		bad := append([]byte(nil), f...)
		bad[i] ^= 0x40
		if _, err := Unframe(bad); err == nil {
			t.Fatalf("flip at byte %d accepted", i)
		}
	}
	for _, n := range []int{0, 1, 7, len(f) - 1} {
		if _, err := Unframe(f[:n]); err == nil {
			t.Fatalf("truncation to %d accepted", n)
		}
	}
	if _, err := Unframe(append(append([]byte(nil), f...), 0)); err == nil {
		t.Fatal("padded frame accepted")
	}
}

func TestCollectiveIORetries(t *testing.T) {
	plan := fault.NewPlan(1).FailWrite("out", 2).FailRead("out", 1)
	c, _ := New(Config{Procs: 1, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		if err := r.CollectiveWrite("out", 0, []byte("payload")); err != nil {
			return err
		}
		data, err := r.CollectiveRead("out", 0, 7)
		if err != nil {
			return err
		}
		if string(data) != "payload" {
			t.Errorf("read back %q", data)
		}
		if r.IORetries() != 3 {
			t.Errorf("IORetries = %d, want 3", r.IORetries())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWritePermanentFailure(t *testing.T) {
	plan := fault.NewPlan(1).FailWrite("out", -1)
	c, _ := New(Config{Procs: 1, Faults: plan})
	_, err := c.Run(func(r *Rank) error {
		return r.CollectiveWrite("out", 0, []byte("doomed"))
	})
	if err == nil || fault.IsTransient(err) {
		t.Fatalf("permanent write failure: %v", err)
	}
}

func TestChaosAbortUnblocksPeers(t *testing.T) {
	// A rank that fails mid-program must not leave peers blocked in
	// receives forever: the cluster aborts and every blocked rank
	// unwinds with an error.
	c, _ := New(Config{Procs: 3})
	done := make(chan error, 1)
	go func() {
		_, err := c.Run(func(r *Rank) error {
			if r.ID() == 0 {
				return errors.New("early exit")
			}
			r.Recv(0, 1) // rank 0 never sends this
			return nil
		})
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "early exit") {
			t.Fatalf("missing root cause: %v", err)
		}
		if !strings.Contains(err.Error(), "aborted") {
			t.Fatalf("blocked peers not reported as aborted: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("peer failure caused a hang")
	}
}

func TestRecvTimeoutAcceptsTimelyMessage(t *testing.T) {
	c, _ := New(Config{Procs: 2})
	clocks, err := c.Run(func(r *Rank) error {
		if r.ID() == 1 {
			r.Send(0, 5, []byte("on time"))
			return nil
		}
		data, from, ok := r.RecvTimeout(1, 5, vtime.Time(1.0))
		if !ok || from != 1 || string(data) != "on time" {
			t.Errorf("timely receive failed: %q from=%d ok=%v", data, from, ok)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The receiver's clock must reflect the arrival, not the deadline.
	if clocks[0] >= 1.0 {
		t.Fatalf("receiver clock jumped to deadline: %v", clocks[0])
	}
}
