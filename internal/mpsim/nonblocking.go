package mpsim

import "encoding/binary"

// Request is a handle to a pending nonblocking receive, in the spirit of
// MPI_Irecv/MPI_Wait. Sends in this substrate are always eager
// (buffered), so a nonblocking send is just Send; receives are where
// overlap matters — a merge root can post receives for all group
// members and drain whichever arrives.
type Request struct {
	r        *Rank
	src, tag int
	done     bool
	data     []byte
	from     int
}

// Irecv posts a nonblocking receive. The returned request must be
// completed with Wait (or Test until it reports completion).
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{r: r, src: src, tag: tag}
}

// Test reports whether a matching message is available, completing the
// request if so, without blocking. Virtual time only advances when the
// message is actually consumed.
func (q *Request) Test() bool {
	if q.done {
		return true
	}
	mb := q.r.cluster.mailboxes[q.r.id]
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for i, m := range mb.pending {
		if (q.src == AnySource || m.src == q.src) && m.tag == q.tag {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			q.complete(m)
			return true
		}
	}
	return false
}

// Wait blocks until the request completes and returns the payload and
// source rank.
func (q *Request) Wait() ([]byte, int) {
	if !q.done {
		m := q.r.cluster.mailboxes[q.r.id].take(q.src, q.tag)
		q.complete(m)
	}
	return q.data, q.from
}

func (q *Request) complete(m message) {
	recvStart := q.r.clock.Now()
	q.r.clock.AdvanceTo(m.arrival)
	q.r.clock.Advance(vtimeFromFloat(q.r.cluster.machine.RecvOverhead))
	q.data, q.from, q.done = m.data, m.src, true
	if !q.r.quiet {
		q.r.cluster.flows.Complete(m.flow, recvStart, q.r.clock.Now())
	}
}

// WaitAny completes one of the pending requests (the first found ready,
// else it blocks on the first incomplete request) and returns its index.
// It mirrors MPI_Waitany for drain loops.
func WaitAny(reqs []*Request) int {
	for {
		allDone := true
		for i, q := range reqs {
			if q.done {
				continue
			}
			allDone = false
			if q.Test() {
				return i
			}
		}
		if allDone {
			return -1
		}
		// Nothing ready: block on the first incomplete request.
		for i, q := range reqs {
			if !q.done {
				q.Wait()
				return i
			}
		}
	}
}

// Scatter distributes one payload per rank from the root: rank i
// receives chunks[i]. Only the root's chunks argument is read. It
// mirrors MPI_Scatterv.
func (r *Rank) Scatter(root int, chunks [][]byte) []byte {
	const tagScatter = 1<<28 + 16
	if r.id == root {
		var mine []byte
		for dst, chunk := range chunks {
			if dst == root {
				mine = chunk
				continue
			}
			r.Send(dst, tagScatter, chunk)
		}
		return mine
	}
	data, _ := r.Recv(root, tagScatter)
	return data
}

// Alltoall exchanges one payload between every pair of ranks: the
// returned slice holds, at index i, the payload rank i addressed to this
// rank. send[j] is the payload this rank addresses to rank j.
func (r *Rank) Alltoall(send [][]byte) [][]byte {
	const tagA2A = 1<<28 + 17
	if len(send) != r.Size() {
		panic("mpsim: Alltoall needs one payload per rank")
	}
	out := make([][]byte, r.Size())
	out[r.id] = send[r.id]
	for dst, payload := range send {
		if dst != r.id {
			r.Send(dst, tagA2A, payload)
		}
	}
	// Receive in rank order, not arrival order, so the virtual clock
	// fold is deterministic (see Gather).
	for src := 0; src < r.Size(); src++ {
		if src == r.id {
			continue
		}
		data, _ := r.Recv(src, tagA2A)
		out[src] = data
	}
	return out
}

// ReduceInt64 combines one int64 per rank at the root with the given
// operation ("sum", "max", "min"); only the root's return value is
// meaningful.
func (r *Rank) ReduceInt64(root int, x int64, op string) int64 {
	const tagRI = 1<<28 + 18
	buf := make([]byte, 8)
	binary.LittleEndian.PutUint64(buf, uint64(x))
	combine := func(a, b []byte) []byte {
		av := int64(binary.LittleEndian.Uint64(a))
		bv := int64(binary.LittleEndian.Uint64(b))
		var v int64
		switch op {
		case "max":
			v = av
			if bv > av {
				v = bv
			}
		case "min":
			v = av
			if bv < av {
				v = bv
			}
		default:
			v = av + bv
		}
		out := make([]byte, 8)
		binary.LittleEndian.PutUint64(out, uint64(v))
		return out
	}
	res := r.reduceTree(tagRI, buf, combine)
	if r.id != 0 {
		res = buf
	}
	if root != 0 {
		if r.id == 0 {
			r.Send(root, tagRI+1, res)
		}
		if r.id == root {
			res, _ = r.Recv(0, tagRI+1)
		}
	}
	return int64(binary.LittleEndian.Uint64(res))
}
