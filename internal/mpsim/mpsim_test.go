package mpsim

import (
	"fmt"
	"sync/atomic"
	"testing"

	"parms/internal/torus"
	"parms/internal/vtime"
)

func newCluster(t *testing.T, procs int) *Cluster {
	t.Helper()
	c, err := New(Config{Procs: procs})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSendRecv(t *testing.T) {
	c := newCluster(t, 2)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Send(1, 7, []byte("hello"))
			return nil
		}
		data, src := r.Recv(0, 7)
		if string(data) != "hello" || src != 0 {
			return fmt.Errorf("got %q from %d", data, src)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRecvMatchesSourceAndTag(t *testing.T) {
	c := newCluster(t, 3)
	_, err := c.Run(func(r *Rank) error {
		switch r.ID() {
		case 0:
			r.Send(2, 1, []byte("from0tag1"))
			r.Send(2, 2, []byte("from0tag2"))
		case 1:
			r.Send(2, 1, []byte("from1tag1"))
		case 2:
			// Receive out of arrival order: tag 2 first.
			if d, _ := r.Recv(0, 2); string(d) != "from0tag2" {
				return fmt.Errorf("tag 2: got %q", d)
			}
			if d, _ := r.Recv(1, 1); string(d) != "from1tag1" {
				return fmt.Errorf("src 1: got %q", d)
			}
			if d, _ := r.Recv(0, 1); string(d) != "from0tag1" {
				return fmt.Errorf("src 0 tag 1: got %q", d)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMessageCausality(t *testing.T) {
	c := newCluster(t, 2)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 0 {
			r.Compute(vtime.Work{CellsVisited: 1e6}) // advance ~0.26s
			sendTime := r.Clock()
			r.Send(1, 0, make([]byte, 1000))
			if r.Clock() < sendTime {
				return fmt.Errorf("send rewound the clock")
			}
			return nil
		}
		before := r.Clock()
		_, _ = r.Recv(0, 0)
		after := r.Clock()
		if after <= before {
			return fmt.Errorf("recv did not advance clock: %v -> %v", before, after)
		}
		// The receiver cannot see the message before the sender's
		// compute time plus network latency.
		if after.Seconds() < 0.2 {
			return fmt.Errorf("recv at %v precedes causal send time", after)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	for _, procs := range []int{1, 2, 3, 8, 17} {
		c := newCluster(t, procs)
		clocks, err := c.Run(func(r *Rank) error {
			// Rank i computes i units of work, so clocks diverge.
			r.Compute(vtime.Work{CellsVisited: int64(r.ID()) * 1e5})
			r.Barrier()
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		// After a barrier every clock must be at least the slowest
		// rank's pre-barrier time.
		slowest := vtime.Time(float64(procs-1) * 1e5 * c.Machine().CellCost)
		for i, clk := range clocks {
			if clk < slowest {
				t.Fatalf("procs=%d rank %d clock %v below slowest pre-barrier %v", procs, i, clk, slowest)
			}
		}
	}
}

func TestBcast(t *testing.T) {
	for _, procs := range []int{1, 2, 5, 16} {
		for root := 0; root < procs; root += 3 {
			c := newCluster(t, procs)
			_, err := c.Run(func(r *Rank) error {
				var data []byte
				if r.ID() == root {
					data = []byte(fmt.Sprintf("payload-%d", root))
				}
				got := r.Bcast(root, data)
				want := fmt.Sprintf("payload-%d", root)
				if string(got) != want {
					return fmt.Errorf("rank %d got %q want %q", r.ID(), got, want)
				}
				return nil
			})
			if err != nil {
				t.Fatalf("procs=%d root=%d: %v", procs, root, err)
			}
		}
	}
}

func TestReduceAndAllreduce(t *testing.T) {
	for _, procs := range []int{1, 2, 7, 16} {
		c := newCluster(t, procs)
		wantSum := float64(procs*(procs-1)) / 2
		_, err := c.Run(func(r *Rank) error {
			x := float64(r.ID())
			sum := r.AllreduceFloat64(x, "sum")
			if sum != wantSum {
				return fmt.Errorf("rank %d allreduce sum %v want %v", r.ID(), sum, wantSum)
			}
			max := r.AllreduceFloat64(x, "max")
			if max != float64(procs-1) {
				return fmt.Errorf("rank %d allreduce max %v", r.ID(), max)
			}
			min := r.AllreduceFloat64(x, "min")
			if min != 0 {
				return fmt.Errorf("rank %d allreduce min %v", r.ID(), min)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestGather(t *testing.T) {
	c := newCluster(t, 9)
	_, err := c.Run(func(r *Rank) error {
		payload := []byte(fmt.Sprintf("rank%d", r.ID()))
		parts := r.Gather(4, payload)
		if r.ID() != 4 {
			if parts != nil {
				return fmt.Errorf("non-root got parts")
			}
			return nil
		}
		for i, p := range parts {
			if want := fmt.Sprintf("rank%d", i); string(p) != want {
				return fmt.Errorf("slot %d: %q want %q", i, p, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgatherInt64(t *testing.T) {
	c := newCluster(t, 6)
	_, err := c.Run(func(r *Rank) error {
		got := r.AllgatherInt64(int64(r.ID() * 10))
		for i, v := range got {
			if v != int64(i*10) {
				return fmt.Errorf("rank %d slot %d: %d", r.ID(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCollectiveWriteRead(t *testing.T) {
	c := newCluster(t, 4)
	_, err := c.Run(func(r *Rank) error {
		data := []byte{byte(r.ID()), byte(r.ID()), byte(r.ID()), byte(r.ID())}
		if err := r.CollectiveWrite("f", int64(4*r.ID()), data); err != nil {
			return err
		}
		r.Barrier()
		got, err := r.CollectiveRead("f", int64(4*((r.ID()+1)%4)), 4)
		if err != nil {
			return err
		}
		want := byte((r.ID() + 1) % 4)
		for _, b := range got {
			if b != want {
				return fmt.Errorf("rank %d read %v want %d", r.ID(), got, want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if size, _ := c.FS().Size("f"); size != 16 {
		t.Fatalf("file size %d want 16", size)
	}
}

func TestNullWriteParticipation(t *testing.T) {
	c := newCluster(t, 4)
	clocks, err := c.Run(func(r *Rank) error {
		var data []byte
		if r.ID() == 0 {
			data = make([]byte, 1<<20)
		}
		return r.CollectiveWrite("g", 0, data)
	})
	if err != nil {
		t.Fatal(err)
	}
	// All ranks leave a collective write at the same virtual time, even
	// those that wrote nothing.
	for i := 1; i < len(clocks); i++ {
		if diff := clocks[i] - clocks[0]; diff < -1e-12 || diff > 1e-12 {
			t.Fatalf("rank %d clock %v differs from rank 0 %v", i, clocks[i], clocks[0])
		}
	}
}

func TestMaxParallelBound(t *testing.T) {
	const limit = 4
	c, err := New(Config{Procs: 32, MaxParallel: limit})
	if err != nil {
		t.Fatal(err)
	}
	var cur, peak int64
	_, err = c.Run(func(r *Rank) error {
		// The gate bounds ranks that are executing (not parked in a
		// blocking receive), so measure a purely computational section.
		n := atomic.AddInt64(&cur, 1)
		for {
			p := atomic.LoadInt64(&peak)
			if n <= p || atomic.CompareAndSwapInt64(&peak, p, n) {
				break
			}
		}
		sum := 0
		for i := 0; i < 100000; i++ {
			sum += i
		}
		_ = sum
		atomic.AddInt64(&cur, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > limit {
		t.Fatalf("observed %d concurrent ranks, limit %d", peak, limit)
	}
}

func TestRunReportsPanic(t *testing.T) {
	c := newCluster(t, 2)
	_, err := c.Run(func(r *Rank) error {
		if r.ID() == 1 {
			panic("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not reported as error")
	}
}

func TestClusterReusableAcrossRuns(t *testing.T) {
	c := newCluster(t, 3)
	for run := 0; run < 3; run++ {
		clocks, err := c.Run(func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, 5, []byte{1})
			}
			if r.ID() == 1 {
				r.Recv(0, 5)
			}
			r.Barrier()
			return nil
		})
		if err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		// Clocks restart from zero each run.
		for i, clk := range clocks {
			if clk > 1e-3 {
				t.Fatalf("run %d rank %d clock %v too large for a fresh run", run, i, clk)
			}
		}
	}
}

func TestPlacementAffectsLatency(t *testing.T) {
	// Two ranks placed on adjacent nodes vs opposite torus corners: the
	// far placement must cost more virtual time per message.
	farNet := torus.New(512) // 8×8×8
	run := func(placement []int) vtime.Time {
		c, err := New(Config{Procs: 2, Placement: placement, Network: farNet})
		if err != nil {
			t.Fatal(err)
		}
		clocks, err := c.Run(func(r *Rank) error {
			if r.ID() == 0 {
				r.Send(1, 0, make([]byte, 1))
			} else {
				r.Recv(0, 0)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return clocks[1]
	}
	near := run(nil) // identity: nodes 0 and 1 are torus neighbors
	// Opposite corners of an 8×8×8 torus: 12 hops apart.
	far := run([]int{0, farNet.Rank(4, 4, 4)})
	if far <= near {
		t.Fatalf("far placement (%v) not slower than near (%v)", far, near)
	}
}

func TestPlacementValidated(t *testing.T) {
	if _, err := New(Config{Procs: 4, Placement: []int{0, 1}}); err == nil {
		t.Fatal("accepted wrong-length placement")
	}
}
