// Package mpsim is a message-passing substrate that stands in for MPI on
// a distributed-memory machine. A Cluster runs one goroutine per rank;
// ranks exchange byte-slice messages through matched Send/Recv calls and
// synchronize through collectives, exactly as the paper's MPI
// implementation does.
//
// Every rank carries a virtual clock (package vtime). Messages are
// stamped with the sender's clock on departure, and the receiver's clock
// advances to at least arrival time, so after a run the per-rank clocks
// read like a trace of the same program executed on the modeled machine.
// The message payloads and algorithmic results are real; only the
// timestamps are modeled.
package mpsim

import (
	"fmt"
	"sync"

	"parms/internal/torus"
	"parms/internal/vtime"
)

// Config describes the virtual machine a Cluster models.
type Config struct {
	// Procs is the number of ranks (the paper's "processes"; BG/P smp
	// mode maps one process per node).
	Procs int
	// Machine is the cost profile; nil selects vtime.BlueGeneP.
	Machine *vtime.Machine
	// Network is the interconnect; nil selects a near-cubic torus with
	// at least Procs nodes.
	Network *torus.Network
	// MaxParallel bounds how many rank goroutines may execute
	// simultaneously; 0 means unbounded. Virtual time is unaffected —
	// this only caps real resource usage when simulating tens of
	// thousands of ranks.
	MaxParallel int
	// Placement maps rank → torus node. nil means the identity (the
	// default row-major BG/P mapping). Hop counts — and therefore
	// modeled message latencies — follow the placement, so mapping
	// experiments can quantify communication locality.
	Placement []int
}

// Cluster is a virtual distributed-memory machine.
type Cluster struct {
	cfg     Config
	machine *vtime.Machine
	net     *torus.Network

	mailboxes []*mailbox
	fs        *FS
	placement []int // nil = identity

	gate chan struct{} // nil when MaxParallel == 0
}

// New creates a cluster with the given configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpsim: need at least 1 proc, got %d", cfg.Procs)
	}
	m := cfg.Machine
	if m == nil {
		m = vtime.BlueGeneP()
	}
	net := cfg.Network
	if net == nil {
		net = torus.New(cfg.Procs)
	}
	if cfg.Placement != nil && len(cfg.Placement) != cfg.Procs {
		return nil, fmt.Errorf("mpsim: placement has %d entries for %d procs", len(cfg.Placement), cfg.Procs)
	}
	c := &Cluster{
		cfg:       cfg,
		machine:   m,
		net:       net,
		fs:        NewFS(),
		placement: cfg.Placement,
	}
	c.mailboxes = make([]*mailbox, cfg.Procs)
	for i := range c.mailboxes {
		c.mailboxes[i] = newMailbox()
	}
	if cfg.MaxParallel > 0 {
		c.gate = make(chan struct{}, cfg.MaxParallel)
	}
	return c, nil
}

// Procs returns the number of ranks.
func (c *Cluster) Procs() int { return c.cfg.Procs }

// Machine returns the cost profile in use.
func (c *Cluster) Machine() *vtime.Machine { return c.machine }

// Network returns the modeled interconnect.
func (c *Cluster) Network() *torus.Network { return c.net }

// FS returns the cluster's shared filesystem.
func (c *Cluster) FS() *FS { return c.fs }

// node returns the torus node a rank is placed on.
func (c *Cluster) node(rank int) int {
	if c.placement == nil {
		return rank
	}
	return c.placement[rank]
}

// Run executes body once per rank, concurrently, and blocks until every
// rank returns. It returns the per-rank final clocks and the first error
// any rank reported. Mailboxes are reset before the run, so a Cluster
// can host several consecutive programs.
func (c *Cluster) Run(body func(r *Rank) error) ([]vtime.Time, error) {
	for _, mb := range c.mailboxes {
		mb.reset()
	}
	clocks := make([]vtime.Time, c.cfg.Procs)
	errs := make([]error, c.cfg.Procs)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{id: id, cluster: c}
			// The gate bounds *host* parallelism. A rank must release
			// it while blocked in Recv, otherwise held gate slots could
			// starve the sender it is waiting for; acquire/release is
			// handled inside the blocking primitives.
			r.acquire()
			defer r.release()
			errs[id] = safeBody(body, r)
			clocks[id] = r.clock.Now()
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return clocks, err
		}
	}
	return clocks, nil
}

func safeBody(body func(*Rank) error, r *Rank) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("rank %d panicked: %v", r.id, p)
		}
	}()
	return body(r)
}

// Rank is the per-process handle passed to the Run body: rank identity,
// virtual clock, messaging, collectives and filesystem access.
type Rank struct {
	id      int
	cluster *Cluster
	clock   vtime.Clock

	bytesSent int64
	msgsSent  int64
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the cluster.
func (r *Rank) Size() int { return r.cluster.cfg.Procs }

// Machine returns the cluster's cost profile.
func (r *Rank) Machine() *vtime.Machine { return r.cluster.machine }

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() vtime.Time { return r.clock.Now() }

// BytesSent returns the total payload bytes this rank has sent.
func (r *Rank) BytesSent() int64 { return r.bytesSent }

// MessagesSent returns the number of point-to-point sends issued.
func (r *Rank) MessagesSent() int64 { return r.msgsSent }

// Compute advances the rank's clock by the modeled duration of the given
// work tally.
func (r *Rank) Compute(w vtime.Work) {
	r.clock.Advance(r.cluster.machine.ComputeTime(w))
}

// Elapse advances the rank's clock by a literal number of modeled
// seconds. The pipeline's measured-time mode uses this with real wall
// clock durations.
func (r *Rank) Elapse(seconds float64) {
	r.clock.Advance(vtime.Time(seconds))
}

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []byte
	arrival  vtime.Time
}

// mailbox holds undelivered messages for one rank, with src+tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
}

func newMailbox() *mailbox {
	mb := &mailbox{}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) reset() {
	mb.mu.Lock()
	mb.pending = nil
	mb.mu.Unlock()
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available and
// removes it. AnySource (-1) matches any sender.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		for i, m := range mb.pending {
			if (src == AnySource || m.src == src) && m.tag == tag {
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m
			}
		}
		mb.cond.Wait()
	}
}

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// Send delivers data to rank dst with the given tag. It is buffered
// ("eager" in MPI terms): the call returns as soon as the message is
// enqueued. The payload is not copied; callers must not mutate it after
// sending, as a real MPI program must not reuse a buffer before the
// matching receive completes.
func (r *Rank) Send(dst, tag int, data []byte) {
	if dst < 0 || dst >= r.Size() {
		panic(fmt.Sprintf("mpsim: send to invalid rank %d (size %d)", dst, r.Size()))
	}
	m := r.cluster.machine
	hops := r.cluster.net.Hops(r.cluster.node(r.id), r.cluster.node(dst))
	transfer := m.MessageTime(len(data), hops)
	// Sender pays the injection overhead; the wire time determines the
	// arrival stamp.
	r.clock.Advance(vtime.Time(m.MsgLatency))
	arrival := r.clock.Now() + transfer
	r.bytesSent += int64(len(data))
	r.msgsSent++
	r.cluster.mailboxes[dst].put(message{src: r.id, tag: tag, data: data, arrival: arrival})
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload and actual source. src may be AnySource.
func (r *Rank) Recv(src, tag int) ([]byte, int) {
	r.release()
	msg := r.cluster.mailboxes[r.id].take(src, tag)
	r.acquire()
	r.clock.AdvanceTo(msg.arrival)
	r.clock.Advance(vtime.Time(r.cluster.machine.RecvOverhead))
	return msg.data, msg.src
}

func (r *Rank) acquire() {
	if r.cluster.gate != nil {
		r.cluster.gate <- struct{}{}
	}
}

func (r *Rank) release() {
	if r.cluster.gate != nil {
		<-r.cluster.gate
	}
}
