// Package mpsim is a message-passing substrate that stands in for MPI on
// a distributed-memory machine. A Cluster runs one goroutine per rank;
// ranks exchange byte-slice messages through matched Send/Recv calls and
// synchronize through collectives, exactly as the paper's MPI
// implementation does.
//
// Every rank carries a virtual clock (package vtime). Messages are
// stamped with the sender's clock on departure, and the receiver's clock
// advances to at least arrival time, so after a run the per-rank clocks
// read like a trace of the same program executed on the modeled machine.
// The message payloads and algorithmic results are real; only the
// timestamps are modeled.
package mpsim

import (
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"parms/internal/fault"
	"parms/internal/obs"
	"parms/internal/torus"
	"parms/internal/vtime"
)

// Config describes the virtual machine a Cluster models.
type Config struct {
	// Procs is the number of ranks (the paper's "processes"; BG/P smp
	// mode maps one process per node).
	Procs int
	// Machine is the cost profile; nil selects vtime.BlueGeneP.
	Machine *vtime.Machine
	// Network is the interconnect; nil selects a near-cubic torus with
	// at least Procs nodes.
	Network *torus.Network
	// MaxParallel bounds how many rank goroutines may execute
	// simultaneously; 0 means unbounded. Virtual time is unaffected —
	// this only caps real resource usage when simulating tens of
	// thousands of ranks.
	MaxParallel int
	// Placement maps rank → torus node. nil means the identity (the
	// default row-major BG/P mapping). Hop counts — and therefore
	// modeled message latencies — follow the placement, so mapping
	// experiments can quantify communication locality.
	Placement []int
	// Faults, when non-nil, injects the plan's failures into the
	// substrate: rank crashes at checkpoints, message drop/duplicate/
	// delay/corrupt on point-to-point sends, and transient or permanent
	// filesystem errors. Collectives are exempt (modeled as the
	// hardware-assisted reliable trees of the BG/P).
	Faults *fault.Plan
	// RecvGrace bounds the real (host) time RecvTimeout waits for a
	// message that has not been sent yet before declaring the virtual
	// deadline expired; 0 selects 2s. Messages already pending are
	// judged purely by their virtual arrival stamp, so the grace only
	// matters for messages that genuinely never arrive.
	RecvGrace time.Duration
	// Obs attaches an observability sink: a per-rank span tracer keyed
	// to virtual time plus a metrics registry (package obs). nil — the
	// default — disables all instrumentation; every hook then costs one
	// nil check, so the fault-free fast path is unaffected.
	Obs *obs.Observer
}

// Cluster is a virtual distributed-memory machine.
type Cluster struct {
	cfg     Config
	machine *vtime.Machine
	net     *torus.Network

	mailboxes []*mailbox
	fs        *FS
	placement []int // nil = identity
	grace     time.Duration

	// metrics holds the substrate's pre-resolved instruments; all nil
	// (and every update a no-op) when Config.Obs carries no registry.
	metrics clusterMetrics
	// flows records one causal record per message (DESIGN §14); nil —
	// every hook a no-op — when Config.Obs is nil.
	flows *obs.FlowRecorder

	// aborted is set when any rank's body fails, so that ranks blocked
	// in receives unwind instead of waiting forever for messages their
	// dead peer will never send (the MPI_Abort semantics).
	aborted atomic.Bool

	gate chan struct{} // nil when MaxParallel == 0
}

// abortMessage is the panic value blocked receives raise when the
// cluster aborts; safeBody converts it into a per-rank error.
const abortMessage = "cluster aborted: a peer rank failed"

// clusterMetrics pre-resolves the substrate's registry instruments once
// per cluster, so the per-message path never takes the registry lock.
// The zero value (all nil) is the disabled state.
type clusterMetrics struct {
	bytesSent    *obs.Counter
	msgsSent     *obs.Counter
	bytesRecv    *obs.Counter
	msgsRecv     *obs.Counter
	msgBytes     *obs.Histogram
	ioRetries    *obs.Counter
	recvTimeouts *obs.Counter
	crashes      *obs.Counter
}

func newClusterMetrics(reg *obs.Registry) clusterMetrics {
	if reg == nil {
		return clusterMetrics{}
	}
	return clusterMetrics{
		bytesSent:    reg.Counter("mpsim_bytes_sent_total"),
		msgsSent:     reg.Counter("mpsim_messages_sent_total"),
		bytesRecv:    reg.Counter("mpsim_bytes_recv_total"),
		msgsRecv:     reg.Counter("mpsim_messages_recv_total"),
		msgBytes:     reg.Histogram("mpsim_message_bytes"),
		ioRetries:    reg.Counter("mpsim_io_retries_total"),
		recvTimeouts: reg.Counter("mpsim_recv_timeouts_total"),
		crashes:      reg.Counter("mpsim_rank_crashes_total"),
	}
}

// abort wakes every rank blocked in a receive. Locking each mailbox
// before broadcasting guarantees no waiter can miss the wakeup between
// its abort check and its cond.Wait.
func (c *Cluster) abort() {
	c.aborted.Store(true)
	for _, mb := range c.mailboxes {
		mb.mu.Lock()
		mb.cond.Broadcast()
		mb.mu.Unlock()
	}
}

// New creates a cluster with the given configuration.
func New(cfg Config) (*Cluster, error) {
	if cfg.Procs < 1 {
		return nil, fmt.Errorf("mpsim: need at least 1 proc, got %d", cfg.Procs)
	}
	m := cfg.Machine
	if m == nil {
		m = vtime.BlueGeneP()
	}
	net := cfg.Network
	if net == nil {
		net = torus.New(cfg.Procs)
	}
	if cfg.Placement != nil && len(cfg.Placement) != cfg.Procs {
		return nil, fmt.Errorf("mpsim: placement has %d entries for %d procs", len(cfg.Placement), cfg.Procs)
	}
	grace := cfg.RecvGrace
	if grace <= 0 {
		grace = 2 * time.Second
	}
	c := &Cluster{
		cfg:       cfg,
		machine:   m,
		net:       net,
		fs:        NewFS(),
		placement: cfg.Placement,
		grace:     grace,
	}
	c.fs.faults = cfg.Faults
	c.metrics = newClusterMetrics(cfg.Obs.Registry())
	c.flows = cfg.Obs.FlowRecorder()
	c.mailboxes = make([]*mailbox, cfg.Procs)
	for i := range c.mailboxes {
		c.mailboxes[i] = newMailbox(&c.aborted)
	}
	if cfg.MaxParallel > 0 {
		c.gate = make(chan struct{}, cfg.MaxParallel)
	}
	return c, nil
}

// Procs returns the number of ranks.
func (c *Cluster) Procs() int { return c.cfg.Procs }

// Machine returns the cost profile in use.
func (c *Cluster) Machine() *vtime.Machine { return c.machine }

// Network returns the modeled interconnect.
func (c *Cluster) Network() *torus.Network { return c.net }

// FS returns the cluster's shared filesystem.
func (c *Cluster) FS() *FS { return c.fs }

// node returns the torus node a rank is placed on.
func (c *Cluster) node(rank int) int {
	if c.placement == nil {
		return rank
	}
	return c.placement[rank]
}

// Faults returns the fault plan the cluster injects, or nil.
func (c *Cluster) Faults() *fault.Plan { return c.cfg.Faults }

// Obs returns the observability sink attached to the cluster, or nil.
func (c *Cluster) Obs() *obs.Observer { return c.cfg.Obs }

// Run executes body once per rank, concurrently, and blocks until every
// rank returns. It returns the per-rank final clocks and all rank errors
// joined (errors.Join), so a chaos run reports every failing rank, not
// just the first. Mailboxes are reset before the run, so a Cluster can
// host several consecutive programs.
func (c *Cluster) Run(body func(r *Rank) error) ([]vtime.Time, error) {
	for _, mb := range c.mailboxes {
		mb.reset()
	}
	c.aborted.Store(false)
	clocks := make([]vtime.Time, c.cfg.Procs)
	errs := make([]error, c.cfg.Procs)
	var wg sync.WaitGroup
	for i := 0; i < c.cfg.Procs; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := &Rank{id: id, cluster: c, tr: c.cfg.Obs.Rank(id)}
			// The gate bounds *host* parallelism. A rank must release
			// it while blocked in Recv, otherwise held gate slots could
			// starve the sender it is waiting for; acquire/release is
			// handled inside the blocking primitives.
			r.acquire()
			defer r.release()
			errs[id] = safeBody(body, r)
			if errs[id] != nil {
				// The traffic tally localizes the failure: a rank that
				// died mid-merge shows the sends/receives it completed.
				errs[id] = fmt.Errorf("rank %d (sent %d msgs/%d B, recv %d msgs/%d B): %w",
					id, r.msgsSent, r.bytesSent, r.msgsRecv, r.bytesRecv, errs[id])
				// A failed rank will never send again: release any peer
				// blocked waiting on it rather than deadlocking the run.
				c.abort()
			}
			clocks[id] = r.clock.Now()
		}(i)
	}
	wg.Wait()
	return clocks, errors.Join(errs...)
}

func safeBody(body func(*Rank) error, r *Rank) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = fmt.Errorf("panicked: %v", p)
		}
	}()
	return body(r)
}

// Rank is the per-process handle passed to the Run body: rank identity,
// virtual clock, messaging, collectives and filesystem access.
type Rank struct {
	id      int
	cluster *Cluster
	clock   vtime.Clock
	tr      *obs.RankTracer // nil when observability is off

	bytesSent int64
	msgsSent  int64
	bytesRecv int64
	msgsRecv  int64
	ioRetries int64
	failed    bool
	// quiet marks a speculative twin (see Speculative): no tracing,
	// logging, metrics, or fault-plan crashes, so a cancelled
	// speculation leaves no mark on the run's observable record.
	quiet bool
}

// ID returns this rank's index in [0, Size).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks in the cluster.
func (r *Rank) Size() int { return r.cluster.cfg.Procs }

// Machine returns the cluster's cost profile.
func (r *Rank) Machine() *vtime.Machine { return r.cluster.machine }

// Clock returns the rank's current virtual time.
func (r *Rank) Clock() vtime.Time { return r.clock.Now() }

// BytesSent returns the total payload bytes this rank has sent.
func (r *Rank) BytesSent() int64 { return r.bytesSent }

// MessagesSent returns the number of point-to-point sends issued.
func (r *Rank) MessagesSent() int64 { return r.msgsSent }

// BytesRecv returns the total payload bytes this rank has received.
func (r *Rank) BytesRecv() int64 { return r.bytesRecv }

// MessagesRecv returns the number of point-to-point receives completed.
func (r *Rank) MessagesRecv() int64 { return r.msgsRecv }

// Tracer returns this rank's span track, nil when observability is off.
// All methods of a nil *obs.RankTracer are no-ops, so callers may
// instrument unconditionally (but should gate attribute computation on
// Tracer().Enabled()).
func (r *Rank) Tracer() *obs.RankTracer { return r.tr }

// Metrics returns the cluster's metrics registry, nil when
// observability is off or this is a speculative twin.
func (r *Rank) Metrics() *obs.Registry {
	if r.quiet {
		return nil
	}
	return r.cluster.cfg.Obs.Registry()
}

// Logger returns the cluster's structured event logger, nil when none
// is attached. Events logged through it carry a "vt" attribute so log
// lines join against trace spans on the virtual timeline; callers must
// gate on the nil return, as slog itself has no nil-receiver no-op.
// Speculative twins are quiet and always return nil.
func (r *Rank) Logger() *slog.Logger {
	if r.quiet {
		return nil
	}
	return r.cluster.cfg.Obs.Logger()
}

// IORetries returns the number of filesystem operations this rank has
// retried after transient errors.
func (r *Rank) IORetries() int64 { return r.ioRetries }

// Checkpoint marks a named point of the rank program where the cluster's
// fault plan may crash this rank. It returns true exactly when the plan
// fires here: the rank is then considered to have lost all application
// state and restarted (the caller must discard its in-memory results),
// with the plan's restart penalty added to the virtual clock.
func (r *Rank) Checkpoint(stage string) bool {
	p := r.cluster.cfg.Faults
	if r.quiet || p == nil || !p.OnCheckpoint(r.id, stage, float64(r.clock.Now())) {
		return false
	}
	r.failed = true
	r.clock.Advance(vtime.Time(p.Penalty()))
	// The crash is a trace instant on the dying rank's own track, at
	// the restart-complete time, tagged with the stage that lost state.
	r.tr.Instant("fault:crash", r.clock.Now(),
		obs.S("stage", stage), obs.F("penalty_s", p.Penalty()))
	if lg := r.Logger(); lg != nil {
		lg.Warn("fault.crash", "rank", r.id, "stage", stage,
			"penalty_s", p.Penalty(), "vt", float64(r.clock.Now()))
	}
	r.cluster.metrics.crashes.Add(1)
	return true
}

// Failed reports whether this rank has crashed at a checkpoint during
// the current run.
func (r *Rank) Failed() bool { return r.failed }

// Compute advances the rank's clock by the modeled duration of the given
// work tally.
func (r *Rank) Compute(w vtime.Work) {
	r.clock.Advance(r.cluster.machine.ComputeTime(w))
}

// ComputeParallel advances the rank's clock by the modeled duration of
// the given work tally when its data-parallel portion runs on an
// intra-rank pool of workers (vtime.ParallelComputeTime). workers <= 1
// is exactly Compute.
func (r *Rank) ComputeParallel(w vtime.Work, workers int) {
	r.clock.Advance(r.cluster.machine.ParallelComputeTime(w, workers))
}

// Elapse advances the rank's clock by a literal number of modeled
// seconds. The pipeline's measured-time mode uses this with real wall
// clock durations.
func (r *Rank) Elapse(seconds float64) {
	r.clock.Advance(vtime.Time(seconds))
}

// message is one in-flight point-to-point payload.
type message struct {
	src, tag int
	data     []byte
	arrival  vtime.Time
	// flow is the send-side record this delivery completes on receive;
	// the zero FlowID (observability off, sampled out, quiet twin) makes
	// completion a no-op.
	flow obs.FlowID
}

// mailbox holds undelivered messages for one rank, with src+tag matching.
type mailbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	aborted *atomic.Bool // the owning cluster's abort flag
}

func newMailbox(aborted *atomic.Bool) *mailbox {
	mb := &mailbox{aborted: aborted}
	mb.cond = sync.NewCond(&mb.mu)
	return mb
}

func (mb *mailbox) reset() {
	mb.mu.Lock()
	mb.pending = nil
	mb.mu.Unlock()
}

func (mb *mailbox) put(m message) {
	mb.mu.Lock()
	mb.pending = append(mb.pending, m)
	mb.mu.Unlock()
	mb.cond.Broadcast()
}

// take blocks until a message matching (src, tag) is available and
// removes it. AnySource (-1) matches any sender.
func (mb *mailbox) take(src, tag int) message {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	for {
		if m, ok := mb.match(src, tag); ok {
			return m
		}
		if mb.aborted.Load() {
			panic(abortMessage)
		}
		mb.cond.Wait()
	}
}

// match removes and returns the first pending message matching
// (src, tag). Callers hold mb.mu.
func (mb *mailbox) match(src, tag int) (message, bool) {
	for i, m := range mb.pending {
		if (src == AnySource || m.src == src) && m.tag == tag {
			mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
			return m, true
		}
	}
	return message{}, false
}

// takeDeadline is take with a bounded wait. A matching message whose
// virtual arrival stamp is within deadline is delivered; one stamped
// later is deterministically reported as a timeout (and left pending).
// When no matching message exists at all, the wait is bounded by the
// real-time grace, the escape hatch for messages that were dropped or
// whose sender crashed — a lost message can never block forever.
func (mb *mailbox) takeDeadline(src, tag int, deadline vtime.Time, grace time.Duration) (message, bool) {
	mb.mu.Lock()
	defer mb.mu.Unlock()
	expired := false
	//msvet:allow wallclock: the real-time grace only bounds waits for messages that never arrive; delivered messages are judged purely by virtual arrival stamps (DESIGN §8)
	timer := time.AfterFunc(grace, func() {
		mb.mu.Lock()
		expired = true
		mb.mu.Unlock()
		mb.cond.Broadcast()
	})
	defer timer.Stop()
	for {
		for i, m := range mb.pending {
			if (src == AnySource || m.src == src) && m.tag == tag {
				if m.arrival > deadline {
					return message{}, false
				}
				mb.pending = append(mb.pending[:i], mb.pending[i+1:]...)
				return m, true
			}
		}
		if expired || mb.aborted.Load() {
			return message{}, false
		}
		mb.cond.Wait()
	}
}

// AnySource matches messages from any rank in Recv.
const AnySource = -1

// Send delivers data to rank dst with the given tag. It is buffered
// ("eager" in MPI terms): the call returns as soon as the message is
// enqueued. The payload is not copied; callers must not mutate it after
// sending, as a real MPI program must not reuse a buffer before the
// matching receive completes.
func (r *Rank) Send(dst, tag int, data []byte) {
	if err := r.TrySend(dst, tag, data); err != nil {
		panic(err.Error())
	}
}

// TrySend is Send returning an error instead of panicking on an invalid
// destination, for callers that must degrade gracefully.
func (r *Rank) TrySend(dst, tag int, data []byte) error {
	if dst < 0 || dst >= r.Size() {
		return fmt.Errorf("mpsim: send to invalid rank %d (size %d)", dst, r.Size())
	}
	m := r.cluster.machine
	hops := r.cluster.net.Hops(r.cluster.node(r.id), r.cluster.node(dst))
	transfer := m.MessageTime(len(data), hops)
	// Sender pays the injection overhead; the wire time determines the
	// arrival stamp. A faulted (dropped, corrupted, …) message costs the
	// sender exactly the same as a healthy one — the sender cannot tell.
	r.clock.Advance(vtime.Time(m.MsgLatency))
	arrival := r.clock.Now() + transfer
	r.bytesSent += int64(len(data))
	r.msgsSent++
	r.cluster.metrics.bytesSent.Add(int64(len(data)))
	r.cluster.metrics.msgsSent.Add(1)
	r.cluster.metrics.msgBytes.Observe(int64(len(data)))
	deliveries := []fault.Delivery{{Data: data}}
	if p := r.cluster.cfg.Faults; p != nil && tag < tagBarrierUp {
		// Collective-tag traffic is exempt: the modeled machine's
		// collective network is treated as reliable.
		deliveries = p.OnSend(r.id, dst, tag, data)
	}
	for _, d := range deliveries {
		a := arrival + vtime.Time(d.ExtraDelay)
		var fid obs.FlowID
		if !r.quiet {
			// One flow per delivery, so a duplicated message shows two
			// records of which only one completes.
			fid = r.cluster.flows.Begin(r.id, r.id, dst, tag, len(d.Data),
				flowKind(tag), r.clock.Now(), a)
		}
		r.cluster.mailboxes[dst].put(message{
			src: r.id, tag: tag, data: d.Data, arrival: a, flow: fid,
		})
	}
	return nil
}

// flowKind classifies a tag for flow records: collective-tag traffic
// rides the modeled reliable tree network, everything else is
// point-to-point.
func flowKind(tag int) string {
	if tag >= tagBarrierUp {
		return obs.FlowCollective
	}
	return obs.FlowP2P
}

// NoteFlow records a synthetic, already-complete flow on this rank's
// stream: data that reached the rank outside Send/Recv, such as a
// migrated block rebuilt from a dead owner's checkpoints. start is the
// rank's clock when the restore began; the flow's receive time is the
// clock now. No-op on quiet twins and when observability is off.
func (r *Rank) NoteFlow(kind string, src, tag, bytes int, start vtime.Time) {
	if r.quiet {
		return
	}
	r.cluster.flows.Emit(r.id, src, r.id, tag, bytes, kind, start, r.clock.Now())
}

func (r *Rank) checkSrc(src int) {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		panic(fmt.Sprintf("mpsim: recv from invalid rank %d (size %d)", src, r.Size()))
	}
}

// Recv blocks until a message with the given source and tag arrives and
// returns its payload and actual source. src may be AnySource; any other
// out-of-range source panics (a matching message could never arrive).
func (r *Rank) Recv(src, tag int) ([]byte, int) {
	r.checkSrc(src)
	recvStart := r.clock.Now()
	r.release()
	msg := r.cluster.mailboxes[r.id].take(src, tag)
	r.acquire()
	r.clock.AdvanceTo(msg.arrival)
	r.clock.Advance(vtime.Time(r.cluster.machine.RecvOverhead))
	r.countRecv(len(msg.data))
	if !r.quiet {
		r.cluster.flows.Complete(msg.flow, recvStart, r.clock.Now())
	}
	return msg.data, msg.src
}

// countRecv tallies one completed point-to-point receive.
func (r *Rank) countRecv(n int) {
	r.bytesRecv += int64(n)
	r.msgsRecv++
	r.cluster.metrics.bytesRecv.Add(int64(n))
	r.cluster.metrics.msgsRecv.Add(1)
}

// TryRecv is Recv returning an error instead of panicking on an invalid
// source.
func (r *Rank) TryRecv(src, tag int) ([]byte, int, error) {
	if src != AnySource && (src < 0 || src >= r.Size()) {
		return nil, 0, fmt.Errorf("mpsim: recv from invalid rank %d (size %d)", src, r.Size())
	}
	data, from := r.Recv(src, tag)
	return data, from, nil
}

// RecvTimeout is Recv with a virtual-time deadline of Clock()+timeout.
// It returns ok=false — with the clock advanced to the deadline, as a
// real timed wait would leave it — when no matching message arrives in
// time: the message was dropped, delayed past the deadline, or its
// sender crashed. It is the bounded-blocking primitive every
// fault-tolerant receive path must use instead of Recv.
func (r *Rank) RecvTimeout(src, tag int, timeout vtime.Time) ([]byte, int, bool) {
	r.checkSrc(src)
	recvStart := r.clock.Now()
	deadline := recvStart + timeout
	r.release()
	msg, ok := r.cluster.mailboxes[r.id].takeDeadline(src, tag, deadline, r.cluster.grace)
	r.acquire()
	if !ok {
		r.clock.AdvanceTo(deadline)
		r.cluster.metrics.recvTimeouts.Add(1)
		return nil, 0, false
	}
	r.clock.AdvanceTo(msg.arrival)
	r.clock.Advance(vtime.Time(r.cluster.machine.RecvOverhead))
	r.countRecv(len(msg.data))
	if !r.quiet {
		r.cluster.flows.Complete(msg.flow, recvStart, r.clock.Now())
	}
	return msg.data, msg.src, true
}

func (r *Rank) acquire() {
	if r.cluster.gate != nil {
		r.cluster.gate <- struct{}{}
	}
}

func (r *Rank) release() {
	if r.cluster.gate != nil {
		<-r.cluster.gate
	}
}
